// Ablation benchmarks for the calibration decisions documented in
// DESIGN.md §6: each one toggles a single modelling mechanism and prints
// the fairness outcome with and without it, quantifying how much of the
// paper's shape that mechanism carries.
package prudentia

import (
	"fmt"
	"testing"

	"prudentia/internal/cca"
	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/transport"
)

// BenchmarkAblationUpstreamJitter shows why the testbed injects 2 ms of
// upstream delay jitter: without it, the deterministic simulator gives a
// queue-owning ACK-clocked flow a perfect drop-tail lockout and
// Cubic-vs-Reno comes out nearly even instead of Cubic-dominant.
func BenchmarkAblationUpstreamJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, jitter := range []bool{true, false} {
			cfg := netem.ModeratelyConstrained()
			cfg.NoJitter = !jitter
			spec := benchTiming(core.Spec{
				Incumbent: services.ByName("iPerf (Reno)"),
				Contender: services.ByName("iPerf (Cubic)"),
				Net:       cfg,
				Seed:      12,
			})
			res, err := core.RunTrial(spec)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("[ablation jitter=%v] Reno vs Cubic @50 Mbps: %.1f / %.1f Mbps (Reno %.0f%% of MmF)\n",
				jitter, res.Mbps[0], res.Mbps[1], res.SharePct[0])
		}
	}
}

// BenchmarkAblationFragileRecovery isolates the classic-stack burst-loss
// collapse: the same NewReno flow against Mega, with and without it.
func BenchmarkAblationFragileRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, fragile := range []bool{true, false} {
			eng := sim.NewEngine()
			// The 8 Mbps setting: Mega's bursts span a large fraction of
			// the 128-packet queue, so burst-loss episodes regularly take
			// out big chunks of a loss-based window.
			cfg := netem.HighlyConstrained()
			tb := netem.NewTestbed(eng, cfg, sim.NewRNG(9))
			reno := transport.NewFlow(tb, 0, cca.NewNewReno(cca.Config{}),
				transport.Options{FragileRecovery: fragile})
			reno.SetBulk()
			env := &services.Env{Eng: eng, TB: tb, Slot: 1, RNG: sim.NewRNG(10)}
			mega := services.ByName("Mega").Start(env)
			eng.RunUntil(90 * sim.Second)
			mega.Stop()
			r := float64(tb.Bneck.Stats(0).DeliveredBytes) * 8 / 90 / 1e6
			m := float64(tb.Bneck.Stats(1).DeliveredBytes) * 8 / 90 / 1e6
			fmt.Printf("[ablation fragile=%v] NewReno vs Mega @8 Mbps: %.2f / %.2f Mbps (%d collapses)\n",
				fragile, r, m, reno.Timeouts)
		}
	}
}

// BenchmarkAblationMegaBatching contrasts Mega's batch scheduler with
// five plain persistent flows of the same custom BBR — isolating how
// much of Mega's contentiousness is application-level scheduling (the
// paper's Obs 4 point) versus its transport configuration.
func BenchmarkAblationMegaBatching(b *testing.B) {
	net := netem.ModeratelyConstrained()
	for i := 0; i < b.N; i++ {
		mega := runPair(b, "iPerf (Reno)", "Mega", net, benchOpts(net))
		plain := runPair(b, "iPerf (Reno)", "iPerf (5xBBR)", net, benchOpts(net))
		fmt.Printf("[ablation batching] Reno MmF share: vs Mega %.0f%%, vs plain 5xBBR %.0f%%\n",
			mega.MedianSharePct(0), plain.MedianSharePct(0))
	}
}

// BenchmarkAblationVideoPipelining toggles the player's request
// pipelining: without it the duty-cycled fetches starve BBR's bandwidth
// estimator under contention and the player collapses to the bottom
// rungs.
func BenchmarkAblationVideoPipelining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{1, 2} {
			yt := services.YouTube(services.Year2023)
			yt.PipelineDepth = depth
			// The starving case is a saturated link with a queue-filling
			// competitor: every duty-cycle gap costs estimator samples.
			spec := benchTiming(core.Spec{
				Incumbent: yt,
				Contender: services.ByName("iPerf (Reno)"),
				Net:       netem.HighlyConstrained(),
				Seed:      6,
			})
			res, err := core.RunTrial(spec)
			if err != nil {
				b.Fatal(err)
			}
			st := res.ServiceStats[0].Video
			fmt.Printf("[ablation pipeline=%d] YouTube vs iPerf (Reno) @8 Mbps: %.2f Mbps, dominant %dp\n",
				depth, res.Mbps[0], st.DominantResolution)
		}
	}
}
