package prudentia_test

// Regression tests for scripts/bench.sh -check: the gate must fail
// loudly on every degenerate input instead of passing vacuously. The
// historical bug: an empty benchmark reduction made the while-read loop
// a no-op, so the script printed OK having checked nothing.
//
// The tests drive the real script through its BENCH_SIM_OUT /
// BENCH_CHECK_RAW / BENCH_NS_TOLERANCE hooks, so no benchmarks run and
// each case completes in milliseconds.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goodRaw mirrors run_sim_bench's reduction format:
// "name ns_op bytes_op allocs_op simsec_wallsec".
const goodRaw = `BenchmarkBottleneckDropTail 14.00 0 0 -1.0
BenchmarkBottleneckSteadyState 58.00 0 0 1000.0
`

// goodBaseline mirrors the committed BENCH_sim.json line format.
const goodBaseline = `{"benchmark":"BenchmarkBottleneckDropTail","ns_op":13.69,"bytes_op":0,"allocs_op":0}
{"benchmark":"BenchmarkBottleneckSteadyState","ns_op":57.00,"bytes_op":0,"allocs_op":0}
`

// runCheck executes scripts/bench.sh -check with the given baseline and
// raw-results contents, returning combined output and the exit error.
func runCheck(t *testing.T, baseline, raw string, env ...string) (string, error) {
	t.Helper()
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	dir := t.TempDir()
	simOut := filepath.Join(dir, "BENCH_sim.json")
	if baseline != "-" { // "-" = do not create the baseline file
		if err := os.WriteFile(simOut, []byte(baseline), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rawPath := filepath.Join(dir, "raw.txt")
	if raw != "-" {
		if err := os.WriteFile(rawPath, []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("bash", "scripts/bench.sh", "-check")
	cmd.Env = append(os.Environ(),
		"BENCH_SIM_OUT="+simOut,
		"BENCH_CHECK_RAW="+rawPath,
	)
	cmd.Env = append(cmd.Env, env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestBenchCheckPassesOnCleanRun(t *testing.T) {
	out, err := runCheck(t, goodBaseline, goodRaw)
	if err != nil {
		t.Fatalf("clean run must pass, got error %v:\n%s", err, out)
	}
	if !strings.Contains(out, "bench-check: OK") {
		t.Fatalf("expected OK, got:\n%s", out)
	}
}

func TestBenchCheckFailsOnMissingBaseline(t *testing.T) {
	out, err := runCheck(t, "-", goodRaw)
	if err == nil {
		t.Fatalf("missing baseline must fail:\n%s", out)
	}
	if !strings.Contains(out, "no committed") {
		t.Fatalf("expected missing-baseline message, got:\n%s", out)
	}
}

func TestBenchCheckFailsOnEmptyBaseline(t *testing.T) {
	out, err := runCheck(t, "", goodRaw)
	if err == nil {
		t.Fatalf("empty baseline must fail:\n%s", out)
	}
	if !strings.Contains(out, "not a valid baseline") {
		t.Fatalf("expected empty-baseline message, got:\n%s", out)
	}
}

func TestBenchCheckFailsOnMalformedBaseline(t *testing.T) {
	malformed := goodBaseline + "{\"benchmark\":\"BenchmarkBroken\"}\n"
	out, err := runCheck(t, malformed, goodRaw)
	if err == nil {
		t.Fatalf("malformed baseline must fail:\n%s", out)
	}
	if !strings.Contains(out, "malformed") {
		t.Fatalf("expected malformed-baseline message, got:\n%s", out)
	}
}

// TestBenchCheckFailsOnEmptyResults is THE vacuous-pass regression: an
// empty benchmark reduction used to sail through as OK.
func TestBenchCheckFailsOnEmptyResults(t *testing.T) {
	out, err := runCheck(t, goodBaseline, "")
	if err == nil {
		t.Fatalf("empty results must fail (the vacuous-pass bug):\n%s", out)
	}
	if !strings.Contains(out, "no results") {
		t.Fatalf("expected empty-results message, got:\n%s", out)
	}
}

func TestBenchCheckFailsOnNsRegression(t *testing.T) {
	slow := strings.Replace(goodRaw, "14.00", "40.00", 1)
	out, err := runCheck(t, goodBaseline, slow)
	if err == nil {
		t.Fatalf("3x ns/op regression must fail:\n%s", out)
	}
	if !strings.Contains(out, "regressed") {
		t.Fatalf("expected regression message, got:\n%s", out)
	}
}

func TestBenchCheckFailsOnAllocIncrease(t *testing.T) {
	alloc := strings.Replace(goodRaw, "14.00 0 0", "14.00 0 2", 1)
	out, err := runCheck(t, goodBaseline, alloc)
	if err == nil {
		t.Fatalf("allocs/op increase must fail:\n%s", out)
	}
	if !strings.Contains(out, "allocates more") {
		t.Fatalf("expected alloc message, got:\n%s", out)
	}
}

// TestBenchCheckFailsOnMissingBenchmark: the baseline names a benchmark
// the fresh run no longer produces (renamed, or the -bench pattern
// narrowed) — the gate must notice it stopped guarding it.
func TestBenchCheckFailsOnMissingBenchmark(t *testing.T) {
	onlyOne := "BenchmarkBottleneckDropTail 14.00 0 0 -1.0\n"
	out, err := runCheck(t, goodBaseline, onlyOne)
	if err == nil {
		t.Fatalf("baseline benchmark missing from run must fail:\n%s", out)
	}
	if !strings.Contains(out, "missing from this run") {
		t.Fatalf("expected coverage message, got:\n%s", out)
	}
}

func TestBenchCheckToleranceOverride(t *testing.T) {
	slow := strings.Replace(goodRaw, "14.00", "20.00", 1) // ~1.46x baseline
	if out, err := runCheck(t, goodBaseline, slow); err == nil {
		t.Fatalf("1.46x must fail at default tolerance:\n%s", out)
	}
	out, err := runCheck(t, goodBaseline, slow, "BENCH_NS_TOLERANCE=1.50")
	if err != nil {
		t.Fatalf("1.46x must pass at 1.50 tolerance, got %v:\n%s", err, out)
	}
}
