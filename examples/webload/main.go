// Webload reproduces the §5.2 page-load-time experiment: load the three
// catalog web pages repeatedly while a contender saturates the link, and
// report SpeedIndex-style PLTs (time to 95% of above-the-fold bytes).
package main

import (
	"fmt"
	"log"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/stats"
)

func main() {
	pages := []string{"wikipedia.org", "news.google.com", "youtube.com"}
	contenders := []string{"", "Mega", "Dropbox"}
	tab := &report.Table{Header: []string{"page", "solo PLT", "vs Mega", "vs Dropbox"}}
	for _, page := range pages {
		row := []string{page}
		for _, cont := range contenders {
			var contSvc services.Service
			if cont != "" {
				contSvc = services.ByName(cont)
			}
			spec := core.Spec{
				Incumbent: services.ByName(page),
				Contender: contSvc,
				Net:       netem.HighlyConstrained(),
				Seed:      9,
				Duration:  240 * sim.Second,
				Warmup:    5 * sim.Second,
				Cooldown:  5 * sim.Second,
			}
			res, err := core.RunTrial(spec)
			if err != nil {
				log.Fatal(err)
			}
			plts := res.ServiceStats[0].Web.PLTs
			vals := make([]float64, len(plts))
			for i, p := range plts {
				vals[i] = p.Seconds()
			}
			row = append(row, fmt.Sprintf("%.1fs (n=%d)", stats.Median(vals), len(vals)))
		}
		tab.Add(row...)
	}
	fmt.Printf("Median page load times on the 8 Mbps setting:\n%s\n", tab)
	fmt.Println("Image-heavy pages (youtube.com) suffer the most under contention;")
	fmt.Println("text-dominant wikipedia.org barely moves — the paper's Obs 8.")
}
