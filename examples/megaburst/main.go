// Megaburst reproduces the paper's Observation 4 workflow end to end:
// it runs Mega against a loss-based (NewReno) and a BBR-based (Dropbox)
// competitor on the 50 Mbps setting, prints the throughput time series
// showing Dropbox ramping into the gaps between Mega's batch bursts, and
// renders the bottleneck queue occupancy that drives Fig 8.
package main

import (
	"fmt"
	"log"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

func main() {
	for _, inc := range []string{"iPerf (Reno)", "Dropbox"} {
		spec := core.Spec{
			Incumbent:        services.ByName(inc),
			Contender:        services.ByName("Mega"),
			Net:              netem.ModeratelyConstrained(),
			Seed:             7,
			Duration:         120 * sim.Second,
			Warmup:           20 * sim.Second,
			Cooldown:         10 * sim.Second,
			SampleRateEvery:  sim.Second,
			SampleQueueEvery: 250 * sim.Millisecond,
		}
		res, err := core.RunTrial(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s vs Mega @50 Mbps: %.1f vs %.1f Mbps (%.0f%% / %.0f%% of MmF), util %.0f%%, loss %.1f%%/%.1f%%\n",
			inc, res.Mbps[0], res.Mbps[1], res.SharePct[0], res.SharePct[1],
			100*res.Utilization, 100*res.Loss[0], 100*res.Loss[1])
		fmt.Print(report.RateSeries("  throughput (1s bins):", res.RateSeries, 50,
			[2]string{inc, "Mega"}))
		fmt.Print(report.QueueSeries("  bottleneck queue:", res.QueueSeries, 1024))
		fmt.Println()
	}
	fmt.Println("Note how the BBR-based competitor recovers bandwidth between")
	fmt.Println("Mega's batch bursts while the loss-based one keeps backing off —")
	fmt.Println("the mechanism behind the paper's Observation 4.")
}
