// Quickstart: measure one fairness interaction through the public API —
// the two-roommates scenario from the paper's introduction, YouTube
// competing with a Mega download on an 8 Mbps access link.
package main

import (
	"fmt"
	"log"

	"prudentia"
)

func main() {
	fmt.Println("Prudentia quickstart: YouTube vs Mega on an 8 Mbps link")
	fmt.Println("catalog:", prudentia.Services())

	res, err := prudentia.Run(prudentia.Experiment{
		Incumbent: "YouTube",
		Contender: "Mega",
		Setting:   prudentia.HighlyConstrained,
		Trials:    3,
		Quick:     true,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nYouTube: %5.2f Mbps  (%3.0f%% of its max-min fair share, IQR %.0f)\n",
		res.MedianMbps[0], res.MedianSharePct[0], res.IQRSharePct[0])
	fmt.Printf("Mega:    %5.2f Mbps  (%3.0f%% of its max-min fair share, IQR %.0f)\n",
		res.MedianMbps[1], res.MedianSharePct[1], res.IQRSharePct[1])

	switch {
	case res.MedianSharePct[0] < 90 && res.MedianSharePct[1] > 110:
		fmt.Println("\noutcome: Mega wins — YouTube is squeezed below its fair share.")
	case res.MedianSharePct[0] > 110 && res.MedianSharePct[1] < 90:
		fmt.Println("\noutcome: YouTube wins — Mega is squeezed below its fair share.")
	default:
		fmt.Println("\noutcome: roughly fair.")
	}
}
