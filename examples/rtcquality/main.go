// Rtcquality explores §5.1: how real-time communication quality (Google
// Meet vs Microsoft Teams) degrades under contention in the
// highly-constrained setting — the differing trade-offs of Obs 5
// (Meet yields resolution; Teams holds bitrate but freezes) and the
// high-delay packets loss-based contenders cause (Obs 6).
package main

import (
	"fmt"
	"log"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

func main() {
	contenders := []string{"", "Dropbox", "iPerf (Reno)", "Mega"}
	for _, rtc := range []string{"Google Meet", "Microsoft Teams"} {
		tab := &report.Table{Header: []string{"contender", "resolution", "avg fps", "freezes/min", ">190ms RTT pkts"}}
		for _, cont := range contenders {
			var contSvc services.Service
			if cont != "" {
				contSvc = services.ByName(cont)
			}
			spec := core.Spec{
				Incumbent: services.ByName(rtc),
				Contender: contSvc,
				Net:       netem.HighlyConstrained(),
				Seed:      3,
				Duration:  90 * sim.Second,
				Warmup:    15 * sim.Second,
				Cooldown:  5 * sim.Second,
			}
			res, err := core.RunTrial(spec)
			if err != nil {
				log.Fatal(err)
			}
			st := res.ServiceStats[0].RTC
			name := cont
			if name == "" {
				name = "(solo)"
			}
			tab.Add(name,
				fmt.Sprintf("%dp", st.Resolution),
				fmt.Sprintf("%.1f", st.AvgFPS),
				fmt.Sprintf("%.1f", st.FreezesPerMinute),
				fmt.Sprintf("%.0f%%", 100*st.HighDelayFrac))
		}
		fmt.Printf("%s on the 8 Mbps setting:\n%s\n", rtc, tab)
	}
}
