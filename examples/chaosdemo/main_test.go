package main

import (
	"strings"
	"testing"
)

// TestChaosDemoRuns smoke-tests every fault path: the demo must survive
// panics, injected errors, corrupt results, flaps, sags, and stalls,
// and still print a complete ledger.
func TestChaosDemoRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fault ledger:", "totals:", "checkpoint flushed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestChaosDemoDeterministic verifies the full chaotic run — faults,
// retries, ledger, heatmap — replays identically.
func TestChaosDemoDeterministic(t *testing.T) {
	runOnce := func() string {
		var b strings.Builder
		if err := run(&b); err != nil {
			t.Fatal(err)
		}
		// The checkpoint path embeds the PID; strip the machine-varying
		// final line before comparing.
		out := b.String()
		if i := strings.LastIndex(out, "checkpoint flushed"); i >= 0 {
			out = out[:i]
		}
		return out
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("chaos run not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
