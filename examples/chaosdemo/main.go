// Chaosdemo: the watchdog under fire. Runs a 3-service matrix with
// every chaos fault class enabled — link flaps, bandwidth sags, client
// stalls, trial panics, injected errors, and result corruption — and
// prints the retry/quarantine/checkpoint ledger showing how the
// scheduler absorbed each fault without aborting the matrix. Running it
// twice with the same seed produces the identical ledger: faults are
// part of the experiment, not nondeterminism.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"prudentia/internal/chaos"
	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/trace"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	net := netem.HighlyConstrained()
	opts := core.QuickOptions(net)
	opts.MinTrials, opts.MaxTrials, opts.Step = 2, 4, 2
	opts.ToleranceMbps = 50
	opts.Timing = func(s core.Spec) core.Spec {
		s.Duration, s.Warmup, s.Cooldown = 30*sim.Second, 5*sim.Second, 2*sim.Second
		return s
	}

	// Every fault class, hot enough to fire constantly in 30 s trials.
	opts.Chaos = &chaos.Config{
		FlapMeanGap:  8 * sim.Second,
		FlapMeanLen:  300 * sim.Millisecond,
		FluctMeanGap: 6 * sim.Second,
		FluctMeanLen: 1500 * sim.Millisecond,
		FluctMinFrac: 0.25,
		StallMeanGap: 8 * sim.Second,
		StallMeanLen: 700 * sim.Millisecond,
		PanicRate:    0.12,
		ErrorRate:    0.08,
		CorruptRate:  0.10,
	}

	ledger := &trace.FaultLedger{}
	ckpt := filepath.Join(os.TempDir(), fmt.Sprintf("chaosdemo-%d.json", os.Getpid()))
	defer os.Remove(ckpt)

	wd := &core.Watchdog{
		Services: []services.Service{
			services.ByName("iPerf (Reno)"),
			services.ByName("iPerf (Cubic)"),
			services.ByName("iPerf (BBR)"),
		},
		Settings:       []netem.Config{net},
		Opts:           opts,
		CheckpointPath: ckpt,
		OnFault:        ledger.Record,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(w, "  "+format+"\n", args...)
		},
	}

	fmt.Fprintln(w, "chaosdemo: 3-service matrix, every fault class armed")
	cr, err := wd.RunCycle()
	if err != nil {
		return err
	}
	res := cr.PerSetting[0]

	fmt.Fprintln(w)
	fmt.Fprintln(w, report.Heatmap("MmF share % under chaos (×× = quarantined)",
		res.Names,
		func(inc, cont string) (float64, bool) { return res.SharePct(inc, cont) },
		".0f"))

	fmt.Fprintf(w, "fault ledger: %s\n", ledger.Summary())
	fmt.Fprintln(w, "events:")
	for _, ev := range ledger.Events {
		fmt.Fprintf(w, "  [%-10s] %-28s attempt %2d seed %d  %s\n",
			ev.Kind, ev.Pair, ev.Attempt, ev.Seed, ev.Detail)
	}
	var retries, discards, corrupt int
	for _, p := range res.Pairs {
		retries += p.Retries
		discards += p.Discards
		corrupt += p.Corrupt
	}
	fmt.Fprintf(w, "\ntotals: %d retries, %d discards, %d corrupt results gated, %d pairs quarantined\n",
		retries, discards, corrupt, len(res.FailedPairs()))
	fmt.Fprintf(w, "checkpoint flushed to %s after every pair (removed on completion)\n", ckpt)
	return nil
}
