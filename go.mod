module prudentia

go 1.22
