#!/usr/bin/env bash
# Sweep harness: drive cmd/prudentia -sweep across a rate x RTT x queue
# x CCA parameter grid and leave consolidated TSV/JSON artifacts. Every
# grid cell runs the full pair matrix of the chosen services under the
# quick trial protocol with sketch-backed statistics, so the whole grid
# is mergeable, deterministic, and byte-reproducible for a given seed.
#
#   scripts/sweep.sh                     default paper-style grid
#   scripts/sweep.sh [extra flags...]    extra cmd/prudentia flags pass
#                                        through verbatim (e.g.
#                                        -exact-stats, -v, -workers 8)
#
# Environment overrides (all optional):
#   SWEEP_RATES    comma-separated bottleneck rates in Mbps  (8,50)
#   SWEEP_RTTS     comma-separated RTTs in ms                (25,50,100)
#   SWEEP_QUEUES   comma-separated queue capacities in pkts  (64,256)
#   SWEEP_CCAS     comma-separated catalog service names
#                  (iPerf (Cubic),iPerf (BBR),iPerf (Reno))
#   SWEEP_OUT      output path prefix                        (sweep)
#   SWEEP_SEED     base seed                                 (42)
#
# Artifacts: <SWEEP_OUT>.tsv (one row per pair-slot per cell; header
# schema asserted by scripts/ci.sh) and <SWEEP_OUT>.json
# ("prudentia.sweep/1", per-cell merged share sketches included).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${SWEEP_OUT:-sweep}"
go run ./cmd/prudentia -sweep \
    -sweep-rates "${SWEEP_RATES:-8,50}" \
    -sweep-rtts "${SWEEP_RTTS:-25,50,100}" \
    -sweep-queues "${SWEEP_QUEUES:-64,256}" \
    -sweep-ccas "${SWEEP_CCAS:-iPerf (Cubic),iPerf (BBR),iPerf (Reno)}" \
    -sweep-out "$OUT" \
    -seed "${SWEEP_SEED:-42}" \
    "$@"

for ext in tsv json; do
    [ -s "$OUT.$ext" ] || { echo "sweep: no $OUT.$ext produced" >&2; exit 1; }
done
echo "sweep: artifacts $OUT.tsv $OUT.json"
