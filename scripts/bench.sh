#!/usr/bin/env bash
# Runs the parallel-matrix benchmark (BenchmarkMatrixParallel) at 1, 2,
# 4, and 8 workers and emits BENCH_parallel.json at the repo root:
# ns/op and trials/sec per worker count, plus speedup relative to the
# serial run, annotated with the host's GOMAXPROCS and CPU count.
#
# Speedup is hardware-dependent: the matrix fans pairs out across OS
# threads, so gains cap at min(workers, GOMAXPROCS, CPUs). On a 1-CPU
# host every worker count measures the same serial throughput plus pool
# overhead — the JSON records whatever this machine honestly measured.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT="BENCH_parallel.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test ./internal/core/ -run '^$' -bench '^BenchmarkMatrixParallel$' \
    -benchtime "$BENCHTIME" -count=1 | tee "$RAW"

awk -v gomaxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}" \
    -v cpus="$(getconf _NPROCESSORS_ONLN)" \
    -v benchtime="$BENCHTIME" '
/^BenchmarkMatrixParallel\/workers=/ {
    split($1, parts, "=");
    sub(/[ \t-].*$/, "", parts[2]);
    w = parts[2] + 0;
    nsop[w] = $3 + 0;
    for (i = 4; i <= NF; i++) if ($(i+1) == "trials/s") tps[w] = $i + 0;
    if (!(w in seen)) { order[++n] = w; seen[w] = 1 }
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkMatrixParallel\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"note\": \"speedup is bounded by min(workers, cpus); on a 1-CPU host all worker counts measure serial throughput plus pool overhead\",\n"
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) {
        w = order[i]
        speedup = (nsop[w] > 0) ? nsop[order[1]] / nsop[w] : 0
        printf "    {\"workers\": %d, \"ns_per_op\": %.0f, \"trials_per_sec\": %.2f, \"speedup_vs_serial\": %.3f}%s\n", \
            w, nsop[w], tps[w], speedup, (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo
echo "wrote $OUT:"
cat "$OUT"
