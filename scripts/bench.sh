#!/usr/bin/env bash
# Benchmark driver. Three modes:
#
#   scripts/bench.sh [benchtime]   parallel-matrix benchmark (BenchmarkMatrixParallel)
#                                  -> BENCH_parallel.json (ns/op and trials/sec per
#                                  worker count, speedup vs serial)
#
#   scripts/bench.sh sim [benchtime]
#                                  hot-path benchmarks (BenchmarkEngine*,
#                                  BenchmarkBottleneck*) -> BENCH_sim.json, one JSON
#                                  object per line with the pre-optimization baseline
#                                  (scripts/bench_baseline_sim.json) and the speedup
#                                  against it
#
#   scripts/bench.sh -check        regression gate: re-run the hot-path benchmarks
#                                  (-count=3, min per benchmark) and fail if any
#                                  ns/op regresses more than 10% over the committed
#                                  BENCH_sim.json, or any allocs/op exceeds it
#
#   scripts/bench.sh adaptive [benchtime]
#                                  adaptive trial-budget benchmark
#                                  (BenchmarkAdaptiveMatrix): the same matrix under
#                                  the fixed protocol and under adaptive stopping
#                                  -> BENCH_adaptive.json (trials/cycle and
#                                  simsec/wallsec per mode, trials_saved_pct).
#                                  Fails if the saving is under the 30% acceptance
#                                  floor.
#
#   scripts/bench.sh serve [benchtime]
#                                  serving hot-path gate (BenchmarkCached*,
#                                  BenchmarkReportNotModified) -> BENCH_serve.json.
#                                  Fails if any cached read handler (report hit,
#                                  heatmap hit, text hit, 304 revalidation)
#                                  allocates at all — the read path serves
#                                  precomputed artifacts and must stay at
#                                  0 allocs/op.
#
#   scripts/bench.sh stats [benchtime]
#                                  sketch statistics gate (BenchmarkSketchAdd,
#                                  BenchmarkSketchState) -> BENCH_stats.json.
#                                  Fails if the compacted-regime Add hot path
#                                  allocates at all, or if per-sketch encoded
#                                  state grows more than 1.25x when the trial
#                                  count grows 10x (the O(1) per-pair statistics
#                                  memory acceptance gate; the raw ledger would
#                                  grow 10x).
#
# Speedup in parallel mode is hardware-dependent: the matrix fans pairs out
# across OS threads, so gains cap at min(workers, GOMAXPROCS, CPUs). On a
# 1-CPU host every worker count measures the same serial throughput plus
# pool overhead — the JSON records whatever this machine honestly measured.
set -euo pipefail
cd "$(dirname "$0")/.."

SIM_PKGS="./internal/sim ./internal/netem"
SIM_PATTERN='BenchmarkEngine|BenchmarkBottleneck'
SIM_OUT="BENCH_sim.json"
SIM_BASELINE="scripts/bench_baseline_sim.json"

# json_field FILE BENCH FIELD — pull a numeric field out of a line-oriented
# JSON file ({"benchmark":"Name",...} per line). Prints nothing if absent.
json_field() {
    awk -v bench="$2" -v field="$3" '
        index($0, "\"benchmark\":\"" bench "\"") {
            if (match($0, "\"" field "\":[0-9.]+")) {
                v = substr($0, RSTART, RLENGTH)
                sub(/^[^:]*:/, "", v)
                print v
            }
        }' "$1"
}

# run_sim_bench COUNT BENCHTIME RAWFILE — run the hot-path benchmarks and
# reduce to "name ns_op bytes_op allocs_op simsec_wallsec" lines, taking the
# min ns/op (max simsec/wallsec) across repetitions.
run_sim_bench() {
    local raw="$3"
    go test -run '^$' -bench "$SIM_PATTERN" -benchtime "$2" -count="$1" \
        $SIM_PKGS | tee /dev/stderr | awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = by = al = -1; sw = -1
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op") ns = $i + 0
            if ($(i+1) == "B/op") by = $i + 0
            if ($(i+1) == "allocs/op") al = $i + 0
            if ($(i+1) == "simsec/wallsec") sw = $i + 0
        }
        if (!(name in best) || ns < best[name]) best[name] = ns
        if (by >= 0) bytes[name] = by
        if (al >= 0) allocs[name] = al
        if (sw >= 0 && (!(name in sweep) || sw > sweep[name])) sweep[name] = sw
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        for (i = 1; i <= n; i++) {
            name = order[i]
            printf "%s %.2f %d %d %.1f\n", name, best[name], bytes[name], allocs[name], \
                (name in sweep ? sweep[name] : -1)
        }
    }' > "$raw"
}

sim_mode() {
    local benchtime="${1:-1s}"
    RAWTMP="$(mktemp)"
    trap 'rm -f "$RAWTMP"' EXIT
    local raw="$RAWTMP"
    run_sim_bench 3 "$benchtime" "$raw"
    : > "$SIM_OUT"
    while read -r name ns by al sw; do
        base_ns="$(json_field "$SIM_BASELINE" "$name" ns_op)"
        base_al="$(json_field "$SIM_BASELINE" "$name" allocs_op)"
        line="{\"benchmark\":\"$name\",\"ns_op\":$ns,\"bytes_op\":$by,\"allocs_op\":$al"
        if [ "${sw%.*}" != "-1" ]; then
            line="$line,\"simsec_wallsec\":$sw"
        fi
        if [ -n "$base_ns" ]; then
            speedup="$(awk -v b="$base_ns" -v c="$ns" 'BEGIN { printf "%.2f", (c > 0 ? b / c : 0) }')"
            line="$line,\"baseline_ns_op\":$base_ns,\"baseline_allocs_op\":${base_al:-0},\"speedup\":$speedup"
        fi
        echo "$line}" >> "$SIM_OUT"
    done < "$raw"
    echo
    echo "wrote $SIM_OUT:"
    cat "$SIM_OUT"
}

# check_mode fails LOUDLY on every degenerate input. The old version
# passed vacuously when the benchmark run produced no parseable lines
# (the while-read loop simply never executed); now an empty result set,
# a missing baseline, a malformed baseline line, and a baseline
# benchmark missing from the fresh run are each hard failures.
#
# Test/CI hooks (all optional):
#   BENCH_SIM_OUT        baseline JSON to check against (default BENCH_sim.json)
#   BENCH_CHECK_RAW      pre-reduced "name ns bytes allocs simsec" file to
#                        check instead of re-running the benchmarks
#   BENCH_CHECK_RAW_OUT  also copy the fresh reduction here (CI keeps it
#                        as the candidate artifact when the gate fails)
#   BENCH_NS_TOLERANCE   allowed ns/op ratio vs baseline (default 1.10)
check_mode() {
    local sim_out="${BENCH_SIM_OUT:-$SIM_OUT}"
    local tol="${BENCH_NS_TOLERANCE:-1.10}"
    [ -f "$sim_out" ] || { echo "bench-check: no committed $sim_out to check against; run 'scripts/bench.sh sim' first" >&2; exit 1; }

    # Validate the baseline before trusting it: every line must carry a
    # benchmark name plus numeric ns_op and allocs_op.
    local baseline_names
    baseline_names="$(awk '
        NF == 0 { next }
        {
            if (match($0, /"benchmark":"[^"]+"/) && $0 ~ /"ns_op":[0-9.]+/ && $0 ~ /"allocs_op":[0-9]+/) {
                v = substr($0, RSTART, RLENGTH)
                sub(/^"benchmark":"/, "", v); sub(/"$/, "", v)
                print v
            } else {
                print "__MALFORMED__"
            }
        }' "$sim_out")"
    if [ -z "$baseline_names" ]; then
        echo "bench-check: $sim_out is empty — not a valid baseline (re-run 'scripts/bench.sh sim')" >&2
        exit 1
    fi
    if printf '%s\n' "$baseline_names" | grep -q '^__MALFORMED__$'; then
        echo "bench-check: $sim_out is malformed (line without benchmark/ns_op/allocs_op); refusing to pass vacuously" >&2
        exit 1
    fi

    local raw
    if [ -n "${BENCH_CHECK_RAW:-}" ]; then
        raw="$BENCH_CHECK_RAW"
        [ -f "$raw" ] || { echo "bench-check: BENCH_CHECK_RAW=$raw does not exist" >&2; exit 1; }
    else
        RAWTMP="$(mktemp)"
        trap 'rm -f "$RAWTMP"' EXIT
        raw="$RAWTMP"
        run_sim_bench 3 1s "$raw"
    fi
    if [ -n "${BENCH_CHECK_RAW_OUT:-}" ]; then
        cp -f "$raw" "$BENCH_CHECK_RAW_OUT"
    fi
    if [ ! -s "$raw" ]; then
        echo "bench-check: benchmark run produced no results (empty reduction — pattern or toolchain problem, NOT a pass)" >&2
        exit 1
    fi

    local fail=0
    while read -r name ns by al sw; do
        ref_ns="$(json_field "$sim_out" "$name" ns_op)"
        ref_al="$(json_field "$sim_out" "$name" allocs_op)"
        if [ -z "$ref_ns" ]; then
            echo "bench-check: $name has no entry in $sim_out (re-run 'scripts/bench.sh sim')" >&2
            fail=1
            continue
        fi
        if awk -v c="$ns" -v r="$ref_ns" -v t="$tol" 'BEGIN { exit !(c > t * r) }'; then
            echo "bench-check: $name regressed: $ns ns/op > $tol x committed $ref_ns" >&2
            fail=1
        fi
        if [ "$al" -gt "${ref_al:-0}" ]; then
            echo "bench-check: $name allocates more: $al allocs/op > committed ${ref_al:-0}" >&2
            fail=1
        fi
    done < "$raw"

    # Bidirectional coverage: a benchmark present in the baseline but
    # absent from the fresh run means the gate silently stopped guarding
    # it (renamed benchmark, narrowed pattern) — fail, don't shrug.
    while read -r name; do
        if ! grep -q "^$name " "$raw"; then
            echo "bench-check: baseline benchmark $name missing from this run (renamed? pattern narrowed?)" >&2
            fail=1
        fi
    done <<EOF
$baseline_names
EOF

    if [ "$fail" -ne 0 ]; then
        echo "bench-check: FAILED (hot path regressed vs committed $sim_out)" >&2
        exit 1
    fi
    echo "bench-check: OK (all hot-path benchmarks within ${tol}x of committed $sim_out, allocs at or below)"
}

parallel_mode() {
    local benchtime="${1:-3x}"
    local out="BENCH_parallel.json"
    RAWTMP="$(mktemp)"
    trap 'rm -f "$RAWTMP"' EXIT
    local raw="$RAWTMP"

    go test ./internal/core/ -run '^$' -bench '^BenchmarkMatrixParallel$' \
        -benchtime "$benchtime" -count=1 | tee "$raw"

    awk -v gomaxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}" \
        -v cpus="$(getconf _NPROCESSORS_ONLN)" \
        -v benchtime="$benchtime" '
    /^BenchmarkMatrixParallel\/workers=/ {
        split($1, parts, "=");
        sub(/[ \t-].*$/, "", parts[2]);
        w = parts[2] + 0;
        nsop[w] = $3 + 0;
        for (i = 4; i <= NF; i++) if ($(i+1) == "trials/s") tps[w] = $i + 0;
        if (!(w in seen)) { order[++n] = w; seen[w] = 1 }
    }
    END {
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkMatrixParallel\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"gomaxprocs\": %d,\n", gomaxprocs
        printf "  \"cpus\": %d,\n", cpus
        printf "  \"note\": \"speedup is bounded by min(workers, cpus); on a 1-CPU host all worker counts measure serial throughput plus pool overhead\",\n"
        printf "  \"results\": [\n"
        for (i = 1; i <= n; i++) {
            w = order[i]
            speedup = (nsop[w] > 0) ? nsop[order[1]] / nsop[w] : 0
            printf "    {\"workers\": %d, \"ns_per_op\": %.0f, \"trials_per_sec\": %.2f, \"speedup_vs_serial\": %.3f}%s\n", \
                w, nsop[w], tps[w], speedup, (i < n ? "," : "")
        }
        printf "  ]\n}\n"
    }' "$raw" > "$out"

    echo
    echo "wrote $out:"
    cat "$out"
}

# adaptive_mode reduces BenchmarkAdaptiveMatrix's two sub-benchmarks —
# the same matrix under the fixed §3.4 protocol and under adaptive
# stopping — into BENCH_adaptive.json, and enforces the acceptance
# floor: adaptive must save at least 30% of the fixed protocol's
# counted trials while reaching the same verdicts (the verdict half is
# asserted by TestAdaptiveVsFixedEquivalence; this gate records and
# guards the savings half).
adaptive_mode() {
    local benchtime="${1:-3x}"
    local out="BENCH_adaptive.json"
    RAWTMP="$(mktemp)"
    trap 'rm -f "$RAWTMP"' EXIT
    local raw="$RAWTMP"

    go test ./internal/core/ -run '^$' -bench '^BenchmarkAdaptiveMatrix$' \
        -benchtime "$benchtime" -count=1 | tee "$raw"

    awk -v benchtime="$benchtime" '
    /^BenchmarkAdaptiveMatrix\/mode=/ {
        split($1, parts, "=")
        mode = parts[2]
        sub(/-[0-9]+$/, "", mode)
        ns[mode] = $3 + 0
        for (i = 4; i < NF; i++) {
            if ($(i+1) == "trials/cycle") tc[mode] = $i + 0
            if ($(i+1) == "simsec/wallsec") sw[mode] = $i + 0
        }
        seen[mode] = 1
    }
    END {
        if (!("fixed" in seen) || !("adaptive" in seen)) {
            print "bench-adaptive: missing fixed or adaptive sub-benchmark in output" > "/dev/stderr"
            exit 1
        }
        saved = (tc["fixed"] > 0) ? 100 * (tc["fixed"] - tc["adaptive"]) / tc["fixed"] : 0
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkAdaptiveMatrix\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"fixed\": {\"ns_per_op\": %.0f, \"trials_per_cycle\": %.0f, \"simsec_wallsec\": %.1f},\n", \
            ns["fixed"], tc["fixed"], sw["fixed"]
        printf "  \"adaptive\": {\"ns_per_op\": %.0f, \"trials_per_cycle\": %.0f, \"simsec_wallsec\": %.1f},\n", \
            ns["adaptive"], tc["adaptive"], sw["adaptive"]
        printf "  \"trials_saved_pct\": %.1f\n", saved
        printf "}\n"
    }' "$raw" > "$out"

    echo
    echo "wrote $out:"
    cat "$out"

    saved="$(awk -F'[:,]' '/"trials_saved_pct"/ { print $2 + 0 }' "$out")"
    if ! awk -v s="$saved" 'BEGIN { exit !(s >= 30) }'; then
        echo "bench-adaptive: FAILED — adaptive saved only ${saved}% of fixed trials (acceptance floor: 30%)" >&2
        exit 1
    fi
    echo "bench-adaptive: OK (adaptive saves ${saved}% of fixed trials)"
}

# stats_mode reduces the sketch statistics benchmarks into
# BENCH_stats.json and enforces the two million-trial acceptance gates:
# the compacted-regime Add hot path must be allocation-free (allocs/op
# exactly 0), and one sketch's encoded state must stay bounded when the
# trial count grows 10x (ratio <= 1.25 vs 10x for the raw per-trial
# ledger). Both gates are deterministic — allocation counts and encoded
# bytes don't wobble with runner noise — so no tolerance knob exists.
#
# CI hook: BENCH_STATS_OUT overrides the output path (the workflow
# writes into its artifact dir so the gate never dirties the committed
# BENCH_stats.json).
stats_mode() {
    local benchtime="${1:-1s}"
    local out="${BENCH_STATS_OUT:-BENCH_stats.json}"
    RAWTMP="$(mktemp)"
    trap 'rm -f "$RAWTMP"' EXIT
    local raw="$RAWTMP"

    go test ./internal/stats -run '^$' -bench '^BenchmarkSketch(Add|State)$' \
        -benchmem -benchtime "$benchtime" -count=1 | tee "$raw"

    awk -v benchtime="$benchtime" '
    /^BenchmarkSketchAdd/ {
        add_ns = $3 + 0
        for (i = 4; i < NF; i++) if ($(i+1) == "allocs/op") add_allocs = $i + 0
        seen_add = 1
    }
    /^BenchmarkSketchState\/trials=/ {
        split($1, parts, "=")
        tier = parts[2]
        sub(/-[0-9]+$/, "", tier)
        for (i = 3; i < NF; i++) if ($(i+1) == "state_bytes") bytes[tier] = $i + 0
        seen_state++
    }
    END {
        if (!seen_add || seen_state < 2 || !("1x" in bytes) || !("10x" in bytes)) {
            print "bench-stats: missing SketchAdd or SketchState sub-benchmark in output" > "/dev/stderr"
            exit 1
        }
        ratio = (bytes["1x"] > 0) ? bytes["10x"] / bytes["1x"] : 0
        printf "{\n"
        printf "  \"benchmark\": \"BenchmarkSketchAdd + BenchmarkSketchState\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"add\": {\"ns_per_op\": %.2f, \"allocs_per_op\": %d},\n", add_ns, add_allocs
        printf "  \"state_bytes_1x\": %d,\n", bytes["1x"]
        printf "  \"state_bytes_10x\": %d,\n", bytes["10x"]
        printf "  \"state_growth_ratio\": %.3f,\n", ratio
        printf "  \"note\": \"per-pair statistics state is a fixed set of these sketches (core.PairSketches); the raw per-trial ledger grows 10.000x on the same stream\"\n"
        printf "}\n"
    }' "$raw" > "$out"

    echo
    echo "wrote $out:"
    cat "$out"

    local allocs ratio
    allocs="$(awk -F'[:,]' '/"allocs_per_op"/ { print $5 + 0 }' "$out")"
    ratio="$(awk -F'[:,]' '/"state_growth_ratio"/ { print $2 + 0 }' "$out")"
    if [ -z "$allocs" ] || [ -z "$ratio" ]; then
        echo "bench-stats: FAILED — could not reduce benchmark output (see above)" >&2
        exit 1
    fi
    if [ "$allocs" != "0" ]; then
        echo "bench-stats: FAILED — compacted-regime Add allocates ($allocs allocs/op, gate: 0)" >&2
        exit 1
    fi
    if ! awk -v r="$ratio" 'BEGIN { exit !(r > 0 && r <= 1.25) }'; then
        echo "bench-stats: FAILED — sketch state grew ${ratio}x at 10x trials (gate: <= 1.25x; O(1) memory violated)" >&2
        exit 1
    fi
    echo "bench-stats: OK (Add is allocation-free; 10x trials grew state only ${ratio}x)"
}

# serve_mode reduces the cached-handler benchmarks into BENCH_serve.json
# and enforces the serving hot-path acceptance gate: every cached read
# handler — report hit, heatmap hit, text-report hit, and the 304
# revalidation path — must be allocation-free. The handlers serve
# precomputed artifacts through preassigned header slices, so like the
# sketch gate this is deterministic (allocation counts don't wobble with
# runner noise) and no tolerance knob exists. ns/op is recorded for the
# JSON but not gated — wall time on shared runners is noise.
#
# CI hook: BENCH_SERVE_OUT overrides the output path (the workflow
# writes into its artifact dir so the gate never dirties the committed
# BENCH_serve.json).
serve_mode() {
    local benchtime="${1:-1s}"
    local out="${BENCH_SERVE_OUT:-BENCH_serve.json}"
    RAWTMP="$(mktemp)"
    trap 'rm -f "$RAWTMP"' EXIT
    local raw="$RAWTMP"

    go test ./internal/serve -run '^$' \
        -bench '^Benchmark(CachedReportHit|CachedHeatmapHit|CachedReportTextHit|ReportNotModified)$' \
        -benchmem -benchtime "$benchtime" -count=1 | tee "$raw"

    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = by = al = -1
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op") ns = $i + 0
            if ($(i+1) == "B/op") by = $i + 0
            if ($(i+1) == "allocs/op") al = $i + 0
        }
        if (ns < 0 || by < 0 || al < 0) next
        printf "{\"benchmark\":\"%s\",\"ns_op\":%.2f,\"bytes_op\":%d,\"allocs_op\":%d}\n", \
            name, ns, by, al
        n++
    }
    END {
        if (n < 4) {
            print "bench-serve: expected 4 handler benchmarks, parsed " n > "/dev/stderr"
            exit 1
        }
    }' "$raw" > "$out"

    echo
    echo "wrote $out:"
    cat "$out"

    if grep -vq '"allocs_op":0}' "$out"; then
        echo "bench-serve: FAILED — a cached handler allocates (gate: 0 allocs/op on every read path)" >&2
        grep -v '"allocs_op":0}' "$out" >&2
        exit 1
    fi
    echo "bench-serve: OK (all cached read handlers are allocation-free)"
}

case "${1:-}" in
sim)
    sim_mode "${2:-1s}"
    ;;
adaptive)
    adaptive_mode "${2:-3x}"
    ;;
stats)
    stats_mode "${2:-1s}"
    ;;
serve)
    serve_mode "${2:-1s}"
    ;;
-check)
    check_mode
    ;;
*)
    parallel_mode "${1:-3x}"
    ;;
esac
