#!/usr/bin/env bash
# Tier-1 verification: build, vet, static analysis, doc-comment gate,
# the internal/stats coverage floor, the focused parallel-engine race
# gate, the full test suite under the race detector, the hot-path
# benchmark regression gate, the sketch statistics O(1)-memory gate, a
# seeded end-to-end acceptance run whose observability artifacts are
# kept for upload, a 2x2 sweep-grid smoke asserting the TSV schema, and
# the adaptive and exact-stats escape-hatch byte-identity gates.
#
#   scripts/ci.sh          full budget (local pre-merge gate)
#   scripts/ci.sh -short   reduced budget for CI runners: -short tests,
#                          5s fuzz, tighter race timeout
#   scripts/ci.sh -soak    durability soak suite only: the randomized
#                          SIGKILL loop against the real binary plus a
#                          journaled multi-cycle soak run. Gated behind
#                          PRUDENTIA_SOAK=1 so local runs stay fast.
#   scripts/ci.sh -fleet   fleet distribution smoke: loopback
#                          coordinator + 2 worker processes, one worker
#                          SIGKILLed and restarted mid-cycle, the
#                          coordinator's report byte-compared against a
#                          serial run. Failure leaves the fleet timeline
#                          and worker logs in $ARTIFACTS.
#   scripts/ci.sh -serve   serving smoke: boot the daemon on an
#                          ephemeral port, hit every endpoint, assert
#                          ETag revalidation, byte-compare the daemon's
#                          text report against a batch run at the same
#                          seed, queue a submission, require a graceful
#                          SIGTERM drain, run the cached-handler
#                          zero-allocation bench gate, then the
#                          crash-safety gate (randomized SIGKILL
#                          restart loop with a durable submission,
#                          disk-fault chaos campaign) and the serving
#                          layer under the race detector. Failure
#                          leaves daemon logs and responses in
#                          $ARTIFACTS.
#
# Environment:
#   CI_REQUIRE_TOOLS=1   make missing staticcheck/govulncheck fatal
#                        (the GitHub workflow sets this; locally the
#                        tools are optional and skipped with a warning)
#   CI_ARTIFACT_DIR      where failure/acceptance artifacts land
#                        (default ci-artifacts/)
#   PRUDENTIA_SOAK=1     actually run the -soak suite (the GitHub
#                        workflow's soak step sets it; without it -soak
#                        is a no-op skip)
set -euo pipefail
cd "$(dirname "$0")/.."

SHORT=0
SOAK=0
FLEET=0
SERVE=0
for arg in "$@"; do
    case "$arg" in
        -short) SHORT=1 ;;
        -soak) SOAK=1 ;;
        -fleet) FLEET=1 ;;
        -serve) SERVE=1 ;;
        *) echo "usage: scripts/ci.sh [-short|-soak|-fleet|-serve]" >&2; exit 2 ;;
    esac
done

ARTIFACTS="${CI_ARTIFACT_DIR:-ci-artifacts}"
mkdir -p "$ARTIFACTS"
# Golden-trace failures append the first divergent line here, so a CI
# failure ships the exact point of divergence instead of making the
# investigator re-run the corpus locally.
export GOLDEN_DIVERGENCE_OUT="$PWD/$ARTIFACTS/golden-divergence.txt"
rm -f "$GOLDEN_DIVERGENCE_OUT"

# Durability soak suite (-soak): exercises the write-ahead journal,
# hung-trial reaper, and circuit breakers against the real binary — the
# randomized kill -9 loop plus a journaled multi-cycle soak run whose
# durability files land in $ARTIFACTS. A completed cycle deletes its
# journal and checkpoint, so any soak-* file left behind after a
# failure is exactly the post-mortem state worth uploading.
if [ "$SOAK" -eq 1 ]; then
    if [ "${PRUDENTIA_SOAK:-0}" != "1" ]; then
        echo "ci: -soak is gated behind PRUDENTIA_SOAK=1; skipping" >&2
        exit 0
    fi
    go build ./...
    go test -count=1 -timeout 15m -v \
        -run 'TestEndToEndKillLoop|TestEndToEndSoak|TestEndToEndReaperFlag' \
        ./cmd/prudentia
    go run ./cmd/prudentia -soak 3 -setting high -workers 2 -seed 7 \
        -services "iPerf (Cubic),iPerf (BBR)" \
        -journal "$ARTIFACTS/soak-trials.wal" \
        -checkpoint "$ARTIFACTS/soak-state.json" \
        -max-trial-wall 1e6 \
        -faults-out "$ARTIFACTS/soak-faults.jsonl" \
        -manifest "$ARTIFACTS/soak-manifest.json"
    [ -s "$ARTIFACTS/soak-manifest.json" ] || {
        echo "ci: soak run produced no manifest" >&2
        exit 1
    }
    echo "ci: soak suite passed"
    exit 0
fi

# Fleet distribution smoke (-fleet): one quick cycle sharded over a
# loopback coordinator and two worker processes, with one worker
# SIGKILLed and restarted mid-cycle. The coordinator's report (and the
# fact that it finishes at all) is the assertion: worker death re-queues
# leased pairs, the survivor re-executes them deterministically, and the
# merged output must equal a serial single-process run byte for byte.
# Worker logs and the fleet timeline stay in $ARTIFACTS on failure.
if [ "$FLEET" -eq 1 ]; then
    go build -o "$ARTIFACTS/prudentia" ./cmd/prudentia
    BIN="$ARTIFACTS/prudentia"
    FLEET_ARGS=(-cycles 1 -setting high -seed 23
                -services "iPerf (Reno),iPerf (Cubic),iPerf (BBR)")

    echo "ci: fleet smoke: serial reference run"
    "$BIN" "${FLEET_ARGS[@]}" > "$ARTIFACTS/fleet-serial.txt"

    echo "ci: fleet smoke: coordinator + 2 workers (one SIGKILLed mid-cycle)"
    rm -f "$ARTIFACTS/fleet-addr.txt"
    "$BIN" "${FLEET_ARGS[@]}" -coordinator -listen 127.0.0.1:0 \
        -listen-addr-file "$ARTIFACTS/fleet-addr.txt" -expect-workers 2 \
        -timeline "$ARTIFACTS/fleet-timeline.jsonl" \
        -manifest "$ARTIFACTS/fleet-manifest.json" \
        > "$ARTIFACTS/fleet-report.txt" 2> "$ARTIFACTS/fleet-coordinator.log" &
    COORD_PID=$!

    for _ in $(seq 100); do
        [ -s "$ARTIFACTS/fleet-addr.txt" ] && break
        sleep 0.1
    done
    [ -s "$ARTIFACTS/fleet-addr.txt" ] || {
        echo "ci: fleet coordinator never published its address" >&2
        cat "$ARTIFACTS/fleet-coordinator.log" >&2
        exit 1
    }
    ADDR="$(head -n1 "$ARTIFACTS/fleet-addr.txt")"

    start_worker() {
        "$BIN" "${FLEET_ARGS[@]}" -worker -connect "$ADDR" -worker-name "$1" \
            >> "$ARTIFACTS/fleet-$1.log" 2>&1 &
        echo $!
    }
    W1_PID=$(start_worker worker1)
    W2_PID=$(start_worker worker2)

    # SIGKILL worker1 mid-cycle, then restart it: its leased pairs are
    # re-queued, and the rejoined process picks up fresh assignments.
    sleep 0.4
    kill -9 "$W1_PID" 2>/dev/null || true
    W1_PID=$(start_worker worker1)

    FLEET_FAIL=0
    wait "$COORD_PID" || FLEET_FAIL=$?
    kill -9 "$W1_PID" "$W2_PID" 2>/dev/null || true
    wait "$W1_PID" "$W2_PID" 2>/dev/null || true
    if [ "$FLEET_FAIL" -ne 0 ]; then
        echo "ci: fleet coordinator exited $FLEET_FAIL; logs in $ARTIFACTS" >&2
        exit 1
    fi

    # Byte-compare from the cycle banner on (preamble chatter differs by
    # construction; fleet membership lines are on stderr, not in here).
    awk '/^=== cycle/{found=1} found' "$ARTIFACTS/fleet-serial.txt" > "$ARTIFACTS/fleet-serial-cycle.txt"
    awk '/^=== cycle/{found=1} found' "$ARTIFACTS/fleet-report.txt" > "$ARTIFACTS/fleet-report-cycle.txt"
    if ! diff -u "$ARTIFACTS/fleet-serial-cycle.txt" "$ARTIFACTS/fleet-report-cycle.txt"; then
        echo "ci: fleet report diverged from serial run; logs in $ARTIFACTS" >&2
        exit 1
    fi
    grep -q "re-queued" "$ARTIFACTS/fleet-coordinator.log" || {
        echo "ci: SIGKILL landed after the cycle finished (no re-queue observed); smoke still byte-identical" >&2
    }
    rm -f "$ARTIFACTS/prudentia" "$ARTIFACTS/fleet-serial-cycle.txt" "$ARTIFACTS/fleet-report-cycle.txt"
    echo "ci: fleet smoke passed (report byte-identical to serial)"
    exit 0
fi

# Serving smoke (-serve): the daemon is the same engine behind an HTTP
# API, so the assertions are the serving contract itself — readiness
# flips only after the first completed cycle, every artifact carries a
# strong ETag that revalidates to 304, the text report is byte-identical
# to a batch run at the same seed, a submission with a published access
# code queues with 202, and SIGTERM drains to a clean exit. The daemon
# log and every response body stay in $ARTIFACTS for the failure upload.
if [ "$SERVE" -eq 1 ]; then
    go build -o "$ARTIFACTS/prudentia" ./cmd/prudentia
    BIN="$ARTIFACTS/prudentia"
    SERVE_ARGS=(-cycles 1 -setting high -seed 42 -workers 2
                -services "iPerf (Cubic),iPerf (BBR)")

    echo "ci: serve smoke: batch reference run"
    "$BIN" "${SERVE_ARGS[@]}" > "$ARTIFACTS/serve-batch.txt"

    echo "ci: serve smoke: daemon boot on ephemeral port"
    rm -f "$ARTIFACTS/serve-addr.txt"
    "$BIN" "${SERVE_ARGS[@]}" -serve -serve-addr 127.0.0.1:0 \
        -serve-addr-file "$ARTIFACTS/serve-addr.txt" -cycle-interval 1h \
        > "$ARTIFACTS/serve-daemon.log" 2>&1 &
    SERVE_PID=$!
    trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

    for _ in $(seq 300); do
        [ -s "$ARTIFACTS/serve-addr.txt" ] && break
        sleep 0.1
    done
    [ -s "$ARTIFACTS/serve-addr.txt" ] || {
        echo "ci: daemon never published its address" >&2
        cat "$ARTIFACTS/serve-daemon.log" >&2
        exit 1
    }
    BASE="http://$(head -n1 "$ARTIFACTS/serve-addr.txt")"

    # /readyz must gate on the first completed cycle (503 until then,
    # 200 after); the first cycle at this budget takes a few seconds.
    READY=0
    for _ in $(seq 600); do
        if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
            READY=1
            break
        fi
        sleep 0.1
    done
    [ "$READY" -eq 1 ] || {
        echo "ci: daemon never became ready" >&2
        cat "$ARTIFACTS/serve-daemon.log" >&2
        exit 1
    }
    curl -fsS "$BASE/healthz" > /dev/null

    # Strong ETag + 304 revalidation on the JSON report.
    curl -fsS -D "$ARTIFACTS/serve-report-headers.txt" \
        -o "$ARTIFACTS/serve-report.json" "$BASE/api/v1/report"
    ETAG="$(awk 'tolower($1) == "etag:" { sub(/\r$/, "", $2); print $2 }' \
        "$ARTIFACTS/serve-report-headers.txt")"
    [ -n "$ETAG" ] || { echo "ci: report response carried no ETag" >&2; exit 1; }
    CODE="$(curl -s -o /dev/null -w '%{http_code}' \
        -H "If-None-Match: $ETAG" "$BASE/api/v1/report")"
    [ "$CODE" = "304" ] || {
        echo "ci: If-None-Match revalidation returned $CODE, want 304" >&2
        exit 1
    }

    # The daemon's text report must be byte-identical to the batch run
    # (batch stdout filtered to the report block, same as -fleet).
    curl -fsS -o "$ARTIFACTS/serve-report.txt" "$BASE/api/v1/report.txt"
    awk '/^=== cycle/{found=1} found' "$ARTIFACTS/serve-batch.txt" > "$ARTIFACTS/serve-batch-cycle.txt"
    if ! diff -u "$ARTIFACTS/serve-batch-cycle.txt" "$ARTIFACTS/serve-report.txt"; then
        echo "ci: daemon report.txt diverged from the batch run; responses in $ARTIFACTS" >&2
        exit 1
    fi

    # Remaining read endpoints respond with their documented shapes.
    curl -fsS -o "$ARTIFACTS/serve-heatmap.html" "$BASE/api/v1/heatmap"
    grep -q '<table class="heatmap">' "$ARTIFACTS/serve-heatmap.html" || {
        echo "ci: heatmap response is missing its table" >&2
        exit 1
    }
    curl -fsS -o "$ARTIFACTS/serve-faults.jsonl" "$BASE/api/v1/faults"
    curl -fsS -o "$ARTIFACTS/serve-cycles.json" "$BASE/api/v1/cycles"
    grep -q '"latest": 1' "$ARTIFACTS/serve-cycles.json" || {
        echo "ci: cycles index does not report cycle 1 as latest" >&2
        exit 1
    }
    curl -fsS -o "$ARTIFACTS/serve-metrics.prom" "$BASE/metrics"
    grep -q 'prudentia_http_requests_total' "$ARTIFACTS/serve-metrics.prom" || {
        echo "ci: /metrics is missing the HTTP request counters" >&2
        exit 1
    }

    # Submissions queue behind the published access code.
    CODE="$(curl -s -o "$ARTIFACTS/serve-submission.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        -d '{"url":"https://example.com/page","access_code":"KD4p1Z8Gs1SVPHUrTOVTMNHtvUnMSmvZ","tenant":"ci"}' \
        "$BASE/api/v1/submissions")"
    [ "$CODE" = "202" ] || {
        echo "ci: submission returned $CODE, want 202 ($(cat "$ARTIFACTS/serve-submission.json"))" >&2
        exit 1
    }

    # Graceful drain: SIGTERM → clean exit → drain line in the log.
    kill -TERM "$SERVE_PID"
    SERVE_FAIL=0
    wait "$SERVE_PID" || SERVE_FAIL=$?
    trap - EXIT
    if [ "$SERVE_FAIL" -ne 0 ]; then
        echo "ci: daemon exited $SERVE_FAIL after SIGTERM; log in $ARTIFACTS" >&2
        exit 1
    fi
    grep -q 'serve: drained and stopped' "$ARTIFACTS/serve-daemon.log" || {
        echo "ci: daemon log is missing the graceful-drain line" >&2
        exit 1
    }

    # Cached-handler zero-allocation bench gate: every read-path hit and
    # 304 must stay allocation-free (the contract TestZeroAllocHotPath
    # pins per-handler; this measures the shipped numbers and fails on
    # any alloc). The reduction lands in the artifact dir, never on the
    # committed BENCH_serve.json.
    BENCH_SERVE_OUT="$PWD/$ARTIFACTS/BENCH_serve.json" scripts/bench.sh serve

    # Crash-safety gate: SIGKILL the stateful (-serve-dir) daemon at
    # five randomized, seed-logged points across restarts — the queued
    # submission must survive exactly once and the converged artifacts
    # must be byte-identical to an uninterrupted daemon — plus a full
    # campaign with the -chaos-disk fault plan armed. Daemon logs and
    # state directories stay in $ARTIFACTS on failure.
    echo "ci: serve crash-safety gate (kill-restart loop + disk chaos)"
    if ! PRUDENTIA_E2E_ARTIFACTS="$PWD/$ARTIFACTS/serve-crash" \
        go test -count=1 -timeout 15m -v \
        -run 'TestServeKillRestartLoop|TestServeDiskChaosSurvives' ./cmd/prudentia; then
        echo "ci: serve crash-safety gate failed; daemon logs in $ARTIFACTS/serve-crash" >&2
        exit 1
    fi
    rm -rf "$ARTIFACTS/serve-crash"

    # The serving layer's concurrency contract — lock-free readers
    # against the scheduler's cache swaps, the drain flag, WAL
    # serialization under tenantTable.mu — under the race detector.
    go test -race -count=1 -timeout 10m ./internal/serve

    rm -f "$ARTIFACTS/prudentia" "$ARTIFACTS/serve-batch-cycle.txt"
    echo "ci: serve smoke passed (ETag/304, byte-identical report, 202 submission, graceful drain, 0-alloc handlers, kill-restart durability, race-clean)"
    exit 0
fi

go build ./...
go vet ./...

# Static analysis / vulnerability scan: optional locally (warn + skip
# when the tool is absent), mandatory in the GitHub workflow via
# CI_REQUIRE_TOOLS=1. No network or module downloads happen here beyond
# what the tools themselves need.
run_tool() {
    local tool="$1"
    shift
    if command -v "$tool" >/dev/null 2>&1; then
        echo "ci: running $tool"
        "$tool" "$@"
    elif [ "${CI_REQUIRE_TOOLS:-0}" = "1" ]; then
        echo "ci: $tool not installed but CI_REQUIRE_TOOLS=1 — failing" >&2
        exit 1
    else
        echo "ci: $tool not installed; skipping (set CI_REQUIRE_TOOLS=1 to make this fatal)" >&2
    fi
}
run_tool staticcheck ./...
run_tool govulncheck ./...

# Documentation gate: every package must carry a godoc package comment
# (a comment line immediately preceding the package clause in at least
# one non-test file). ARCHITECTURE.md points readers at these docs;
# keep them present.
missing=0
for dir in internal/*/ cmd/*/ .; do
    ok=0
    any=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        any=1
        if awk '/^package /{ if (prev ~ /^(\/\/|\*\/)/) found=1; exit } { prev=$0 }
                END { exit !found }' "$f"; then
            ok=1
            break
        fi
    done
    if [ "$any" -eq 1 ] && [ "$ok" -eq 0 ]; then
        echo "ci: package in $dir has no godoc package comment" >&2
        missing=1
    fi
done
[ "$missing" -eq 0 ] || { echo "ci: doc gate failed" >&2; exit 1; }

# Exported-symbol doc gate: the packages whose invariants other layers
# lean on (the stats stopper's purity, the fleet protocol's byte
# identity, the journal's durability frame) must document every
# exported symbol — a top-level exported func, method, type, var, or
# const with no doc comment immediately above it fails the build.
for pkg in internal/stats internal/fleet internal/journal; do
    for f in "$pkg"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        awk -v file="$f" '
            /^(func [A-Z]|func \([^)]*\) [A-Z]|type [A-Z]|var [A-Z]|const [A-Z])/ {
                if (prev !~ /^\/\// && prev !~ /\*\/$/) {
                    sym = $0
                    sub(/[({=].*$/, "", sym)
                    printf "ci: %s:%d: exported symbol has no doc comment: %s\n", file, NR, sym > "/dev/stderr"
                    bad = 1
                }
            }
            { prev = $0 }
            END { exit bad }
        ' "$f" || missing=1
    done
done
[ "$missing" -eq 0 ] || { echo "ci: exported-symbol doc gate failed" >&2; exit 1; }

# Statistics coverage floor: internal/stats carries the quantile sketch
# codec and the sequential stopper that every other layer's byte
# identity leans on, so its test coverage may not erode below 85% of
# statements (89.8% when the floor was set).
STATS_COV="$(go test -count=1 -cover ./internal/stats | awk '
    { for (i = 1; i < NF; i++) if ($i == "coverage:") { sub(/%/, "", $(i+1)); print $(i+1) } }')"
[ -n "$STATS_COV" ] || { echo "ci: could not measure internal/stats coverage" >&2; exit 1; }
if ! awk -v c="$STATS_COV" 'BEGIN { exit !(c >= 85) }'; then
    echo "ci: internal/stats coverage ${STATS_COV}% fell below the 85% floor" >&2
    exit 1
fi
echo "ci: internal/stats coverage ${STATS_COV}% (floor 85%)"

# Focused race gate for the parallel matrix engine: the determinism and
# interrupt/resume tests double as the data-race probes for the worker
# pool, ordered merge, and shared fault ledger.
if [ "$SHORT" -eq 1 ]; then
    go test -race -count=1 -timeout 10m -short -run 'Parallel|Determinism' ./internal/core
else
    go test -race -count=1 -timeout 10m -run 'Parallel|Determinism' ./internal/core
fi

# Fuzz smoke gate: randomized operation sequences against the drop-tail
# queue's structural invariants (occupancy, FIFO, byte conservation).
# Long exploratory campaigns run out-of-band; this catches gross
# regressions on every CI pass.
if [ "$SHORT" -eq 1 ]; then
    go test -run '^$' -fuzz '^FuzzBottleneckQueue$' -fuzztime=5s ./internal/netem
else
    go test -run '^$' -fuzz '^FuzzBottleneckQueue$' -fuzztime=10s ./internal/netem
fi

# The race detector slows the simulation-heavy core tests well past the
# default 10m per-package budget. -short trims the slowest e2e tests on
# CI runners; the full budget stays the local pre-merge gate.
if [ "$SHORT" -eq 1 ]; then
    go test -race -count=1 -timeout 25m -short ./...
else
    go test -race -count=1 -timeout 45m ./...
fi

# Hot-path benchmark regression gate: re-runs the engine/bottleneck
# microbenchmarks (min of 3) and fails on >10% ns/op regression or any
# allocs/op increase versus the committed BENCH_sim.json. On failure the
# fresh candidate reduction stays in the artifact dir for comparison
# against the committed baseline.
if ! BENCH_CHECK_RAW_OUT="$PWD/$ARTIFACTS/BENCH_sim.candidate.txt" scripts/bench.sh -check; then
    echo "ci: bench gate failed; candidate reduction in $ARTIFACTS/BENCH_sim.candidate.txt" >&2
    cp -f BENCH_sim.json "$ARTIFACTS/BENCH_sim.baseline.json" 2>/dev/null || true
    exit 1
fi
rm -f "$ARTIFACTS/BENCH_sim.candidate.txt"

# Sketch statistics gate: the compacted-regime Add hot path must stay
# allocation-free and one sketch's encoded state must stay bounded when
# the trial count grows 10x. Both measurements are deterministic (no
# ns/op involved), so unlike the bench gate above there is no
# runner-noise tolerance. The fresh reduction lands in the artifact dir
# rather than dirtying the committed BENCH_stats.json.
BENCH_STATS_OUT="$PWD/$ARTIFACTS/BENCH_stats.json" scripts/bench.sh stats

# Seeded end-to-end acceptance run: one quick cycle of the real binary
# with the full observability surface enabled. The artifacts (metrics,
# timeline, manifest) are kept for upload; the reconciliation logic
# itself is asserted by cmd/prudentia's end-to-end tests above — this
# proves the shipped binary produces them outside the test harness too.
go run ./cmd/prudentia -cycles 1 -setting high -workers 4 -seed 42 \
    -services "iPerf (Cubic),iPerf (BBR)" \
    -metrics-out "$ARTIFACTS/metrics.prom" \
    -timeline "$ARTIFACTS/timeline.jsonl" \
    -manifest "$ARTIFACTS/manifest.json" \
    -faults-out "$ARTIFACTS/faults.jsonl"
for f in metrics.prom timeline.jsonl manifest.json; do
    [ -s "$ARTIFACTS/$f" ] || { echo "ci: acceptance run produced no $f" >&2; exit 1; }
done
echo "ci: acceptance artifacts in $ARTIFACTS/"

# Sweep smoke: a 2x2 grid (2 rates x 2 RTTs, one queue depth, two CCAs)
# through the real -sweep driver via its scripts/sweep.sh wrapper. The
# TSV header is the sweep pipeline's public schema — sweep.go documents
# that it may only be extended together with this assertion — and the
# row count pins the grid shape: 4 cells x 3 pairs x 2 slots.
SWEEP_RATES="8,50" SWEEP_RTTS="25,50" SWEEP_QUEUES="64" \
    SWEEP_CCAS="iPerf (Cubic),iPerf (BBR)" \
    SWEEP_OUT="$ARTIFACTS/sweep-smoke" SWEEP_SEED=42 \
    scripts/sweep.sh -workers 4
SWEEP_HEADER="$(printf 'rate_mbps\trtt_ms\tqueue_pkts\tincumbent\tcontender\tslot\tservice\tn\tmedian_share_pct\tiqr_share_pct\tci_lo_pct\tci_hi_pct\tverdict')"
if [ "$(head -n1 "$ARTIFACTS/sweep-smoke.tsv")" != "$SWEEP_HEADER" ]; then
    echo "ci: sweep TSV header diverged from the documented schema" >&2
    exit 1
fi
SWEEP_ROWS=$(($(wc -l < "$ARTIFACTS/sweep-smoke.tsv") - 1))
[ "$SWEEP_ROWS" -eq 24 ] || {
    echo "ci: sweep smoke produced $SWEEP_ROWS rows, want 24 (4 cells x 3 pairs x 2 slots)" >&2
    exit 1
}
grep -q '"schema": "prudentia.sweep/1"' "$ARTIFACTS/sweep-smoke.json" || {
    echo "ci: sweep JSON missing the prudentia.sweep/1 schema marker" >&2
    exit 1
}
echo "ci: sweep smoke passed (TSV schema + 24 rows + JSON schema marker)"

# Adaptive escape-hatch gate: -adaptive -fixed-trials must disarm the
# adaptive subsystem completely — its report is byte-compared against
# the plain serial run above's golden output. Any divergence means the
# adaptive code path leaked into fixed-budget execution.
go run ./cmd/prudentia -cycles 1 -setting high -workers 4 -seed 42 \
    -services "iPerf (Cubic),iPerf (BBR)" \
    > "$ARTIFACTS/report-serial.txt"
go run ./cmd/prudentia -cycles 1 -setting high -workers 4 -seed 42 \
    -services "iPerf (Cubic),iPerf (BBR)" \
    -adaptive -fixed-trials \
    > "$ARTIFACTS/report-fixed-trials.txt"
if ! diff -u "$ARTIFACTS/report-serial.txt" "$ARTIFACTS/report-fixed-trials.txt"; then
    echo "ci: -adaptive -fixed-trials report diverged from the plain serial run" >&2
    exit 1
fi
echo "ci: adaptive escape hatch byte-identical to serial report"

# Statistics escape-hatch gate: the default run above is sketch-backed;
# -exact-stats retains the raw per-trial ledger instead. The two reports
# must be byte-identical — any divergence means the sketches left their
# exact regime at standard trial budgets, or a report accessor stopped
# reading the sketch and exact paths through the same arithmetic.
go run ./cmd/prudentia -cycles 1 -setting high -workers 4 -seed 42 \
    -services "iPerf (Cubic),iPerf (BBR)" \
    -exact-stats \
    > "$ARTIFACTS/report-exact-stats.txt"
if ! diff -u "$ARTIFACTS/report-serial.txt" "$ARTIFACTS/report-exact-stats.txt"; then
    echo "ci: -exact-stats report diverged from the default sketch-backed run" >&2
    exit 1
fi
rm -f "$ARTIFACTS/report-serial.txt" "$ARTIFACTS/report-fixed-trials.txt" "$ARTIFACTS/report-exact-stats.txt"
echo "ci: statistics escape hatch byte-identical to sketch-backed report"
