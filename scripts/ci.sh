#!/usr/bin/env bash
# Tier-1 verification: build, vet, and the full test suite under the
# race detector (the concurrency smoke tests in internal/core rely on
# -race to catch shared-state regressions in the scheduler).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The race detector slows the simulation-heavy core tests well past the
# default 10m per-package budget.
go test -race -count=1 -timeout 45m ./...
