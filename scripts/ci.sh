#!/usr/bin/env bash
# Tier-1 verification: build, vet, doc-comment gate, the focused
# parallel-engine race gate, and the full test suite under the race
# detector (the concurrency smoke tests in internal/core rely on -race
# to catch shared-state regressions in the scheduler).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Documentation gate: every package must carry a godoc package comment
# (a comment line immediately preceding the package clause in at least
# one non-test file). ARCHITECTURE.md points readers at these docs;
# keep them present.
missing=0
for dir in internal/*/ cmd/*/ .; do
    ok=0
    any=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        any=1
        if awk '/^package /{ if (prev ~ /^(\/\/|\*\/)/) found=1; exit } { prev=$0 }
                END { exit !found }' "$f"; then
            ok=1
            break
        fi
    done
    if [ "$any" -eq 1 ] && [ "$ok" -eq 0 ]; then
        echo "ci: package in $dir has no godoc package comment" >&2
        missing=1
    fi
done
[ "$missing" -eq 0 ] || { echo "ci: doc gate failed" >&2; exit 1; }

# Focused race gate for the parallel matrix engine: the determinism and
# interrupt/resume tests double as the data-race probes for the worker
# pool, ordered merge, and shared fault ledger.
go test -race -count=1 -timeout 10m -run 'Parallel|Determinism' ./internal/core

# Fuzz smoke gate: ten seconds of randomized operation sequences against
# the drop-tail queue's structural invariants (occupancy, FIFO, byte
# conservation). Long exploratory campaigns run out-of-band; this catches
# gross regressions on every CI pass.
go test -run '^$' -fuzz '^FuzzBottleneckQueue$' -fuzztime=10s ./internal/netem

# The race detector slows the simulation-heavy core tests well past the
# default 10m per-package budget.
go test -race -count=1 -timeout 45m ./...

# Hot-path benchmark regression gate: re-runs the engine/bottleneck
# microbenchmarks (min of 3) and fails on >10% ns/op regression or any
# allocs/op increase versus the committed BENCH_sim.json.
scripts/bench.sh -check
