package prudentia

import (
	"testing"
)

func TestServicesListsCatalog(t *testing.T) {
	names := Services()
	if len(names) != 15 {
		t.Fatalf("catalog = %d entries", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"YouTube", "Mega", "iPerf (Reno)", "Google Meet"} {
		if !seen[want] {
			t.Fatalf("catalog missing %q", want)
		}
	}
}

func TestSettingConfig(t *testing.T) {
	hc, err := HighlyConstrained.Config()
	if err != nil || hc.RateBps != 8_000_000 {
		t.Fatalf("highly = %+v, %v", hc, err)
	}
	mc, err := ModeratelyConstrained.Config()
	if err != nil || mc.RateBps != 50_000_000 {
		t.Fatalf("moderately = %+v, %v", mc, err)
	}
	if _, err := Setting("bogus").Config(); err == nil {
		t.Fatal("bogus setting accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Experiment{Incumbent: "nope", Setting: HighlyConstrained}); err == nil {
		t.Fatal("unknown incumbent accepted")
	}
	if _, err := Run(Experiment{Incumbent: "YouTube", Contender: "nope", Setting: HighlyConstrained}); err == nil {
		t.Fatal("unknown contender accepted")
	}
	if _, err := Run(Experiment{Incumbent: "YouTube", Setting: "x"}); err == nil {
		t.Fatal("unknown setting accepted")
	}
}

func TestRunPairQuick(t *testing.T) {
	res, err := Run(Experiment{
		Incumbent: "iPerf (Reno)",
		Contender: "iPerf (Reno)",
		Setting:   HighlyConstrained,
		Trials:    2,
		Quick:     true,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2 {
		t.Fatalf("trials = %d", res.Trials)
	}
	total := res.MedianMbps[0] + res.MedianMbps[1]
	if total < 7 || total > 8.5 {
		t.Fatalf("reno self-pair total = %.2f Mbps", total)
	}
	// Symmetric self-pair should land near 100/100.
	for slot := 0; slot < 2; slot++ {
		if res.MedianSharePct[slot] < 60 || res.MedianSharePct[slot] > 140 {
			t.Fatalf("self-pair share[%d] = %.0f%%", slot, res.MedianSharePct[slot])
		}
	}
}

func TestRunSoloQuick(t *testing.T) {
	res, err := Run(Experiment{
		Incumbent: "iPerf (Cubic)",
		Setting:   HighlyConstrained,
		Trials:    1,
		Quick:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianMbps[0] < 6.5 {
		t.Fatalf("solo cubic = %.2f Mbps on 8 Mbps link", res.MedianMbps[0])
	}
	if res.Contender != "" || res.MedianMbps[1] != 0 {
		t.Fatalf("solo run carried contender data: %+v", res)
	}
}

func TestNewWatchdogConfigured(t *testing.T) {
	w := NewWatchdog()
	if len(w.Services) == 0 || len(w.Settings) != 2 || len(w.AccessCodes) != 5 {
		t.Fatalf("watchdog misconfigured: %d services, %d settings, %d codes",
			len(w.Services), len(w.Settings), len(w.AccessCodes))
	}
}
