package browser

import "testing"

func TestTestbedClientIsFullFidelity(t *testing.T) {
	c := TestbedClient()
	if !c.FullFidelity() {
		t.Fatal("testbed client must be full fidelity (§3.3)")
	}
	if c.RenderCapBps() != 0 {
		t.Fatalf("testbed client capped at %d", c.RenderCapBps())
	}
}

func TestHeadlessClientIsCapped(t *testing.T) {
	c := HeadlessClient()
	if c.FullFidelity() {
		t.Fatal("headless client must not be full fidelity")
	}
	if cap := c.RenderCapBps(); cap == 0 || cap > 8_000_000 {
		t.Fatalf("headless cap = %d", cap)
	}
}

func TestRenderCapLadder(t *testing.T) {
	// Each §3.3 failure mode must cap the renderable bitrate.
	cases := []struct {
		name string
		c    Client
		// wantCapped: the client must be constrained.
		wantCapped bool
	}{
		{"full", TestbedClient(), false},
		{"headless", Client{Headless: true}, true},
		{"no GPU", Client{HasGPU: false, DisplayHeight: 2160}, true},
		{"no VP9", Client{HasGPU: true, HardwareVP9: false, DisplayHeight: 2160}, true},
		{"1080p monitor", Client{HasGPU: true, HardwareVP9: true, DisplayHeight: 1080}, true},
		{"720p monitor", Client{HasGPU: true, HardwareVP9: true, DisplayHeight: 720}, true},
	}
	for _, c := range cases {
		got := c.c.RenderCapBps()
		if c.wantCapped && got == 0 {
			t.Errorf("%s: expected a render cap", c.name)
		}
		if !c.wantCapped && got != 0 {
			t.Errorf("%s: unexpected cap %d", c.name, got)
		}
	}
}

func TestSmallerDisplayNeverAllowsMore(t *testing.T) {
	big := Client{HasGPU: true, HardwareVP9: true, DisplayHeight: 1080}
	small := Client{HasGPU: true, HardwareVP9: true, DisplayHeight: 720}
	if small.RenderCapBps() > big.RenderCapBps() {
		t.Fatal("smaller display allows higher bitrate")
	}
}

func TestCacheWipeRequiredForFidelity(t *testing.T) {
	c := TestbedClient()
	c.CacheWiped = false
	if c.FullFidelity() {
		t.Fatal("stale browser state must not count as full fidelity")
	}
}
