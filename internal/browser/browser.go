// Package browser models the client environment Prudentia drives its
// services through. §3.3 of the paper ("Application Fidelity") documents
// that the client's rendering capability changes the *network* behaviour
// of video services: headless Chrome, missing GPUs, or GPUs without VP9
// decode all cause players to request lower bitrates, silently invalidating
// fairness measurements. The real testbed therefore uses Mac Minis with
// desktop GPUs and a 4K HDMI monitor; this package reproduces the effect
// so that experiments built on the simulator face the same pitfall — and
// so the watchdog can assert it is configured for full fidelity.
package browser

// Client describes the automated browser client environment.
type Client struct {
	// Headless reports whether the browser runs without a real display
	// (e.g. rendering to a virtual xbuf device).
	Headless bool
	// HasGPU reports whether a desktop-class GPU is present.
	HasGPU bool
	// HardwareVP9 reports whether the GPU supports native VP9 decode;
	// without it 4K decode falls behind and players downswitch.
	HardwareVP9 bool
	// DisplayHeight is the attached monitor's vertical resolution
	// (2160 for the 4K monitors the paper requires).
	DisplayHeight int
	// CacheWiped reports whether cookies and cache were cleared before
	// the run; Prudentia wipes both so every trial fetches everything
	// over the network (§3.3).
	CacheWiped bool
}

// TestbedClient returns the full-fidelity configuration the paper
// settled on: real display, desktop GPU with VP9 decode, 4K monitor,
// fresh browser state.
func TestbedClient() Client {
	return Client{
		HasGPU:        true,
		HardwareVP9:   true,
		DisplayHeight: 2160,
		CacheWiped:    true,
	}
}

// HeadlessClient returns the configuration the paper warns against.
func HeadlessClient() Client {
	return Client{Headless: true, CacheWiped: true}
}

// RenderCapBps returns the maximum video bitrate (bits/sec) the client
// can render without falling behind, which caps the rungs an ABR player
// will request. Zero means unconstrained (full 4K fidelity).
//
// The thresholds mirror §3.3's observations: headless/virtual-display
// clients are perceived as unable to keep up with the top (4K) bitrates;
// clients without hardware VP9 decode cannot sustain 4K either; small
// displays cap the useful resolution.
func (c Client) RenderCapBps() int64 {
	switch {
	case c.Headless:
		// Virtual framebuffer: players settle around 1080p-class rates.
		return 4_000_000
	case !c.HasGPU:
		// Software decode keeps up with ~1440p at best.
		return 8_000_000
	case !c.HardwareVP9:
		// GPU without native VP9: 4K VP9 decode falls behind (§3.3).
		return 8_000_000
	case c.DisplayHeight > 0 && c.DisplayHeight < 2160:
		// Player will not fetch rungs above the display's resolution.
		if c.DisplayHeight < 1080 {
			return 3_000_000
		}
		return 8_000_000
	default:
		return 0
	}
}

// FullFidelity reports whether the client reproduces real-user network
// behaviour for 4K video, i.e. whether RenderCapBps is unconstrained and
// browser state is fresh.
func (c Client) FullFidelity() bool {
	return c.RenderCapBps() == 0 && c.CacheWiped
}
