// Package metrics computes the fairness quantities Prudentia reports:
// application-limit-aware max-min fair (MmF) shares (§2.2), link
// utilization (Fig 11), loss rates (Fig 12), and queueing delay (Fig 13),
// plus throughput time series used by Figs 4 and 8.
package metrics

import (
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// MmFShares computes the max-min fair allocation in bits/sec for two
// services sharing a bottleneck of rate linkBps, where caps holds each
// service's intrinsic application rate limit (0 = unlimited). Per §4:
// in most experiments each share is simply half the link, but a service
// whose cap is below half the link is allocated its cap, with the
// remainder going to its competitor (video services at 50 Mbps, RTC
// everywhere, OneDrive at >90 Mbps).
func MmFShares(linkBps int64, caps [2]int64) [2]float64 {
	half := float64(linkBps) / 2
	c0, c1 := float64(caps[0]), float64(caps[1])
	unlimited0 := caps[0] <= 0 || c0 >= half
	unlimited1 := caps[1] <= 0 || c1 >= half

	switch {
	case unlimited0 && unlimited1:
		return [2]float64{half, half}
	case !unlimited0 && unlimited1:
		rest := float64(linkBps) - c0
		return [2]float64{c0, rest}
	case unlimited0 && !unlimited1:
		rest := float64(linkBps) - c1
		return [2]float64{rest, c1}
	default:
		// Both app-limited: each gets its cap (the link is not the
		// constraint); shares are measured against the caps themselves.
		return [2]float64{c0, c1}
	}
}

// SharePercent converts a measured throughput into the percentage of the
// max-min fair share achieved, the paper's headline number (Fig 2).
func SharePercent(measuredBps, fairShareBps float64) float64 {
	if fairShareBps <= 0 {
		return 0
	}
	return 100 * measuredBps / fairShareBps
}

// LinkUtilization is the summed delivered throughput of both services
// divided by link capacity over the measurement window (Fig 11).
func LinkUtilization(deliveredBytes [2]int64, linkBps int64, window sim.Time) float64 {
	if linkBps <= 0 || window <= 0 {
		return 0
	}
	total := float64(deliveredBytes[0]+deliveredBytes[1]) * 8
	return total / (float64(linkBps) * window.Seconds())
}

// WindowStats is the difference of two bottleneck snapshots, i.e. what
// happened during the measurement window (the middle six minutes of a
// ten-minute trial, per §3.4).
type WindowStats struct {
	Arrived   int64
	Dropped   int64
	Delivered int64
	Bytes     int64
	QueueTime sim.Time
}

// Sub subtracts an earlier snapshot from a later one.
func Sub(later, earlier netem.ServiceStats) WindowStats {
	return WindowStats{
		Arrived:   later.ArrivedPackets - earlier.ArrivedPackets,
		Dropped:   later.DroppedPackets - earlier.DroppedPackets,
		Delivered: later.DeliveredPackets - earlier.DeliveredPackets,
		Bytes:     later.DeliveredBytes - earlier.DeliveredBytes,
		QueueTime: later.QueueDelaySum - earlier.QueueDelaySum,
	}
}

// LossRate returns the window's drop fraction.
func (w WindowStats) LossRate() float64 {
	if w.Arrived == 0 {
		return 0
	}
	return float64(w.Dropped) / float64(w.Arrived)
}

// MeanQueueDelay returns the window's average queueing delay.
func (w WindowStats) MeanQueueDelay() sim.Time {
	if w.Delivered == 0 {
		return 0
	}
	return w.QueueTime / sim.Time(w.Delivered)
}

// ThroughputMbps returns the window's delivered rate in Mbps.
func (w WindowStats) ThroughputMbps(window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(w.Bytes) * 8 / window.Seconds() / 1e6
}

// RatePoint is one sample of a per-service throughput time series.
type RatePoint struct {
	At   sim.Time
	Mbps [2]float64
}

// RateSampler periodically samples per-slot delivered bytes at the
// bottleneck and converts deltas into Mbps, producing the series Fig 4
// and Fig 9's time plots are built from.
type RateSampler struct {
	Points []RatePoint

	eng   *sim.Engine
	bneck *netem.Bottleneck
	every sim.Time
	prev  [2]int64
}

// NewRateSampler starts sampling immediately with the given period.
func NewRateSampler(eng *sim.Engine, b *netem.Bottleneck, every sim.Time) *RateSampler {
	rs := &RateSampler{eng: eng, bneck: b, every: every}
	rs.prev = [2]int64{b.Stats(0).DeliveredBytes, b.Stats(1).DeliveredBytes}
	eng.After(every, rs.tick)
	return rs
}

func (rs *RateSampler) tick(now sim.Time) {
	cur := [2]int64{rs.bneck.Stats(0).DeliveredBytes, rs.bneck.Stats(1).DeliveredBytes}
	p := RatePoint{At: now}
	for i := range cur {
		p.Mbps[i] = float64(cur[i]-rs.prev[i]) * 8 / rs.every.Seconds() / 1e6
	}
	rs.prev = cur
	rs.Points = append(rs.Points, p)
	rs.eng.After(rs.every, rs.tick)
}
