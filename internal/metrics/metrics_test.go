package metrics

import (
	"testing"
	"testing/quick"

	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

func TestMmFSharesUnlimited(t *testing.T) {
	got := MmFShares(50_000_000, [2]int64{0, 0})
	if got[0] != 25e6 || got[1] != 25e6 {
		t.Fatalf("unlimited shares = %v", got)
	}
}

func TestMmFSharesOneCapped(t *testing.T) {
	// YouTube (13 Mbps cap) vs bulk at 50 Mbps: 13 / 37 (the §4 rule).
	got := MmFShares(50_000_000, [2]int64{13_000_000, 0})
	if got[0] != 13e6 || got[1] != 37e6 {
		t.Fatalf("capped shares = %v", got)
	}
	// Mirror image.
	got = MmFShares(50_000_000, [2]int64{0, 13_000_000})
	if got[0] != 37e6 || got[1] != 13e6 {
		t.Fatalf("mirrored shares = %v", got)
	}
}

func TestMmFSharesCapAboveHalfIsIrrelevant(t *testing.T) {
	// A 45 Mbps cap does not constrain a 25 Mbps fair share.
	got := MmFShares(50_000_000, [2]int64{45_000_000, 0})
	if got[0] != 25e6 || got[1] != 25e6 {
		t.Fatalf("high cap shares = %v", got)
	}
}

func TestMmFSharesBothCapped(t *testing.T) {
	// Meet (1.5) vs Teams (2.6) at 8 Mbps: both app-limited; shares are
	// the caps themselves.
	got := MmFShares(8_000_000, [2]int64{1_500_000, 2_600_000})
	if got[0] != 1.5e6 || got[1] != 2.6e6 {
		t.Fatalf("both-capped shares = %v", got)
	}
}

func TestMmFSharesConservationProperty(t *testing.T) {
	// For at most one capped service, shares always sum to link rate.
	if err := quick.Check(func(link uint32, cap uint32) bool {
		l := int64(link%100_000_000) + 1_000_000
		c := int64(cap % 50_000_000)
		s := MmFShares(l, [2]int64{c, 0})
		return int64(s[0]+s[1]) == l
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharePercent(t *testing.T) {
	if got := SharePercent(20e6, 25e6); got != 80 {
		t.Fatalf("SharePercent = %v", got)
	}
	if got := SharePercent(10, 0); got != 0 {
		t.Fatalf("zero fair share should give 0, got %v", got)
	}
}

func TestLinkUtilization(t *testing.T) {
	// 2 services × 18.75 MB over 6s on 50 Mbps = full utilization.
	got := LinkUtilization([2]int64{18_750_000, 18_750_000}, 50_000_000, 6*sim.Second)
	if got < 0.999 || got > 1.001 {
		t.Fatalf("utilization = %v", got)
	}
	if LinkUtilization([2]int64{1, 1}, 0, sim.Second) != 0 {
		t.Fatal("zero link rate")
	}
}

func TestWindowStatsSub(t *testing.T) {
	earlier := netem.ServiceStats{ArrivedPackets: 100, DroppedPackets: 5, DeliveredPackets: 95, DeliveredBytes: 95 * 1500, QueueDelaySum: 95 * sim.Millisecond}
	later := netem.ServiceStats{ArrivedPackets: 300, DroppedPackets: 15, DeliveredPackets: 285, DeliveredBytes: 285 * 1500, QueueDelaySum: 475 * sim.Millisecond}
	w := Sub(later, earlier)
	if w.Arrived != 200 || w.Dropped != 10 || w.Delivered != 190 {
		t.Fatalf("window = %+v", w)
	}
	if got := w.LossRate(); got != 0.05 {
		t.Fatalf("loss = %v", got)
	}
	if got := w.MeanQueueDelay(); got != 2*sim.Millisecond {
		t.Fatalf("mean qdelay = %v", got)
	}
	if got := w.ThroughputMbps(2 * sim.Second); got != float64(190*1500*8)/2/1e6 {
		t.Fatalf("mbps = %v", got)
	}
}

func TestWindowStatsDegenerate(t *testing.T) {
	var w WindowStats
	if w.LossRate() != 0 || w.MeanQueueDelay() != 0 || w.ThroughputMbps(0) != 0 {
		t.Fatal("degenerate window stats should be zero")
	}
}

func TestRateSampler(t *testing.T) {
	eng := sim.NewEngine()
	b := netem.NewBottleneck(eng, 12_000_000, 100, 0)
	b.Output = func(sim.Time, *netem.Packet) {}
	rs := NewRateSampler(eng, b, 100*sim.Millisecond)
	// Feed 1 packet per ms for 500 ms on slot 0 => 12 Mbps measured.
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * sim.Millisecond
		eng.Schedule(at, func(now sim.Time) {
			b.Enqueue(now, &netem.Packet{Size: 1500, Service: 0})
		})
	}
	eng.RunUntil(600 * sim.Millisecond)
	pts := rs.Points
	if len(pts) < 5 {
		t.Fatalf("samples = %d", len(pts))
	}
	// Middle samples should read ~12 Mbps on slot 0 and 0 on slot 1.
	mid := pts[2]
	if mid.Mbps[0] < 11 || mid.Mbps[0] > 13 {
		t.Fatalf("slot0 rate = %v", mid.Mbps[0])
	}
	if mid.Mbps[1] != 0 {
		t.Fatalf("slot1 rate = %v", mid.Mbps[1])
	}
}
