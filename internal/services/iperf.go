package services

import (
	"fmt"

	"prudentia/internal/cca"
	"prudentia/internal/sim"
	"prudentia/internal/transport"
)

// AlgFactory builds a fresh congestion controller per flow. Each flow
// gets its own RNG stream so multi-flow services de-synchronize the way
// independent connections do.
type AlgFactory func(rng *sim.RNG) cca.Algorithm

// BBRFactory returns a factory for BBRv1 of the given variant.
func BBRFactory(variant cca.BBRVariant) AlgFactory {
	return func(rng *sim.RNG) cca.Algorithm {
		return cca.NewBBR(cca.Config{}, variant, rng)
	}
}

// BBRv3Factory returns a factory for BBRv3.
func BBRv3Factory() AlgFactory {
	return func(rng *sim.RNG) cca.Algorithm { return cca.NewBBRv3(cca.Config{}, rng) }
}

// CubicFactory returns a factory for standard Cubic.
func CubicFactory() AlgFactory {
	return func(*sim.RNG) cca.Algorithm { return cca.NewCubic(cca.Config{}) }
}

// CubicExtendedFactory returns the OneDrive Cubic variant.
func CubicExtendedFactory() AlgFactory {
	return func(*sim.RNG) cca.Algorithm { return cca.NewCubicExtended(cca.Config{}) }
}

// RenoFactory returns a factory for NewReno.
func RenoFactory() AlgFactory {
	return func(*sim.RNG) cca.Algorithm { return cca.NewNewReno(cca.Config{}) }
}

// IPerf is the baseline service class from Table 1: one or more
// infinitely-backlogged flows with a chosen CCA. The paper uses it to
// contrast application-level behaviour with CCA-only behaviour (its core
// methodological point), and five-flow variants for Obs 4.
type IPerf struct {
	ServiceName string
	Flows       int
	Factory     AlgFactory
}

// NewIPerf builds a baseline with n flows.
func NewIPerf(name string, n int, f AlgFactory) *IPerf {
	if n <= 0 {
		n = 1
	}
	return &IPerf{ServiceName: name, Flows: n, Factory: f}
}

// Name implements Service.
func (s *IPerf) Name() string { return s.ServiceName }

// Category implements Service.
func (s *IPerf) Category() Category { return CategoryBaseline }

// MaxRateBps implements Service: iPerf is unconstrained.
func (s *IPerf) MaxRateBps() int64 { return 0 }

// FlowCount implements Service.
func (s *IPerf) FlowCount() int { return s.Flows }

// Start implements Service.
func (s *IPerf) Start(env *Env) Instance {
	inst := &iperfInstance{}
	for i := 0; i < s.Flows; i++ {
		alg := s.Factory(env.RNG.Split())
		f := transport.NewFlow(env.TB, env.Slot, alg, flowOptions(alg))
		f.SetBulk()
		inst.flows = append(inst.flows, f)
	}
	return inst
}

func (s *IPerf) String() string {
	return fmt.Sprintf("%s (%d flows)", s.ServiceName, s.Flows)
}

type iperfInstance struct {
	flows []*transport.Flow
}

func (i *iperfInstance) Stop() {
	for _, f := range i.flows {
		f.Close()
	}
}

func (i *iperfInstance) Stats() Stats {
	var total int64
	for _, f := range i.flows {
		total += f.DeliveredBytes()
	}
	return Stats{File: &FileStats{BytesCompleted: total}}
}
