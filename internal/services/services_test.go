package services

import (
	"testing"

	"prudentia/internal/browser"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// newEnv builds a one-slot environment on a fresh testbed.
func newEnv(cfg netem.Config, slot int, seed uint64) (*Env, *sim.Engine) {
	eng := sim.NewEngine()
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(seed))
	return &Env{
		Eng:    eng,
		TB:     tb,
		Slot:   slot,
		RNG:    sim.NewRNG(seed + 1),
		Client: browser.TestbedClient(),
	}, eng
}

func soloMbps(t *testing.T, svc Service, cfg netem.Config, dur sim.Time) (float64, Stats) {
	t.Helper()
	env, eng := newEnv(cfg, 0, 7)
	inst := svc.Start(env)
	eng.RunUntil(dur)
	rate := float64(env.TB.Bneck.Stats(0).DeliveredBytes) * 8 / dur.Seconds() / 1e6
	st := inst.Stats()
	inst.Stop()
	return rate, st
}

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 15 {
		t.Fatalf("catalog has %d services, want 15", len(cat))
	}
	want := map[string]struct {
		cat   Category
		flows int
		max   int64
	}{
		"YouTube":         {CategoryVideo, 1, 13_000_000},
		"Netflix":         {CategoryVideo, 4, 8_000_000},
		"Vimeo":           {CategoryVideo, 2, 14_000_000},
		"Dropbox":         {CategoryFile, 1, 0},
		"Google Drive":    {CategoryFile, 1, 0},
		"OneDrive":        {CategoryFile, 1, 0},
		"Mega":            {CategoryFile, 5, 0},
		"Google Meet":     {CategoryRTC, 1, 1_500_000},
		"Microsoft Teams": {CategoryRTC, 1, 2_600_000},
		"wikipedia.org":   {CategoryWeb, 5, 0},
		"news.google.com": {CategoryWeb, 20, 0},
		"youtube.com":     {CategoryWeb, 10, 0},
		"iPerf (BBR)":     {CategoryBaseline, 1, 0},
		"iPerf (Cubic)":   {CategoryBaseline, 1, 0},
		"iPerf (Reno)":    {CategoryBaseline, 1, 0},
	}
	for _, s := range cat {
		w, ok := want[s.Name()]
		if !ok {
			t.Errorf("unexpected service %q", s.Name())
			continue
		}
		if s.Category() != w.cat || s.FlowCount() != w.flows || s.MaxRateBps() != w.max {
			t.Errorf("%s: got (%s, %d flows, %d bps), want (%s, %d, %d)",
				s.Name(), s.Category(), s.FlowCount(), s.MaxRateBps(), w.cat, w.flows, w.max)
		}
	}
	if got := len(ThroughputCatalog()); got != 10 {
		t.Errorf("throughput catalog has %d entries, want 10", got)
	}
	if ByName("Mega") == nil || ByName("iPerf (5xBBR)") == nil || ByName("nope") != nil {
		t.Error("ByName lookups wrong")
	}
}

func TestYouTubeIsAppLimitedOnFastLink(t *testing.T) {
	// On a 50 Mbps link YouTube must settle near its 13 Mbps cap, not
	// consume the link (the §4 application-limit behaviour).
	rate, st := soloMbps(t, YouTube(Year2023), netem.ModeratelyConstrained(), 120*sim.Second)
	if rate < 6 || rate > 16 {
		t.Fatalf("YouTube solo rate = %.1f Mbps, want ~13 (cap)", rate)
	}
	if st.Video == nil || st.Video.ChunksFetched == 0 {
		t.Fatal("no video stats")
	}
	if st.Video.DominantResolution < 1440 {
		t.Fatalf("YouTube solo on 50 Mbps should reach top rungs, got %dp (mean %.1f Mbps)",
			st.Video.DominantResolution, float64(st.Video.MeanBitrateBps)/1e6)
	}
	if st.Video.RebufferEvents > 0 {
		t.Fatalf("solo playback should not rebuffer, got %d stalls", st.Video.RebufferEvents)
	}
}

func TestVideoHeadlessClientCapsBitrate(t *testing.T) {
	// §3.3: headless clients request lower bitrates — the fidelity trap.
	env, eng := newEnv(netem.ModeratelyConstrained(), 0, 9)
	env.Client = browser.HeadlessClient()
	inst := YouTube(Year2023).Start(env)
	eng.RunUntil(120 * sim.Second)
	st := inst.Stats()
	inst.Stop()
	if st.Video.MeanBitrateBps > 4_100_000 {
		t.Fatalf("headless client exceeded render cap: %.1f Mbps",
			float64(st.Video.MeanBitrateBps)/1e6)
	}
	if st.Video.DominantResolution > 1080 {
		t.Fatalf("headless client should not play >1080p, got %dp", st.Video.DominantResolution)
	}
}

func TestNetflixCapsAt8Mbps(t *testing.T) {
	rate, st := soloMbps(t, NewNetflix(RenoFactory()), netem.ModeratelyConstrained(), 120*sim.Second)
	if rate > 10.5 {
		t.Fatalf("Netflix exceeded its encoding cap: %.1f Mbps", rate)
	}
	if st.Video.ChunksFetched == 0 {
		t.Fatal("Netflix fetched nothing")
	}
}

func TestDropboxSaturatesLink(t *testing.T) {
	rate, _ := soloMbps(t, NewDropbox(BBRFactory(ccaBBR415())), netem.ModeratelyConstrained(), 60*sim.Second)
	if rate < 42 {
		t.Fatalf("Dropbox solo = %.1f Mbps on 50 Mbps link", rate)
	}
}

func TestOneDriveRespectsThrottle(t *testing.T) {
	// On a fast link OneDrive must never exceed 45 Mbps (Table 1), and
	// its per-trial throttle draw gives varying levels.
	cfg := netem.Config{RateBps: 200_000_000, RTT: 50 * sim.Millisecond}
	seen := map[int64]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		env, eng := newEnv(cfg, 0, seed*99+1)
		inst := NewOneDrive(CubicExtendedFactory()).Start(env)
		eng.RunUntil(30 * sim.Second)
		rate := float64(env.TB.Bneck.Stats(0).DeliveredBytes) * 8 / 30 / 1e6
		inst.Stop()
		if rate > 46 {
			t.Fatalf("OneDrive exceeded 45 Mbps: %.1f", rate)
		}
		seen[int64(rate/5)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("OneDrive trials suspiciously identical: %v", seen)
	}
}

func TestMegaBatchesAndBursts(t *testing.T) {
	// Mega's synchronized bursts cost it utilization even alone (the
	// paper's Fig 11 diagonal shows Mega pairs below 85%), so the solo
	// bar is lower than for the single-flow services.
	rate, st := soloMbps(t, ByName("Mega"), netem.ModeratelyConstrained(), 120*sim.Second)
	if rate < 18 {
		t.Fatalf("Mega solo = %.1f Mbps on 50 Mbps link", rate)
	}
	if st.File.Batches == 0 {
		t.Fatalf("Mega completed no batches: %+v", st.File)
	}
	// Batch accounting: chunks = 5 × completed batches (plus in-flight).
	if st.File.ChunksCompleted < st.File.Batches*5 {
		t.Fatalf("chunk count %d inconsistent with %d batches",
			st.File.ChunksCompleted, st.File.Batches)
	}
}

func TestMegaTrafficHasGaps(t *testing.T) {
	// The batch barrier must produce idle gaps at the bottleneck
	// (Fig 4's burst/gap structure).
	env, eng := newEnv(netem.ModeratelyConstrained(), 0, 21)
	inst := NewMega(BBRFactory(ccaBBR415())).Start(env)
	env.TB.Bneck.StartSampling(100 * sim.Millisecond)
	eng.RunUntil(120 * sim.Second)
	inst.Stop()
	samples := env.TB.Bneck.Samples()
	idle := 0
	for _, s := range samples {
		if s.Total == 0 {
			idle++
		}
	}
	if idle < 10 {
		t.Fatalf("expected idle gaps between Mega batches, found %d idle samples of %d",
			idle, len(samples))
	}
}

func TestMeetStaysUnderCapAndMeasuresQoE(t *testing.T) {
	rate, st := soloMbps(t, NewGoogleMeet(), netem.HighlyConstrained(), 60*sim.Second)
	if rate > 1.9 {
		t.Fatalf("Meet exceeded its 1.5 Mbps cap: %.2f", rate)
	}
	if st.RTC == nil {
		t.Fatal("no RTC stats")
	}
	if st.RTC.AvgFPS < 20 || st.RTC.AvgFPS > 31 {
		t.Fatalf("solo Meet FPS = %.1f, want ~30", st.RTC.AvgFPS)
	}
	if st.RTC.HighDelayFrac > 0.05 {
		t.Fatalf("solo Meet high-delay fraction = %.2f", st.RTC.HighDelayFrac)
	}
	if st.RTC.Resolution < 480 {
		t.Fatalf("solo Meet resolution = %dp", st.RTC.Resolution)
	}
}

func TestTeamsReachesHigherResolutionThanMeetSolo(t *testing.T) {
	_, meet := soloMbps(t, NewGoogleMeet(), netem.ModeratelyConstrained(), 60*sim.Second)
	_, teams := soloMbps(t, NewMicrosoftTeams(), netem.ModeratelyConstrained(), 60*sim.Second)
	if teams.RTC.Resolution < meet.RTC.Resolution {
		t.Fatalf("Teams (%dp) should reach at least Meet's resolution (%dp)",
			teams.RTC.Resolution, meet.RTC.Resolution)
	}
}

func TestWebPageLoadsRecordPLT(t *testing.T) {
	env, eng := newEnv(netem.ModeratelyConstrained(), 0, 5)
	inst := NewWikipedia(BBRFactory(ccaBBR415())).Start(env)
	eng.RunUntil(200 * sim.Second)
	st := inst.Stats()
	inst.Stop()
	if st.Web == nil || len(st.Web.PLTs) < 2 {
		t.Fatalf("expected multiple page loads, got %+v", st.Web)
	}
	for _, plt := range st.Web.PLTs {
		if plt <= 0 || plt > 30*sim.Second {
			t.Fatalf("implausible PLT %v", plt)
		}
	}
	if st.Web.Loads == 0 {
		t.Fatal("no completed loads")
	}
}

func TestHeavierPageLoadsSlower(t *testing.T) {
	median := func(svc Service) sim.Time {
		env, eng := newEnv(netem.HighlyConstrained(), 0, 5)
		inst := svc.Start(env)
		eng.RunUntil(300 * sim.Second)
		st := inst.Stats()
		inst.Stop()
		if len(st.Web.PLTs) == 0 {
			t.Fatalf("%s recorded no PLTs", svc.Name())
		}
		// crude median
		best := st.Web.PLTs[len(st.Web.PLTs)/2]
		return best
	}
	wiki := median(NewWikipedia(BBRFactory(ccaBBR415())))
	yt := median(NewYouTubeWeb(BBRv3Factory()))
	if yt <= wiki {
		t.Fatalf("youtube.com (%v) should load slower than wikipedia (%v) at 8 Mbps", yt, wiki)
	}
}

func TestIPerfInstanceStopAndStats(t *testing.T) {
	env, eng := newEnv(netem.HighlyConstrained(), 0, 3)
	inst := NewIPerf("iPerf (Reno)", 1, RenoFactory()).Start(env)
	eng.RunUntil(10 * sim.Second)
	inst.Stop()
	st := inst.Stats()
	if st.File == nil || st.File.BytesCompleted == 0 {
		t.Fatalf("iPerf stats = %+v", st)
	}
}
