package services

import (
	"prudentia/internal/sim"
	"prudentia/internal/transport"
)

// FileTransfer models the single-connection cloud-storage downloads in
// the catalog (Dropbox, Google Drive, OneDrive). All file services
// download the same 10 GB randomly-generated file (§3.2); at Prudentia's
// link rates a 10-minute experiment never exhausts it, so the transfer
// behaves as a chunked, effectively-endless download.
type FileTransfer struct {
	ServiceName string
	Factory     AlgFactory
	// ThrottleBps caps the server send rate (OneDrive's external
	// 45 Mbps cap, Table 1). 0 = uncapped.
	ThrottleBps int64
	// ThrottleJitterBps widens the cap per instance: each trial draws a
	// throttle uniformly from [ThrottleBps-Jitter, ThrottleBps]. This
	// models the upstream volatility behind OneDrive's trial-to-trial
	// instability (Obs 15, Fig 10).
	ThrottleJitterBps int64
	// RequestBytes, when nonzero, makes the client fetch the file in
	// sequential ranged requests of this size with a server think-time
	// between them (OneDrive behaves this way; Dropbox and Drive stream).
	RequestBytes int64
	// ThinkTimeMax bounds the random inter-request think time.
	ThinkTimeMax sim.Time
}

// NewDropbox returns the Dropbox model: one BBRv1.0 flow (Table 1).
func NewDropbox(f AlgFactory) *FileTransfer {
	return &FileTransfer{ServiceName: "Dropbox", Factory: f}
}

// NewGoogleDrive returns the Google Drive model: one flow whose CCA is
// BBRv3 in the 2023 deployment (and BBRv1.0 in 2022, Fig 9a).
func NewGoogleDrive(f AlgFactory) *FileTransfer {
	return &FileTransfer{ServiceName: "Google Drive", Factory: f}
}

// NewOneDrive returns the OneDrive model: extended Cubic, throttled
// upstream to at most 45 Mbps, fetching ranged requests with think time.
func NewOneDrive(f AlgFactory) *FileTransfer {
	return &FileTransfer{
		ServiceName:       "OneDrive",
		Factory:           f,
		ThrottleBps:       45_000_000,
		ThrottleJitterBps: 33_000_000,
		RequestBytes:      8 << 20,
		ThinkTimeMax:      1500 * sim.Millisecond,
	}
}

// Name implements Service.
func (s *FileTransfer) Name() string { return s.ServiceName }

// Category implements Service.
func (s *FileTransfer) Category() Category { return CategoryFile }

// MaxRateBps implements Service. It reports the *intrinsic* application
// cap only, which file transfers do not have: OneDrive's 45 Mbps limit is
// an external/upstream throttle the watchdog discovers via solo
// calibration (§3.1, Table 1), not an advertised encoding limit, so the
// paper's MmF arithmetic treats the service as unlimited.
func (s *FileTransfer) MaxRateBps() int64 { return 0 }

// FlowCount implements Service.
func (s *FileTransfer) FlowCount() int { return 1 }

// Start implements Service.
func (s *FileTransfer) Start(env *Env) Instance {
	throttle := s.ThrottleBps
	if throttle > 0 && s.ThrottleJitterBps > 0 {
		throttle -= int64(env.RNG.Uint64() % uint64(s.ThrottleJitterBps+1))
	}
	alg := s.Factory(env.RNG.Split())
	opts := flowOptions(alg)
	opts.ThrottleBps = throttle
	flow := transport.NewFlow(env.TB, env.Slot, alg, opts)
	inst := &fileInstance{env: env, flow: flow, svc: s}
	if s.RequestBytes > 0 {
		inst.nextRequest(env.Eng.Now())
	} else {
		flow.SetBulk()
	}
	return inst
}

type fileInstance struct {
	env     *Env
	svc     *FileTransfer
	flow    *transport.Flow
	stopped bool
	stats   FileStats
}

// nextRequest issues one ranged request and schedules the next after a
// think-time pause once it completes.
func (i *fileInstance) nextRequest(now sim.Time) {
	if i.stopped {
		return
	}
	i.flow.Write(i.svc.RequestBytes, func(done sim.Time) {
		i.stats.BytesCompleted += i.svc.RequestBytes
		i.stats.ChunksCompleted++
		if i.stopped {
			return
		}
		think := i.env.RNG.Duration(i.svc.ThinkTimeMax)
		i.env.Eng.After(think, i.nextRequest)
	})
}

func (i *fileInstance) Stop() {
	i.stopped = true
	i.flow.Close()
}

func (i *fileInstance) Stats() Stats {
	st := i.stats
	if i.svc.RequestBytes == 0 {
		st.BytesCompleted = i.flow.DeliveredBytes()
	}
	return Stats{File: &st}
}
