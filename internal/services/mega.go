package services

import (
	"prudentia/internal/sim"
	"prudentia/internal/transport"
)

// Mega models the Mega file-distribution service, the most contentious
// service in the paper's catalog (Obs 3, Obs 4). Its custom JavaScript
// downloader opens five concurrent BBR connections and fetches the file
// in *batches of five chunks*, one chunk per flow. A flow finishing its
// chunk early goes idle until the entire batch completes; only then does
// the next batch start — on all five connections at once, with their
// congestion windows still wide open (no slow-start restart). The result
// is the synchronized burst/gap pattern of Fig 4: loss-based competitors
// take a loss burst and cannot recover before the next batch, while BBR
// competitors (Dropbox) ramp into the gaps.
type Mega struct {
	ServiceName string
	Factory     AlgFactory
	// Flows is the batch width (5 in the deployed client).
	Flows int
	// ChunkBytes is the per-flow chunk size per batch.
	ChunkBytes int64
	// BatchPause is the client-side coordination delay between batches
	// (hash verification + scheduling in the real client).
	BatchPause sim.Time
	// FreshConnections opens new transport connections for every batch
	// (slow-start per batch) instead of reusing the five persistent
	// connections with idle-restart bursts.
	FreshConnections bool
}

// NewMega returns the Mega model with deployed-client parameters.
func NewMega(f AlgFactory) *Mega {
	return &Mega{
		ServiceName: "Mega",
		Factory:     f,
		Flows:       5,
		ChunkBytes:  1 << 20,
		BatchPause:  350 * sim.Millisecond,
	}
}

// Name implements Service.
func (s *Mega) Name() string { return s.ServiceName }

// Category implements Service.
func (s *Mega) Category() Category { return CategoryFile }

// MaxRateBps implements Service.
func (s *Mega) MaxRateBps() int64 { return 0 }

// FlowCount implements Service.
func (s *Mega) FlowCount() int { return s.Flows }

// Start implements Service.
func (s *Mega) Start(env *Env) Instance {
	inst := &megaInstance{env: env, svc: s}
	inst.startBatch(env.Eng.Now())
	return inst
}

type megaInstance struct {
	env     *Env
	svc     *Mega
	flows   []*transport.Flow
	stopped bool

	remaining int // chunks outstanding in the current batch
	stats     FileStats
}

// startBatch opens a fresh connection per chunk — the downloader issues
// new parallel requests for every batch — and hands each its chunk. The
// five congestion controllers therefore slow-start simultaneously at
// every batch boundary, which is what makes Mega's traffic the most
// violent in the catalog: a synchronized exponential burst into the
// bottleneck queue every batch, repeated for the whole transfer.
func (i *megaInstance) startBatch(now sim.Time) {
	if i.stopped {
		return
	}
	if i.svc.FreshConnections || len(i.flows) == 0 {
		for _, f := range i.flows {
			f.Close()
		}
		i.flows = i.flows[:0]
		for n := 0; n < i.svc.Flows; n++ {
			alg := i.svc.Factory(i.env.RNG.Split())
			opts := flowOptions(alg)
			opts.BurstOnIdleRestart = true
			i.flows = append(i.flows,
				transport.NewFlow(i.env.TB, i.env.Slot, alg, opts))
		}
	}
	i.remaining = i.svc.Flows
	for _, f := range i.flows {
		f.Write(i.svc.ChunkBytes, i.chunkDone)
	}
}

func (i *megaInstance) chunkDone(now sim.Time) {
	i.stats.BytesCompleted += i.svc.ChunkBytes
	i.stats.ChunksCompleted++
	i.remaining--
	if i.remaining > 0 || i.stopped {
		return
	}
	// Whole batch finished: pause, then burst the next batch.
	i.stats.Batches++
	i.env.Eng.After(i.svc.BatchPause, i.startBatch)
}

func (i *megaInstance) Stop() {
	i.stopped = true
	for _, f := range i.flows {
		f.Close()
	}
}

func (i *megaInstance) Stats() Stats {
	st := i.stats
	return Stats{File: &st}
}
