package services

import "prudentia/internal/cca"

// Year selects a deployment era for services whose stacks changed during
// the study (Obs 13 / Fig 9a: Google Drive moved from BBRv1.0 to BBRv3
// and YouTube tuned its QUIC stack between 2022 and 2023).
type Year int

const (
	// Year2022 is the study's first measurement period.
	Year2022 Year = 2022
	// Year2023 is the June–September 2023 period most results use.
	Year2023 Year = 2023
)

// quicTuned returns the BBR variant modelling YouTube's 2023 QUIC stack:
// BBRv1-class behaviour with the recovery-conservation and idle-restart
// handling that made the service markedly less timid under loss than the
// 2022 deployment (Fig 9a).
func quicTuned() cca.BBRVariant {
	v := cca.BBRLinux515()
	v.Label = "quic-tuned"
	return v
}

// quic2022 returns the 2022-era YouTube QUIC BBR: 4.15-class dynamics
// with a reduced ProbeBW cwnd gain, which surrendered throughput to
// competing bulk flows.
func quic2022() cca.BBRVariant {
	v := cca.BBRLinux415()
	v.Label = "quic-2022"
	v.CwndGainProbeBW = 1.5
	return v
}

// megaBBR returns the BBR flavour Mega's servers exhibit: BBRv1 probing
// signatures (what the CCA classifier detects, §3.2) but a much larger
// in-flight cap than stock kernels. The paper's own evidence points
// here: Mega holds the deepest bottleneck queues (Fig 13), induces the
// most loss of any service (Fig 12, 8% at 8 Mbps), behaves unlike five
// stock iPerf BBR flows (Obs 4), and the authors note "it is also
// possible that Mega is running a slightly different version of BBR".
func megaBBR() cca.BBRVariant {
	v := cca.BBRLinux415()
	v.Label = "mega-custom"
	v.CwndGainProbeBW = 3.0
	return v
}

// YouTube returns the YouTube video model for the given era.
func YouTube(y Year) *Video {
	switch y {
	case Year2022:
		v := NewYouTube(BBRFactory(quic2022()))
		// The 2022 player was also more conservative after backoffs.
		return v
	default:
		return NewYouTube(BBRFactory(quicTuned()))
	}
}

// GoogleDrive returns the Google Drive model for the given era.
func GoogleDrive(y Year) *FileTransfer {
	if y == Year2022 {
		return NewGoogleDrive(BBRFactory(cca.BBRLinux415()))
	}
	return NewGoogleDrive(BBRv3Factory())
}

// Catalog returns the full Table 1 service list in its 2023 (latest
// measurement period) configuration.
//
//	Service          Category       CCA             Max Xput  Flows
//	YouTube          Video          BBRv1 (QUIC)    13 Mbps   1
//	Netflix          Video          NewReno          8 Mbps   4
//	Vimeo            Video          BBR             14 Mbps   2
//	Dropbox          File Transfer  BBRv1.0         ∞         1
//	Google Drive     File Transfer  BBRv3           ∞         1
//	OneDrive         File Transfer  Cubic (ext.)    45 Mbps   1
//	Mega             File Transfer  BBR             ∞         5
//	Google Meet      RTC            GCC             1.5 Mbps  1
//	Microsoft Teams  RTC            Unknown         2.6 Mbps  1
//	wikipedia.org    Web            BBRv1.0         ∞         >5
//	news.google.com  Web            BBRv3.0         ∞         >20
//	youtube.com      Web            BBRv3.0         ∞         >10
//	iPerf (BBR)      Baseline       BBRv1 (5.15)    ∞         1
//	iPerf (Cubic)    Baseline       Cubic           ∞         1
//	iPerf (Reno)     Baseline       NewReno         ∞         1
func Catalog() []Service {
	return []Service{
		YouTube(Year2023),
		NewNetflix(RenoFactory()),
		NewVimeo(BBRFactory(cca.BBRLinux415())),
		NewDropbox(BBRFactory(cca.BBRLinux415())),
		GoogleDrive(Year2023),
		NewOneDrive(CubicExtendedFactory()),
		NewMega(BBRFactory(megaBBR())),
		NewGoogleMeet(),
		NewMicrosoftTeams(),
		NewWikipedia(BBRFactory(cca.BBRLinux415())),
		NewGoogleNews(BBRv3Factory()),
		NewYouTubeWeb(BBRv3Factory()),
		NewIPerf("iPerf (BBR)", 1, BBRFactory(cca.BBRLinux515())),
		NewIPerf("iPerf (Cubic)", 1, CubicFactory()),
		NewIPerf("iPerf (Reno)", 1, RenoFactory()),
	}
}

// ThroughputCatalog returns the subset the Fig 2 heatmaps cover: video,
// file transfer, and the iPerf baselines (RTC and web services are
// evaluated with QoE metrics in §5 instead).
func ThroughputCatalog() []Service {
	var out []Service
	for _, s := range Catalog() {
		switch s.Category() {
		case CategoryVideo, CategoryFile, CategoryBaseline:
			out = append(out, s)
		}
	}
	return out
}

// ByName finds a catalog service by its Table 1 name (nil if absent).
func ByName(name string) Service {
	for _, s := range Catalog() {
		if s.Name() == name {
			return s
		}
	}
	// Special multi-flow baselines used by Obs 4 and future-work probes.
	switch name {
	case "iPerf (5xBBR)":
		return NewIPerf("iPerf (5xBBR)", 5, BBRFactory(cca.BBRLinux415()))
	case "iPerf (BBR 4.15)":
		return NewIPerf("iPerf (BBR 4.15)", 1, BBRFactory(cca.BBRLinux415()))
	}
	return nil
}
