package services

import (
	"strings"

	"prudentia/internal/cca"
	"prudentia/internal/transport"
)

// flowOptions returns the transport options appropriate for a flow run
// by the given congestion controller: classic loss-based stacks
// (NewReno, Cubic) get FragileRecovery — they lose their ACK clock under
// burst loss and fall back to timeout recovery — while BBR-era stacks
// ride burst loss out with RACK-style repair (see transport.Options).
func flowOptions(alg cca.Algorithm) transport.Options {
	var o transport.Options
	name := alg.Name()
	if name == "newreno" || strings.HasPrefix(name, "cubic") {
		o.FragileRecovery = true
	}
	return o
}
