package services

import (
	"prudentia/internal/abr"
	"prudentia/internal/sim"
	"prudentia/internal/transport"
)

// Video models the on-demand streaming services (YouTube, Netflix,
// Vimeo): a DASH-style player that keeps a playback buffer topped up by
// fetching fixed-duration chunks whose bitrate an ABR policy chooses,
// over one or more transport connections (Table 1: YouTube 1, Vimeo 2,
// Netflix 4). The resulting traffic is application-limited on fast links
// (the §4 observation that video MmF shares are their bitrate caps at
// 50 Mbps) and duty-cycled even when saturated, which is what makes these
// services comparatively sensitive.
type Video struct {
	ServiceName string
	Factory     AlgFactory
	Ladder      abr.Ladder
	// NewPolicy builds a fresh ABR policy per instance.
	NewPolicy func() abr.Policy
	// Flows is the number of parallel connections; each chunk is split
	// into equal byte ranges fetched concurrently across them.
	Flows int
	// ChunkDuration is the media length of one chunk.
	ChunkDuration sim.Time
	// TargetBufferSec is the playback buffer the player tries to hold.
	TargetBufferSec float64
	// StartupChunks is how many chunks must buffer before playback starts
	// (and resumes after a stall).
	StartupChunks int
	// PipelineDepth is how many chunk requests may be outstanding at
	// once while the buffer is below target (real players keep the
	// connection busy by requesting ahead; default 2).
	PipelineDepth int
}

// NewYouTube returns the YouTube model: single QUIC/BBR connection,
// stability-seeking ABR, 13 Mbps top rung.
func NewYouTube(f AlgFactory) *Video {
	return &Video{
		ServiceName:     "YouTube",
		Factory:         f,
		Ladder:          abr.YouTubeLadder(),
		NewPolicy:       func() abr.Policy { return abr.NewStabilityPolicy() },
		Flows:           1,
		ChunkDuration:   5 * sim.Second,
		TargetBufferSec: 30,
		StartupChunks:   2,
	}
}

// NewNetflix returns the Netflix model: four NewReno connections,
// throughput-greedy ABR, 8 Mbps top rung.
func NewNetflix(f AlgFactory) *Video {
	return &Video{
		ServiceName:     "Netflix",
		Factory:         f,
		Ladder:          abr.NetflixLadder(),
		NewPolicy:       func() abr.Policy { return abr.NewThroughputPolicy() },
		Flows:           4,
		ChunkDuration:   4 * sim.Second,
		TargetBufferSec: 40,
		StartupChunks:   2,
	}
}

// NewVimeo returns the Vimeo model: two BBR connections, conservative
// ABR, 14 Mbps top rung.
func NewVimeo(f AlgFactory) *Video {
	return &Video{
		ServiceName:     "Vimeo",
		Factory:         f,
		Ladder:          abr.VimeoLadder(),
		NewPolicy:       func() abr.Policy { return abr.NewConservativePolicy() },
		Flows:           2,
		ChunkDuration:   4 * sim.Second,
		TargetBufferSec: 30,
		StartupChunks:   2,
	}
}

// Name implements Service.
func (s *Video) Name() string { return s.ServiceName }

// Category implements Service.
func (s *Video) Category() Category { return CategoryVideo }

// MaxRateBps implements Service: the top ladder rung.
func (s *Video) MaxRateBps() int64 { return s.Ladder.Max() }

// FlowCount implements Service.
func (s *Video) FlowCount() int { return s.Flows }

// Start implements Service.
func (s *Video) Start(env *Env) Instance {
	depth := s.PipelineDepth
	if depth == 0 {
		depth = 2
	}
	inst := &videoInstance{
		env:       env,
		svc:       s,
		depth:     depth,
		policy:    s.NewPolicy(),
		est:       abr.NewEstimator(5),
		lastRung:  -1,
		renderCap: env.Client.RenderCapBps(),
		resTime:   make(map[int]sim.Time),
	}
	for i := 0; i < s.Flows; i++ {
		alg := s.Factory(env.RNG.Split())
		inst.flows = append(inst.flows,
			transport.NewFlow(env.TB, env.Slot, alg, flowOptions(alg)))
	}
	inst.lastTick = env.Eng.Now()
	inst.fill(env.Eng.Now())
	return inst
}

// chunkRequest tracks one outstanding chunk download.
type chunkRequest struct {
	start        sim.Time
	bytes        int64
	rung         int
	pendingParts int
}

type videoInstance struct {
	env    *Env
	svc    *Video
	flows  []*transport.Flow
	policy abr.Policy
	est    *abr.Estimator
	depth  int

	stopped   bool
	renderCap int64

	// Player state.
	bufferSec float64
	playing   bool
	lastTick  sim.Time
	lastRung  int

	// Outstanding chunk downloads, oldest first (per-flow FIFO delivery
	// guarantees chunks complete in request order).
	chunks []*chunkRequest

	// refillTimer wakes the fetch loop when the buffer drains to target.
	refillTimer *sim.Timer
	// lastDoneAt is when the most recent chunk completed (estimator
	// window start for pipelined requests).
	lastDoneAt sim.Time

	// Rebuffer tracking.
	stallStart sim.Time
	stalled    bool

	stats   VideoStats
	resTime map[int]sim.Time // resolution -> playing time at it
	byteSum int64
	brSum   float64 // Σ bitrate×bytes for byte-weighted mean
}

// advancePlayback drains the playback buffer up to now, recording stalls.
func (v *videoInstance) advancePlayback(now sim.Time) {
	elapsed := (now - v.lastTick).Seconds()
	v.lastTick = now
	if !v.playing {
		return
	}
	res := abr.ResolutionForRung(v.svc.Ladder, v.lastRungOrZero())
	if elapsed >= v.bufferSec {
		// Buffer ran dry somewhere in this window: played bufferSec then
		// stalled for the rest.
		played := v.bufferSec
		v.resTime[res] += sim.Time(played * float64(sim.Second))
		v.bufferSec = 0
		v.playing = false
		v.stalled = true
		v.stallStart = now - sim.Time((elapsed-played)*float64(sim.Second))
		v.stats.RebufferEvents++
		return
	}
	v.bufferSec -= elapsed
	v.resTime[res] += sim.Time(elapsed * float64(sim.Second))
}

func (v *videoInstance) lastRungOrZero() int {
	if v.lastRung < 0 {
		return 0
	}
	return v.lastRung
}

// fill is the fetch loop: it keeps up to depth chunk requests
// outstanding while the buffer (including requested-but-undelivered
// chunks) is below the target, and otherwise schedules a wakeup for when
// playback drains the buffer back to the target.
func (v *videoInstance) fill(now sim.Time) {
	if v.stopped {
		return
	}
	v.advancePlayback(now)
	chunkSec := v.svc.ChunkDuration.Seconds()
	for len(v.chunks) < v.depth {
		buffered := v.bufferSec + chunkSec*float64(len(v.chunks))
		if buffered >= v.svc.TargetBufferSec {
			// Wake when playback drains back to the target (floored so a
			// buffer sitting exactly at target cannot spin the loop).
			wait := sim.Time((buffered - v.svc.TargetBufferSec) * float64(sim.Second))
			if min := 100 * sim.Millisecond; wait < min {
				wait = min
			}
			if !v.refillTimer.Pending() {
				v.refillTimer = v.env.Eng.AfterTimer(wait, v.fill)
			}
			return
		}
		v.requestChunk(now)
	}
}

// requestChunk picks a rung and fans one chunk out across the flows.
func (v *videoInstance) requestChunk(now sim.Time) {
	st := abr.State{
		Ladder:          v.svc.Ladder,
		BufferSec:       v.bufferSec,
		TargetBufferSec: v.svc.TargetBufferSec,
		ThroughputBps:   v.est.Estimate(),
		LastRung:        v.lastRung,
		RenderCap:       v.renderCap,
	}
	rung := v.policy.NextRung(now, st)
	if v.lastRung >= 0 && rung != v.lastRung {
		v.stats.Switches++
	}
	v.lastRung = rung

	bitrate := v.svc.Ladder[rung]
	req := &chunkRequest{
		start:        now,
		bytes:        bitrate * int64(v.svc.ChunkDuration/sim.Second) / 8,
		rung:         rung,
		pendingParts: len(v.flows),
	}
	v.chunks = append(v.chunks, req)
	part := req.bytes / int64(len(v.flows))

	// The request travels client→server before data flows back.
	reqDelay := v.env.TB.BaseRTT() / 2
	v.env.Eng.After(reqDelay, func(sim.Time) {
		if v.stopped {
			return
		}
		for _, f := range v.flows {
			f.Write(part, func(at sim.Time) { v.partDone(at, req) })
		}
	})
}

func (v *videoInstance) partDone(now sim.Time, req *chunkRequest) {
	req.pendingParts--
	if req.pendingParts > 0 || v.stopped {
		return
	}
	v.chunkDone(now, req)
}

func (v *videoInstance) chunkDone(now sim.Time, req *chunkRequest) {
	v.advancePlayback(now)
	// Pop the completed request (FIFO order per flow guarantees it is
	// the oldest).
	for i, c := range v.chunks {
		if c == req {
			v.chunks = append(v.chunks[:i], v.chunks[i+1:]...)
			break
		}
	}
	// Pipelined requests queue behind the previous chunk on the same
	// flows, so the effective download window starts when the previous
	// chunk finished, not when the request was issued.
	start := req.start
	if v.lastDoneAt > start {
		start = v.lastDoneAt
	}
	v.lastDoneAt = now
	if dur := now - start; dur > 0 {
		v.est.Add(req.bytes * 8 * int64(sim.Second) / int64(dur))
	}
	v.stats.ChunksFetched++
	v.byteSum += req.bytes
	v.brSum += float64(v.svc.Ladder[req.rung]) * float64(req.bytes)
	v.bufferSec += v.svc.ChunkDuration.Seconds()

	// Start or resume playback once enough is buffered.
	startLevel := float64(v.svc.StartupChunks) * v.svc.ChunkDuration.Seconds()
	if !v.playing && v.bufferSec >= startLevel {
		v.playing = true
		if v.stalled {
			v.stalled = false
			v.stats.RebufferTime += now - v.stallStart
		}
	}
	v.fill(now)
}

func (v *videoInstance) Stop() {
	v.advancePlayback(v.env.Eng.Now())
	if v.stalled {
		v.stats.RebufferTime += v.env.Eng.Now() - v.stallStart
		v.stalled = false
	}
	v.stopped = true
	for _, f := range v.flows {
		f.Close()
	}
}

func (v *videoInstance) Stats() Stats {
	st := v.stats
	if v.byteSum > 0 {
		st.MeanBitrateBps = int64(v.brSum / float64(v.byteSum))
	}
	var best sim.Time
	for res, t := range v.resTime {
		if t > best {
			best = t
			st.DominantResolution = res
		}
	}
	return Stats{Video: &st}
}
