package services

import (
	"prudentia/internal/cca"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// rtcResolutionStep maps a media bitrate to the video height the encoder
// produces at that rate.
type rtcResolutionStep struct {
	minRate int64
	height  int
}

// RTC models the real-time-communication services (Google Meet,
// Microsoft Teams): an unreliable, rate-controlled media stream. The
// sender encodes frames at a fixed frame rate whose size tracks the
// controller's target bitrate; the receiver measures loss, one-way
// queueing delay, and delay gradient, and returns periodic feedback that
// drives the controller (GCC for Meet, a proprietary-flavoured hybrid for
// Teams). QoE metrics follow Table 2: resolution, average FPS, freezes
// per minute (WebRTC definition), and the fraction of packets whose RTT
// exceeds the ITU 190 ms bound.
type RTC struct {
	ServiceName   string
	NewController func() cca.RateController
	MaxRate       int64
	FrameRate     int
	PacketBytes   int
	FeedbackEvery sim.Time
	Resolutions   []rtcResolutionStep // descending by minRate
	// KeyFrameEvery inserts a larger (2x) frame periodically.
	KeyFrameEvery int
}

// NewGoogleMeet returns the Google Meet model (GCC, ≤1.5 Mbps).
func NewGoogleMeet() *RTC {
	return &RTC{
		ServiceName:   "Google Meet",
		NewController: func() cca.RateController { return cca.NewGCC(cca.MeetGCC()) },
		MaxRate:       1_500_000,
		FrameRate:     30,
		PacketBytes:   1200,
		FeedbackEvery: 100 * sim.Millisecond,
		Resolutions: []rtcResolutionStep{
			{1_200_000, 720}, {600_000, 480}, {350_000, 360}, {0, 240},
		},
		KeyFrameEvery: 90,
	}
}

// NewMicrosoftTeams returns the Microsoft Teams model (hybrid controller,
// ≤2.6 Mbps). Teams encodes up to 1080p and, per Obs 5, holds bitrate
// and resolution at the cost of FPS and freezes under contention.
func NewMicrosoftTeams() *RTC {
	return &RTC{
		ServiceName:   "Microsoft Teams",
		NewController: func() cca.RateController { return cca.NewGCC(cca.TeamsController()) },
		MaxRate:       2_600_000,
		FrameRate:     30,
		PacketBytes:   1200,
		FeedbackEvery: 100 * sim.Millisecond,
		Resolutions: []rtcResolutionStep{
			{2_200_000, 1080}, {1_200_000, 720}, {600_000, 480}, {350_000, 360}, {0, 240},
		},
		KeyFrameEvery: 90,
	}
}

// Name implements Service.
func (s *RTC) Name() string { return s.ServiceName }

// Category implements Service.
func (s *RTC) Category() Category { return CategoryRTC }

// MaxRateBps implements Service.
func (s *RTC) MaxRateBps() int64 { return s.MaxRate }

// FlowCount implements Service.
func (s *RTC) FlowCount() int { return 1 }

// Start implements Service.
func (s *RTC) Start(env *Env) Instance {
	inst := &rtcInstance{
		env:        env,
		svc:        s,
		controller: s.NewController(),
		frames:     make(map[int64]*frameAssembly),
		resTime:    make(map[int]sim.Time),
		minOWD:     -1,
	}
	inst.flowID = env.TB.RegisterFlow(env.Slot, inst.onMediaPacket, nil)
	inst.startAt = env.Eng.Now()
	frameGap := sim.Second / sim.Time(s.FrameRate)
	// Jitter the start so paired RTC services do not phase-lock.
	env.Eng.After(env.RNG.Duration(frameGap), inst.sendFrame)
	env.Eng.After(s.FeedbackEvery, inst.feedbackTick)
	inst.lastResAt = env.Eng.Now()
	return inst
}

// frameAssembly tracks reception of one frame.
type frameAssembly struct {
	expect   int
	got      int
	complete bool
}

type rtcInstance struct {
	env        *Env
	svc        *RTC
	controller cca.RateController
	flowID     int
	stopped    bool

	// Sender state.
	nextSeq    int64
	frameID    int64
	sentPkts   int64
	sentBytes  int64
	frameCount int

	// Receiver state.
	frames        map[int64]*frameAssembly
	recvPkts      int64
	recvBytes     int64
	highDelayPkts int64
	minOWD        sim.Time // -1 until first packet
	owdSum        sim.Time
	owdCount      int64

	// Per-feedback-interval accumulators. Loss is computed from sequence
	// gaps ((maxSeq - prevMaxSeq) - received), not from a sent/received
	// balance, so packets still in flight at the interval boundary are
	// not miscounted as lost.
	intSent, intRecv int64
	intRecvBytes     int64
	intOWDSum        sim.Time
	intOWDCount      int64
	prevMeanOWD      sim.Time
	prevMeanValid    bool
	maxSeqSeen       int64
	prevMaxSeq       int64

	// Frame rendering / freeze metrics.
	rendered      int
	lastRenderAt  sim.Time
	renderGapEWMA float64 // seconds
	freezes       int

	// Resolution accounting.
	lastRes   int
	lastResAt sim.Time
	resTime   map[int]sim.Time

	startAt sim.Time
}

// resolutionFor maps the current rate to an encoded height.
func (r *rtcInstance) resolutionFor(rate int64) int {
	for _, step := range r.svc.Resolutions {
		if rate >= step.minRate {
			return step.height
		}
	}
	return r.svc.Resolutions[len(r.svc.Resolutions)-1].height
}

// sendFrame encodes and transmits one frame at the controller's rate.
func (r *rtcInstance) sendFrame(now sim.Time) {
	if r.stopped {
		return
	}
	rate := r.controller.TargetRate()
	res := r.resolutionFor(rate)
	if res != r.lastRes {
		if r.lastRes != 0 {
			r.resTime[r.lastRes] += now - r.lastResAt
		}
		r.lastRes = res
		r.lastResAt = now
	}

	frameBytes := rate / int64(8*r.svc.FrameRate)
	r.frameCount++
	if r.svc.KeyFrameEvery > 0 && r.frameCount%r.svc.KeyFrameEvery == 0 {
		frameBytes *= 2
	}
	if frameBytes < 200 {
		frameBytes = 200
	}
	pkts := int((frameBytes + int64(r.svc.PacketBytes) - 1) / int64(r.svc.PacketBytes))
	frame := r.frameID
	r.frameID++
	for i := 0; i < pkts; i++ {
		p := r.env.TB.AllocPacket()
		p.FlowID = r.flowID
		p.Service = r.env.Slot
		p.Size = r.svc.PacketBytes
		p.Seq = r.nextSeq
		p.SentAt = now
		p.Frame = frame
		p.FramePackets = pkts
		r.nextSeq++
		r.sentPkts++
		r.intSent++
		r.sentBytes += int64(p.Size)
		r.env.TB.SendData(now, p)
	}
	r.env.Eng.After(sim.Second/sim.Time(r.svc.FrameRate), r.sendFrame)
}

// onMediaPacket is the receiver: delay accounting, frame reassembly,
// freeze detection.
func (r *rtcInstance) onMediaPacket(now sim.Time, p *netem.Packet) {
	if r.stopped {
		return
	}
	r.recvPkts++
	r.intRecv++
	r.recvBytes += int64(p.Size)
	r.intRecvBytes += int64(p.Size)
	if p.Seq+1 > r.maxSeqSeen {
		r.maxSeqSeen = p.Seq + 1
	}

	owd := now - p.SentAt
	if r.minOWD < 0 || owd < r.minOWD {
		r.minOWD = owd
	}
	r.owdSum += owd
	r.owdCount++
	r.intOWDSum += owd
	r.intOWDCount++
	// RTT estimate: one-way delay plus the (uncongested) return path.
	rtt := owd + r.env.TB.BaseRTT()/2
	if rtt > 190*sim.Millisecond {
		r.highDelayPkts++
	}

	fa := r.frames[p.Frame]
	if fa == nil {
		fa = &frameAssembly{expect: p.FramePackets}
		r.frames[p.Frame] = fa
	}
	fa.got++
	if !fa.complete && fa.got >= fa.expect {
		fa.complete = true
		r.renderFrame(now)
		delete(r.frames, p.Frame)
	}
	// Garbage-collect stale incomplete frames (lost packets).
	if len(r.frames) > 256 {
		for id := range r.frames {
			if id < p.Frame-128 {
				delete(r.frames, id)
			}
		}
	}
}

// renderFrame updates FPS and freeze statistics per the WebRTC stats
// definition (gap > max(3δ, δ+150ms), δ = average inter-frame interval).
func (r *rtcInstance) renderFrame(now sim.Time) {
	if r.rendered > 0 {
		gap := (now - r.lastRenderAt).Seconds()
		if r.renderGapEWMA > 0 {
			limit := 3 * r.renderGapEWMA
			if alt := r.renderGapEWMA + 0.150; alt > limit {
				limit = alt
			}
			if gap > limit {
				r.freezes++
			}
		}
		r.renderGapEWMA = 0.9*r.renderGapEWMA + 0.1*gap
	}
	r.rendered++
	r.lastRenderAt = now
}

// feedbackTick assembles the receiver report and feeds the controller.
func (r *rtcInstance) feedbackTick(now sim.Time) {
	if r.stopped {
		return
	}
	fb := cca.Feedback{Interval: r.svc.FeedbackEvery}
	if expected := r.maxSeqSeen - r.prevMaxSeq; expected > 0 {
		lost := expected - r.intRecv
		if lost < 0 {
			lost = 0
		}
		fb.LossRate = float64(lost) / float64(expected)
	}
	r.prevMaxSeq = r.maxSeqSeen
	var meanOWD sim.Time
	if r.intOWDCount > 0 {
		meanOWD = r.intOWDSum / sim.Time(r.intOWDCount)
		if r.minOWD > 0 {
			fb.QueueDelay = meanOWD - r.minOWD
		}
	}
	if r.prevMeanValid && r.intOWDCount > 0 {
		deltaMs := (meanOWD - r.prevMeanOWD).Seconds() * 1000
		fb.DelayGradient = deltaMs / r.svc.FeedbackEvery.Seconds()
	}
	if r.intOWDCount > 0 {
		r.prevMeanOWD = meanOWD
		r.prevMeanValid = true
	}
	fb.ReceiveRate = r.intRecvBytes * 8 * int64(sim.Second) / int64(r.svc.FeedbackEvery)

	r.controller.OnFeedback(now, fb)

	r.intSent, r.intRecv, r.intRecvBytes = 0, 0, 0
	r.intOWDSum, r.intOWDCount = 0, 0
	r.env.Eng.After(r.svc.FeedbackEvery, r.feedbackTick)
}

func (r *rtcInstance) Stop() {
	if r.lastRes != 0 {
		r.resTime[r.lastRes] += r.env.Eng.Now() - r.lastResAt
	}
	r.stopped = true
}

func (r *rtcInstance) Stats() Stats {
	now := r.env.Eng.Now()
	elapsed := (now - r.startAt).Seconds()
	st := RTCStats{}
	if elapsed > 0 {
		st.AvgFPS = float64(r.rendered) / elapsed
		st.FreezesPerMinute = float64(r.freezes) / (elapsed / 60)
		st.MeanRateBps = int64(float64(r.recvBytes) * 8 / elapsed)
	}
	if r.recvPkts > 0 {
		st.HighDelayFrac = float64(r.highDelayPkts) / float64(r.recvPkts)
	}
	// Dominant resolution by time; include the still-open segment.
	resTime := make(map[int]sim.Time, len(r.resTime))
	for k, v := range r.resTime {
		resTime[k] = v
	}
	if !r.stopped && r.lastRes != 0 {
		resTime[r.lastRes] += now - r.lastResAt
	}
	var best sim.Time
	for res, t := range resTime {
		if t > best {
			best = t
			st.Resolution = res
		}
	}
	return Stats{RTC: &st}
}
