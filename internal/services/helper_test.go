package services

import "prudentia/internal/cca"

// ccaBBR415 shortens the common BBRv1 (Linux 4.15) variant in tests.
func ccaBBR415() cca.BBRVariant { return cca.BBRLinux415() }
