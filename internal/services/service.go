// Package services implements behavioural models of the twelve Internet
// services (plus iPerf baselines) in the Prudentia catalog, Table 1 of
// the paper. Each model reproduces the traffic-shaping mechanisms the
// paper identifies as driving fairness outcomes: congestion control
// algorithm, number of concurrent flows, application rate caps, ABR
// control loops, chunk batching, and request scheduling. Live endpoints
// are replaced by these models per the substitution table in DESIGN.md.
package services

import (
	"prudentia/internal/browser"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// Category classifies catalog entries, mirroring Table 1.
type Category string

const (
	CategoryVideo    Category = "video"
	CategoryFile     Category = "file-transfer"
	CategoryRTC      Category = "rtc"
	CategoryWeb      Category = "web"
	CategoryBaseline Category = "baseline"
)

// Env is everything a service instance needs to run in one experiment.
type Env struct {
	Eng *sim.Engine
	TB  *netem.Testbed
	// Slot is the experiment slot (0 incumbent, 1 contender) the
	// service's flows are attributed to at the bottleneck.
	Slot int
	// RNG is the instance's private random stream.
	RNG *sim.RNG
	// Client is the browser/client environment (render fidelity, §3.3).
	Client browser.Client
}

// Service is a catalog entry: a factory for running instances.
type Service interface {
	// Name is the catalog name (e.g. "YouTube", "iPerf (BBR)").
	Name() string
	// Category mirrors Table 1's grouping.
	Category() Category
	// MaxRateBps is the service's intrinsic application-level rate cap
	// in bits/sec (0 = unlimited). Used for app-limit-aware max-min fair
	// share computation (§4: video services at 50 Mbps are
	// application-limited, so their MmF share is their cap).
	MaxRateBps() int64
	// FlowCount is the nominal number of concurrent workload flows
	// (Table 1's "# Flows" column).
	FlowCount() int
	// Start launches the workload; the instance runs until Stop.
	Start(env *Env) Instance
}

// Instance is a running service workload.
type Instance interface {
	// Stop halts all of the instance's transmission.
	Stop()
	// Stats returns QoE metrics accumulated so far. Sections not
	// applicable to the service are nil.
	Stats() Stats
}

// Stats carries per-category QoE metrics (§5 "Beyond Throughput").
type Stats struct {
	Video *VideoStats
	RTC   *RTCStats
	Web   *WebStats
	File  *FileStats
}

// VideoStats reports on-demand video playback quality.
type VideoStats struct {
	// ChunksFetched is the number of media chunks downloaded.
	ChunksFetched int
	// MeanBitrateBps is the byte-weighted average requested bitrate.
	MeanBitrateBps int64
	// DominantResolution is the resolution (height) played for the
	// longest time.
	DominantResolution int
	// RebufferEvents counts playback stalls; RebufferTime totals them.
	RebufferEvents int
	RebufferTime   sim.Time
	// Switches counts rung changes (stability indicator).
	Switches int
}

// RTCStats reports the §5.1/Table 2 real-time-communication metrics.
type RTCStats struct {
	// Resolution is the height the stream spent most time at.
	Resolution int
	// AvgFPS is frames rendered per second on average.
	AvgFPS float64
	// FreezesPerMinute uses the WebRTC freeze definition: a frame
	// inter-arrival gap exceeding max(3δ, δ+150ms).
	FreezesPerMinute float64
	// HighDelayFrac is the fraction of media packets whose estimated RTT
	// exceeded the ITU 190 ms bound for RTC.
	HighDelayFrac float64
	// MeanRateBps is the average media send rate achieved.
	MeanRateBps int64
}

// WebStats reports page-load behaviour (§5.2).
type WebStats struct {
	// PLTs are the per-load SpeedIndex-style page load times: time until
	// 95% of above-the-fold bytes arrived.
	PLTs []sim.Time
	// Loads is the number of completed page loads.
	Loads int
}

// FileStats reports bulk-transfer progress.
type FileStats struct {
	// BytesCompleted counts application bytes confirmed delivered.
	BytesCompleted int64
	// ChunksCompleted counts finished chunks/batches where applicable.
	ChunksCompleted int
	// Batches counts completed Mega-style chunk batches.
	Batches int
}
