package services

import (
	"prudentia/internal/sim"
	"prudentia/internal/transport"
)

// WebPage models the web-browsing workloads (§5.2): repeated fresh-cache
// page loads against a contending service. Following the paper's
// procedure, the contender starts first; after StartDelay the page is
// loaded, then re-loaded repeatedly with LoadGap between loads, each time
// through a fresh browser profile (new connections, empty cache). The
// page-load time (PLT) metric is SpeedIndex-flavoured: the time until
// 95 % of the above-the-fold bytes have arrived.
type WebPage struct {
	ServiceName string
	Factory     AlgFactory
	// TotalBytes is the full page weight; AboveFoldFrac the share of it
	// visible without scrolling (text pages are lighter and mostly
	// above-fold; image-heavy pages are heavier, per Obs 8).
	TotalBytes    int64
	AboveFoldFrac float64
	// Flows is the number of concurrent connections the browser opens
	// (Table 1: wikipedia >5, news.google >20, youtube.com >10).
	Flows int
	// Resources is the number of sub-resources beyond the root document.
	Resources int
	// StartDelay is how long after the contender the first load begins.
	StartDelay sim.Time
	// LoadGap separates consecutive loads.
	LoadGap sim.Time
}

// NewWikipedia returns the wikipedia.org model: light, text-dominant.
func NewWikipedia(f AlgFactory) *WebPage {
	return &WebPage{
		ServiceName:   "wikipedia.org",
		Factory:       f,
		TotalBytes:    600_000,
		AboveFoldFrac: 0.7,
		Flows:         5,
		Resources:     12,
		StartDelay:    30 * sim.Second,
		LoadGap:       45 * sim.Second,
	}
}

// NewGoogleNews returns the news.google.com model: text plus thumbnails.
func NewGoogleNews(f AlgFactory) *WebPage {
	return &WebPage{
		ServiceName:   "news.google.com",
		Factory:       f,
		TotalBytes:    2_500_000,
		AboveFoldFrac: 0.6,
		Flows:         20,
		Resources:     45,
		StartDelay:    30 * sim.Second,
		LoadGap:       45 * sim.Second,
	}
}

// NewYouTubeWeb returns the youtube.com front-page model: image heavy
// (thumbnails), served by a different stack than YouTube video (Table 1).
func NewYouTubeWeb(f AlgFactory) *WebPage {
	return &WebPage{
		ServiceName:   "youtube.com",
		Factory:       f,
		TotalBytes:    4_500_000,
		AboveFoldFrac: 0.6,
		Flows:         10,
		Resources:     35,
		StartDelay:    30 * sim.Second,
		LoadGap:       45 * sim.Second,
	}
}

// Name implements Service.
func (s *WebPage) Name() string { return s.ServiceName }

// Category implements Service.
func (s *WebPage) Category() Category { return CategoryWeb }

// MaxRateBps implements Service: pages are not rate-capped.
func (s *WebPage) MaxRateBps() int64 { return 0 }

// FlowCount implements Service.
func (s *WebPage) FlowCount() int { return s.Flows }

// Start implements Service.
func (s *WebPage) Start(env *Env) Instance {
	inst := &webInstance{env: env, svc: s}
	env.Eng.After(s.StartDelay, inst.startLoad)
	return inst
}

type webInstance struct {
	env     *Env
	svc     *WebPage
	stopped bool

	flows []*transport.Flow
	stats WebStats

	// Per-load state.
	loadStart    sim.Time
	afTarget     int64 // 95% of above-the-fold bytes
	afDelivered  int64
	pltRecorded  bool
	totalPending int
}

// resourceSizes deterministically draws the page's resource sizes so
// that they sum to roughly TotalBytes. The first resources in document
// order are above the fold.
func (w *webInstance) resourceSizes() []int64 {
	n := w.svc.Resources
	sizes := make([]int64, n)
	var sum int64
	for i := range sizes {
		// Mix of small (CSS/JS/text) and large (image) resources.
		if w.env.RNG.Float64() < 0.4 {
			sizes[i] = 5_000 + int64(w.env.RNG.Intn(40_000))
		} else {
			sizes[i] = 40_000 + int64(w.env.RNG.Intn(200_000))
		}
		sum += sizes[i]
	}
	// Scale to the target page weight.
	for i := range sizes {
		sizes[i] = sizes[i] * w.svc.TotalBytes / sum
		if sizes[i] < 2_000 {
			sizes[i] = 2_000
		}
	}
	return sizes
}

// startLoad opens a fresh set of connections (cache and cookies wiped,
// §3.3) and fetches the root document, then the sub-resources.
func (w *webInstance) startLoad(now sim.Time) {
	if w.stopped {
		return
	}
	w.closeFlows()
	w.flows = make([]*transport.Flow, w.svc.Flows)
	for i := range w.flows {
		alg := w.svc.Factory(w.env.RNG.Split())
		w.flows[i] = transport.NewFlow(w.env.TB, w.env.Slot, alg, flowOptions(alg))
	}
	w.loadStart = now
	w.pltRecorded = false
	w.afDelivered = 0

	sizes := w.resourceSizes()
	afCount := int(float64(len(sizes)) * w.svc.AboveFoldFrac)
	var afBytes int64
	for i := 0; i < afCount; i++ {
		afBytes += sizes[i]
	}
	w.afTarget = afBytes * 95 / 100
	w.totalPending = len(sizes) + 1

	const htmlBytes = 40_000
	w.afTarget += htmlBytes // the document itself is above the fold
	// Root document first; sub-resources fan out when it arrives.
	w.flows[0].Write(htmlBytes, func(at sim.Time) {
		w.resourceDone(at, htmlBytes, true)
		if w.stopped {
			return
		}
		for i, size := range sizes {
			size := size
			above := i < afCount
			flow := w.flows[(i+1)%len(w.flows)]
			flow.Write(size, func(at sim.Time) { w.resourceDone(at, size, above) })
		}
	})
}

func (w *webInstance) resourceDone(now sim.Time, size int64, aboveFold bool) {
	if aboveFold {
		w.afDelivered += size
	}
	if !w.pltRecorded && w.afDelivered >= w.afTarget {
		w.pltRecorded = true
		w.stats.PLTs = append(w.stats.PLTs, now-w.loadStart)
	}
	w.totalPending--
	if w.totalPending == 0 {
		w.stats.Loads++
		if !w.stopped {
			w.env.Eng.After(w.svc.LoadGap, w.startLoad)
		}
	}
}

func (w *webInstance) closeFlows() {
	for _, f := range w.flows {
		f.Close()
	}
	w.flows = nil
}

func (w *webInstance) Stop() {
	w.stopped = true
	w.closeFlows()
}

func (w *webInstance) Stats() Stats {
	st := w.stats
	return Stats{Web: &st}
}
