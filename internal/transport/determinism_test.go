package transport

import (
	"testing"

	"prudentia/internal/cca"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// ccaTrace is one sampled control-state trajectory: congestion window,
// pacing rate, and delivered bytes every 10 ms of virtual time.
type ccaTrace struct {
	cwnd      []int
	pacing    []int64
	delivered []int64
}

// runCCATrial drives one bulk flow with the given controller over a lossy
// constrained path (drop-tail overflow plus upstream noise, both drawing
// on the trial RNG) and samples its trajectory.
func runCCATrial(t *testing.T, mk func(*sim.RNG) cca.Algorithm, seed uint64) ccaTrace {
	t.Helper()
	rng := sim.NewRNG(seed)
	eng := sim.NewEngine()
	cfg := netem.Config{
		RateBps: 8_000_000,
		RTT:     50 * sim.Millisecond,
		Noise: &netem.NoiseConfig{
			MeanEpisodeGap:  200 * sim.Millisecond,
			MeanEpisodeLen:  5 * sim.Millisecond,
			DropProbability: 0.1,
		},
	}
	tb := netem.NewTestbed(eng, cfg, rng)
	f := NewFlow(tb, 0, mk(rng), Options{})
	f.SetBulk()

	var tr ccaTrace
	var tick sim.Event
	tick = func(now sim.Time) {
		tr.cwnd = append(tr.cwnd, f.Algorithm().CwndPackets())
		tr.pacing = append(tr.pacing, f.Algorithm().PacingRate())
		tr.delivered = append(tr.delivered, f.DeliveredBytes())
		eng.After(10*sim.Millisecond, tick)
	}
	eng.After(10*sim.Millisecond, tick)
	eng.RunUntil(5 * sim.Second)
	f.Close()
	return tr
}

// TestCrossCCADeterminism runs every congestion controller twice from the
// same seed and requires identical cwnd/pacing/delivery trajectories.
// This pins the RNG-sharing contract that the engine and packet pooling
// must not perturb: identical seeds mean identical RNG draw order,
// identical event order, identical control decisions — the property every
// golden trace and every reproducible watchdog trial rests on.
func TestCrossCCADeterminism(t *testing.T) {
	cases := []struct {
		name string
		mk   func(*sim.RNG) cca.Algorithm
	}{
		{"newreno", func(*sim.RNG) cca.Algorithm { return cca.NewNewReno(cca.Config{}) }},
		{"cubic", func(*sim.RNG) cca.Algorithm { return cca.NewCubic(cca.Config{}) }},
		{"cubic-extended", func(*sim.RNG) cca.Algorithm { return cca.NewCubicExtended(cca.Config{}) }},
		{"bbr-unpaced", func(r *sim.RNG) cca.Algorithm { return cca.NewBBR(cca.Config{}, cca.BBRUnpaced(), r) }},
		{"bbr-linux-4.15", func(r *sim.RNG) cca.Algorithm { return cca.NewBBR(cca.Config{}, cca.BBRLinux415(), r) }},
		{"bbr-linux-5.15", func(r *sim.RNG) cca.Algorithm { return cca.NewBBR(cca.Config{}, cca.BBRLinux515(), r) }},
		{"bbrv3", func(r *sim.RNG) cca.Algorithm { return cca.NewBBRv3(cca.Config{}, r) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const seed = 0xC0FFEE
			a := runCCATrial(t, tc.mk, seed)
			b := runCCATrial(t, tc.mk, seed)
			if len(a.cwnd) == 0 {
				t.Fatal("no samples collected")
			}
			if len(a.cwnd) != len(b.cwnd) {
				t.Fatalf("sample counts differ: %d vs %d", len(a.cwnd), len(b.cwnd))
			}
			for i := range a.cwnd {
				if a.cwnd[i] != b.cwnd[i] || a.pacing[i] != b.pacing[i] || a.delivered[i] != b.delivered[i] {
					t.Fatalf("trajectories diverge at sample %d (t=%dms): cwnd %d/%d pacing %d/%d delivered %d/%d",
						i, (i+1)*10, a.cwnd[i], b.cwnd[i], a.pacing[i], b.pacing[i], a.delivered[i], b.delivered[i])
				}
			}
			// The path must actually have stressed the controller, or the
			// comparison proves nothing.
			if a.delivered[len(a.delivered)-1] == 0 {
				t.Fatal("degenerate trial: nothing delivered")
			}
		})
	}
}

// TestGCCControllerDeterminism covers the rate-based controllers (Meet
// and Teams GCC flavours), which speak Feedback rather than AckSample:
// identical synthetic feedback streams must yield identical target-rate
// ladders.
func TestGCCControllerDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  cca.GCCConfig
	}{
		{"meet", cca.MeetGCC()},
		{"teams", cca.TeamsController()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() []int64 {
				g := cca.NewGCC(tc.cfg)
				rng := sim.NewRNG(7)
				var rates []int64
				now := sim.Time(0)
				for i := 0; i < 400; i++ {
					now += 100 * sim.Millisecond
					fb := cca.Feedback{
						Interval:      100 * sim.Millisecond,
						LossRate:      rng.Float64() * 0.05,
						QueueDelay:    rng.Duration(40 * sim.Millisecond),
						DelayGradient: rng.Float64()*20 - 10,
						ReceiveRate:   g.TargetRate() - int64(rng.Intn(100_000)),
					}
					g.OnFeedback(now, fb)
					rates = append(rates, g.TargetRate())
				}
				return rates
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s target rates diverge at report %d: %d vs %d", tc.name, i, a[i], b[i])
				}
			}
			// Sanity: the ladder moved at least once under varying feedback.
			moved := false
			for i := 1; i < len(a); i++ {
				if a[i] != a[i-1] {
					moved = true
					break
				}
			}
			if !moved {
				t.Fatal("target rate never changed across 400 varied reports")
			}
		})
	}
}
