package transport

import (
	"testing"
	"testing/quick"

	"prudentia/internal/cca"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

func TestTailLossProbeRecoversWindowTailDrop(t *testing.T) {
	// A transfer whose final packets are tail-dropped must recover via
	// the probe (fast) rather than a full RTO chain.
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 16}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewNewReno(cca.Config{InitialCwnd: 40}), Options{})
	done := sim.Time(0)
	// 40 packets burst into a 16-slot queue: the tail drops, and since no
	// later packets exist only the probe can recover it.
	f.Write(60_000, func(now sim.Time) { done = now })
	eng.RunUntil(10 * sim.Second)
	if done == 0 {
		t.Fatalf("transfer never completed (retx=%d timeouts=%d)", f.Retransmits, f.Timeouts)
	}
	if f.TailProbes == 0 {
		t.Fatal("expected a tail-loss probe")
	}
	if done > 3*sim.Second {
		t.Fatalf("tail recovery too slow: %v", done)
	}
}

func TestLostRetransmitsRedetected(t *testing.T) {
	// Under persistent overload with a tiny queue, retransmissions get
	// dropped too; time-based re-detection must keep the flow moving
	// without waiting for full RTOs each round.
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 3_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 6}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(4))
	// A second flow keeps the queue hot.
	bg := NewFlow(tb, 1, cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(7)), Options{})
	bg.SetBulk()
	f := NewFlow(tb, 0, cca.NewNewReno(cca.Config{InitialCwnd: 30}), Options{})
	completed := false
	f.Write(600_000, func(sim.Time) { completed = true })
	eng.RunUntil(60 * sim.Second)
	if !completed {
		t.Fatalf("transfer stuck: retx=%d timeouts=%d", f.Retransmits, f.Timeouts)
	}
}

func TestFragileRecoveryCollapsesOnBurstLoss(t *testing.T) {
	// With FragileRecovery, losing a large fraction of the window in one
	// episode must register as a timeout-style collapse.
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 8}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(2))
	alg := cca.NewNewReno(cca.Config{InitialCwnd: 64})
	f := NewFlow(tb, 0, alg, Options{FragileRecovery: true})
	f.SetBulk()
	eng.RunUntil(5 * sim.Second)
	if f.Timeouts == 0 {
		t.Fatal("fragile flow should have collapsed at least once")
	}
}

func TestRobustRecoveryAvoidsCollapseOnSameWorkload(t *testing.T) {
	// The identical scenario without FragileRecovery should ride the
	// burst loss out with far fewer (ideally zero) timeout collapses.
	count := func(fragile bool) int64 {
		eng := sim.NewEngine()
		cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 8}
		tb := netem.NewTestbed(eng, cfg, sim.NewRNG(2))
		f := NewFlow(tb, 0, cca.NewNewReno(cca.Config{InitialCwnd: 64}),
			Options{FragileRecovery: fragile})
		f.SetBulk()
		eng.RunUntil(5 * sim.Second)
		return f.Timeouts
	}
	if robust, fragile := count(false), count(true); robust >= fragile {
		t.Fatalf("robust recovery (%d collapses) should beat fragile (%d)", robust, fragile)
	}
}

func TestBurstOnIdleRestartBursts(t *testing.T) {
	// After an idle gap, a burst-enabled flow puts a full window on the
	// wire immediately; a pacing-disciplined flow spreads it out.
	depth := func(burst bool) int {
		eng := sim.NewEngine()
		cfg := netem.Config{RateBps: 50_000_000, RTT: 50 * sim.Millisecond}
		tb := netem.NewTestbed(eng, cfg, sim.NewRNG(3))
		tb.UpstreamJitter = 0
		alg := cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(5))
		f := NewFlow(tb, 0, alg, Options{BurstOnIdleRestart: burst})
		// Warm the flow up so BBR has a real cwnd, then idle, then write.
		f.Write(3_000_000, nil)
		eng.RunUntil(10 * sim.Second)
		max := 0
		tb.Bneck.StartSampling(sim.Millisecond)
		f.Write(3_000_000, nil)
		eng.RunUntil(10*sim.Second + 100*sim.Millisecond)
		for _, s := range tb.Bneck.Samples() {
			if s.Total > max {
				max = s.Total
			}
		}
		return max
	}
	if b, p := depth(true), depth(false); b <= p {
		t.Fatalf("idle-restart burst queue depth %d should exceed paced %d", b, p)
	}
}

func TestConservationInvariant(t *testing.T) {
	// Property: for random configurations, every packet the application
	// offers is eventually either delivered or still pending — and the
	// bottleneck's arrival = delivered + dropped accounting always holds.
	if err := quick.Check(func(seed uint64, q uint8, rate uint8) bool {
		eng := sim.NewEngine()
		cfg := netem.Config{
			RateBps:       int64(rate%40+1) * 1_000_000,
			RTT:           50 * sim.Millisecond,
			QueueCapacity: int(q%60) + 4,
		}
		tb := netem.NewTestbed(eng, cfg, sim.NewRNG(seed))
		f := NewFlow(tb, 0, cca.NewCubic(cca.Config{}), Options{})
		completed := false
		f.Write(150_000, func(sim.Time) { completed = true })
		eng.RunUntil(120 * sim.Second)
		st := tb.Bneck.Stats(0)
		if st.ArrivedPackets != st.DeliveredPackets+st.DroppedPackets+int64(tb.Bneck.QueueLen()) {
			return false
		}
		return completed
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAckEveryTwoStillCompletes(t *testing.T) {
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewCubic(cca.Config{}), Options{AckEvery: 2})
	completed := false
	f.Write(1_500_000, func(sim.Time) { completed = true })
	eng.RunUntil(30 * sim.Second)
	if !completed {
		t.Fatal("delayed-ack flow did not complete")
	}
}
