package transport

// metaRing is the sender's per-packet bookkeeping store, replacing a
// map[int64]*pktMeta on the hot path. Live entries always lie in the
// window [cumAck, nextSeq), so a power-of-two slot array indexed by
// seq&mask is collision-free as long as the array is at least the window
// size; put grows it when the window catches up. Compared to the map this
// removes the per-insert allocation and the hashing from every ACK.
//
// Slots are stored by value. put may grow (and therefore move) the array,
// so callers must not hold a *pktMeta across a put call. del only clears
// the present flag — fields of a just-deleted entry stay readable, which
// onAckAtServer relies on when the cumulative advance deletes the entry
// it is still sampling from.
type metaRing struct {
	slots []pktMeta
	mask  int64
}

const metaRingInitial = 64

// get returns the entry for seq, or nil when absent.
func (r *metaRing) get(seq int64) *pktMeta {
	if len(r.slots) == 0 {
		return nil
	}
	m := &r.slots[seq&r.mask]
	if m.present && m.seq == seq {
		return m
	}
	return nil
}

// put returns a reset entry for seq, displacing nothing: the array grows
// (doubling, rehashing live entries) until seq's slot is free or already
// holds seq.
func (r *metaRing) put(seq int64) *pktMeta {
	if len(r.slots) == 0 {
		r.slots = make([]pktMeta, metaRingInitial)
		r.mask = metaRingInitial - 1
	}
	for {
		m := &r.slots[seq&r.mask]
		if !m.present || m.seq == seq {
			*m = pktMeta{seq: seq, present: true}
			return m
		}
		r.grow()
	}
}

// del removes seq if present. Field values survive until the slot is
// reused; only the present flag is cleared.
func (r *metaRing) del(seq int64) {
	if m := r.get(seq); m != nil {
		m.present = false
	}
}

func (r *metaRing) grow() {
	old := r.slots
	r.slots = make([]pktMeta, 2*len(old))
	r.mask = int64(len(r.slots) - 1)
	for i := range old {
		if old[i].present {
			r.slots[old[i].seq&r.mask] = old[i]
		}
	}
}
