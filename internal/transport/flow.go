// Package transport implements the TCP/QUIC-like reliable flows that
// Prudentia's service models send their workloads over. A Flow couples a
// sender (congestion window, pacing, loss detection and recovery, RTT
// estimation, delivery-rate sampling) with a receiver (cumulative +
// selective acknowledgements) across a netem.Testbed path.
//
// The model is packet-granular: every data packet is a full-sized
// segment, acknowledgements are per-packet, and loss detection uses the
// modern packet-threshold rule (a packet is lost once three later
// packets have been acknowledged) with a retransmission timeout as
// backstop — close in spirit to RACK/QUIC loss recovery, which the
// services under study run in practice.
package transport

import (
	"prudentia/internal/cca"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// Options configures a Flow.
type Options struct {
	// MSS is the wire size of data packets in bytes (default 1500).
	MSS int
	// ThrottleBps caps the send rate server-side in bits/sec (0 = none).
	// OneDrive's upstream 45 Mbps cap (Table 1) uses this.
	ThrottleBps int64
	// AckEvery makes the receiver acknowledge every Nth packet (default
	// 1; 2 approximates delayed ACKs). The paper's dynamics are not
	// sensitive to this; tests use 1.
	AckEvery int
	// BurstOnIdleRestart sends up to a full congestion window unpaced
	// when transmission resumes after an idle period (pipe empty, fresh
	// application data). This models stacks that do not pace out of
	// idle — the behaviour behind Mega's batch-start bursts (Obs 4): all
	// five connections resume simultaneously with wide-open windows and
	// slam the bottleneck queue.
	BurstOnIdleRestart bool
	// FragileRecovery models classic loss-based stacks under burst loss:
	// when a single detection episode marks a large fraction of the
	// window lost, the ACK clock is effectively gone and the flow takes
	// a timeout-style collapse (cwnd to one segment) rather than a
	// surgical SACK repair. BBR-era stacks with RACK ride such episodes
	// out; NewReno/Cubic deployments of the paper's era frequently did
	// not, which is the mechanism behind Obs 4/9: Mega's synchronized
	// bursts repeatedly knock loss-based competitors into timeout
	// recovery while BBR competitors recover in stride.
	FragileRecovery bool
}

func (o Options) withDefaults() Options {
	if o.MSS == 0 {
		o.MSS = 1500
	}
	if o.AckEvery == 0 {
		o.AckEvery = 1
	}
	return o
}

// message is an application write awaiting delivery confirmation.
type message struct {
	endSeq int64 // first seq after the message's last packet
	onDone func(now sim.Time)
}

// pktMeta is the sender's per-packet bookkeeping. seq and present are
// metaRing bookkeeping: entries live by value in the ring's slot array.
type pktMeta struct {
	seq           int64
	sentAt        sim.Time
	delivered     int64    // sender's delivered counter at send time
	deliveredTime sim.Time // timestamp of that counter
	appLimited    bool
	retransmitted bool
	acked         bool
	lost          bool
	present       bool
}

// Flow is one reliable transport connection between a service's server
// and the testbed client.
type Flow struct {
	eng  *sim.Engine
	tb   *netem.Testbed
	opts Options
	alg  cca.Algorithm

	id      int
	service int

	// Sender state.
	nextSeq    int64
	cumAck     int64
	sent       metaRing
	inflight   int
	rtxQueue   []int64
	lossScan   int64 // seqs below this have been loss-checked
	nextSendAt sim.Time
	paceTimer  *sim.Timer

	// trySendEv and onRTOEv are the flow's two timer callbacks, bound once
	// at construction so each pacing arm and RTO re-arm is allocation-free.
	trySendEv sim.Event
	onRTOEv   sim.Event

	// App data.
	bulk        bool
	pendingPkts int64
	messages    []message

	// Idle-restart burst budget (see Options.BurstOnIdleRestart).
	burstBudget int

	// rtxOutstanding tracks retransmitted, not-yet-acked sequence
	// numbers. The packet-threshold detector cannot re-detect them (its
	// watermark already passed), so they get RACK-style time-based
	// detection: still unacked 1.25×SRTT after (re)transmission while
	// later data keeps being acknowledged ⇒ lost again.
	rtxOutstanding []int64

	// Delivery accounting (bytes).
	delivered     int64
	deliveredTime sim.Time

	// App-limited marking per the delivery-rate draft.
	appLimitedUntil int64

	// RTT estimation (RFC 6298).
	srtt, rttvar sim.Time
	rtoTimer     *sim.Timer
	// probePending marks that the next expiry is a tail-loss probe
	// (RACK/TLP-style): retransmit the highest outstanding packet to
	// elicit acknowledgements instead of collapsing the window. Only the
	// following expiry is a full RTO.
	probePending bool
	TailProbes   int64

	// Recovery state.
	recoveryEnd int64 // in recovery while cumAck < recoveryEnd
	inRecovery  bool

	// Receiver state.
	rcvExpected int64
	rcvHighest  int64
	rcvOOO      map[int64]bool
	rcvCount    int64

	// Counters for reports and tests.
	Retransmits int64
	Timeouts    int64
	RTTSamples  int64
	lastRTT     sim.Time

	closed bool
}

// NewFlow creates a flow on the testbed attributed to experiment slot
// service, driven by congestion controller alg.
func NewFlow(tb *netem.Testbed, service int, alg cca.Algorithm, opts Options) *Flow {
	f := &Flow{
		eng:     tb.Eng,
		tb:      tb,
		opts:    opts.withDefaults(),
		alg:     alg,
		service: service,
		rcvOOO:  make(map[int64]bool),
	}
	f.paceTimer = tb.Eng.NewTimer()
	f.rtoTimer = tb.Eng.NewTimer()
	f.trySendEv = f.trySend
	f.onRTOEv = f.onRTO
	f.id = tb.RegisterFlow(service, f.onDataAtClient, f.onAckAtServer)
	return f
}

// ID returns the testbed flow id.
func (f *Flow) ID() int { return f.id }

// Algorithm returns the flow's congestion controller.
func (f *Flow) Algorithm() cca.Algorithm { return f.alg }

// LastRTT returns the most recent RTT sample (0 before the first).
func (f *Flow) LastRTT() sim.Time { return f.lastRTT }

// SRTT returns the smoothed RTT estimate.
func (f *Flow) SRTT() sim.Time { return f.srtt }

// DeliveredBytes returns the sender's count of acknowledged bytes.
func (f *Flow) DeliveredBytes() int64 { return f.delivered }

// InflightPackets returns the number of unacknowledged packets.
func (f *Flow) InflightPackets() int { return f.inflight }

// SetBulk puts the flow in infinite-source mode (iPerf-style).
func (f *Flow) SetBulk() {
	f.bulk = true
	f.trySend(f.eng.Now())
}

// Close stops the flow: pending data is dropped and timers cancelled.
func (f *Flow) Close() {
	f.closed = true
	f.bulk = false
	f.pendingPkts = 0
	f.messages = nil
	f.rtoTimer.Stop()
	f.paceTimer.Stop()
}

// Write queues size bytes for transmission; onDone (optional) fires when
// the whole write has been acknowledged by the client.
func (f *Flow) Write(size int64, onDone func(now sim.Time)) {
	if f.closed || size <= 0 {
		if onDone != nil && size <= 0 {
			onDone(f.eng.Now())
		}
		return
	}
	pkts := (size + int64(f.opts.MSS) - 1) / int64(f.opts.MSS)
	if f.opts.BurstOnIdleRestart && f.inflight == 0 && f.pendingPkts == 0 {
		// Resuming from idle: the first window's worth goes out unpaced.
		f.burstBudget = f.alg.CwndPackets()
	}
	f.pendingPkts += pkts
	end := f.nextSeq + f.pendingPkts
	if onDone != nil {
		f.messages = append(f.messages, message{endSeq: end, onDone: onDone})
	}
	f.trySend(f.eng.Now())
}

// hasData reports whether the application has packets to send.
func (f *Flow) hasData() bool { return f.bulk || f.pendingPkts > 0 }

// packetInterval returns the pacing interval for one packet at rate
// (bytes/sec).
func packetInterval(mss int, rateBytesPerSec int64) sim.Time {
	if rateBytesPerSec <= 0 {
		return 0
	}
	return sim.Time(int64(mss) * int64(sim.Second) / rateBytesPerSec)
}

// effectivePacingRate combines the CCA pacing rate with the server-side
// throttle, in bytes/sec. Zero means unpaced.
func (f *Flow) effectivePacingRate() int64 {
	rate := f.alg.PacingRate()
	if f.opts.ThrottleBps > 0 {
		tb := f.opts.ThrottleBps / 8
		if rate == 0 || tb < rate {
			rate = tb
		}
	}
	return rate
}

// trySend transmits as much as window, data, and pacing allow.
func (f *Flow) trySend(now sim.Time) {
	if f.closed {
		return
	}
	for {
		cwnd := f.alg.CwndPackets()
		if f.inflight >= cwnd {
			return
		}
		retransmit := len(f.rtxQueue) > 0
		if !retransmit && !f.hasData() {
			// Application-limited: subsequent samples up to nextSeq must
			// not raise bandwidth estimates.
			if f.inflight > 0 {
				f.appLimitedUntil = f.nextSeq
			}
			return
		}
		rate := f.effectivePacingRate()
		if f.burstBudget > 0 {
			rate = 0 // idle-restart burst: pacing suspended
			f.burstBudget--
			f.nextSendAt = now
		}
		if rate > 0 && now < f.nextSendAt {
			if !f.paceTimer.Pending() {
				f.paceTimer.Reset(f.nextSendAt-now, f.trySendEv)
			}
			return
		}
		if retransmit {
			f.sendRetransmit(now)
		} else {
			f.sendNew(now)
		}
		if rate > 0 {
			next := f.nextSendAt
			if now > next {
				next = now
			}
			f.nextSendAt = next + packetInterval(f.opts.MSS, rate)
		}
	}
}

func (f *Flow) sendNew(now sim.Time) {
	seq := f.nextSeq
	f.nextSeq++
	if !f.bulk {
		f.pendingPkts--
	}
	f.transmit(now, seq, false)
}

func (f *Flow) sendRetransmit(now sim.Time) {
	seq := f.rtxQueue[0]
	f.rtxQueue = f.rtxQueue[1:]
	if m := f.sent.get(seq); m == nil || m.acked {
		return // delivered in the meantime
	}
	f.Retransmits++
	f.tb.TransportRetransmits++
	f.rtxOutstanding = append(f.rtxOutstanding, seq)
	f.transmit(now, seq, true)
}

func (f *Flow) transmit(now sim.Time, seq int64, retx bool) {
	throttled := f.opts.ThrottleBps > 0
	meta := f.sent.put(seq)
	meta.sentAt = now
	meta.delivered = f.delivered
	meta.deliveredTime = f.deliveredTime
	meta.appLimited = seq < f.appLimitedUntil || throttled
	meta.retransmitted = retx
	if f.deliveredTime == 0 {
		meta.deliveredTime = now
	}
	f.inflight++

	p := f.tb.AllocPacket()
	p.FlowID = f.id
	p.Service = f.service
	p.Size = f.opts.MSS
	p.Seq = seq
	p.SentAt = now
	p.Delivered = meta.delivered
	p.DeliveredTime = meta.deliveredTime
	p.AppLimited = meta.appLimited
	f.tb.SendData(now, p)
	f.armRTO(now)
}

// --- Receiver side -------------------------------------------------

// onDataAtClient handles a data packet arriving at the testbed client.
func (f *Flow) onDataAtClient(now sim.Time, p *netem.Packet) {
	f.rcvCount++
	if p.Seq > f.rcvHighest {
		f.rcvHighest = p.Seq
	}
	switch {
	case p.Seq == f.rcvExpected:
		f.rcvExpected++
		for f.rcvOOO[f.rcvExpected] {
			delete(f.rcvOOO, f.rcvExpected)
			f.rcvExpected++
		}
	case p.Seq > f.rcvExpected:
		f.rcvOOO[p.Seq] = true
	default:
		// duplicate of already-delivered data; still acknowledge
	}
	if f.opts.AckEvery > 1 && f.rcvCount%int64(f.opts.AckEvery) != 0 && p.Seq != f.rcvExpected-1 {
		return
	}
	ack := f.tb.AllocPacket()
	ack.FlowID = f.id
	ack.Service = f.service
	ack.Size = 64
	ack.IsAck = true
	ack.SentAt = p.SentAt
	ack.AckedSeq = p.Seq
	ack.CumAck = f.rcvExpected
	ack.HighestSeq = f.rcvHighest
	ack.Delivered = p.Delivered
	ack.DeliveredTime = p.DeliveredTime
	ack.AppLimited = p.AppLimited
	f.tb.SendAck(now, ack)
}

// --- Sender ACK processing ------------------------------------------

func (f *Flow) onAckAtServer(now sim.Time, p *netem.Packet) {
	if f.closed {
		return
	}
	newly := 0
	var sampleMeta *pktMeta

	// Selective acknowledgement of the echoed packet.
	if m := f.sent.get(p.AckedSeq); m != nil && !m.acked {
		m.acked = true
		if !m.lost {
			f.inflight--
		}
		newly++
		sampleMeta = m
		if !m.retransmitted {
			f.sampleRTT(now - m.sentAt)
		}
	}

	// Cumulative advance: everything below CumAck is delivered.
	for f.cumAck < p.CumAck {
		if m := f.sent.get(f.cumAck); m != nil {
			if !m.acked {
				m.acked = true
				if !m.lost {
					f.inflight--
				}
				newly++
			}
			m.present = false
		}
		f.cumAck++
	}

	if newly > 0 {
		f.delivered += int64(newly) * int64(f.opts.MSS)
		f.deliveredTime = now
		f.armRTO(now)
	}

	// Exit app-limited once the limited packets are all delivered.
	if f.appLimitedUntil != 0 && f.cumAck >= f.appLimitedUntil {
		f.appLimitedUntil = 0
	}

	wasInRecovery := f.inRecovery
	if f.inRecovery && f.cumAck >= f.recoveryEnd {
		f.inRecovery = false
	}

	// Loss detection: packet-threshold 3 against the highest seq the
	// receiver has seen, plus time-based re-detection of lost
	// retransmissions.
	f.detectLosses(now, p.HighestSeq)
	if newly > 0 {
		f.detectLostRetransmits(now)
	}

	if newly > 0 {
		sample := cca.AckSample{
			AckedPackets:    newly,
			AckedBytes:      int64(newly) * int64(f.opts.MSS),
			TotalDelivered:  f.delivered,
			PacketDelivered: -1,
			Inflight:        f.inflight,
			InRecovery:      f.inRecovery,
		}
		if sampleMeta != nil {
			sample.PacketDelivered = sampleMeta.delivered
			if !sampleMeta.retransmitted {
				sample.RTT = now - sampleMeta.sentAt
			}
			sample.RateAppLimited = sampleMeta.appLimited
			elapsed := now - sampleMeta.deliveredTime
			if elapsed > 0 {
				sample.DeliveryRate = (f.delivered - sampleMeta.delivered) * int64(sim.Second) / int64(elapsed)
			}
		}
		f.alg.OnAck(now, sample)
	}

	if wasInRecovery && !f.inRecovery {
		f.alg.OnExitRecovery(now)
	}

	f.checkMessageCompletion(now)
	f.trySend(now)
}

// detectLosses marks unacked packets more than the reordering threshold
// below highest as lost and schedules retransmissions.
func (f *Flow) detectLosses(now sim.Time, highest int64) {
	const reorderThreshold = 3
	limit := highest - reorderThreshold + 1 // seqs strictly below are lost
	if limit <= f.lossScan {
		return
	}
	start := f.lossScan
	if f.cumAck > start {
		start = f.cumAck
	}
	lost := 0
	for seq := start; seq < limit; seq++ {
		m := f.sent.get(seq)
		if m == nil || m.acked || m.lost {
			continue
		}
		m.lost = true
		f.inflight--
		f.rtxQueue = append(f.rtxQueue, seq)
		lost++
	}
	f.lossScan = limit
	if lost > 0 {
		f.alg.OnPacketLoss(now, lost)
		if !f.inRecovery {
			f.inRecovery = true
			f.recoveryEnd = f.nextSeq
			f.tb.TransportCwndEvents++
			f.alg.OnCongestionEvent(now)
		}
		if f.opts.FragileRecovery {
			cwnd := f.alg.CwndPackets()
			if lost >= 8 && lost*3 >= cwnd {
				// Burst loss took out a big chunk of the window: the
				// ACK clock is gone; collapse as a timeout would.
				f.Timeouts++
				f.tb.TransportTimeouts++
				f.alg.OnTimeout(now)
			}
		}
	}
}

// detectLostRetransmits requeues retransmitted packets that are still
// unacked well past an RTT while later data is being delivered.
func (f *Flow) detectLostRetransmits(now sim.Time) {
	if len(f.rtxOutstanding) == 0 {
		return
	}
	deadline := f.srtt + f.srtt/4
	if deadline == 0 {
		return
	}
	kept := f.rtxOutstanding[:0]
	relost := 0
	for _, seq := range f.rtxOutstanding {
		m := f.sent.get(seq)
		if m == nil || m.acked {
			continue // delivered; drop from tracking
		}
		if now-m.sentAt <= deadline {
			kept = append(kept, seq)
			continue
		}
		if !m.lost {
			m.lost = true
			f.inflight--
		}
		f.rtxQueue = append(f.rtxQueue, seq)
		relost++
	}
	f.rtxOutstanding = kept
	if relost > 0 {
		f.alg.OnPacketLoss(now, relost)
	}
}

// --- RTT / RTO -------------------------------------------------------

func (f *Flow) sampleRTT(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	f.RTTSamples++
	f.lastRTT = rtt
	if f.srtt == 0 {
		f.srtt = rtt
		f.rttvar = rtt / 2
		return
	}
	diff := f.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	f.rttvar = (3*f.rttvar + diff) / 4
	f.srtt = (7*f.srtt + rtt) / 8
}

func (f *Flow) rto() sim.Time {
	if f.srtt == 0 {
		return sim.Second
	}
	r := f.srtt + 4*f.rttvar
	if r < 200*sim.Millisecond {
		r = 200 * sim.Millisecond
	}
	return r
}

// pto returns the tail-loss-probe timeout (2×SRTT, floored).
func (f *Flow) pto() sim.Time {
	if f.srtt == 0 {
		return 500 * sim.Millisecond
	}
	p := 2 * f.srtt
	if p < 20*sim.Millisecond {
		p = 20 * sim.Millisecond
	}
	return p
}

func (f *Flow) armRTO(now sim.Time) {
	f.rtoTimer.Stop()
	if f.inflight == 0 {
		return
	}
	// First expiry is a tail probe, the next a full RTO.
	f.probePending = true
	f.rtoTimer.Reset(f.pto(), f.onRTOEv)
}

// sendTailProbe retransmits the highest outstanding packet so the
// receiver's acknowledgements expose which earlier packets were lost.
func (f *Flow) sendTailProbe(now sim.Time) {
	var highest int64 = -1
	for seq := f.nextSeq - 1; seq >= f.cumAck; seq-- {
		if m := f.sent.get(seq); m != nil && !m.acked {
			highest = seq
			break
		}
	}
	if highest < 0 {
		return
	}
	// The original copy is still nominally in flight; the probe replaces
	// its bookkeeping entry, so release its inflight slot first.
	if m := f.sent.get(highest); !m.lost {
		f.inflight--
	}
	f.TailProbes++
	f.Retransmits++
	f.tb.TransportTailProbes++
	f.tb.TransportRetransmits++
	f.rtxOutstanding = append(f.rtxOutstanding, highest)
	f.transmit(now, highest, true)
}

func (f *Flow) onRTO(now sim.Time) {
	if f.closed || f.inflight == 0 && len(f.rtxQueue) == 0 {
		return
	}
	if f.probePending {
		f.sendTailProbe(now)
		// transmit() re-armed a PTO; replace it with a full RTO so a
		// lost probe escalates instead of probing forever.
		f.rtoTimer.Reset(f.rto(), f.onRTOEv)
		f.probePending = false
		return
	}
	f.Timeouts++
	f.tb.TransportTimeouts++
	f.alg.OnTimeout(now)
	// Everything outstanding is presumed lost and must be retransmitted.
	f.rtxQueue = f.rtxQueue[:0]
	for seq := f.cumAck; seq < f.nextSeq; seq++ {
		m := f.sent.get(seq)
		if m == nil || m.acked {
			continue
		}
		if !m.lost {
			m.lost = true
			f.inflight--
		}
		f.rtxQueue = append(f.rtxQueue, seq)
	}
	f.lossScan = f.nextSeq
	f.inRecovery = true
	f.recoveryEnd = f.nextSeq
	f.nextSendAt = 0
	f.trySend(now)
	if f.inflight > 0 {
		f.armRTO(now)
	}
}

func (f *Flow) checkMessageCompletion(now sim.Time) {
	for len(f.messages) > 0 && f.cumAck >= f.messages[0].endSeq {
		done := f.messages[0].onDone
		f.messages = f.messages[1:]
		if done != nil {
			done(now)
		}
	}
}
