package transport

import (
	"testing"

	"prudentia/internal/cca"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// run builds a testbed, starts bulk flows with the given algorithms on
// slots, runs for dur, and returns per-slot delivered bytes.
func run(t *testing.T, cfg netem.Config, algs []func(i int) (cca.Algorithm, int), dur sim.Time) (*netem.Testbed, [2]int64) {
	t.Helper()
	eng := sim.NewEngine()
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	for i, mk := range algs {
		alg, slot := mk(i)
		f := NewFlow(tb, slot, alg, Options{})
		f.SetBulk()
	}
	eng.RunUntil(dur)
	return tb, [2]int64{tb.Bneck.Stats(0).DeliveredBytes, tb.Bneck.Stats(1).DeliveredBytes}
}

func mbps(bytes int64, dur sim.Time) float64 {
	return float64(bytes) * 8 / dur.Seconds() / 1e6
}

func TestSingleRenoUtilizesLink(t *testing.T) {
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	_, got := run(t, cfg, []func(int) (cca.Algorithm, int){
		func(int) (cca.Algorithm, int) { return cca.NewNewReno(cca.Config{}), 0 },
	}, 30*sim.Second)
	rate := mbps(got[0], 30*sim.Second)
	if rate < 8.5 || rate > 10.1 {
		t.Fatalf("single NewReno achieved %.2f Mbps on a 10 Mbps link", rate)
	}
}

func TestSingleCubicUtilizesLink(t *testing.T) {
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	_, got := run(t, cfg, []func(int) (cca.Algorithm, int){
		func(int) (cca.Algorithm, int) { return cca.NewCubic(cca.Config{}), 0 },
	}, 30*sim.Second)
	rate := mbps(got[0], 30*sim.Second)
	if rate < 8.5 || rate > 10.1 {
		t.Fatalf("single Cubic achieved %.2f Mbps on a 10 Mbps link", rate)
	}
}

func TestSingleBBRUtilizesLink(t *testing.T) {
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	_, got := run(t, cfg, []func(int) (cca.Algorithm, int){
		func(int) (cca.Algorithm, int) {
			return cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(2)), 0
		},
	}, 30*sim.Second)
	rate := mbps(got[0], 30*sim.Second)
	if rate < 8.5 || rate > 10.5 {
		t.Fatalf("single BBR achieved %.2f Mbps on a 10 Mbps link", rate)
	}
}

func TestSingleBBRv3UtilizesLink(t *testing.T) {
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	_, got := run(t, cfg, []func(int) (cca.Algorithm, int){
		func(int) (cca.Algorithm, int) {
			return cca.NewBBRv3(cca.Config{}, sim.NewRNG(2)), 0
		},
	}, 30*sim.Second)
	rate := mbps(got[0], 30*sim.Second)
	if rate < 8.0 || rate > 10.5 {
		t.Fatalf("single BBRv3 achieved %.2f Mbps on a 10 Mbps link", rate)
	}
}

func TestBBRKeepsQueueShorterThanReno(t *testing.T) {
	// BBR's defining property: it does not fill the buffer the way
	// loss-based algorithms do.
	mean := func(alg func() cca.Algorithm) float64 {
		eng := sim.NewEngine()
		cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
		tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
		f := NewFlow(tb, 0, alg(), Options{})
		f.SetBulk()
		tb.Bneck.StartSampling(50 * sim.Millisecond)
		eng.RunUntil(30 * sim.Second)
		var sum float64
		samples := tb.Bneck.Samples()
		// skip startup
		samples = samples[len(samples)/3:]
		for _, s := range samples {
			sum += float64(s.Total)
		}
		return sum / float64(len(samples))
	}
	renoQ := mean(func() cca.Algorithm { return cca.NewNewReno(cca.Config{}) })
	bbrQ := mean(func() cca.Algorithm { return cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(2)) })
	if bbrQ >= renoQ {
		t.Fatalf("BBR mean queue %.1f should be below Reno's %.1f", bbrQ, renoQ)
	}
}

func TestTwoRenoFlowsShareFairly(t *testing.T) {
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	_, got := run(t, cfg, []func(int) (cca.Algorithm, int){
		func(int) (cca.Algorithm, int) { return cca.NewNewReno(cca.Config{}), 0 },
		func(int) (cca.Algorithm, int) { return cca.NewNewReno(cca.Config{}), 1 },
	}, 60*sim.Second)
	a, b := mbps(got[0], 60*sim.Second), mbps(got[1], 60*sim.Second)
	if a+b < 8.5 {
		t.Fatalf("two Renos underutilize: %.2f + %.2f", a, b)
	}
	ratio := a / b
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("Reno vs Reno too skewed: %.2f vs %.2f Mbps", a, b)
	}
}

func TestTwoBBRFlowsShareFairly(t *testing.T) {
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	_, got := run(t, cfg, []func(int) (cca.Algorithm, int){
		func(i int) (cca.Algorithm, int) {
			return cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(uint64(i+10))), 0
		},
		func(i int) (cca.Algorithm, int) {
			return cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(uint64(i+10))), 1
		},
	}, 60*sim.Second)
	a, b := mbps(got[0], 60*sim.Second), mbps(got[1], 60*sim.Second)
	if a+b < 8.5 {
		t.Fatalf("two BBRs underutilize: %.2f + %.2f", a, b)
	}
	ratio := a / b
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("BBR vs BBR too skewed: %.2f vs %.2f Mbps", a, b)
	}
}

func TestBBRTakesLargeShareFromRenoInModerateBuffer(t *testing.T) {
	// Ware et al. (IMC'19), which the paper builds on: a single BBRv1
	// flow claims a large share against loss-based flows regardless of
	// their count. At 4xBDP buffers BBR should get at least ~35%.
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	_, got := run(t, cfg, []func(int) (cca.Algorithm, int){
		func(int) (cca.Algorithm, int) {
			return cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(3)), 0
		},
		func(int) (cca.Algorithm, int) { return cca.NewNewReno(cca.Config{}), 1 },
	}, 60*sim.Second)
	a, b := mbps(got[0], 60*sim.Second), mbps(got[1], 60*sim.Second)
	share := a / (a + b)
	if share < 0.3 {
		t.Fatalf("BBR share vs Reno = %.2f (%.2f vs %.2f Mbps), want >= 0.3", share, a, b)
	}
}

func TestThrottleCapsRate(t *testing.T) {
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 1_000_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 4096}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewCubicExtended(cca.Config{}), Options{ThrottleBps: 45_000_000})
	f.SetBulk()
	eng.RunUntil(20 * sim.Second)
	rate := mbps(tb.Bneck.Stats(0).DeliveredBytes, 20*sim.Second)
	if rate < 38 || rate > 46 {
		t.Fatalf("throttled flow achieved %.2f Mbps, want ~45", rate)
	}
}

func TestMessageCompletionCallback(t *testing.T) {
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewNewReno(cca.Config{}), Options{})
	var doneAt sim.Time
	f.Write(150_000, func(now sim.Time) { doneAt = now }) // 100 packets
	eng.RunUntil(30 * sim.Second)
	if doneAt == 0 {
		t.Fatal("message never completed")
	}
	// 100 packets over 10 Mbps should take well under 2 seconds including
	// slow start, and at least one RTT.
	if doneAt < 50*sim.Millisecond || doneAt > 2*sim.Second {
		t.Fatalf("message completed at %v", doneAt)
	}
	if f.DeliveredBytes() != 100*1500 {
		t.Fatalf("delivered %d bytes", f.DeliveredBytes())
	}
}

func TestSequentialMessagesCompleteInOrder(t *testing.T) {
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewCubic(cca.Config{}), Options{})
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		f.Write(75_000, func(sim.Time) { order = append(order, i) })
	}
	eng.RunUntil(30 * sim.Second)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order = %v", order)
	}
}

func TestRecoveryFromHeavyLoss(t *testing.T) {
	// A tiny queue forces repeated loss; the flow must still deliver all
	// data via fast retransmits and RTOs.
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 5_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 8}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewNewReno(cca.Config{}), Options{})
	completed := false
	f.Write(1_500_000, func(sim.Time) { completed = true }) // 1000 packets
	eng.RunUntil(60 * sim.Second)
	if !completed {
		t.Fatalf("transfer did not complete; delivered=%d retx=%d timeouts=%d",
			f.DeliveredBytes(), f.Retransmits, f.Timeouts)
	}
	if f.Retransmits == 0 {
		t.Fatal("expected retransmissions with an 8-packet queue")
	}
}

func TestFlowCloseStopsTransmission(t *testing.T) {
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewNewReno(cca.Config{}), Options{})
	f.SetBulk()
	eng.RunUntil(2 * sim.Second)
	f.Close()
	at := tb.Bneck.Stats(0).ArrivedPackets
	eng.RunUntil(4 * sim.Second)
	after := tb.Bneck.Stats(0).ArrivedPackets
	// Only packets already upstream may still arrive.
	if after-at > 64 {
		t.Fatalf("flow kept sending after Close: %d new packets", after-at)
	}
}

func TestRTTSamplesNearConfiguredRTT(t *testing.T) {
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 100_000_000, RTT: 50 * sim.Millisecond}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	f := NewFlow(tb, 0, cca.NewNewReno(cca.Config{}), Options{})
	f.Write(15_000, nil)
	eng.RunUntil(5 * sim.Second)
	if f.RTTSamples == 0 {
		t.Fatal("no RTT samples")
	}
	if f.SRTT() < 50*sim.Millisecond || f.SRTT() > 60*sim.Millisecond {
		t.Fatalf("SRTT = %v, want ~50ms", f.SRTT())
	}
}

func TestBBRMinRTTTracking(t *testing.T) {
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	alg := cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(2))
	f := NewFlow(tb, 0, alg, Options{})
	f.SetBulk()
	eng.RunUntil(15 * sim.Second)
	rt := alg.RTProp()
	if rt < 49*sim.Millisecond || rt > 60*sim.Millisecond {
		t.Fatalf("BBR RTProp = %v, want ~50ms", rt)
	}
	bw := alg.BtlBw()
	// ~10 Mbps = 1.25 MB/s.
	if bw < 1_000_000 || bw > 1_500_000 {
		t.Fatalf("BBR BtlBw = %d B/s, want ~1.25MB/s", bw)
	}
}

func TestAppLimitedFlowDoesNotOverestimateBandwidth(t *testing.T) {
	// A flow sending only 100 KB/s on a 10 Mbps link must not build a
	// bandwidth estimate anywhere near link rate.
	eng := sim.NewEngine()
	cfg := netem.Config{RateBps: 10_000_000, RTT: 50 * sim.Millisecond}
	tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
	alg := cca.NewBBR(cca.Config{}, cca.BBRLinux415(), sim.NewRNG(2))
	f := NewFlow(tb, 0, alg, Options{})
	var write sim.Event
	write = func(now sim.Time) {
		f.Write(10_000, nil)
		if now < 20*sim.Second {
			eng.After(100*sim.Millisecond, write)
		}
	}
	eng.After(0, write)
	eng.RunUntil(21 * sim.Second)
	rate := mbps(tb.Bneck.Stats(0).DeliveredBytes, 20*sim.Second)
	if rate > 1.2 {
		t.Fatalf("app-limited flow sent %.2f Mbps", rate)
	}
}
