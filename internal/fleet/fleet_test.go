package fleet

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/obs"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

const testFP = 0xfee1_600d

func testCatalog() []services.Service {
	return []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("iPerf (Cubic)"),
	}
}

func testSettings() []netem.Config {
	return []netem.Config{netem.HighlyConstrained()}
}

// testOptions mirrors what Watchdog.SettingOptions would derive, shrunk
// to unit-test speed. Both the workers and the serial reference use it,
// which is the byte-identity precondition.
func testOptions(cycle, setting int) core.SchedulerOptions {
	o := core.PaperOptions(testSettings()[setting])
	o.MinTrials, o.MaxTrials, o.Step = 2, 2, 2
	o.ToleranceMbps = 50
	o.BaseSeed = 1000*uint64(cycle) + uint64(setting)
	o.Timing = func(s core.Spec) core.Spec {
		s.Duration, s.Warmup, s.Cooldown = 20*sim.Second, 4*sim.Second, 2*sim.Second
		return s
	}
	return o
}

// startTestCoordinator starts a coordinator on a loopback port with
// test-speed heartbeats; mutate tweaks it before Start.
func startTestCoordinator(t *testing.T, mutate func(*Coordinator)) *Coordinator {
	t.Helper()
	c := &Coordinator{
		ListenAddr:        "127.0.0.1:0",
		Fingerprint:       testFP,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		Obs:               NewInstruments(nil),
	}
	if mutate != nil {
		mutate(c)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// startTestWorker runs a real worker against the coordinator and
// reports its exit error on the returned channel.
func startTestWorker(t *testing.T, name, addr string) <-chan error {
	t.Helper()
	w := &Worker{
		Name:        name,
		Coordinator: addr,
		Fingerprint: testFP,
		Services:    testCatalog(),
		Settings:    testSettings(),
		Options:     testOptions,
		ReadTimeout: 2 * time.Second,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	return done
}

func allPairs(cycle int) []core.PairTask {
	n := len(testCatalog())
	var tasks []core.PairTask
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			tasks = append(tasks, core.PairTask{Cycle: cycle, Setting: 0, A: i, B: j})
		}
	}
	return tasks
}

func collect(t *testing.T, ch <-chan core.PairTaskResult, want int) map[int]core.PairTaskResult {
	t.Helper()
	got := make(map[int]core.PairTaskResult)
	deadline := time.After(2 * time.Minute)
	for len(got) < want {
		select {
		case r, ok := <-ch:
			if !ok {
				t.Fatalf("result channel closed after %d of %d results", len(got), want)
			}
			if _, dup := got[r.Index]; dup {
				t.Fatalf("task %d delivered twice", r.Index)
			}
			got[r.Index] = r
		case <-deadline:
			t.Fatalf("timed out with %d of %d results", len(got), want)
		}
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel delivered more results than tasks")
	}
	return got
}

// TestFleetMatchesSerial: the full pair set executed by a two-worker
// fleet is byte-identical (JSON-compared) to the same pairs executed
// serially in-process — the property that makes every fault-tolerance
// trick in this package sound.
func TestFleetMatchesSerial(t *testing.T) {
	coord := startTestCoordinator(t, nil)
	startTestWorker(t, "w1", coord.Addr())
	startTestWorker(t, "w2", coord.Addr())
	if err := coord.WaitForWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	tasks := allPairs(1)
	ch, err := coord.RunPairs(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch, len(tasks))

	for i, task := range tasks {
		wantOut, wantEv := core.RunPairTask(testCatalog(), testSettings()[task.Setting],
			testOptions(task.Cycle, task.Setting), task)
		r := got[i]
		gj, _ := json.Marshal(r.Outcome)
		wj, _ := json.Marshal(wantOut)
		if string(gj) != string(wj) {
			t.Errorf("task %d (%d|%d): fleet outcome diverged from serial\nfleet:  %s\nserial: %s",
				i, task.A, task.B, gj, wj)
		}
		gje, _ := json.Marshal(r.Events)
		wje, _ := json.Marshal(wantEv)
		if string(gje) != string(wje) {
			t.Errorf("task %d: fleet events diverged from serial\nfleet:  %s\nserial: %s", i, gje, wje)
		}
	}
}

// TestFingerprintMismatchRejected: a worker whose configuration hash
// differs is turned away with the terminal RejectedError — it must not
// enter reconnect backoff against a coordinator that will never admit
// it.
func TestFingerprintMismatchRejected(t *testing.T) {
	reg := obs.NewRegistry()
	coord := startTestCoordinator(t, func(c *Coordinator) { c.Obs = NewInstruments(reg) })

	w := &Worker{
		Name:        "wrong",
		Coordinator: coord.Addr(),
		Fingerprint: testFP + 1,
		Services:    testCatalog(),
		Settings:    testSettings(),
		Options:     testOptions,
		BackoffBase: time.Millisecond,
	}
	err := w.Run()
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("mismatched worker: err %v, want RejectedError", err)
	}
	if reg.Counter("fleet_workers_rejected_total").Value() != 1 {
		t.Fatalf("rejects counter = %d, want 1",
			reg.Counter("fleet_workers_rejected_total").Value())
	}
}

// fakeWorker is a hand-driven protocol peer for failure-injection
// tests: it handshakes like a real worker but lets the test decide
// when (and whether) to answer assignments.
type fakeWorker struct {
	t  *testing.T
	fc *frameConn
}

func dialFake(t *testing.T, name, addr string) *fakeWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFrameConn(conn)
	t.Cleanup(fc.close)
	if err := fc.write(&msg{Type: msgHello, Schema: Schema, Worker: name, Capacity: 1, Fingerprint: testFP}, time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := fc.read(2 * time.Second)
	if err != nil || m.Type != msgWelcome {
		t.Fatalf("handshake: %v %+v", err, m)
	}
	return &fakeWorker{t: t, fc: fc}
}

// awaitAssign reads until an assignment arrives, answering pings so the
// heartbeat stays healthy.
func (f *fakeWorker) awaitAssign() *msg {
	f.t.Helper()
	for {
		m, err := f.fc.read(5 * time.Second)
		if err != nil {
			f.t.Fatalf("fake worker read: %v", err)
		}
		switch m.Type {
		case msgPing:
			_ = f.fc.write(&msg{Type: msgPong, T: m.T}, time.Second)
		case msgAssign:
			return m
		}
	}
}

// TestWorkerDeathRedispatch: a worker that dies holding a lease has its
// pair re-queued and executed by a survivor; the dispatch still
// completes with every result delivered exactly once.
func TestWorkerDeathRedispatch(t *testing.T) {
	reg := obs.NewRegistry()
	coord := startTestCoordinator(t, func(c *Coordinator) {
		c.Obs = NewInstruments(reg)
		c.HeartbeatTimeout = 500 * time.Millisecond
	})

	flaky := dialFake(t, "a-flaky", coord.Addr())
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	tasks := allPairs(1)[:1]
	ch, err := coord.RunPairs(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	flaky.awaitAssign()
	flaky.fc.close() // dies mid-lease

	startTestWorker(t, "b-steady", coord.Addr())
	got := collect(t, ch, len(tasks))

	wantOut, _ := core.RunPairTask(testCatalog(), testSettings()[0], testOptions(1, 0), tasks[0])
	gj, _ := json.Marshal(got[0].Outcome)
	wj, _ := json.Marshal(wantOut)
	if string(gj) != string(wj) {
		t.Fatalf("re-dispatched pair diverged from serial\nfleet:  %s\nserial: %s", gj, wj)
	}
	if reg.Counter("fleet_pairs_reassigned_total").Value() < 1 {
		t.Fatal("death did not count a reassignment")
	}
	if reg.Counter("fleet_workers_dead_total").Value() < 1 {
		t.Fatal("death did not count the worker as dead")
	}
}

// TestStragglerDuplicateDropped: an expired lease re-dispatches the
// pair to a different worker, and the straggler's late result is
// dropped as a duplicate — exactly one result reaches the matrix.
func TestStragglerDuplicateDropped(t *testing.T) {
	reg := obs.NewRegistry()
	coord := startTestCoordinator(t, func(c *Coordinator) {
		c.Obs = NewInstruments(reg)
		c.LeaseTTL = 50 * time.Millisecond
	})

	slow := dialFake(t, "a-slow", coord.Addr())
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	tasks := allPairs(1)[:1]
	ch, err := coord.RunPairs(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	assign := slow.awaitAssign() // sits on the lease past its TTL

	startTestWorker(t, "b-steady", coord.Addr())
	collect(t, ch, len(tasks)) // steady's re-dispatched execution wins

	// The straggler finally reports; its result must vanish as a
	// duplicate, not corrupt anything.
	if err := slow.fc.write(&msg{Type: msgResult, Lease: assign.Lease, Outcome: json.RawMessage(`{}`)}, time.Second); err != nil {
		t.Fatalf("straggler write: %v", err)
	}
	dupes := reg.Counter("fleet_duplicate_results_total")
	deadline := time.Now().Add(5 * time.Second)
	for dupes.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggler result was not counted as a duplicate")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Counter("fleet_lease_expiries_total").Value() < 1 {
		t.Fatal("lease expiry was not counted")
	}
}

// TestBreakerCanary: a worker whose breaker is open gets exactly one
// canary pair; success closes the breaker with a clean score and
// normal assignment resumes.
func TestBreakerCanary(t *testing.T) {
	bs := &core.BreakerSet{}
	bs.Penalize("w1", 5) // open before the fleet even starts
	if bs.State("w1") != core.BreakerOpen {
		t.Fatal("setup: breaker not open")
	}
	coord := startTestCoordinator(t, func(c *Coordinator) { c.Breakers = bs })
	startTestWorker(t, "w1", coord.Addr())
	if err := coord.WaitForWorkers(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	tasks := allPairs(1)[:2]
	ch, err := coord.RunPairs(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, ch, len(tasks))

	st := coord.BreakerStatus()
	if len(st) != 1 || st[0].State != "closed" || st[0].Score != 0 {
		t.Fatalf("after successful canary: %+v, want w1 closed with score 0", st)
	}
}
