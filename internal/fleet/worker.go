package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// Worker default tuning.
const (
	defaultDialTimeout     = 5 * time.Second
	defaultWorkerReadTime  = 15 * time.Second
	defaultBackoffBase     = 100 * time.Millisecond
	defaultBackoffMax      = 5 * time.Second
	defaultMaxDialFailures = 20
)

// RejectedError is the terminal handshake failure: the coordinator
// refused this worker (configuration fingerprint or protocol mismatch).
// Reconnecting cannot help — the operator must fix the configuration —
// so Worker.Run returns it instead of retrying.
type RejectedError struct{ Detail string }

// Error returns the coordinator's rejection detail.
func (e *RejectedError) Error() string {
	return "fleet: coordinator rejected worker: " + e.Detail
}

// Worker executes pair tasks for a coordinator. It must be configured
// with the exact catalog, settings, and option derivation the
// coordinator's watchdog uses — that identity is what the hello
// fingerprint asserts, and what makes a remotely executed pair
// byte-identical to a local one.
type Worker struct {
	// Name identifies the worker to the coordinator; it keys lease
	// accounting and the coordinator-side breaker, and a reconnecting
	// worker with the same name replaces its previous registration.
	Name string

	// Coordinator is the coordinator's TCP address.
	Coordinator string

	// Capacity is how many pairs this worker runs concurrently
	// (announced in the hello; the coordinator never exceeds it).
	// Values below 1 mean 1.
	Capacity int

	// Fingerprint must match the coordinator's; see Fingerprint.
	Fingerprint uint64

	// Services and Settings are the catalog and network settings, in
	// the same order as the coordinator's.
	Services []services.Service
	Settings []netem.Config

	// Options derives the scheduler options for (cycle, setting) —
	// normally Watchdog.SettingOptions on an identically configured
	// watchdog, which is what makes every trial seed match the
	// coordinator's serial equivalent.
	Options func(cycle, setting int) core.SchedulerOptions

	// ReadTimeout is the idle deadline on coordinator reads. The
	// coordinator pings every HeartbeatInterval, so a silent connection
	// means the coordinator is dead, hung, or partitioned; the worker
	// then redials with backoff.
	ReadTimeout time.Duration

	// DialTimeout bounds each connection attempt; BackoffBase and
	// BackoffMax shape the capped exponential redial backoff; and
	// MaxDialFailures bounds consecutive failed attempts before Run
	// gives up (a coordinator restart must complete within roughly
	// MaxDialFailures × BackoffMax).
	DialTimeout     time.Duration
	BackoffBase     time.Duration
	BackoffMax      time.Duration
	MaxDialFailures int

	// Progress, if non-nil, receives human-readable connection and task
	// lines. Called from task goroutines too: must be concurrency-safe.
	Progress func(format string, args ...any)
}

func (w *Worker) capacity() int {
	if w.Capacity > 0 {
		return w.Capacity
	}
	return 1
}

func (w *Worker) readTimeout() time.Duration {
	if w.ReadTimeout > 0 {
		return w.ReadTimeout
	}
	return defaultWorkerReadTime
}

func (w *Worker) dialTimeout() time.Duration {
	if w.DialTimeout > 0 {
		return w.DialTimeout
	}
	return defaultDialTimeout
}

func (w *Worker) maxDialFailures() int {
	if w.MaxDialFailures > 0 {
		return w.MaxDialFailures
	}
	return defaultMaxDialFailures
}

// backoff returns the pause before attempt n (1-based): BackoffBase
// doubled per failure, capped at BackoffMax.
func (w *Worker) backoff(n int) time.Duration {
	base, cap := w.BackoffBase, w.BackoffMax
	if base <= 0 {
		base = defaultBackoffBase
	}
	if cap <= 0 {
		cap = defaultBackoffMax
	}
	d := base
	for i := 1; i < n && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

func (w *Worker) progress(format string, args ...any) {
	if w.Progress != nil {
		w.Progress(format, args...)
	}
}

// Run connects to the coordinator and serves pair tasks until the
// coordinator sends shutdown (returns nil), rejects the handshake
// (returns *RejectedError), or the connection cannot be re-established
// within the backoff budget. Connection loss mid-session — a
// coordinator crash or partition — is survived by redialing with capped
// exponential backoff.
func (w *Worker) Run() error {
	fails := 0
	var lastErr error
	for {
		conn, err := net.DialTimeout("tcp", w.Coordinator, w.dialTimeout())
		if err != nil {
			fails++
			lastErr = err
			if fails >= w.maxDialFailures() {
				return fmt.Errorf("fleet: worker %s: giving up after %d dial failures: %w", w.Name, fails, lastErr)
			}
			pause := w.backoff(fails)
			w.progress("fleet: dial %s failed (%v); retrying in %v", w.Coordinator, err, pause)
			time.Sleep(pause)
			continue
		}
		fails = 0
		err = w.serve(newFrameConn(conn))
		if err == nil {
			return nil
		}
		var rej *RejectedError
		if errors.As(err, &rej) {
			return err
		}
		fails++
		pause := w.backoff(fails)
		w.progress("fleet: connection lost (%v); reconnecting in %v", err, pause)
		time.Sleep(pause)
	}
}

// serve runs one connection's session: handshake, then a read loop
// answering pings and spawning task executions up to Capacity (enforced
// coordinator-side by lease accounting). It returns nil only for a
// clean shutdown. In-flight tasks are awaited before returning, so a
// dropped connection cannot pile up duplicate simulations across
// reconnects; their result writes fail harmlessly on the dead
// connection and the coordinator re-dispatches the pairs.
func (w *Worker) serve(fc *frameConn) (err error) {
	defer fc.close()
	var tasks sync.WaitGroup
	defer tasks.Wait()

	hello := &msg{
		Type:        msgHello,
		Schema:      Schema,
		Worker:      w.Name,
		Capacity:    w.capacity(),
		Fingerprint: w.Fingerprint,
	}
	if err := fc.write(hello, defaultWriteTimeout); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	m, err := fc.read(w.readTimeout())
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	switch m.Type {
	case msgWelcome:
	case msgReject:
		return &RejectedError{Detail: m.Detail}
	case msgShutdown:
		return nil
	default:
		return fmt.Errorf("fleet: unexpected %s during handshake", m.Type)
	}
	w.progress("fleet: worker %s connected to %s", w.Name, w.Coordinator)

	for {
		m, err := fc.read(w.readTimeout())
		if err != nil {
			return err
		}
		switch m.Type {
		case msgPing:
			if err := fc.write(&msg{Type: msgPong, T: m.T}, defaultWriteTimeout); err != nil {
				return err
			}
		case msgAssign:
			if m.Task == nil || !w.validTask(m.Task) {
				return fmt.Errorf("fleet: invalid task in assign (lease %d)", m.Lease)
			}
			tasks.Add(1)
			go func(leaseID uint64, t core.PairTask) {
				defer tasks.Done()
				w.runTask(fc, leaseID, t)
			}(m.Lease, *m.Task)
		case msgShutdown:
			w.progress("fleet: worker %s shutting down: %s", w.Name, m.Detail)
			return nil
		default:
			return fmt.Errorf("fleet: unexpected message %q", m.Type)
		}
	}
}

// validTask bounds-checks an assignment against this worker's catalog.
func (w *Worker) validTask(t *core.PairTask) bool {
	return t.Setting >= 0 && t.Setting < len(w.Settings) &&
		t.A >= 0 && t.A <= t.B && t.B < len(w.Services)
}

// runTask executes one leased pair and reports the result. A failed
// result write is deliberately swallowed: it means the connection died,
// the read loop is already returning, and the coordinator will
// re-dispatch the pair — whose re-execution is byte-identical.
func (w *Worker) runTask(fc *frameConn, leaseID uint64, t core.PairTask) {
	opts := w.Options(t.Cycle, t.Setting)
	outcome, events := core.RunPairTask(w.Services, w.Settings[t.Setting], opts, t)
	payload, err := json.Marshal(outcome)
	if err != nil {
		w.progress("fleet: encode outcome for pair %d|%d: %v", t.A, t.B, err)
		return
	}
	if werr := fc.write(&msg{Type: msgResult, Lease: leaseID, Outcome: payload, Events: events}, defaultWriteTimeout); werr == nil {
		w.progress("fleet: pair %d|%d (cycle %d, setting %d) done: %d trials",
			t.A, t.B, t.Cycle, t.Setting, outcome.Counted())
	}
}
