package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"prudentia/internal/core"
	"prudentia/internal/stats"
)

// sketchOptions is testOptions with sketch statistics armed — the
// worker-side option derivation for the invariance test.
func sketchOptions(cycle, setting int) core.SchedulerOptions {
	o := testOptions(cycle, setting)
	o.SketchStats = true
	return o
}

// startSketchWorker mirrors startTestWorker with sketch options.
func startSketchWorker(t *testing.T, name, addr string) {
	t.Helper()
	w := &Worker{
		Name:        name,
		Coordinator: addr,
		Fingerprint: testFP,
		Services:    testCatalog(),
		Settings:    testSettings(),
		Options:     sketchOptions,
		ReadTimeout: 2 * time.Second,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	go func() { _ = w.Run() }()
}

// TestSketchShardSplitInvariance: the consolidated report of a
// sketch-mode fleet is byte-identical whether 1, 2, or 5 workers
// executed the pair matrix. Each worker ships encoded sketches inside
// its PairOutcome JSON; the coordinator-side merge of all share
// sketches must land on identical bytes at every fleet size, which is
// the sketch Merge invariance surfaced end to end through the wire
// protocol.
func TestSketchShardSplitInvariance(t *testing.T) {
	tasks := allPairs(1)
	type report struct {
		outcomes [][]byte // per-task outcome JSON, in task order
		merged   []byte   // encoded merge of every share sketch
	}
	runFleet := func(workers int) report {
		coord := startTestCoordinator(t, nil)
		for i := 0; i < workers; i++ {
			startSketchWorker(t, fmt.Sprintf("inv-w%d-%d", workers, i), coord.Addr())
		}
		if err := coord.WaitForWorkers(workers, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		ch, err := coord.RunPairs(tasks, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, ch, len(tasks))
		rep := report{outcomes: make([][]byte, len(tasks))}
		agg := stats.NewSketch()
		for i := range tasks {
			r := got[i]
			blob, err := json.Marshal(r.Outcome)
			if err != nil {
				t.Fatal(err)
			}
			rep.outcomes[i] = blob
			sk := r.Outcome.Sketches
			if sk == nil || sk.N == 0 {
				t.Fatalf("task %d: outcome carries no sketches over the wire", i)
			}
			for slot := 0; slot < 2; slot++ {
				if err := agg.Merge(sk.SharePct[slot]); err != nil {
					t.Fatal(err)
				}
			}
		}
		rep.merged = agg.Encode()
		_ = coord.Close()
		return rep
	}

	ref := runFleet(1)
	for _, workers := range []int{2, 5} {
		got := runFleet(workers)
		for i := range tasks {
			if !bytes.Equal(got.outcomes[i], ref.outcomes[i]) {
				t.Errorf("workers=%d task %d: outcome diverged\n got: %s\nwant: %s",
					workers, i, got.outcomes[i], ref.outcomes[i])
			}
		}
		if !bytes.Equal(got.merged, ref.merged) {
			t.Errorf("workers=%d: merged share sketch diverged from single-worker run", workers)
		}
	}

	// The single-worker fleet must itself match the serial in-process
	// execution, anchoring the whole chain to the local path.
	for i, task := range tasks {
		wantOut, _ := core.RunPairTask(testCatalog(), testSettings()[task.Setting],
			sketchOptions(task.Cycle, task.Setting), task)
		wj, _ := json.Marshal(wantOut)
		if !bytes.Equal(ref.outcomes[i], wj) {
			t.Errorf("task %d: fleet outcome diverged from serial\nfleet:  %s\nserial: %s",
				i, ref.outcomes[i], wj)
		}
	}
}
