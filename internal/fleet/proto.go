// Package fleet distributes the pair matrix across worker processes: a
// coordinator shards pending pairs over N TCP workers and merges their
// results through the matrix's canonical ordered-release path, so the
// fleet-wide report, heatmaps, and fault ledger are byte-identical to a
// serial single-process run at any worker count. The design leans on the
// same property that makes the in-process worker pool deterministic —
// every trial seed is a pure function of (BaseSeed, pair, attempt) — so
// a pair re-dispatched after a worker death, or raced by a straggler's
// late duplicate, produces the same bytes no matter which copy wins.
//
// # Protocol: prudentia.fleet/1
//
// Messages travel in the journal's frame format (length-prefixed,
// CRC-checksummed):
//
//	+------------+------------+--------------------+
//	| len uint32 | crc uint32 | payload (len bytes)|
//	| big-endian | IEEE(payload)                   |
//	+------------+------------+--------------------+
//
// Every payload is one JSON-encoded msg. The conversation:
//
//	worker → hello   {schema, worker, capacity, fingerprint}
//	coord  → welcome                      — or reject{detail} + close
//	coord  → assign  {lease, task}        — up to `capacity` in flight
//	worker → result  {lease, outcome, events}
//	coord  → ping    {t}                  — every HeartbeatInterval
//	worker → pong    {t}                  — echoes t; coord records RTT
//	coord  → shutdown{detail}             — terminal; worker exits clean
//
// The hello fingerprint hashes the deterministic run configuration
// (catalog, settings, seed, mode flags); a mismatch is rejected at the
// door because a worker with a different catalog would compute
// different — silently wrong — results.
//
// Fault tolerance is lease-based: each assignment carries a lease that
// expires after LeaseTTL. Dead, hung, or partitioned workers are
// detected by heartbeat timeout or connection error; their leased pairs
// are re-queued for the survivors. An expired lease re-queues the pair
// without killing the straggler — whichever execution reports first
// wins, and the duplicate is counted and dropped (first-result-wins is
// sound precisely because both copies are byte-identical). Workers
// reconnect with capped exponential backoff, so a coordinator restart
// (crash recovery via the ordinary checkpoint+journal path) re-collects
// its fleet without manual intervention.
package fleet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"prudentia/internal/core"
)

// Schema identifies the wire protocol; bump on breaking change.
const Schema = "prudentia.fleet/1"

// frameHeader is the per-message overhead: 4-byte length + 4-byte CRC.
const frameHeader = 8

// maxFrame bounds a single payload so a corrupt or hostile length
// prefix cannot demand an absurd allocation.
const maxFrame = 16 << 20

// Message types. The zero value is invalid by construction: every
// decoded message is checked against the handful its reader expects.
const (
	msgHello    = "hello"
	msgWelcome  = "welcome"
	msgReject   = "reject"
	msgAssign   = "assign"
	msgResult   = "result"
	msgPing     = "ping"
	msgPong     = "pong"
	msgShutdown = "shutdown"
)

// msg is the single wire message shape; which fields are meaningful
// depends on Type (see the package comment's conversation sketch).
// Unknown fields are ignored on decode, so the schema is additive.
type msg struct {
	Type string `json:"type"`

	// hello
	Schema      string `json:"schema,omitempty"`
	Worker      string `json:"worker,omitempty"`
	Capacity    int    `json:"capacity,omitempty"`
	Fingerprint uint64 `json:"fingerprint,omitempty"`

	// assign + result
	Lease   uint64           `json:"lease,omitempty"`
	Task    *core.PairTask   `json:"task,omitempty"`
	Outcome json.RawMessage  `json:"outcome,omitempty"`
	Events  []core.FaultEvent `json:"events,omitempty"`

	// ping + pong: the coordinator's UnixNano send stamp, echoed back
	// verbatim so the coordinator computes RTT from its own clock.
	T int64 `json:"t,omitempty"`

	// reject + shutdown
	Detail string `json:"detail,omitempty"`
}

// encodeFrame wraps one payload in a length+CRC frame.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// readFrame reads and verifies one frame. Unlike the journal's recovery
// scanner — which treats a bad frame as a torn tail — a stream has no
// way to resynchronize after a framing error, so any violation is fatal
// to the connection.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("fleet: frame length %d exceeds limit %d", n, maxFrame)
	}
	want := binary.BigEndian.Uint32(hdr[4:8])
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, errors.New("fleet: frame checksum mismatch")
	}
	return payload, nil
}

// frameConn is a framed-message connection. Reads must come from one
// goroutine (the bufio reader is not locked); writes may come from many
// (ping loop, assigner, task finishers) and are serialized by wmu.
type frameConn struct {
	c   net.Conn
	br  *bufio.Reader
	wmu sync.Mutex
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, br: bufio.NewReader(c)}
}

// write marshals and sends one message under a write deadline, so a
// stalled peer cannot wedge the sender forever.
func (fc *frameConn) write(m *msg, timeout time.Duration) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("fleet: encode %s: %w", m.Type, err)
	}
	buf := encodeFrame(payload)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if timeout > 0 {
		_ = fc.c.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, err = fc.c.Write(buf)
	return err
}

// read receives one message under a read deadline. A deadline miss is
// how both sides detect a dead or partitioned peer: the coordinator
// expects at worst a pong per heartbeat interval, the worker at worst a
// ping.
func (fc *frameConn) read(timeout time.Duration) (*msg, error) {
	if timeout > 0 {
		_ = fc.c.SetReadDeadline(time.Now().Add(timeout))
	}
	payload, err := readFrame(fc.br)
	if err != nil {
		return nil, err
	}
	m := &msg{}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("fleet: decode message: %w", err)
	}
	return m, nil
}

func (fc *frameConn) close() { _ = fc.c.Close() }

// Fingerprint hashes an ordered list of configuration parts (FNV-1a
// with a separator mix, so part boundaries matter). Coordinator and
// workers must compute it over the same parts — service names, network
// settings, base seed, mode flags — for the hello handshake to admit a
// worker.
func Fingerprint(parts ...string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0x1f
		h *= prime64
	}
	return h
}
