package fleet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// TestFrameRoundTrip: encode → scan restores the exact payload.
func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range []string{"", "x", `{"type":"ping","t":12345}`, strings.Repeat("z", 70000)} {
		buf := encodeFrame([]byte(payload))
		got, err := readFrame(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(payload), err)
		}
		if string(got) != payload {
			t.Fatalf("payload %d bytes: round trip mangled", len(payload))
		}
	}
}

// TestFrameChecksumMismatch: a flipped payload bit is detected.
func TestFrameChecksumMismatch(t *testing.T) {
	buf := encodeFrame([]byte("hello fleet"))
	buf[len(buf)-1] ^= 0x01
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(buf))); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

// TestFrameOversizedLengthRejected: a hostile length prefix is refused
// before any allocation, not trusted into a 4 GiB make().
func TestFrameOversizedLengthRejected(t *testing.T) {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], maxFrame+1)
	_, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame: %v, want length-limit error", err)
	}
}

// FuzzFrameScanner throws arbitrary bytes at the frame scanner. The
// invariants: it never panics, never allocates beyond maxFrame, and any
// frame it does accept re-encodes to exactly the bytes it consumed
// (so a scanned frame is always one encodeFrame could have produced).
func FuzzFrameScanner(f *testing.F) {
	f.Add(encodeFrame([]byte(`{"type":"hello","schema":"prudentia.fleet/1","worker":"w1"}`)))
	f.Add(encodeFrame(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef, 'x'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	two := append(encodeFrame([]byte("first")), encodeFrame([]byte("second"))...)
	f.Add(two)
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		consumed := 0
		for {
			payload, err := readFrame(br)
			if err != nil {
				return // any malformed input must surface as an error, not a panic
			}
			re := encodeFrame(payload)
			if consumed+len(re) > len(data) || !bytes.Equal(re, data[consumed:consumed+len(re)]) {
				t.Fatalf("accepted frame does not re-encode to the consumed bytes at offset %d", consumed)
			}
			consumed += len(re)
		}
	})
}
