package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"prudentia/internal/chaos"
	"prudentia/internal/core"
	"prudentia/internal/obs"
)

// Default tuning. Tests override these with much smaller values; the
// defaults assume real matrices whose pairs take seconds to minutes.
const (
	defaultHeartbeatInterval = 500 * time.Millisecond
	defaultHeartbeatTimeout  = 5 * time.Second
	defaultLeaseTTL          = 2 * time.Minute
	defaultWriteTimeout      = 5 * time.Second
	dispatchTick             = 25 * time.Millisecond
)

// Coordinator owns the fleet: it listens for workers, shards pending
// pairs across them under expiring leases, and implements
// core.RemoteRunner so a Matrix merges fleet results through its
// canonical ordered-release path. Configure the exported fields before
// Start; they must not change afterwards.
//
// Failure model (see ARCHITECTURE.md's failure matrix): a worker that
// dies, hangs, or is partitioned stops answering heartbeats (or its
// connection errors outright); its leased pairs are re-queued for the
// survivors. A slow worker keeps its lease past the TTL: the pair is
// re-dispatched redundantly, and whichever execution reports first
// wins — the loser is counted as a duplicate and dropped, which is
// sound because both executions are byte-identical by construction.
// Coordinator death is survived by the ordinary checkpoint+journal
// recovery path; workers redial with capped exponential backoff until
// the coordinator returns.
type Coordinator struct {
	// ListenAddr is the TCP address to listen on ("127.0.0.1:0" picks
	// a free port; read it back with Addr).
	ListenAddr string

	// Fingerprint is the deterministic-configuration hash workers must
	// present in their hello; see Fingerprint.
	Fingerprint uint64

	// HeartbeatInterval is the ping cadence per worker connection;
	// HeartbeatTimeout is the per-read deadline after which a silent
	// worker is declared dead. Timeout should be several intervals.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	// LeaseTTL bounds how long one assignment may stay outstanding
	// before the pair is redundantly re-dispatched to another worker.
	LeaseTTL time.Duration

	// Breakers, if non-nil, quarantines flapping workers with the same
	// state machine the watchdog uses for sick services, keyed by
	// worker name: +2 per disconnect or heartbeat timeout, +1 per lease
	// expiry; an open worker gets exactly one canary pair when idle.
	// The coordinator allocates its own private set when nil. All
	// access is serialized under the coordinator's lock.
	Breakers *core.BreakerSet

	// Chaos, if non-nil, supplies budgeted coordinator↔worker partition
	// faults (chaos.Config.PartitionFor), consulted at assignment time.
	Chaos *chaos.Config

	// OnFault, if non-nil, receives chaos partition events for the
	// fault ledger. Called with the coordinator lock held from internal
	// goroutines: the hook must be fast, concurrency-safe with respect
	// to other ledger writers, and must not call back into the
	// coordinator.
	OnFault func(ev core.FaultEvent)

	// Progress, if non-nil, receives human-readable fleet membership
	// and re-dispatch lines. Called from internal goroutines: must be
	// concurrency-safe and must not call back into the coordinator.
	Progress func(format string, args ...any)

	// Obs, if non-nil, receives fleet telemetry (see Instruments).
	Obs *Instruments

	mu       sync.Mutex
	ln       net.Listener
	workers  map[string]*remoteWorker
	run      *dispatchState
	leaseSeq uint64
	partSeq  uint64
	closed   bool
	kick     chan struct{}
}

// remoteWorker is the coordinator's view of one connected worker.
type remoteWorker struct {
	name     string
	fc       *frameConn
	capacity int
	// leases holds the ids of this worker's outstanding assignments.
	leases map[uint64]struct{}
	// probing marks a worker running its half-open canary pair.
	probing bool
	dead    bool
	// gone is closed exactly once when the worker is dropped; the ping
	// loop selects on it.
	gone chan struct{}
}

// dispatchState tracks one RunPairs call.
type dispatchState struct {
	tasks     []core.PairTask
	done      []bool
	pending   []int
	leases    map[uint64]*lease
	out       chan core.PairTaskResult
	remaining int
}

// lease is one outstanding assignment. An expired lease is kept (the
// straggler's late result is still acceptable, and its capacity slot
// stays occupied so stragglers are not fed more work) but its pair is
// re-queued for redundant dispatch.
type lease struct {
	id      uint64
	task    int
	worker  *remoteWorker
	deadline time.Time
	expired bool
}

func (c *Coordinator) heartbeatInterval() time.Duration {
	if c.HeartbeatInterval > 0 {
		return c.HeartbeatInterval
	}
	return defaultHeartbeatInterval
}

func (c *Coordinator) heartbeatTimeout() time.Duration {
	if c.HeartbeatTimeout > 0 {
		return c.HeartbeatTimeout
	}
	return defaultHeartbeatTimeout
}

func (c *Coordinator) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return defaultLeaseTTL
}

func (c *Coordinator) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// breakers returns the worker breaker set, allocating a private one on
// first use. Callers hold c.mu.
func (c *Coordinator) breakers() *core.BreakerSet {
	if c.Breakers == nil {
		c.Breakers = &core.BreakerSet{}
	}
	return c.Breakers
}

// Start binds the listener and begins admitting workers.
func (c *Coordinator) Start() error {
	ln, err := net.Listen("tcp", c.ListenAddr)
	if err != nil {
		return fmt.Errorf("fleet: listen %s: %w", c.ListenAddr, err)
	}
	c.mu.Lock()
	c.ln = ln
	c.workers = make(map[string]*remoteWorker)
	c.kick = make(chan struct{}, 1)
	c.mu.Unlock()
	go c.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// BreakerStatus snapshots the worker breaker set (under the
// coordinator's lock, since the set itself is not concurrency-safe).
func (c *Coordinator) BreakerStatus() []obs.BreakerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakers().Status()
}

// WaitForWorkers blocks until at least n workers are connected, the
// timeout passes, or the coordinator closes.
func (c *Coordinator) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		live, closed := len(c.workers), c.closed
		c.mu.Unlock()
		if closed {
			return errors.New("fleet: coordinator closed")
		}
		if live >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: only %d of %d workers connected after %v", live, n, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close shuts the fleet down: workers get a best-effort shutdown
// message (so they exit cleanly instead of entering reconnect backoff)
// and the listener stops admitting.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	ws := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, w := range ws {
		_ = w.fc.write(&msg{Type: msgShutdown, Detail: "coordinator closing"}, time.Second)
		c.dropWorker(w, "shutdown", false)
	}
	return nil
}

func (c *Coordinator) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.admit(conn)
	}
}

// admit runs the hello/welcome handshake on a fresh connection and, on
// success, registers the worker and starts its read and ping loops. A
// reconnecting worker re-using its name replaces its old registration
// (latest wins; the stale connection's leases are re-queued).
func (c *Coordinator) admit(conn net.Conn) {
	fc := newFrameConn(conn)
	hello, err := fc.read(c.heartbeatTimeout())
	if err != nil || hello.Type != msgHello {
		fc.close()
		return
	}
	reject := func(detail string) {
		c.Obs.workerRejected()
		c.progress("fleet: rejected worker %q: %s", hello.Worker, detail)
		_ = fc.write(&msg{Type: msgReject, Detail: detail}, defaultWriteTimeout)
		fc.close()
	}
	if hello.Schema != Schema {
		reject(fmt.Sprintf("protocol %q, want %q", hello.Schema, Schema))
		return
	}
	if hello.Worker == "" {
		reject("worker name required")
		return
	}
	if hello.Fingerprint != c.Fingerprint {
		reject(fmt.Sprintf("configuration fingerprint %x, coordinator has %x: catalog, settings, seed, and mode flags must match exactly",
			hello.Fingerprint, c.Fingerprint))
		return
	}
	w := &remoteWorker{
		name:     hello.Worker,
		fc:       fc,
		capacity: max(hello.Capacity, 1),
		leases:   make(map[uint64]struct{}),
		gone:     make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = fc.write(&msg{Type: msgShutdown, Detail: "coordinator closing"}, time.Second)
		fc.close()
		return
	}
	if old := c.workers[w.name]; old != nil {
		c.dropWorkerLocked(old, "replaced by reconnect", false)
	}
	c.workers[w.name] = w
	live := len(c.workers)
	c.Obs.joined(live)
	c.mu.Unlock()
	if err := fc.write(&msg{Type: msgWelcome}, defaultWriteTimeout); err != nil {
		c.dropWorker(w, fmt.Sprintf("welcome: %v", err), true)
		return
	}
	c.progress("fleet: worker %s joined (capacity %d, %d live)", w.name, w.capacity, live)
	go c.readLoop(w)
	go c.pingLoop(w)
	c.kickDispatch()
}

// readLoop consumes one worker's messages. Any read error — including
// the heartbeat-timeout deadline, which is how a hung or partitioned
// worker surfaces — drops the worker.
func (c *Coordinator) readLoop(w *remoteWorker) {
	for {
		m, err := w.fc.read(c.heartbeatTimeout())
		if err != nil {
			c.dropWorker(w, fmt.Sprintf("read: %v", err), true)
			return
		}
		switch m.Type {
		case msgPong:
			c.Obs.pong(float64(time.Now().UnixNano()-m.T) / 1e9)
		case msgResult:
			if !c.handleResult(w, m) {
				return
			}
		default:
			c.dropWorker(w, "protocol error: unexpected "+m.Type, true)
			return
		}
	}
}

// pingLoop keeps one worker's heartbeat going until it is dropped.
func (c *Coordinator) pingLoop(w *remoteWorker) {
	t := time.NewTicker(c.heartbeatInterval())
	defer t.Stop()
	for {
		select {
		case <-w.gone:
			return
		case <-t.C:
			if err := w.fc.write(&msg{Type: msgPing, T: time.Now().UnixNano()}, defaultWriteTimeout); err != nil {
				c.dropWorker(w, fmt.Sprintf("ping: %v", err), true)
				return
			}
		}
	}
}

// dropWorker removes a worker, re-queues its leased pairs, and (when
// penalize is set — every involuntary exit) charges its breaker.
func (c *Coordinator) dropWorker(w *remoteWorker, reason string, penalize bool) {
	c.mu.Lock()
	dropped := c.dropWorkerLocked(w, reason, penalize)
	c.mu.Unlock()
	if dropped {
		c.kickDispatch()
	}
}

func (c *Coordinator) dropWorkerLocked(w *remoteWorker, reason string, penalize bool) bool {
	if w.dead {
		return false
	}
	w.dead = true
	close(w.gone)
	if c.workers[w.name] == w {
		delete(c.workers, w.name)
	}
	live := len(c.workers)
	requeued := 0
	if c.run != nil {
		for id, l := range c.run.leases {
			if l.worker != w {
				continue
			}
			delete(c.run.leases, id)
			if !c.run.done[l.task] {
				c.run.pending = append(c.run.pending, l.task)
				requeued++
				c.Obs.pairRequeued()
			}
		}
	}
	if penalize {
		c.breakers().Penalize(w.name, 2)
	}
	if w.probing {
		w.probing = false
		c.breakers().ProbeResult(w.name, false)
	}
	c.Obs.died(live)
	w.fc.close()
	c.progress("fleet: worker %s lost (%s); %d pairs re-queued, %d live", w.name, reason, requeued, live)
	return true
}

// handleResult settles one result message. Returns false when the
// worker was dropped for a protocol violation (caller exits its loop).
// Duplicate results — the lease vanished with its run, or another
// execution of the pair already won — are counted and discarded; this
// loses nothing because re-dispatched executions are byte-identical.
func (c *Coordinator) handleResult(w *remoteWorker, m *msg) bool {
	out := &core.PairOutcome{}
	if len(m.Outcome) == 0 || json.Unmarshal(m.Outcome, out) != nil {
		c.dropWorker(w, fmt.Sprintf("protocol error: bad outcome on lease %d", m.Lease), true)
		return false
	}
	c.mu.Lock()
	delete(w.leases, m.Lease)
	d := c.run
	var l *lease
	if d != nil {
		l = d.leases[m.Lease]
	}
	if l == nil || l.worker != w {
		c.Obs.duplicateDropped()
		c.mu.Unlock()
		c.kickDispatch()
		return true
	}
	delete(d.leases, m.Lease)
	if w.probing {
		w.probing = false
		c.breakers().ProbeResult(w.name, true)
		c.progress("fleet: worker %s canary pair succeeded; breaker closed", w.name)
	}
	if d.done[l.task] {
		c.Obs.duplicateDropped()
		c.mu.Unlock()
		c.kickDispatch()
		return true
	}
	d.done[l.task] = true
	d.remaining--
	c.Obs.resultAccepted()
	// Send under the lock: the channel is buffered for every task, so
	// this never blocks, and the dispatch loop closes the channel under
	// the same lock — no send-after-close race.
	d.out <- core.PairTaskResult{Index: l.task, Outcome: out, Events: m.Events}
	c.mu.Unlock()
	c.kickDispatch()
	return true
}

// RunPairs implements core.RemoteRunner: it dispatches the tasks across
// the connected fleet and streams results back in completion order. One
// dispatch runs at a time (the matrix is sequential over settings).
func (c *Coordinator) RunPairs(tasks []core.PairTask, interrupt func() bool) (<-chan core.PairTaskResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("fleet: coordinator closed")
	}
	if c.run != nil {
		return nil, errors.New("fleet: a dispatch is already in flight")
	}
	d := &dispatchState{
		tasks:     tasks,
		done:      make([]bool, len(tasks)),
		pending:   make([]int, len(tasks)),
		leases:    make(map[uint64]*lease),
		out:       make(chan core.PairTaskResult, len(tasks)+1),
		remaining: len(tasks),
	}
	for i := range tasks {
		d.pending[i] = i
	}
	c.run = d
	go c.dispatchLoop(d, interrupt)
	return d.out, nil
}

// dispatchLoop drives one dispatch: expire leases, assign pending pairs
// to eligible workers, wait for a kick (membership or result change) or
// the scan tick, repeat until every pair is delivered or the interrupt
// hook fires. On interrupt the channel closes immediately — in-flight
// workers finish their pairs and their late results are dropped as
// duplicates; the matrix flushes its undelivered pairs to the
// checkpoint as pending, and a resumed run re-executes them with the
// same seeds.
func (c *Coordinator) dispatchLoop(d *dispatchState, interrupt func() bool) {
	tick := time.NewTicker(dispatchTick)
	defer tick.Stop()
	for {
		c.mu.Lock()
		if d.remaining == 0 || c.closed || (interrupt != nil && interrupt()) {
			c.run = nil
			close(d.out)
			c.mu.Unlock()
			return
		}
		c.expireLeases(d)
		grants := c.assignPending(d)
		c.mu.Unlock()
		for _, g := range grants {
			go func(w *remoteWorker, m *msg) {
				if err := w.fc.write(m, defaultWriteTimeout); err != nil {
					c.dropWorker(w, fmt.Sprintf("assign: %v", err), true)
				}
			}(g.w, g.m)
		}
		select {
		case <-c.kick:
		case <-tick.C:
		}
	}
}

// expireLeases re-queues pairs whose lease deadline passed. The lease
// itself survives (stragglers may still deliver) but is charged to the
// worker's breaker. Callers hold c.mu.
func (c *Coordinator) expireLeases(d *dispatchState) {
	now := time.Now()
	for _, l := range d.leases {
		if l.expired || now.Before(l.deadline) {
			continue
		}
		l.expired = true
		c.breakers().Penalize(l.worker.name, 1)
		if d.done[l.task] {
			continue
		}
		d.pending = append(d.pending, l.task)
		c.Obs.leaseExpired()
		c.progress("fleet: lease %d (pair %d) on worker %s expired; re-dispatching", l.id, l.task, l.worker.name)
	}
}

type grant struct {
	w *remoteWorker
	m *msg
}

// assignPending grants leases for queued pairs to eligible workers,
// consulting the chaos partition plan at each assignment. The actual
// sends happen outside the lock. Callers hold c.mu.
func (c *Coordinator) assignPending(d *dispatchState) []grant {
	var grants []grant
	for len(d.pending) > 0 {
		t := d.pending[0]
		if d.done[t] {
			d.pending = d.pending[1:]
			continue
		}
		w := c.pickWorker(d, t)
		if w == nil {
			return grants // no eligible capacity; wait for a kick
		}
		d.pending = d.pending[1:]
		c.partSeq++
		if seed := partitionSeed(d.tasks[t], c.partSeq); c.Chaos.PartitionFor(w.name, seed) {
			c.Obs.partitionInjected()
			if c.OnFault != nil {
				c.OnFault(core.FaultEvent{
					Pair:   "worker:" + w.name,
					Kind:   "partition",
					Seed:   seed,
					Detail: fmt.Sprintf("chaos: coordinator partitioned from worker %s", w.name),
				})
			}
			d.pending = append([]int{t}, d.pending...)
			c.dropWorkerLocked(w, "chaos partition", true)
			continue
		}
		if c.breakers().State(w.name) == core.BreakerOpen {
			c.breakers().BeginProbe(w.name)
			w.probing = true
			c.progress("fleet: worker %s breaker open; granting canary pair %d", w.name, t)
		}
		c.leaseSeq++
		l := &lease{id: c.leaseSeq, task: t, worker: w, deadline: time.Now().Add(c.leaseTTL())}
		d.leases[l.id] = l
		w.leases[l.id] = struct{}{}
		c.Obs.leaseGranted()
		task := d.tasks[t]
		grants = append(grants, grant{w: w, m: &msg{Type: msgAssign, Lease: l.id, Task: &task}})
	}
	return grants
}

// pickWorker chooses a worker for pair t: alive, with spare capacity
// (quarantined workers only qualify for a single canary pair while
// idle), and not already executing this very pair (redundant
// re-dispatch must go to a different worker to route around the
// straggler). Names are scanned in sorted order so assignment behaviour
// is reproducible given identical timing. Callers hold c.mu.
func (c *Coordinator) pickWorker(d *dispatchState, t int) *remoteWorker {
	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := c.workers[n]
		if w.dead {
			continue
		}
		capacity := w.capacity
		switch c.Breakers.State(n) {
		case core.BreakerOpen:
			if len(w.leases) > 0 {
				continue // canary requires an idle worker
			}
			capacity = 1
		case core.BreakerHalfOpen:
			if !w.probing {
				continue // canary already in flight on an old connection
			}
			capacity = 1
		}
		if len(w.leases) >= capacity {
			continue
		}
		if c.holdsLease(d, w, t) {
			continue
		}
		return w
	}
	return nil
}

// holdsLease reports whether w already has an outstanding lease on t.
func (c *Coordinator) holdsLease(d *dispatchState, w *remoteWorker, t int) bool {
	for _, l := range d.leases {
		if l.task == t && l.worker == w {
			return true
		}
	}
	return false
}

// partitionSeed derives the deterministic decision seed for one chaos
// partition check from the task identity and the assignment ordinal.
func partitionSeed(t core.PairTask, seq uint64) uint64 {
	return Fingerprint(fmt.Sprintf("partition|%d|%d|%d|%d|%d", t.Cycle, t.Setting, t.A, t.B, seq))
}

func (c *Coordinator) kickDispatch() {
	c.mu.Lock()
	kick := c.kick
	c.mu.Unlock()
	if kick == nil {
		return
	}
	select {
	case kick <- struct{}{}:
	default:
	}
}
