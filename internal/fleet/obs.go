package fleet

import (
	"prudentia/internal/obs"
)

// Instruments holds the coordinator's fleet telemetry handles, resolved
// once at setup per the obs layer's handles-not-lookups rule. A nil
// *Instruments (or one built from a nil registry) is a no-op, so the
// coordinator needs no "is telemetry on?" branches.
//
// Fleet metrics are operational, not experimental: worker membership,
// reassignments, and heartbeat RTTs depend on wall-clock scheduling and
// are NOT part of the byte-identical determinism contract (they live
// beside the registry's other "wall" metrics).
type Instruments struct {
	// workersLive is the current live worker count (gauge, since
	// workers come and go).
	workersLive *obs.Gauge
	// workersJoined / workersDead count membership transitions.
	workersJoined *obs.Counter
	workersDead   *obs.Counter
	// assigned counts leases granted; results counts accepted results.
	assigned *obs.Counter
	results  *obs.Counter
	// reassigned counts pairs re-queued after a worker died or a lease
	// expired; leaseExpiries counts expirations specifically.
	reassigned    *obs.Counter
	leaseExpiries *obs.Counter
	// duplicates counts results dropped because another execution of
	// the same pair already won (straggler re-dispatch races).
	duplicates *obs.Counter
	// partitions counts chaos-injected coordinator↔worker partitions.
	partitions *obs.Counter
	// rejects counts workers turned away at the door (fingerprint or
	// schema mismatch).
	rejects *obs.Counter
	// heartbeatRTT observes ping→pong round trips in seconds.
	heartbeatRTT *obs.Histogram
}

// NewInstruments resolves the fleet metric handles from a registry.
// Safe with a nil registry (every handle is then a nil no-op).
func NewInstruments(reg *obs.Registry) *Instruments {
	return &Instruments{
		workersLive:   reg.Gauge("fleet_workers_live"),
		workersJoined: reg.Counter("fleet_workers_joined_total"),
		workersDead:   reg.Counter("fleet_workers_dead_total"),
		assigned:      reg.Counter("fleet_leases_assigned_total"),
		results:       reg.Counter("fleet_results_total"),
		reassigned:    reg.Counter("fleet_pairs_reassigned_total"),
		leaseExpiries: reg.Counter("fleet_lease_expiries_total"),
		duplicates:    reg.Counter("fleet_duplicate_results_total"),
		partitions:    reg.Counter("fleet_partitions_total"),
		rejects:       reg.Counter("fleet_workers_rejected_total"),
		// 100 µs .. ~1.6 s: loopback fleets sit in the bottom buckets,
		// WAN workers in the middle, a swapping host pegs the top.
		heartbeatRTT: reg.Histogram("fleet_heartbeat_rtt_wall_seconds", obs.ExpBuckets(0.0001, 4, 8)),
	}
}

func (in *Instruments) setLive(n int) {
	if in != nil {
		in.workersLive.Set(float64(n))
	}
}

func (in *Instruments) joined(live int) {
	if in == nil {
		return
	}
	in.workersJoined.Inc()
	in.setLive(live)
}

func (in *Instruments) died(live int) {
	if in == nil {
		return
	}
	in.workersDead.Inc()
	in.setLive(live)
}

func (in *Instruments) leaseGranted() {
	if in != nil {
		in.assigned.Inc()
	}
}

func (in *Instruments) resultAccepted() {
	if in != nil {
		in.results.Inc()
	}
}

func (in *Instruments) pairRequeued() {
	if in != nil {
		in.reassigned.Inc()
	}
}

func (in *Instruments) leaseExpired() {
	if in == nil {
		return
	}
	in.leaseExpiries.Inc()
	in.reassigned.Inc()
}

func (in *Instruments) duplicateDropped() {
	if in != nil {
		in.duplicates.Inc()
	}
}

func (in *Instruments) partitionInjected() {
	if in != nil {
		in.partitions.Inc()
	}
}

func (in *Instruments) workerRejected() {
	if in != nil {
		in.rejects.Inc()
	}
}

func (in *Instruments) pong(rttSeconds float64) {
	if in != nil {
		in.heartbeatRTT.Observe(rttSeconds)
	}
}
