package golden

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"testing"
)

// record re-records the committed corpus instead of verifying it. Use only
// after a deliberate behaviour change, and say why in the commit:
//
//	go test ./internal/sim/golden -run Golden -record
var record = flag.Bool("record", false, "re-record golden traces instead of verifying them")

// TestGoldenTraceReplay is the conformance gate: every corpus entry must
// reproduce its committed event stream byte-for-byte. This is what proves
// a hot-path optimization changed speed and nothing else.
func TestGoldenTraceReplay(t *testing.T) {
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			got, err := Record(e)
			if err != nil {
				t.Fatal(err)
			}
			if *record {
				if err := WriteGolden(e, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("recorded %s: %d bytes raw", File(e), len(got))
				return
			}
			want, err := ReadGolden(e)
			if err != nil {
				if os.IsNotExist(err) {
					t.Fatalf("no committed trace for %s; record with: go test ./internal/sim/golden -run Golden -record", e.Name)
				}
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				line, gl, wl := FirstDiff(got, want)
				reportDivergence(t, e.Name, line, gl, wl)
				t.Fatalf("trace diverged from golden at line %d:\n  got:  %s\n  want: %s\n(%d vs %d bytes; the hot path changed observable behaviour)",
					line, gl, wl, len(got), len(want))
			}
		})
	}
}

// reportDivergence appends the first divergent line to the file named by
// $GOLDEN_DIVERGENCE_OUT, so a CI failure ships the exact point of
// divergence as an artifact instead of making the investigator re-run
// the corpus locally. A write failure only logs — the test failure
// itself must not be masked.
func reportDivergence(t *testing.T, name string, line int, got, want string) {
	path := os.Getenv("GOLDEN_DIVERGENCE_OUT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("golden divergence artifact: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "trace=%s line=%d\ngot:  %s\nwant: %s\n\n", name, line, got, want)
}

// TestGoldenRecordingIsDeterministic re-records one entry twice and
// requires identical bytes — the property that makes the committed corpus
// meaningful at all, checked independently of any committed file.
func TestGoldenRecordingIsDeterministic(t *testing.T) {
	e := Corpus()[0]
	a, err := Record(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		line, gl, wl := FirstDiff(a, b)
		t.Fatalf("same-seed re-record diverged at line %d:\n  first:  %s\n  second: %s", line, gl, wl)
	}
}

// TestGoldenCorpusCoversCatalogArchetypes pins the corpus breadth: if a
// new service archetype or CCA is added to the catalog without a golden
// entry, this fails rather than letting coverage silently rot.
func TestGoldenCorpusCoversCatalogArchetypes(t *testing.T) {
	wantSvc := []string{
		"YouTube", "Netflix", "Vimeo", // video: quic-tuned, NewReno, BBR 4.15
		"Dropbox", "Google Drive", "OneDrive", "Mega", // file: BBR 4.15, BBRv3, Cubic-ext, mega-custom
		"Google Meet", "Microsoft Teams", // rtc: GCC both flavours
		"wikipedia.org", "news.google.com", "youtube.com", // web
		"iPerf (Cubic)", "iPerf (BBR)", "iPerf (Reno)", // baselines
	}
	present := map[string]bool{}
	solo := false
	for _, e := range Corpus() {
		present[e.Incumbent] = true
		if e.Contender == "" {
			solo = true
		} else {
			present[e.Contender] = true
		}
	}
	for _, s := range wantSvc {
		if !present[s] {
			t.Errorf("corpus does not exercise service %q", s)
		}
	}
	if !solo {
		t.Error("corpus has no solo calibration entry")
	}
}

// TestFirstDiff exercises the divergence locator on crafted inputs.
func TestFirstDiff(t *testing.T) {
	a := []byte("one\ntwo\nthree\n")
	b := []byte("one\ntwo\nTHREE\n")
	line, gl, wl := FirstDiff(a, b)
	if line != 3 || gl != "three" || wl != "THREE" {
		t.Fatalf("FirstDiff = %d %q %q", line, gl, wl)
	}
	if line, _, _ := FirstDiff(a, a); line != 0 {
		t.Fatalf("identical inputs reported diff at line %d", line)
	}
	line, gl, wl = FirstDiff(a, []byte("one\n"))
	if line != 2 || gl != "two" || wl != "" {
		t.Fatalf("truncated diff = %d %q %q", line, gl, wl)
	}
}
