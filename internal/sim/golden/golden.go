// Package golden implements the golden-trace conformance harness for the
// simulation hot path. It records the complete bottleneck packet-lifecycle
// event stream (enqueue, dequeue, drop, delivery — each with its virtual
// timestamp) for a fixed corpus of service-pair experiments spanning every
// congestion-control algorithm and service archetype in the catalog, and
// replays the corpus against committed traces byte-for-byte.
//
// The corpus is the contract that makes hot-path optimization shippable:
// traces are recorded on a known-good engine, committed under
// testdata/golden/, and any later change to internal/sim, internal/netem,
// or internal/transport must reproduce them exactly. A pooling bug, a
// heap-ordering regression, or an off-by-one in timer reuse shows up as
// the first divergent line of a trace, not as a subtly shifted heatmap
// three PRs later.
//
// Re-record intentionally (after a deliberate behaviour change) with:
//
//	go test ./internal/sim/golden -run Golden -record
package golden

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

// Entry is one corpus experiment: a pair (or solo) trial whose bottleneck
// event stream is pinned.
type Entry struct {
	// Name is the trace identifier and file stem under testdata/golden.
	Name string
	// Incumbent and Contender are Table-1 catalog names (services.ByName);
	// an empty Contender records a solo calibration run.
	Incumbent, Contender string
	// Net is the emulated bottleneck setting.
	Net netem.Config
	// Duration is the trial length. Corpus trials are short: the stream
	// pins byte-identical behaviour, not statistics, and a few virtual
	// seconds already cross every code path (slow start, loss recovery,
	// pacing, ABR decisions, feedback loops).
	Duration sim.Time
	// Seed fixes the trial's randomness.
	Seed uint64
}

// Corpus returns the pinned experiment set. Every congestion controller in
// internal/cca appears at least once (NewReno, Cubic, Cubic-extended,
// BBRv1 4.15/5.15/quic-tuned/mega-custom, BBRv3, GCC Meet and Teams
// flavours), as does every service archetype (video, file transfer, RTC,
// web, baseline, and a solo calibration run).
func Corpus() []Entry {
	hc := netem.HighlyConstrained()
	mc := netem.ModeratelyConstrained()
	return []Entry{
		{Name: "youtube-vs-iperf-cubic", Incumbent: "YouTube", Contender: "iPerf (Cubic)",
			Net: hc, Duration: 3 * sim.Second, Seed: 101},
		{Name: "netflix-vs-iperf-bbr", Incumbent: "Netflix", Contender: "iPerf (BBR)",
			Net: hc, Duration: 3 * sim.Second, Seed: 102},
		{Name: "meet-vs-dropbox", Incumbent: "Google Meet", Contender: "Dropbox",
			Net: hc, Duration: 3 * sim.Second, Seed: 103},
		{Name: "teams-vs-wikipedia", Incumbent: "Microsoft Teams", Contender: "wikipedia.org",
			Net: hc, Duration: 3 * sim.Second, Seed: 104},
		{Name: "vimeo-solo", Incumbent: "Vimeo", Contender: "",
			Net: hc, Duration: 3 * sim.Second, Seed: 105},
		{Name: "onedrive-vs-iperf-reno", Incumbent: "OneDrive", Contender: "iPerf (Reno)",
			Net: mc, Duration: sim.Second, Seed: 106},
		{Name: "gdrive-vs-mega", Incumbent: "Google Drive", Contender: "Mega",
			Net: mc, Duration: sim.Second, Seed: 107},
		{Name: "news-vs-youtube-web", Incumbent: "news.google.com", Contender: "youtube.com",
			Net: mc, Duration: sim.Second, Seed: 108},
	}
}

// recorder serializes lifecycle hook events as compact JSONL. Lines are
// hand-formatted (fixed key order, integer fields only) so the byte stream
// is fully deterministic and independent of encoding-library versions.
type recorder struct {
	buf *bytes.Buffer
	tmp []byte
	n   int
}

func (r *recorder) attach(tb *netem.Testbed) {
	b := tb.Bneck
	b.EnqueueHook = func(now sim.Time, p *netem.Packet) { r.line("enq", now, p) }
	b.DequeueHook = func(now sim.Time, p *netem.Packet) { r.line("deq", now, p) }
	b.DropHook = func(now sim.Time, p *netem.Packet) { r.line("drop", now, p) }
	b.DeliverHook = func(now sim.Time, p *netem.Packet) { r.line("dlv", now, p) }
}

func (r *recorder) line(ev string, now sim.Time, p *netem.Packet) {
	r.n++
	t := r.tmp[:0]
	t = append(t, `{"t":`...)
	t = strconv.AppendInt(t, int64(now), 10)
	t = append(t, `,"e":"`...)
	t = append(t, ev...)
	t = append(t, `","f":`...)
	t = strconv.AppendInt(t, int64(p.FlowID), 10)
	t = append(t, `,"s":`...)
	t = strconv.AppendInt(t, int64(p.Service), 10)
	t = append(t, `,"q":`...)
	t = strconv.AppendInt(t, p.Seq, 10)
	t = append(t, `,"n":`...)
	t = strconv.AppendInt(t, int64(p.Size), 10)
	t = append(t, "}\n"...)
	r.tmp = t
	r.buf.Write(t)
}

// corpusService resolves a catalog name for the corpus. Web pages are
// tuned to load immediately: their catalog configuration waits 30 virtual
// seconds before the first load (the paper's §5.2 procedure), which would
// leave a short conformance trial with an empty event stream.
func corpusService(name string) services.Service {
	svc := services.ByName(name)
	if w, ok := svc.(*services.WebPage); ok {
		w.StartDelay = 200 * sim.Millisecond
		w.LoadGap = 2 * sim.Second
	}
	return svc
}

// Record runs the entry's trial and returns its uncompressed trace: a
// header line describing the configuration, one line per lifecycle event,
// and a trailer with the event count and final virtual clock.
func Record(e Entry) ([]byte, error) {
	inc := corpusService(e.Incumbent)
	if inc == nil {
		return nil, fmt.Errorf("golden: unknown incumbent %q", e.Incumbent)
	}
	var cont services.Service
	if e.Contender != "" {
		if cont = corpusService(e.Contender); cont == nil {
			return nil, fmt.Errorf("golden: unknown contender %q", e.Contender)
		}
	}
	rec := &recorder{buf: &bytes.Buffer{}, tmp: make([]byte, 0, 96)}
	fmt.Fprintf(rec.buf,
		`{"golden":%q,"incumbent":%q,"contender":%q,"rate_bps":%d,"rtt_ns":%d,"duration_ns":%d,"seed":%d}`+"\n",
		e.Name, e.Incumbent, e.Contender, e.Net.RateBps, int64(e.Net.RTT), int64(e.Duration), e.Seed)
	spec := core.Spec{
		Incumbent: inc,
		Contender: cont,
		Net:       e.Net,
		Duration:  e.Duration,
		Warmup:    e.Duration / 4,
		Cooldown:  e.Duration / 4,
		Seed:      e.Seed,
		Observe:   rec.attach,
	}
	if _, err := core.RunTrial(spec); err != nil {
		return nil, fmt.Errorf("golden: trial %s: %w", e.Name, err)
	}
	fmt.Fprintf(rec.buf, `{"events":%d}`+"\n", rec.n)
	return rec.buf.Bytes(), nil
}

// Dir is the committed trace directory, relative to this package.
const Dir = "testdata/golden"

// File returns the committed trace path for an entry.
func File(e Entry) string { return filepath.Join(Dir, e.Name+".jsonl.gz") }

// WriteGolden gzips a raw trace to the entry's committed path. The gzip
// header carries no timestamp, so re-recording an unchanged stream leaves
// the file byte-identical.
func WriteGolden(e Entry, raw []byte) error {
	if err := os.MkdirAll(Dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return os.WriteFile(File(e), buf.Bytes(), 0o644)
}

// ReadGolden returns the decompressed committed trace for an entry.
func ReadGolden(e Entry) ([]byte, error) {
	f, err := os.Open(File(e))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", File(e), err)
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// FirstDiff locates the first line where two traces diverge, returning the
// 1-based line number and both lines (empty when a side ran out). It backs
// the replay test's failure message: a raw byte offset is useless, the
// divergent event is everything.
func FirstDiff(got, want []byte) (line int, gotLine, wantLine string) {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	n := len(g)
	if len(w) > n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		var gl, wl []byte
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if !bytes.Equal(gl, wl) {
			return i + 1, string(gl), string(wl)
		}
	}
	return 0, "", ""
}
