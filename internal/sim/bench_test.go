package sim

import "testing"

// BenchmarkEngineDispatch measures the bare schedule+dispatch round trip:
// a single self-rescheduling event, so every iteration is one heap push,
// one heap pop, and one callback. This is the loop every virtual packet
// crosses at least twice; its allocs/op must be zero (the regression gate
// in scripts/bench.sh -check enforces that against BENCH_sim.json).
func BenchmarkEngineDispatch(b *testing.B) {
	e := NewEngine()
	var tick Event
	tick = func(now Time) { e.After(Microsecond, tick) }
	e.After(Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineDeepHeap measures dispatch with 4096 events pending —
// the regime a busy experiment (hundreds of in-flight packets, timers,
// samplers) actually runs in, where heap arity and comparison count
// dominate.
func BenchmarkEngineDeepHeap(b *testing.B) {
	e := NewEngine()
	var tick Event
	tick = func(now Time) { e.After(Millisecond, tick) }
	for i := 0; i < 4096; i++ {
		e.After(Time(i)*Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineTimerChurn measures the arm/cancel cycle transport flows
// perform on every ACK (RTO re-arm) and every paced send: one reusable
// timer, Reset and Stopped per operation, as Flow does with its pacing
// and RTO timers.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	fn := func(Time) {}
	t := e.NewTimer()
	// Keep the clock moving so deadlines stay in the future.
	var tick Event
	tick = func(now Time) { e.After(Microsecond, tick) }
	e.After(Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(Millisecond, fn)
		t.Stop()
		e.Step()
	}
}
