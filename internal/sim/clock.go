// Package sim provides a deterministic discrete-event simulation engine.
//
// Every Prudentia substrate — the netem bottleneck, transport flows, and
// service control loops — runs on a single sim.Engine so that an entire
// experiment (two services competing over a dumbbell for ten virtual
// minutes) is a pure function of its configuration and RNG seed. This is
// what makes trials repeatable and the statistical machinery in
// internal/stats meaningful.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of
// the simulation. It deliberately mirrors time.Duration semantics so that
// durations and timestamps compose with ordinary arithmetic.
type Time int64

// Common virtual-time unit anchors.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// FromDuration converts a wall-clock duration into virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts a virtual time span back into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the timestamp as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }
