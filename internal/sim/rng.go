package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). Trials seed one RNG per experiment so
// that every source of randomness — noise episodes, jittered service start
// times, web resource trees — replays exactly given the same seed.
//
// math/rand would work too, but a self-contained generator keeps the
// stream stable across Go releases, which matters for a watchdog whose
// published artifacts must stay reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed initial state even for small consecutive seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Duration returns a uniform virtual duration in [0, d).
func (r *RNG) Duration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(d))
}

// Jitter returns a value uniformly drawn from [base-spread, base+spread].
func (r *RNG) Jitter(base, spread Time) Time {
	if spread <= 0 {
		return base
	}
	return base - spread + Time(r.Uint64()%uint64(2*spread+1))
}

// Exp returns an exponentially distributed duration with the given mean,
// used by the noise injector for memoryless episode arrivals.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	// -ln(u) * mean, computed without importing math for a hot path:
	// we accept the tiny cost of math.Log; clarity wins.
	return Time(float64(mean) * negLog(u))
}

// Split derives an independent child generator; useful to give each flow
// its own stream so adding a flow does not perturb others' randomness.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
