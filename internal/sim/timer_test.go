package sim

import "testing"

// TestTimerCancelLeavesNoHeapEntry is the regression test for the
// cancel-before-fire leak: a stopped timer's heap entry must be removed
// eagerly, not left to rot until its deadline. Transport flows re-arm
// their RTO on every ACK, so a lazy-cancel scheme would grow the heap
// with one dead entry per ACK and drag every subsequent sift through
// them.
func TestTimerCancelLeavesNoHeapEntry(t *testing.T) {
	e := NewEngine()
	fn := func(Time) {}
	const n = 1000
	timers := make([]*Timer, n)
	for i := range timers {
		timers[i] = e.AfterTimer(Time(i+1)*Millisecond, fn)
	}
	if got := e.Pending(); got != n {
		t.Fatalf("Pending() = %d after arming %d timers", got, n)
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop reported timer already inactive")
		}
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after stopping every timer; cancelled entries leaked in the heap", got)
	}
	// Churn: repeated arm/cancel through one reusable timer must not
	// accumulate entries either.
	tm := e.NewTimer()
	for i := 0; i < 10_000; i++ {
		tm.Reset(Millisecond, fn)
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after 10k Resets of one timer, want 1", got)
	}
	tm.Stop()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after final Stop", got)
	}
}

// TestTimerResetSemantics pins the reusable-timer contract: Reset re-arms
// (cancelling any pending arm), the callback fires at the new deadline
// only, and a fired timer reports not-pending and can be re-armed.
func TestTimerResetSemantics(t *testing.T) {
	e := NewEngine()
	var fired []Time
	tm := e.NewTimer()
	if tm.Pending() {
		t.Fatal("fresh timer reports pending")
	}
	tm.Reset(5*Millisecond, func(now Time) { fired = append(fired, now) })
	tm.Reset(9*Millisecond, func(now Time) { fired = append(fired, now) })
	if !tm.Pending() {
		t.Fatal("armed timer not pending")
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 9*Millisecond {
		t.Fatalf("fired = %v, want exactly one firing at 9ms", fired)
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	// Re-arm after firing.
	tm.Reset(Millisecond, func(now Time) { fired = append(fired, now) })
	e.Run()
	if len(fired) != 2 || fired[1] != 10*Millisecond {
		t.Fatalf("fired = %v, want second firing at 10ms", fired)
	}
}

// TestTimerStopMidHeap stops timers from the middle of a populated heap
// and verifies the survivors still fire in deadline order — the index
// bookkeeping under remove() is what keeps Stop O(log n) and correct.
func TestTimerStopMidHeap(t *testing.T) {
	e := NewEngine()
	const n = 64
	var fired []int
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = e.AfterTimer(Time(n-i)*Millisecond, func(Time) { fired = append(fired, i) })
	}
	for i := 0; i < n; i += 2 {
		timers[i].Stop()
	}
	e.Run()
	if len(fired) != n/2 {
		t.Fatalf("fired %d callbacks, want %d", len(fired), n/2)
	}
	// Deadline of timer i is (n-i)ms, so survivors fire in descending i.
	for k := 1; k < len(fired); k++ {
		if fired[k] >= fired[k-1] {
			t.Fatalf("firing order broken at %d: %v", k, fired)
		}
	}
	for _, i := range fired {
		if i%2 == 0 {
			t.Fatalf("stopped timer %d fired", i)
		}
	}
}
