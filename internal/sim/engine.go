package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a specific virtual time.
type Event func(now Time)

// scheduled is a heap entry. seq breaks ties so that events scheduled for
// the same instant run in FIFO order, keeping the simulation deterministic.
type scheduled struct {
	at     Time
	seq    uint64
	fn     Event
	cancel *Timer
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	if h[i].cancel != nil {
		h[i].cancel.idx = i
	}
	if h[j].cancel != nil {
		h[j].cancel.idx = j
	}
}
func (h *eventHeap) Push(x any) {
	s := x.(*scheduled)
	if s.cancel != nil {
		s.cancel.idx = len(*h)
	}
	*h = append(*h, s)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Timer is a handle for a cancellable scheduled event.
type Timer struct {
	idx     int // index in the heap, -1 when fired or stopped
	engine  *Engine
	stopped bool
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.idx < 0 {
		return false
	}
	t.stopped = true
	heap.Remove(&t.engine.events, t.idx)
	t.idx = -1
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && !t.stopped && t.idx >= 0 }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation is a deterministic sequential program.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// Ran counts executed events, useful for budget checks in tests.
	ran uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun reports the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before the current time) panics: it always indicates a logic bug in a
// substrate, and silently reordering events would corrupt causality.
func (e *Engine) Schedule(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, &scheduled{at: at, seq: e.seq, fn: fn})
}

// After runs fn after delay d (relative scheduling).
func (e *Engine) After(d Time, fn Event) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// AfterTimer schedules fn after d and returns a cancellable handle.
func (e *Engine) AfterTimer(d Time, fn Event) *Timer {
	if d < 0 {
		d = 0
	}
	e.seq++
	t := &Timer{engine: e}
	heap.Push(&e.events, &scheduled{at: e.now + d, seq: e.seq, fn: fn, cancel: t})
	return t
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	s := heap.Pop(&e.events).(*scheduled)
	if s.cancel != nil {
		s.cancel.idx = -1
	}
	e.now = s.at
	e.ran++
	s.fn(e.now)
	return true
}

// RunUntil executes events until the clock would pass deadline or the
// queue drains. The clock is left at min(deadline, last event time); events
// scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run drains the event queue completely. Most experiments should prefer
// RunUntil with an explicit horizon; Run exists for self-terminating
// workloads such as fixed-size file downloads in tests.
func (e *Engine) Run() {
	for e.Step() {
	}
}
