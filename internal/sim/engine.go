package sim

import (
	"fmt"
	"sync/atomic"
)

// Event is a callback scheduled to run at a specific virtual time.
type Event func(now Time)

// ArgEvent is an Event that carries a caller-supplied argument. Packet
// substrates prebind one ArgEvent per code path and pass the packet as the
// argument, instead of allocating a fresh closure per packet.
type ArgEvent func(now Time, arg any)

// scheduled is a heap entry, stored by value: the event queue owns its
// entries in one contiguous slice, so steady-state scheduling recycles
// slots instead of allocating per event. Exactly one of fn and argFn is
// set. seq breaks ties so that events scheduled for the same instant run
// in FIFO order, keeping the simulation deterministic — and because
// (at, seq) is a strict total order, dispatch order is independent of the
// heap's internal layout.
type scheduled struct {
	at     Time
	seq    uint64
	fn     Event
	argFn  ArgEvent
	arg    any
	cancel *Timer
}

func lessScheduled(a, b *scheduled) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Timer is a handle for a cancellable scheduled event. A Timer can be
// reused across arm/cancel cycles with Reset, which is how the transport
// hot path (RTO re-arm on every ACK, pacing on every send) avoids
// allocating a handle per arm. idx is the entry's index in the event
// queue, -1 when idle (fired, stopped, or never armed).
type Timer struct {
	engine *Engine
	idx    int
}

// NewTimer returns an idle reusable timer. Arm it with Reset.
func (e *Engine) NewTimer() *Timer {
	return &Timer{engine: e, idx: -1}
}

// Reset arms the timer to run fn after d, cancelling any pending arm
// first. It is the allocation-free counterpart of AfterTimer.
func (t *Timer) Reset(d Time, fn Event) {
	t.Stop()
	if d < 0 {
		d = 0
	}
	e := t.engine
	e.seq++
	e.push(scheduled{at: e.now + d, seq: e.seq, fn: fn, cancel: t})
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.idx < 0 {
		return false
	}
	t.engine.remove(t.idx)
	t.idx = -1
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && t.idx >= 0 }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation is a deterministic sequential program.
//
// The event queue is a 4-ary min-heap ordered by (at, seq), stored by
// value in one slice. 4-ary beats binary here: sift-down visits 4 children
// per level but the tree is half as deep, and the children share cache
// lines — dispatch in a busy experiment (thousands of pending events) is
// dominated by sift-down cache misses, not comparisons.
type Engine struct {
	now    Time
	seq    uint64
	events []scheduled
	// Ran counts executed events, useful for budget checks in tests.
	ran uint64
	// abort, when set, is polled by the run loops (see SetAbort).
	abort *atomic.Bool
}

// Aborted is the panic value the run loops raise when an external
// supervisor trips the abort flag installed with SetAbort. It carries
// the virtual time the run had reached. Callers that arm an abort flag
// must be prepared to recover it (the watchdog's trial panic barrier
// converts it into a typed reap failure).
type Aborted struct {
	// At is the virtual time at which the abort was observed.
	At Time
}

// Error makes Aborted usable as an error value after recovery.
func (a Aborted) Error() string {
	return fmt.Sprintf("sim: run aborted at %v", a.At)
}

// SetAbort installs an externally-owned abort flag. The run loops poll
// it every 1024 dispatched events — cheap enough to leave the hot path
// allocation- and contention-free, tight enough that any *eventful*
// runaway simulation stops promptly — and raise Aborted when it reads
// true. A hard wedge inside a single event callback cannot be
// interrupted this way; supervisors must abandon the goroutine instead
// (see the core reaper). Passing nil removes the flag.
func (e *Engine) SetAbort(flag *atomic.Bool) { e.abort = flag }

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun reports the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// push appends an entry and restores the heap property.
func (e *Engine) push(s scheduled) {
	e.events = append(e.events, s)
	e.siftUp(len(e.events) - 1)
}

// siftUp moves the entry at i toward the root until ordered, keeping
// Timer indices in sync. The entry is held in a register and written once
// into its final slot (hole-based sift), halving the copies of a
// swap-based loop.
func (e *Engine) siftUp(i int) {
	h := e.events
	s := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !lessScheduled(&s, &h[p]) {
			break
		}
		h[i] = h[p]
		if h[i].cancel != nil {
			h[i].cancel.idx = i
		}
		i = p
	}
	h[i] = s
	if s.cancel != nil {
		s.cancel.idx = i
	}
}

// siftDown moves the entry at i toward the leaves until ordered.
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	s := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessScheduled(&h[j], &h[m]) {
				m = j
			}
		}
		if !lessScheduled(&h[m], &s) {
			break
		}
		h[i] = h[m]
		if h[i].cancel != nil {
			h[i].cancel.idx = i
		}
		i = m
	}
	h[i] = s
	if s.cancel != nil {
		s.cancel.idx = i
	}
}

// popRoot removes and returns the minimum entry. The vacated tail slot is
// zeroed so the slice does not retain callback or argument references.
func (e *Engine) popRoot() scheduled {
	h := e.events
	s := h[0]
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
	}
	h[n] = scheduled{}
	e.events = h[:n]
	if n > 1 {
		e.siftDown(0)
	} else if n == 1 && h[0].cancel != nil {
		h[0].cancel.idx = 0
	}
	return s
}

// remove deletes the entry at i (timer cancellation), moving the tail
// entry into the gap and re-sifting it in whichever direction restores
// order. The vacated tail slot is zeroed so no references leak.
func (e *Engine) remove(i int) {
	h := e.events
	n := len(h) - 1
	if i != n {
		moved := h[n]
		h[i] = moved
		h[n] = scheduled{}
		e.events = h[:n]
		e.siftDown(i)
		if e.events[i].seq == moved.seq {
			e.siftUp(i)
		}
	} else {
		h[n] = scheduled{}
		e.events = h[:n]
	}
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before the current time) panics: it always indicates a logic bug in a
// substrate, and silently reordering events would corrupt causality.
func (e *Engine) Schedule(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.push(scheduled{at: at, seq: e.seq, fn: fn})
}

// ScheduleArg runs fn(at, arg) at absolute virtual time at. Unlike
// wrapping arg in a closure, this path is allocation-free when arg is a
// pointer: the hot substrates prebind one ArgEvent per code path and
// thread the packet through as the argument.
func (e *Engine) ScheduleArg(at Time, fn ArgEvent, arg any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.push(scheduled{at: at, seq: e.seq, argFn: fn, arg: arg})
}

// After runs fn after delay d (relative scheduling).
func (e *Engine) After(d Time, fn Event) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// AfterArg runs fn(now, arg) after delay d. See ScheduleArg.
func (e *Engine) AfterArg(d Time, fn ArgEvent, arg any) {
	if d < 0 {
		d = 0
	}
	e.ScheduleArg(e.now+d, fn, arg)
}

// AfterTimer schedules fn after d and returns a cancellable handle. Code
// that arms repeatedly should hold one NewTimer and Reset it instead.
func (e *Engine) AfterTimer(d Time, fn Event) *Timer {
	t := e.NewTimer()
	t.Reset(d, fn)
	return t
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	s := e.popRoot()
	if s.cancel != nil {
		s.cancel.idx = -1
	}
	e.now = s.at
	e.ran++
	if s.argFn != nil {
		s.argFn(e.now, s.arg)
	} else {
		s.fn(e.now)
	}
	return true
}

// RunUntil executes events until the clock would pass deadline or the
// queue drains. The clock is left at min(deadline, last event time); events
// scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		if e.abort != nil && e.ran&1023 == 0 && e.abort.Load() {
			panic(Aborted{At: e.now})
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run drains the event queue completely. Most experiments should prefer
// RunUntil with an explicit horizon; Run exists for self-terminating
// workloads such as fixed-size file downloads in tests.
func (e *Engine) Run() {
	for len(e.events) > 0 {
		if e.abort != nil && e.ran&1023 == 0 && e.abort.Load() {
			panic(Aborted{At: e.now})
		}
		e.Step()
	}
}
