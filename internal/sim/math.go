package sim

import "math"

// negLog returns -ln(u) for u in (0, 1].
func negLog(u float64) float64 { return -math.Log(u) }
