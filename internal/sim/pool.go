package sim

// Pool is a single-threaded free list for the simulation hot path. It is
// deliberately not sync.Pool: a simulation is a sequential program, so a
// plain slice with no locks or per-P caches is both faster and — unlike
// sync.Pool — deterministic (Get returns the most recently Put object,
// every run).
//
// Put zeroes the object before parking it, so a Get always observes a
// fresh zero value and stale fields from a previous life cannot leak into
// the next one. The zero Pool is ready to use.
type Pool[T any] struct {
	free []*T
}

// Get returns a zeroed *T, reusing a previously Put object when one is
// parked.
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return new(T)
}

// Put parks x for reuse. The caller must not retain x afterwards.
func (p *Pool[T]) Put(x *T) {
	var zero T
	*x = zero
	p.free = append(p.free, x)
}

// Live reports how many objects are currently parked, for leak tests.
func (p *Pool[T]) Live() int { return len(p.free) }
