package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(50 * time.Millisecond); got != 50*Millisecond {
		t.Fatalf("FromDuration = %d, want %d", got, 50*Millisecond)
	}
	if got := (2 * Second).Duration(); got != 2*time.Second {
		t.Fatalf("Duration = %v, want 2s", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Fatalf("String = %q", got)
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Millisecond, func(Time) { order = append(order, 3) })
	e.Schedule(10*Millisecond, func(Time) { order = append(order, 1) })
	e.Schedule(20*Millisecond, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOForSimultaneousEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(Second, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(Millisecond, func(Time) {})
}

func TestEngineRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1*Second, func(Time) { fired++ })
	e.Schedule(3*Second, func(Time) { fired++ })
	e.RunUntil(2 * Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick Event
	tick = func(now Time) {
		ticks = append(ticks, now)
		if now < 5*Second {
			e.After(Second, tick)
		}
	}
	e.After(Second, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, at := range ticks {
		if at != Time(i+1)*Second {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.AfterTimer(Second, func(Time) { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAmongMany(t *testing.T) {
	// Removing a timer from the middle of the heap must not disturb the
	// ordering of the remaining events.
	e := NewEngine()
	var got []int
	var timers []*Timer
	for i := 0; i < 20; i++ {
		i := i
		timers = append(timers, e.AfterTimer(Time(i+1)*Millisecond, func(Time) { got = append(got, i) }))
	}
	timers[5].Stop()
	timers[13].Stop()
	e.Run()
	want := 0
	for _, v := range got {
		for want == 5 || want == 13 {
			want++
		}
		if v != want {
			t.Fatalf("got %v", got)
		}
		want++
	}
	if len(got) != 18 {
		t.Fatalf("len(got) = %d", len(got))
	}
}

func TestTimerFiredIsNotPending(t *testing.T) {
	e := NewEngine()
	tm := e.AfterTimer(Millisecond, func(Time) {})
	e.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop on fired timer should be false")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too correlated: %d collisions", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGJitterBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		base, spread := 100*Millisecond, 10*Millisecond
		for i := 0; i < 50; i++ {
			v := r.Jitter(base, spread)
			if v < base-spread || v > base+spread {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMeanRoughlyCorrect(t *testing.T) {
	r := NewRNG(11)
	mean := 100 * Millisecond
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := float64(sum) / n
	if got < 0.9*float64(mean) || got > 1.1*float64(mean) {
		t.Fatalf("empirical mean %.0f, want ~%d", got, mean)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams too correlated: %d", same)
	}
}
