package trace

import (
	"strings"
	"testing"

	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

func TestCollectorRecordsDrops(t *testing.T) {
	eng := sim.NewEngine()
	b := netem.NewBottleneck(eng, 12_000_000, 2, 0)
	b.Output = func(sim.Time, *netem.Packet) {}
	var c Collector
	c.Attach(b)
	for i := 0; i < 6; i++ {
		b.Enqueue(eng.Now(), &netem.Packet{Size: 1500, Seq: int64(i), Service: 1, FlowID: 3})
	}
	eng.Run()
	// Capacity 2 + 1 in service: 3 drops.
	if len(c.Drops) != 3 {
		t.Fatalf("drops = %d, want 3", len(c.Drops))
	}
	d := c.Drops[0]
	if d.Service != 1 || d.FlowID != 3 || d.Size != 1500 {
		t.Fatalf("drop record = %+v", d)
	}
}

func TestWriteQueueCSV(t *testing.T) {
	var sb strings.Builder
	samples := []netem.OccupancySample{
		{At: sim.Second, Total: 5, PerService: [2]int{3, 2}},
		{At: 2 * sim.Second, Total: 1, PerService: [2]int{1, 0}},
	}
	if err := WriteQueueCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "time_s,total_pkts,svc0_pkts,svc1_pkts" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1.000000,5,3,2" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteRateCSV(t *testing.T) {
	var sb strings.Builder
	pts := []metrics.RatePoint{{At: sim.Second, Mbps: [2]float64{12.5, 3.25}}}
	if err := WriteRateCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1.000000,12.5000,3.2500") {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestWriteDropsCSV(t *testing.T) {
	var sb strings.Builder
	drops := []DropEvent{{At: sim.Millisecond, Service: 1, FlowID: 2, Seq: 9, Size: 1500}}
	if err := WriteDropsCSV(&sb, drops); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.001000,1,2,9,1500") {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestWriteJSONAndSummary(t *testing.T) {
	var sb strings.Builder
	s := Summary{
		Incumbent: "YouTube", Contender: "Mega", LinkMbps: 8,
		MedianMbps: [2]float64{1.2, 6.5}, SharePct: [2]float64{30, 162}, Trials: 10,
	}
	if err := WriteJSON(&sb, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"incumbent": "YouTube"`) {
		t.Fatalf("json = %q", sb.String())
	}
	str := s.String()
	if !strings.Contains(str, "YouTube vs Mega @8 Mbps") || !strings.Contains(str, "10 trials") {
		t.Fatalf("summary = %q", str)
	}
}
