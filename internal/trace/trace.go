// Package trace exports per-experiment artifacts in the spirit of the
// data the Prudentia website publishes for every experiment (§7):
// bottleneck queue logs, packet drop logs, and per-service throughput
// series, as CSV and JSON for offline analysis.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"prudentia/internal/core"
	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// DropEvent records one drop-tail loss at the bottleneck.
type DropEvent struct {
	At      sim.Time `json:"at_ns"`
	Service int      `json:"service"`
	FlowID  int      `json:"flow_id"`
	Seq     int64    `json:"seq"`
	Size    int      `json:"size"`
}

// Collector gathers artifacts from a bottleneck during one experiment.
// Attach before the experiment starts.
type Collector struct {
	Drops []DropEvent
}

// Attach registers the collector's hooks on the bottleneck.
func (c *Collector) Attach(b *netem.Bottleneck) {
	b.DropHook = func(now sim.Time, p *netem.Packet) {
		c.Drops = append(c.Drops, DropEvent{
			At: now, Service: p.Service, FlowID: p.FlowID, Seq: p.Seq, Size: p.Size,
		})
	}
}

// WriteQueueCSV emits the queue occupancy series as CSV
// (time_s,total,svc0,svc1) — the signal in Fig 8.
func WriteQueueCSV(w io.Writer, samples []netem.OccupancySample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "total_pkts", "svc0_pkts", "svc1_pkts"}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			strconv.FormatFloat(s.At.Seconds(), 'f', 6, 64),
			strconv.Itoa(s.Total),
			strconv.Itoa(s.PerService[0]),
			strconv.Itoa(s.PerService[1]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRateCSV emits a per-service throughput series as CSV
// (time_s,svc0_mbps,svc1_mbps) — the signal in Fig 4.
func WriteRateCSV(w io.Writer, points []metrics.RatePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "svc0_mbps", "svc1_mbps"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.FormatFloat(p.At.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(p.Mbps[0], 'f', 4, 64),
			strconv.FormatFloat(p.Mbps[1], 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDropsCSV emits the drop log as CSV.
func WriteDropsCSV(w io.Writer, drops []DropEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "service", "flow_id", "seq", "size"}); err != nil {
		return err
	}
	for _, d := range drops {
		rec := []string{
			strconv.FormatFloat(d.At.Seconds(), 'f', 6, 64),
			strconv.Itoa(d.Service),
			strconv.Itoa(d.FlowID),
			strconv.FormatInt(d.Seq, 10),
			strconv.Itoa(d.Size),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FaultLedger accumulates the scheduler's robustness events — trial
// failures, retries, discards, validity-gate rejections, quarantines —
// for export alongside the per-experiment artifacts. Wire Record into
// Matrix.OnFault or Watchdog.OnFault.
//
// The ledger is safe for concurrent use: one ledger may be shared by
// several watchdogs or matrices running in parallel. (A single matrix,
// even with Workers > 1, delivers its events from one goroutine in
// canonical pair order — the scheduler's ordered merge — so sharing a
// ledger across runs is the only case that actually interleaves.)
// Read Events directly only after the runs feeding the ledger have
// finished; while they are live, use Snapshot.
type FaultLedger struct {
	mu     sync.Mutex
	Events []core.FaultEvent
}

// Record appends one event (the OnFault hook).
func (l *FaultLedger) Record(ev core.FaultEvent) {
	l.mu.Lock()
	l.Events = append(l.Events, ev)
	l.mu.Unlock()
}

// Snapshot returns a copy of the events recorded so far.
func (l *FaultLedger) Snapshot() []core.FaultEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]core.FaultEvent, len(l.Events))
	copy(out, l.Events)
	return out
}

// Counts tallies events by kind.
func (l *FaultLedger) Counts() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int)
	for _, ev := range l.Events {
		out[ev.Kind]++
	}
	return out
}

// Summary renders the tally as a stable one-line string
// ("corrupt=2 discard=1 retry=3 ...", empty for no events).
func (l *FaultLedger) Summary() string {
	counts := l.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b []byte
	for i, k := range kinds {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%d", k, counts[k])...)
	}
	return string(b)
}

// WriteFaultsCSV emits the robustness ledger as CSV
// (pair,kind,attempt,seed,detail).
func WriteFaultsCSV(w io.Writer, events []core.FaultEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pair", "kind", "attempt", "seed", "detail"}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := []string{
			ev.Pair,
			ev.Kind,
			strconv.Itoa(ev.Attempt),
			strconv.FormatUint(ev.Seed, 10),
			ev.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFaultsJSONL emits the robustness ledger as JSON Lines, one event
// per line — the same framing as the obs cycle timeline, so the two
// files can be merged or tailed with the same tooling.
func WriteFaultsJSONL(w io.Writer, events []core.FaultEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits any artifact as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Summary is the top-level per-experiment record published alongside the
// raw logs.
type Summary struct {
	Incumbent  string  `json:"incumbent"`
	Contender  string  `json:"contender"`
	LinkMbps   float64 `json:"link_mbps"`
	RTTMs      float64 `json:"rtt_ms"`
	QueuePkts  int     `json:"queue_pkts"`
	Trials     int     `json:"trials"`
	SharePct   [2]float64
	MedianMbps [2]float64
}

// FormatSummary renders a one-line human-readable summary.
func (s Summary) String() string {
	return fmt.Sprintf("%s vs %s @%.0f Mbps: %.1f/%.1f Mbps (%.0f%%/%.0f%% of MmF), %d trials",
		s.Incumbent, s.Contender, s.LinkMbps,
		s.MedianMbps[0], s.MedianMbps[1], s.SharePct[0], s.SharePct[1], s.Trials)
}
