package trace

import (
	"strings"
	"testing"

	"prudentia/internal/core"
)

func TestFaultLedgerCountsAndSummary(t *testing.T) {
	l := &FaultLedger{}
	if got := l.Summary(); got != "" {
		t.Fatalf("empty ledger Summary = %q", got)
	}
	l.Record(core.FaultEvent{Pair: "a vs b", Kind: "panic", Attempt: 0, Seed: 42, Detail: "boom"})
	l.Record(core.FaultEvent{Pair: "a vs b", Kind: "retry", Attempt: 0, Seed: 42})
	l.Record(core.FaultEvent{Pair: "c vs d", Kind: "panic", Attempt: 1, Seed: 7})
	counts := l.Counts()
	if counts["panic"] != 2 || counts["retry"] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	if got := l.Summary(); got != "panic=2 retry=1" {
		t.Fatalf("Summary = %q, want %q", got, "panic=2 retry=1")
	}
}

func TestWriteFaultsCSV(t *testing.T) {
	events := []core.FaultEvent{
		{Pair: "a vs b", Kind: "panic", Attempt: 3, Seed: 42, Detail: "chaos: injected panic"},
		{Pair: "a vs b", Kind: "quarantine", Attempt: 3, Seed: 42, Detail: "3 failures"},
	}
	var b strings.Builder
	if err := WriteFaultsCSV(&b, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{
		"pair,kind,attempt,seed,detail",
		"a vs b,panic,3,42,chaos: injected panic",
		"a vs b,quarantine,3,42,3 failures",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), b.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
