package core

// Bridges for external (package core_test) tests, which exist so tests
// may import packages that themselves import core (e.g. internal/report)
// without creating an in-package import cycle.
var (
	FastOptsForTest      = fastOpts
	HotChaosForTest      = hotChaos
	ThreeServicesForTest = threeServices
)
