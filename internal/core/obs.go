package core

import (
	"fmt"
	"time"

	"prudentia/internal/obs"
	"prudentia/internal/stats"
)

// Instruments bundles the watchdog's telemetry sinks: a metric registry
// and a cycle timeline. Handles are resolved once at construction so
// the scheduler's hot loop performs only atomic adds; a nil
// *Instruments (and a nil registry or timeline inside one) is a no-op
// everywhere, keeping every instrumented path nil-safe and the
// uninstrumented cost to a single branch.
//
// Metric semantics:
//
//   - prudentia_trials_*_total count every attempt the scheduler
//     launches: started = completed + failed + discarded + corrupt
//     (the manifest reconciliation identity; "trials run" equals
//     started minus the retried duplicates).
//   - prudentia_netem_*/prudentia_transport_*/prudentia_chaos_* fold the
//     deterministic TrialObs aggregate of counted pair trials only — the
//     traffic that enters the heatmaps — so they reconcile exactly with
//     the published report (calibration traffic is counted separately).
//   - Metrics with "wall" in the name (trial wall-time histogram, pool
//     busy fraction) are the only nondeterministic ones; determinism
//     tests compare snapshots through Snapshot.StripWallClock.
type Instruments struct {
	Registry *obs.Registry
	Timeline *obs.Timeline

	trialsStarted   *obs.Counter
	trialsCompleted *obs.Counter
	trialsFailed    *obs.Counter
	failPanic       *obs.Counter
	failError       *obs.Counter
	failReap        *obs.Counter
	failBrownout    *obs.Counter
	trialsDiscarded *obs.Counter
	trialsCorrupt   *obs.Counter
	retries         *obs.Counter
	quarantines     *obs.Counter
	pairsCompleted  *obs.Counter
	pairsSkipped    *obs.Counter
	calibrations    *obs.Counter
	checkpointSaves *obs.Counter

	journalRecords  *obs.Counter
	journalBytes    *obs.Counter
	journalReplayed *obs.Counter
	journalTorn     *obs.Counter

	adaptiveStopCI     *obs.Counter
	adaptiveStopStable *obs.Counter
	adaptiveStopBudget *obs.Counter
	adaptiveSaved      *obs.Counter
	screenTrials       *obs.Counter

	breakerToOpen     *obs.Counter
	breakerToHalfOpen *obs.Counter
	breakerToClosed   *obs.Counter
	breakerProbes     *obs.Counter

	netemArrived   *obs.Counter
	netemDropped   *obs.Counter
	netemDelivered *obs.Counter
	netemDelBytes  *obs.Counter
	netemExternal  *obs.Counter
	netemChaos     *obs.Counter
	occupancyHigh  *obs.Gauge

	transportRetx       *obs.Counter
	transportTimeouts   *obs.Counter
	transportCwndEvents *obs.Counter
	transportTailProbes *obs.Counter

	chaosFlaps  *obs.Counter
	chaosSags   *obs.Counter
	chaosStalls *obs.Counter

	trialSim  *obs.Histogram
	trialWall *obs.Histogram

	poolBusy *obs.Gauge
}

// NewInstruments resolves all metric handles on reg (which may be nil)
// and attaches the timeline (which may also be nil).
func NewInstruments(reg *obs.Registry, tl *obs.Timeline) *Instruments {
	return &Instruments{
		Registry: reg,
		Timeline: tl,

		trialsStarted:   reg.Counter("prudentia_trials_started_total"),
		trialsCompleted: reg.Counter("prudentia_trials_completed_total"),
		trialsFailed:    reg.Counter("prudentia_trials_failed_total"),
		failPanic:       reg.Counter(`prudentia_trial_failures_total{kind="panic"}`),
		failError:       reg.Counter(`prudentia_trial_failures_total{kind="error"}`),
		failReap:        reg.Counter(`prudentia_trial_failures_total{kind="reap"}`),
		failBrownout:    reg.Counter(`prudentia_trial_failures_total{kind="brownout"}`),
		trialsDiscarded: reg.Counter("prudentia_trials_discarded_total"),
		trialsCorrupt:   reg.Counter("prudentia_trials_corrupt_total"),
		retries:         reg.Counter("prudentia_trial_retries_total"),
		quarantines:     reg.Counter("prudentia_pair_quarantines_total"),
		pairsCompleted:  reg.Counter("prudentia_pairs_completed_total"),
		pairsSkipped:    reg.Counter("prudentia_pairs_skipped_total"),
		calibrations:    reg.Counter("prudentia_calibrations_total"),
		checkpointSaves: reg.Counter("prudentia_checkpoint_saves_total"),

		journalRecords:  reg.Counter("prudentia_journal_records_total"),
		journalBytes:    reg.Counter("prudentia_journal_bytes_total"),
		journalReplayed: reg.Counter("prudentia_journal_replayed_total"),
		journalTorn:     reg.Counter("prudentia_journal_torn_tail_total"),

		adaptiveStopCI:     reg.Counter(`prudentia_adaptive_stops_total{reason="ci_width"}`),
		adaptiveStopStable: reg.Counter(`prudentia_adaptive_stops_total{reason="verdict_stable"}`),
		adaptiveStopBudget: reg.Counter(`prudentia_adaptive_stops_total{reason="budget"}`),
		adaptiveSaved:      reg.Counter("prudentia_adaptive_trials_saved_total"),
		screenTrials:       reg.Counter("prudentia_adaptive_screen_trials_total"),

		breakerToOpen:     reg.Counter(`prudentia_breaker_transitions_total{to="open"}`),
		breakerToHalfOpen: reg.Counter(`prudentia_breaker_transitions_total{to="half-open"}`),
		breakerToClosed:   reg.Counter(`prudentia_breaker_transitions_total{to="closed"}`),
		breakerProbes:     reg.Counter("prudentia_breaker_probes_total"),

		netemArrived:   reg.Counter("prudentia_netem_arrived_packets_total"),
		netemDropped:   reg.Counter("prudentia_netem_dropped_packets_total"),
		netemDelivered: reg.Counter("prudentia_netem_delivered_packets_total"),
		netemDelBytes:  reg.Counter("prudentia_netem_delivered_bytes_total"),
		netemExternal:  reg.Counter("prudentia_netem_external_drops_total"),
		netemChaos:     reg.Counter("prudentia_netem_chaos_drops_total"),
		occupancyHigh:  reg.Gauge("prudentia_netem_occupancy_high_water_packets"),

		transportRetx:       reg.Counter("prudentia_transport_retransmits_total"),
		transportTimeouts:   reg.Counter("prudentia_transport_timeouts_total"),
		transportCwndEvents: reg.Counter("prudentia_transport_cwnd_events_total"),
		transportTailProbes: reg.Counter("prudentia_transport_tail_probes_total"),

		chaosFlaps:  reg.Counter(`prudentia_chaos_episodes_total{kind="flap"}`),
		chaosSags:   reg.Counter(`prudentia_chaos_episodes_total{kind="sag"}`),
		chaosStalls: reg.Counter(`prudentia_chaos_episodes_total{kind="stall"}`),

		trialSim:  reg.Histogram("prudentia_trial_sim_seconds", obs.TrialSimSecondsBuckets()),
		trialWall: reg.Histogram("prudentia_trial_wall_seconds", obs.TrialWallSecondsBuckets()),

		poolBusy: reg.Gauge("prudentia_pool_busy_wall_fraction"),
	}
}

// emit forwards an event to the timeline (nil-safe).
func (in *Instruments) emit(ev obs.TimelineEvent) {
	if in != nil {
		in.Timeline.Emit(ev)
	}
}

// now returns the wall clock only when timing will actually be recorded.
func (in *Instruments) now() time.Time {
	if in == nil {
		return time.Time{}
	}
	return time.Now()
}

// trialAccum is a pair-local batched view of the hottest counter
// families — the trial ledger (started/completed) and the per-trial
// netem/transport/chaos aggregates folded by foldObs. The pair
// protocol adds deltas to plain cells while it owns the accumulator
// and commits each family's net total with one atomic add at pair
// completion (stats.Accum), cutting ~16 contended atomic operations
// per counted trial to ~16 per *pair*. The occupancy high water is
// max-semantics, not additive, so it batches as a local max committed
// through SetMax — max is commutative too, so totals and gauges are
// identical to the unbatched path for any worker count or flush
// schedule.
type trialAccum struct {
	ins *Instruments
	acc *stats.Accum

	started, completed                                       int
	arrived, dropped, delivered, delBytes, external, chaosDp int
	retx, timeouts, cwnd, tailProbes                         int
	flaps, sags, stalls                                      int

	occHigh float64
}

// newTrialAccum binds a fresh accumulator to the registry's hot
// counters (nil-safe: nil Instruments yields a nil accumulator, and
// every trialAccum method no-ops on nil).
func (in *Instruments) newTrialAccum() *trialAccum {
	if in == nil {
		return nil
	}
	ta := &trialAccum{ins: in, acc: stats.NewAccum()}
	ta.started = ta.acc.Cell(in.trialsStarted.Add)
	ta.completed = ta.acc.Cell(in.trialsCompleted.Add)
	ta.arrived = ta.acc.Cell(in.netemArrived.Add)
	ta.dropped = ta.acc.Cell(in.netemDropped.Add)
	ta.delivered = ta.acc.Cell(in.netemDelivered.Add)
	ta.delBytes = ta.acc.Cell(in.netemDelBytes.Add)
	ta.external = ta.acc.Cell(in.netemExternal.Add)
	ta.chaosDp = ta.acc.Cell(in.netemChaos.Add)
	ta.retx = ta.acc.Cell(in.transportRetx.Add)
	ta.timeouts = ta.acc.Cell(in.transportTimeouts.Add)
	ta.cwnd = ta.acc.Cell(in.transportCwndEvents.Add)
	ta.tailProbes = ta.acc.Cell(in.transportTailProbes.Add)
	ta.flaps = ta.acc.Cell(in.chaosFlaps.Add)
	ta.sags = ta.acc.Cell(in.chaosSags.Add)
	ta.stalls = ta.acc.Cell(in.chaosStalls.Add)
	return ta
}

// foldObs batches one counted trial's aggregate (the accumulator
// counterpart of Instruments.foldObs).
func (ta *trialAccum) foldObs(o TrialObs) {
	ta.acc.Add(ta.arrived, o.ArrivedPackets)
	ta.acc.Add(ta.dropped, o.DroppedPackets)
	ta.acc.Add(ta.delivered, o.DeliveredPackets)
	ta.acc.Add(ta.delBytes, o.DeliveredBytes)
	ta.acc.Add(ta.external, o.ExternalDrops)
	ta.acc.Add(ta.chaosDp, o.ChaosDrops)
	ta.acc.Add(ta.retx, o.Retransmits)
	ta.acc.Add(ta.timeouts, o.Timeouts)
	ta.acc.Add(ta.cwnd, o.CwndEvents)
	ta.acc.Add(ta.tailProbes, o.TailProbes)
	ta.acc.Add(ta.flaps, o.ChaosFlaps)
	ta.acc.Add(ta.sags, o.ChaosSags)
	ta.acc.Add(ta.stalls, o.ChaosStalls)
	if hw := float64(o.OccupancyHighWater); hw > ta.occHigh {
		ta.occHigh = hw
	}
}

// flush commits every batched delta to the shared registry.
func (ta *trialAccum) flush() {
	if ta == nil {
		return
	}
	ta.acc.Flush()
	if ta.occHigh > 0 {
		ta.ins.occupancyHigh.SetMax(ta.occHigh)
		ta.occHigh = 0
	}
}

// trialStart records one attempt entering execution.
func (in *Instruments) trialStart(pair string, seed uint64, attempt int) {
	if in == nil {
		return
	}
	in.trialsStarted.Inc()
	in.emit(obs.TimelineEvent{Kind: "trial_start", Pair: pair, Seed: seed, Attempt: attempt})
}

// trialStartBatched is trialStart with the started counter routed
// through the pair's accumulator (timeline events are not batched —
// they are ordered observability data, not contended counters).
func (in *Instruments) trialStartBatched(ta *trialAccum, pair string, seed uint64, attempt int) {
	if in == nil {
		return
	}
	if ta == nil {
		in.trialStart(pair, seed, attempt)
		return
	}
	ta.acc.Inc(ta.started)
	in.emit(obs.TimelineEvent{Kind: "trial_start", Pair: pair, Seed: seed, Attempt: attempt})
}

// trialDurations records a finished attempt's sim/wall time histograms.
func (in *Instruments) trialDurations(simSeconds float64, start time.Time) float64 {
	if in == nil {
		return 0
	}
	wall := time.Since(start).Seconds()
	in.trialSim.Observe(simSeconds)
	in.trialWall.Observe(wall)
	return wall
}

// trialOK records a counted trial and folds its deterministic testbed
// aggregate into the registry.
func (in *Instruments) trialOK(pair string, seed uint64, attempt int, res *TrialResult, start time.Time) {
	if in == nil {
		return
	}
	in.trialsCompleted.Inc()
	in.foldObs(res.Obs)
	wall := in.trialDurations(res.Obs.SimSeconds, start)
	in.emit(obs.TimelineEvent{Kind: "trial_ok", Pair: pair, Seed: seed, Attempt: attempt,
		SimSeconds: res.Obs.SimSeconds, WallSeconds: wall})
}

// trialOKBatched is trialOK with the completed counter and the foldObs
// family routed through the pair's accumulator. Duration histograms
// record per trial either way: histogram observations are individual
// samples, not summable deltas.
func (in *Instruments) trialOKBatched(ta *trialAccum, pair string, seed uint64, attempt int, res *TrialResult, start time.Time) {
	if in == nil {
		return
	}
	if ta == nil {
		in.trialOK(pair, seed, attempt, res, start)
		return
	}
	ta.acc.Inc(ta.completed)
	ta.foldObs(res.Obs)
	wall := in.trialDurations(res.Obs.SimSeconds, start)
	in.emit(obs.TimelineEvent{Kind: "trial_ok", Pair: pair, Seed: seed, Attempt: attempt,
		SimSeconds: res.Obs.SimSeconds, WallSeconds: wall})
}

// foldObs adds one counted trial's aggregate to the netem/transport/
// chaos counter families.
func (in *Instruments) foldObs(o TrialObs) {
	if in == nil {
		return
	}
	in.netemArrived.Add(o.ArrivedPackets)
	in.netemDropped.Add(o.DroppedPackets)
	in.netemDelivered.Add(o.DeliveredPackets)
	in.netemDelBytes.Add(o.DeliveredBytes)
	in.netemExternal.Add(o.ExternalDrops)
	in.netemChaos.Add(o.ChaosDrops)
	in.occupancyHigh.SetMax(float64(o.OccupancyHighWater))
	in.transportRetx.Add(o.Retransmits)
	in.transportTimeouts.Add(o.Timeouts)
	in.transportCwndEvents.Add(o.CwndEvents)
	in.transportTailProbes.Add(o.TailProbes)
	in.chaosFlaps.Add(o.ChaosFlaps)
	in.chaosSags.Add(o.ChaosSags)
	in.chaosStalls.Add(o.ChaosStalls)
}

// trialFail records a failed attempt (injected error or recovered panic).
func (in *Instruments) trialFail(pair string, seed uint64, attempt int, kind, msg string, simSeconds float64, start time.Time) {
	if in == nil {
		return
	}
	in.trialsFailed.Inc()
	switch kind {
	case "panic":
		in.failPanic.Inc()
	case "error":
		in.failError.Inc()
	case "reap":
		in.failReap.Inc()
	case "brownout":
		in.failBrownout.Inc()
	}
	wall := in.trialDurations(simSeconds, start)
	in.emit(obs.TimelineEvent{Kind: "trial_fail", Pair: pair, Seed: seed, Attempt: attempt,
		WallSeconds: wall, Detail: kind + ": " + msg})
}

// trialDiscard records a noise-discarded attempt. It takes the bare
// simulated duration rather than the result: journal-replayed discards
// carry only their classification, not the discarded metrics.
func (in *Instruments) trialDiscard(pair string, seed uint64, attempt int, simSeconds float64, start time.Time) {
	if in == nil {
		return
	}
	in.trialsDiscarded.Inc()
	wall := in.trialDurations(simSeconds, start)
	in.emit(obs.TimelineEvent{Kind: "trial_discard", Pair: pair, Seed: seed, Attempt: attempt,
		SimSeconds: simSeconds, WallSeconds: wall})
}

// trialCorrupt records a validity-gate rejection. Like trialDiscard it
// takes the bare simulated duration: corrupt results can hold NaN and
// are never carried past classification.
func (in *Instruments) trialCorrupt(pair string, seed uint64, attempt int, simSeconds float64, detail string, start time.Time) {
	if in == nil {
		return
	}
	in.trialsCorrupt.Inc()
	wall := in.trialDurations(simSeconds, start)
	in.emit(obs.TimelineEvent{Kind: "trial_corrupt", Pair: pair, Seed: seed, Attempt: attempt,
		SimSeconds: simSeconds, WallSeconds: wall, Detail: detail})
}

// remotePair folds a remotely-executed pair's trial ledger into the
// registry on the matrix's canonical release path. Fleet workers
// execute trials in their own processes, so the coordinator cannot
// observe trial_start/trial_ok as they happen; instead the finished
// outcome carries exactly the counts needed to preserve the manifest
// reconciliation identity (started = completed + failed + discarded +
// corrupt) and the deterministic netem/transport/chaos aggregates.
// Per-trial timeline events and wall-clock histograms are worker-local
// and deliberately not reconstructed here.
func (in *Instruments) remotePair(o *PairOutcome) {
	if in == nil || o == nil {
		return
	}
	started := int64(o.Counted() + len(o.Failures) + o.Discards + o.Corrupt)
	in.trialsStarted.Add(started)
	in.trialsCompleted.Add(int64(o.Counted()))
	in.trialsFailed.Add(int64(len(o.Failures)))
	for _, f := range o.Failures {
		switch f.Kind {
		case "panic":
			in.failPanic.Inc()
		case "error":
			in.failError.Inc()
		case "reap":
			in.failReap.Inc()
		case "brownout":
			in.failBrownout.Inc()
		}
	}
	in.trialsDiscarded.Add(int64(o.Discards))
	in.trialsCorrupt.Add(int64(o.Corrupt))
	in.retries.Add(int64(o.Retries))
	if sk := o.Sketches; sk != nil {
		// Sketch mode ships no per-trial data; the summed aggregate
		// carries identical counter totals in one fold, and the
		// sim-duration histogram replays from the duration sketch
		// (exact samples within the buffer cap, bucket representatives
		// beyond it — histograms only see bucketed values anyway).
		in.foldObs(sk.Obs)
		sk.SimSeconds.Each(func(v float64, n int64) {
			for k := int64(0); k < n; k++ {
				in.trialSim.Observe(v)
			}
		})
		return
	}
	for i := range o.Trials {
		in.foldObs(o.Trials[i].Obs)
		in.trialSim.Observe(o.Trials[i].Obs.SimSeconds)
	}
}

// retry records a backoff-scheduled retry.
func (in *Instruments) retry() { // counter only; the ledger carries detail
	if in != nil {
		in.retries.Inc()
	}
}

// pairDone records a pair reaching a final state. Called from the
// scheduler's ordered release path, so pair_done timeline events appear
// in canonical order even under the worker pool — and for remotely
// executed pairs too (fleet results release through the same path), so
// the adaptive stop-reason counters and trials-saved total are uniform
// across local and fleet execution. Fixed-budget pairs carry no
// StopReason and produce exactly the pre-adaptive event stream.
func (in *Instruments) pairDone(st *pairState) {
	if in == nil {
		return
	}
	in.pairsCompleted.Inc()
	o := st.outcome
	detail := "ok"
	if o.Failed {
		in.quarantines.Inc()
		detail = "quarantined"
	} else if o.Unstable {
		detail = "unstable"
	}
	if o.StopReason != "" {
		switch o.StopReason {
		case stats.StopCIWidth:
			in.adaptiveStopCI.Inc()
		case stats.StopStable:
			in.adaptiveStopStable.Inc()
		case stats.StopBudget:
			in.adaptiveStopBudget.Inc()
		}
		if saved := o.Budget - o.Counted(); saved > 0 {
			in.adaptiveSaved.Add(int64(saved))
		}
		detail += " stop=" + o.StopReason
	}
	in.emit(obs.TimelineEvent{Kind: "pair_done", Pair: st.pairLabel(), Detail: detail})
}

// screenTrial records one coarse screening attempt (started and
// classified, from the executing goroutine — the counter is
// commutative, so totals are deterministic for any worker count).
// Screening attempts deliberately stay out of prudentia_trials_*:
// those families reconcile against the published report, which
// screening never enters.
func (in *Instruments) screenTrial(pair string, seed uint64, attempt int, class string) {
	if in == nil {
		return
	}
	in.screenTrials.Inc()
	in.emit(obs.TimelineEvent{Kind: "screen_trial", Pair: pair, Seed: seed, Attempt: attempt,
		Detail: class})
}

// calibrationDone records one service's solo calibration outcome.
func (in *Instruments) calibrationDone(label string, ok bool) {
	if in == nil {
		return
	}
	detail := "failed"
	if ok {
		in.calibrations.Inc()
		detail = "ok"
	}
	in.emit(obs.TimelineEvent{Kind: "calibration_done", Pair: label, Detail: detail})
}

// checkpointSaved records a successful checkpoint flush.
func (in *Instruments) checkpointSaved() {
	if in != nil {
		in.checkpointSaves.Inc()
	}
}

// journalAppend records one durable journal record of n framed bytes.
func (in *Instruments) journalAppend(n int64) {
	if in == nil {
		return
	}
	in.journalRecords.Inc()
	in.journalBytes.Add(n)
}

// journalReplay records one attempt served from the recovered journal
// instead of being re-simulated.
func (in *Instruments) journalReplay() {
	if in != nil {
		in.journalReplayed.Inc()
	}
}

// journalRecovered records the outcome of journal recovery at cycle
// start: how many intact records were found and whether a torn tail
// was truncated.
func (in *Instruments) journalRecovered(records int, tornBytes int64) {
	if in == nil {
		return
	}
	detail := fmt.Sprintf("%d records", records)
	if tornBytes > 0 {
		in.journalTorn.Inc()
		detail = fmt.Sprintf("%d records, %d torn bytes truncated", records, tornBytes)
	}
	in.emit(obs.TimelineEvent{Kind: "journal_recovered", Detail: detail})
}

// breakerTransition records a circuit-breaker state change: a counter
// by destination state, a per-service state gauge (0 closed,
// 1 half-open, 2 open), and a timeline event.
func (in *Instruments) breakerTransition(service string, from, to BreakerState) {
	if in == nil {
		return
	}
	var kind string
	switch to {
	case BreakerOpen:
		in.breakerToOpen.Inc()
		kind = "breaker_open"
	case BreakerHalfOpen:
		in.breakerToHalfOpen.Inc()
		kind = "breaker_halfopen"
	default:
		in.breakerToClosed.Inc()
		kind = "breaker_close"
	}
	in.Registry.Gauge(fmt.Sprintf("prudentia_breaker_state{service=%q}", service)).Set(float64(to))
	in.emit(obs.TimelineEvent{Kind: kind, Pair: service,
		Detail: from.String() + " -> " + to.String()})
}

// breakerProbe records one canary trial against an ejected service.
func (in *Instruments) breakerProbe(service string, ok bool) {
	if in == nil {
		return
	}
	in.breakerProbes.Inc()
	detail := "failed"
	if ok {
		detail = "ok"
	}
	in.emit(obs.TimelineEvent{Kind: "breaker_probe", Pair: service, Detail: detail})
}

// pairSkipped records a pair denied admission because a member's
// breaker is open. Called from the matrix's canonical construction
// path, so the events are ordered for any worker count.
func (in *Instruments) pairSkipped(pair, openService string) {
	if in == nil {
		return
	}
	in.pairsSkipped.Inc()
	in.emit(obs.TimelineEvent{Kind: "pair_skipped", Pair: pair,
		Detail: "breaker open: " + openService})
}

// poolStats records the worker pool's measured busy fraction (busy
// worker-time over elapsed×workers — a wall-clock metric, stripped from
// determinism comparisons). The pool size itself is host configuration
// and lives in the run manifest, not the registry, so snapshots stay
// identical across worker counts.
func (in *Instruments) poolStats(busyFraction float64) {
	if in != nil && busyFraction >= 0 {
		in.poolBusy.Set(busyFraction)
	}
}
