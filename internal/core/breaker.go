package core

import (
	"sort"
	"strings"

	"prudentia/internal/obs"
)

// This file implements per-service circuit breakers: the watchdog's
// graceful-degradation layer for service models that go persistently
// sick (a browned-out backend, a wedged client model). Quarantine
// (PairOutcome.Failed) handles one bad *pair*; a breaker handles one
// bad *service*, which would otherwise burn the full retry budget in
// every pair it appears in — O(catalog) wasted wall-clock per cycle.
//
// Health scoring is aggregated across pairs on the matrix's canonical
// release path, so scores — and therefore trip decisions — are
// byte-identical for any worker count. A breaker's life cycle:
//
//	closed --score ≥ threshold--> open --canary probe--> half-open
//	half-open --probe ok--> closed (score reset)
//	half-open --probe fail--> open
//
// While open, the service's pairs (and its solo calibration) are
// skipped for the setting — rendered as ○○ cells — and the service
// gets exactly one canary trial at the start of each later cycle.
// Admission is decided once per setting, before its matrix starts, and
// persisted in the checkpoint, so mid-matrix trips affect only later
// settings and cycles and resumed cycles skip exactly the same pairs.

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits the service normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one canary probe.
	BreakerHalfOpen
	// BreakerOpen skips every pair containing the service.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "invalid"
}

// parseBreakerState inverts String for checkpoint restore; unknown
// strings restore as closed (fail admitting, not skipping).
func parseBreakerState(s string) BreakerState {
	switch s {
	case "half-open":
		return BreakerHalfOpen
	case "open":
		return BreakerOpen
	}
	return BreakerClosed
}

// DefaultBreakerThreshold is the health-score trip point when
// BreakerSet.Threshold is unset. With the default scoring weights
// (+1 per failed or corrupt attempt, +2 per quarantined pair or failed
// calibration) a service must be implicated in several independent
// incidents within a cycle or two before it is ejected.
const DefaultBreakerThreshold = 5

// scoreDecay halves closed services' scores at each cycle end, so
// isolated incidents age out instead of accumulating forever.
const scoreDecay = 0.5

// BreakerSet tracks one breaker per service. It is not safe for
// concurrent use: every call site sits on the scheduler's canonical
// (single-goroutine) paths — matrix release, cycle start/end — which
// is precisely what keeps trip decisions deterministic. The zero value
// is ready to use.
type BreakerSet struct {
	// Threshold is the score at which a closed breaker opens;
	// DefaultBreakerThreshold when zero.
	Threshold float64

	// OnTransition, if non-nil, observes every state change.
	OnTransition func(service string, from, to BreakerState)

	entries map[string]*breakerEntry
}

type breakerEntry struct {
	state BreakerState
	score float64
}

func (bs *BreakerSet) threshold() float64 {
	if bs.Threshold > 0 {
		return bs.Threshold
	}
	return DefaultBreakerThreshold
}

func (bs *BreakerSet) entry(service string) *breakerEntry {
	if bs.entries == nil {
		bs.entries = make(map[string]*breakerEntry)
	}
	e := bs.entries[service]
	if e == nil {
		e = &breakerEntry{}
		bs.entries[service] = e
	}
	return e
}

// State reports a service's breaker position (closed if never seen).
func (bs *BreakerSet) State(service string) BreakerState {
	if bs == nil || bs.entries == nil {
		return BreakerClosed
	}
	if e := bs.entries[service]; e != nil {
		return e.state
	}
	return BreakerClosed
}

func (bs *BreakerSet) transition(service string, e *breakerEntry, to BreakerState) {
	from := e.state
	if from == to {
		return
	}
	e.state = to
	if bs.OnTransition != nil {
		bs.OnTransition(service, from, to)
	}
}

// penalize adds pts to a service's health score, tripping a closed
// breaker open at the threshold. Open and half-open breakers keep
// accumulating score but do not re-transition (the canary probe owns
// those edges).
func (bs *BreakerSet) penalize(service string, pts float64) {
	if bs == nil || service == "" || pts <= 0 {
		return
	}
	e := bs.entry(service)
	e.score += pts
	if e.state == BreakerClosed && e.score >= bs.threshold() {
		bs.transition(service, e, BreakerOpen)
	}
}

// brownoutMsgPrefix matches the TrialError message RunTrial produces
// for chaos brownouts, whose suffix names the one sick service.
const brownoutMsgPrefix = "chaos: service brownout: "

// scorePair folds one finished pair outcome into the health scores.
// Failed attempts penalize both members (a brownout failure penalizes
// only the named service — the message carries exact attribution);
// corrupt results penalize both; a quarantined pair adds a larger
// penalty to both. Self-pairs count once.
func (bs *BreakerSet) scorePair(o *PairOutcome) {
	if bs == nil || o == nil {
		return
	}
	members := []string{o.Incumbent}
	if o.Contender != "" && o.Contender != o.Incumbent {
		members = append(members, o.Contender)
	}
	for _, f := range o.Failures {
		if f.Kind == "brownout" {
			if svc := strings.TrimPrefix(f.Msg, brownoutMsgPrefix); svc != f.Msg {
				bs.penalize(svc, 1)
				continue
			}
		}
		for _, m := range members {
			bs.penalize(m, 1)
		}
	}
	for _, m := range members {
		bs.penalize(m, float64(o.Corrupt))
		if o.Failed {
			bs.penalize(m, 2)
		}
	}
}

// Penalize adds pts to a member's health score, tripping a closed
// breaker open at the threshold — the exported form of penalize for
// out-of-package supervisors. The fleet coordinator reuses BreakerSet
// keyed by worker name (disconnects and heartbeat timeouts +2, lease
// expiries +1) to quarantine flapping workers the same way the
// watchdog quarantines sick services. Like every other method, it is
// not safe for concurrent use; callers serialize externally.
func (bs *BreakerSet) Penalize(member string, pts float64) { bs.penalize(member, pts) }

// BeginProbe moves an open breaker to half-open for one canary trial
// (exported for out-of-package supervisors; see Penalize).
func (bs *BreakerSet) BeginProbe(member string) { bs.beginProbe(member) }

// ProbeResult settles a half-open breaker: a successful canary closes
// it with a clean score, a failed one re-opens it (exported for
// out-of-package supervisors; see Penalize).
func (bs *BreakerSet) ProbeResult(member string, ok bool) { bs.probeResult(member, ok) }

// Decay ages closed members' scores — the exported form of the
// cycle-end decay for supervisors that own their own cycle boundary.
func (bs *BreakerSet) Decay() { bs.decay() }

// scoreCalibrationFailure penalizes a service whose solo calibration
// exhausted its attempt budget.
func (bs *BreakerSet) scoreCalibrationFailure(service string) {
	bs.penalize(service, 2)
}

// OpenServices lists services whose breakers are currently open, in
// sorted order — the admission denial list a matrix is built with.
func (bs *BreakerSet) OpenServices() []string {
	if bs == nil {
		return nil
	}
	var out []string
	for name, e := range bs.entries {
		if e.state == BreakerOpen {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// beginProbe moves an open breaker to half-open for its canary trial.
func (bs *BreakerSet) beginProbe(service string) {
	e := bs.entry(service)
	bs.transition(service, e, BreakerHalfOpen)
}

// probeResult settles a half-open breaker: a successful canary closes
// it (score reset — the service earned a clean slate), a failed one
// re-opens it.
func (bs *BreakerSet) probeResult(service string, ok bool) {
	e := bs.entry(service)
	if ok {
		e.score = 0
		bs.transition(service, e, BreakerClosed)
		return
	}
	bs.transition(service, e, BreakerOpen)
}

// decay ages closed services' scores at cycle end so old incidents
// stop counting toward the threshold. Entries that decay to nothing
// are dropped.
func (bs *BreakerSet) decay() {
	if bs == nil {
		return
	}
	for name, e := range bs.entries {
		if e.state != BreakerClosed {
			continue
		}
		e.score *= scoreDecay
		if e.score < 0.01 {
			delete(bs.entries, name)
		}
	}
}

// Status snapshots every live breaker in sorted order for checkpoints
// and the run manifest.
func (bs *BreakerSet) Status() []obs.BreakerInfo {
	if bs == nil || len(bs.entries) == 0 {
		return nil
	}
	out := make([]obs.BreakerInfo, 0, len(bs.entries))
	for _, name := range sortedBreakerNames(bs.entries) {
		e := bs.entries[name]
		out = append(out, obs.BreakerInfo{Service: name, State: e.state.String(), Score: e.score})
	}
	return out
}

func sortedBreakerNames(m map[string]*breakerEntry) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Restore replaces the set's state with a checkpointed snapshot, so a
// resumed cycle keeps sick services ejected. Transitions are not
// re-announced (the original process already did).
func (bs *BreakerSet) Restore(infos []obs.BreakerInfo) {
	if bs == nil {
		return
	}
	bs.entries = make(map[string]*breakerEntry, len(infos))
	for _, bi := range infos {
		bs.entries[bi.Service] = &breakerEntry{
			state: parseBreakerState(bi.State),
			score: bi.Score,
		}
	}
}
