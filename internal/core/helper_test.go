package core

import "prudentia/internal/cca"

func ccaV() cca.BBRVariant { return cca.BBRLinux415() }
