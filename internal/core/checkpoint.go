package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"prudentia/internal/chaos"
	"prudentia/internal/obs"
)

// CheckpointSchema identifies the checkpoint format; bump on breaking
// change. Checkpoints written before the field existed carry no schema
// and are accepted as version 1.
const CheckpointSchema = "prudentia.checkpoint/1"

// checkpointSchemaPrefix and checkpointSchemaVersion decompose
// CheckpointSchema for forward-compat checks.
const (
	checkpointSchemaPrefix  = "prudentia.checkpoint/"
	checkpointSchemaVersion = 1
)

// ErrFutureCheckpoint marks a checkpoint written by a newer schema
// version than this build understands. Resuming from it could silently
// misparse fields this build does not know about, so it is rejected
// outright instead of being half-adopted.
var ErrFutureCheckpoint = errors.New("checkpoint schema is newer than this build")

// Checkpoint is the crash-safe serialization of an in-progress watchdog
// cycle: everything completed so far, flushed to disk after every pair.
// Because each pair's trial seeds are pure functions of
// (BaseSeed, pair, attempt), a cycle resumed from a checkpoint replays
// the remaining pairs exactly and produces a CycleResult identical to an
// uninterrupted run.
type Checkpoint struct {
	// Schema is CheckpointSchema; SaveCheckpoint stamps it and
	// LoadCheckpoint rejects future versions (empty is accepted for
	// pre-schema checkpoints).
	Schema string `json:"schema,omitempty"`
	// Cycle is the 1-based cycle number the state belongs to; it scopes
	// the per-cycle seed offset, so resume must reuse it.
	Cycle int `json:"cycle"`
	// Calibration[si] holds setting si's completed solo-calibration map
	// (nil while that setting's calibration is still in progress).
	Calibration []map[string]float64 `json:"calibration"`
	// Pairs[si] maps pairKey → completed outcome for setting si.
	Pairs []map[string]*PairOutcome `json:"pairs"`
	// Breakers snapshots the per-service circuit-breaker state at the
	// last flush, so a resumed cycle restores health scores instead of
	// forgetting every past failure.
	Breakers []obs.BreakerInfo `json:"breakers,omitempty"`
	// Budget[si] maps pairKey → the adaptive trial ceiling allocated by
	// setting si's screening pass (nil until that setting's screening
	// ran). It is the allocation *decision record*: a resumed adaptive
	// cycle adopts it verbatim instead of re-screening, so the stopping
	// ceilings — and with them every stopping decision — cannot be
	// re-litigated mid-cycle. The whole slice is nil on fixed-budget
	// runs, keeping their checkpoints byte-identical to pre-adaptive
	// builds, and nil on checkpoints written by those builds —
	// HasBudgetState distinguishes the two.
	Budget []map[string]int `json:"budget,omitempty"`
	// OpenServices[si] records the admission decision made when setting
	// si's matrix started: the sorted list of services whose breakers
	// were open (possibly empty but non-nil once the setting started).
	// Resume adopts the stored decision verbatim — including skipping
	// the canary probes that already ran — so an interrupted cycle
	// cannot re-litigate admission and diverge from the uninterrupted
	// run.
	OpenServices [][]string `json:"open_services,omitempty"`
}

// newCheckpoint returns an empty checkpoint sized for nSettings.
func newCheckpoint(cycle, nSettings int) *Checkpoint {
	cp := &Checkpoint{
		Cycle:        cycle,
		Calibration:  make([]map[string]float64, nSettings),
		Pairs:        make([]map[string]*PairOutcome, nSettings),
		OpenServices: make([][]string, nSettings),
	}
	for i := range cp.Pairs {
		cp.Pairs[i] = make(map[string]*PairOutcome)
	}
	return cp
}

// HasBudgetState reports whether the checkpoint carries adaptive
// budget allocations — i.e. was written by an adaptive-mode run of a
// build that knows the field. Resuming an adaptive run from a
// checkpoint without budget state would re-screen and could allocate
// different ceilings than the interrupted run used; callers must
// either fall back to fixed budgets (cmd/prudentia does, with a
// warning) or refuse (RunCycle returns ErrCheckpointNoBudget).
func (cp *Checkpoint) HasBudgetState() bool { return cp.Budget != nil }

// ErrCheckpointNoBudget marks an attempt to resume an adaptive cycle
// from a pre-adaptive checkpoint (no budget state). See
// Checkpoint.HasBudgetState.
var ErrCheckpointNoBudget = errors.New("checkpoint carries no adaptive budget state; resume with fixed trials")

// SaveCheckpoint writes the checkpoint atomically and durably: temp
// file in the destination directory, fsync, rename, then fsync of the
// parent directory. A crash mid-write never truncates the previous
// good checkpoint, and — unlike a bare rename, which only survives a
// process crash — the renamed file survives a machine crash too: the
// file fsync persists its contents, the directory fsync persists the
// name pointing at them.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	return SaveCheckpointDisk(path, cp, nil)
}

// SaveCheckpointDisk is SaveCheckpoint with disk-fault injection: the
// temp file's writes and fsync run through the chaos plan (nil = no
// injection), so an injected ENOSPC or torn-at-fsync tear aborts the
// temp file and the rename never happens — the previous good
// checkpoint stays intact, which is exactly the atomic-save property
// the chaos plan exists to prove.
func SaveCheckpointDisk(path string, cp *Checkpoint, disk *chaos.DiskPlan) error {
	cp.Schema = CheckpointSchema
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	rawTmp, err := os.CreateTemp(dir, ".prudentia-ckpt-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmpName := rawTmp.Name()
	tmp := chaos.WrapFile(rawTmp, disk)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is best-effort: some filesystems reject it,
		// and the rename itself is already atomic.
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. The
// schema is probed before the full parse, so a future-version file —
// whose body this build might misread — is rejected with a clear
// ErrFutureCheckpoint rather than a confusing field error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	if err := checkCheckpointSchema(path, probe.Schema); err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	if cp.Cycle <= 0 {
		return nil, fmt.Errorf("core: checkpoint %s has invalid cycle %d", path, cp.Cycle)
	}
	return cp, nil
}

// checkCheckpointSchema validates a checkpoint's schema field,
// distinguishing a future version (upgrade the binary) from a foreign
// file. Empty is accepted: checkpoints predating the field are
// version 1 by definition.
func checkCheckpointSchema(path, got string) error {
	if got == "" || got == CheckpointSchema {
		return nil
	}
	if v, ok := strings.CutPrefix(got, checkpointSchemaPrefix); ok {
		if n, err := strconv.Atoi(v); err == nil && n > checkpointSchemaVersion {
			return fmt.Errorf("core: checkpoint %s is %q, newer than this build's %q: %w (upgrade the binary or delete the checkpoint to start fresh)",
				path, got, CheckpointSchema, ErrFutureCheckpoint)
		}
	}
	return fmt.Errorf("core: checkpoint %s has unknown schema %q (want %q)", path, got, CheckpointSchema)
}
