package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is the crash-safe serialization of an in-progress watchdog
// cycle: everything completed so far, flushed to disk after every pair.
// Because each pair's trial seeds are pure functions of
// (BaseSeed, pair, attempt), a cycle resumed from a checkpoint replays
// the remaining pairs exactly and produces a CycleResult identical to an
// uninterrupted run.
type Checkpoint struct {
	// Cycle is the 1-based cycle number the state belongs to; it scopes
	// the per-cycle seed offset, so resume must reuse it.
	Cycle int `json:"cycle"`
	// Calibration[si] holds setting si's completed solo-calibration map
	// (nil while that setting's calibration is still in progress).
	Calibration []map[string]float64 `json:"calibration"`
	// Pairs[si] maps pairKey → completed outcome for setting si.
	Pairs []map[string]*PairOutcome `json:"pairs"`
}

// newCheckpoint returns an empty checkpoint sized for nSettings.
func newCheckpoint(cycle, nSettings int) *Checkpoint {
	cp := &Checkpoint{
		Cycle:       cycle,
		Calibration: make([]map[string]float64, nSettings),
		Pairs:       make([]map[string]*PairOutcome, nSettings),
	}
	for i := range cp.Pairs {
		cp.Pairs[i] = make(map[string]*PairOutcome)
	}
	return cp
}

// SaveCheckpoint writes the checkpoint atomically (temp file + rename in
// the destination directory), so a crash mid-write never truncates the
// previous good checkpoint.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".prudentia-ckpt-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	if cp.Cycle <= 0 {
		return nil, fmt.Errorf("core: checkpoint %s has invalid cycle %d", path, cp.Cycle)
	}
	return cp, nil
}
