package core

import (
	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// CycleSource is the engine-as-a-library seam the serving layer
// (internal/serve) consumes: everything a long-running daemon needs to
// drive measurement cycles and render their artifacts, without knowing
// it is talking to a *Watchdog — and, crucially, without internal/serve
// ever importing cmd/prudentia. The daemon owns scheduling (when cycles
// run, how submissions queue); the source owns measurement (how a cycle
// executes, checkpoints, journals, and trips breakers).
//
// Implementations are driven from a single scheduler goroutine; none of
// the methods need to be safe for concurrent use with each other.
type CycleSource interface {
	// RunCycle executes one full all-pairs cycle and returns its result.
	// ErrInterrupted means a graceful stop was requested and completed
	// state has been flushed (the daemon exits its campaign loop).
	RunCycle() (*CycleResult, error)
	// SettingConfigs returns the network settings cycles iterate, index-
	// aligned with CycleResult.PerSetting.
	SettingConfigs() []netem.Config
	// Catalog returns the services currently under test, in matrix
	// order.
	Catalog() []services.Service
	// Submit queues a third-party URL for future cycles, gated by an
	// access code (Appendix A). The daemon's submission endpoint applies
	// accepted tenant submissions through here at cycle boundaries.
	Submit(url, accessCode string) error
}

// SettingConfigs returns the watchdog's network settings, index-aligned
// with every CycleResult.PerSetting it produces (CycleSource).
func (w *Watchdog) SettingConfigs() []netem.Config { return w.Settings }

// Catalog returns the watchdog's current service catalog in matrix
// order (CycleSource).
func (w *Watchdog) Catalog() []services.Service { return w.Services }

// Watchdog implements CycleSource (RunCycle and Submit are defined in
// watchdog.go); the assertion keeps the seam honest at compile time.
var _ CycleSource = (*Watchdog)(nil)
