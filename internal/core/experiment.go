// Package core implements the Prudentia watchdog itself — the paper's
// primary contribution: an orchestrator that measures fairness between
// pairs of live services by running them simultaneously over a controlled
// bottleneck, repeating trials until statistically significant, cycling
// round-robin through all service pairs in multiple network settings, and
// publishing MmF-share heatmaps plus QoE reports.
//
// Pairs are independent experiments, so Matrix and Watchdog can fan them
// out to a worker pool (the Workers field): every trial owns a private
// sim.Engine and netem testbed, every trial seed is a pure function of
// (BaseSeed, pair, attempt), and completed pairs are merged back in
// canonical order — heatmaps, checkpoints, and the fault ledger are
// byte-identical for any worker count. See ARCHITECTURE.md for the data
// flow and pairproto.go / parallel.go for the protocol and pool.
package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"prudentia/internal/browser"
	"prudentia/internal/chaos"
	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

// Spec describes a single experiment: one incumbent and (optionally) one
// contender service competing over one emulated network setting.
type Spec struct {
	// Incumbent occupies slot 0; Contender (nil for a solo calibration
	// run, §3.1 "Background Noise") occupies slot 1.
	Incumbent services.Service
	Contender services.Service
	// Net is the emulated bottleneck setting.
	Net netem.Config
	// Duration is the trial length; Warmup and Cooldown are trimmed from
	// the measurement window. The paper runs 10-minute trials and
	// ignores the first and last two minutes (§3.4); DefaultTiming
	// applies those values, QuickTiming a laptop-scale equivalent.
	Duration, Warmup, Cooldown sim.Time
	// Seed makes the trial fully reproducible.
	Seed uint64
	// Client is the browser environment (defaults to the full-fidelity
	// testbed client of §3.3).
	Client *browser.Client
	// SampleQueueEvery enables queue-occupancy sampling (Fig 8); zero
	// disables it.
	SampleQueueEvery sim.Time
	// SampleRateEvery enables per-service throughput series (Fig 4).
	SampleRateEvery sim.Time
	// Chaos, if non-nil, arms the deterministic fault plan for this
	// trial: in-simulation faults on the testbed plus seed-decided
	// trial-level panics/errors/corruption.
	Chaos *chaos.Config
	// Observe, if non-nil, receives the fully-assembled testbed before
	// any traffic starts. The golden-trace conformance harness
	// (internal/sim/golden) uses it to attach the netem packet-lifecycle
	// hooks; trace collectors can use it the same way. It must not start
	// traffic or advance the engine.
	Observe func(*netem.Testbed)
	// Abort, if non-nil, is installed on the trial's engine: setting it
	// true makes an in-progress run panic with sim.Aborted, which the
	// panic barrier converts into a "reap" TrialError. The hung-trial
	// reaper (runTrialBudgeted) owns this flag; most callers leave it
	// nil.
	Abort *atomic.Bool
}

// DefaultTiming applies the paper's trial timing: 10 minutes total,
// first and last 2 minutes ignored.
func (s Spec) DefaultTiming() Spec {
	s.Duration, s.Warmup, s.Cooldown = 10*sim.Minute, 2*sim.Minute, 2*sim.Minute
	return s
}

// QuickTiming applies a compressed trial suitable for tests and laptop
// benchmark runs: 60 seconds with 10-second head/tail trims. Shape-level
// conclusions are unchanged; absolute confidence is lower, which the
// scheduler's trial escalation compensates for.
func (s Spec) QuickTiming() Spec {
	s.Duration, s.Warmup, s.Cooldown = 60*sim.Second, 10*sim.Second, 5*sim.Second
	return s
}

// ScreenTiming applies the coarse-to-fine screening pass's timing: a
// 15-second trial with minimal head/tail trims, roughly a quarter of a
// QuickTiming trial. Screening only ranks pairs by predicted
// unfairness — the ranking feeds budget allocation, never the heatmaps
// — so the lower absolute confidence is acceptable by construction.
func (s Spec) ScreenTiming() Spec {
	s.Duration, s.Warmup, s.Cooldown = 15*sim.Second, 3*sim.Second, 2*sim.Second
	return s
}

// MaxExternalLoss is the external (upstream) loss fraction above which a
// trial is discarded (§3.1: 0.05%).
const MaxExternalLoss = 0.0005

// TrialResult is everything one experiment produced.
type TrialResult struct {
	// Mbps is each slot's delivered throughput over the measurement
	// window (incumbent = 0, contender = 1).
	Mbps [2]float64
	// FairShareMbps is each slot's max-min fair share given the link
	// rate and the services' app-level caps.
	FairShareMbps [2]float64
	// SharePct is the headline number: percentage of MmF share achieved.
	SharePct [2]float64
	// Utilization is total delivered rate over link capacity (Fig 11).
	Utilization float64
	// Loss is each slot's bottleneck drop fraction (Fig 12).
	Loss [2]float64
	// QueueDelay is each slot's mean queueing delay (Fig 13).
	QueueDelay [2]sim.Time
	// ExternalLossRate is upstream (background-noise) loss over the run.
	ExternalLossRate float64
	// Discarded marks trials that exceeded MaxExternalLoss and must be
	// re-run rather than counted (§3.1).
	Discarded bool
	// ServiceStats carries per-slot QoE metrics (§5).
	ServiceStats [2]services.Stats
	// QueueSeries and RateSeries are optional diagnostics.
	QueueSeries []netem.OccupancySample
	RateSeries  []metrics.RatePoint
	// Obs is the trial's deterministic telemetry aggregate, scraped from
	// the testbed after the run (never on the packet path). The obs
	// layer folds it into the registry; because every field is a pure
	// function of the seed, the fold is identical for any worker count.
	Obs TrialObs `json:"obs"`
}

// TrialObs aggregates what one trial's private testbed observed: the
// bottleneck ledger (whole-link totals over both slots), queue high
// water, upstream loss processes, transport rare events, and chaos
// episodes. It is deterministic in the trial seed — wall-clock timing
// lives in the registry's "wall" metrics and the timeline, never here —
// so it can ride on TrialResult through checkpoints and the parallel
// merge without breaking byte-identical determinism.
type TrialObs struct {
	ArrivedPackets   int64 `json:"arrived_pkts"`
	DroppedPackets   int64 `json:"dropped_pkts"`
	DeliveredPackets int64 `json:"delivered_pkts"`
	DeliveredBytes   int64 `json:"delivered_bytes"`
	// OccupancyHighWater is the deepest bottleneck queue depth seen.
	OccupancyHighWater int `json:"occupancy_high_water"`
	// UpstreamSent/ExternalDrops/ChaosDrops mirror the testbed's
	// upstream ledger (noise losses vs injected link-flap losses).
	UpstreamSent  int64 `json:"upstream_sent"`
	ExternalDrops int64 `json:"external_drops"`
	ChaosDrops    int64 `json:"chaos_drops"`
	// Transport rare-event totals across all flows of the trial.
	Retransmits int64 `json:"retransmits"`
	Timeouts    int64 `json:"timeouts"`
	CwndEvents  int64 `json:"cwnd_events"`
	TailProbes  int64 `json:"tail_probes"`
	// Chaos episodes injected during the trial, by kind.
	ChaosFlaps  int64 `json:"chaos_flaps"`
	ChaosSags   int64 `json:"chaos_sags"`
	ChaosStalls int64 `json:"chaos_stalls"`
	// SimSeconds is the trial's simulated duration.
	SimSeconds float64 `json:"sim_seconds"`
}

// scrapeObs fills a TrialObs from a finished trial's testbed.
func scrapeObs(tb *netem.Testbed, duration sim.Time) TrialObs {
	o := TrialObs{
		OccupancyHighWater: tb.Bneck.HighWater(),
		UpstreamSent:       tb.UpstreamSentPackets(),
		ExternalDrops:      tb.ExternalDrops,
		ChaosDrops:         tb.ChaosDrops,
		Retransmits:        tb.TransportRetransmits,
		Timeouts:           tb.TransportTimeouts,
		CwndEvents:         tb.TransportCwndEvents,
		TailProbes:         tb.TransportTailProbes,
		ChaosFlaps:         tb.ChaosFlaps,
		ChaosSags:          tb.ChaosSags,
		ChaosStalls:        tb.ChaosStalls,
		SimSeconds:         duration.Seconds(),
	}
	for slot := 0; slot < netem.MaxServices; slot++ {
		st := tb.Bneck.Stats(slot)
		o.ArrivedPackets += st.ArrivedPackets
		o.DroppedPackets += st.DroppedPackets
		o.DeliveredPackets += st.DeliveredPackets
		o.DeliveredBytes += st.DeliveredBytes
	}
	return o
}

// Validate checks a spec for structural errors.
func (s Spec) Validate() error {
	if s.Incumbent == nil {
		return fmt.Errorf("core: spec requires an incumbent service")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("core: spec requires a positive duration (use DefaultTiming)")
	}
	if s.Warmup+s.Cooldown >= s.Duration {
		return fmt.Errorf("core: warmup %v + cooldown %v leave no measurement window in %v",
			s.Warmup, s.Cooldown, s.Duration)
	}
	return nil
}

// RunTrial executes one experiment and reports its results. The entire
// run is deterministic in (Spec, Seed) — including any chaos faults,
// which are decided by hashing the seed. Injected panics propagate to
// the caller; the scheduler runs trials through runTrialSafe to convert
// them into recorded failures.
func RunTrial(spec Spec) (TrialResult, error) {
	if err := spec.Validate(); err != nil {
		return TrialResult{}, err
	}
	// Brownouts fail the trial before any simulation is built: the
	// service's backend is "down", so there is nothing to measure.
	if spec.Chaos != nil && len(spec.Chaos.Brownouts) > 0 {
		names := []string{spec.Incumbent.Name()}
		if spec.Contender != nil {
			names = append(names, spec.Contender.Name())
		}
		if svc := spec.Chaos.BrownoutFor(names...); svc != "" {
			return TrialResult{}, &TrialError{Kind: "brownout", Seed: spec.Seed,
				Msg: "chaos: service brownout: " + svc}
		}
	}
	fault := spec.Chaos.TrialFault(spec.Seed)
	if fault == chaos.FaultError {
		return TrialResult{}, &TrialError{Kind: "error", Seed: spec.Seed, Msg: "chaos: injected trial error"}
	}
	eng := sim.NewEngine()
	eng.SetAbort(spec.Abort)
	rng := sim.NewRNG(spec.Seed)
	tb := netem.NewTestbed(eng, spec.Net, rng.Split())
	if spec.Chaos != nil {
		// A dedicated RNG keeps the base experiment's streams untouched.
		crng := sim.NewRNG(chaos.StreamSeed(spec.Seed))
		if fault == chaos.FaultPanic {
			at := crng.Duration(spec.Duration)
			eng.Schedule(at, func(now sim.Time) {
				panic(chaos.InjectedPanic{Seed: spec.Seed, At: now})
			})
		}
		spec.Chaos.Arm(eng, tb, crng)
	}
	if spec.Observe != nil {
		spec.Observe(tb)
	}

	client := browser.TestbedClient()
	if spec.Client != nil {
		client = *spec.Client
	}

	if spec.SampleQueueEvery > 0 {
		tb.Bneck.StartSampling(spec.SampleQueueEvery)
	}
	var sampler *metrics.RateSampler
	if spec.SampleRateEvery > 0 {
		sampler = metrics.NewRateSampler(eng, tb.Bneck, spec.SampleRateEvery)
	}

	// Start services with a small jitter so paired control loops do not
	// phase-lock on the simulation grid.
	type started struct {
		inst services.Instance
	}
	var insts [2]*started
	caps := [2]int64{spec.Incumbent.MaxRateBps(), 0}
	if spec.Contender != nil {
		caps[1] = spec.Contender.MaxRateBps()
	}
	for slot, svc := range []services.Service{spec.Incumbent, spec.Contender} {
		if svc == nil {
			continue
		}
		svc := svc
		env := &services.Env{
			Eng:    eng,
			TB:     tb,
			Slot:   slot,
			RNG:    rng.Split(),
			Client: client,
		}
		st := &started{}
		insts[slot] = st
		eng.After(rng.Duration(100*sim.Millisecond), func(sim.Time) {
			st.inst = svc.Start(env)
		})
	}

	// Snapshot bottleneck counters at the window edges.
	var snapStart, snapEnd [2]netem.ServiceStats
	eng.Schedule(spec.Warmup, func(sim.Time) {
		snapStart = [2]netem.ServiceStats{tb.Bneck.Stats(0), tb.Bneck.Stats(1)}
	})
	eng.Schedule(spec.Duration-spec.Cooldown, func(sim.Time) {
		snapEnd = [2]netem.ServiceStats{tb.Bneck.Stats(0), tb.Bneck.Stats(1)}
	})

	eng.RunUntil(spec.Duration)

	window := spec.Duration - spec.Warmup - spec.Cooldown
	res := TrialResult{ExternalLossRate: tb.ExternalLossRate()}
	res.Discarded = res.ExternalLossRate > MaxExternalLoss
	res.Obs = scrapeObs(tb, spec.Duration)

	var win [2]metrics.WindowStats
	for slot := 0; slot < 2; slot++ {
		win[slot] = metrics.Sub(snapEnd[slot], snapStart[slot])
		res.Mbps[slot] = win[slot].ThroughputMbps(window)
		res.Loss[slot] = win[slot].LossRate()
		res.QueueDelay[slot] = win[slot].MeanQueueDelay()
	}
	res.Utilization = metrics.LinkUtilization(
		[2]int64{win[0].Bytes, win[1].Bytes}, spec.Net.RateBps, window)

	fair := metrics.MmFShares(spec.Net.RateBps, caps)
	for slot := 0; slot < 2; slot++ {
		res.FairShareMbps[slot] = fair[slot] / 1e6
		res.SharePct[slot] = metrics.SharePercent(res.Mbps[slot]*1e6, fair[slot])
	}

	for slot, st := range insts {
		if st == nil || st.inst == nil {
			continue
		}
		res.ServiceStats[slot] = st.inst.Stats()
		st.inst.Stop()
	}
	res.QueueSeries = tb.Bneck.Samples()
	if sampler != nil {
		res.RateSeries = sampler.Points
	}
	if fault == chaos.FaultCorrupt {
		applyCorruption(&res, spec.Chaos.Corruption(spec.Seed))
	}
	return res, nil
}

// applyCorruption mangles a result the way a wedged measurement pipeline
// would (garbage counters, sign errors, unit mix-ups). The validity gate
// must catch every kind.
func applyCorruption(res *TrialResult, kind chaos.CorruptKind) {
	switch kind {
	case chaos.CorruptNaNThroughput:
		res.Mbps[0] = math.NaN()
	case chaos.CorruptNegativeThroughput:
		res.Mbps[1] = -res.Mbps[1] - 1
	case chaos.CorruptUtilization:
		res.Utilization = 4.2
	case chaos.CorruptShare:
		res.SharePct[0] = res.SharePct[0]*50 + 1000
	}
}

// Validate is the corrupt-result gate: it rejects metrics no honest
// trial can produce (NaN/negative throughput, loss outside [0,1],
// utilization above the link's capability, shares inconsistent with the
// measured throughput). Rejected results are re-run like
// noise-discarded ones rather than polluting the pair's statistics.
func (r TrialResult) Validate() error {
	for slot := 0; slot < 2; slot++ {
		m := r.Mbps[slot]
		if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
			return fmt.Errorf("core: slot %d throughput %v out of range", slot, m)
		}
		if l := r.Loss[slot]; math.IsNaN(l) || l < 0 || l > 1 {
			return fmt.Errorf("core: slot %d loss %v out of range", slot, l)
		}
		if r.QueueDelay[slot] < 0 {
			return fmt.Errorf("core: slot %d queue delay %v negative", slot, r.QueueDelay[slot])
		}
		if fair := r.FairShareMbps[slot]; fair > 0 {
			want := 100 * r.Mbps[slot] / fair
			if diff := r.SharePct[slot] - want; diff > 1+0.05*want || diff < -(1+0.05*want) {
				return fmt.Errorf("core: slot %d share %.1f%% inconsistent with %.2f Mbps of %.2f fair",
					slot, r.SharePct[slot], r.Mbps[slot], fair)
			}
		}
	}
	if u := r.Utilization; math.IsNaN(u) || u < 0 || u > 1.05 {
		return fmt.Errorf("core: utilization %v out of range", u)
	}
	return nil
}

// runTrialSafe runs a trial with a panic barrier: a panicking trial —
// injected by chaos or a genuine simulator bug — becomes a typed
// *TrialError instead of killing the cycle. This is the watchdog's
// first line of defense; a service that must run unattended for years
// cannot afford to lose a multi-hour cycle to one bad trial.
func runTrialSafe(spec Spec) (res TrialResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ab, ok := r.(sim.Aborted); ok {
				err = &TrialError{Kind: "reap", Seed: spec.Seed,
					Msg: fmt.Sprintf("trial reaped at sim time %v", ab.At)}
				return
			}
			err = &TrialError{Kind: "panic", Seed: spec.Seed, Msg: fmt.Sprint(r)}
		}
	}()
	return RunTrial(spec)
}

// runTrialBudgeted is runTrialSafe under a wall-clock deadline: the
// trial runs on its own goroutine, and if it has not finished within
// budget the reaper trips the engine's abort flag and returns a typed
// "reap" TrialError immediately. The abandoned goroutine exits on its
// own within 1024 events of the flag flip (an eventful hang), or — for
// a hard wedge inside a single event callback — keeps running detached;
// its result, if any ever arrives, is discarded, since nothing else
// references its private engine and testbed. A budget <= 0 disables
// reaping.
func runTrialBudgeted(spec Spec, budget time.Duration) (TrialResult, error) {
	if budget <= 0 {
		return runTrialSafe(spec)
	}
	var abort atomic.Bool
	spec.Abort = &abort
	type outcome struct {
		res TrialResult
		err error
	}
	ch := make(chan outcome, 1) // buffered: a late finisher never blocks
	go func() {
		res, err := runTrialSafe(spec)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-timer.C:
		abort.Store(true)
		return TrialResult{}, &TrialError{Kind: "reap", Seed: spec.Seed,
			Msg: fmt.Sprintf("trial exceeded wall budget %v", budget)}
	}
}

// wallBudget converts the scheduler's WallBudget factor into this
// spec's absolute wall-clock deadline: emulated duration × factor.
// Zero (reaper disabled) if no factor is configured.
func wallBudget(spec Spec, factor float64) time.Duration {
	if factor <= 0 {
		return 0
	}
	return time.Duration(spec.Duration.Seconds() * factor * float64(time.Second))
}

// RunSolo measures a service alone (the calibration runs Prudentia uses
// to detect upstream throttling, §3.1; Table 1's "Max Xput" column).
func RunSolo(svc services.Service, net netem.Config, seed uint64, timing func(Spec) Spec) (TrialResult, error) {
	spec := Spec{Incumbent: svc, Net: net, Seed: seed}
	if timing != nil {
		spec = timing(spec)
	} else {
		spec = spec.DefaultTiming()
	}
	return RunTrial(spec)
}
