package core

import (
	"fmt"

	"prudentia/internal/chaos"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/stats"
)

// SchedulerOptions govern the §3.4 trial-escalation protocol.
type SchedulerOptions struct {
	// MinTrials is the initial batch (paper: 10); more trials run in
	// Step-sized sets up to MaxTrials (paper: 30) until the 95% CI of
	// the median throughput is within ToleranceMbps.
	MinTrials, MaxTrials, Step int
	// ToleranceMbps is the CI half-width target: 0.5 in the
	// highly-constrained setting, 1.5 in the moderately-constrained one.
	ToleranceMbps float64
	// BaseSeed scopes the deterministic seed sequence.
	BaseSeed uint64
	// Timing transforms each trial's Spec (DefaultTiming, QuickTiming,
	// or custom); nil means DefaultTiming.
	Timing func(Spec) Spec
	// MaxDiscards bounds re-runs of noise-discarded (and validity-gate
	// rejected) trials before a pair is marked Unstable.
	MaxDiscards int
	// MaxFailures bounds erroring/panicking attempts before a pair is
	// quarantined (marked Failed); default 3. Failed attempts retry with
	// fresh seeds under capped exponential backoff in scheduler rounds.
	MaxFailures int
	// Chaos, if non-nil, arms the deterministic fault plan on every
	// trial the scheduler runs.
	Chaos *chaos.Config
	// WallBudget is the hung-trial reaper's wall-clock budget factor:
	// each trial may spend at most (emulated duration × WallBudget) of
	// real time before it is reaped and recorded as a typed "reap"
	// failure feeding the retry/quarantine machinery. Zero disables
	// reaping. A simulated trial normally runs orders of magnitude
	// faster than real time, so even a factor well below 1 only fires
	// on genuinely wedged trials.
	WallBudget float64
	// Adaptive, if non-nil, replaces the fixed batch-escalation
	// stopping rule with the adaptive trial-budget subsystem
	// (adaptive.go): a coarse screening pass allocates per-pair trial
	// ceilings, and the sequential stopper ends each pair's trials the
	// moment its verdict is statistically settled. Nil preserves the
	// fixed protocol — and the golden acceptance output — bit for bit.
	Adaptive *AdaptiveOptions
	// SketchStats replaces the store-everything per-pair statistics
	// (PairOutcome.Trials) with mergeable quantile sketches
	// (sketchstats.go): state per pair becomes O(1) in the trial
	// count, and fleet workers ship fixed-size encoded sketches
	// instead of raw samples. Within stats.SketchBufferCap counted
	// trials — which covers every paper budget — sketch queries are
	// bit-identical to the raw-sample statistics, so the verdict
	// matrix and report do not change byte for byte; only the retained
	// state does. False preserves the raw Trials slice exactly as
	// before.
	SketchStats bool
}

// IsZero reports whether no field was set. Watchdog.RunCycle applies
// the per-setting PaperOptions only in that case — a caller who sets
// any field (for example only Timing) keeps their options, with the
// remaining fields defaulted. WallBudget, Adaptive, and SketchStats
// are deliberately excluded: the reaper is a supervision knob, the
// adaptive stopper a budget policy, and the sketch switch a statistics
// representation — all orthogonal to the measurement protocol — so
// setting only them still gets the per-setting paper options (RunCycle
// carries all three over).
func (o SchedulerOptions) IsZero() bool {
	return o.MinTrials == 0 && o.MaxTrials == 0 && o.Step == 0 &&
		o.ToleranceMbps == 0 && o.BaseSeed == 0 && o.Timing == nil &&
		o.MaxDiscards == 0 && o.MaxFailures == 0 && o.Chaos == nil
}

// PaperOptions returns the per-setting options the paper uses.
func PaperOptions(net netem.Config) SchedulerOptions {
	tol := 1.5
	if net.RateBps <= 10_000_000 {
		tol = 0.5
	}
	return SchedulerOptions{
		MinTrials: 10, MaxTrials: 30, Step: 10,
		ToleranceMbps: tol,
		MaxDiscards:   10,
		MaxFailures:   3,
	}
}

// QuickOptions returns a laptop-scale configuration: fewer, shorter
// trials with a proportionally looser CI target.
func QuickOptions(net netem.Config) SchedulerOptions {
	o := PaperOptions(net)
	o.MinTrials, o.MaxTrials, o.Step = 3, 9, 3
	o.ToleranceMbps *= 3
	o.Timing = Spec.QuickTiming
	return o
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.MinTrials == 0 {
		o.MinTrials = 10
	}
	if o.MaxTrials == 0 {
		o.MaxTrials = 30
	}
	if o.Step == 0 {
		o.Step = 10
	}
	if o.ToleranceMbps == 0 {
		o.ToleranceMbps = 1.5
	}
	if o.MaxDiscards == 0 {
		o.MaxDiscards = 10
	}
	if o.MaxFailures == 0 {
		o.MaxFailures = 3
	}
	if o.Adaptive != nil {
		o.Adaptive = o.Adaptive.withDefaults()
	}
	return o
}

// maxBackoffRounds caps the exponential retry backoff (in scheduler
// rounds, i.e. virtual attempts the pair sits out).
const maxBackoffRounds = 8

// backoffRounds returns the capped exponential backoff after the n-th
// failure (1-based): 1, 2, 4, 8, 8, ...
func backoffRounds(n int) int {
	if n <= 0 {
		return 0
	}
	if n > 4 {
		return maxBackoffRounds
	}
	return 1 << (n - 1)
}

// PairOutcome aggregates all counted trials of one service pair. One
// experiment yields two numbers (§2.2): slot 0 is the incumbent's view,
// slot 1 the contender's, so a single pair fills two heatmap cells.
type PairOutcome struct {
	Incumbent, Contender string
	Trials               []TrialResult
	// Discards counts noise-discarded (re-run) trials.
	Discards int
	// Corrupt counts trials the validity gate rejected (re-run like
	// discards; Discards+Corrupt share the MaxDiscards budget).
	Corrupt int
	// Unstable marks pairs that exhausted MaxTrials without meeting the
	// CI criterion — the paper's Obs 15 services (OneDrive, Vimeo).
	Unstable bool
	// Failed marks quarantined pairs: MaxFailures attempts errored or
	// panicked, so the pair is excluded from this cycle's statistics
	// and its heatmap cells render as ××.
	Failed bool
	// Skipped marks pairs denied admission because a member service's
	// circuit breaker was open at matrix start: no trials ran at all,
	// and the heatmap cells render as ○○ (degraded, not failed).
	Skipped bool
	// Retries counts failed attempts that were retried with fresh seeds.
	Retries int
	// Failures records every failed attempt for the artifact ledger.
	Failures []TrialFailure
	// StopReason records why the adaptive sequential stopper ended the
	// pair (stats.StopCIWidth, StopStable, or StopBudget). Empty on
	// fixed-budget runs, so their checkpoints and artifacts are
	// unchanged byte for byte.
	StopReason string `json:"stop_reason,omitempty"`
	// Budget is the pair's allocated trial ceiling under adaptive
	// budgets (zero on fixed-budget runs).
	Budget int `json:"budget,omitempty"`
	// Sketches, under SchedulerOptions.SketchStats, replaces Trials as
	// the pair's statistics state: O(1) mergeable quantile sketches
	// per metric plus the summed telemetry aggregate. Nil on
	// exact-sample runs, so their checkpoints and wire format are
	// unchanged byte for byte.
	Sketches *PairSketches `json:"sketches,omitempty"`
}

// Counted returns the number of counted trials regardless of the
// statistics representation: the sketch count under SketchStats, the
// raw slice length otherwise. All "how many trials entered the
// statistic" logic goes through here.
func (p *PairOutcome) Counted() int {
	if p.Sketches != nil {
		return p.Sketches.N
	}
	return len(p.Trials)
}

// mbps returns the per-trial throughput series for one slot.
func (p *PairOutcome) mbps(slot int) []float64 {
	out := make([]float64, len(p.Trials))
	for i, t := range p.Trials {
		out[i] = t.Mbps[slot]
	}
	return out
}

// SharePcts returns the per-trial MmF share percentages for one slot.
func (p *PairOutcome) SharePcts(slot int) []float64 {
	out := make([]float64, len(p.Trials))
	for i, t := range p.Trials {
		out[i] = t.SharePct[slot]
	}
	return out
}

// MedianSharePct is the heatmap cell value for a slot.
func (p *PairOutcome) MedianSharePct(slot int) float64 {
	if p.Sketches != nil {
		return p.Sketches.SharePct[slot].Median()
	}
	return stats.Median(p.SharePcts(slot))
}

// IQRSharePct is the error bar for a slot.
func (p *PairOutcome) IQRSharePct(slot int) float64 {
	if p.Sketches != nil {
		return p.Sketches.SharePct[slot].IQR()
	}
	return stats.IQR(p.SharePcts(slot))
}

// MedianMbps is the median measured throughput for a slot.
func (p *PairOutcome) MedianMbps(slot int) float64 {
	if p.Sketches != nil {
		return p.Sketches.Mbps[slot].Median()
	}
	return stats.Median(p.mbps(slot))
}

// MedianUtilization is the Fig 11 cell value.
func (p *PairOutcome) MedianUtilization() float64 {
	if p.Sketches != nil {
		return p.Sketches.Utilization.Median()
	}
	xs := make([]float64, len(p.Trials))
	for i, t := range p.Trials {
		xs[i] = t.Utilization
	}
	return stats.Median(xs)
}

// MedianLoss is the Fig 12 cell value for a slot.
func (p *PairOutcome) MedianLoss(slot int) float64 {
	if p.Sketches != nil {
		return p.Sketches.Loss[slot].Median()
	}
	xs := make([]float64, len(p.Trials))
	for i, t := range p.Trials {
		xs[i] = t.Loss[slot]
	}
	return stats.Median(xs)
}

// MedianQueueDelay is the Fig 13 cell value for a slot.
func (p *PairOutcome) MedianQueueDelay(slot int) sim.Time {
	if p.Sketches != nil {
		return sim.Time(p.Sketches.QueueDelaySec[slot].Median() * float64(sim.Second))
	}
	xs := make([]float64, len(p.Trials))
	for i, t := range p.Trials {
		xs[i] = t.QueueDelay[slot].Seconds()
	}
	return sim.Time(stats.Median(xs) * float64(sim.Second))
}

// ShareCI returns the 95% order-statistic confidence interval on one
// slot's median MmF share percentage — the band the adaptive stopper
// watches and the sweep harness exports. Zero-width at the sample when
// fewer than three trials counted.
func (p *PairOutcome) ShareCI(slot int) (lo, hi float64) {
	if p.Counted() == 0 {
		return 0, 0
	}
	if p.Sketches != nil {
		return p.Sketches.SharePct[slot].MedianCI()
	}
	return stats.MedianCI(p.SharePcts(slot))
}

// ciSatisfied applies the §3.4 stopping rule to both slots' throughput.
func (p *PairOutcome) ciSatisfied(tol float64) bool {
	if p.Counted() == 0 {
		return false
	}
	if p.Sketches != nil {
		return p.Sketches.Mbps[0].CIWithin(tol) && p.Sketches.Mbps[1].CIWithin(tol)
	}
	return stats.CIWithin(p.mbps(0), tol) && stats.CIWithin(p.mbps(1), tol)
}

// RunPair runs the full protocol for one pair in one network setting.
// Trial errors and panics never propagate: they are recorded on the
// outcome, retried with fresh seeds, and quarantine the pair (Failed)
// after MaxFailures. The only returned errors are structural
// (impossible specs). To observe the per-attempt fault ledger, use
// RunPairObserved.
func RunPair(incumbent, contender services.Service, net netem.Config, opts SchedulerOptions) (*PairOutcome, error) {
	return RunPairObserved(incumbent, contender, net, opts, nil)
}

// RunPairObserved is RunPair with a live fault-ledger hook: onFault (if
// non-nil) receives one FaultEvent per failed, discarded, or corrupt
// attempt, plus retry/quarantine transitions — the same stream
// Matrix.OnFault delivers. Recording is unconditional: every attempt is
// both kept on the outcome and emitted to the ledger before any return
// path, including the attempt that quarantines the pair or exhausts
// MaxDiscards. (Earlier versions of RunPair bypassed the ledger
// entirely and returned on terminal attempts without reporting them;
// it now shares the matrix scheduler's pairProtocol, so the two paths
// cannot drift.)
func RunPairObserved(incumbent, contender services.Service, net netem.Config, opts SchedulerOptions, onFault func(FaultEvent)) (*PairOutcome, error) {
	if incumbent == nil {
		return nil, fmt.Errorf("core: RunPair requires an incumbent service")
	}
	opts = opts.withDefaults()
	st := &pairState{
		a: 0, b: 1,
		key:     pairKey(0, 1),
		seedID:  pairSeedID(0, 1),
		svcA:    incumbent,
		svcB:    contender,
		target:  opts.MinTrials,
		outcome: &PairOutcome{Incumbent: incumbent.Name()},
	}
	if opts.SketchStats {
		st.outcome.Sketches = newPairSketches()
	}
	if contender != nil {
		st.outcome.Contender = contender.Name()
	}
	emit := onFault
	if emit == nil {
		emit = func(FaultEvent) {}
	}
	pp := &pairProtocol{net: net, opts: opts, emit: emit}
	pp.run(st, nil)
	return st.outcome, nil
}
