package core

import (
	"testing"
	"time"

	"prudentia/internal/netem"
)

// BenchmarkAdaptiveMatrix measures the adaptive subsystem's headline
// claim: trials per cycle and simulated-seconds throughput for the
// same matrix under the fixed §3.4 protocol and under adaptive
// stopping. scripts/bench.sh reduces the two sub-benchmarks into
// BENCH_adaptive.json, including the trials-saved percentage the
// acceptance criterion tracks.
func BenchmarkAdaptiveMatrix(b *testing.B) {
	net := netem.HighlyConstrained()
	for _, mode := range []string{"fixed", "adaptive"} {
		b.Run("mode="+mode, func(b *testing.B) {
			opts := adaptiveTestOpts(net)
			if mode == "adaptive" {
				opts.Adaptive = &AdaptiveOptions{}
			}
			var trials int
			var simSecs float64
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := &Matrix{Services: threeServices(), Net: net, Opts: opts}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				trials, simSecs = 0, 0
				for _, p := range res.Pairs {
					trials += len(p.Trials)
					for _, tr := range p.Trials {
						simSecs += tr.Obs.SimSeconds
					}
				}
			}
			wall := time.Since(start).Seconds()
			b.ReportMetric(float64(trials), "trials/cycle")
			b.ReportMetric(simSecs*float64(b.N)/wall, "simsec/wallsec")
		})
	}
}
