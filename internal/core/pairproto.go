package core

import (
	"fmt"

	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/stats"
)

// This file holds the single-pair trial protocol (§3.4) shared by the
// matrix scheduler and RunPair. One pairState is driven to completion by
// one pairProtocol; because every trial seed is a pure function of
// (BaseSeed, pair identity, attempt index), the protocol's outcome is
// independent of *when* or *where* (which goroutine) it executes — the
// property the parallel matrix engine in parallel.go is built on.

// pairState tracks one unordered pair through the trial protocol.
type pairState struct {
	a, b     int // indices into the catalog (a <= b)
	key      string
	seedID   uint64
	outcome  *PairOutcome
	target   int // trials to run before the next CI evaluation
	budget   int // adaptive trial ceiling (0 = opts.MaxTrials)
	attempt  int // every attempt: counted, discarded, corrupt, or failed
	cooldown int // protocol rounds to sit out (retry backoff)
	done     bool
	svcA     services.Service
	svcB     services.Service

	// Sketch-mode adaptive-stopper state (transient: both are
	// reconstructed deterministically by the protocol itself, so they
	// never ride a checkpoint — only completed pairs checkpoint, and
	// journal replay re-runs the protocol from attempt 0).
	//
	// evalN is the counted-trial count at the last adaptive
	// evaluation, making re-evaluations after non-counted attempts
	// no-ops (the slice path gets the same idempotence by recomputing
	// an unchanged prefix).
	evalN int
	// ring holds the Fair verdict recorded after each of the most
	// recent counted trials (at most StableK−1 entries), replacing the
	// slice path's prefix recomputation one-for-one: entry i is
	// exactly the verdict the recomputation would recompute for that
	// prefix, because the verdict is a pure function of the prefix.
	ring []bool
}

// pairLabel names a pair for ledger events and progress lines.
func (st *pairState) pairLabel() string {
	return st.outcome.Incumbent + " vs " + st.outcome.Contender
}

// pairProtocol executes the §3.4 trial-escalation protocol for one pair
// in one network setting. It owns no shared state: every trial builds a
// private sim.Engine and netem testbed from its seed, and all ledger
// traffic goes through emit, so any number of pairProtocols may run
// concurrently on the same catalog.
type pairProtocol struct {
	net  netem.Config
	opts SchedulerOptions
	// emit receives every ledger event the protocol produces — failures,
	// retries, discards, corrupt results, quarantines. Recording is
	// unconditional: every attempt is emitted before any return path,
	// including the attempt that quarantines the pair or marks it
	// Unstable. Must be non-nil (use a no-op func for no listener).
	emit func(FaultEvent)
	// ins, when non-nil, receives live telemetry (counters, duration
	// histograms, timeline events) for every attempt. Unlike emit, which
	// buffers under the worker pool to preserve canonical ledger order,
	// instruments record from the executing goroutine: counters are
	// commutative (deterministic totals for any worker count) and
	// timeline events are wall-stamped observability data, not part of
	// the deterministic output contract.
	ins *Instruments
	// sink, when non-nil, is the write-ahead trial journal: every
	// executed attempt is recorded, and attempts recovered from a
	// previous process are replayed by seed instead of re-simulated.
	sink *journalSink
	// batch, when non-nil, is the pair-local accumulator batching the
	// hottest counter traffic (trial ledger, netem packet aggregates)
	// into one commit per pair instead of a dozen atomic adds per
	// trial. Committed totals are identical either way — counter
	// addition is commutative — so batching changes cost, never
	// values. Lazily created in run from ins.
	batch *trialAccum
}

// attemptResult is one executed (or journal-replayed) attempt after
// classification. Exactly the fields the scheduler needs survive:
// counted and noise-discarded outcomes are distinguished by class,
// corrupt results keep only their validity error (their metrics can
// hold NaN, which neither the journal nor anyone else should carry),
// and failures keep their typed kind and message.
type attemptResult struct {
	// class is "ok", "discard", "corrupt", or "fail".
	class string
	// res is the full result for class "ok" only.
	res TrialResult
	// detail is the ledger detail line for "discard" (external-loss
	// summary) and "corrupt" (validity error).
	detail string
	// failKind/failMsg carry the typed failure for class "fail".
	failKind, failMsg string
	// simSeconds is the simulated duration, for the duration histogram
	// (zero for failures, matching the pre-journal behaviour).
	simSeconds float64
	// replayed marks attempts served from the journal.
	replayed bool
}

// classifyAttempt folds a raw trial outcome into an attemptResult.
// Classification happens exactly once, at execution time — replayed
// attempts reuse the journaled class instead of re-deriving it, so a
// resumed cycle cannot re-litigate a past decision.
func classifyAttempt(res TrialResult, err error, seed uint64) attemptResult {
	if err != nil {
		te := asTrialError(err, seed)
		return attemptResult{class: "fail", failKind: te.Kind, failMsg: te.Msg}
	}
	if res.Discarded {
		return attemptResult{class: "discard",
			detail:     fmt.Sprintf("external loss %.4f%%", 100*res.ExternalLossRate),
			simSeconds: res.Obs.SimSeconds}
	}
	if verr := res.Validate(); verr != nil {
		return attemptResult{class: "corrupt", detail: verr.Error(), simSeconds: res.Obs.SimSeconds}
	}
	return attemptResult{class: "ok", res: res, simSeconds: res.Obs.SimSeconds}
}

// attemptFromEntry rebuilds an attemptResult from a journaled entry.
func attemptFromEntry(e journalEntry) (attemptResult, bool) {
	ar := attemptResult{class: e.Kind, detail: e.Detail,
		failKind: e.FailKind, failMsg: e.Detail,
		simSeconds: e.SimSeconds, replayed: true}
	switch e.Kind {
	case "ok":
		if err := jsonUnmarshal(e.Result, &ar.res); err != nil {
			return attemptResult{}, false
		}
		ar.simSeconds = ar.res.Obs.SimSeconds
	case "discard", "corrupt", "fail":
	default:
		return attemptResult{}, false
	}
	return ar, true
}

// executeAttempt runs one attempt through the reaper and the journal:
// a journaled seed replays without simulating; a fresh execution is
// classified once and journaled. It performs no metric counting —
// callers own their ledgers, which is what keeps calibration attempts
// out of the prudentia_trials_* counters.
func executeAttempt(sink *journalSink, ins *Instruments, opts SchedulerOptions,
	spec Spec, pair string, attempt int) attemptResult {
	if sink != nil {
		if e, ok := sink.lookup(spec.Seed); ok {
			if ar, valid := attemptFromEntry(e); valid {
				ins.journalReplay()
				return ar
			}
		}
	}
	res, err := runTrialBudgeted(spec, wallBudget(spec, opts.WallBudget))
	ar := classifyAttempt(res, err, spec.Seed)
	if sink != nil {
		e := journalEntry{Seed: spec.Seed, Pair: pair, Attempt: attempt, Kind: ar.class,
			Detail: ar.detail, FailKind: ar.failKind, SimSeconds: ar.simSeconds}
		if ar.class == "fail" {
			e.Detail = ar.failMsg
			e.SimSeconds = 0
		}
		ok := true
		if ar.class == "ok" {
			e.Result, ok = marshalResult(&ar.res)
			e.SimSeconds = 0 // carried inside Result
		}
		if ok {
			sink.record(e, ins)
		}
	}
	return ar
}

// run drives st until the pair reaches a final state, polling interrupt
// (if non-nil) before every trial. It returns false if interrupted, in
// which case the outcome is incomplete and must not be treated as final.
func (pp *pairProtocol) run(st *pairState, interrupt func() bool) bool {
	if pp.batch == nil {
		pp.batch = pp.ins.newTrialAccum() // nil ins → nil batch (unbatched no-op)
	}
	// Flush on every exit so an interrupted drain still commits the
	// deltas its counted attempts accumulated.
	defer pp.batch.flush()
	for !st.done {
		if interrupt != nil && interrupt() {
			return false
		}
		if st.cooldown > 0 {
			st.cooldown--
			continue
		}
		pp.runOne(st)
		pp.evaluate(st)
	}
	return true
}

// runOne executes a single counted trial for the pair, retrying
// noise-discarded and validity-gate-rejected trials immediately (each
// with a fresh seed). A failing attempt — injected error or recovered
// panic — records a TrialFailure and returns so the pair backs off;
// MaxFailures quarantines the pair.
func (pp *pairProtocol) runOne(st *pairState) {
	for {
		seed := trialSeed(pp.opts.BaseSeed, st.seedID, st.attempt)
		attempt := st.attempt
		st.attempt++
		spec := Spec{
			Incumbent: st.svcA,
			Contender: st.svcB,
			Net:       pp.net,
			Seed:      seed,
			Chaos:     pp.opts.Chaos,
		}
		if pp.opts.Timing != nil {
			spec = pp.opts.Timing(spec)
		} else {
			spec = spec.DefaultTiming()
		}
		start := pp.ins.now()
		pp.ins.trialStartBatched(pp.batch, st.pairLabel(), seed, attempt)
		ar := executeAttempt(pp.sink, pp.ins, pp.opts, spec, st.pairLabel(), attempt)
		switch ar.class {
		case "fail":
			pp.ins.trialFail(st.pairLabel(), seed, attempt, ar.failKind, ar.failMsg, 0, start)
			st.outcome.Failures = append(st.outcome.Failures,
				TrialFailure{Attempt: attempt, Seed: seed, Kind: ar.failKind, Msg: ar.failMsg})
			pp.emit(FaultEvent{Pair: st.pairLabel(), Kind: ar.failKind, Attempt: attempt, Seed: seed, Detail: ar.failMsg})
			if len(st.outcome.Failures) >= pp.opts.MaxFailures {
				st.outcome.Failed = true
				st.done = true
				pp.emit(FaultEvent{Pair: st.pairLabel(), Kind: "quarantine", Attempt: attempt, Seed: seed,
					Detail: fmt.Sprintf("%d failures", len(st.outcome.Failures))})
			} else {
				st.outcome.Retries++
				pp.ins.retry()
				st.cooldown = backoffRounds(len(st.outcome.Failures))
				pp.emit(FaultEvent{Pair: st.pairLabel(), Kind: "retry", Attempt: attempt, Seed: seed,
					Detail: fmt.Sprintf("backoff %d rounds", st.cooldown)})
			}
			return
		case "discard":
			pp.ins.trialDiscard(st.pairLabel(), seed, attempt, ar.simSeconds, start)
			st.outcome.Discards++
			pp.emit(FaultEvent{Pair: st.pairLabel(), Kind: "discard", Attempt: attempt, Seed: seed,
				Detail: ar.detail})
			if st.outcome.Discards+st.outcome.Corrupt > pp.opts.MaxDiscards {
				st.outcome.Unstable = true
				st.done = true
				return
			}
			continue
		case "corrupt":
			pp.ins.trialCorrupt(st.pairLabel(), seed, attempt, ar.simSeconds, ar.detail, start)
			st.outcome.Corrupt++
			pp.emit(FaultEvent{Pair: st.pairLabel(), Kind: "corrupt", Attempt: attempt, Seed: seed, Detail: ar.detail})
			if st.outcome.Discards+st.outcome.Corrupt > pp.opts.MaxDiscards {
				st.outcome.Unstable = true
				st.done = true
				return
			}
			continue
		}
		pp.ins.trialOKBatched(pp.batch, st.pairLabel(), seed, attempt, &ar.res, start)
		if st.outcome.Sketches != nil {
			st.outcome.Sketches.observe(&ar.res)
		} else {
			st.outcome.Trials = append(st.outcome.Trials, ar.res)
		}
		return
	}
}

// evaluate applies the stopping rule: the adaptive sequential stopper
// after every counted trial when SchedulerOptions.Adaptive is armed,
// the fixed §3.4 batch-boundary rule otherwise. Both read only the
// counted-trial prefix on the outcome — failed, reaped, discarded, and
// corrupt attempts never enter the stopping statistic (they are
// handled by the retry/quarantine machinery in runOne), so chaos
// cannot perturb a stopping decision, only delay it.
func (pp *pairProtocol) evaluate(st *pairState) {
	if st.done {
		return
	}
	if ad := pp.opts.Adaptive; ad != nil {
		pp.evaluateAdaptive(st, ad)
		return
	}
	n := st.outcome.Counted()
	if n < st.target {
		return
	}
	if st.outcome.ciSatisfied(pp.opts.ToleranceMbps) {
		st.done = true
	} else if st.target < pp.opts.MaxTrials {
		st.target += pp.opts.Step
		if st.target > pp.opts.MaxTrials {
			st.target = pp.opts.MaxTrials
		}
	} else {
		st.outcome.Unstable = true
		st.done = true
	}
}

// evaluateAdaptive applies the sequential stopper (internal/stats) to
// the pair's accumulated share series. The decision is a pure function
// of that series and the pair's allocated ceiling, so resumed, fleet,
// and serial executions of the same pair stop identically. A pair that
// exhausts the scheduler-wide MaxTrials without converging is marked
// Unstable exactly as under the fixed rule; one cut short by a smaller
// screening allocation is merely budget-stopped — it was never given
// full depth, so it earns no instability verdict.
func (pp *pairProtocol) evaluateAdaptive(st *pairState, ad *AdaptiveOptions) {
	pol := ad.policy(st.budget, pp.opts.MaxTrials)
	var d stats.StopDecision
	if sk := st.outcome.Sketches; sk != nil {
		// Sketch mode: the stopper reads sketch quantiles, and the
		// stability rule reads the recorded verdict ring instead of
		// recomputing prefixes. Evaluate only when a counted trial
		// actually arrived — the slice path's re-evaluation of an
		// unchanged prefix is a no-op by purity, and skipping it here
		// keeps the ring one-entry-per-prefix.
		if sk.N == st.evalN {
			return
		}
		st.evalN = sk.N
		d = pol.EvaluateSketch(sk.SharePct[0], sk.SharePct[1], st.ring)
		if pol.StableK > 1 {
			st.ring = append(st.ring, d.Fair)
			if len(st.ring) > pol.StableK-1 {
				st.ring = st.ring[1:]
			}
		}
	} else {
		d = pol.Evaluate(st.outcome.SharePcts(0), st.outcome.SharePcts(1))
	}
	if !d.Stop {
		return
	}
	st.outcome.StopReason = d.Reason
	st.outcome.Budget = pol.MaxTrials
	if d.Reason == stats.StopBudget && pol.MaxTrials >= pp.opts.MaxTrials {
		st.outcome.Unstable = true
	}
	st.done = true
}
