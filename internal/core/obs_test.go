package core

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"prudentia/internal/netem"
	"prudentia/internal/obs"
)

// obsWatchdog builds a small chaos-enabled watchdog wired to a fresh
// registry and timeline, over the three iPerf baselines in the
// highly-constrained setting.
func obsWatchdog(workers int, tl *obs.Timeline) (*Watchdog, *obs.Registry) {
	net := netem.HighlyConstrained()
	opts := fastOpts(net)
	opts.BaseSeed = 77
	opts.Chaos = hotChaos()
	reg := obs.NewRegistry()
	w := &Watchdog{
		Services: threeServices(),
		Settings: []netem.Config{net},
		Opts:     opts,
		Workers:  workers,
		Obs:      NewInstruments(reg, tl),
	}
	return w, reg
}

// TestObsSnapshotDeterminism: two identical seeded cycles — and the same
// cycle at different worker counts — must produce identical metric
// snapshots once wall-clock metrics are stripped. This is the registry's
// core contract: integer/fixed-point state is commutative, so live
// emission from worker goroutines cannot perturb the totals.
func TestObsSnapshotDeterminism(t *testing.T) {
	run := func(workers int) obs.Snapshot {
		w, reg := obsWatchdog(workers, nil)
		if _, err := w.RunCycle(); err != nil {
			t.Fatalf("cycle (workers=%d): %v", workers, err)
		}
		return reg.Snapshot().StripWallClock()
	}
	serial := run(1)
	if again := run(1); !serial.Equal(again) {
		t.Fatal("re-running an identical seeded cycle changed the snapshot")
	}
	for _, nw := range []int{2, 4} {
		if par := run(nw); !serial.Equal(par) {
			t.Fatalf("snapshot at %d workers differs from serial", nw)
		}
	}
	// Sanity: the stripped snapshot is not vacuously empty.
	if serial.Counters["prudentia_trials_completed_total"] == 0 {
		t.Fatal("determinism check ran zero trials")
	}
}

// TestObsManifestReconciliation recomputes every deterministic counter
// family from the CycleResult and requires exact agreement with the
// manifest snapshot — the acceptance criterion that the telemetry
// reconciles with the published report rather than drifting beside it.
func TestObsManifestReconciliation(t *testing.T) {
	var buf bytes.Buffer
	tl := obs.NewTimeline(&buf)
	w, reg := obsWatchdog(4, tl)
	w.CheckpointPath = filepath.Join(t.TempDir(), "cp.json")
	cr, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	m := w.BuildManifest(cr, reg)
	c := m.Metrics.Counters

	// Recompute the trial ledger from the cycle result.
	var completed, failed, discarded, corrupt, retries, quarantined, pairs int64
	var agg TrialObs
	for _, ms := range cr.PerSetting {
		for _, p := range ms.Pairs {
			pairs++
			completed += int64(len(p.Trials))
			failed += int64(len(p.Failures))
			discarded += int64(p.Discards)
			corrupt += int64(p.Corrupt)
			retries += int64(p.Retries)
			if p.Failed {
				quarantined++
			}
			for _, tr := range p.Trials {
				agg.ArrivedPackets += tr.Obs.ArrivedPackets
				agg.DroppedPackets += tr.Obs.DroppedPackets
				agg.DeliveredPackets += tr.Obs.DeliveredPackets
				agg.DeliveredBytes += tr.Obs.DeliveredBytes
				agg.ExternalDrops += tr.Obs.ExternalDrops
				agg.ChaosDrops += tr.Obs.ChaosDrops
				agg.Retransmits += tr.Obs.Retransmits
				agg.Timeouts += tr.Obs.Timeouts
				agg.CwndEvents += tr.Obs.CwndEvents
				agg.TailProbes += tr.Obs.TailProbes
				agg.ChaosFlaps += tr.Obs.ChaosFlaps
				agg.ChaosSags += tr.Obs.ChaosSags
				agg.ChaosStalls += tr.Obs.ChaosStalls
			}
		}
	}
	var calibrations int64
	for _, cal := range cr.Calibration {
		calibrations += int64(len(cal))
	}

	check := func(name string, want int64) {
		t.Helper()
		if got := c[name]; got != want {
			t.Errorf("%s = %d, want %d (recomputed from CycleResult)", name, got, want)
		}
	}
	check("prudentia_trials_completed_total", completed)
	check("prudentia_trials_failed_total", failed)
	check("prudentia_trials_discarded_total", discarded)
	check("prudentia_trials_corrupt_total", corrupt)
	check("prudentia_trials_started_total", completed+failed+discarded+corrupt)
	check("prudentia_trial_retries_total", retries)
	check("prudentia_pair_quarantines_total", quarantined)
	check("prudentia_pairs_completed_total", pairs)
	check("prudentia_calibrations_total", calibrations)
	check("prudentia_netem_arrived_packets_total", agg.ArrivedPackets)
	check("prudentia_netem_dropped_packets_total", agg.DroppedPackets)
	check("prudentia_netem_delivered_packets_total", agg.DeliveredPackets)
	check("prudentia_netem_delivered_bytes_total", agg.DeliveredBytes)
	check("prudentia_netem_external_drops_total", agg.ExternalDrops)
	check("prudentia_netem_chaos_drops_total", agg.ChaosDrops)
	check("prudentia_transport_retransmits_total", agg.Retransmits)
	check("prudentia_transport_timeouts_total", agg.Timeouts)
	check("prudentia_transport_cwnd_events_total", agg.CwndEvents)
	check("prudentia_transport_tail_probes_total", agg.TailProbes)
	check(`prudentia_chaos_episodes_total{kind="flap"}`, agg.ChaosFlaps)
	check(`prudentia_chaos_episodes_total{kind="sag"}`, agg.ChaosSags)
	check(`prudentia_chaos_episodes_total{kind="stall"}`, agg.ChaosStalls)
	if got := c[`prudentia_trial_failures_total{kind="panic"}`] + c[`prudentia_trial_failures_total{kind="error"}`]; got != failed {
		t.Errorf("per-kind failure counters sum to %d, want %d", got, failed)
	}
	if c["prudentia_checkpoint_saves_total"] == 0 {
		t.Error("checkpointing was enabled but the saves counter is zero")
	}

	// Manifest envelope.
	if m.Schema != obs.ManifestSchema || m.Cycle != cr.Cycle || m.BaseSeed != 77 ||
		m.Workers != 4 || !m.ChaosEnabled || m.Interrupted {
		t.Errorf("manifest envelope wrong: %+v", m)
	}
	if len(m.Services) != 3 {
		t.Errorf("manifest services = %v", m.Services)
	}

	// The timeline must parse, and its event counts must agree with the
	// same counters.
	events, err := obs.ReadTimeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int64{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds["cycle_start"] != 1 || kinds["cycle_end"] != 1 || kinds["setting_start"] != 1 {
		t.Errorf("cycle framing events wrong: %v", kinds)
	}
	if kinds["trial_start"] != c["prudentia_trials_started_total"] {
		t.Errorf("timeline trial_start = %d, counter says %d", kinds["trial_start"], c["prudentia_trials_started_total"])
	}
	if kinds["trial_ok"] != completed || kinds["trial_fail"] != failed ||
		kinds["trial_discard"] != discarded || kinds["trial_corrupt"] != corrupt {
		t.Errorf("timeline trial outcomes %v disagree with ledger (ok=%d fail=%d discard=%d corrupt=%d)",
			kinds, completed, failed, discarded, corrupt)
	}
	if kinds["pair_done"] != pairs || kinds["calibration_done"] != calibrations {
		t.Errorf("timeline pair_done=%d calibration_done=%d, want %d/%d",
			kinds["pair_done"], kinds["calibration_done"], pairs, calibrations)
	}
}

// TestObsUninstrumentedIdentical: attaching instruments must not change
// the measurement output — the cycle result with a registry attached is
// byte-equal to one without.
func TestObsUninstrumentedIdentical(t *testing.T) {
	runResult := func(instrumented bool) *CycleResult {
		net := netem.HighlyConstrained()
		opts := fastOpts(net)
		opts.BaseSeed = 77
		opts.Chaos = hotChaos()
		w := &Watchdog{
			Services: threeServices(),
			Settings: []netem.Config{net},
			Opts:     opts,
			Workers:  2,
		}
		if instrumented {
			w.Obs = NewInstruments(obs.NewRegistry(), nil)
		}
		cr, err := w.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	plain, instrumented := runResult(false), runResult(true)
	a, err1 := json.Marshal(plain)
	b, err2 := json.Marshal(instrumented)
	if err1 != nil || err2 != nil {
		t.Fatalf("marshal: %v %v", err1, err2)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("instrumentation changed the cycle result")
	}
}
