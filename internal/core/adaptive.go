package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"prudentia/internal/obs"
	"prudentia/internal/stats"
)

// Adaptive trial budgets: a coarse-to-fine screening pass that ranks
// pairs by predicted unfairness and allocates the cycle's trial budget
// depth-first to the most contested pairs, plus the per-trial
// sequential stopper (internal/stats) that ends a pair's trials the
// moment its verdict is statistically settled. Everything here is
// deterministic: screening seeds live in their own namespace and flow
// through executeAttempt (journaled, replayable), scores and budgets
// are pure functions of the screening results, and the stopper is a
// pure function of the counted-trial prefix — so adaptive runs resume,
// replay, and shard across the fleet byte-identically, exactly like
// fixed-budget runs.

// AdaptiveOptions arm and tune the adaptive trial-budget subsystem on
// SchedulerOptions.Adaptive. The zero value of every field selects a
// sensible default; a nil *AdaptiveOptions disables the subsystem
// entirely (the fixed §3.4 batch-escalation protocol, and with it the
// golden acceptance output, is preserved bit for bit).
type AdaptiveOptions struct {
	// MinTrials is the floor below which no pair stops early
	// (default 2 — two agreeing trials may stop, two disagreeing ones
	// keep going, because the n<3 CI degrades to the sample range).
	MinTrials int
	// CIWidthPct is the convergence target in MmF-share points: a pair
	// stops when the 95% CI on both slots' share medians is at most
	// this wide (default 10).
	CIWidthPct float64
	// StableK stops a pair after K consecutive trials that each left
	// the fair/unfair verdict unchanged (default 3).
	StableK int
	// FairSharePct is the verdict boundary used by the stability rule
	// and the screening score (default 80, the paper's "roughly fair"
	// line).
	FairSharePct float64
	// ScreenTrials is the number of coarse screening trials per pair
	// (ScreenTiming, screen-seed namespace; default 1).
	ScreenTrials int
	// BudgetFrac sizes the cycle's total trial budget as a fraction of
	// the fixed protocol's worst case (pairs × MaxTrials, default 0.6).
	// The floor (MinTrials per pair) is always granted; the remainder
	// is handed depth-first to the most contested pairs until it runs
	// out.
	BudgetFrac float64
}

// withDefaults returns a defaulted copy (the caller's struct is never
// mutated — SchedulerOptions values are copied freely across
// goroutines and processes).
func (a *AdaptiveOptions) withDefaults() *AdaptiveOptions {
	d := *a
	if d.MinTrials == 0 {
		d.MinTrials = 2
	}
	if d.CIWidthPct == 0 {
		d.CIWidthPct = 10
	}
	if d.StableK == 0 {
		d.StableK = 3
	}
	if d.FairSharePct == 0 {
		d.FairSharePct = stats.DefaultFairSharePct
	}
	if d.ScreenTrials == 0 {
		d.ScreenTrials = 1
	}
	if d.BudgetFrac == 0 {
		d.BudgetFrac = 0.6
	}
	return &d
}

// policy builds the stats-layer stopper for one pair: the pair's
// allocated ceiling (budget) caps MaxTrials; a pair with no allocation
// (direct RunPair calls, restored pre-screening states) falls back to
// the scheduler-wide maximum.
func (a *AdaptiveOptions) policy(budget, maxTrials int) stats.SequentialPolicy {
	ceil := budget
	if ceil <= 0 {
		ceil = maxTrials
	}
	return stats.SequentialPolicy{
		MinTrials:    a.MinTrials,
		MaxTrials:    ceil,
		MaxCIWidth:   a.CIWidthPct,
		StableK:      a.StableK,
		FairSharePct: a.FairSharePct,
	}
}

// screenSeedID encodes a screening trial's identity, in a namespace
// disjoint from pairs (top bits 000), solo calibration (1…), and
// canary probes (01…): screening reuses the pair identity under a 001
// prefix, so a pair's screening seeds never collide with its counted
// trials and replay from the journal by seed exactly like them.
func screenSeedID(a, b int) uint64 { return 1<<61 | pairSeedID(a, b) }

// screenResult is one pair's screening outcome: its contestedness
// score, or scored=false when no screening trial produced a usable
// result (the pair then sorts as maximally contested — uncertainty
// buys depth).
type screenResult struct {
	score  float64
	scored bool
}

// screen runs the coarse screening pass over the pending pair states
// and returns the per-pair budget allocation. Screening trials run
// ScreenTiming specs with screen-namespace seeds through
// executeAttempt, so they are journaled and replay by seed on resume;
// they do no trial counting, no breaker scoring, and emit no
// fault-ledger events (screening is planning, not measurement — a
// failed screen costs a score, never a retry or quarantine). The
// returned map is a pure function of the screening results, which
// makes the whole allocation deterministic for any worker count.
func (m *Matrix) screen(states []*pairState, opts SchedulerOptions) (budgets map[string]int, interrupted bool) {
	ad := opts.Adaptive
	results := make([]screenResult, len(states))
	nw := workerCount(m.Workers, len(states))
	if m.Remote != nil {
		// Screening stays coordinator-side in fleet mode (the budgets
		// ride the PairTasks); run it on the local pool width.
		nw = workerCount(0, len(states))
	}

	var stop atomic.Bool
	interrupt := func() bool {
		if stop.Load() {
			return true
		}
		if m.Interrupt != nil && m.Interrupt() {
			stop.Store(true)
			return true
		}
		return false
	}
	screenOne := func(i int) {
		st := states[i]
		label := st.pairLabel() + " (screen)"
		var s0, s1 []float64
		for k := 0; k < ad.ScreenTrials; k++ {
			if interrupt() {
				return
			}
			seed := trialSeed(opts.BaseSeed, screenSeedID(st.a, st.b), k)
			spec := Spec{
				Incumbent: st.svcA,
				Contender: st.svcB,
				Net:       m.Net,
				Seed:      seed,
				Chaos:     opts.Chaos,
			}.ScreenTiming()
			ar := executeAttempt(m.Journal, m.Obs, opts, spec, label, k)
			m.Obs.screenTrial(label, seed, k, ar.class)
			if ar.class == "ok" {
				s0 = append(s0, ar.res.SharePct[0])
				s1 = append(s1, ar.res.SharePct[1])
			}
		}
		if len(s0) == 0 {
			return // unscored: sorts as most contested
		}
		results[i] = screenResult{
			score:  stats.ScreenScore(stats.Median(s0), stats.Median(s1), ad.FairSharePct),
			scored: true,
		}
	}

	if nw <= 1 {
		for i := range states {
			if interrupt() {
				return nil, true
			}
			screenOne(i)
		}
	} else {
		tasks := make(chan int, len(states))
		for i := range states {
			tasks <- i
		}
		close(tasks)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range tasks {
					if interrupt() {
						return
					}
					screenOne(i)
				}
			}()
		}
		wg.Wait()
	}
	if stop.Load() {
		return nil, true
	}
	return allocateBudgets(states, results, opts), false
}

// allocateBudgets turns screening scores into per-pair trial ceilings:
// every pair gets the adaptive floor, and the remaining pool — the
// BudgetFrac slice of the fixed protocol's worst case — is granted
// depth-first (up to MaxTrials each) in contestedness order, ties
// broken by canonical pair index so the allocation is deterministic.
func allocateBudgets(states []*pairState, results []screenResult, opts SchedulerOptions) map[string]int {
	ad := opts.Adaptive
	n := len(states)
	floor := ad.MinTrials
	if floor > opts.MaxTrials {
		floor = opts.MaxTrials
	}
	pool := int(math.Ceil(ad.BudgetFrac*float64(n)*float64(opts.MaxTrials))) - n*floor
	if pool < 0 {
		pool = 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	score := func(i int) float64 {
		if !results[i].scored {
			return -1
		}
		return results[i].score
	}
	sort.SliceStable(order, func(x, y int) bool {
		sx, sy := score(order[x]), score(order[y])
		if sx != sy {
			return sx < sy
		}
		return order[x] < order[y]
	})
	budgets := make(map[string]int, n)
	for _, st := range states {
		budgets[st.key] = floor
	}
	for _, i := range order {
		extra := opts.MaxTrials - floor
		if extra > pool {
			extra = pool
		}
		budgets[states[i].key] += extra
		pool -= extra
		if pool == 0 {
			break
		}
	}
	return budgets
}

// applyBudgets stamps the allocation onto the pending states and emits
// one budget_alloc timeline event per pair, in canonical order.
func (m *Matrix) applyBudgets(states []*pairState, budgets map[string]int) {
	for _, st := range states {
		if b, ok := budgets[st.key]; ok && b > 0 {
			st.budget = b
		}
		m.Obs.emit(obs.TimelineEvent{Kind: "budget_alloc", Pair: st.pairLabel(),
			Detail: fmt.Sprintf("budget %d", st.budget)})
	}
}
