package core

import (
	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// Distributed execution seam. The pair matrix is embarrassingly
// parallel by construction — a pair's outcome is a pure function of
// (catalog, setting, SchedulerOptions, pair identity) — so executing a
// pair in another *process* is no different from executing it on
// another goroutine, provided that process derives the same options and
// seeds. This file defines the contract between the matrix scheduler
// and a remote runner (internal/fleet): the scheduler hands out
// PairTasks, the runner delivers PairTaskResults in any order, and the
// matrix restores determinism through the same ordered-release path the
// local worker pool uses, so a fleet-wide report is byte-identical to a
// serial run at any worker count.

// PairTask identifies one pending pair of one setting's matrix. Cycle
// and Setting let a worker re-derive the scheduler options (and with
// them every trial seed) from its own configuration via
// Watchdog.SettingOptions; A and B are catalog indices (A <= B).
// Budget carries the pair's adaptive trial ceiling: screening runs
// coordinator-side, so the allocation must travel with the task for
// the worker's sequential stopper to reach the coordinator's stopping
// decision (zero on fixed-budget runs, preserving the wire format).
type PairTask struct {
	Cycle   int `json:"cycle"`
	Setting int `json:"setting"`
	A       int `json:"a"`
	B       int `json:"b"`
	Budget  int `json:"budget,omitempty"`
}

// PairTaskResult delivers one remotely executed pair: the index into
// the submitted task slice, the finished outcome, and the ledger events
// the pair protocol emitted, in emission order.
type PairTaskResult struct {
	Index   int
	Outcome *PairOutcome
	Events  []FaultEvent
}

// RemoteRunner executes pair tasks somewhere other than the local
// worker pool — the fleet coordinator implements it over TCP workers.
type RemoteRunner interface {
	// RunPairs dispatches tasks and returns a channel that delivers
	// each task's result exactly once, in any order. The channel closes
	// when every task has been delivered, or early when the interrupt
	// hook fires (undelivered tasks are simply not sent; the caller
	// treats the run as interrupted). The returned error reports only
	// dispatch-time failures (a closed coordinator), never task
	// failures — those are ordinary PairOutcomes with Failed set.
	RunPairs(tasks []PairTask, interrupt func() bool) (<-chan PairTaskResult, error)
}

// RunPairTask executes the full trial protocol for the catalog pair
// the task names in one setting — the fleet worker's entry point. The
// returned outcome and event stream are byte-identical to the same
// pair executed inside a local matrix, because every trial seed is a
// pure function of (opts.BaseSeed, pair identity, attempt) and the
// adaptive stopper is a pure function of the counted-trial prefix and
// the task's Budget.
func RunPairTask(svcs []services.Service, net netem.Config, opts SchedulerOptions, task PairTask) (*PairOutcome, []FaultEvent) {
	opts = opts.withDefaults()
	a, b := task.A, task.B
	st := &pairState{
		a: a, b: b,
		key:    pairKey(a, b),
		seedID: pairSeedID(a, b),
		svcA:   svcs[a],
		svcB:   svcs[b],
		target: opts.MinTrials,
		budget: task.Budget,
		outcome: &PairOutcome{
			Incumbent: svcs[a].Name(),
			Contender: svcs[b].Name(),
		},
	}
	if opts.SketchStats {
		st.outcome.Sketches = newPairSketches()
	}
	var events []FaultEvent
	pp := &pairProtocol{net: net, opts: opts,
		emit: func(ev FaultEvent) { events = append(events, ev) }}
	pp.run(st, nil)
	return st.outcome, events
}

// runAllRemote executes every pending pair through m.Remote and merges
// the results on the canonical release path. Duplicate and
// re-dispatched executions on the runner's side are invisible here:
// the runner delivers each task once, and — because re-runs are
// deterministic — whichever worker's result survives carries the same
// bytes.
func (m *Matrix) runAllRemote(states []*pairState, opts SchedulerOptions) (interrupted bool, err error) {
	_ = opts // seed derivation happens worker-side, from the same options
	tasks := make([]PairTask, len(states))
	for i, st := range states {
		tasks[i] = PairTask{Cycle: m.Cycle, Setting: m.Setting, A: st.a, B: st.b,
			Budget: st.budget}
	}
	ch, err := m.Remote.RunPairs(tasks, m.Interrupt)
	if err != nil {
		return false, err
	}
	rel := m.newReleaser(len(states))
	delivered := 0
	for r := range ch {
		st := states[r.Index]
		// The result's outcome replaces the placeholder's fields in
		// place: res.Pairs already points at st.outcome.
		*st.outcome = *r.Outcome
		m.Obs.remotePair(st.outcome)
		rel.add(&pairRun{idx: r.Index, st: st, events: r.Events, completed: true})
		delivered++
	}
	rel.flush()
	return delivered < len(states), nil
}
