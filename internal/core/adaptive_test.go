package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"prudentia/internal/chaos"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
	"prudentia/internal/stats"
)

// adaptiveTestOpts returns options where the fixed protocol runs 6
// trials per converged pair, leaving the sequential stopper real room
// to save work.
func adaptiveTestOpts(net netem.Config) SchedulerOptions {
	o := PaperOptions(net)
	o.MinTrials, o.MaxTrials, o.Step = 6, 12, 6
	o.ToleranceMbps = 50 // fixed rule stops at MinTrials
	o.BaseSeed = 11
	o.Timing = func(s Spec) Spec {
		s.Duration, s.Warmup, s.Cooldown = 20*sim.Second, 4*sim.Second, 2*sim.Second
		return s
	}
	return o
}

// TestAdaptiveVsFixedEquivalence is the headline acceptance property:
// on a converged matrix, adaptive mode reaches the same fair/unfair
// verdict for every pair as fixed-trial mode while running at least
// 30% fewer counted trials.
func TestAdaptiveVsFixedEquivalence(t *testing.T) {
	net := netem.HighlyConstrained()
	run := func(opts SchedulerOptions) *MatrixResult {
		t.Helper()
		m := &Matrix{Services: threeServices(), Net: net, Opts: opts}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fixed := run(adaptiveTestOpts(net))
	adOpts := adaptiveTestOpts(net)
	adOpts.Adaptive = &AdaptiveOptions{}
	adaptive := run(adOpts)

	const fairPct = 80
	totalFixed, totalAdaptive := 0, 0
	for key, pf := range fixed.Pairs {
		pa := adaptive.Pairs[key]
		if pa == nil {
			t.Fatalf("pair %s missing from adaptive result", key)
		}
		vf := stats.Fair(pf.SharePcts(0), pf.SharePcts(1), fairPct)
		va := stats.Fair(pa.SharePcts(0), pa.SharePcts(1), fairPct)
		if vf != va {
			t.Errorf("pair %s (%s vs %s): fixed verdict fair=%v, adaptive fair=%v",
				key, pf.Incumbent, pf.Contender, vf, va)
		}
		if pa.StopReason == "" {
			t.Errorf("pair %s: adaptive outcome carries no stop reason", key)
		}
		if pa.Budget <= 0 {
			t.Errorf("pair %s: adaptive outcome carries no budget", key)
		}
		if pf.StopReason != "" || pf.Budget != 0 {
			t.Errorf("pair %s: fixed outcome leaked adaptive fields: %q/%d",
				key, pf.StopReason, pf.Budget)
		}
		totalFixed += len(pf.Trials)
		totalAdaptive += len(pa.Trials)
	}
	if totalAdaptive >= totalFixed {
		t.Fatalf("adaptive ran %d trials, fixed %d; want strictly fewer", totalAdaptive, totalFixed)
	}
	if float64(totalAdaptive) > 0.7*float64(totalFixed) {
		t.Fatalf("adaptive ran %d trials vs fixed %d (%.0f%%); want ≥30%% savings",
			totalAdaptive, totalFixed, 100*float64(totalAdaptive)/float64(totalFixed))
	}
}

// TestAdaptiveWorkerDeterminism: the adaptive result — outcomes, stop
// reasons, and the budget allocation itself — is byte-identical for
// any worker count, even with chaos making screening trials fail.
func TestAdaptiveWorkerDeterminism(t *testing.T) {
	net := netem.HighlyConstrained()
	run := func(workers int) (resJSON, budgetJSON []byte) {
		opts := adaptiveTestOpts(net)
		opts.MaxTrials = 9
		opts.Chaos = &chaos.Config{PanicRate: 0.15, ErrorRate: 0.10, CorruptRate: 0.10}
		opts.Adaptive = &AdaptiveOptions{}
		var budgets map[string]int
		m := &Matrix{
			Services:  threeServices(),
			Net:       net,
			Opts:      opts,
			Workers:   workers,
			OnBudgets: func(b map[string]int) { budgets = b },
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		rj, _ := json.Marshal(res)
		bj, _ := json.Marshal(budgets)
		return rj, bj
	}
	r1, b1 := run(1)
	r4, b4 := run(4)
	if !bytes.Equal(b1, b4) {
		t.Fatalf("budget allocation differs across worker counts:\n%s\nvs\n%s", b1, b4)
	}
	if !bytes.Equal(r1, r4) {
		t.Fatalf("adaptive matrix differs across worker counts:\n%s\nvs\n%s", r1, r4)
	}
}

// TestAdaptiveResumeEquivalence: a killed adaptive cycle resumed from
// journal+checkpoint replays to the same stopping decisions — the
// resumed CycleResult is byte-identical to an uninterrupted run's,
// including StopReason and Budget on every outcome.
func TestAdaptiveResumeEquivalence(t *testing.T) {
	mk := func(ckpt, jrnl string, interrupt func() bool) *Watchdog {
		opts := fastOpts(netem.HighlyConstrained())
		opts.MinTrials, opts.MaxTrials, opts.Step = 4, 8, 4
		opts.BaseSeed = 11
		opts.Chaos = &chaos.Config{PanicRate: 0.15, ErrorRate: 0.10, CorruptRate: 0.10}
		opts.Adaptive = &AdaptiveOptions{}
		return &Watchdog{
			Services:       threeServices(),
			Settings:       []netem.Config{netem.HighlyConstrained()},
			Opts:           opts,
			CheckpointPath: ckpt,
			JournalPath:    jrnl,
			Interrupt:      interrupt,
		}
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	jrnl := filepath.Join(dir, "trials.wal")

	calls := 0
	wA := mk(ckpt, jrnl, func() bool { calls++; return calls > 12 })
	if _, err := wA.RunCycle(); err != ErrInterrupted {
		t.Fatalf("interrupted cycle returned %v, want ErrInterrupted", err)
	}
	saved, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !saved.HasBudgetState() {
		t.Fatal("adaptive checkpoint must carry budget state")
	}

	wB := mk(ckpt, jrnl, nil)
	if found, err := wB.LoadCheckpoint(); err != nil || !found {
		t.Fatalf("LoadCheckpoint = %v, %v; want found", found, err)
	}
	crB, err := wB.RunCycle()
	if err != nil {
		t.Fatal(err)
	}

	wC := mk("", "", nil)
	crC, err := wC.RunCycle()
	if err != nil {
		t.Fatal(err)
	}

	jb, _ := json.Marshal(crB)
	jc, _ := json.Marshal(crC)
	if !bytes.Equal(jb, jc) {
		t.Fatalf("resumed adaptive cycle differs from uninterrupted run:\n%s\nvs\n%s", jb, jc)
	}
}

// TestAdaptiveResumeRejectsPreAdaptiveCheckpoint: resuming an adaptive
// cycle from a checkpoint without budget state fails with
// ErrCheckpointNoBudget (the staged checkpoint is retained), and the
// same checkpoint resumes cleanly once Adaptive is disarmed — the
// fallback cmd/prudentia performs automatically.
func TestAdaptiveResumeRejectsPreAdaptiveCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cp := newCheckpoint(1, 1)
	if cp.HasBudgetState() {
		t.Fatal("fixed-mode checkpoint must not carry budget state")
	}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HasBudgetState() {
		t.Fatal("loaded fixed-mode checkpoint must not carry budget state")
	}

	opts := fastOpts(netem.HighlyConstrained())
	opts.Adaptive = &AdaptiveOptions{}
	w := &Watchdog{
		Services: threeServices()[:2],
		Settings: []netem.Config{netem.HighlyConstrained()},
		Opts:     opts,
	}
	w.Resume(loaded)
	if _, err := w.RunCycle(); !errors.Is(err, ErrCheckpointNoBudget) {
		t.Fatalf("RunCycle = %v, want ErrCheckpointNoBudget", err)
	}
	if w.StagedCheckpoint() != loaded {
		t.Fatal("refused resume must retain the staged checkpoint")
	}
	w.Opts.Adaptive = nil
	if _, err := w.RunCycle(); err != nil {
		t.Fatalf("fixed-trials resume of the same checkpoint failed: %v", err)
	}
}

// TestScreenSeedNamespace: screening seeds must never collide with
// pair, solo-calibration, or canary identities — a collision would
// make the journal replay a screening attempt as a counted trial (or
// vice versa).
func TestScreenSeedNamespace(t *testing.T) {
	seen := make(map[uint64]string)
	add := func(id uint64, label string) {
		t.Helper()
		if prev, ok := seen[id]; ok {
			t.Fatalf("seed-ID collision: %s and %s both map to %#x", prev, label, id)
		}
		seen[id] = label
	}
	for a := 0; a < 8; a++ {
		for b := a; b < 8; b++ {
			add(pairSeedID(a, b), "pair")
			add(screenSeedID(a, b), "screen")
		}
		add(soloSeedID(a), "solo")
	}
	add(canarySeedID("iPerf (Reno)"), "canary")
}

// TestAllocateBudgets: the floor is always granted, the pool is spent
// depth-first in contestedness order (unscored pairs first), and the
// allocation is a deterministic function of scores and canonical order.
func TestAllocateBudgets(t *testing.T) {
	mkStates := func(n int) []*pairState {
		out := make([]*pairState, n)
		for i := range out {
			out[i] = &pairState{key: pairKey(0, i)}
		}
		return out
	}
	opts := SchedulerOptions{
		MaxTrials: 10,
		Adaptive:  (&AdaptiveOptions{MinTrials: 2, BudgetFrac: 0.5}).withDefaults(),
	}
	states := mkStates(4)
	results := []screenResult{
		{score: 5, scored: true},  // second most contested
		{score: 40, scored: true}, // clear verdict: floor only
		{scored: false},           // unscored: most contested
		{score: 20, scored: true},
	}
	// total = ceil(0.5·4·10) = 20; floors 4·2 = 8; pool 12.
	// Order: state 2 (unscored, −1) +8 → 10; state 0 (+4, pool dry) → 6.
	budgets := allocateBudgets(states, results, opts)
	want := map[string]int{
		pairKey(0, 0): 6,
		pairKey(0, 1): 2,
		pairKey(0, 2): 10,
		pairKey(0, 3): 2,
	}
	for k, w := range want {
		if budgets[k] != w {
			t.Errorf("budget[%s] = %d, want %d (full: %v)", k, budgets[k], w, budgets)
		}
	}
	sum := 0
	for _, b := range budgets {
		sum += b
	}
	if sum != 20 {
		t.Errorf("allocated %d trials total, want 20", sum)
	}

	// Ceilings never exceed MaxTrials even with a lavish pool.
	opts.Adaptive = (&AdaptiveOptions{MinTrials: 2, BudgetFrac: 5}).withDefaults()
	for _, b := range allocateBudgets(states, results, opts) {
		if b > opts.MaxTrials {
			t.Fatalf("budget %d exceeds MaxTrials %d", b, opts.MaxTrials)
		}
	}
}

// TestRunPairAdaptive: the direct RunPair entry point honors the
// sequential stopper too (no screening — the ceiling falls back to
// MaxTrials).
func TestRunPairAdaptive(t *testing.T) {
	opts := adaptiveTestOpts(netem.HighlyConstrained())
	opts.Adaptive = &AdaptiveOptions{}
	svcs := threeServices()
	// A self-pair converges immediately: both slots run the same stack,
	// so the share medians agree trial after trial.
	out, err := RunPair(svcs[0], svcs[0], netem.HighlyConstrained(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.StopReason == "" {
		t.Fatal("adaptive RunPair outcome carries no stop reason")
	}
	if len(out.Trials) >= opts.MinTrials {
		t.Fatalf("adaptive RunPair ran %d trials; want early stop below the fixed floor %d",
			len(out.Trials), opts.MinTrials)
	}
}
