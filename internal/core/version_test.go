package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prudentia/internal/journal"
	"prudentia/internal/netem"
)

// Forward-compat regression tests: checkpoints and journals from a
// NEWER binary must be rejected with a clear, typed error — not
// panicked over, misparsed, or silently replaced.

// TestCheckpointFutureVersionRejected: a hand-crafted checkpoint
// claiming schema version 2 is refused with ErrFutureCheckpoint even
// though its body would parse fine.
func TestCheckpointFutureVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	body := `{"schema":"prudentia.checkpoint/2","cycle":3,"calibration":[null],"pairs":[{}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
	if !errors.Is(err, ErrFutureCheckpoint) {
		t.Fatalf("error %v is not ErrFutureCheckpoint", err)
	}
	if !strings.Contains(err.Error(), "prudentia.checkpoint/2") ||
		!strings.Contains(err.Error(), CheckpointSchema) {
		t.Fatalf("message %q must name both versions", err)
	}
}

// TestCheckpointFutureVersionUnparseableBody: the schema probe runs
// before the full parse, so a future checkpoint whose body no longer
// matches this build's shape still yields the clear version error
// rather than a confusing field error.
func TestCheckpointFutureVersionUnparseableBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	body := `{"schema":"prudentia.checkpoint/7","cycle":"three","pairs":42}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if !errors.Is(err, ErrFutureCheckpoint) {
		t.Fatalf("got %v, want ErrFutureCheckpoint", err)
	}
}

// TestCheckpointUnknownSchemaRejected: a non-prudentia schema is
// rejected but NOT labelled a future version.
func TestCheckpointUnknownSchemaRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	body := `{"schema":"other/1","cycle":1,"pairs":[{}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if err == nil || errors.Is(err, ErrFutureCheckpoint) {
		t.Fatalf("got %v, want plain schema rejection", err)
	}
}

// TestCheckpointMissingSchemaAccepted: checkpoints written before the
// schema field existed load as version 1 (back-compat), and a
// save/load round trip stamps the current schema.
func TestCheckpointMissingSchemaAccepted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	body := `{"cycle":2,"calibration":[null],"pairs":[{}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("pre-schema checkpoint rejected: %v", err)
	}
	if cp.Cycle != 2 {
		t.Fatalf("cycle = %d, want 2", cp.Cycle)
	}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	again, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Schema != CheckpointSchema {
		t.Fatalf("saved schema %q, want %q", again.Schema, CheckpointSchema)
	}
}

// TestWatchdogRefusesFutureJournal: a future-version journal must stop
// RunCycle outright. Degrading to unjournaled operation — the response
// to a merely broken journal — would fork trial history that the newer
// binary still considers authoritative.
func TestWatchdogRefusesFutureJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.journal")
	// Hand-craft a minimal future-version journal: one valid frame
	// holding the future header.
	if err := writeFutureJournal(path, `{"schema":"prudentia.journal/2"}`); err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog()
	w.Services = threeServices()[:2]
	w.Settings = []netem.Config{netem.HighlyConstrained()}
	w.Opts = fastOpts(w.Settings[0])
	w.JournalPath = path
	_, err := w.RunCycle()
	if err == nil {
		t.Fatal("RunCycle ran against a future-version journal")
	}
	if !errors.Is(err, journal.ErrFutureVersion) {
		t.Fatalf("error %v is not journal.ErrFutureVersion", err)
	}
}

// writeFutureJournal frames one payload the way the journal does
// (duplicated here so the test exercises the real file format, not the
// journal package's own writer).
func writeFutureJournal(path, payload string) error {
	p := []byte(payload)
	buf := make([]byte, 8+len(p))
	buf[0] = byte(len(p) >> 24)
	buf[1] = byte(len(p) >> 16)
	buf[2] = byte(len(p) >> 8)
	buf[3] = byte(len(p))
	crc := crc32IEEE(p)
	buf[4] = byte(crc >> 24)
	buf[5] = byte(crc >> 16)
	buf[6] = byte(crc >> 8)
	buf[7] = byte(crc)
	copy(buf[8:], p)
	return os.WriteFile(path, buf, 0o644)
}

func crc32IEEE(p []byte) uint32 {
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, b := range p {
		crc ^= uint32(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}
