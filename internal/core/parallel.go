package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Worker-pool execution of the pair matrix.
//
// The matrix is embarrassingly parallel by construction: each trial
// builds a private sim.Engine + netem testbed from a seed that is a
// pure function of (BaseSeed, pair, attempt), so a pair's outcome does
// not depend on scheduling order. The pool therefore dispatches whole
// pairs to N workers and restores determinism at the output boundary:
// completed pairs are *released* — ledger events, then the OnPair
// checkpoint hook, then the Progress line — strictly in canonical
// (pair, trial) order, streamed as the canonical prefix completes. The
// released byte stream (heatmaps, medians, checkpoints, fault ledger)
// is identical for any worker count, including 1.
//
// Interrupt semantics match the serial scheduler: the hook is polled
// before every trial; once it fires, workers finish (drain) the trial
// in flight, abandon their current pair, and take no new ones.
// Completed pairs stranded behind an abandoned index are still released
// so their outcomes reach the checkpoint — resume correctness needs
// only per-pair purity, not a canonical prefix.

// pairRun is one pair's buffered execution record: the ledger events it
// produced, held until the pool releases the pair in canonical order.
type pairRun struct {
	idx       int
	st        *pairState
	events    []FaultEvent
	completed bool
}

// releaser restores determinism at the matrix's output boundary: pairs
// executed in any order — by the local worker pool or by a remote fleet
// — are *released* (ledger events, then the OnPair checkpoint hook,
// then the Progress line) strictly in canonical index order, streamed
// as the canonical prefix completes. It is shared by the in-process
// pool (runAll) and the distributed runner (runAllRemote), which is
// what makes a fleet-wide report byte-identical to a serial run.
type releaser struct {
	m       *Matrix
	next    int
	pending map[int]*pairRun
}

func (m *Matrix) newReleaser(n int) *releaser {
	return &releaser{m: m, pending: make(map[int]*pairRun, n)}
}

// release delivers one pair's buffered outputs on the caller goroutine.
func (r *releaser) release(pr *pairRun) {
	for _, ev := range pr.events {
		r.m.fault(ev)
	}
	r.m.finish(pr.st)
}

// add accepts a completed pair and releases the canonical prefix.
func (r *releaser) add(pr *pairRun) {
	r.pending[pr.idx] = pr
	for r.pending[r.next] != nil {
		r.release(r.pending[r.next])
		delete(r.pending, r.next)
		r.next++
	}
}

// flush releases pairs stranded behind an abandoned index (interrupted
// runs), still in index order, so no finished work is lost from the
// checkpoint.
func (r *releaser) flush() {
	if len(r.pending) == 0 {
		return
	}
	idxs := make([]int, 0, len(r.pending))
	for i := range r.pending {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		r.release(r.pending[i])
	}
	r.pending = make(map[int]*pairRun)
}

// workerCount clamps a requested worker count to [1, tasks] (minimum 1
// even for zero tasks, so callers can treat the result as "serial").
func workerCount(requested, tasks int) int {
	nw := requested
	if nw <= 1 {
		return 1
	}
	if nw > tasks {
		nw = tasks
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// runAll executes every pending pair and reports whether the run was
// interrupted. With one worker it runs inline on the caller goroutine —
// the exact serial scheduler — so existing Interrupt hooks need not be
// concurrency-safe unless Workers > 1.
func (m *Matrix) runAll(states []*pairState, opts SchedulerOptions) (interrupted bool) {
	nw := workerCount(m.Workers, len(states))
	if nw <= 1 {
		for _, st := range states {
			pp := &pairProtocol{net: m.Net, opts: opts, emit: m.fault, ins: m.Obs, sink: m.Journal}
			if !pp.run(st, m.Interrupt) {
				return true
			}
			m.finish(st)
		}
		return false
	}

	// stop latches the first true answer from the user hook so every
	// worker observes the interrupt at its next trial boundary without
	// hammering the hook.
	var stop atomic.Bool
	interrupt := func() bool {
		if stop.Load() {
			return true
		}
		if m.Interrupt != nil && m.Interrupt() {
			stop.Store(true)
			return true
		}
		return false
	}

	tasks := make(chan int, len(states))
	for i := range states {
		tasks <- i
	}
	close(tasks)

	// busyNanos accumulates per-worker time spent actually running pairs
	// (as opposed to waiting on the task channel), feeding the pool
	// busy-fraction gauge. Only measured when instrumented: the wall
	// clock stays off the uninstrumented path.
	var busyNanos atomic.Int64
	poolStart := time.Time{}
	if m.Obs != nil {
		poolStart = time.Now()
	}

	runs := make(chan *pairRun, len(states))
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if interrupt() {
					return
				}
				pr := &pairRun{idx: i, st: states[i]}
				pp := &pairProtocol{net: m.Net, opts: opts, ins: m.Obs, sink: m.Journal,
					emit: func(ev FaultEvent) { pr.events = append(pr.events, ev) }}
				var t0 time.Time
				if m.Obs != nil {
					t0 = time.Now()
				}
				pr.completed = pp.run(states[i], interrupt)
				if m.Obs != nil {
					busyNanos.Add(int64(time.Since(t0)))
				}
				runs <- pr
				if !pr.completed {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(runs)
	}()

	// Ordered streaming merge, on the caller goroutine: release each
	// pair as soon as every lower-index pair has been released, so
	// OnPair/OnFault/Progress consumers (checkpoint flushes, ledgers)
	// see the canonical sequence without waiting for the whole matrix —
	// a crash mid-cycle still finds completed pairs on disk.
	rel := m.newReleaser(len(states))
	for pr := range runs {
		if !pr.completed {
			continue
		}
		rel.add(pr)
	}
	// Interrupted runs can strand completed pairs behind an abandoned
	// index; release them anyway.
	rel.flush()
	if m.Obs != nil {
		frac := -1.0
		if elapsed := time.Since(poolStart); elapsed > 0 {
			frac = float64(busyNanos.Load()) / (float64(elapsed) * float64(nw))
		}
		m.Obs.poolStats(frac)
	}
	return stop.Load()
}
