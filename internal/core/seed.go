package core

import (
	"errors"
	"fmt"
)

// Seed derivation. Each trial attempt — counted, discarded, corrupt, or
// failed — gets a fresh seed that is a pure function of
// (BaseSeed, pair identity, attempt index). The old scheme
// (BaseSeed + (i*1000+j)*101 plus seed++ per attempt) let adjacent
// pairs' seed ranges overlap once a pair burned enough discards, and
// collided outright past 1000 services; hashing removes both failure
// modes and makes every pair's stream independent of scheduling order,
// which is what lets a resumed cycle replay the remaining pairs
// deterministically.

// mix64 is the SplitMix64 finalizer: a bijective avalanche hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pairSeedID encodes an unordered pair (a ≤ b) of catalog indices as a
// collision-free 64-bit identity.
func pairSeedID(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// soloSeedID encodes a solo-calibration run's identity, in a namespace
// disjoint from pair identities.
func soloSeedID(i int) uint64 { return 1<<63 | uint64(uint32(i)) }

// canarySeedID encodes a circuit-breaker canary probe's identity, in a
// namespace disjoint from both pairs (top bits 00) and solo calibration
// (top bit 1). Probes are keyed by service name rather than catalog
// index so the identity survives catalog reordering between cycles.
func canarySeedID(name string) uint64 {
	h := uint64(1469598103934665603) // FNV-64a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return 1<<62 | h>>2
}

// trialSeed derives the seed for one attempt of one experiment.
func trialSeed(base, id uint64, attempt int) uint64 {
	h := mix64(base ^ mix64(id+0x9e3779b97f4a7c15))
	return mix64(h + uint64(attempt)*0x9e3779b97f4a7c15)
}

// ErrInterrupted is returned by Matrix.Run and Watchdog.RunCycle when an
// Interrupt hook requested a graceful stop; completed-pair state has
// been delivered via OnPair / flushed to the checkpoint.
var ErrInterrupted = errors.New("core: interrupted")

// TrialError is the typed failure a single trial can produce: a panic
// recovered mid-simulation, an injected error, or any other error
// surfaced by RunTrial. The scheduler records it and retries rather
// than aborting the cycle.
type TrialError struct {
	// Kind labels the failure class: "panic", "error", or the chaos
	// fault name that produced it.
	Kind string
	// Seed is the trial seed that deterministically reproduces it.
	Seed uint64
	// Msg is the human-readable cause.
	Msg string
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("core: trial %s (seed %d): %s", e.Kind, e.Seed, e.Msg)
}

// asTrialError coerces any error into a *TrialError for recording.
func asTrialError(err error, seed uint64) *TrialError {
	var te *TrialError
	if errors.As(err, &te) {
		return te
	}
	return &TrialError{Kind: "error", Seed: seed, Msg: err.Error()}
}

// TrialFailure is the persisted record of one failed attempt, kept on
// the PairOutcome so checkpoints and artifacts carry the full ledger.
type TrialFailure struct {
	Attempt int    `json:"attempt"`
	Seed    uint64 `json:"seed"`
	Kind    string `json:"kind"`
	Msg     string `json:"msg"`
}

// FaultEvent is one entry in the scheduler's live robustness ledger,
// emitted through Matrix.OnFault / Watchdog.OnFault as faults are
// detected and handled. Kinds: "panic", "error", "reap" (hung trial
// reaped), "brownout" (chaos service brownout) for failed attempts,
// "retry" (backoff scheduled), "quarantine" (pair failed permanently),
// "discard" (noise-discarded trial), "corrupt" (validity-gate
// rejection), "calibration" (solo-run failure), "breaker_skip" (pair
// denied admission because a member's circuit breaker was open).
type FaultEvent struct {
	Pair    string `json:"pair"`
	Kind    string `json:"kind"`
	Attempt int    `json:"attempt"`
	Seed    uint64 `json:"seed"`
	Detail  string `json:"detail,omitempty"`
}
