package core

import (
	"strings"
	"testing"

	"prudentia/internal/browser"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

// fastOpts returns a minimal protocol for unit tests.
func fastOpts(net netem.Config) SchedulerOptions {
	o := PaperOptions(net)
	o.MinTrials, o.MaxTrials, o.Step = 2, 4, 2
	o.ToleranceMbps = 50 // effectively always satisfied
	o.Timing = func(s Spec) Spec {
		s.Duration, s.Warmup, s.Cooldown = 20*sim.Second, 4*sim.Second, 2*sim.Second
		return s
	}
	return o
}

func TestSpecValidation(t *testing.T) {
	if err := (Spec{}).Validate(); err == nil {
		t.Fatal("empty spec must fail")
	}
	s := Spec{Incumbent: services.ByName("iPerf (Reno)")}
	if err := s.Validate(); err == nil {
		t.Fatal("zero duration must fail")
	}
	s.Duration, s.Warmup, s.Cooldown = 10*sim.Second, 6*sim.Second, 5*sim.Second
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("no-window spec must fail, got %v", err)
	}
	s = s.QuickTiming()
	if err := s.Validate(); err != nil {
		t.Fatalf("quick spec should validate: %v", err)
	}
}

func TestRunTrialDeterminism(t *testing.T) {
	spec := Spec{
		Incumbent: services.ByName("iPerf (Reno)"),
		Contender: services.ByName("iPerf (Cubic)"),
		Net:       netem.HighlyConstrained(),
		Seed:      99,
	}.QuickTiming()
	a, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mbps != b.Mbps || a.Loss != b.Loss || a.Utilization != b.Utilization {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Mbps, b.Mbps)
	}
	c, err := RunTrial(func() Spec { s := spec; s.Seed = 100; return s }())
	if err != nil {
		t.Fatal(err)
	}
	if a.Mbps == c.Mbps {
		t.Fatal("different seeds produced identical throughput")
	}
}

func TestRunTrialMmFAccounting(t *testing.T) {
	// YouTube (13 Mbps cap) vs bulk on 50 Mbps: fair shares must be 13
	// and 37, and SharePct consistent with Mbps.
	spec := Spec{
		Incumbent: services.ByName("YouTube"),
		Contender: services.ByName("Dropbox"),
		Net:       netem.ModeratelyConstrained(),
		Seed:      5,
	}.QuickTiming()
	res, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.FairShareMbps[0] != 13 || res.FairShareMbps[1] != 37 {
		t.Fatalf("fair shares = %v, want [13 37]", res.FairShareMbps)
	}
	for slot := 0; slot < 2; slot++ {
		want := 100 * res.Mbps[slot] / res.FairShareMbps[slot]
		if diff := res.SharePct[slot] - want; diff > 0.01 || diff < -0.01 {
			t.Fatalf("slot %d share %.2f inconsistent with %.2f Mbps", slot, res.SharePct[slot], res.Mbps[slot])
		}
	}
}

func TestRunSoloDetectsThrottle(t *testing.T) {
	// OneDrive solo on 200 Mbps stays under its 45 Mbps cap.
	cfg := netem.Config{RateBps: 200_000_000, RTT: 50 * sim.Millisecond}
	tr, err := RunSolo(services.ByName("OneDrive"), cfg, 3, Spec.QuickTiming)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mbps[0] > 46 {
		t.Fatalf("OneDrive solo %.1f Mbps exceeds cap", tr.Mbps[0])
	}
	if tr.Mbps[1] != 0 {
		t.Fatalf("solo run has contender throughput %.2f", tr.Mbps[1])
	}
}

func TestNoiseDiscard(t *testing.T) {
	cfg := netem.HighlyConstrained()
	cfg.Noise = &netem.NoiseConfig{
		MeanEpisodeGap:  200 * sim.Millisecond,
		MeanEpisodeLen:  2 * sim.Second,
		DropProbability: 0.05,
	}
	spec := Spec{Incumbent: services.ByName("iPerf (Reno)"), Net: cfg, Seed: 2}.QuickTiming()
	res, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Discarded {
		t.Fatalf("heavy noise not discarded: external loss %.5f", res.ExternalLossRate)
	}
}

func TestRunPairEscalatesOnWideCI(t *testing.T) {
	opts := fastOpts(netem.HighlyConstrained())
	opts.ToleranceMbps = 0.000001 // impossible: must escalate to MaxTrials
	out, err := RunPair(services.ByName("iPerf (Reno)"), services.ByName("iPerf (Cubic)"),
		netem.HighlyConstrained(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trials) != opts.MaxTrials {
		t.Fatalf("trials = %d, want max %d", len(out.Trials), opts.MaxTrials)
	}
	if !out.Unstable {
		t.Fatal("pair should be flagged unstable")
	}
}

func TestRunPairStopsEarlyWhenTight(t *testing.T) {
	opts := fastOpts(netem.HighlyConstrained())
	out, err := RunPair(services.ByName("iPerf (Reno)"), services.ByName("iPerf (Reno)"),
		netem.HighlyConstrained(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trials) != opts.MinTrials {
		t.Fatalf("trials = %d, want min %d", len(out.Trials), opts.MinTrials)
	}
	if out.Unstable {
		t.Fatal("reno-vs-reno should satisfy a 50 Mbps tolerance")
	}
	if out.MedianSharePct(0) < 50 || out.MedianSharePct(0) > 150 {
		t.Fatalf("implausible self-pair share %.0f%%", out.MedianSharePct(0))
	}
}

func TestMatrixFillsAllPairs(t *testing.T) {
	svcs := []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("iPerf (Cubic)"),
		services.ByName("iPerf (BBR)"),
	}
	m := &Matrix{Services: svcs, Net: netem.HighlyConstrained(), Opts: fastOpts(netem.HighlyConstrained())}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 services -> 6 unordered pairs including self-pairs.
	if len(res.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(res.Pairs))
	}
	for _, a := range res.Names {
		for _, b := range res.Names {
			v, ok := res.SharePct(a, b)
			if !ok {
				t.Fatalf("missing cell %s vs %s", a, b)
			}
			if v <= 0 || v > 400 {
				t.Fatalf("implausible share %s vs %s: %.0f%%", a, b, v)
			}
			if _, ok := res.Utilization(a, b); !ok {
				t.Fatalf("missing utilization %s/%s", a, b)
			}
			if _, ok := res.LossRate(a, b); !ok {
				t.Fatalf("missing loss %s/%s", a, b)
			}
			if _, ok := res.QueueDelayMs(a, b); !ok {
				t.Fatalf("missing qdelay %s/%s", a, b)
			}
		}
	}
	if _, ok := res.SharePct("nope", "iPerf (Reno)"); ok {
		t.Fatal("unknown name should not resolve")
	}
	if got := len(res.LosingShares()); got != 3 {
		t.Fatalf("losing shares = %d, want 3 (one per non-self pair)", got)
	}
	if got := len(res.SelfShares()); got != 6 {
		t.Fatalf("self shares = %d, want 6", got)
	}
}

func TestMatrixCellSlotOrientation(t *testing.T) {
	// The same underlying pair must serve both orientations with
	// mirrored slots.
	svcs := []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("Mega"),
	}
	m := &Matrix{Services: svcs, Net: netem.ModeratelyConstrained(), Opts: fastOpts(netem.ModeratelyConstrained())}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	renoShare, _ := res.SharePct("iPerf (Reno)", "Mega")
	megaShare, _ := res.SharePct("Mega", "iPerf (Reno)")
	p, _, _ := res.Cell("iPerf (Reno)", "Mega")
	if renoShare != p.MedianSharePct(0) || megaShare != p.MedianSharePct(1) {
		t.Fatalf("orientation mismatch: %v %v %v", renoShare, megaShare, p)
	}
}

func TestWatchdogSubmissions(t *testing.T) {
	w := NewWatchdog()
	if err := w.Submit("https://example.com/app", "wrong-code"); err == nil {
		t.Fatal("invalid access code accepted")
	}
	if err := w.Submit("", w.AccessCodes[0]); err == nil {
		t.Fatal("empty URL accepted")
	}
	before := len(w.Services)
	if err := w.Submit("https://example.com/app", w.AccessCodes[0]); err != nil {
		t.Fatal(err)
	}
	if len(w.Submissions()) != 1 || len(w.Services) != before+1 {
		t.Fatal("submission not queued")
	}
	svc := w.Submissions()[0].Service
	if svc.Name() != "https://example.com/app" || svc.Category() != services.CategoryWeb {
		t.Fatalf("submission service wrong: %s/%s", svc.Name(), svc.Category())
	}
}

func TestWatchdogCycleAndHistory(t *testing.T) {
	w := NewWatchdog()
	w.Services = []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("iPerf (BBR)"),
	}
	w.Settings = []netem.Config{netem.HighlyConstrained()}
	w.Opts = fastOpts(netem.HighlyConstrained())
	cr, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Cycle != 1 || len(cr.PerSetting) != 1 || len(cr.Calibration) != 1 {
		t.Fatalf("cycle result malformed: %+v", cr)
	}
	if got := cr.Calibration[0]["iPerf (Reno)"]; got < 5 {
		t.Fatalf("solo calibration for Reno = %.2f Mbps", got)
	}
	cr2, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.History()) != 2 || cr2.Cycle != 2 {
		t.Fatal("history not recorded")
	}
	rep, ok := CompareCycles(cr, cr2, 0, "iPerf (Reno)", "iPerf (BBR)")
	if !ok {
		t.Fatal("CompareCycles failed")
	}
	if rep.BeforeMbps <= 0 || rep.AfterMbps <= 0 {
		t.Fatalf("change report empty: %+v", rep)
	}
}

func TestThrottledServiceDetection(t *testing.T) {
	w := NewWatchdog()
	od := services.ByName("OneDrive")
	bulk := services.ByName("iPerf (BBR)")
	w.Services = []services.Service{od, bulk}
	// Use a link far above OneDrive's cap so the solo run exposes it.
	w.Settings = []netem.Config{{RateBps: 200_000_000, RTT: 50 * sim.Millisecond}}
	w.Opts = fastOpts(w.Settings[0])
	w.Opts.MinTrials, w.Opts.MaxTrials = 1, 1
	cr, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	throttled := cr.ThrottledServices(0, w.Settings[0], w.Services, 0.5)
	found := false
	for _, n := range throttled {
		if n == "OneDrive" {
			found = true
		}
		if n == "iPerf (BBR)" {
			t.Fatal("bulk BBR flagged as throttled")
		}
	}
	if !found {
		t.Fatalf("OneDrive not flagged: %v", throttled)
	}
}

func TestHeadlessClientChangesOutcome(t *testing.T) {
	// §3.3 regression: a headless client must change YouTube's measured
	// network behaviour on a fast link.
	base := Spec{
		Incumbent: services.ByName("YouTube"),
		Net:       netem.ModeratelyConstrained(),
		Seed:      4,
	}.QuickTiming()
	full, err := RunTrial(base)
	if err != nil {
		t.Fatal(err)
	}
	hl := browser.HeadlessClient()
	base.Client = &hl
	headless, err := RunTrial(base)
	if err != nil {
		t.Fatal(err)
	}
	if headless.Mbps[0] >= full.Mbps[0] {
		t.Fatalf("headless (%.1f) should stream less than full-fidelity (%.1f)",
			headless.Mbps[0], full.Mbps[0])
	}
}

func TestInstabilityReport(t *testing.T) {
	svcs := []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("iPerf (Cubic)"),
	}
	m := &Matrix{Services: svcs, Net: netem.HighlyConstrained(), Opts: fastOpts(netem.HighlyConstrained())}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := res.Instability("iPerf (Reno)", "iPerf (Cubic)")
	if !ok || len(rep.TrialMbps) == 0 {
		t.Fatalf("instability report empty: %+v", rep)
	}
}
