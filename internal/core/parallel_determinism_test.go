package core_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/report"
)

// matrixCapture is everything observable about one matrix run: the
// result, the fault-ledger stream, the OnPair release sequence, the
// progress lines, and a rendered heatmap. The parallel engine promises
// all of it is byte-identical for any worker count.
//
// This test is in package core_test (not core) because it renders
// through internal/report, which imports core.
type matrixCapture struct {
	res      []byte
	events   []byte
	pairSeq  []string
	progress []string
	heatmap  string
}

func runMatrixWorkers(t *testing.T, workers int) matrixCapture {
	t.Helper()
	opts := core.FastOptsForTest(netem.HighlyConstrained())
	opts.BaseSeed = 42
	opts.Chaos = core.HotChaosForTest()
	var events []core.FaultEvent
	var c matrixCapture
	m := &core.Matrix{
		Services: core.ThreeServicesForTest(),
		Net:      netem.HighlyConstrained(),
		Opts:     opts,
		Workers:  workers,
		OnFault:  func(ev core.FaultEvent) { events = append(events, ev) },
		OnPair:   func(key string, out *core.PairOutcome) { c.pairSeq = append(c.pairSeq, key) },
		Progress: func(format string, args ...any) {
			c.progress = append(c.progress, fmt.Sprintf(format, args...))
		},
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var merr error
	c.res, merr = json.Marshal(res)
	if merr != nil {
		t.Fatal(merr)
	}
	c.events, merr = json.Marshal(events)
	if merr != nil {
		t.Fatal(merr)
	}
	c.heatmap = report.Heatmap("MmF share %", res.Names,
		func(inc, cont string) (float64, bool) { return res.SharePct(inc, cont) }, ".1f")
	return c
}

// TestMatrixParallelDeterminism is the tentpole acceptance criterion:
// the same chaos-enabled matrix run with 1, 2, 3, and 8 workers must
// produce byte-identical results, fault ledgers, OnPair sequences,
// progress output, and rendered heatmaps. Run under -race via
// scripts/ci.sh this also proves the concurrent paths share no state.
func TestMatrixParallelDeterminism(t *testing.T) {
	base := runMatrixWorkers(t, 1)
	if len(base.pairSeq) != 6 {
		t.Fatalf("serial run released %d pairs, want 6", len(base.pairSeq))
	}
	for _, nw := range []int{2, 3, 8} {
		got := runMatrixWorkers(t, nw)
		if !bytes.Equal(base.res, got.res) {
			t.Errorf("workers=%d: MatrixResult differs from serial:\n%s\nvs\n%s", nw, base.res, got.res)
		}
		if !bytes.Equal(base.events, got.events) {
			t.Errorf("workers=%d: fault ledger differs from serial:\n%s\nvs\n%s", nw, base.events, got.events)
		}
		if fmt.Sprint(base.pairSeq) != fmt.Sprint(got.pairSeq) {
			t.Errorf("workers=%d: OnPair sequence %v, want canonical %v", nw, got.pairSeq, base.pairSeq)
		}
		if fmt.Sprint(base.progress) != fmt.Sprint(got.progress) {
			t.Errorf("workers=%d: progress lines differ:\n%v\nvs\n%v", nw, got.progress, base.progress)
		}
		if base.heatmap != got.heatmap {
			t.Errorf("workers=%d: rendered heatmap differs:\n%s\nvs\n%s", nw, got.heatmap, base.heatmap)
		}
	}
}
