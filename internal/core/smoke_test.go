package core

import (
	"fmt"
	"os"
	"testing"

	"prudentia/internal/netem"
	"prudentia/internal/services"
)

func TestSmokeShapes(t *testing.T) {
	if os.Getenv("PRUDENTIA_SHAPES") == "" {
		t.Skip("shape diagnostics; set PRUDENTIA_SHAPES=1 to run")
	}
	run := func(inc, cont string, net netem.Config) {
		spec := Spec{Incumbent: services.ByName(inc), Contender: services.ByName(cont), Net: net, Seed: 42}.QuickTiming()
		r, err := RunTrial(spec)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-14s vs %-14s @%2.0fMbps: %6.2f/%6.2f Mbps share %3.0f%%/%3.0f%% util %.2f loss %.3f/%.3f qd %v/%v\n",
			inc, cont, float64(net.RateBps)/1e6, r.Mbps[0], r.Mbps[1], r.SharePct[0], r.SharePct[1],
			r.Utilization, r.Loss[0], r.Loss[1], r.QueueDelay[0], r.QueueDelay[1])
	}
	mc, hc := netem.ModeratelyConstrained(), netem.HighlyConstrained()
	run("iPerf (Reno)", "iPerf (Reno)", hc)
	run("iPerf (Reno)", "iPerf (Cubic)", hc)
	run("iPerf (Reno)", "iPerf (Cubic)", mc)
	run("iPerf (Reno)", "Mega", mc)
	run("iPerf (Cubic)", "Mega", mc)
	run("Dropbox", "Mega", mc)
	run("OneDrive", "Mega", mc)
	run("Dropbox", "iPerf (5xBBR)", mc)
	run("iPerf (Reno)", "iPerf (5xBBR)", mc)
	run("YouTube", "iPerf (Reno)", hc)
	run("YouTube", "Mega", hc)
	run("YouTube", "Dropbox", mc)
	run("Netflix", "iPerf (Reno)", hc)
	run("Vimeo", "iPerf (Reno)", hc)
	run("YouTube", "YouTube", hc)
}
