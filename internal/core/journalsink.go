package core

import (
	"encoding/json"
	"sync"

	"prudentia/internal/journal"
)

// journalSink adapts the write-ahead journal (internal/journal) to the
// trial protocol: it records every classified attempt as it completes
// and serves recovered attempts back by seed, so a resumed cycle
// replays journaled work instead of re-simulating it. Because every
// trial seed is a pure function of (BaseSeed, experiment identity,
// attempt), the seed alone identifies an attempt across process
// restarts, for any worker count and any interleaving.
//
// The sink is safe for concurrent use (worker-pool trials record from
// their own goroutines). Journal write failures degrade silently to
// unjournaled operation — the journal is a durability optimization,
// never a correctness dependency; the Writer's sticky error surfaces
// in the cycle's journal stats.
// journalEntry aliases the journal's record type for the protocol code.
type journalEntry = journal.Entry

// jsonUnmarshal decodes a journaled payload (nil-tolerant).
func jsonUnmarshal(data json.RawMessage, v any) error {
	return json.Unmarshal(data, v)
}

type journalSink struct {
	w *journal.Writer

	mu       sync.Mutex
	seen     map[uint64]journal.Entry
	replayed int64
}

// newJournalSink indexes the recovered entries by seed. Later
// duplicates win, matching append order (an attempt journaled twice —
// possible only if a previous process died between append and
// checkpoint bookkeeping — replays its final classification).
func newJournalSink(w *journal.Writer, recovered []journal.Entry) *journalSink {
	s := &journalSink{w: w, seen: make(map[uint64]journal.Entry, len(recovered))}
	for _, e := range recovered {
		s.seen[e.Seed] = e
	}
	return s
}

// lookup serves a recovered attempt by seed, counting the replay.
func (s *journalSink) lookup(seed uint64) (journal.Entry, bool) {
	if s == nil {
		return journal.Entry{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.seen[seed]
	if ok {
		s.replayed++
	}
	return e, ok
}

// record journals one freshly-executed attempt. The entry is also
// added to the in-memory index so an intra-process duplicate seed
// (impossible by construction, but cheap to defend) replays instead of
// re-appending.
func (s *journalSink) record(e journal.Entry, ins *Instruments) {
	if s == nil {
		return
	}
	s.mu.Lock()
	_, b0 := s.w.Stats()
	err := s.w.Append(e)
	_, b1 := s.w.Stats()
	if err == nil {
		s.seen[e.Seed] = e
	}
	s.mu.Unlock()
	if err == nil {
		ins.journalAppend(b1 - b0)
	}
}

// replayCount reports how many attempts were served from the journal.
func (s *journalSink) replayCount() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed
}

// marshalResult serializes a counted TrialResult for journaling. A
// result that cannot round-trip through JSON (it should always be able
// to — counted results passed the validity gate) reports false and the
// attempt simply goes unjournaled.
func marshalResult(res *TrialResult) (json.RawMessage, bool) {
	data, err := json.Marshal(res)
	if err != nil {
		return nil, false
	}
	return data, true
}
