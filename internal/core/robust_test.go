package core

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"prudentia/internal/chaos"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

// hotChaos arms every fault class aggressively enough to fire within
// the 20-second trials the fast test options use.
func hotChaos() *chaos.Config {
	return &chaos.Config{
		FlapMeanGap:  6 * sim.Second,
		FlapMeanLen:  300 * sim.Millisecond,
		FluctMeanGap: 5 * sim.Second,
		FluctMeanLen: sim.Second,
		FluctMinFrac: 0.25,
		StallMeanGap: 6 * sim.Second,
		StallMeanLen: 500 * sim.Millisecond,
		PanicRate:    0.10,
		ErrorRate:    0.08,
		CorruptRate:  0.10,
	}
}

func threeServices() []services.Service {
	return []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("iPerf (Cubic)"),
		services.ByName("iPerf (BBR)"),
	}
}

// TestTrialSeedUniqueness covers the satellite fix for the old
// BaseSeed+(i*1000+j)*101 scheme, whose per-pair ranges overlapped once
// a pair burned enough attempts: hashed seeds must be unique across
// pairs, solo runs, and attempt indices.
func TestTrialSeedUniqueness(t *testing.T) {
	const nSvcs, nAttempts = 20, 25
	seen := make(map[uint64]string)
	record := func(seed uint64, label string) {
		if prev, ok := seen[seed]; ok {
			t.Fatalf("seed collision: %s and %s both map to %d", prev, label, seed)
		}
		seen[seed] = label
	}
	for a := 0; a < nSvcs; a++ {
		for b := a; b < nSvcs; b++ {
			for att := 0; att < nAttempts; att++ {
				record(trialSeed(1, pairSeedID(a, b), att),
					"pair "+pairKey(a, b))
			}
		}
		for att := 0; att < nAttempts; att++ {
			record(trialSeed(1, soloSeedID(a), att), "solo")
		}
	}
	// Different base seeds must shift every stream.
	if trialSeed(1, pairSeedID(0, 1), 0) == trialSeed(2, pairSeedID(0, 1), 0) {
		t.Fatal("base seed does not perturb trial seeds")
	}
}

func TestBackoffRounds(t *testing.T) {
	want := map[int]int{0: 0, 1: 1, 2: 2, 3: 4, 4: 8, 5: 8, 10: 8}
	for n, w := range want {
		if got := backoffRounds(n); got != w {
			t.Errorf("backoffRounds(%d) = %d, want %d", n, got, w)
		}
	}
}

// TestSchedulerOptionsIsZero covers the satellite fix for RunCycle
// silently replacing Timing-only options with PaperOptions: IsZero must
// be false the moment any field is set.
func TestSchedulerOptionsIsZero(t *testing.T) {
	if !(SchedulerOptions{}).IsZero() {
		t.Fatal("zero options must report IsZero")
	}
	cases := map[string]SchedulerOptions{
		"MinTrials":     {MinTrials: 1},
		"MaxTrials":     {MaxTrials: 1},
		"Step":          {Step: 1},
		"ToleranceMbps": {ToleranceMbps: 1},
		"BaseSeed":      {BaseSeed: 1},
		"Timing":        {Timing: func(s Spec) Spec { return s }},
		"MaxDiscards":   {MaxDiscards: 1},
		"MaxFailures":   {MaxFailures: 1},
		"Chaos":         {Chaos: &chaos.Config{}},
	}
	for name, o := range cases {
		if o.IsZero() {
			t.Errorf("options with only %s set must not report IsZero", name)
		}
	}
}

// TestWatchdogKeepsTimingOnlyOpts is the regression test for the
// RunCycle bug where any non-paper Opts — e.g. a caller setting only a
// custom Timing — were silently discarded in favour of PaperOptions.
func TestWatchdogKeepsTimingOnlyOpts(t *testing.T) {
	called := false
	w := &Watchdog{
		Services: []services.Service{services.ByName("iPerf (Reno)")},
		Settings: []netem.Config{netem.HighlyConstrained()},
		Opts: SchedulerOptions{Timing: func(s Spec) Spec {
			called = true
			s.Duration, s.Warmup, s.Cooldown = 20*sim.Second, 4*sim.Second, 2*sim.Second
			return s
		}},
	}
	cr, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("custom Timing was never invoked: Opts were replaced by PaperOptions")
	}
	if len(cr.PerSetting) != 1 {
		t.Fatalf("got %d settings, want 1", len(cr.PerSetting))
	}
}

// TestMatrixDiscardExhaustionInterleaving covers the satellite: a pair
// whose trials are always noise-discarded must exhaust MaxDiscards and
// be marked Unstable without consuming counted trials, while the other
// pairs keep interleaving to completion.
func TestMatrixDiscardExhaustionInterleaving(t *testing.T) {
	net := netem.HighlyConstrained()
	opts := fastOpts(net)
	opts.MaxDiscards = 2
	// Per-pair noise via the Timing hook: only the cross pair sees an
	// upstream loss process hot enough to trip the §3.1 discard gate on
	// every trial.
	opts.Timing = func(s Spec) Spec {
		s.Duration, s.Warmup, s.Cooldown = 20*sim.Second, 4*sim.Second, 2*sim.Second
		if s.Contender != nil && s.Incumbent.Name() != s.Contender.Name() {
			s.Net.Noise = &netem.NoiseConfig{
				MeanEpisodeGap:  sim.Second,
				MeanEpisodeLen:  sim.Second,
				DropProbability: 0.05,
			}
		}
		return s
	}
	m := &Matrix{
		Services: []services.Service{
			services.ByName("iPerf (Reno)"),
			services.ByName("iPerf (Cubic)"),
		},
		Net:  net,
		Opts: opts,
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	noisy := res.Pairs[pairKey(0, 1)]
	if !noisy.Unstable {
		t.Fatalf("noisy pair not marked Unstable: %+v", noisy)
	}
	if len(noisy.Trials) != 0 {
		t.Fatalf("noisy pair counted %d trials, want 0", len(noisy.Trials))
	}
	if noisy.Discards != opts.MaxDiscards+1 {
		t.Fatalf("noisy pair discards = %d, want %d", noisy.Discards, opts.MaxDiscards+1)
	}
	for _, key := range []string{pairKey(0, 0), pairKey(1, 1)} {
		p := res.Pairs[key]
		if p.Unstable || len(p.Trials) < opts.MinTrials {
			t.Fatalf("self pair %s did not complete: trials=%d unstable=%v",
				key, len(p.Trials), p.Unstable)
		}
	}
}

// TestChaosMatrixDeterministic is the acceptance criterion: two runs of
// the same chaos-enabled matrix with the same BaseSeed must produce
// byte-identical MatrixResults — faults, retries, and all.
func TestChaosMatrixDeterministic(t *testing.T) {
	run := func() []byte {
		opts := fastOpts(netem.HighlyConstrained())
		opts.BaseSeed = 42
		opts.Chaos = hotChaos()
		m := &Matrix{Services: threeServices(), Net: netem.HighlyConstrained(), Opts: opts}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("chaos-enabled matrix not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestMatrixSurvivesPanicInjection is the acceptance criterion: with
// trial panics injected at 10%, the full matrix completes, every
// non-quarantined cell is populated, and no error propagates out of
// Run.
func TestMatrixSurvivesPanicInjection(t *testing.T) {
	opts := fastOpts(netem.HighlyConstrained())
	opts.BaseSeed = 7
	opts.Chaos = &chaos.Config{PanicRate: 0.10}
	m := &Matrix{Services: threeServices(), Net: netem.HighlyConstrained(), Opts: opts}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Matrix.Run must absorb injected panics, got %v", err)
	}
	failures := 0
	for key, p := range res.Pairs {
		failures += len(p.Failures)
		if !p.Failed && len(p.Trials) == 0 {
			t.Errorf("non-quarantined pair %s has no trials", key)
		}
		for _, f := range p.Failures {
			if f.Kind != "panic" {
				t.Errorf("pair %s failure kind %q, want panic", key, f.Kind)
			}
			if !strings.Contains(f.Msg, "chaos: injected panic") {
				t.Errorf("pair %s failure msg %q not an injected panic", key, f.Msg)
			}
		}
	}
	if failures == 0 {
		t.Fatal("seed produced no injected panics; test exercises nothing (pick another BaseSeed)")
	}
}

// TestMatrixQuarantinesAlwaysPanicking drives every trial into a panic:
// each pair must retire into quarantine after MaxFailures attempts, the
// matrix must still return cleanly, and the quarantined cells must read
// as NaN (the report layer's ××).
func TestMatrixQuarantinesAlwaysPanicking(t *testing.T) {
	opts := fastOpts(netem.HighlyConstrained())
	opts.Chaos = &chaos.Config{PanicRate: 1}
	opts.MaxFailures = 2
	svcs := []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("iPerf (Cubic)"),
	}
	m := &Matrix{Services: svcs, Net: netem.HighlyConstrained(), Opts: opts}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.FailedPairs()); got != 3 {
		t.Fatalf("FailedPairs = %d, want all 3", got)
	}
	for key, p := range res.Pairs {
		if !p.Failed || len(p.Failures) != opts.MaxFailures || p.Retries != opts.MaxFailures-1 {
			t.Fatalf("pair %s: failed=%v failures=%d retries=%d, want quarantine after %d",
				key, p.Failed, len(p.Failures), p.Retries, opts.MaxFailures)
		}
	}
	v, ok := res.SharePct("iPerf (Reno)", "iPerf (Cubic)")
	if !ok || !math.IsNaN(v) {
		t.Fatalf("quarantined SharePct = %v, %v; want NaN, true", v, ok)
	}
	if v, ok := res.Utilization("iPerf (Reno)", "iPerf (Reno)"); !ok || !math.IsNaN(v) {
		t.Fatalf("quarantined Utilization = %v, %v; want NaN, true", v, ok)
	}
	if got := len(res.LosingShares()); got != 0 {
		t.Fatalf("quarantined pairs leaked into LosingShares: %d", got)
	}
}

// TestWatchdogResumeEquivalence is the acceptance criterion: a cycle
// interrupted mid-matrix and resumed from its checkpoint must produce a
// CycleResult byte-identical to an uninterrupted run — under active
// fault injection.
func TestWatchdogResumeEquivalence(t *testing.T) {
	mk := func(ckpt string, interrupt func() bool) *Watchdog {
		opts := fastOpts(netem.HighlyConstrained())
		opts.BaseSeed = 11
		opts.Chaos = &chaos.Config{PanicRate: 0.15, ErrorRate: 0.10, CorruptRate: 0.10}
		return &Watchdog{
			Services:       threeServices(),
			Settings:       []netem.Config{netem.HighlyConstrained()},
			Opts:           opts,
			CheckpointPath: ckpt,
			Interrupt:      interrupt,
		}
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")

	// Interrupt the cycle partway through the matrix (after the 3 solo
	// calibrations and a couple of round-robin rounds).
	calls := 0
	wA := mk(ckpt, func() bool { calls++; return calls > 12 })
	if _, err := wA.RunCycle(); err != ErrInterrupted {
		t.Fatalf("interrupted cycle returned %v, want ErrInterrupted", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}

	wB := mk(ckpt, nil)
	found, err := wB.LoadCheckpoint()
	if err != nil || !found {
		t.Fatalf("LoadCheckpoint = %v, %v; want found", found, err)
	}
	crB, err := wB.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not removed after completed cycle: %v", err)
	}

	wC := mk("", nil)
	crC, err := wC.RunCycle()
	if err != nil {
		t.Fatal(err)
	}

	jb, _ := json.Marshal(crB)
	jc, _ := json.Marshal(crC)
	if !bytes.Equal(jb, jc) {
		t.Fatalf("resumed cycle differs from uninterrupted run:\n%s\nvs\n%s", jb, jc)
	}
}

// TestCheckpointRoundTrip verifies the atomic save/load path and its
// failure modes.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	cp := newCheckpoint(3, 2)
	cp.Calibration[0] = map[string]float64{"iPerf (Reno)": 7.5}
	cp.Pairs[1]["0|1"] = &PairOutcome{
		Incumbent: "iPerf (Reno)", Contender: "iPerf (Cubic)",
		Trials: []TrialResult{{
			Mbps: [2]float64{4, 4}, FairShareMbps: [2]float64{4, 4},
			SharePct: [2]float64{100, 100}, Utilization: 1,
		}},
		Retries:  1,
		Failures: []TrialFailure{{Attempt: 0, Seed: 9, Kind: "panic", Msg: "boom"}},
	}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	// Atomicity: no stray temp files survive a successful save.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want 1", len(entries))
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cp)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("checkpoint did not round-trip:\n%s\nvs\n%s", a, b)
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint must fail to load")
	}
	if err := os.WriteFile(path, []byte(`{"cycle":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("cycle-0 checkpoint must fail to load")
	}
	w := &Watchdog{CheckpointPath: filepath.Join(dir, "missing.json")}
	if found, err := w.LoadCheckpoint(); err != nil || found {
		t.Fatalf("missing checkpoint: found=%v err=%v, want false, nil", found, err)
	}
}

// TestValidityGate checks the corrupt-result gate against hand-built
// results and against every chaos corruption kind.
func TestValidityGate(t *testing.T) {
	valid := TrialResult{
		Mbps:          [2]float64{4, 4},
		FairShareMbps: [2]float64{4, 4},
		SharePct:      [2]float64{100, 100},
		Utilization:   1,
		Loss:          [2]float64{0.01, 0.02},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	mutate := map[string]func(*TrialResult){
		"nan-throughput":  func(r *TrialResult) { r.Mbps[0] = math.NaN() },
		"inf-throughput":  func(r *TrialResult) { r.Mbps[1] = math.Inf(1) },
		"neg-throughput":  func(r *TrialResult) { r.Mbps[1] = -1 },
		"loss-above-one":  func(r *TrialResult) { r.Loss[0] = 1.5 },
		"nan-loss":        func(r *TrialResult) { r.Loss[1] = math.NaN() },
		"neg-queue-delay": func(r *TrialResult) { r.QueueDelay[0] = -sim.Second },
		"utilization":     func(r *TrialResult) { r.Utilization = 4.2 },
		"nan-utilization": func(r *TrialResult) { r.Utilization = math.NaN() },
		"share-mismatch":  func(r *TrialResult) { r.SharePct[0] = 500 },
	}
	for name, f := range mutate {
		r := valid
		f(&r)
		if r.Validate() == nil {
			t.Errorf("%s passed the validity gate", name)
		}
	}
	// Every corruption the chaos plan can apply must be caught (the
	// String fallback marks the end of the defined kinds).
	for k := chaos.CorruptKind(0); !strings.HasPrefix(k.String(), "corrupt("); k++ {
		r := valid
		applyCorruption(&r, k)
		if r.Validate() == nil {
			t.Errorf("corruption %v passed the validity gate", k)
		}
	}
}

// TestRunTrialSafeFaultClasses checks each trial-level fault surfaces
// as the right typed TrialError (or gated result) through the panic
// barrier.
func TestRunTrialSafeFaultClasses(t *testing.T) {
	base := Spec{
		Incumbent: services.ByName("iPerf (Reno)"),
		Contender: services.ByName("iPerf (Cubic)"),
		Net:       netem.HighlyConstrained(),
		Seed:      3,
	}.QuickTiming()

	spec := base
	spec.Chaos = &chaos.Config{PanicRate: 1}
	if _, err := runTrialSafe(spec); err == nil {
		t.Fatal("injected panic not surfaced")
	} else if te := asTrialError(err, spec.Seed); te.Kind != "panic" || te.Seed != spec.Seed {
		t.Fatalf("panic fault = %+v", te)
	}

	spec.Chaos = &chaos.Config{ErrorRate: 1}
	if _, err := runTrialSafe(spec); err == nil {
		t.Fatal("injected error not surfaced")
	} else if te := asTrialError(err, spec.Seed); te.Kind != "error" {
		t.Fatalf("error fault = %+v", te)
	}

	spec.Chaos = &chaos.Config{CorruptRate: 1}
	res, err := runTrialSafe(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Validate() == nil {
		t.Fatal("corrupted result passed the validity gate")
	}
}

// TestMatrixRaceSmoke runs several chaos-enabled matrices concurrently;
// under `go test -race` (scripts/ci.sh) this verifies independent
// matrices share no mutable state.
func TestMatrixRaceSmoke(t *testing.T) {
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for k := 0; k < 4; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := fastOpts(netem.HighlyConstrained())
			opts.BaseSeed = uint64(100 + k)
			opts.Chaos = hotChaos()
			m := &Matrix{
				Services: []services.Service{
					services.ByName("iPerf (Reno)"),
					services.ByName("iPerf (Cubic)"),
				},
				Net:  netem.HighlyConstrained(),
				Opts: opts,
			}
			if _, err := m.Run(); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
