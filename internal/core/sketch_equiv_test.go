package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// sketchTestServices is a small catalog exercising distinct CCAs.
func sketchTestServices() []services.Service {
	return []services.Service{
		services.ByName("iPerf (Reno)"),
		services.ByName("iPerf (Cubic)"),
		services.ByName("iPerf (BBR)"),
	}
}

// TestSketchMatrixEquivalence: the sketch-backed matrix produces the
// identical verdict matrix to the exact-sample path — every accessor
// the report layer reads must agree to the last bit on every pair,
// because the sketch stays in its exact regime at real trial budgets.
func TestSketchMatrixEquivalence(t *testing.T) {
	svcs := sketchTestServices()
	net := netem.HighlyConstrained()
	run := func(sketch bool) *MatrixResult {
		opts := fastOpts(net)
		opts.SketchStats = sketch
		m := &Matrix{Services: svcs, Net: net, Opts: opts}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact, sk := run(false), run(true)
	for _, a := range exact.Names {
		for _, b := range exact.Names {
			pe, slot, _ := exact.Cell(a, b)
			ps, _, _ := sk.Cell(a, b)
			if pe.Counted() != ps.Counted() || pe.Unstable != ps.Unstable || pe.Failed != ps.Failed {
				t.Fatalf("%s|%s: protocol diverged: n %d/%d unstable %v/%v",
					a, b, pe.Counted(), ps.Counted(), pe.Unstable, ps.Unstable)
			}
			if pe.MedianSharePct(slot) != ps.MedianSharePct(slot) ||
				pe.IQRSharePct(slot) != ps.IQRSharePct(slot) ||
				pe.MedianMbps(slot) != ps.MedianMbps(slot) ||
				pe.MedianUtilization() != ps.MedianUtilization() ||
				pe.MedianLoss(slot) != ps.MedianLoss(slot) ||
				pe.MedianQueueDelay(slot) != ps.MedianQueueDelay(slot) {
				t.Fatalf("%s|%s slot %d: sketch statistics diverged from exact", a, b, slot)
			}
			elo, ehi := pe.ShareCI(slot)
			slo, shi := ps.ShareCI(slot)
			if elo != slo || ehi != shi {
				t.Fatalf("%s|%s: ShareCI (%v,%v) != (%v,%v)", a, b, slo, shi, elo, ehi)
			}
			if ps.Sketches == nil || !ps.Sketches.SharePct[slot].Exact() {
				t.Fatalf("%s|%s: sketch left exact regime at test trial budgets", a, b)
			}
		}
	}
}

// TestSketchWorkerCountDeterminism: sketch-mode matrices are
// byte-identical (JSON-compared) at any worker count, like every other
// artifact in the repo.
func TestSketchWorkerCountDeterminism(t *testing.T) {
	svcs := sketchTestServices()
	net := netem.HighlyConstrained()
	run := func(workers int) []byte {
		opts := fastOpts(net)
		opts.SketchStats = true
		m := &Matrix{Services: svcs, Net: net, Opts: opts, Workers: workers}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res.Pairs)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	for _, w := range []int{2, 5} {
		if got := run(w); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d: sketch matrix diverged from serial", w)
		}
	}
}

// TestSketchCheckpointRoundTrip: a sketch-backed PairOutcome survives
// the checkpoint JSON format with byte-identical sketch state, so a
// resumed sketch run restores exactly the statistics it flushed.
func TestSketchCheckpointRoundTrip(t *testing.T) {
	net := netem.HighlyConstrained()
	opts := fastOpts(net)
	opts.SketchStats = true
	out, err := RunPair(services.ByName("iPerf (Reno)"), services.ByName("iPerf (Cubic)"), net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sketches == nil || out.Sketches.N == 0 {
		t.Fatal("sketch mode produced no sketches")
	}
	blob, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back PairOutcome
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counted() != out.Counted() {
		t.Fatalf("round trip lost trials: %d != %d", back.Counted(), out.Counted())
	}
	for slot := 0; slot < 2; slot++ {
		if !bytes.Equal(back.Sketches.SharePct[slot].Encode(), out.Sketches.SharePct[slot].Encode()) {
			t.Fatalf("slot %d share sketch changed across JSON", slot)
		}
		if back.MedianSharePct(slot) != out.MedianSharePct(slot) {
			t.Fatalf("slot %d median changed across JSON", slot)
		}
	}
	if back.Sketches.Obs != out.Sketches.Obs {
		t.Fatalf("telemetry aggregate changed: %+v != %+v", back.Sketches.Obs, out.Sketches.Obs)
	}
	reblob, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reblob, blob) {
		t.Fatal("checkpoint JSON is not stable across a round trip")
	}
}

// TestSketchAdaptiveEquivalence: under adaptive budgets the
// sketch-backed sequential stopper (ring-buffered verdicts) stops every
// pair at the same trial with the same reason as the slice-backed one.
func TestSketchAdaptiveEquivalence(t *testing.T) {
	svcs := sketchTestServices()
	net := netem.HighlyConstrained()
	run := func(sketch bool) *MatrixResult {
		opts := fastOpts(net)
		opts.MaxTrials, opts.Step = 8, 2
		opts.Adaptive = &AdaptiveOptions{MinTrials: 2, CIWidthPct: 10}
		opts.SketchStats = sketch
		m := &Matrix{Services: svcs, Net: net, Opts: opts}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact, sk := run(false), run(true)
	for _, a := range exact.Names {
		for _, b := range exact.Names {
			pe, _, _ := exact.Cell(a, b)
			ps, _, _ := sk.Cell(a, b)
			if pe.Counted() != ps.Counted() || pe.StopReason != ps.StopReason ||
				pe.Budget != ps.Budget || pe.Unstable != ps.Unstable {
				t.Fatalf("%s|%s: adaptive stopping diverged: n %d/%d reason %q/%q budget %d/%d",
					a, b, pe.Counted(), ps.Counted(), pe.StopReason, ps.StopReason,
					pe.Budget, ps.Budget)
			}
		}
	}
}

// TestSketchMergedShareSketch: the matrix-level merged sketch holds
// every counted trial's two share samples.
func TestSketchMergedShareSketch(t *testing.T) {
	svcs := sketchTestServices()
	net := netem.HighlyConstrained()
	opts := fastOpts(net)
	opts.SketchStats = true
	m := &Matrix{Services: svcs, Net: net, Opts: opts}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	merged := res.MergedShareSketch()
	if merged == nil {
		t.Fatal("sketch-mode matrix returned no merged sketch")
	}
	want := 0
	for i, a := range res.Names {
		for j := i; j < len(res.Names); j++ {
			if p, _, ok := res.Cell(a, res.Names[j]); ok && !p.Failed {
				want += 2 * p.Counted()
			}
		}
	}
	if merged.Count() != want {
		t.Fatalf("merged sketch holds %d samples, want %d", merged.Count(), want)
	}

	// Exact mode has nothing to merge.
	opts.SketchStats = false
	m2 := &Matrix{Services: svcs, Net: net, Opts: opts}
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.MergedShareSketch() != nil {
		t.Fatal("exact-mode matrix must return nil merged sketch")
	}
}
