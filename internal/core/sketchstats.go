package core

import (
	"fmt"

	"prudentia/internal/stats"
)

// Sketch-backed per-pair statistics (SchedulerOptions.SketchStats).
// Instead of retaining every TrialResult on the outcome — O(trials)
// state per pair, raw samples shipped over checkpoints and the fleet
// wire — a pair carries one PairSketches: a fixed set of mergeable
// quantile sketches (internal/stats) plus the summed deterministic
// telemetry aggregate. State per pair is O(1) in the trial count.
//
// Up to stats.SketchBufferCap counted trials (far beyond any paper
// budget) the sketches hold every sample exactly and answer with the
// very same R-7 / order-statistic code the raw path uses, so a
// sketch-backed run's verdict matrix, report, and stopping decisions
// are byte-identical to the exact-sample path on the seed matrix.

// PairSketches is the O(1) statistics state of one pair: a sketch per
// reported metric, keyed by the same slot convention as TrialResult
// (slot 0 incumbent, slot 1 contender), plus the summed TrialObs
// aggregate that lets the coordinator reconstruct counter totals for
// remotely executed pairs without per-trial data. It rides checkpoint
// JSON and the fleet protocol via the sketches' base64 binary
// encoding.
type PairSketches struct {
	// N counts the counted trials folded in (the sketch-mode
	// counterpart of len(PairOutcome.Trials)).
	N int `json:"n"`
	// Mbps holds each slot's per-trial throughput distribution.
	Mbps [2]*stats.Sketch `json:"mbps"`
	// SharePct holds each slot's MmF-share distribution (the heatmap
	// and adaptive-stopper statistic).
	SharePct [2]*stats.Sketch `json:"share_pct"`
	// Utilization holds the whole-link utilization distribution.
	Utilization *stats.Sketch `json:"utilization"`
	// Loss holds each slot's loss-rate distribution.
	Loss [2]*stats.Sketch `json:"loss"`
	// QueueDelaySec holds each slot's queueing-delay distribution, in
	// seconds.
	QueueDelaySec [2]*stats.Sketch `json:"queue_delay_sec"`
	// SimSeconds holds the per-trial simulated-duration distribution
	// (feeds the coordinator's trial-duration histogram for remote
	// pairs).
	SimSeconds *stats.Sketch `json:"sim_seconds"`
	// Obs is the element-wise sum (max for the occupancy high water) of
	// every counted trial's deterministic telemetry aggregate.
	Obs TrialObs `json:"obs"`
}

// newPairSketches allocates the full sketch set for one pair.
func newPairSketches() *PairSketches {
	ps := &PairSketches{
		Utilization: stats.NewSketch(),
		SimSeconds:  stats.NewSketch(),
	}
	for s := 0; s < 2; s++ {
		ps.Mbps[s] = stats.NewSketch()
		ps.SharePct[s] = stats.NewSketch()
		ps.Loss[s] = stats.NewSketch()
		ps.QueueDelaySec[s] = stats.NewSketch()
	}
	return ps
}

// observe folds one counted trial into the sketch set — the sketch-mode
// counterpart of appending to PairOutcome.Trials.
func (ps *PairSketches) observe(res *TrialResult) {
	ps.N++
	for s := 0; s < 2; s++ {
		ps.Mbps[s].Add(res.Mbps[s])
		ps.SharePct[s].Add(res.SharePct[s])
		ps.Loss[s].Add(res.Loss[s])
		ps.QueueDelaySec[s].Add(res.QueueDelay[s].Seconds())
	}
	ps.Utilization.Add(res.Utilization)
	ps.SimSeconds.Add(res.Obs.SimSeconds)
	ps.foldObs(res.Obs)
}

// foldObs accumulates one trial's telemetry aggregate: every counter
// field sums; the occupancy high water takes the max.
func (ps *PairSketches) foldObs(o TrialObs) {
	ps.Obs.ArrivedPackets += o.ArrivedPackets
	ps.Obs.DroppedPackets += o.DroppedPackets
	ps.Obs.DeliveredPackets += o.DeliveredPackets
	ps.Obs.DeliveredBytes += o.DeliveredBytes
	if o.OccupancyHighWater > ps.Obs.OccupancyHighWater {
		ps.Obs.OccupancyHighWater = o.OccupancyHighWater
	}
	ps.Obs.UpstreamSent += o.UpstreamSent
	ps.Obs.ExternalDrops += o.ExternalDrops
	ps.Obs.ChaosDrops += o.ChaosDrops
	ps.Obs.Retransmits += o.Retransmits
	ps.Obs.Timeouts += o.Timeouts
	ps.Obs.CwndEvents += o.CwndEvents
	ps.Obs.TailProbes += o.TailProbes
	ps.Obs.ChaosFlaps += o.ChaosFlaps
	ps.Obs.ChaosSags += o.ChaosSags
	ps.Obs.ChaosStalls += o.ChaosStalls
	ps.Obs.SimSeconds += o.SimSeconds
}

// Merge folds other's sketches, counts, and telemetry aggregate into
// ps. Like stats.Sketch.Merge it is commutative, associative, and
// shard-split invariant, so per-pair sketches from any number of fleet
// workers — or per-cell sketches from a sweep grid — combine into the
// same aggregate regardless of who produced which shard. other is not
// modified; a nil other is a no-op.
func (ps *PairSketches) Merge(other *PairSketches) error {
	if other == nil {
		return nil
	}
	for s := 0; s < 2; s++ {
		if err := ps.Mbps[s].Merge(other.Mbps[s]); err != nil {
			return fmt.Errorf("core: merging mbps sketches: %w", err)
		}
		if err := ps.SharePct[s].Merge(other.SharePct[s]); err != nil {
			return fmt.Errorf("core: merging share sketches: %w", err)
		}
		if err := ps.Loss[s].Merge(other.Loss[s]); err != nil {
			return fmt.Errorf("core: merging loss sketches: %w", err)
		}
		if err := ps.QueueDelaySec[s].Merge(other.QueueDelaySec[s]); err != nil {
			return fmt.Errorf("core: merging queue-delay sketches: %w", err)
		}
	}
	if err := ps.Utilization.Merge(other.Utilization); err != nil {
		return fmt.Errorf("core: merging utilization sketches: %w", err)
	}
	if err := ps.SimSeconds.Merge(other.SimSeconds); err != nil {
		return fmt.Errorf("core: merging sim-seconds sketches: %w", err)
	}
	ps.N += other.N
	// other.Obs is itself the summed aggregate of other's trials; sums
	// of sums are sums, and the one max-semantics field
	// (OccupancyHighWater) folds by max, matching foldObs.
	ps.foldObs(other.Obs)
	return nil
}

// MergedShareSketch merges every non-quarantined pair's two slot share
// sketches into one distribution — the cycle-level "all counted shares"
// aggregate the sweep harness reports. Returns nil when the matrix ran
// in exact-sample mode (no sketches to merge).
func (r *MatrixResult) MergedShareSketch() *stats.Sketch {
	var agg *stats.Sketch
	for i := range r.Names {
		for j := i; j < len(r.Names); j++ {
			p := r.Pairs[pairKey(i, j)]
			if p == nil || p.Failed || p.Sketches == nil || p.Counted() == 0 {
				continue
			}
			if agg == nil {
				agg = stats.NewSketchAlpha(p.Sketches.SharePct[0].Alpha())
			}
			for s := 0; s < 2; s++ {
				if err := agg.Merge(p.Sketches.SharePct[s]); err != nil {
					return nil // mixed geometries: no meaningful aggregate
				}
			}
		}
	}
	return agg
}
