package core

import (
	"reflect"
	"testing"
)

// Boundary arithmetic for the breaker state machine: the trip
// comparison is `score >= threshold` and the decay drop is
// `score < 0.01`, so scores landing exactly on either boundary are the
// interesting cases.

// TestBreakerTripsAtExactThreshold: a score reaching exactly the
// threshold opens the breaker; one epsilon below does not.
func TestBreakerTripsAtExactThreshold(t *testing.T) {
	bs := &BreakerSet{}
	bs.Penalize("svc", DefaultBreakerThreshold-0.001)
	if got := bs.State("svc"); got != BreakerClosed {
		t.Fatalf("below threshold: state %v, want closed", got)
	}
	bs.Penalize("svc", 0.001)
	if got := bs.State("svc"); got != BreakerOpen {
		t.Fatalf("at exact threshold: state %v, want open", got)
	}

	// Same boundary through a custom threshold, in one penalty.
	bs2 := &BreakerSet{Threshold: 3}
	bs2.Penalize("svc", 3)
	if got := bs2.State("svc"); got != BreakerOpen {
		t.Fatalf("score == custom threshold: state %v, want open", got)
	}
}

// TestBreakerDecayHalving: cycle-end decay halves closed scores; a
// score that halves to exactly the 0.01 floor survives, one that
// halves below it is dropped entirely.
func TestBreakerDecayHalving(t *testing.T) {
	bs := &BreakerSet{}
	bs.Penalize("a", 4)
	bs.Decay()
	infos := bs.Status()
	if len(infos) != 1 || infos[0].Score != 2 {
		t.Fatalf("4 after one decay: %+v, want score 2", infos)
	}
	bs.Decay()
	if got := bs.Status()[0].Score; got != 1 {
		t.Fatalf("after two decays: %v, want 1", got)
	}

	// 0.02 halves to exactly 0.01: NOT dropped (< is strict).
	bs2 := &BreakerSet{}
	bs2.Penalize("edge", 0.02)
	bs2.Decay()
	if infos := bs2.Status(); len(infos) != 1 || infos[0].Score != 0.01 {
		t.Fatalf("0.02 after decay: %+v, want surviving score 0.01", infos)
	}
	// One more halving lands at 0.005 < 0.01: dropped.
	bs2.Decay()
	if infos := bs2.Status(); len(infos) != 0 {
		t.Fatalf("0.01 after decay: %+v, want entry dropped", infos)
	}
}

// TestBreakerOpenEntriesDoNotDecay: decay only ages closed breakers —
// an open service cannot rehabilitate by waiting; it must pass its
// canary probe.
func TestBreakerOpenEntriesDoNotDecay(t *testing.T) {
	bs := &BreakerSet{}
	bs.Penalize("sick", DefaultBreakerThreshold+2)
	if bs.State("sick") != BreakerOpen {
		t.Fatal("setup: breaker not open")
	}
	for i := 0; i < 10; i++ {
		bs.Decay()
	}
	infos := bs.Status()
	if len(infos) != 1 || infos[0].State != "open" || infos[0].Score != DefaultBreakerThreshold+2 {
		t.Fatalf("open entry after 10 decays: %+v, want unchanged", infos)
	}

	// Half-open entries are likewise exempt (the probe owns their fate).
	bs.BeginProbe("sick")
	bs.Decay()
	if got := bs.Status()[0].Score; got != DefaultBreakerThreshold+2 {
		t.Fatalf("half-open entry decayed to %v", got)
	}
}

// TestBreakerProbeBoundaries: a successful canary resets the score to a
// clean slate; a failed one re-opens without touching the score.
func TestBreakerProbeBoundaries(t *testing.T) {
	bs := &BreakerSet{}
	bs.Penalize("svc", 7)
	bs.BeginProbe("svc")
	bs.ProbeResult("svc", false)
	if st := bs.Status(); st[0].State != "open" || st[0].Score != 7 {
		t.Fatalf("failed probe: %+v, want open with score 7", st)
	}
	bs.BeginProbe("svc")
	bs.ProbeResult("svc", true)
	if st := bs.Status(); st[0].State != "closed" || st[0].Score != 0 {
		t.Fatalf("successful probe: %+v, want closed with score 0", st)
	}
}

// TestBreakerRescoredResume reproduces the crash-resume contract for a
// cycle in which a breaker OPENED mid-cycle and the process was then
// killed: the resumed process restores the cycle-start snapshot and
// re-scores the same outcome sequence, and must land in the identical
// breaker state — including the mid-sequence trip — as the original.
func TestBreakerRescoredResume(t *testing.T) {
	outcomes := []*PairOutcome{
		{Incumbent: "A", Contender: "B", Corrupt: 1},
		{Incumbent: "A", Contender: "C", Failed: true}, // +2 each → A at 3
		{Incumbent: "A", Contender: "B", Failed: true}, // +2 each → A trips at 5
		{Incumbent: "B", Contender: "C"},
		{Incumbent: "A", Contender: "A", Corrupt: 2}, // open breaker keeps scoring
	}

	// Original process: carry some decayed history into the cycle,
	// snapshot at cycle start (what the checkpoint stores), then score
	// the cycle until the "kill".
	original := &BreakerSet{}
	original.Penalize("B", 2)
	original.Decay() // B enters the cycle at score 1
	cycleStart := original.Status()
	var trips []string
	original.OnTransition = func(svc string, from, to BreakerState) {
		trips = append(trips, svc+":"+from.String()+">"+to.String())
	}
	for _, o := range outcomes {
		original.scorePair(o)
	}
	if len(trips) != 1 || trips[0] != "A:closed>open" {
		t.Fatalf("setup: transitions %v, want exactly A tripping open", trips)
	}

	// Resumed process: restore the snapshot, re-score the same prefix.
	resumed := &BreakerSet{}
	resumed.Restore(cycleStart)
	for _, o := range outcomes {
		resumed.scorePair(o)
	}
	if !reflect.DeepEqual(original.Status(), resumed.Status()) {
		t.Fatalf("re-scored resume diverged:\noriginal: %+v\nresumed:  %+v",
			original.Status(), resumed.Status())
	}
	if resumed.State("A") != BreakerOpen {
		t.Fatal("resumed run lost the mid-cycle trip")
	}
}
