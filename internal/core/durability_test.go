package core

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"prudentia/internal/chaos"
	"prudentia/internal/netem"
	"prudentia/internal/obs"
)

// TestBreakerLifecycle drives one breaker through the full state
// machine: score accumulation, trip at the threshold, half-open probe,
// re-admission with a clean slate, and closed-score decay.
func TestBreakerLifecycle(t *testing.T) {
	var transitions []string
	bs := &BreakerSet{OnTransition: func(svc string, from, to BreakerState) {
		transitions = append(transitions, svc+": "+from.String()+" -> "+to.String())
	}}

	bs.penalize("A", 4)
	if got := bs.State("A"); got != BreakerClosed {
		t.Fatalf("below threshold: state %v, want closed", got)
	}
	bs.penalize("A", 1)
	if got := bs.State("A"); got != BreakerOpen {
		t.Fatalf("at threshold: state %v, want open", got)
	}
	if open := bs.OpenServices(); len(open) != 1 || open[0] != "A" {
		t.Fatalf("OpenServices = %v, want [A]", open)
	}

	// Failed probe re-opens; successful probe closes with score reset.
	bs.beginProbe("A")
	if got := bs.State("A"); got != BreakerHalfOpen {
		t.Fatalf("after beginProbe: state %v, want half-open", got)
	}
	bs.probeResult("A", false)
	if got := bs.State("A"); got != BreakerOpen {
		t.Fatalf("after failed probe: state %v, want open", got)
	}
	bs.beginProbe("A")
	bs.probeResult("A", true)
	if got := bs.State("A"); got != BreakerClosed {
		t.Fatalf("after ok probe: state %v, want closed", got)
	}
	if st := bs.Status(); len(st) != 1 || st[0].Score != 0 {
		t.Fatalf("ok probe must reset the score, got %+v", st)
	}

	want := []string{
		"A: closed -> open",
		"A: open -> half-open",
		"A: half-open -> open",
		"A: open -> half-open",
		"A: half-open -> closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q", i, transitions[i], want[i])
		}
	}

	// Decay halves closed scores and drops spent entries; open breakers
	// never decay.
	bs.penalize("B", 2)
	bs.penalize("C", 9) // opens
	bs.decay()
	if st := bs.Status(); len(st) != 2 { // A dropped (score 0), B halved, C open
		t.Fatalf("after decay: %+v", st)
	}
	if got := bs.entries["B"].score; got != 1 {
		t.Fatalf("B score after decay = %v, want 1", got)
	}
	if got := bs.State("C"); got != BreakerOpen {
		t.Fatalf("open breaker decayed: %v", got)
	}

	// Checkpoint snapshot round-trip.
	snap := bs.Status()
	restored := &BreakerSet{}
	restored.Restore(snap)
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(restored.Status())
	if !bytes.Equal(a, b) {
		t.Fatalf("Restore did not round-trip:\n%s\nvs\n%s", a, b)
	}
}

// TestBreakerScorePair checks the outcome-folding weights: failures hit
// both members except brownouts (exact attribution via the error
// message), corruption and quarantine hit both, self-pairs count once.
func TestBreakerScorePair(t *testing.T) {
	bs := &BreakerSet{Threshold: 1000}
	bs.scorePair(&PairOutcome{
		Incumbent: "A", Contender: "B",
		Corrupt: 1,
		Failed:  true,
		Failures: []TrialFailure{
			{Kind: "panic", Msg: "boom"},
			{Kind: "brownout", Msg: brownoutMsgPrefix + "B"},
		},
	})
	// A: 1 (panic) + 1 (corrupt) + 2 (quarantine) = 4
	// B: 1 (panic) + 1 (brownout, attributed) + 1 (corrupt) + 2 = 5
	if got := bs.entries["A"].score; got != 4 {
		t.Fatalf("A score = %v, want 4", got)
	}
	if got := bs.entries["B"].score; got != 5 {
		t.Fatalf("B score = %v, want 5", got)
	}

	bs2 := &BreakerSet{Threshold: 1000}
	bs2.scorePair(&PairOutcome{
		Incumbent: "A", Contender: "A",
		Failures: []TrialFailure{{Kind: "error", Msg: "x"}},
		Failed:   true,
	})
	if got := bs2.entries["A"].score; got != 3 { // self-pair counts once
		t.Fatalf("self-pair A score = %v, want 3", got)
	}
}

// TestReaperQuarantinesHungTrials arms the wall-clock reaper with an
// impossible budget (nanoseconds for a 20-second emulation), so every
// attempt is reaped, retried, and the pair finally quarantined with
// typed "reap" failures.
func TestReaperQuarantinesHungTrials(t *testing.T) {
	net := netem.HighlyConstrained()
	opts := fastOpts(net)
	opts.WallBudget = 1e-9
	svcs := threeServices()
	out, err := RunPair(svcs[0], svcs[1], net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed {
		t.Fatal("reaped pair must be quarantined")
	}
	if len(out.Failures) != opts.MaxFailures {
		t.Fatalf("got %d failures, want %d", len(out.Failures), opts.MaxFailures)
	}
	for _, f := range out.Failures {
		if f.Kind != "reap" {
			t.Fatalf("failure kind %q, want reap (msg %q)", f.Kind, f.Msg)
		}
	}
}

// TestReaperGenerousBudgetIsTransparent: a budget no healthy trial can
// exceed must not perturb results — the reaper path (goroutine + timer)
// yields byte-identical outcomes to the direct path.
func TestReaperGenerousBudgetIsTransparent(t *testing.T) {
	net := netem.HighlyConstrained()
	run := func(budget float64) *PairOutcome {
		opts := fastOpts(net)
		opts.WallBudget = budget
		svcs := threeServices()
		out, err := RunPair(svcs[0], svcs[2], net, opts)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain, _ := json.Marshal(run(0))
	budgeted, _ := json.Marshal(run(1e6))
	if !bytes.Equal(plain, budgeted) {
		t.Fatalf("wall budget perturbed results:\n%s\nvs\n%s", plain, budgeted)
	}
}

// TestJournalResumeEquivalence is the tentpole acceptance test at the
// package level: an interrupted journaled cycle, resumed, must produce
// a CycleResult and fault ledger identical to an uninterrupted run —
// with the resumed process re-simulating strictly fewer trials than a
// checkpoint-only resume of the same interruption, because journaled
// attempts replay instead of re-running.
func TestJournalResumeEquivalence(t *testing.T) {
	dir := t.TempDir()
	type run struct {
		cr     *CycleResult
		ledger []FaultEvent
		reg    *obs.Registry
	}
	mk := func(ckpt, jpath string, interrupt func() bool) (*Watchdog, *run) {
		opts := fastOpts(netem.HighlyConstrained())
		opts.BaseSeed = 11
		opts.Chaos = &chaos.Config{PanicRate: 0.15, ErrorRate: 0.10, CorruptRate: 0.10}
		r := &run{reg: obs.NewRegistry()}
		w := &Watchdog{
			Services:       threeServices(),
			Settings:       []netem.Config{netem.HighlyConstrained()},
			Opts:           opts,
			CheckpointPath: ckpt,
			JournalPath:    jpath,
			Interrupt:      interrupt,
			Obs:            NewInstruments(r.reg, nil),
			OnFault:        func(ev FaultEvent) { r.ledger = append(r.ledger, ev) },
		}
		return w, r
	}
	interruptAfter := func(n int) func() bool {
		calls := 0
		return func() bool { calls++; return calls > n }
	}

	// Reference: uninterrupted, no durability files.
	wRef, ref := mk("", "", nil)
	crRef, err := wRef.RunCycle()
	if err != nil {
		t.Fatal(err)
	}

	// Journal mode: interrupt mid-matrix, then resume.
	ckptJ := filepath.Join(dir, "j.ckpt")
	wal := filepath.Join(dir, "trials.wal")
	wA, _ := mk(ckptJ, wal, interruptAfter(12))
	if _, err := wA.RunCycle(); err != ErrInterrupted {
		t.Fatalf("interrupted cycle returned %v, want ErrInterrupted", err)
	}
	if _, err := os.Stat(wal); err != nil {
		t.Fatalf("no journal after interrupt: %v", err)
	}
	wB, rb := mk(ckptJ, wal, nil)
	if found, err := wB.LoadCheckpoint(); err != nil || !found {
		t.Fatalf("LoadCheckpoint = %v, %v", found, err)
	}
	crB, err := wB.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(wal); !os.IsNotExist(err) {
		t.Fatalf("journal not removed after completed cycle: %v", err)
	}

	// Checkpoint-only mode: same interruption point, no journal.
	ckptC := filepath.Join(dir, "c.ckpt")
	wC, _ := mk(ckptC, "", interruptAfter(12))
	if _, err := wC.RunCycle(); err != ErrInterrupted {
		t.Fatalf("interrupted cycle returned %v, want ErrInterrupted", err)
	}
	wD, rd := mk(ckptC, "", nil)
	if found, err := wD.LoadCheckpoint(); err != nil || !found {
		t.Fatalf("LoadCheckpoint = %v, %v", found, err)
	}
	crD, err := wD.RunCycle()
	if err != nil {
		t.Fatal(err)
	}

	// All three produce the same CycleResult.
	jRef, _ := json.Marshal(crRef)
	for name, cr := range map[string]*CycleResult{"journal resume": crB, "checkpoint resume": crD} {
		got, _ := json.Marshal(cr)
		if !bytes.Equal(jRef, got) {
			t.Fatalf("%s differs from uninterrupted run:\n%s\nvs\n%s", name, jRef, got)
		}
	}

	// Journal replay re-emits the full ledger: the resumed process alone
	// reproduces the uninterrupted run's event stream, event for event.
	lRef, _ := json.Marshal(ref.ledger)
	lB, _ := json.Marshal(rb.ledger)
	if !bytes.Equal(lRef, lB) {
		t.Fatalf("journal-resumed ledger differs from uninterrupted run:\n%s\nvs\n%s", lRef, lB)
	}

	// And it re-simulates strictly less: every fresh execution in the
	// resumed journal run appends a record, so the append count bounds
	// its simulation work; the checkpoint-only resume re-simulates at
	// least every pair attempt it started.
	snapB, snapD := rb.reg.Snapshot(), rd.reg.Snapshot()
	if snapB.Counters["prudentia_journal_replayed_total"] == 0 {
		t.Fatal("journal resume replayed nothing")
	}
	fresh := snapB.Counters["prudentia_journal_records_total"]
	rerun := snapD.Counters["prudentia_trials_started_total"]
	if fresh >= rerun {
		t.Fatalf("journal resume re-simulated %d attempts, checkpoint-only %d; journal must re-run strictly fewer", fresh, rerun)
	}
}

// TestBrownoutBreakerAcceptance is the chaos acceptance test: a
// browned-out service must trip its circuit breaker open (its later
// pairs render ○○ instead of burning retry budgets), a canary probe
// during the brownout must fail and keep it open, and the first probe
// after the brownout ends must re-admit it.
func TestBrownoutBreakerAcceptance(t *testing.T) {
	const sick = "iPerf (BBR)"
	nets := []netem.Config{netem.HighlyConstrained(), netem.ModeratelyConstrained()}
	opts := fastOpts(nets[0])
	opts.BaseSeed = 5
	opts.Chaos = &chaos.Config{Brownouts: []*chaos.Brownout{{Service: sick, Trials: 1 << 40}}}
	reg := obs.NewRegistry()
	w := &Watchdog{
		Services: threeServices(),
		Settings: nets,
		Opts:     opts,
		Obs:      NewInstruments(reg, nil),
	}

	// Cycle 1: the brownout fails every trial touching the sick service.
	// Its breaker opens during setting 0's release, so setting 1 skips
	// its pairs without running a trial.
	cr1, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Breakers.State(sick); got != BreakerOpen {
		t.Fatalf("cycle 1: breaker %v, want open", got)
	}
	if v, ok := cr1.PerSetting[0].SharePct(sick, "iPerf (Reno)"); !ok || !math.IsNaN(v) {
		t.Fatalf("cycle 1 setting 0: sick cell = %v, %v; want NaN (quarantined)", v, ok)
	}
	if v, ok := cr1.PerSetting[1].SharePct(sick, "iPerf (Reno)"); !ok || !math.IsInf(v, -1) {
		t.Fatalf("cycle 1 setting 1: sick cell = %v, %v; want -Inf (breaker-skipped)", v, ok)
	}
	if _, ok := cr1.Calibration[1][sick]; ok {
		t.Fatal("cycle 1 setting 1: open service must skip calibration")
	}

	// Cycle 2: brownout still active — the canary probe fails and the
	// breaker stays open; every sick pair in every setting is skipped.
	cr2, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Breakers.State(sick); got != BreakerOpen {
		t.Fatalf("cycle 2: breaker %v, want open (probe must fail during brownout)", got)
	}
	for si := range cr2.PerSetting {
		if v, ok := cr2.PerSetting[si].SharePct(sick, sick); !ok || !math.IsInf(v, -1) {
			t.Fatalf("cycle 2 setting %d: sick self-cell = %v, %v; want -Inf", si, v, ok)
		}
	}

	// Cycle 3: brownout over — the probe succeeds, the service is
	// re-admitted, and its pairs measure normally again.
	w.Opts.Chaos = nil
	cr3, err := w.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Breakers.State(sick); got != BreakerClosed {
		t.Fatalf("cycle 3: breaker %v, want closed after successful probe", got)
	}
	if v, ok := cr3.PerSetting[0].SharePct(sick, "iPerf (Reno)"); !ok || math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("cycle 3: sick cell = %v, %v; want a real measurement", v, ok)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["prudentia_breaker_probes_total"]; got != 2 {
		t.Fatalf("probe count = %d, want 2 (one failed, one ok)", got)
	}
	if got := snap.Counters[`prudentia_breaker_transitions_total{to="closed"}`]; got != 1 {
		t.Fatalf("close transitions = %d, want 1", got)
	}
	if snap.Counters["prudentia_pairs_skipped_total"] == 0 {
		t.Fatal("no pairs were skipped while the breaker was open")
	}
	m := w.BuildManifest(cr3, reg)
	if m.Journal != nil {
		t.Fatal("manifest reports a journal for an unjournaled run")
	}
}
