package core

import (
	"prudentia/internal/obs"
)

// BuildManifest assembles the per-cycle run manifest: the reproduction
// recipe (seed scope, catalog, settings, worker count, chaos flag) plus
// the registry snapshot at cycle end. cr may be nil (interrupted before
// any setting completed); reg may be nil (empty metric snapshot).
//
// The snapshot's counters reconcile exactly with the cycle result:
//
//	prudentia_trials_completed_total == Σ PairOutcome.Counted()
//	prudentia_netem_dropped_packets_total == Σ Trials[].Obs.DroppedPackets
//	  (in sketch mode, == Σ Sketches.Obs.DroppedPackets — same totals)
//
// and so on for every netem/transport/chaos family, because those
// families fold only counted pair trials (see Instruments).
func (w *Watchdog) BuildManifest(cr *CycleResult, reg *obs.Registry) obs.Manifest {
	m := obs.NewManifest()
	m.Workers = w.Workers
	m.BaseSeed = w.Opts.BaseSeed
	m.ChaosEnabled = w.Opts.Chaos.Enabled()
	m.AdaptiveEnabled = w.Opts.Adaptive != nil
	if w.Opts.SketchStats {
		m.StatsMode = "sketch"
	}
	for _, svc := range w.Services {
		m.Services = append(m.Services, svc.Name())
	}
	m.Settings = w.Settings
	if cr != nil {
		m.Cycle = cr.Cycle
	} else {
		m.Cycle = len(w.cycles) + 1
		m.Interrupted = true
	}
	m.Breakers = w.Breakers.Status()
	m.Journal = w.lastJournal
	if reg != nil {
		m.Metrics = reg.Snapshot()
	}
	return m
}
