package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"prudentia/internal/chaos"
	"prudentia/internal/netem"
)

// TestMatrixParallelDeterminism lives in parallel_determinism_test.go
// (package core_test) so it can render heatmaps through internal/report,
// which imports core.

// TestWatchdogCheckpointDeterminismAcrossWorkers asserts the stronger
// cycle-level property: not only the final CycleResult but every
// intermediate checkpoint flushed during the cycle is byte-identical
// between a serial and an 8-worker run. The checkpoint file is sampled
// at each per-pair Progress callback, which the ordered merge fires
// after the corresponding checkpoint flush.
func TestWatchdogCheckpointDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) (snaps []string, final []byte) {
		ckpt := filepath.Join(t.TempDir(), "ckpt.json")
		opts := fastOpts(netem.HighlyConstrained())
		opts.BaseSeed = 21
		opts.Chaos = &chaos.Config{PanicRate: 0.12, ErrorRate: 0.08, CorruptRate: 0.10}
		w := &Watchdog{
			Services:       threeServices(),
			Settings:       []netem.Config{netem.HighlyConstrained()},
			Opts:           opts,
			Workers:        workers,
			CheckpointPath: ckpt,
			Progress: func(format string, args ...any) {
				b, err := os.ReadFile(ckpt)
				if err != nil {
					t.Errorf("checkpoint unreadable at progress point: %v", err)
					return
				}
				snaps = append(snaps, string(b))
			},
		}
		cr, err := w.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		final, _ = json.Marshal(cr)
		return snaps, final
	}
	serialSnaps, serialFinal := run(1)
	parallelSnaps, parallelFinal := run(8)
	if len(serialSnaps) == 0 {
		t.Fatal("no checkpoint snapshots captured")
	}
	if len(serialSnaps) != len(parallelSnaps) {
		t.Fatalf("snapshot counts differ: serial %d, parallel %d", len(serialSnaps), len(parallelSnaps))
	}
	for i := range serialSnaps {
		if serialSnaps[i] != parallelSnaps[i] {
			t.Fatalf("checkpoint %d differs between worker counts:\n%s\nvs\n%s",
				i, serialSnaps[i], parallelSnaps[i])
		}
	}
	if !bytes.Equal(serialFinal, parallelFinal) {
		t.Fatalf("final cycle differs between worker counts:\n%s\nvs\n%s", serialFinal, parallelFinal)
	}
}

// TestParallelInterruptCheckpointResume covers graceful shutdown of a
// parallel cycle (the -workers analogue of the SIGINT path): the first
// interrupt drains in-flight trials and leaves a loadable checkpoint,
// and a parallel resume from it replays into a cycle byte-identical to
// an uninterrupted serial run.
func TestParallelInterruptCheckpointResume(t *testing.T) {
	mk := func(ckpt string, workers int, interrupt func() bool) *Watchdog {
		opts := fastOpts(netem.HighlyConstrained())
		opts.BaseSeed = 11
		opts.Chaos = &chaos.Config{PanicRate: 0.15, ErrorRate: 0.10, CorruptRate: 0.10}
		return &Watchdog{
			Services:       threeServices(),
			Settings:       []netem.Config{netem.HighlyConstrained()},
			Opts:           opts,
			Workers:        workers,
			CheckpointPath: ckpt,
			Interrupt:      interrupt,
		}
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")

	// Interrupt partway through the matrix. The hook is polled from
	// worker goroutines, hence the atomic counter.
	var polls atomic.Int64
	wA := mk(ckpt, 4, func() bool { return polls.Add(1) > 10 })
	if _, err := wA.RunCycle(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted parallel cycle returned %v, want ErrInterrupted", err)
	}
	cp, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint after parallel interrupt not loadable: %v", err)
	}
	if cp.Cycle != 1 {
		t.Fatalf("checkpoint cycle = %d, want 1", cp.Cycle)
	}

	wB := mk(ckpt, 4, nil)
	if found, err := wB.LoadCheckpoint(); err != nil || !found {
		t.Fatalf("LoadCheckpoint = %v, %v; want found", found, err)
	}
	crB, err := wB.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not removed after completed cycle: %v", err)
	}

	wC := mk("", 1, nil)
	crC, err := wC.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(crB)
	jc, _ := json.Marshal(crC)
	if !bytes.Equal(jb, jc) {
		t.Fatalf("parallel resume differs from uninterrupted serial run:\n%s\nvs\n%s", jb, jc)
	}
}

// TestRunPairLedgerUnconditional is the regression test for the
// RunPair fix: every attempt must be recorded on both the outcome and
// the fault ledger before any return path — including the attempt that
// quarantines the pair and the discard/corrupt attempt that exhausts
// MaxDiscards, which earlier versions dropped from the ledger by
// returning first.
func TestRunPairLedgerUnconditional(t *testing.T) {
	net := netem.HighlyConstrained()

	// Quarantine path: every trial errors; the final (quarantining)
	// attempt must appear in the ledger too.
	opts := fastOpts(net)
	opts.MaxFailures = 3
	opts.Chaos = &chaos.Config{ErrorRate: 1}
	var events []FaultEvent
	p, err := RunPairObserved(threeServices()[0], threeServices()[1], net, opts,
		func(ev FaultEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if !p.Failed || len(p.Failures) != opts.MaxFailures {
		t.Fatalf("pair not quarantined after %d failures: %+v", opts.MaxFailures, p)
	}
	byKind := map[string]int{}
	for _, ev := range events {
		byKind[ev.Kind]++
	}
	if byKind["error"] != opts.MaxFailures {
		t.Errorf("ledger recorded %d error attempts, want %d (unconditional recording)",
			byKind["error"], opts.MaxFailures)
	}
	if byKind["retry"] != opts.MaxFailures-1 || byKind["quarantine"] != 1 {
		t.Errorf("ledger transitions = %v, want %d retries and 1 quarantine",
			byKind, opts.MaxFailures-1)
	}
	// Ledger attempts must match the outcome's failure records 1:1.
	i := 0
	for _, ev := range events {
		if ev.Kind != "error" {
			continue
		}
		f := p.Failures[i]
		if ev.Attempt != f.Attempt || ev.Seed != f.Seed {
			t.Errorf("ledger event %d (attempt %d seed %d) != outcome failure (attempt %d seed %d)",
				i, ev.Attempt, ev.Seed, f.Attempt, f.Seed)
		}
		i++
	}

	// Discard-exhaustion path: every trial is corrupted; the attempt
	// that exhausts MaxDiscards must be in the ledger despite the early
	// Unstable return.
	opts = fastOpts(net)
	opts.MaxDiscards = 2
	opts.Chaos = &chaos.Config{CorruptRate: 1}
	events = nil
	p, err = RunPairObserved(threeServices()[0], threeServices()[1], net, opts,
		func(ev FaultEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if !p.Unstable || p.Corrupt != opts.MaxDiscards+1 {
		t.Fatalf("pair not unstable after exhausting discards: %+v", p)
	}
	corrupt := 0
	for _, ev := range events {
		if ev.Kind == "corrupt" {
			corrupt++
		}
	}
	if corrupt != opts.MaxDiscards+1 {
		t.Errorf("ledger recorded %d corrupt attempts, want %d (terminal attempt included)",
			corrupt, opts.MaxDiscards+1)
	}

	// Plain RunPair (nil ledger) must behave identically.
	p2, err := RunPair(threeServices()[0], threeServices()[1], net, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(p)
	b, _ := json.Marshal(p2)
	if !bytes.Equal(a, b) {
		t.Fatalf("RunPair and RunPairObserved outcomes differ:\n%s\nvs\n%s", a, b)
	}

	if _, err := RunPairObserved(nil, nil, net, opts, nil); err == nil {
		t.Fatal("nil incumbent must be rejected")
	}
}

// TestWorkerCountClamp pins the pool-sizing rule: never more workers
// than tasks, never fewer than one.
func TestWorkerCountClamp(t *testing.T) {
	cases := []struct{ req, tasks, want int }{
		{0, 10, 1}, {-3, 10, 1}, {1, 10, 1},
		{4, 10, 4}, {16, 6, 6}, {8, 0, 1}, {2, 1, 1},
	}
	for _, c := range cases {
		if got := workerCount(c.req, c.tasks); got != c.want {
			t.Errorf("workerCount(%d, %d) = %d, want %d", c.req, c.tasks, got, c.want)
		}
	}
}
