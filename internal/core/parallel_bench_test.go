package core

import (
	"fmt"
	"os"
	"testing"

	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// BenchmarkMatrixParallel measures the all-pairs matrix at 1, 2, 4, and
// 8 workers on the compressed protocol — the tentpole's speedup
// benchmark, parsed by scripts/bench.sh into BENCH_parallel.json.
// Results are byte-identical across sub-benchmarks (the determinism
// tests prove it); only wall-clock changes. Speedup above 1 worker is
// bounded by GOMAXPROCS: on a single-CPU host the parallel runs measure
// pure scheduling overhead, not gains. Set PRUDENTIA_BENCH_FULL=1 to
// use the full throughput catalog (28 pairs) instead of a 6-pair
// subset.
func BenchmarkMatrixParallel(b *testing.B) {
	svcs := []services.Service{
		services.ByName("YouTube"),
		services.ByName("Dropbox"),
		services.ByName("iPerf (Cubic)"),
		services.ByName("iPerf (Reno)"),
	}
	if os.Getenv("PRUDENTIA_BENCH_FULL") == "1" {
		svcs = services.ThroughputCatalog()
	}
	net := netem.HighlyConstrained()
	opts := fastOpts(net)
	opts.BaseSeed = 7

	for _, nw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			var trials int64
			for i := 0; i < b.N; i++ {
				m := &Matrix{Services: svcs, Net: net, Opts: opts, Workers: nw}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range res.Pairs {
					trials += int64(len(p.Trials))
				}
			}
			b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}
