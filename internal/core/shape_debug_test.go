package core

import (
	"fmt"
	"os"
	"testing"

	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

func TestDebugRawShares(t *testing.T) {
	if os.Getenv("PRUDENTIA_SHAPES") == "" {
		t.Skip("shape diagnostics; set PRUDENTIA_SHAPES=1 to run")
	}
	run := func(inc, cont string, net netem.Config, dur sim.Time) {
		spec := Spec{Incumbent: services.ByName(inc), Contender: services.ByName(cont), Net: net, Seed: 7,
			Duration: dur, Warmup: dur / 4, Cooldown: dur / 12}
		r, err := RunTrial(spec)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-14s vs %-14s @%2.0fMbps %4.0fs: %6.2f/%6.2f Mbps loss %.4f/%.4f\n",
			inc, cont, float64(net.RateBps)/1e6, dur.Seconds(), r.Mbps[0], r.Mbps[1], r.Loss[0], r.Loss[1])
	}
	hc, mc := netem.HighlyConstrained(), netem.ModeratelyConstrained()
	run("iPerf (BBR 4.15)", "iPerf (Reno)", hc, 60*sim.Second)
	run("iPerf (BBR 4.15)", "iPerf (Reno)", hc, 240*sim.Second)
	run("iPerf (Reno)", "iPerf (Cubic)", mc, 240*sim.Second)
	run("iPerf (Reno)", "iPerf (Cubic)", hc, 240*sim.Second)
	run("iPerf (Reno)", "Mega", mc, 240*sim.Second)
	run("iPerf (Cubic)", "Mega", mc, 240*sim.Second)
}
