package core

import (
	"fmt"
	"math"

	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// Matrix runs the all-to-all pairwise protocol over a service list in one
// network setting, producing the data behind the paper's heatmaps
// (Figs 2, 11, 12, 13). Each pair runs the §3.4 trial-escalation
// protocol (pairproto.go): an initial batch of MinTrials, escalated in
// Step-sized sets up to MaxTrials until the throughput CI tightens,
// exactly the live system's behaviour.
//
// The scheduler is crash-safe: a panicking or erroring trial becomes a
// recorded failure, failed attempts retry with fresh seeds under capped
// exponential backoff, pairs that keep failing are quarantined
// (Failed), and corrupt results are discarded by the validity gate. No
// trial fault ever propagates out of Run; the only error Run returns is
// ErrInterrupted when the Interrupt hook requests a graceful stop.
//
// With Workers > 1 the matrix fans pairs out to a worker pool
// (parallel.go). Every trial owns a private sim.Engine + netem testbed
// and every seed is a pure function of (BaseSeed, pair, attempt), so
// results — heatmaps, medians, checkpoints, fault ledger — are
// byte-identical for any worker count, including 1.
type Matrix struct {
	Services []services.Service
	Net      netem.Config
	Opts     SchedulerOptions

	// Workers is the number of concurrent pair workers; values <= 1 run
	// the matrix serially on the caller goroutine. Output is identical
	// for any value. With Workers > 1 the Interrupt hook must be safe
	// for concurrent use (it is polled from worker goroutines).
	Workers int

	// Remote, if non-nil, executes pending pairs on a remote runner
	// (the fleet coordinator) instead of the local pool; Workers is
	// then ignored for pair execution. Results are merged through the
	// same ordered-release path, so output stays byte-identical to a
	// local run. Cycle and Setting are carried in each PairTask so
	// workers re-derive the scheduler options — and with them every
	// trial seed — from their own configuration.
	Remote  RemoteRunner
	Cycle   int
	Setting int

	// Budgets maps pairKey → allocated trial ceiling, restored from a
	// checkpoint. When nil and Opts.Adaptive is armed, Run performs the
	// coarse screening pass itself and allocates budgets from the
	// scores; when non-nil the stored allocation is adopted verbatim —
	// screening is skipped — so a resumed adaptive cycle reproduces the
	// original run's stopping decisions without re-planning them.
	Budgets map[string]int

	// OnBudgets, if non-nil, receives the budget allocation the moment
	// it is decided (the checkpoint-persistence hook). Called once per
	// Run, before any full-depth trial starts, from the goroutine that
	// called Run; not called when Budgets was supplied.
	OnBudgets func(budgets map[string]int)

	// Completed maps pairKey → outcomes restored from a checkpoint;
	// those pairs are adopted verbatim and not re-run, which — because
	// every trial seed is a pure function of (BaseSeed, pair, attempt) —
	// makes a resumed matrix identical to an uninterrupted one.
	Completed map[string]*PairOutcome

	// SkipService, if non-nil, denies admission by service name: every
	// pair with a member the hook rejects is marked Skipped (rendered
	// ○○) and released immediately, without running a single trial.
	// The watchdog supplies the circuit-breaker open set here; the
	// decision is evaluated once, during matrix construction, so
	// mid-matrix breaker trips cannot perturb an in-flight matrix.
	SkipService func(name string) bool

	// Journal, if non-nil, is the cycle's write-ahead trial journal
	// sink: every executed attempt is recorded, and recovered attempts
	// replay by seed instead of re-simulating.
	Journal *journalSink

	// Breakers, if non-nil, accumulates per-service health scores from
	// finished pairs on the canonical release path (deterministic for
	// any worker count).
	Breakers *BreakerSet

	// Interrupt, if non-nil, is polled between trials; returning true
	// stops the matrix with ErrInterrupted after draining the trials in
	// flight. Must be concurrency-safe when Workers > 1.
	Interrupt func() bool

	// OnPair, if non-nil, is invoked each time a pair reaches a final
	// state (the checkpoint flush hook). Pairs are delivered in
	// canonical catalog order regardless of Workers, always from the
	// goroutine that called Run.
	OnPair func(key string, out *PairOutcome)

	// OnFault, if non-nil, receives the live robustness ledger:
	// failures, retries, discards, corrupt results, quarantines. Events
	// are delivered grouped per pair in canonical order, always from
	// the goroutine that called Run.
	OnFault func(ev FaultEvent)

	// Progress, if non-nil, receives a line per completed pair (same
	// ordering and goroutine guarantees as OnPair).
	Progress func(format string, args ...any)

	// Obs, if non-nil, receives live telemetry: trial/pair counters,
	// duration histograms, and timeline events. Counter totals are
	// deterministic for any worker count; see Instruments.
	Obs *Instruments
}

// MatrixResult holds every pair outcome plus name indexing.
type MatrixResult struct {
	Names []string
	Net   netem.Config
	// Pairs maps "a|b" (a, b sorted catalog indices) to outcomes where
	// slot 0 is the lower-index service.
	Pairs map[string]*PairOutcome
}

func pairKey(a, b int) string { return fmt.Sprintf("%d|%d", a, b) }

// Run executes the matrix.
func (m *Matrix) Run() (*MatrixResult, error) {
	opts := m.Opts.withDefaults()
	res := &MatrixResult{
		Net:   m.Net,
		Pairs: make(map[string]*PairOutcome),
	}
	var states []*pairState
	for i := range m.Services {
		res.Names = append(res.Names, m.Services[i].Name())
		for j := i; j < len(m.Services); j++ {
			key := pairKey(i, j)
			if done, ok := m.Completed[key]; ok && done != nil {
				res.Pairs[key] = done
				continue
			}
			if open, skip := m.skipPair(i, j); skip {
				out := &PairOutcome{
					Incumbent: m.Services[i].Name(),
					Contender: m.Services[j].Name(),
					Skipped:   true,
				}
				res.Pairs[key] = out
				label := out.Incumbent + " vs " + out.Contender
				m.Obs.pairSkipped(label, open)
				m.fault(FaultEvent{Pair: label, Kind: "breaker_skip", Detail: "breaker open: " + open})
				if m.OnPair != nil {
					m.OnPair(key, out)
				}
				if m.Progress != nil {
					m.Progress("pair %s: SKIPPED (breaker open: %s)", label, open)
				}
				continue
			}
			st := &pairState{
				a: i, b: j,
				key:    key,
				seedID: pairSeedID(i, j),
				svcA:   m.Services[i],
				svcB:   m.Services[j],
				target: opts.MinTrials,
				outcome: &PairOutcome{
					Incumbent: m.Services[i].Name(),
					Contender: m.Services[j].Name(),
				},
			}
			if opts.SketchStats {
				st.outcome.Sketches = newPairSketches()
			}
			states = append(states, st)
			res.Pairs[key] = st.outcome
		}
	}

	if opts.Adaptive != nil && len(states) > 0 {
		budgets := m.Budgets
		if budgets == nil {
			var interrupted bool
			budgets, interrupted = m.screen(states, opts)
			if interrupted {
				return res, ErrInterrupted
			}
			if m.OnBudgets != nil {
				m.OnBudgets(budgets)
			}
		}
		m.applyBudgets(states, budgets)
	}

	if m.Remote != nil {
		interrupted, err := m.runAllRemote(states, opts)
		if err != nil {
			return res, err
		}
		if interrupted {
			return res, ErrInterrupted
		}
		return res, nil
	}
	if m.runAll(states, opts) {
		return res, ErrInterrupted
	}
	return res, nil
}

// fault emits a ledger event if a listener is attached.
func (m *Matrix) fault(ev FaultEvent) {
	if m.OnFault != nil {
		m.OnFault(ev)
	}
}

// skipPair reports whether either member of pair (i, j) is denied
// admission, returning the first denied member's name.
func (m *Matrix) skipPair(i, j int) (openService string, skip bool) {
	if m.SkipService == nil {
		return "", false
	}
	if n := m.Services[i].Name(); m.SkipService(n) {
		return n, true
	}
	if n := m.Services[j].Name(); m.SkipService(n) {
		return n, true
	}
	return "", false
}

// finish reports a pair that reached a final state and flushes it to
// the checkpoint hook. Called on the canonical release path, so the
// pair_done telemetry it produces is ordered for any worker count.
func (m *Matrix) finish(st *pairState) {
	m.Breakers.scorePair(st.outcome)
	m.Obs.pairDone(st)
	if m.OnPair != nil {
		m.OnPair(st.key, st.outcome)
	}
	if m.Progress == nil {
		return
	}
	o := st.outcome
	if o.Failed {
		m.Progress("pair %s: QUARANTINED after %d failed attempts (%d retries)",
			st.pairLabel(), len(o.Failures), o.Retries)
		return
	}
	m.Progress("pair %s: %d trials, share %.0f%%/%.0f%%, unstable=%v",
		st.pairLabel(), o.Counted(),
		o.MedianSharePct(0), o.MedianSharePct(1), o.Unstable)
}

// indexOf resolves a service name in the result.
func (r *MatrixResult) indexOf(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Cell returns the pair outcome and which slot `incumbent` occupies in
// it. ok is false if either name is unknown.
func (r *MatrixResult) Cell(incumbent, contender string) (p *PairOutcome, slot int, ok bool) {
	i, c := r.indexOf(incumbent), r.indexOf(contender)
	if i < 0 || c < 0 {
		return nil, 0, false
	}
	a, b, slot := i, c, 0
	if a > b {
		a, b, slot = c, i, 1
	}
	p, ok = r.Pairs[pairKey(a, b)]
	return p, slot, ok
}

// SharePct returns the Fig 2 heatmap value: the median MmF share
// percentage the incumbent obtained against the contender. Quarantined
// pairs return NaN (rendered as ×× by the report layer).
func (r *MatrixResult) SharePct(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok {
		return 0, false
	}
	if p.Skipped {
		return math.Inf(-1), true
	}
	if p.Failed {
		return math.NaN(), true
	}
	if p.Counted() == 0 {
		return 0, false
	}
	return p.MedianSharePct(slot), true
}

// Utilization returns the Fig 11 value for a pair (symmetric).
func (r *MatrixResult) Utilization(a, b string) (float64, bool) {
	p, _, ok := r.Cell(a, b)
	if !ok {
		return 0, false
	}
	if p.Skipped {
		return math.Inf(-1), true
	}
	if p.Failed {
		return math.NaN(), true
	}
	if p.Counted() == 0 {
		return 0, false
	}
	return p.MedianUtilization(), true
}

// LossRate returns the Fig 12 value: incumbent's loss vs contender.
func (r *MatrixResult) LossRate(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok {
		return 0, false
	}
	if p.Skipped {
		return math.Inf(-1), true
	}
	if p.Failed {
		return math.NaN(), true
	}
	if p.Counted() == 0 {
		return 0, false
	}
	return p.MedianLoss(slot), true
}

// QueueDelayMs returns the Fig 13 value in milliseconds.
func (r *MatrixResult) QueueDelayMs(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok {
		return 0, false
	}
	if p.Skipped {
		return math.Inf(-1), true
	}
	if p.Failed {
		return math.NaN(), true
	}
	if p.Counted() == 0 {
		return 0, false
	}
	return p.MedianQueueDelay(slot).Seconds() * 1000, true
}

// FailedPairs lists quarantined pairs as "incumbent vs contender".
func (r *MatrixResult) FailedPairs() []string {
	var out []string
	for i := range r.Names {
		for j := i; j < len(r.Names); j++ {
			if p := r.Pairs[pairKey(i, j)]; p != nil && p.Failed {
				out = append(out, p.Incumbent+" vs "+p.Contender)
			}
		}
	}
	return out
}

// LosingShares lists, for every ordered pair (incumbent, contender) with
// i != c, the median share of the service that lost (<100%), supporting
// the paper's Obs 1 summary statistics.
func (r *MatrixResult) LosingShares() []float64 {
	var out []float64
	for i := range r.Names {
		for j := i + 1; j < len(r.Names); j++ {
			p := r.Pairs[pairKey(i, j)]
			if p == nil || p.Failed || p.Counted() == 0 {
				continue
			}
			s0, s1 := p.MedianSharePct(0), p.MedianSharePct(1)
			if s0 < s1 {
				out = append(out, s0)
			} else {
				out = append(out, s1)
			}
		}
	}
	return out
}

// SelfShares lists each service's median share when competing with
// another instance of itself (the Obs 1 "88% of MmF share" statistic).
func (r *MatrixResult) SelfShares() []float64 {
	var out []float64
	for i := range r.Names {
		p := r.Pairs[pairKey(i, i)]
		if p == nil || p.Failed || p.Counted() == 0 {
			continue
		}
		out = append(out, p.MedianSharePct(0), p.MedianSharePct(1))
	}
	return out
}
