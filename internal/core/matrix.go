package core

import (
	"fmt"
	"math"

	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// Matrix runs the all-to-all pairwise protocol over a service list in one
// network setting, producing the data behind the paper's heatmaps
// (Figs 2, 11, 12, 13). Trials are interleaved round-robin across pairs
// (§3.4: "to limit the effect of temporally-localized performance
// issues") and pairs whose throughput CI stays too wide are re-queued in
// sets of Step trials up to MaxTrials, exactly the live system's
// behaviour.
//
// The scheduler is crash-safe: a panicking or erroring trial becomes a
// recorded failure, failed attempts retry with fresh seeds under capped
// exponential backoff, pairs that keep failing are quarantined
// (Failed), and corrupt results are discarded by the validity gate. No
// trial fault ever propagates out of Run; the only error Run returns is
// ErrInterrupted when the Interrupt hook requests a graceful stop.
type Matrix struct {
	Services []services.Service
	Net      netem.Config
	Opts     SchedulerOptions

	// Completed maps pairKey → outcomes restored from a checkpoint;
	// those pairs are adopted verbatim and not re-run, which — because
	// every trial seed is a pure function of (BaseSeed, pair, attempt) —
	// makes a resumed matrix identical to an uninterrupted one.
	Completed map[string]*PairOutcome

	// Interrupt, if non-nil, is polled between trials; returning true
	// stops the matrix with ErrInterrupted after the current trial.
	Interrupt func() bool

	// OnPair, if non-nil, is invoked each time a pair reaches a final
	// state (the checkpoint flush hook).
	OnPair func(key string, out *PairOutcome)

	// OnFault, if non-nil, receives the live robustness ledger:
	// failures, retries, discards, corrupt results, quarantines.
	OnFault func(ev FaultEvent)

	// Progress, if non-nil, receives a line per completed pair.
	Progress func(format string, args ...any)
}

// pairState tracks one unordered pair through the round-robin scheduler.
type pairState struct {
	a, b     int // indices into Services (a <= b)
	key      string
	seedID   uint64
	outcome  *PairOutcome
	target   int // trials to run before the next CI evaluation
	attempt  int // every attempt: counted, discarded, corrupt, or failed
	cooldown int // scheduler rounds to sit out (retry backoff)
	done     bool
	svcA     services.Service
	svcB     services.Service
}

// MatrixResult holds every pair outcome plus name indexing.
type MatrixResult struct {
	Names []string
	Net   netem.Config
	// Pairs maps "a|b" (a, b sorted catalog indices) to outcomes where
	// slot 0 is the lower-index service.
	Pairs map[string]*PairOutcome
}

func pairKey(a, b int) string { return fmt.Sprintf("%d|%d", a, b) }

// Run executes the matrix.
func (m *Matrix) Run() (*MatrixResult, error) {
	opts := m.Opts.withDefaults()
	res := &MatrixResult{
		Net:   m.Net,
		Pairs: make(map[string]*PairOutcome),
	}
	var states []*pairState
	for i := range m.Services {
		res.Names = append(res.Names, m.Services[i].Name())
		for j := i; j < len(m.Services); j++ {
			key := pairKey(i, j)
			if done, ok := m.Completed[key]; ok && done != nil {
				res.Pairs[key] = done
				continue
			}
			st := &pairState{
				a: i, b: j,
				key:    key,
				seedID: pairSeedID(i, j),
				svcA:   m.Services[i],
				svcB:   m.Services[j],
				target: opts.MinTrials,
				outcome: &PairOutcome{
					Incumbent: m.Services[i].Name(),
					Contender: m.Services[j].Name(),
				},
			}
			states = append(states, st)
			res.Pairs[key] = st.outcome
		}
	}

	// Round-robin: one trial per pending pair per round.
	for {
		pending := false
		for _, st := range states {
			if st.done {
				continue
			}
			pending = true
			if m.Interrupt != nil && m.Interrupt() {
				return res, ErrInterrupted
			}
			if st.cooldown > 0 {
				st.cooldown--
				continue
			}
			m.runOne(st, opts)
			m.evaluate(st, opts)
			if st.done {
				m.finish(st)
			}
		}
		if !pending {
			break
		}
	}
	return res, nil
}

// fault emits a ledger event if a listener is attached.
func (m *Matrix) fault(ev FaultEvent) {
	if m.OnFault != nil {
		m.OnFault(ev)
	}
}

// pairLabel names a pair for ledger events and progress lines.
func (st *pairState) pairLabel() string {
	return st.outcome.Incumbent + " vs " + st.outcome.Contender
}

// runOne executes a single counted trial for the pair, retrying
// noise-discarded and validity-gate-rejected trials immediately (each
// with a fresh seed). A failing attempt — injected error or recovered
// panic — records a TrialFailure and returns so the pair backs off
// while the rest of the matrix keeps interleaving; MaxFailures
// quarantines the pair.
func (m *Matrix) runOne(st *pairState, opts SchedulerOptions) {
	for {
		seed := trialSeed(opts.BaseSeed, st.seedID, st.attempt)
		attempt := st.attempt
		st.attempt++
		spec := Spec{
			Incumbent: st.svcA,
			Contender: st.svcB,
			Net:       m.Net,
			Seed:      seed,
			Chaos:     opts.Chaos,
		}
		if opts.Timing != nil {
			spec = opts.Timing(spec)
		} else {
			spec = spec.DefaultTiming()
		}
		res, err := runTrialSafe(spec)
		if err != nil {
			te := asTrialError(err, seed)
			st.outcome.Failures = append(st.outcome.Failures,
				TrialFailure{Attempt: attempt, Seed: seed, Kind: te.Kind, Msg: te.Msg})
			m.fault(FaultEvent{Pair: st.pairLabel(), Kind: te.Kind, Attempt: attempt, Seed: seed, Detail: te.Msg})
			if len(st.outcome.Failures) >= opts.MaxFailures {
				st.outcome.Failed = true
				st.done = true
				m.fault(FaultEvent{Pair: st.pairLabel(), Kind: "quarantine", Attempt: attempt, Seed: seed,
					Detail: fmt.Sprintf("%d failures", len(st.outcome.Failures))})
			} else {
				st.outcome.Retries++
				st.cooldown = backoffRounds(len(st.outcome.Failures))
				m.fault(FaultEvent{Pair: st.pairLabel(), Kind: "retry", Attempt: attempt, Seed: seed,
					Detail: fmt.Sprintf("backoff %d rounds", st.cooldown)})
			}
			return
		}
		if res.Discarded {
			st.outcome.Discards++
			m.fault(FaultEvent{Pair: st.pairLabel(), Kind: "discard", Attempt: attempt, Seed: seed,
				Detail: fmt.Sprintf("external loss %.4f%%", 100*res.ExternalLossRate)})
			if st.outcome.Discards+st.outcome.Corrupt > opts.MaxDiscards {
				st.outcome.Unstable = true
				st.done = true
				return
			}
			continue
		}
		if verr := res.Validate(); verr != nil {
			st.outcome.Corrupt++
			m.fault(FaultEvent{Pair: st.pairLabel(), Kind: "corrupt", Attempt: attempt, Seed: seed, Detail: verr.Error()})
			if st.outcome.Discards+st.outcome.Corrupt > opts.MaxDiscards {
				st.outcome.Unstable = true
				st.done = true
				return
			}
			continue
		}
		st.outcome.Trials = append(st.outcome.Trials, res)
		return
	}
}

// evaluate applies the stopping rule at batch boundaries.
func (m *Matrix) evaluate(st *pairState, opts SchedulerOptions) {
	if st.done {
		return
	}
	n := len(st.outcome.Trials)
	if n < st.target {
		return
	}
	if st.outcome.ciSatisfied(opts.ToleranceMbps) {
		st.done = true
	} else if st.target < opts.MaxTrials {
		st.target += opts.Step
		if st.target > opts.MaxTrials {
			st.target = opts.MaxTrials
		}
	} else {
		st.outcome.Unstable = true
		st.done = true
	}
}

// finish reports a pair that reached a final state and flushes it to
// the checkpoint hook.
func (m *Matrix) finish(st *pairState) {
	if m.OnPair != nil {
		m.OnPair(st.key, st.outcome)
	}
	if m.Progress == nil {
		return
	}
	o := st.outcome
	if o.Failed {
		m.Progress("pair %s: QUARANTINED after %d failed attempts (%d retries)",
			st.pairLabel(), len(o.Failures), o.Retries)
		return
	}
	m.Progress("pair %s: %d trials, share %.0f%%/%.0f%%, unstable=%v",
		st.pairLabel(), len(o.Trials),
		o.MedianSharePct(0), o.MedianSharePct(1), o.Unstable)
}

// indexOf resolves a service name in the result.
func (r *MatrixResult) indexOf(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Cell returns the pair outcome and which slot `incumbent` occupies in
// it. ok is false if either name is unknown.
func (r *MatrixResult) Cell(incumbent, contender string) (p *PairOutcome, slot int, ok bool) {
	i, c := r.indexOf(incumbent), r.indexOf(contender)
	if i < 0 || c < 0 {
		return nil, 0, false
	}
	a, b, slot := i, c, 0
	if a > b {
		a, b, slot = c, i, 1
	}
	p, ok = r.Pairs[pairKey(a, b)]
	return p, slot, ok
}

// SharePct returns the Fig 2 heatmap value: the median MmF share
// percentage the incumbent obtained against the contender. Quarantined
// pairs return NaN (rendered as ×× by the report layer).
func (r *MatrixResult) SharePct(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok {
		return 0, false
	}
	if p.Failed {
		return math.NaN(), true
	}
	if len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianSharePct(slot), true
}

// Utilization returns the Fig 11 value for a pair (symmetric).
func (r *MatrixResult) Utilization(a, b string) (float64, bool) {
	p, _, ok := r.Cell(a, b)
	if !ok {
		return 0, false
	}
	if p.Failed {
		return math.NaN(), true
	}
	if len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianUtilization(), true
}

// LossRate returns the Fig 12 value: incumbent's loss vs contender.
func (r *MatrixResult) LossRate(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok {
		return 0, false
	}
	if p.Failed {
		return math.NaN(), true
	}
	if len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianLoss(slot), true
}

// QueueDelayMs returns the Fig 13 value in milliseconds.
func (r *MatrixResult) QueueDelayMs(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok {
		return 0, false
	}
	if p.Failed {
		return math.NaN(), true
	}
	if len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianQueueDelay(slot).Seconds() * 1000, true
}

// FailedPairs lists quarantined pairs as "incumbent vs contender".
func (r *MatrixResult) FailedPairs() []string {
	var out []string
	for i := range r.Names {
		for j := i; j < len(r.Names); j++ {
			if p := r.Pairs[pairKey(i, j)]; p != nil && p.Failed {
				out = append(out, p.Incumbent+" vs "+p.Contender)
			}
		}
	}
	return out
}

// LosingShares lists, for every ordered pair (incumbent, contender) with
// i != c, the median share of the service that lost (<100%), supporting
// the paper's Obs 1 summary statistics.
func (r *MatrixResult) LosingShares() []float64 {
	var out []float64
	for i, a := range r.Names {
		for j := i + 1; j < len(r.Names); j++ {
			p := r.Pairs[pairKey(i, j)]
			if p == nil || p.Failed || len(p.Trials) == 0 {
				continue
			}
			s0, s1 := p.MedianSharePct(0), p.MedianSharePct(1)
			if s0 < s1 {
				out = append(out, s0)
			} else {
				out = append(out, s1)
			}
			_ = a
		}
	}
	return out
}

// SelfShares lists each service's median share when competing with
// another instance of itself (the Obs 1 "88% of MmF share" statistic).
func (r *MatrixResult) SelfShares() []float64 {
	var out []float64
	for i := range r.Names {
		p := r.Pairs[pairKey(i, i)]
		if p == nil || p.Failed || len(p.Trials) == 0 {
			continue
		}
		out = append(out, p.MedianSharePct(0), p.MedianSharePct(1))
	}
	return out
}
