package core

import (
	"fmt"

	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// Matrix runs the all-to-all pairwise protocol over a service list in one
// network setting, producing the data behind the paper's heatmaps
// (Figs 2, 11, 12, 13). Trials are interleaved round-robin across pairs
// (§3.4: "to limit the effect of temporally-localized performance
// issues") and pairs whose throughput CI stays too wide are re-queued in
// sets of Step trials up to MaxTrials, exactly the live system's
// behaviour.
type Matrix struct {
	Services []services.Service
	Net      netem.Config
	Opts     SchedulerOptions

	// Progress, if non-nil, receives a line per completed pair.
	Progress func(format string, args ...any)
}

// pairState tracks one unordered pair through the round-robin scheduler.
type pairState struct {
	a, b    int // indices into Services (a <= b)
	outcome *PairOutcome
	target  int // trials to run before the next CI evaluation
	done    bool
	seed    uint64
	svcA    services.Service
	svcB    services.Service
}

// MatrixResult holds every pair outcome plus name indexing.
type MatrixResult struct {
	Names []string
	Net   netem.Config
	// Pairs maps "a|b" (a, b sorted catalog indices) to outcomes where
	// slot 0 is the lower-index service.
	Pairs map[string]*PairOutcome
}

func pairKey(a, b int) string { return fmt.Sprintf("%d|%d", a, b) }

// Run executes the matrix.
func (m *Matrix) Run() (*MatrixResult, error) {
	opts := m.Opts.withDefaults()
	res := &MatrixResult{
		Net:   m.Net,
		Pairs: make(map[string]*PairOutcome),
	}
	var states []*pairState
	for i := range m.Services {
		res.Names = append(res.Names, m.Services[i].Name())
		for j := i; j < len(m.Services); j++ {
			st := &pairState{
				a: i, b: j,
				svcA:   m.Services[i],
				svcB:   m.Services[j],
				target: opts.MinTrials,
				seed:   opts.BaseSeed + uint64(i*1000+j)*101,
				outcome: &PairOutcome{
					Incumbent: m.Services[i].Name(),
					Contender: m.Services[j].Name(),
				},
			}
			states = append(states, st)
			res.Pairs[pairKey(i, j)] = st.outcome
		}
	}

	// Round-robin: one trial per pending pair per round.
	for {
		pending := false
		for _, st := range states {
			if st.done {
				continue
			}
			pending = true
			if err := m.runOne(st, opts); err != nil {
				return nil, err
			}
			m.evaluate(st, opts)
		}
		if !pending {
			break
		}
	}
	return res, nil
}

// runOne executes a single counted trial for the pair (retrying
// noise-discarded trials immediately).
func (m *Matrix) runOne(st *pairState, opts SchedulerOptions) error {
	for {
		spec := Spec{
			Incumbent: st.svcA,
			Contender: st.svcB,
			Net:       m.Net,
			Seed:      st.seed,
		}
		st.seed++
		if opts.Timing != nil {
			spec = opts.Timing(spec)
		} else {
			spec = spec.DefaultTiming()
		}
		res, err := RunTrial(spec)
		if err != nil {
			return err
		}
		if res.Discarded {
			st.outcome.Discards++
			if st.outcome.Discards > opts.MaxDiscards {
				st.outcome.Unstable = true
				st.done = true
				return nil
			}
			continue
		}
		st.outcome.Trials = append(st.outcome.Trials, res)
		return nil
	}
}

// evaluate applies the stopping rule at batch boundaries.
func (m *Matrix) evaluate(st *pairState, opts SchedulerOptions) {
	n := len(st.outcome.Trials)
	if n < st.target {
		return
	}
	if st.outcome.ciSatisfied(opts.ToleranceMbps) {
		st.done = true
	} else if st.target < opts.MaxTrials {
		st.target += opts.Step
		if st.target > opts.MaxTrials {
			st.target = opts.MaxTrials
		}
	} else {
		st.outcome.Unstable = true
		st.done = true
	}
	if st.done && m.Progress != nil {
		m.Progress("pair %s vs %s: %d trials, share %.0f%%/%.0f%%, unstable=%v",
			st.outcome.Incumbent, st.outcome.Contender, n,
			st.outcome.MedianSharePct(0), st.outcome.MedianSharePct(1),
			st.outcome.Unstable)
	}
}

// indexOf resolves a service name in the result.
func (r *MatrixResult) indexOf(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Cell returns the pair outcome and which slot `incumbent` occupies in
// it. ok is false if either name is unknown.
func (r *MatrixResult) Cell(incumbent, contender string) (p *PairOutcome, slot int, ok bool) {
	i, c := r.indexOf(incumbent), r.indexOf(contender)
	if i < 0 || c < 0 {
		return nil, 0, false
	}
	a, b, slot := i, c, 0
	if a > b {
		a, b, slot = c, i, 1
	}
	p, ok = r.Pairs[pairKey(a, b)]
	return p, slot, ok
}

// SharePct returns the Fig 2 heatmap value: the median MmF share
// percentage the incumbent obtained against the contender.
func (r *MatrixResult) SharePct(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok || len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianSharePct(slot), true
}

// Utilization returns the Fig 11 value for a pair (symmetric).
func (r *MatrixResult) Utilization(a, b string) (float64, bool) {
	p, _, ok := r.Cell(a, b)
	if !ok || len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianUtilization(), true
}

// LossRate returns the Fig 12 value: incumbent's loss vs contender.
func (r *MatrixResult) LossRate(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok || len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianLoss(slot), true
}

// QueueDelayMs returns the Fig 13 value in milliseconds.
func (r *MatrixResult) QueueDelayMs(incumbent, contender string) (float64, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok || len(p.Trials) == 0 {
		return 0, false
	}
	return p.MedianQueueDelay(slot).Seconds() * 1000, true
}

// LosingShares lists, for every ordered pair (incumbent, contender) with
// i != c, the median share of the service that lost (<100%), supporting
// the paper's Obs 1 summary statistics.
func (r *MatrixResult) LosingShares() []float64 {
	var out []float64
	for i, a := range r.Names {
		for j := i + 1; j < len(r.Names); j++ {
			p := r.Pairs[pairKey(i, j)]
			if p == nil || len(p.Trials) == 0 {
				continue
			}
			s0, s1 := p.MedianSharePct(0), p.MedianSharePct(1)
			if s0 < s1 {
				out = append(out, s0)
			} else {
				out = append(out, s1)
			}
			_ = a
		}
	}
	return out
}

// SelfShares lists each service's median share when competing with
// another instance of itself (the Obs 1 "88% of MmF share" statistic).
func (r *MatrixResult) SelfShares() []float64 {
	var out []float64
	for i := range r.Names {
		p := r.Pairs[pairKey(i, i)]
		if p == nil || len(p.Trials) == 0 {
			continue
		}
		out = append(out, p.MedianSharePct(0), p.MedianSharePct(1))
	}
	return out
}
