package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"prudentia/internal/chaos"
	"prudentia/internal/journal"
	"prudentia/internal/netem"
	"prudentia/internal/obs"
	"prudentia/internal/services"
	"prudentia/internal/stats"
)

// Watchdog is the continuously-running fairness monitor: it cycles the
// all-pairs matrix across its network settings, keeps per-cycle history
// (how the paper detected the 2022→2023 Google Drive and YouTube stack
// changes, Obs 13), runs solo calibrations to detect upstream throttling
// (§3.1), and accepts third-party service submissions gated by access
// codes (Appendix A).
type Watchdog struct {
	// Services is the catalog under test.
	Services []services.Service
	// Settings are the network environments to cycle through; defaults
	// to the paper's two standing settings.
	Settings []netem.Config
	// Opts configures the per-pair protocol. The per-setting
	// PaperOptions apply only when Opts.IsZero(); a caller who sets any
	// field (for example only Timing) keeps their options.
	Opts SchedulerOptions
	// Workers is the number of concurrent trial workers used for solo
	// calibrations and the pair matrices; values <= 1 run everything
	// serially. Results — heatmaps, medians, checkpoints, fault ledger —
	// are byte-identical for any worker count, because every trial seed
	// is a pure function of (pair, attempt) and completed work is merged
	// in canonical order. With Workers > 1 the Interrupt hook must be
	// safe for concurrent use.
	Workers int
	// Remote, if non-nil, executes every setting's pair matrix on a
	// remote runner (the fleet coordinator) instead of the local worker
	// pool; solo calibrations and canary probes stay local. Because
	// remote results merge through the same ordered-release path, the
	// cycle's outputs — report, heatmaps, checkpoints, fault ledger —
	// are byte-identical to a single-process run.
	Remote RemoteRunner
	// AccessCodes gate third-party submissions.
	AccessCodes []string
	// Progress, if non-nil, receives human-readable progress lines.
	Progress func(format string, args ...any)

	// CheckpointPath, when set, makes RunCycle flush a Checkpoint to
	// this file after every completed pair (and calibration), and
	// remove it when the cycle completes. A checkpoint-save failure is
	// reported via Progress but never aborts the cycle.
	CheckpointPath string
	// JournalPath, when set, makes RunCycle append every executed trial
	// attempt — counted, discarded, corrupt, or failed — to a
	// write-ahead journal (internal/journal) at this path, one fsynced
	// record per attempt. After a crash, even kill -9, the next RunCycle
	// recovers the journal, truncates any torn tail, and replays the
	// recovered attempts by seed instead of re-simulating them: at most
	// the single in-flight trial is lost. The file is removed when the
	// cycle completes. Journal open failures degrade to unjournaled
	// operation (reported via Progress), never abort the cycle.
	JournalPath string
	// DiskChaos, when non-nil, runs the watchdog's durable writers —
	// the cycle checkpoint and the trial journal — through a
	// seed-deterministic disk-fault plan (injected ENOSPC, torn tails
	// at fsync, fsync stalls). Both writers already degrade rather than
	// die on disk failure; the plan exists to keep those paths
	// exercised. Not part of the byte-identical replay contract.
	DiskChaos *chaos.DiskPlan
	// Breakers holds the per-service circuit breakers (breaker.go). Nil
	// means RunCycle creates a fresh set on first use; supply one to
	// tune Threshold or observe transitions. The set persists across
	// cycles — soak runs carry trip state forward — with closed-state
	// scores decaying at each cycle end.
	Breakers *BreakerSet
	// Interrupt, if non-nil, is polled between trials; returning true
	// stops RunCycle gracefully with ErrInterrupted after draining
	// in-flight trials and flushing the checkpoint. Must be
	// concurrency-safe when Workers > 1 (it is polled from worker
	// goroutines).
	Interrupt func() bool
	// OnFault, if non-nil, receives the live robustness ledger from all
	// matrices and calibrations.
	OnFault func(ev FaultEvent)
	// Obs, if non-nil, receives live telemetry for the whole cycle:
	// metric counters/histograms plus the cycle timeline
	// (cycle/setting/calibration/trial/pair/checkpoint events). Build one
	// with NewInstruments; nil disables instrumentation entirely.
	Obs *Instruments

	cycles      []*CycleResult
	submissions []Submission
	resume      *Checkpoint
	lastJournal *obs.JournalInfo
	cycleOffset int
}

// CycleResult is one complete iteration over all pairs in all settings.
type CycleResult struct {
	// Cycle is the 1-based iteration number.
	Cycle int
	// PerSetting maps each setting (by index into Settings) to its
	// matrix result.
	PerSetting []*MatrixResult
	// Calibration holds each service's solo throughput per setting, the
	// Table 1 "Max Xput" check.
	Calibration []map[string]float64
}

// Submission is a third-party service queued for evaluation (Appendix A).
type Submission struct {
	URL     string
	Service services.Service
}

// NewWatchdog returns a watchdog over the standard catalog and settings.
func NewWatchdog() *Watchdog {
	return &Watchdog{
		Services: services.ThroughputCatalog(),
		Settings: []netem.Config{netem.HighlyConstrained(), netem.ModeratelyConstrained()},
		// Access codes published in the paper's Appendix A for
		// third-party testing.
		AccessCodes: []string{
			"KD4p1Z8Gs1SVPHUrTOVTMNHtvUnMSmvZ",
			"A7mH2gHPmtlhbpb8ajfe48oCzA7hp6VB",
			"5PWWIvTUxZSYVhIuEiBEmOOOog8zgrGa",
			"XrVzJ3evvkVpoAf3k54mYuY0tCgjTD2k",
			"bTXmWjSdAmQf4ULItqH2JCR5oX8jZvhL",
		},
	}
}

// Submit queues a custom URL for testing. The URL is modelled as a web
// page whose parameters derive deterministically from the URL string.
// An invalid access code is rejected.
func (w *Watchdog) Submit(url, accessCode string) error {
	ok := false
	for _, c := range w.AccessCodes {
		if c == accessCode {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("core: invalid access code for submission %q", url)
	}
	if url == "" {
		return fmt.Errorf("core: submission requires a URL")
	}
	svc := customURLService(url)
	w.submissions = append(w.submissions, Submission{URL: url, Service: svc})
	w.Services = append(w.Services, svc)
	return nil
}

// Submissions lists accepted submissions.
func (w *Watchdog) Submissions() []Submission { return w.submissions }

// customURLService builds a web-page model whose weight and flow count
// derive deterministically from the URL (a stand-in for fetching and
// profiling the real page, which the live system does with Chrome).
func customURLService(url string) services.Service {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(url); i++ {
		h ^= uint64(url[i])
		h *= 1099511628211
	}
	page := services.NewWikipedia(nil)
	page.ServiceName = url
	page.Factory = services.CubicFactory()
	page.TotalBytes = 500_000 + int64(h%4_000_000)
	page.Flows = 4 + int(h%16)
	page.Resources = 10 + int(h%40)
	page.AboveFoldFrac = 0.5 + float64(h%40)/100
	return page
}

// Resume stages a checkpoint: the next RunCycle adopts its completed
// pairs and calibrations instead of re-running them.
func (w *Watchdog) Resume(cp *Checkpoint) { w.resume = cp }

// StagedCheckpoint returns the checkpoint staged by Resume or
// LoadCheckpoint (nil if none), letting callers inspect it — e.g. for
// HasBudgetState — before deciding how to run the next cycle.
func (w *Watchdog) StagedCheckpoint() *Checkpoint { return w.resume }

// LoadCheckpoint stages the checkpoint at CheckpointPath if one exists.
// It reports whether a checkpoint was found; a missing file is not an
// error (the watchdog simply starts fresh).
func (w *Watchdog) LoadCheckpoint() (bool, error) {
	if w.CheckpointPath == "" {
		return false, nil
	}
	cp, err := LoadCheckpoint(w.CheckpointPath)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	w.resume = cp
	return true, nil
}

// AdvanceTo tells the watchdog that its next cycle is cycle `next`,
// even though it holds no in-memory history for the earlier ones. A
// restarted daemon that rehydrated N completed cycles from disk calls
// AdvanceTo(N+1) so cycle numbering — and with it every cycle-derived
// trial seed — continues exactly where the previous process stopped.
// A staged checkpoint still overrides: resuming an interrupted cycle
// reuses the checkpoint's own number.
func (w *Watchdog) AdvanceTo(next int) {
	off := next - 1 - len(w.cycles)
	if off > w.cycleOffset {
		w.cycleOffset = off
	}
}

// interrupted polls the graceful-stop hook.
func (w *Watchdog) interrupted() bool { return w.Interrupt != nil && w.Interrupt() }

// flush persists the live checkpoint. Failures are reported, never
// fatal: a watchdog with a broken disk should keep measuring.
func (w *Watchdog) flush(cp *Checkpoint) {
	if w.CheckpointPath == "" {
		return
	}
	if err := SaveCheckpointDisk(w.CheckpointPath, cp, w.DiskChaos); err != nil {
		if w.Progress != nil {
			w.Progress("checkpoint save failed: %v", err)
		}
		return
	}
	w.Obs.checkpointSaved()
	w.Obs.emit(obs.TimelineEvent{Kind: "checkpoint", Cycle: cp.Cycle})
}

// RunCycle executes one full iteration and appends it to the history.
// It is crash-safe end to end: trial panics and errors are quarantined
// per pair, completed state is checkpointed after every pair when
// CheckpointPath is set, every executed attempt is journaled when
// JournalPath is set, and an Interrupt request returns ErrInterrupted
// with in-flight trials drained and the checkpoint flushed. A cycle
// resumed from a checkpoint (see Resume/LoadCheckpoint) produces a
// CycleResult identical to an uninterrupted run; with a journal, the
// resumed cycle additionally replays every journaled attempt —
// including the ones a checkpoint alone would force it to re-simulate —
// so recovery re-runs strictly less work. With Workers > 1 calibrations
// and pair trials run on a worker pool; the cycle's outputs (and any
// resumed continuation of it) are byte-identical for every worker
// count.
func (w *Watchdog) RunCycle() (*CycleResult, error) {
	if w.resume != nil && w.Opts.Adaptive != nil && !w.resume.HasBudgetState() {
		// A pre-adaptive checkpoint records no budget allocations;
		// re-screening could allocate different ceilings than the
		// interrupted run used and silently change its stopping
		// decisions. Refuse before consuming the staged checkpoint so
		// the caller can disarm Adaptive and resume fixed
		// (cmd/prudentia does exactly that, with a stderr warning).
		return nil, ErrCheckpointNoBudget
	}
	cr := &CycleResult{Cycle: w.cycleOffset + len(w.cycles) + 1}
	cp := w.resume
	w.resume = nil
	if cp != nil {
		cr.Cycle = cp.Cycle
	}
	if w.Breakers == nil {
		w.Breakers = &BreakerSet{}
	}
	if w.Breakers.OnTransition == nil {
		w.Breakers.OnTransition = w.Obs.breakerTransition
	}
	sink, jw, rec, err := w.openJournal()
	if err != nil {
		return nil, err
	}
	if cp != nil {
		// The checkpoint's breaker snapshot is the *cycle-start* state;
		// restoring it and then re-scoring the adopted (or, with a
		// journal, replayed) work reproduces the uninterrupted run's
		// breaker evolution exactly.
		w.Breakers.Restore(cp.Breakers)
	}
	live := newCheckpoint(cr.Cycle, len(w.Settings))
	live.Breakers = w.Breakers.Status()
	if w.Opts.Adaptive != nil {
		// Allocate budget state eagerly so even a checkpoint flushed
		// before the first screening pass identifies itself as
		// adaptive (HasBudgetState). Fixed runs leave it nil and their
		// checkpoints unchanged.
		live.Budget = make([]map[string]int, len(w.Settings))
	}
	// With a journal, completed work is replayed from it rather than
	// adopted from the checkpoint: replay drives the full protocol —
	// ledger events, telemetry, breaker scoring — so the resumed
	// process's outputs match the uninterrupted run event for event,
	// not just pair for pair.
	adopt := cp != nil && sink == nil
	w.Obs.emit(obs.TimelineEvent{Kind: "cycle_start", Cycle: cr.Cycle,
		Detail: fmt.Sprintf("%d services, %d settings, resumed=%v", len(w.Services), len(w.Settings), cp != nil)})
	finishJournal := func() {
		if jw == nil {
			return
		}
		records, bytes := jw.Stats()
		w.lastJournal = &obs.JournalInfo{
			Path:      w.JournalPath,
			Records:   records,
			Bytes:     bytes,
			Replayed:  sink.replayCount(),
			Recovered: int64(len(rec.Entries)),
			TornBytes: rec.TornBytes,
		}
		jw.Close()
	}
	interruptedExit := func(live *Checkpoint) {
		w.flush(live)
		finishJournal()
		w.Obs.emit(obs.TimelineEvent{Kind: "cycle_end", Cycle: cr.Cycle, Detail: "interrupted"})
	}

	// Canary probes (§breaker.go): every service whose breaker is open
	// gets exactly one half-open probe trial at cycle start; success
	// re-admits it for the whole cycle.
	w.probeOpenServices(sink, cr.Cycle)

	for si, net := range w.Settings {
		w.Obs.emit(obs.TimelineEvent{Kind: "setting_start", Cycle: cr.Cycle, Setting: si,
			Detail: fmt.Sprintf("%d Mbps", net.RateBps/1_000_000)})
		opts := w.SettingOptions(cr.Cycle, si)

		// Solo calibration first (§3.1): detect upstream throttling.
		var cal map[string]float64
		if adopt && si < len(cp.Calibration) && cp.Calibration[si] != nil {
			cal = cp.Calibration[si]
			// Re-score adopted calibration omissions so the restored
			// breakers see the same penalties. A service absent from a
			// completed map either exhausted its attempt budget
			// (penalized) or was skipped because its breaker was open
			// (not penalized) — and the restored breaker state, evolved
			// through the same adoption sequence, distinguishes the two
			// exactly as the original run did.
			for _, svc := range w.Services {
				if _, ok := cal[svc.Name()]; !ok && w.Breakers.State(svc.Name()) != BreakerOpen {
					w.Breakers.scoreCalibrationFailure(svc.Name())
				}
			}
		} else {
			var stopped bool
			cal, stopped = w.calibrateAll(net, opts, sink)
			if stopped {
				interruptedExit(live)
				return nil, ErrInterrupted
			}
		}
		live.Calibration[si] = cal
		w.flush(live)
		cr.Calibration = append(cr.Calibration, cal)

		var completed map[string]*PairOutcome
		if adopt && si < len(cp.Pairs) && len(cp.Pairs[si]) > 0 {
			completed = cp.Pairs[si]
			// Carry restored pairs into the live checkpoint so a second
			// interruption still has them, and re-score them in
			// canonical order (the checkpoint holds a canonical-order
			// prefix, so the penalty sequence matches the uninterrupted
			// run's).
			for k, p := range completed {
				live.Pairs[si][k] = p
			}
			for i := range w.Services {
				for j := i; j < len(w.Services); j++ {
					if p := completed[pairKey(i, j)]; p != nil {
						w.Breakers.scorePair(p)
					}
				}
			}
		}

		// Admission: decided once, here, before the matrix starts; the
		// checkpoint stores the decision so a resumed cycle skips
		// exactly the same pairs.
		var open []string
		if cp != nil && si < len(cp.OpenServices) && cp.OpenServices[si] != nil {
			open = cp.OpenServices[si]
		} else {
			open = w.Breakers.OpenServices()
		}
		live.OpenServices[si] = append([]string{}, open...)
		w.flush(live)
		var skip func(string) bool
		if len(open) > 0 {
			openSet := make(map[string]bool, len(open))
			for _, n := range open {
				openSet[n] = true
			}
			skip = func(name string) bool { return openSet[name] }
		}

		// Adaptive budgets: a checkpoint that recorded this setting's
		// allocation hands it over verbatim (screening is skipped), so
		// the resumed cycle's stopping ceilings match the interrupted
		// run's; a fresh allocation is flushed the moment it is
		// decided, before any full-depth trial runs.
		var budgets map[string]int
		if cp != nil && si < len(cp.Budget) && cp.Budget[si] != nil {
			budgets = cp.Budget[si]
			if live.Budget != nil {
				live.Budget[si] = budgets
			}
		}

		si := si
		m := &Matrix{
			Services:    w.Services,
			Net:         net,
			Opts:        opts,
			Workers:     w.Workers,
			Remote:      w.Remote,
			Cycle:       cr.Cycle,
			Setting:     si,
			Progress:    w.Progress,
			OnFault:     w.OnFault,
			Interrupt:   w.Interrupt,
			Completed:   completed,
			SkipService: skip,
			Journal:     sink,
			Breakers:    w.Breakers,
			Obs:         w.Obs,
			Budgets:     budgets,
			OnBudgets: func(b map[string]int) {
				if live.Budget != nil {
					live.Budget[si] = b
					w.flush(live)
				}
			},
			OnPair: func(key string, out *PairOutcome) {
				live.Pairs[si][key] = out
				w.flush(live)
			},
		}
		res, err := m.Run()
		if err != nil {
			interruptedExit(live)
			return nil, err
		}
		cr.PerSetting = append(cr.PerSetting, res)
	}
	if w.CheckpointPath != "" {
		os.Remove(w.CheckpointPath)
	}
	finishJournal()
	if jw != nil && w.JournalPath != "" {
		os.Remove(w.JournalPath)
	}
	w.Breakers.decay()
	w.cycles = append(w.cycles, cr)
	w.Obs.emit(obs.TimelineEvent{Kind: "cycle_end", Cycle: cr.Cycle, Detail: "completed"})
	return cr, nil
}

// SettingOptions resolves the scheduler options RunCycle uses for one
// (cycle, setting) pair: the watchdog's own Opts, or — when those are
// zero — the per-setting paper defaults, with WallBudget and Adaptive
// carried over, defaults filled in, and the cycle/setting seed offset
// applied.
// It is exported for fleet workers, which must derive trial seeds
// identically to the coordinator's watchdog from their own (matching)
// configuration.
func (w *Watchdog) SettingOptions(cycle, si int) SchedulerOptions {
	opts := w.Opts
	if opts.IsZero() {
		wb, ad, sk := opts.WallBudget, opts.Adaptive, opts.SketchStats
		opts = PaperOptions(w.Settings[si])
		opts.WallBudget = wb
		opts.Adaptive = ad
		opts.SketchStats = sk
	}
	opts = opts.withDefaults()
	// Seed-scope each cycle and setting so re-runs differ but stay
	// reproducible.
	opts.BaseSeed += uint64(cycle)*1_000_003 + uint64(si)*7_919
	return opts
}

// openJournal opens (or creates) the write-ahead journal, recovering
// any records a previous process left behind. A journal that cannot be
// opened degrades to unjournaled operation: the journal is a durability
// optimization, never a correctness dependency. The one exception is a
// future-version journal, which is a hard error — appending a fresh
// prudentia.journal/1 beside history a newer binary still considers
// authoritative would silently fork the trial record.
func (w *Watchdog) openJournal() (*journalSink, *journal.Writer, journal.Recovery, error) {
	if w.JournalPath == "" {
		return nil, nil, journal.Recovery{}, nil
	}
	var wrap journal.WrapFunc
	if w.DiskChaos.Enabled() {
		plan := w.DiskChaos
		wrap = func(f *os.File) journal.File { return chaos.WrapFile(f, plan) }
	}
	jw, rec, err := journal.OpenWrapped(w.JournalPath, wrap)
	if errors.Is(err, journal.ErrFutureVersion) {
		return nil, nil, journal.Recovery{}, err
	}
	if err != nil {
		if w.Progress != nil {
			w.Progress("journal open failed (running unjournaled): %v", err)
		}
		return nil, nil, journal.Recovery{}, nil
	}
	if len(rec.Entries) > 0 || rec.Truncated {
		w.Obs.journalRecovered(len(rec.Entries), rec.TornBytes)
		if w.Progress != nil {
			w.Progress("journal recovered: %d attempts replayable, %d torn bytes truncated",
				len(rec.Entries), rec.TornBytes)
		}
	}
	return newJournalSink(jw, rec.Entries), jw, rec, nil
}

// probeOpenServices runs one canary trial for every open breaker, in
// sorted order, re-admitting services whose probe succeeds. Probes are
// solo trials in the first setting; their seeds live in the canary
// namespace with the cycle number as the attempt index, so each cycle
// probes with a fresh — but journaled, hence replayable — seed. Probes
// deliberately emit no fault-ledger events (they are supervision, not
// measurement), so a resumed cycle that re-probes cannot duplicate
// ledger entries; they surface on the timeline and the
// prudentia_breaker_probes_total counter instead.
func (w *Watchdog) probeOpenServices(sink *journalSink, cycle int) {
	open := w.Breakers.OpenServices()
	if len(open) == 0 || len(w.Settings) == 0 {
		return
	}
	net := w.Settings[0]
	opts := w.SettingOptions(cycle, 0)
	for _, name := range open {
		var svc services.Service
		for _, s := range w.Services {
			if s.Name() == name {
				svc = s
				break
			}
		}
		if svc == nil {
			continue // service left the catalog; breaker ages out via decay
		}
		w.Breakers.beginProbe(name)
		seed := trialSeed(opts.BaseSeed, canarySeedID(name), cycle)
		spec := Spec{Incumbent: svc, Net: net, Seed: seed, Chaos: opts.Chaos}
		if opts.Timing != nil {
			spec = opts.Timing(spec)
		} else {
			spec = spec.DefaultTiming()
		}
		ar := executeAttempt(sink, w.Obs, opts, spec, name+" (canary)", cycle)
		ok := ar.class == "ok"
		w.Breakers.probeResult(name, ok)
		w.Obs.breakerProbe(name, ok)
		if w.Progress != nil {
			verdict := "failed; breaker stays open"
			if ok {
				verdict = "ok; service re-admitted"
			}
			w.Progress("canary probe %s: %s", name, verdict)
		}
	}
}

// calibrateAll measures every catalog service solo for one setting,
// fanning services out to the worker pool when Workers > 1. Like the
// pair matrix, calibration is deterministic for any worker count: each
// service's attempt seeds derive from its catalog index alone, and
// fault events are emitted in catalog order. It reports stopped=true
// (with the partial map discarded, matching the serial scheduler) when
// the Interrupt hook fires.
func (w *Watchdog) calibrateAll(net netem.Config, opts SchedulerOptions, sink *journalSink) (cal map[string]float64, stopped bool) {
	cal = make(map[string]float64, len(w.Services))
	nw := workerCount(w.Workers, len(w.Services))
	if nw <= 1 {
		for i, svc := range w.Services {
			if w.interrupted() {
				return nil, true
			}
			if w.Breakers.State(svc.Name()) == BreakerOpen {
				continue // open breaker: no solo run, no penalty
			}
			mbps, ok := w.calibrate(svc, net, opts, i, sink, w.OnFault)
			w.Obs.calibrationDone(svc.Name(), ok)
			if ok {
				cal[svc.Name()] = mbps
			} else {
				w.Breakers.scoreCalibrationFailure(svc.Name())
			}
		}
		return cal, false
	}

	type calRun struct {
		idx    int
		events []FaultEvent
		mbps   float64
		ok     bool
	}
	var stop atomic.Bool
	interrupt := func() bool {
		if stop.Load() {
			return true
		}
		if w.interrupted() {
			stop.Store(true)
			return true
		}
		return false
	}
	tasks := make(chan int, len(w.Services))
	for i := range w.Services {
		if w.Breakers.State(w.Services[i].Name()) == BreakerOpen {
			continue // open breaker: no solo run, no penalty
		}
		tasks <- i
	}
	close(tasks)
	runs := make(chan *calRun, len(w.Services))
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if interrupt() {
					return
				}
				cr := &calRun{idx: i}
				cr.mbps, cr.ok = w.calibrate(w.Services[i], net, opts, i, sink,
					func(ev FaultEvent) { cr.events = append(cr.events, ev) })
				runs <- cr
			}
		}()
	}
	wg.Wait()
	close(runs)

	done := make([]*calRun, len(w.Services))
	for cr := range runs {
		done[cr.idx] = cr
	}
	// Emit buffered fault events in catalog order so the ledger is
	// byte-identical to a serial calibration pass. Calibration telemetry
	// and breaker scoring ride the same ordered release (BreakerSet is
	// single-goroutine by design).
	for i, cr := range done {
		if cr == nil {
			continue
		}
		if w.OnFault != nil {
			for _, ev := range cr.events {
				w.OnFault(ev)
			}
		}
		w.Obs.calibrationDone(w.Services[i].Name(), cr.ok)
		if cr.ok {
			cal[w.Services[i].Name()] = cr.mbps
		} else {
			w.Breakers.scoreCalibrationFailure(w.Services[i].Name())
		}
	}
	if stop.Load() {
		return nil, true
	}
	return cal, false
}

// calibrate measures one service solo with the same defenses the matrix
// applies: recovered panics, injected errors, and reaped hangs retry
// with fresh seeds, and discarded or corrupt results are skipped.
// Attempts run through executeAttempt, so they are journaled (and
// replayed on resume) and subject to the wall-clock reaper, but they do
// no trial counting — calibration stays out of prudentia_trials_*.
// After MaxFailures fruitless attempts the service's calibration entry
// is omitted for the cycle (reported on the fault ledger) instead of
// killing the cycle.
func (w *Watchdog) calibrate(svc services.Service, net netem.Config, opts SchedulerOptions, idx int, sink *journalSink, emit func(FaultEvent)) (float64, bool) {
	id := soloSeedID(idx)
	budget := opts.MaxFailures + opts.MaxDiscards
	for attempt := 0; attempt < budget; attempt++ {
		seed := trialSeed(opts.BaseSeed, id, attempt)
		spec := Spec{Incumbent: svc, Net: net, Seed: seed, Chaos: opts.Chaos}
		if opts.Timing != nil {
			spec = opts.Timing(spec)
		} else {
			spec = spec.DefaultTiming()
		}
		ar := executeAttempt(sink, w.Obs, opts, spec, svc.Name()+" (solo)", attempt)
		switch ar.class {
		case "fail":
			if emit != nil {
				emit(FaultEvent{Pair: svc.Name() + " (solo)", Kind: ar.failKind, Attempt: attempt, Seed: seed, Detail: ar.failMsg})
			}
		case "ok":
			return ar.res.Mbps[0], true
		}
		// discard / corrupt: skipped, next attempt.
	}
	if emit != nil {
		emit(FaultEvent{Pair: svc.Name() + " (solo)", Kind: "calibration", Attempt: budget,
			Detail: "all calibration attempts failed; entry omitted this cycle"})
	}
	return 0, false
}

// History returns all completed cycles.
func (w *Watchdog) History() []*CycleResult { return w.cycles }

// ThrottledServices reports services whose solo throughput in the given
// setting stayed below frac of the link capacity — the rule that flags
// OneDrive's external 45 Mbps cap in Table 1. Only meaningful for
// services without an intrinsic cap.
func (c *CycleResult) ThrottledServices(setting int, net netem.Config, svcs []services.Service, frac float64) []string {
	if setting >= len(c.Calibration) {
		return nil
	}
	linkMbps := float64(net.RateBps) / 1e6
	var out []string
	for _, svc := range svcs {
		if svc.MaxRateBps() > 0 {
			continue // intrinsically capped (video, RTC)
		}
		if got, ok := c.Calibration[setting][svc.Name()]; ok && got < frac*linkMbps {
			out = append(out, svc.Name())
		}
	}
	sort.Strings(out)
	return out
}

// ChangeReport compares a service's median throughput against a given
// contender across two cycles (the Fig 9a analysis: Google Drive and
// YouTube improved between 2022 and 2023 measurement periods).
type ChangeReport struct {
	Service, Versus string
	BeforeMbps      float64
	AfterMbps       float64
	ImprovementPct  float64
}

// CompareCycles builds a ChangeReport from two cycles for one setting.
func CompareCycles(before, after *CycleResult, setting int, service, versus string) (ChangeReport, bool) {
	rep := ChangeReport{Service: service, Versus: versus}
	if setting >= len(before.PerSetting) || setting >= len(after.PerSetting) {
		return rep, false
	}
	b, bs, ok1 := before.PerSetting[setting].Cell(service, versus)
	a, as, ok2 := after.PerSetting[setting].Cell(service, versus)
	if !ok1 || !ok2 || b.Counted() == 0 || a.Counted() == 0 {
		return rep, false
	}
	rep.BeforeMbps = b.MedianMbps(bs)
	rep.AfterMbps = a.MedianMbps(as)
	if rep.BeforeMbps > 0 {
		rep.ImprovementPct = 100 * (rep.AfterMbps - rep.BeforeMbps) / rep.BeforeMbps
	}
	return rep, true
}

// InstabilityReport summarizes trial-level spread for a pair (Fig 10):
// services like OneDrive and Vimeo show wide trial-to-trial variance.
type InstabilityReport struct {
	Incumbent, Contender string
	Slot                 int
	// TrialMbps is the slot's per-trial throughput series. Raw-sample
	// runs report it in trial order; sketch-backed runs report the
	// retained samples in sorted order while the sketch is exact
	// (every paper budget), and leave it empty once compacted — the
	// IQR remains available in either case.
	TrialMbps []float64
	IQR       float64
	Unstable  bool
}

// Instability extracts the Fig 10 scatter for one ordered pair.
func (r *MatrixResult) Instability(incumbent, contender string) (InstabilityReport, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok || p.Counted() == 0 {
		return InstabilityReport{}, false
	}
	rep := InstabilityReport{
		Incumbent: incumbent, Contender: contender, Slot: slot,
		Unstable: p.Unstable,
	}
	if sk := p.Sketches; sk != nil {
		if vs, exact := sk.Mbps[slot].Values(); exact {
			rep.TrialMbps = vs
		}
		rep.IQR = sk.Mbps[slot].IQR()
		return rep, true
	}
	rep.TrialMbps = p.mbps(slot)
	rep.IQR = stats.IQR(rep.TrialMbps)
	return rep, true
}
