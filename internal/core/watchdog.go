package core

import (
	"fmt"
	"sort"

	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/stats"
)

// Watchdog is the continuously-running fairness monitor: it cycles the
// all-pairs matrix across its network settings, keeps per-cycle history
// (how the paper detected the 2022→2023 Google Drive and YouTube stack
// changes, Obs 13), runs solo calibrations to detect upstream throttling
// (§3.1), and accepts third-party service submissions gated by access
// codes (Appendix A).
type Watchdog struct {
	// Services is the catalog under test.
	Services []services.Service
	// Settings are the network environments to cycle through; defaults
	// to the paper's two standing settings.
	Settings []netem.Config
	// Opts configures the per-pair protocol (PaperOptions applied
	// per-setting when zero-valued).
	Opts SchedulerOptions
	// AccessCodes gate third-party submissions.
	AccessCodes []string
	// Progress, if non-nil, receives human-readable progress lines.
	Progress func(format string, args ...any)

	cycles      []*CycleResult
	submissions []Submission
}

// CycleResult is one complete iteration over all pairs in all settings.
type CycleResult struct {
	// Cycle is the 1-based iteration number.
	Cycle int
	// PerSetting maps each setting (by index into Settings) to its
	// matrix result.
	PerSetting []*MatrixResult
	// Calibration holds each service's solo throughput per setting, the
	// Table 1 "Max Xput" check.
	Calibration []map[string]float64
}

// Submission is a third-party service queued for evaluation (Appendix A).
type Submission struct {
	URL     string
	Service services.Service
}

// NewWatchdog returns a watchdog over the standard catalog and settings.
func NewWatchdog() *Watchdog {
	return &Watchdog{
		Services: services.ThroughputCatalog(),
		Settings: []netem.Config{netem.HighlyConstrained(), netem.ModeratelyConstrained()},
		// Access codes published in the paper's Appendix A for
		// third-party testing.
		AccessCodes: []string{
			"KD4p1Z8Gs1SVPHUrTOVTMNHtvUnMSmvZ",
			"A7mH2gHPmtlhbpb8ajfe48oCzA7hp6VB",
			"5PWWIvTUxZSYVhIuEiBEmOOOog8zgrGa",
			"XrVzJ3evvkVpoAf3k54mYuY0tCgjTD2k",
			"bTXmWjSdAmQf4ULItqH2JCR5oX8jZvhL",
		},
	}
}

// Submit queues a custom URL for testing. The URL is modelled as a web
// page whose parameters derive deterministically from the URL string.
// An invalid access code is rejected.
func (w *Watchdog) Submit(url, accessCode string) error {
	ok := false
	for _, c := range w.AccessCodes {
		if c == accessCode {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("core: invalid access code for submission %q", url)
	}
	if url == "" {
		return fmt.Errorf("core: submission requires a URL")
	}
	svc := customURLService(url)
	w.submissions = append(w.submissions, Submission{URL: url, Service: svc})
	w.Services = append(w.Services, svc)
	return nil
}

// Submissions lists accepted submissions.
func (w *Watchdog) Submissions() []Submission { return w.submissions }

// customURLService builds a web-page model whose weight and flow count
// derive deterministically from the URL (a stand-in for fetching and
// profiling the real page, which the live system does with Chrome).
func customURLService(url string) services.Service {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(url); i++ {
		h ^= uint64(url[i])
		h *= 1099511628211
	}
	page := services.NewWikipedia(nil)
	page.ServiceName = url
	page.Factory = services.CubicFactory()
	page.TotalBytes = 500_000 + int64(h%4_000_000)
	page.Flows = 4 + int(h%16)
	page.Resources = 10 + int(h%40)
	page.AboveFoldFrac = 0.5 + float64(h%40)/100
	return page
}

// RunCycle executes one full iteration and appends it to the history.
func (w *Watchdog) RunCycle() (*CycleResult, error) {
	cr := &CycleResult{Cycle: len(w.cycles) + 1}
	for si, net := range w.Settings {
		opts := w.Opts
		if opts.MinTrials == 0 && opts.ToleranceMbps == 0 {
			opts = PaperOptions(net)
		}
		// Seed-scope each cycle and setting so re-runs differ but stay
		// reproducible.
		opts.BaseSeed += uint64(cr.Cycle)*1_000_003 + uint64(si)*7_919

		// Solo calibration first (§3.1): detect upstream throttling.
		cal := make(map[string]float64, len(w.Services))
		for i, svc := range w.Services {
			tr, err := RunSolo(svc, net, opts.BaseSeed+uint64(i)*13, opts.Timing)
			if err != nil {
				return nil, err
			}
			cal[svc.Name()] = tr.Mbps[0]
		}
		cr.Calibration = append(cr.Calibration, cal)

		m := &Matrix{Services: w.Services, Net: net, Opts: opts, Progress: w.Progress}
		res, err := m.Run()
		if err != nil {
			return nil, err
		}
		cr.PerSetting = append(cr.PerSetting, res)
	}
	w.cycles = append(w.cycles, cr)
	return cr, nil
}

// History returns all completed cycles.
func (w *Watchdog) History() []*CycleResult { return w.cycles }

// ThrottledServices reports services whose solo throughput in the given
// setting stayed below frac of the link capacity — the rule that flags
// OneDrive's external 45 Mbps cap in Table 1. Only meaningful for
// services without an intrinsic cap.
func (c *CycleResult) ThrottledServices(setting int, net netem.Config, svcs []services.Service, frac float64) []string {
	if setting >= len(c.Calibration) {
		return nil
	}
	linkMbps := float64(net.RateBps) / 1e6
	var out []string
	for _, svc := range svcs {
		if svc.MaxRateBps() > 0 {
			continue // intrinsically capped (video, RTC)
		}
		if got, ok := c.Calibration[setting][svc.Name()]; ok && got < frac*linkMbps {
			out = append(out, svc.Name())
		}
	}
	sort.Strings(out)
	return out
}

// ChangeReport compares a service's median throughput against a given
// contender across two cycles (the Fig 9a analysis: Google Drive and
// YouTube improved between 2022 and 2023 measurement periods).
type ChangeReport struct {
	Service, Versus string
	BeforeMbps      float64
	AfterMbps       float64
	ImprovementPct  float64
}

// CompareCycles builds a ChangeReport from two cycles for one setting.
func CompareCycles(before, after *CycleResult, setting int, service, versus string) (ChangeReport, bool) {
	rep := ChangeReport{Service: service, Versus: versus}
	if setting >= len(before.PerSetting) || setting >= len(after.PerSetting) {
		return rep, false
	}
	b, bs, ok1 := before.PerSetting[setting].Cell(service, versus)
	a, as, ok2 := after.PerSetting[setting].Cell(service, versus)
	if !ok1 || !ok2 || len(b.Trials) == 0 || len(a.Trials) == 0 {
		return rep, false
	}
	rep.BeforeMbps = b.MedianMbps(bs)
	rep.AfterMbps = a.MedianMbps(as)
	if rep.BeforeMbps > 0 {
		rep.ImprovementPct = 100 * (rep.AfterMbps - rep.BeforeMbps) / rep.BeforeMbps
	}
	return rep, true
}

// InstabilityReport summarizes trial-level spread for a pair (Fig 10):
// services like OneDrive and Vimeo show wide trial-to-trial variance.
type InstabilityReport struct {
	Incumbent, Contender string
	Slot                 int
	TrialMbps            []float64
	IQR                  float64
	Unstable             bool
}

// Instability extracts the Fig 10 scatter for one ordered pair.
func (r *MatrixResult) Instability(incumbent, contender string) (InstabilityReport, bool) {
	p, slot, ok := r.Cell(incumbent, contender)
	if !ok || len(p.Trials) == 0 {
		return InstabilityReport{}, false
	}
	rep := InstabilityReport{
		Incumbent: incumbent, Contender: contender, Slot: slot,
		Unstable: p.Unstable,
	}
	rep.TrialMbps = p.mbps(slot)
	rep.IQR = stats.IQR(rep.TrialMbps)
	return rep, true
}
