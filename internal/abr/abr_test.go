package abr

import (
	"testing"
	"testing/quick"

	"prudentia/internal/sim"
)

func TestLadderBasics(t *testing.T) {
	l := YouTubeLadder()
	if len(l) != 7 {
		t.Fatalf("YouTube ladder has %d rungs", len(l))
	}
	if l.Max() != 13_000_000 {
		t.Fatalf("YouTube max = %d", l.Max())
	}
	if NetflixLadder().Max() != 8_000_000 || VimeoLadder().Max() != 14_000_000 {
		t.Fatal("Netflix/Vimeo caps wrong (Table 1)")
	}
	if (Ladder{}).Max() != 0 {
		t.Fatal("empty ladder max")
	}
}

func TestLadderClamp(t *testing.T) {
	l := YouTubeLadder()
	if got := l.Clamp(0); got != len(l)-1 {
		t.Fatalf("no cap should allow top rung, got %d", got)
	}
	// A 4 Mbps render cap (headless client) allows up to the 3 Mbps rung.
	idx := l.Clamp(4_000_000)
	if l[idx] > 4_000_000 {
		t.Fatalf("clamp exceeded cap: %d", l[idx])
	}
	if idx+1 < len(l) && l[idx+1] <= 4_000_000 {
		t.Fatalf("clamp not maximal: %d", idx)
	}
	// A cap below the lowest rung still returns rung 0.
	if got := l.Clamp(1); got != 0 {
		t.Fatalf("tiny cap rung = %d", got)
	}
}

func TestLaddersAscendProperty(t *testing.T) {
	for _, l := range []Ladder{YouTubeLadder(), NetflixLadder(), VimeoLadder()} {
		for i := 1; i < len(l); i++ {
			if l[i] <= l[i-1] {
				t.Fatalf("ladder not ascending: %v", l)
			}
		}
	}
}

func TestResolutionForRung(t *testing.T) {
	l := YouTubeLadder()
	if got := ResolutionForRung(l, len(l)-1); got != 2160 {
		t.Fatalf("top rung = %dp, want 2160p", got)
	}
	if got := ResolutionForRung(l, 0); got > 360 {
		t.Fatalf("bottom rung = %dp", got)
	}
	// Monotone.
	prev := 0
	for i := range l {
		r := ResolutionForRung(l, i)
		if r < prev {
			t.Fatalf("resolutions not monotone: %d after %d", r, prev)
		}
		prev = r
	}
}

func TestEstimatorHarmonicMean(t *testing.T) {
	e := NewEstimator(5)
	if e.Estimate() != 0 {
		t.Fatal("empty estimator should be 0")
	}
	e.Add(1_000_000)
	e.Add(4_000_000)
	// Harmonic mean of 1 and 4 Mbps = 1.6 Mbps.
	if got := e.Estimate(); got < 1_590_000 || got > 1_610_000 {
		t.Fatalf("harmonic mean = %d", got)
	}
}

func TestEstimatorWindowEviction(t *testing.T) {
	e := NewEstimator(3)
	e.Add(1) // will be evicted
	for i := 0; i < 3; i++ {
		e.Add(1_000_000)
	}
	if got := e.Estimate(); got != 1_000_000 {
		t.Fatalf("eviction failed: %d", got)
	}
	e.Add(0) // ignored
	if got := e.Estimate(); got != 1_000_000 {
		t.Fatalf("zero sample should be ignored: %d", got)
	}
}

func st(ladder Ladder, buffer, target float64, tput int64, last int) State {
	return State{
		Ladder: ladder, BufferSec: buffer, TargetBufferSec: target,
		ThroughputBps: tput, LastRung: last,
	}
}

func TestStabilityPolicyStartsLow(t *testing.T) {
	p := NewStabilityPolicy()
	if got := p.NextRung(0, st(YouTubeLadder(), 0, 30, 0, -1)); got > 1 {
		t.Fatalf("first chunk rung = %d", got)
	}
}

func TestStabilityPolicyPatientUpswitch(t *testing.T) {
	p := NewStabilityPolicy()
	l := YouTubeLadder()
	s := st(l, 20, 30, 50_000_000, 2)
	// Plenty of headroom, but the first decision must hold (patience=2).
	if got := p.NextRung(0, s); got != 2 {
		t.Fatalf("upswitched without patience: %d", got)
	}
	if got := p.NextRung(0, s); got != 3 {
		t.Fatalf("second consecutive headroom should upswitch: %d", got)
	}
}

func TestStabilityPolicyEmergencyDownswitch(t *testing.T) {
	p := NewStabilityPolicy()
	l := YouTubeLadder()
	// Buffer nearly empty, estimate tiny: drop to a sustainable rung.
	got := p.NextRung(0, st(l, 1, 30, 500_000, 5))
	if l[got] > 400_000 {
		t.Fatalf("emergency downswitch insufficient: rung %d (%d bps)", got, l[got])
	}
}

func TestStabilityPolicyRespectsRenderCap(t *testing.T) {
	p := NewStabilityPolicy()
	l := YouTubeLadder()
	s := st(l, 25, 30, 100_000_000, 3)
	s.RenderCap = 4_000_000 // headless client (§3.3)
	for i := 0; i < 10; i++ {
		if got := p.NextRung(0, s); l[got] > 4_000_000 {
			t.Fatalf("render cap violated: %d bps", l[got])
		} else {
			s.LastRung = got
		}
	}
}

func TestThroughputPolicyGreedy(t *testing.T) {
	p := NewThroughputPolicy()
	l := NetflixLadder()
	got := p.NextRung(0, st(l, 30, 40, 9_000_000, 0))
	// 0.95×9M = 8.55M budget: top rung (8M) fits immediately.
	if got != len(l)-1 {
		t.Fatalf("greedy policy rung = %d", got)
	}
}

func TestThroughputPolicyBufferGuardrail(t *testing.T) {
	p := NewThroughputPolicy()
	l := NetflixLadder()
	// Near-empty buffer: no upswitching even with headroom.
	got := p.NextRung(0, st(l, 2, 40, 9_000_000, 1))
	if got > 1 {
		t.Fatalf("guardrail failed: %d", got)
	}
}

func TestConservativePolicySingleStep(t *testing.T) {
	p := NewConservativePolicy()
	l := VimeoLadder()
	got := p.NextRung(0, st(l, 20, 30, 50_000_000, 1))
	if got != 2 {
		t.Fatalf("conservative policy should move one rung, got %d", got)
	}
	got = p.NextRung(0, st(l, 20, 30, 100_000, 4))
	if got != 3 {
		t.Fatalf("conservative policy should drop one rung, got %d", got)
	}
}

func TestPoliciesNeverExceedLadder(t *testing.T) {
	policies := []Policy{NewStabilityPolicy(), NewThroughputPolicy(), NewConservativePolicy()}
	if err := quick.Check(func(buf uint8, tput uint32, last uint8) bool {
		l := YouTubeLadder()
		for _, p := range policies {
			s := st(l, float64(buf%60), 30, int64(tput), int(last)%len(l))
			got := p.NextRung(sim.Second, s)
			if got < 0 || got >= len(l) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
