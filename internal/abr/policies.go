package abr

import "prudentia/internal/sim"

// StabilityPolicy models YouTube-style rung selection: it prizes steady
// playback over maximal quality. Upswitches require sustained headroom
// over several chunks; downswitches happen promptly when the buffer or
// the estimate sags. The paper attributes YouTube's low contentiousness
// (Obs 2) largely to this behaviour plus its discrete ladder.
type StabilityPolicy struct {
	// Safety scales the throughput estimate before rung comparison.
	Safety float64
	// UpswitchHeadroom is the extra margin (×rung bitrate) required to
	// move up, and UpswitchPatience how many consecutive chunks must
	// show it.
	UpswitchHeadroom float64
	UpswitchPatience int

	pendingUp int
}

// NewStabilityPolicy returns the YouTube-flavoured policy.
func NewStabilityPolicy() *StabilityPolicy {
	return &StabilityPolicy{Safety: 0.8, UpswitchHeadroom: 1.25, UpswitchPatience: 2}
}

// Name implements Policy.
func (p *StabilityPolicy) Name() string { return "stability" }

// NextRung implements Policy.
func (p *StabilityPolicy) NextRung(_ sim.Time, st State) int {
	cap := st.Ladder.Clamp(st.RenderCap)
	if st.LastRung < 0 {
		// First chunk: start low, like the real player.
		return min(1, cap)
	}
	cur := min(st.LastRung, cap)
	budget := int64(p.Safety * float64(st.ThroughputBps))

	// Emergency downswitch when the buffer is draining.
	if st.BufferSec < st.TargetBufferSec*0.3 || int64(float64(st.Ladder[cur])) > budget {
		p.pendingUp = 0
		for cur > 0 && st.Ladder[cur] > budget {
			cur--
		}
		return cur
	}
	// Patient upswitch; with a comfortably full buffer the player can
	// afford to try the next rung with less headroom.
	headroom := p.UpswitchHeadroom
	if st.BufferSec > st.TargetBufferSec*0.8 {
		headroom = 1.05
	}
	if cur < cap && int64(headroom*float64(st.Ladder[cur+1])) <= budget &&
		st.BufferSec > st.TargetBufferSec*0.6 {
		p.pendingUp++
		if p.pendingUp >= p.UpswitchPatience {
			p.pendingUp = 0
			return cur + 1
		}
	} else {
		p.pendingUp = 0
	}
	return cur
}

// ThroughputPolicy models Netflix-style selection: pick the highest rung
// the (safety-scaled) estimate supports, switching immediately in both
// directions. Combined with four parallel NewReno connections this makes
// Netflix notably contentious in the highly-constrained setting (Fig 3a).
type ThroughputPolicy struct {
	Safety float64
}

// NewThroughputPolicy returns the Netflix-flavoured policy.
func NewThroughputPolicy() *ThroughputPolicy { return &ThroughputPolicy{Safety: 0.95} }

// Name implements Policy.
func (p *ThroughputPolicy) Name() string { return "throughput" }

// NextRung implements Policy.
func (p *ThroughputPolicy) NextRung(_ sim.Time, st State) int {
	cap := st.Ladder.Clamp(st.RenderCap)
	if st.LastRung < 0 {
		return min(2, cap)
	}
	budget := int64(p.Safety * float64(st.ThroughputBps))
	rung := 0
	for i := 0; i <= cap; i++ {
		if st.Ladder[i] <= budget {
			rung = i
		}
	}
	// Buffer guardrail: never upswitch into a nearly-empty buffer.
	if st.BufferSec < st.TargetBufferSec*0.25 && rung > st.LastRung {
		rung = st.LastRung
	}
	return rung
}

// ConservativePolicy models Vimeo-style selection: a low safety factor
// keeps the requested bitrate well under the estimate, which the paper
// hypothesizes is why Vimeo's two BBR flows stay uncontentious even in
// the highly-constrained setting (Obs 3, Fig 3).
type ConservativePolicy struct {
	Safety float64
}

// NewConservativePolicy returns the Vimeo-flavoured policy.
func NewConservativePolicy() *ConservativePolicy { return &ConservativePolicy{Safety: 0.6} }

// Name implements Policy.
func (p *ConservativePolicy) Name() string { return "conservative" }

// NextRung implements Policy.
func (p *ConservativePolicy) NextRung(_ sim.Time, st State) int {
	cap := st.Ladder.Clamp(st.RenderCap)
	if st.LastRung < 0 {
		return min(1, cap)
	}
	budget := int64(p.Safety * float64(st.ThroughputBps))
	rung := 0
	for i := 0; i <= cap; i++ {
		if st.Ladder[i] <= budget {
			rung = i
		}
	}
	// Move at most one rung per chunk in either direction: Vimeo's
	// player visibly smooths switches.
	if rung > st.LastRung+1 {
		rung = st.LastRung + 1
	}
	if rung < st.LastRung-1 {
		rung = st.LastRung - 1
	}
	return rung
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
