// Package abr models the adaptive-bitrate control loops of the on-demand
// video services in the Prudentia catalog. The paper's core argument
// (Obs 2, Obs 3, Obs 9) is that these application-level loops — discrete
// bitrate ladders, stability-seeking rung selection, playback-buffer
// targets — shape fairness outcomes at least as much as the underlying
// CCA, so they are modelled explicitly rather than folded into transport.
package abr

import "prudentia/internal/sim"

// Ladder is a service's ascending list of encoded bitrates in bits/sec.
type Ladder []int64

// Max returns the ladder's top rung.
func (l Ladder) Max() int64 {
	if len(l) == 0 {
		return 0
	}
	return l[len(l)-1]
}

// Clamp returns the highest rung index whose bitrate does not exceed cap
// (minimum index 0). A zero cap means no constraint.
func (l Ladder) Clamp(cap int64) int {
	if cap <= 0 {
		return len(l) - 1
	}
	idx := 0
	for i, b := range l {
		if b <= cap {
			idx = i
		}
	}
	return idx
}

// Reference ladders. The top rungs match Table 1's measured maximum
// transmission rates (YouTube 13 Mbps, Vimeo 14 Mbps, Netflix 8 Mbps, all
// serving up-to-4K Big Buck Bunny); the lower rungs follow the services'
// published encoding tiers.
func YouTubeLadder() Ladder {
	return Ladder{300_000, 700_000, 1_500_000, 3_000_000, 5_000_000, 8_000_000, 13_000_000}
}

func NetflixLadder() Ladder {
	return Ladder{350_000, 750_000, 1_750_000, 3_000_000, 5_000_000, 8_000_000}
}

func VimeoLadder() Ladder {
	return Ladder{400_000, 800_000, 1_600_000, 3_200_000, 6_000_000, 10_000_000, 14_000_000}
}

// ResolutionForRung maps a rung index on a 7-ish step ladder to a display
// height, for reporting.
func ResolutionForRung(l Ladder, idx int) int {
	heights := []int{144, 240, 360, 480, 720, 1080, 1440, 2160}
	if len(l) == 0 {
		return 0
	}
	// Spread the ladder across the height table so the top rung is 4K
	// for 7-rung ladders and 1080p+ for shorter ones.
	pos := (idx + len(heights) - len(l))
	if pos < 0 {
		pos = 0
	}
	if pos >= len(heights) {
		pos = len(heights) - 1
	}
	return heights[pos]
}

// Policy selects the rung for the next chunk.
type Policy interface {
	// Name identifies the policy in traces.
	Name() string
	// NextRung picks the ladder index for the next chunk request.
	NextRung(now sim.Time, st State) int
}

// State is the player state a policy sees when choosing a rung.
type State struct {
	Ladder Ladder
	// BufferSec is the current playback buffer in seconds.
	BufferSec float64
	// TargetBufferSec is the buffer the player tries to hold.
	TargetBufferSec float64
	// ThroughputBps is the estimator's current value (0 before the first
	// chunk completes).
	ThroughputBps int64
	// LastRung is the rung used for the previous chunk (-1 before the
	// first request).
	LastRung int
	// RenderCap caps the usable bitrate due to client rendering limits
	// (the §3.3 fidelity effect); 0 means unconstrained.
	RenderCap int64
}

// Estimator smooths chunk-level throughput samples. Services use a
// harmonic mean over recent chunks, which is what DASH-style players do
// because it is dominated by the slow chunks that actually cause stalls.
type Estimator struct {
	samples []int64
	window  int
}

// NewEstimator returns an estimator over the given number of chunks.
func NewEstimator(window int) *Estimator {
	if window <= 0 {
		window = 5
	}
	return &Estimator{window: window}
}

// Add records a chunk download throughput sample in bits/sec.
func (e *Estimator) Add(bps int64) {
	if bps <= 0 {
		return
	}
	e.samples = append(e.samples, bps)
	if len(e.samples) > e.window {
		e.samples = e.samples[len(e.samples)-e.window:]
	}
}

// Estimate returns the harmonic mean of the recorded samples (0 if none).
func (e *Estimator) Estimate() int64 {
	if len(e.samples) == 0 {
		return 0
	}
	var invSum float64
	for _, s := range e.samples {
		invSum += 1 / float64(s)
	}
	return int64(float64(len(e.samples)) / invSum)
}
