package netem

import (
	"fmt"

	"prudentia/internal/sim"
)

// MaxServices is the number of experiment slots a bottleneck tracks.
// Prudentia experiments are pairwise (incumbent vs contender), but solo
// calibration runs use a single slot.
const MaxServices = 2

// ServiceStats aggregates what the bottleneck observed for one slot.
type ServiceStats struct {
	// ArrivedPackets/ArrivedBytes count packets reaching the queue
	// (including ones later dropped).
	ArrivedPackets int64
	ArrivedBytes   int64
	// DroppedPackets/DroppedBytes count drop-tail losses.
	DroppedPackets int64
	DroppedBytes   int64
	// DeliveredPackets/DeliveredBytes count packets fully serialized onto
	// the downstream link.
	DeliveredPackets int64
	DeliveredBytes   int64
	// QueueDelaySum accumulates per-packet queueing delay (enqueue to
	// start of transmission) for delivered packets.
	QueueDelaySum sim.Time
}

// LossRate returns the fraction of arrived packets that were dropped,
// the quantity plotted in the paper's Fig 12.
func (s ServiceStats) LossRate() float64 {
	if s.ArrivedPackets == 0 {
		return 0
	}
	return float64(s.DroppedPackets) / float64(s.ArrivedPackets)
}

// MeanQueueDelay returns the average queueing delay of delivered packets,
// the quantity plotted in the paper's Fig 13 (Appendix B.3).
func (s ServiceStats) MeanQueueDelay() sim.Time {
	if s.DeliveredPackets == 0 {
		return 0
	}
	return s.QueueDelaySum / sim.Time(s.DeliveredPackets)
}

// OccupancySample is one entry in the queue occupancy time series
// (paper Fig 8 plots exactly this signal).
type OccupancySample struct {
	At sim.Time
	// PerService holds the number of queued packets belonging to each slot.
	PerService [MaxServices]int
	Total      int
}

// Bottleneck is the emulated access link: a drop-tail FIFO queue feeding
// a fixed-rate serializer. It reproduces BESS's role in the testbed.
type Bottleneck struct {
	eng *sim.Engine
	// RateBps is the link speed in bits per second.
	RateBps int64
	// Capacity is the queue limit in packets. Per §3.1 (footnote 6) BESS
	// only supports power-of-two queue sizes; use QueueSizePackets to
	// reproduce that sizing rule.
	Capacity int

	// Output receives packets after serialization plus downstream delay.
	Output Handler
	// DownstreamDelay is the propagation delay from the switch to the
	// client.
	DownstreamDelay sim.Time

	// queue is a fixed-capacity ring buffer: head is the index of the
	// oldest packet, qlen the current depth; highWater is the deepest the
	// queue has been (the occupancy high-water mark the obs layer
	// exports). Tracking it inline costs one compare per enqueue and
	// keeps the hot path free of telemetry branches.
	queue      []*Packet
	head, qlen int
	highWater  int
	perService [MaxServices]int // queued packet counts per slot
	busy       bool

	stats [MaxServices]ServiceStats

	// occupancy sampling
	sampleEvery sim.Time
	samples     []OccupancySample
	sampling    bool

	// serDoneEv and deliverEv are the two hot-path callbacks, prebound once
	// at construction and scheduled with AfterArg carrying the packet: the
	// steady-state forwarding loop allocates no closures.
	serDoneEv sim.ArgEvent
	deliverEv sim.ArgEvent

	// memoSize/memoRate/memoSer memoize SerializationDelay for the common
	// case of back-to-back same-size packets (MTU-filled bulk flows). The
	// memo caches the exact integer-division result, so hits and misses are
	// indistinguishable to the simulation.
	memoSize int
	memoRate int64
	memoSer  sim.Time

	// release, when set, receives packets the bottleneck consumes without
	// handing to Output (drop-tail losses, and deliveries with no Output
	// wired). The owning testbed points it at its packet pool.
	release func(*Packet)

	// DropHook, when set, observes every drop-tail loss (used by traces).
	DropHook func(now sim.Time, p *Packet)
	// EnqueueHook, DequeueHook, and DeliverHook observe the remaining
	// stages of the packet lifecycle: admission to the drop-tail queue,
	// start of serialization, and hand-off to Output after the downstream
	// propagation delay. Together with DropHook they expose the complete
	// per-packet event stream the golden-trace conformance corpus
	// (internal/sim/golden) records and replays; any engine or queue
	// optimization must leave this stream byte-identical. DeliverHook only
	// fires when Output is set — without a consumer there is no delivery.
	EnqueueHook func(now sim.Time, p *Packet)
	DequeueHook func(now sim.Time, p *Packet)
	DeliverHook func(now sim.Time, p *Packet)
}

// NewBottleneck builds a bottleneck on the given engine.
func NewBottleneck(eng *sim.Engine, rateBps int64, capacityPkts int, downstream sim.Time) *Bottleneck {
	if rateBps <= 0 {
		panic(fmt.Sprintf("netem: non-positive link rate %d", rateBps))
	}
	if capacityPkts <= 0 {
		panic(fmt.Sprintf("netem: non-positive queue capacity %d", capacityPkts))
	}
	b := &Bottleneck{
		eng:             eng,
		RateBps:         rateBps,
		Capacity:        capacityPkts,
		DownstreamDelay: downstream,
		queue:           make([]*Packet, capacityPkts),
	}
	b.serDoneEv = b.serDone
	b.deliverEv = b.deliver
	return b
}

// SetRate changes the link speed mid-simulation (chaos bandwidth
// fluctuation). Packets already being serialized finish at the old
// rate; subsequent transmissions use the new one.
func (b *Bottleneck) SetRate(rateBps int64) {
	if rateBps <= 0 {
		panic(fmt.Sprintf("netem: non-positive link rate %d", rateBps))
	}
	b.RateBps = rateBps
}

// SerializationDelay returns how long the link takes to put size bytes on
// the wire.
func (b *Bottleneck) SerializationDelay(size int) sim.Time {
	return sim.Time(int64(size) * 8 * int64(sim.Second) / b.RateBps)
}

// QueueLen reports the instantaneous queue depth in packets.
func (b *Bottleneck) QueueLen() int { return b.qlen }

// HighWater reports the deepest queue occupancy observed so far.
func (b *Bottleneck) HighWater() int { return b.highWater }

// QueueLenFor reports the queued packets attributed to one slot.
func (b *Bottleneck) QueueLenFor(service int) int { return b.perService[service] }

// Stats returns a snapshot of per-slot counters.
func (b *Bottleneck) Stats(service int) ServiceStats { return b.stats[service] }

// Enqueue admits a packet to the drop-tail queue, dropping it if full.
func (b *Bottleneck) Enqueue(now sim.Time, p *Packet) {
	st := &b.stats[p.Service]
	st.ArrivedPackets++
	st.ArrivedBytes += int64(p.Size)
	if b.qlen >= b.Capacity {
		st.DroppedPackets++
		st.DroppedBytes += int64(p.Size)
		if b.DropHook != nil {
			b.DropHook(now, p)
		}
		if b.release != nil {
			b.release(p)
		}
		return
	}
	p.enqueuedAt = now
	b.queue[(b.head+b.qlen)%b.Capacity] = p
	b.qlen++
	if b.qlen > b.highWater {
		b.highWater = b.qlen
	}
	b.perService[p.Service]++
	if b.EnqueueHook != nil {
		b.EnqueueHook(now, p)
	}
	if !b.busy {
		b.transmitNext(now)
	}
}

func (b *Bottleneck) transmitNext(now sim.Time) {
	if b.qlen == 0 {
		b.busy = false
		return
	}
	b.busy = true
	p := b.queue[b.head]
	b.queue[b.head] = nil
	b.head = (b.head + 1) % b.Capacity
	b.qlen--
	b.perService[p.Service]--

	st := &b.stats[p.Service]
	st.QueueDelaySum += now - p.enqueuedAt
	if b.DequeueHook != nil {
		b.DequeueHook(now, p)
	}

	ser := b.memoSer
	if p.Size != b.memoSize || b.RateBps != b.memoRate {
		ser = b.SerializationDelay(p.Size)
		b.memoSize, b.memoRate, b.memoSer = p.Size, b.RateBps, ser
	}
	b.eng.AfterArg(ser, b.serDoneEv, p)
}

// serDone fires when the serializer finishes putting p on the wire: it
// books the delivery, hands the packet downstream, and starts the next
// transmission. Delivery is scheduled before the next serialization so
// same-instant events keep their pre-optimization FIFO order (the golden
// corpus pins it).
func (b *Bottleneck) serDone(done sim.Time, arg any) {
	p := arg.(*Packet)
	st := &b.stats[p.Service]
	st.DeliveredPackets++
	st.DeliveredBytes += int64(p.Size)
	if b.Output != nil {
		b.eng.AfterArg(b.DownstreamDelay, b.deliverEv, p)
	} else if b.release != nil {
		b.release(p)
	}
	b.transmitNext(done)
}

// deliver fires after the downstream propagation delay and hands the
// packet to the Output consumer, which assumes ownership.
func (b *Bottleneck) deliver(at sim.Time, arg any) {
	p := arg.(*Packet)
	if b.DeliverHook != nil {
		b.DeliverHook(at, p)
	}
	b.Output(at, p)
}

// StartSampling begins recording the queue occupancy time series with the
// given period. It must be called at most once.
func (b *Bottleneck) StartSampling(every sim.Time) {
	if b.sampling {
		panic("netem: StartSampling called twice")
	}
	if every <= 0 {
		panic("netem: non-positive sampling period")
	}
	b.sampling = true
	b.sampleEvery = every
	var tick sim.Event
	tick = func(now sim.Time) {
		s := OccupancySample{At: now, Total: b.qlen}
		s.PerService = b.perService
		b.samples = append(b.samples, s)
		b.eng.After(b.sampleEvery, tick)
	}
	b.eng.After(every, tick)
}

// Samples returns the recorded occupancy series.
func (b *Bottleneck) Samples() []OccupancySample { return b.samples }

// TotalDeliveredBytes sums delivered bytes over all slots.
func (b *Bottleneck) TotalDeliveredBytes() int64 {
	var t int64
	for i := range b.stats {
		t += b.stats[i].DeliveredBytes
	}
	return t
}
