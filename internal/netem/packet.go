// Package netem emulates the Prudentia testbed network: a dumbbell
// topology whose bottleneck is a fixed-rate link behind a drop-tail FIFO
// queue, exactly the role the BESS software switch plays in the paper
// (§3.1). It provides the same knobs — access link speed, queue size,
// added delay for RTT normalization — and the same instrumentation —
// queue occupancy, per-service loss, and queueing delay — that the
// paper's deeper analyses (Figs 8, 11, 12, 13) rely on.
package netem

import "prudentia/internal/sim"

// Packet is the unit of transfer across the emulated network. Fields
// cover both directions (data downstream, ACKs upstream) plus the
// bookkeeping BBR-style rate sampling needs. Keeping one concrete struct
// avoids interface dispatch on the hottest path in the simulator.
type Packet struct {
	// FlowID identifies the transport flow, assigned by the Testbed at
	// registration time. It indexes the Testbed routing table.
	FlowID int
	// Service is the experiment slot (0 = incumbent, 1 = contender) the
	// flow belongs to; the bottleneck attributes arrivals, drops, queue
	// occupancy, and delivered bytes per slot using it.
	Service int
	// Size is the wire size in bytes (headers included).
	Size int
	// Seq is the data sequence number in packet units.
	Seq int64
	// SentAt is the sender's virtual transmit timestamp, echoed back in
	// ACKs so the sender can take RTT samples.
	SentAt sim.Time
	// IsAck marks upstream acknowledgements.
	IsAck bool
	// CumAck is the receiver's cumulative in-order acknowledgement
	// (next expected Seq) carried by ACKs.
	CumAck int64
	// HighestSeq is the highest data Seq the receiver has observed,
	// a SACK-lite hint used for fast-retransmit decisions.
	HighestSeq int64
	// AckedSeq echoes the Seq of the data packet triggering this ACK.
	AckedSeq int64
	// Delivered and DeliveredTime echo the sender's delivery counter at
	// the time the data packet was sent; the ACK returns them so BBR can
	// form rate samples (per the BBR delivery-rate estimation draft).
	Delivered     int64
	DeliveredTime sim.Time
	// AppLimited marks packets sent while the application could not fill
	// the congestion window; rate samples from them must not raise the
	// bandwidth estimate.
	AppLimited bool
	// Frame and FramePackets support unreliable media transport: Frame
	// identifies the video frame this packet belongs to and FramePackets
	// is the frame's total packet count, letting the receiver detect
	// frame completion without reassembly state handshakes.
	Frame        int64
	FramePackets int
	// enqueuedAt is stamped by the bottleneck queue for delay accounting.
	enqueuedAt sim.Time
}

// Handler consumes packets at a stage boundary (receiver or ACK sink).
type Handler func(now sim.Time, p *Packet)
