package netem

import (
	"fmt"

	"prudentia/internal/sim"
)

// Config describes one emulated network setting (§3.1).
type Config struct {
	// RateBps is the bottleneck bandwidth. The paper's two standing
	// settings are 8 Mbps ("highly-constrained") and 50 Mbps
	// ("moderately-constrained").
	RateBps int64
	// RTT is the normalized round-trip propagation time; Prudentia pads
	// every service to 50 ms.
	RTT sim.Time
	// QueueCapacity is the drop-tail queue limit in packets. Leave zero
	// to apply the paper's rule: nearest power of two to BufferBDP×BDP.
	QueueCapacity int
	// BufferBDP is the BDP multiple used when QueueCapacity is zero;
	// zero means the default 4.
	BufferBDP int
	// Noise optionally enables the upstream background-noise process.
	Noise *NoiseConfig
	// NoJitter disables the default 2 ms upstream delay jitter (used by
	// ablation benchmarks; see Testbed.UpstreamJitter for why the jitter
	// exists).
	NoJitter bool
}

// HighlyConstrained returns the paper's 8 Mbps setting.
func HighlyConstrained() Config {
	return Config{RateBps: 8_000_000, RTT: 50 * sim.Millisecond}
}

// ModeratelyConstrained returns the paper's 50 Mbps setting.
func ModeratelyConstrained() Config {
	return Config{RateBps: 50_000_000, RTT: 50 * sim.Millisecond}
}

// queueCapacity resolves the effective queue size for the config.
func (c Config) queueCapacity() int {
	if c.QueueCapacity > 0 {
		return c.QueueCapacity
	}
	mult := c.BufferBDP
	if mult == 0 {
		mult = 4
	}
	return QueueSizePackets(c.RateBps, c.RTT, mult)
}

// endpoint is the registered pair of handlers for one flow.
type endpoint struct {
	service  int
	toClient Handler // delivers data packets at the client
	toServer Handler // delivers ACKs back at the server
}

// Testbed is the dumbbell: per-flow server-side ingress, an upstream
// propagation stage (with optional noise), the shared bottleneck, and the
// uncongested ACK return path. RTT normalization follows §3.1: whatever a
// service's native path delay, the switch pads the loop to Config.RTT.
type Testbed struct {
	Eng *sim.Engine
	Cfg Config

	Bneck *Bottleneck

	upstreamDelay sim.Time // server -> switch
	ackDelay      sim.Time // client -> server (returning ACKs)

	flows []endpoint
	noise *noiseInjector
	rng   *sim.RNG

	// pool recycles Packet objects through the dumbbell. The testbed owns
	// the packet lifecycle: substrates allocate with AllocPacket, and the
	// testbed releases at every terminal point (upstream drops, drop-tail
	// losses via the bottleneck, and after the receiving endpoint handler
	// returns). Handlers must not retain packets past their call.
	pool sim.Pool[Packet]

	// arriveEv and ackEv are the prebound per-packet events for the
	// upstream and ACK-return hops; see Bottleneck for the pattern.
	arriveEv sim.ArgEvent
	ackEv    sim.ArgEvent

	// UpstreamJitter is the maximum uniform per-packet delay jitter on
	// the server→switch hop. Real Internet paths exhibit millisecond
	// jitter; without it a deterministic simulator gives the flow that
	// "owns" a full queue a perfect drop-tail lockout (each of its
	// ACK-clocked arrivals exactly claims the slot its own departure
	// freed), which starves competing traffic unrealistically. Packet
	// order within a flow is preserved.
	UpstreamJitter sim.Time

	lastArrival []sim.Time // per-flow monotonic arrival clock

	// ExternalDrops counts packets lost to upstream background noise;
	// the watchdog discards trials whose external loss exceeds 0.05 %.
	ExternalDrops int64
	upstreamSent  int64

	// ChaosDrops counts packets blackholed by injected link flaps. They
	// are kept separate from ExternalDrops so flaps stress throughput
	// and the CI escalation rather than the noise-discard gate.
	ChaosDrops int64

	// Transport event counters, incremented by transport flows on their
	// rare-event paths (never per packet). A testbed is single-threaded
	// on its engine, so plain int64 fields suffice; the obs layer scrapes
	// them into the trial's deterministic aggregate after the run.
	TransportRetransmits int64
	TransportTimeouts    int64
	TransportCwndEvents  int64
	TransportTailProbes  int64

	// Chaos episode counters, incremented by chaos.Config.Arm's fault
	// processes as each injected episode begins ("faults injected by
	// kind" in the obs exposition).
	ChaosFlaps  int64
	ChaosSags   int64
	ChaosStalls int64

	linkDownUntil sim.Time
	stallUntil    [MaxServices]sim.Time
}

// NewTestbed assembles the dumbbell for one experiment on a fresh engine.
func NewTestbed(eng *sim.Engine, cfg Config, rng *sim.RNG) *Testbed {
	if cfg.RTT <= 0 {
		panic("netem: config requires positive RTT")
	}
	// Split the propagation RTT: a short hop from servers to the switch,
	// the rest on the downstream + ACK return. The split is arbitrary for
	// dynamics as long as the loop sums to cfg.RTT; a short upstream hop
	// keeps reaction to ACKs prompt, as with nearby CDN front-ends.
	up := cfg.RTT / 10
	down := cfg.RTT * 4 / 10
	ack := cfg.RTT - up - down

	if rng == nil {
		rng = sim.NewRNG(0)
	}
	tb := &Testbed{
		Eng:            eng,
		Cfg:            cfg,
		upstreamDelay:  up,
		ackDelay:       ack,
		rng:            rng,
		UpstreamJitter: 2 * sim.Millisecond,
	}
	if cfg.NoJitter {
		tb.UpstreamJitter = 0
	}
	tb.Bneck = NewBottleneck(eng, cfg.RateBps, cfg.queueCapacity(), down)
	tb.Bneck.Output = tb.deliverToClient
	tb.Bneck.release = tb.ReleasePacket
	tb.arriveEv = tb.arrive
	tb.ackEv = tb.ackArrive
	if cfg.Noise != nil {
		tb.noise = newNoiseInjector(eng, rng, *cfg.Noise)
	}
	return tb
}

// AllocPacket returns a zeroed packet from the testbed's pool. Substrates
// on the hot path (transport flows, RTC media sources) use this instead of
// allocating, and must hand the packet back to the testbed (SendData or
// SendAck) or release it.
func (tb *Testbed) AllocPacket() *Packet { return tb.pool.Get() }

// ReleasePacket recycles a packet. Callers must not retain it afterwards.
func (tb *Testbed) ReleasePacket(p *Packet) { tb.pool.Put(p) }

// RegisterFlow adds a transport flow owned by experiment slot service.
// toClient receives data packets after the bottleneck; toServer receives
// returning ACKs. It returns the assigned FlowID.
func (tb *Testbed) RegisterFlow(service int, toClient, toServer Handler) int {
	if service < 0 || service >= MaxServices {
		panic(fmt.Sprintf("netem: service slot %d out of range", service))
	}
	tb.flows = append(tb.flows, endpoint{service: service, toClient: toClient, toServer: toServer})
	tb.lastArrival = append(tb.lastArrival, 0)
	return len(tb.flows) - 1
}

// SendData injects a data packet at the server side of flow p.FlowID. It
// traverses the upstream hop (where background noise may drop it) and then
// the bottleneck.
func (tb *Testbed) SendData(now sim.Time, p *Packet) {
	tb.upstreamSent++
	if now < tb.linkDownUntil {
		tb.ChaosDrops++
		tb.pool.Put(p)
		return
	}
	if tb.noise != nil && tb.noise.drops(now) {
		tb.ExternalDrops++
		tb.pool.Put(p)
		return
	}
	delay := tb.upstreamDelay
	if tb.UpstreamJitter > 0 {
		delay += tb.rng.Duration(tb.UpstreamJitter)
	}
	// Keep arrivals within a flow in order despite the jitter.
	arrival := now + delay
	if fid := p.FlowID; fid >= 0 && fid < len(tb.lastArrival) {
		if arrival <= tb.lastArrival[fid] {
			arrival = tb.lastArrival[fid] + sim.Nanosecond
		}
		tb.lastArrival[fid] = arrival
	}
	tb.Eng.ScheduleArg(arrival, tb.arriveEv, p)
}

// arrive fires when a data packet reaches the switch after the upstream
// hop; the bottleneck takes ownership.
func (tb *Testbed) arrive(at sim.Time, arg any) {
	tb.Bneck.Enqueue(at, arg.(*Packet))
}

func (tb *Testbed) deliverToClient(now sim.Time, p *Packet) {
	ep := tb.flows[p.FlowID]
	if ep.toClient != nil {
		ep.toClient(now, p)
	}
	tb.pool.Put(p)
}

// SendAck returns an acknowledgement from the client to the server of
// flow p.FlowID over the uncongested reverse path. If the owning slot is
// under an injected client stall, the ACK is held (not lost) until the
// stall window ends.
func (tb *Testbed) SendAck(now sim.Time, p *Packet) {
	ep := tb.flows[p.FlowID]
	if ep.toServer == nil {
		tb.pool.Put(p)
		return
	}
	at := now + tb.ackDelay
	if stall := tb.stallUntil[ep.service]; at < stall {
		at = stall
	}
	tb.Eng.ScheduleArg(at, tb.ackEv, p)
}

// ackArrive fires when an ACK reaches the server. The endpoint is looked
// up at fire time (flows is append-only, so the lookup is equivalent to
// capture-at-send) and the packet is recycled after the handler returns.
func (tb *Testbed) ackArrive(at sim.Time, arg any) {
	p := arg.(*Packet)
	if ep := tb.flows[p.FlowID]; ep.toServer != nil {
		ep.toServer(at, p)
	}
	tb.pool.Put(p)
}

// SetLinkDown blackholes all upstream packets until the given virtual
// time (an injected link flap). Overlapping flaps extend, never shorten,
// the outage.
func (tb *Testbed) SetLinkDown(until sim.Time) {
	if until > tb.linkDownUntil {
		tb.linkDownUntil = until
	}
}

// StallService holds the given slot's ACKs until the given virtual time
// (an injected client stall — the browser-hang analogue). Held ACKs are
// released in order when the stall ends.
func (tb *Testbed) StallService(slot int, until sim.Time) {
	if slot < 0 || slot >= MaxServices {
		panic(fmt.Sprintf("netem: stall slot %d out of range", slot))
	}
	if until > tb.stallUntil[slot] {
		tb.stallUntil[slot] = until
	}
}

// UpstreamSentPackets reports how many packets servers injected upstream.
func (tb *Testbed) UpstreamSentPackets() int64 { return tb.upstreamSent }

// ExternalLossRate reports the fraction of upstream packets lost to noise.
func (tb *Testbed) ExternalLossRate() float64 {
	if tb.upstreamSent == 0 {
		return 0
	}
	return float64(tb.ExternalDrops) / float64(tb.upstreamSent)
}

// BaseRTT returns the configured propagation RTT (excluding queueing).
func (tb *Testbed) BaseRTT() sim.Time { return tb.Cfg.RTT }
