package netem

import (
	"testing"
	"testing/quick"

	"prudentia/internal/sim"
)

func TestBDPPackets(t *testing.T) {
	cases := []struct {
		rate int64
		rtt  sim.Time
		want int
	}{
		{50_000_000, 50 * sim.Millisecond, 208},
		{8_000_000, 50 * sim.Millisecond, 33},
		{1000, sim.Millisecond, 1}, // floor at 1
	}
	for _, c := range cases {
		if got := BDPPackets(c.rate, c.rtt); got != c.want {
			t.Errorf("BDPPackets(%d, %v) = %d, want %d", c.rate, c.rtt, got, c.want)
		}
	}
}

func TestNearestPowerOfTwo(t *testing.T) {
	cases := map[int]int{
		0: 1, 1: 1, 2: 2, 3: 4, 5: 4, 6: 8, 833: 1024, 133: 128, 1664: 2048,
		96: 128, // tie rounds up
	}
	for n, want := range cases {
		if got := NearestPowerOfTwo(n); got != want {
			t.Errorf("NearestPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestQueueSizesMatchPaper checks the exact queue sizes the paper reports:
// 1024 packets for 4×BDP at 50 Mbps (Fig 8a), 2048 for 8×BDP (Fig 8b),
// and 128 for 4×BDP at 8 Mbps.
func TestQueueSizesMatchPaper(t *testing.T) {
	rtt := 50 * sim.Millisecond
	if got := QueueSizePackets(50_000_000, rtt, 4); got != 1024 {
		t.Errorf("50Mbps 4xBDP = %d, want 1024", got)
	}
	if got := QueueSizePackets(50_000_000, rtt, 8); got != 2048 {
		t.Errorf("50Mbps 8xBDP = %d, want 2048", got)
	}
	if got := QueueSizePackets(8_000_000, rtt, 4); got != 128 {
		t.Errorf("8Mbps 4xBDP = %d, want 128", got)
	}
}

func TestPowerOfTwoProperty(t *testing.T) {
	if err := quick.Check(func(n uint16) bool {
		v := NearestPowerOfTwo(int(n))
		// Must be a power of two...
		if v&(v-1) != 0 || v <= 0 {
			return false
		}
		// ...and within a factor of 2 of n.
		if int(n) >= 1 && (v > 2*int(n) || 2*v < int(n)) {
			return false
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestBottleneck(eng *sim.Engine, rate int64, capacity int) *Bottleneck {
	return NewBottleneck(eng, rate, capacity, 0)
}

func TestBottleneckServializesAtLinkRate(t *testing.T) {
	eng := sim.NewEngine()
	b := newTestBottleneck(eng, 12_000_000, 100) // 1500B = 1ms serialization
	var deliveries []sim.Time
	b.Output = func(now sim.Time, p *Packet) { deliveries = append(deliveries, now) }
	for i := 0; i < 5; i++ {
		b.Enqueue(eng.Now(), &Packet{Size: 1500, Service: 0})
	}
	eng.Run()
	if len(deliveries) != 5 {
		t.Fatalf("delivered %d, want 5", len(deliveries))
	}
	for i, at := range deliveries {
		want := sim.Time(i+1) * sim.Millisecond
		if at != want {
			t.Errorf("packet %d delivered at %v, want %v", i, at, want)
		}
	}
}

func TestBottleneckDropTail(t *testing.T) {
	eng := sim.NewEngine()
	b := newTestBottleneck(eng, 12_000_000, 4)
	delivered := 0
	b.Output = func(sim.Time, *Packet) { delivered++ }
	var drops []int64
	b.DropHook = func(_ sim.Time, p *Packet) { drops = append(drops, p.Seq) }
	// Burst of 10: 1 goes straight to the serializer, 4 queue, 5 drop.
	for i := 0; i < 10; i++ {
		b.Enqueue(eng.Now(), &Packet{Size: 1500, Seq: int64(i), Service: 1})
	}
	eng.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5", delivered)
	}
	st := b.Stats(1)
	if st.DroppedPackets != 5 || st.ArrivedPackets != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.LossRate(); got != 0.5 {
		t.Fatalf("LossRate = %v, want 0.5", got)
	}
	// Drop-tail must drop the latest arrivals.
	for i, seq := range drops {
		if seq != int64(5+i) {
			t.Fatalf("drops = %v", drops)
		}
	}
}

func TestBottleneckQueueDelayAccounting(t *testing.T) {
	eng := sim.NewEngine()
	b := newTestBottleneck(eng, 12_000_000, 10) // 1ms per packet
	b.Output = func(sim.Time, *Packet) {}
	for i := 0; i < 3; i++ {
		b.Enqueue(eng.Now(), &Packet{Size: 1500, Service: 0})
	}
	eng.Run()
	// Packet 0 waits 0, packet 1 waits 1ms, packet 2 waits 2ms => mean 1ms.
	if got := b.Stats(0).MeanQueueDelay(); got != sim.Millisecond {
		t.Fatalf("MeanQueueDelay = %v, want 1ms", got)
	}
}

func TestBottleneckPerServiceAttribution(t *testing.T) {
	eng := sim.NewEngine()
	b := newTestBottleneck(eng, 12_000_000, 100)
	b.Output = func(sim.Time, *Packet) {}
	for i := 0; i < 6; i++ {
		b.Enqueue(eng.Now(), &Packet{Size: 1500, Service: i % 2})
	}
	if b.QueueLenFor(0)+b.QueueLenFor(1) != b.QueueLen() {
		t.Fatalf("per-service occupancy inconsistent")
	}
	eng.Run()
	if b.Stats(0).DeliveredPackets != 3 || b.Stats(1).DeliveredPackets != 3 {
		t.Fatalf("attribution wrong: %+v %+v", b.Stats(0), b.Stats(1))
	}
	if b.TotalDeliveredBytes() != 6*1500 {
		t.Fatalf("TotalDeliveredBytes = %d", b.TotalDeliveredBytes())
	}
}

func TestBottleneckRingWraparound(t *testing.T) {
	// Run many more packets than the capacity through a small queue to
	// exercise ring-buffer wraparound; conservation must hold.
	eng := sim.NewEngine()
	b := newTestBottleneck(eng, 120_000_000, 8)
	delivered := 0
	b.Output = func(sim.Time, *Packet) { delivered++ }
	rng := sim.NewRNG(1)
	sent := 0
	var emit sim.Event
	emit = func(now sim.Time) {
		for i := 0; i < 1+rng.Intn(6); i++ {
			b.Enqueue(now, &Packet{Size: 1500, Service: 0})
			sent++
		}
		if sent < 5000 {
			eng.After(sim.Time(rng.Intn(300))*sim.Microsecond, emit)
		}
	}
	eng.After(0, emit)
	eng.Run()
	st := b.Stats(0)
	if int(st.DeliveredPackets)+int(st.DroppedPackets) != sent {
		t.Fatalf("conservation: delivered %d + dropped %d != sent %d",
			st.DeliveredPackets, st.DroppedPackets, sent)
	}
	if delivered != int(st.DeliveredPackets) {
		t.Fatalf("output count %d != stats %d", delivered, st.DeliveredPackets)
	}
	if b.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", b.QueueLen())
	}
}

func TestOccupancySampling(t *testing.T) {
	eng := sim.NewEngine()
	b := newTestBottleneck(eng, 12_000_000, 100)
	b.Output = func(sim.Time, *Packet) {}
	b.StartSampling(500 * sim.Microsecond)
	for i := 0; i < 10; i++ {
		b.Enqueue(eng.Now(), &Packet{Size: 1500, Service: 0})
	}
	eng.RunUntil(20 * sim.Millisecond)
	samples := b.Samples()
	if len(samples) == 0 {
		t.Fatal("no occupancy samples")
	}
	// First sample at 0.5ms: packet 0 in flight, ~9 queued.
	if samples[0].Total < 8 || samples[0].Total > 10 {
		t.Fatalf("first sample %+v", samples[0])
	}
	last := samples[len(samples)-1]
	if last.Total != 0 {
		t.Fatalf("queue should drain by end: %+v", last)
	}
}

func TestTestbedRTTNormalization(t *testing.T) {
	// A single un-queued packet's loop (data downstream + ack upstream)
	// must take exactly the configured RTT plus serialization.
	eng := sim.NewEngine()
	cfg := Config{RateBps: 12_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 64}
	tb := NewTestbed(eng, cfg, sim.NewRNG(0))
	tb.UpstreamJitter = 0 // measure the bare normalized RTT

	var ackAt sim.Time
	var flowID int
	flowID = tb.RegisterFlow(0,
		func(now sim.Time, p *Packet) {
			ack := &Packet{FlowID: flowID, Service: 0, IsAck: true, SentAt: p.SentAt}
			tb.SendAck(now, ack)
		},
		func(now sim.Time, p *Packet) { ackAt = now },
	)
	p := &Packet{FlowID: flowID, Service: 0, Size: 1500, SentAt: eng.Now()}
	tb.SendData(eng.Now(), p)
	eng.Run()
	want := 50*sim.Millisecond + sim.Millisecond // RTT + 1ms serialization
	if ackAt != want {
		t.Fatalf("ack at %v, want %v", ackAt, want)
	}
}

func TestTestbedNoiseDiscardsUpstream(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{
		RateBps: 12_000_000, RTT: 50 * sim.Millisecond, QueueCapacity: 1 << 14,
		Noise: &NoiseConfig{
			MeanEpisodeGap:  10 * sim.Millisecond,
			MeanEpisodeLen:  50 * sim.Millisecond,
			DropProbability: 0.5,
		},
	}
	tb := NewTestbed(eng, cfg, sim.NewRNG(3))
	received := 0
	fid := tb.RegisterFlow(0, func(sim.Time, *Packet) { received++ }, nil)
	var send sim.Event
	sent := 0
	send = func(now sim.Time) {
		tb.SendData(now, &Packet{FlowID: fid, Size: 1500})
		sent++
		if sent < 2000 {
			eng.After(100*sim.Microsecond, send)
		}
	}
	eng.After(0, send)
	// The noise episode process reschedules itself forever, so run to a
	// horizon past the last send plus the path delay instead of draining.
	eng.RunUntil(2 * sim.Second)
	if tb.ExternalDrops == 0 {
		t.Fatal("noise injector never dropped")
	}
	if got := tb.ExternalLossRate(); got <= 0 || got >= 1 {
		t.Fatalf("ExternalLossRate = %v", got)
	}
	if received+int(tb.ExternalDrops) != sent {
		t.Fatalf("conservation: recv %d + extdrop %d != sent %d", received, tb.ExternalDrops, sent)
	}
}

func TestConfigDefaults(t *testing.T) {
	hc := HighlyConstrained()
	if hc.queueCapacity() != 128 {
		t.Fatalf("highly-constrained queue = %d, want 128", hc.queueCapacity())
	}
	mc := ModeratelyConstrained()
	if mc.queueCapacity() != 1024 {
		t.Fatalf("moderately-constrained queue = %d, want 1024", mc.queueCapacity())
	}
	mc.BufferBDP = 8
	if mc.queueCapacity() != 2048 {
		t.Fatalf("8xBDP queue = %d, want 2048", mc.queueCapacity())
	}
	mc.QueueCapacity = 333
	if mc.queueCapacity() != 333 {
		t.Fatalf("explicit queue = %d, want 333", mc.queueCapacity())
	}
}
