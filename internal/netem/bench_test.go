package netem

import (
	"testing"

	"prudentia/internal/sim"
)

// BenchmarkBottleneckSteadyState measures the saturated forwarding path —
// the regime every contended trial spends its measurement window in. A
// fixed population of packets cycles through the drop-tail queue, the
// serializer, and the downstream hop, with the Output handler re-enqueuing
// each delivery (a closed loop, so the queue never drains). Each iteration
// is one engine event; the benchmark also reports virtual time simulated
// per wall-clock second, the paper-facing throughput number (§3: sweep
// cost scales with per-trial emulation speed).
func BenchmarkBottleneckSteadyState(b *testing.B) {
	eng := sim.NewEngine()
	// 96 Mbps → 125 µs per 1500 B packet; 1 ms downstream ≈ 8 packets in
	// flight, the rest queued: serializer stays busy throughout.
	bn := NewBottleneck(eng, 96_000_000, 64, sim.Millisecond)
	bn.Output = func(now sim.Time, p *Packet) { bn.Enqueue(now, p) }
	pkts := make([]Packet, 32)
	for i := range pkts {
		pkts[i] = Packet{Size: 1500, Service: i % 2, Seq: int64(i)}
		bn.Enqueue(0, &pkts[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	startSim := eng.Now()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.StopTimer()
	if wall := b.Elapsed().Seconds(); wall > 0 {
		b.ReportMetric((eng.Now()-startSim).Seconds()/wall, "simsec/wallsec")
	}
}

// BenchmarkBottleneckDropTail measures the overload path: bursts beyond
// capacity, so a large fraction of enqueues take the drop branch.
func BenchmarkBottleneckDropTail(b *testing.B) {
	eng := sim.NewEngine()
	bn := NewBottleneck(eng, 96_000_000, 16, 0)
	bn.Output = func(now sim.Time, p *Packet) {}
	pkts := make([]Packet, 64)
	for i := range pkts {
		pkts[i] = Packet{Size: 1500, Service: i % 2, Seq: int64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn.Enqueue(eng.Now(), &pkts[i%len(pkts)])
		if i%4 == 0 {
			eng.Step()
		}
	}
}
