package netem

import (
	"testing"
	"testing/quick"

	"prudentia/internal/sim"
)

// TestJitterPreservesPerFlowOrder is the property that makes upstream
// jitter safe: whatever the jitter draws, packets of a single flow must
// arrive at the bottleneck in transmission order (reordering would
// trigger spurious loss detection in transport).
func TestJitterPreservesPerFlowOrder(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		eng := sim.NewEngine()
		cfg := Config{RateBps: 50_000_000, RTT: 50 * sim.Millisecond}
		tb := NewTestbed(eng, cfg, sim.NewRNG(seed))
		var seqs []int64
		fid := tb.RegisterFlow(0, func(_ sim.Time, p *Packet) {
			seqs = append(seqs, p.Seq)
		}, nil)
		// Send a rapid train: inter-send gaps much smaller than jitter.
		for i := 0; i < 200; i++ {
			p := &Packet{FlowID: fid, Seq: int64(i), Size: 1500}
			eng.Schedule(sim.Time(i)*100*sim.Microsecond, func(now sim.Time) {
				tb.SendData(now, p)
			})
		}
		eng.RunUntil(2 * sim.Second)
		if len(seqs) != 200 {
			return false
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestJitterDisabledByConfig verifies the ablation knob.
func TestJitterDisabledByConfig(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{RateBps: 50_000_000, RTT: 50 * sim.Millisecond, NoJitter: true}
	tb := NewTestbed(eng, cfg, sim.NewRNG(1))
	if tb.UpstreamJitter != 0 {
		t.Fatalf("NoJitter config left jitter at %v", tb.UpstreamJitter)
	}
	cfg.NoJitter = false
	tb2 := NewTestbed(eng, cfg, sim.NewRNG(1))
	if tb2.UpstreamJitter == 0 {
		t.Fatal("default config should enable jitter")
	}
}

// TestJitterMixesInterleavedFlows checks the jitter does its actual job:
// two flows transmitting back-to-back at the same instants arrive
// interleaved differently than strict FIFO-by-send-time at least some of
// the time.
func TestJitterMixesInterleavedFlows(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{RateBps: 50_000_000, RTT: 50 * sim.Millisecond}
	tb := NewTestbed(eng, cfg, sim.NewRNG(5))
	var order []int
	mk := func(slot int) int {
		var fid int
		fid = tb.RegisterFlow(slot, func(_ sim.Time, p *Packet) {
			order = append(order, p.Service)
		}, nil)
		return fid
	}
	a, b := mk(0), mk(1)
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 500 * sim.Microsecond
		pa := &Packet{FlowID: a, Service: 0, Seq: int64(i), Size: 1500}
		pb := &Packet{FlowID: b, Service: 1, Seq: int64(i), Size: 1500}
		eng.Schedule(at, func(now sim.Time) {
			tb.SendData(now, pa)
			tb.SendData(now, pb)
		})
	}
	eng.RunUntil(2 * sim.Second)
	// Strict alternation (0,1,0,1,…) would mean no mixing at all.
	breaks := 0
	for i := 2; i < len(order); i++ {
		if order[i] == order[i-1] {
			breaks++
		}
	}
	if breaks == 0 {
		t.Fatal("jitter produced perfectly alternating arrivals — no mixing")
	}
}
