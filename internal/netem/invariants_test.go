package netem

import (
	"testing"
	"testing/quick"

	"prudentia/internal/sim"
)

// TestBottleneckInvariants property-checks the drop-tail queue under
// randomized traffic: random packet sizes, arrival patterns, service mix,
// and mid-run rate changes, seeded from the paper's two table settings
// (§3.1: 8 and 50 Mbps). Three invariants must hold on every run:
//
//  1. byte conservation — every arrived byte is eventually accounted as
//     dropped or delivered, with nothing queued once the engine drains;
//  2. FIFO — packets start serialization in exactly their admission
//     order (single shared queue, no reordering);
//  3. occupancy — the instantaneous queue depth never exceeds the
//     power-of-two capacity from §3.1 footnote 6, and the per-service
//     counts always sum to the total depth.
func TestBottleneckInvariants(t *testing.T) {
	table := []Config{HighlyConstrained(), ModeratelyConstrained()}
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := table[rng.Intn(len(table))]
		cap := cfg.queueCapacity()
		if cap&(cap-1) != 0 {
			t.Errorf("seed %d: capacity %d is not a power of two", seed, cap)
			return false
		}

		eng := sim.NewEngine()
		b := NewBottleneck(eng, cfg.RateBps, cap, cfg.RTT*4/10)

		var admitted, started []int64 // seqs in admission / serialization order
		violations := 0
		occCheck := func() {
			if b.QueueLen() > cap {
				violations++
			}
			sum := 0
			for s := 0; s < MaxServices; s++ {
				sum += b.QueueLenFor(s)
			}
			if sum != b.QueueLen() {
				violations++
			}
		}
		b.EnqueueHook = func(now sim.Time, p *Packet) {
			admitted = append(admitted, p.Seq)
			occCheck()
		}
		b.DequeueHook = func(now sim.Time, p *Packet) {
			started = append(started, p.Seq)
			occCheck()
		}
		b.DropHook = func(now sim.Time, p *Packet) { occCheck() }

		// Random traffic: bursts around the capacity so both the admit and
		// the drop branch are exercised, with occasional rate changes.
		n := 100 + rng.Intn(400)
		pkts := make([]Packet, n)
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			pkts[i] = Packet{
				Seq:     int64(i),
				Size:    64 + rng.Intn(1437),
				Service: rng.Intn(MaxServices),
			}
			p := &pkts[i]
			eng.Schedule(at, func(now sim.Time) { b.Enqueue(now, p) })
			if rng.Float64() < 0.05 {
				newRate := cfg.RateBps / 2
				if rng.Float64() < 0.5 {
					newRate = cfg.RateBps * 2
				}
				eng.Schedule(at, func(sim.Time) { b.SetRate(newRate) })
			}
			// Mostly back-to-back arrivals (bursts), sometimes a gap that
			// lets the queue drain.
			if rng.Float64() < 0.1 {
				at += rng.Duration(20 * sim.Millisecond)
			} else {
				at += rng.Duration(200 * sim.Microsecond)
			}
		}
		eng.Run()

		if violations > 0 {
			t.Errorf("seed %d: %d occupancy violations", seed, violations)
			return false
		}
		// FIFO: serialization starts in admission order, every admitted
		// packet eventually started (queue fully drained).
		if len(started) != len(admitted) {
			t.Errorf("seed %d: admitted %d packets but %d started serialization", seed, len(admitted), len(started))
			return false
		}
		for i := range admitted {
			if started[i] != admitted[i] {
				t.Errorf("seed %d: dequeue %d = seq %d, admission order says %d", seed, i, started[i], admitted[i])
				return false
			}
		}
		if b.QueueLen() != 0 {
			t.Errorf("seed %d: %d packets still queued after drain", seed, b.QueueLen())
			return false
		}
		// Byte conservation over both service slots.
		var arrived, dropped, delivered int64
		for s := 0; s < MaxServices; s++ {
			st := b.Stats(s)
			arrived += st.ArrivedBytes
			dropped += st.DroppedBytes
			delivered += st.DeliveredBytes
		}
		if arrived != dropped+delivered {
			t.Errorf("seed %d: conservation broken: arrived %d != dropped %d + delivered %d",
				seed, arrived, dropped, delivered)
			return false
		}
		if arrived == 0 {
			t.Errorf("seed %d: degenerate run, nothing arrived", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBottleneckConservationMidFlight checks conservation while packets
// are still in flight: at every lifecycle hook, arrived bytes must equal
// dropped + delivered + queued + in-serializer bytes, reconstructed from
// the hook stream itself.
func TestBottleneckConservationMidFlight(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		eng := sim.NewEngine()
		b := NewBottleneck(eng, 8_000_000, 32, sim.Millisecond)

		var enqBytes, deqBytes int64
		bad := 0
		balance := func() {
			var arrived, dropped, delivered int64
			for s := 0; s < MaxServices; s++ {
				st := b.Stats(s)
				arrived += st.ArrivedBytes
				dropped += st.DroppedBytes
				delivered += st.DeliveredBytes
			}
			queued := enqBytes - deqBytes
			inSerializer := deqBytes - delivered
			if arrived != dropped+delivered+queued+inSerializer || queued < 0 || inSerializer < 0 {
				bad++
			}
		}
		b.EnqueueHook = func(_ sim.Time, p *Packet) { enqBytes += int64(p.Size); balance() }
		b.DequeueHook = func(_ sim.Time, p *Packet) { deqBytes += int64(p.Size); balance() }
		b.DropHook = func(_ sim.Time, p *Packet) { balance() }

		n := 50 + rng.Intn(200)
		pkts := make([]Packet, n)
		at := sim.Time(0)
		for i := range pkts {
			pkts[i] = Packet{Seq: int64(i), Size: 200 + rng.Intn(1301)}
			p := &pkts[i]
			eng.Schedule(at, func(now sim.Time) { b.Enqueue(now, p) })
			at += rng.Duration(2 * sim.Millisecond)
		}
		eng.Run()
		balance()
		if bad > 0 {
			t.Errorf("seed %d: %d balance violations", seed, bad)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
