package netem

import (
	"testing"

	"prudentia/internal/sim"
)

// FuzzBottleneckQueue drives the drop-tail queue with an arbitrary
// operation sequence — enqueues on both service slots, engine steps, rate
// flaps up and down, and drains — and asserts the structural invariants
// after every operation. The fuzzer's job is to find an interleaving
// (e.g. a rate flap landing mid-serialization, a burst across a drain
// boundary) that breaks occupancy accounting, FIFO order, or byte
// conservation. scripts/ci.sh runs this as a 10s smoke gate.
func FuzzBottleneckQueue(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 0, 3, 2, 1, 4, 2, 2, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5})
	f.Add([]byte{1, 3, 1, 4, 1, 3, 1, 4, 2, 2, 2, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const rate = 8_000_000
		const capacity = 16
		eng := sim.NewEngine()
		b := NewBottleneck(eng, rate, capacity, sim.Millisecond)

		var admitted, started []int64
		check := func(stage string) {
			if b.QueueLen() > capacity {
				t.Fatalf("%s: occupancy %d exceeds capacity %d", stage, b.QueueLen(), capacity)
			}
			sum := 0
			for s := 0; s < MaxServices; s++ {
				if b.QueueLenFor(s) < 0 {
					t.Fatalf("%s: negative per-service depth", stage)
				}
				sum += b.QueueLenFor(s)
			}
			if sum != b.QueueLen() {
				t.Fatalf("%s: per-service depths sum to %d, total is %d", stage, sum, b.QueueLen())
			}
		}
		b.EnqueueHook = func(_ sim.Time, p *Packet) { admitted = append(admitted, p.Seq); check("enqueue") }
		b.DequeueHook = func(_ sim.Time, p *Packet) { started = append(started, p.Seq); check("dequeue") }

		var seq int64
		for _, op := range ops {
			switch op % 6 {
			case 0, 1:
				p := &Packet{Seq: seq, Size: 64 + 11*int(op), Service: int(op % 2)}
				seq++
				b.Enqueue(eng.Now(), p)
			case 2:
				eng.Step()
			case 3:
				b.SetRate(rate / int64(2+op%4))
			case 4:
				b.SetRate(rate * int64(2+op%4))
			case 5:
				for i := 0; i < 8; i++ {
					eng.Step()
				}
			}
			check("op")
		}
		eng.Run()
		check("drain")

		if len(started) != len(admitted) {
			t.Fatalf("admitted %d packets, %d started serialization after drain", len(admitted), len(started))
		}
		for i := range admitted {
			if started[i] != admitted[i] {
				t.Fatalf("FIFO broken at %d: started seq %d, admitted seq %d", i, started[i], admitted[i])
			}
		}
		var arrived, dropped, delivered int64
		for s := 0; s < MaxServices; s++ {
			st := b.Stats(s)
			arrived += st.ArrivedBytes
			dropped += st.DroppedBytes
			delivered += st.DeliveredBytes
			if st.LossRate() < 0 || st.LossRate() > 1 {
				t.Fatalf("slot %d loss rate %v out of [0,1]", s, st.LossRate())
			}
		}
		if arrived != dropped+delivered {
			t.Fatalf("conservation broken after drain: arrived %d != dropped %d + delivered %d",
				arrived, dropped, delivered)
		}
	})
}
