package netem

import "prudentia/internal/sim"

// NoiseConfig models transient upstream congestion outside the testbed's
// control (§3.1 "Background Noise"): memoryless episodes during which
// upstream packets are dropped with some probability. Prudentia cannot
// prevent this on the real Internet, so it detects and discards affected
// trials; the injector gives that machinery controllable ground truth.
type NoiseConfig struct {
	// MeanEpisodeGap is the mean quiet interval between episodes.
	MeanEpisodeGap sim.Time
	// MeanEpisodeLen is the mean duration of a loss episode.
	MeanEpisodeLen sim.Time
	// DropProbability applies to upstream packets while an episode is
	// active.
	DropProbability float64
}

type noiseInjector struct {
	rng       *sim.RNG
	cfg       NoiseConfig
	activeTil sim.Time
}

// newNoiseInjector starts the episode process on the engine.
func newNoiseInjector(eng *sim.Engine, rng *sim.RNG, cfg NoiseConfig) *noiseInjector {
	if rng == nil {
		rng = sim.NewRNG(0)
	}
	n := &noiseInjector{rng: rng, cfg: cfg}
	var next sim.Event
	next = func(now sim.Time) {
		n.activeTil = now + rng.Exp(cfg.MeanEpisodeLen)
		eng.After(rng.Exp(cfg.MeanEpisodeGap), next)
	}
	eng.After(rng.Exp(cfg.MeanEpisodeGap), next)
	return n
}

// drops decides whether a packet crossing the upstream hop now is lost.
func (n *noiseInjector) drops(now sim.Time) bool {
	return now < n.activeTil && n.rng.Float64() < n.cfg.DropProbability
}
