package netem

import (
	"testing"

	"prudentia/internal/sim"
)

// The chaos hooks: link flaps (SetLinkDown), client stalls
// (StallService), and bandwidth fluctuation (Bottleneck.SetRate).

func TestSetLinkDownBlackholesUpstream(t *testing.T) {
	eng := sim.NewEngine()
	cfg := HighlyConstrained()
	cfg.NoJitter = true
	tb := NewTestbed(eng, cfg, sim.NewRNG(1))
	delivered := 0
	fid := tb.RegisterFlow(0, func(sim.Time, *Packet) { delivered++ }, nil)

	tb.SetLinkDown(sim.Second)
	tb.SendData(0, &Packet{FlowID: fid, Service: 0, Size: 1500}) // during the flap
	eng.Schedule(2*sim.Second, func(now sim.Time) {
		tb.SendData(now, &Packet{FlowID: fid, Service: 0, Size: 1500}) // after it
	})
	eng.Run()

	if tb.ChaosDrops != 1 {
		t.Fatalf("ChaosDrops = %d, want 1", tb.ChaosDrops)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	// Flap drops must not trip the §3.1 noise-discard gate.
	if got := tb.ExternalLossRate(); got != 0 {
		t.Fatalf("ExternalLossRate = %v, want 0", got)
	}
}

func TestSetLinkDownExtendsOnly(t *testing.T) {
	eng := sim.NewEngine()
	cfg := HighlyConstrained()
	cfg.NoJitter = true
	tb := NewTestbed(eng, cfg, sim.NewRNG(1))
	fid := tb.RegisterFlow(0, nil, nil)

	tb.SetLinkDown(2 * sim.Second)
	tb.SetLinkDown(sim.Second) // a shorter overlapping flap must not cut the outage
	eng.Schedule(1500*sim.Millisecond, func(now sim.Time) {
		tb.SendData(now, &Packet{FlowID: fid, Service: 0, Size: 1500})
	})
	eng.Run()
	if tb.ChaosDrops != 1 {
		t.Fatalf("ChaosDrops = %d, want 1 (outage shortened)", tb.ChaosDrops)
	}
}

func TestStallServiceHoldsAcks(t *testing.T) {
	eng := sim.NewEngine()
	tb := NewTestbed(eng, HighlyConstrained(), sim.NewRNG(1))
	var at0, at1 sim.Time
	fid0 := tb.RegisterFlow(0, nil, func(now sim.Time, _ *Packet) { at0 = now })
	fid1 := tb.RegisterFlow(1, nil, func(now sim.Time, _ *Packet) { at1 = now })

	tb.StallService(0, sim.Second)
	tb.SendAck(0, &Packet{FlowID: fid0, Service: 0})
	tb.SendAck(0, &Packet{FlowID: fid1, Service: 1})
	eng.Run()

	if at0 != sim.Second {
		t.Fatalf("stalled slot's ACK arrived at %v, want hold until %v", at0, sim.Second)
	}
	if at1 >= sim.Second || at1 <= 0 {
		t.Fatalf("unstalled slot's ACK arrived at %v, want the plain ACK delay", at1)
	}

	// An ACK whose normal delivery lands after the stall is unaffected.
	var late sim.Time
	tb.flows[fid0].toServer = func(now sim.Time, _ *Packet) { late = now }
	tb.SendAck(2*sim.Second, &Packet{FlowID: fid0, Service: 0})
	eng.Run()
	if late <= 2*sim.Second {
		t.Fatalf("post-stall ACK arrived at %v", late)
	}
}

func TestBottleneckSetRate(t *testing.T) {
	eng := sim.NewEngine()
	b := newTestBottleneck(eng, 12_000_000, 100) // 1500 B = 1 ms serialization
	var deliveries []sim.Time
	b.Output = func(now sim.Time, p *Packet) { deliveries = append(deliveries, now) }

	b.Enqueue(0, &Packet{Size: 1500, Service: 0})
	eng.Schedule(10*sim.Millisecond, func(now sim.Time) {
		b.SetRate(6_000_000) // halve the link: 2 ms per packet now
		b.Enqueue(now, &Packet{Size: 1500, Service: 0})
	})
	eng.Run()

	want := []sim.Time{sim.Millisecond, 12 * sim.Millisecond}
	if len(deliveries) != 2 || deliveries[0] != want[0] || deliveries[1] != want[1] {
		t.Fatalf("deliveries = %v, want %v", deliveries, want)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SetRate(0) must panic")
		}
	}()
	b.SetRate(0)
}
