package netem

import "prudentia/internal/sim"

// WirePacketSize is the assumed full-size wire packet (MTU) in bytes; the
// paper's BDP arithmetic (e.g. the "1024 packet" queue in Fig 8a at
// 50 Mbps × 50 ms × 4) is consistent with 1500-byte packets.
const WirePacketSize = 1500

// BDPPackets returns the bandwidth-delay product expressed in full-size
// packets (rounded down, minimum 1).
func BDPPackets(rateBps int64, rtt sim.Time) int {
	bits := float64(rateBps) * rtt.Seconds()
	pkts := int(bits / (8 * WirePacketSize))
	if pkts < 1 {
		pkts = 1
	}
	return pkts
}

// NearestPowerOfTwo returns the power of two closest to n (ties round up),
// reproducing the BESS queue-sizing quirk from §3.1 footnote 6.
func NearestPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	lo := 1
	for lo*2 <= n {
		lo *= 2
	}
	hi := lo * 2
	if n-lo < hi-n {
		return lo
	}
	return hi
}

// QueueSizePackets computes the emulated bottleneck queue capacity: the
// power of two nearest to multiple×BDP. The paper's defaults are
// multiple=4 (regular runs) and multiple=8 (the §6 deep-buffer rerun).
func QueueSizePackets(rateBps int64, rtt sim.Time, multiple int) int {
	return NearestPowerOfTwo(multiple * BDPPackets(rateBps, rtt))
}
