package cca

import (
	"testing"

	"prudentia/internal/sim"
)

func ack(rtt sim.Time, pkts int, inflight int) AckSample {
	return AckSample{
		RTT:            rtt,
		AckedPackets:   pkts,
		AckedBytes:     int64(pkts) * 1500,
		TotalDelivered: 0,
		Inflight:       inflight,
	}
}

func TestNewRenoSlowStartDoublesPerRTT(t *testing.T) {
	n := NewNewReno(Config{InitialCwnd: 10})
	// One ACK per outstanding packet grows cwnd by 1 each: after acking
	// a full window of 10, cwnd is 20.
	n.OnAck(0, ack(50*sim.Millisecond, 10, 10))
	if got := n.CwndPackets(); got != 20 {
		t.Fatalf("cwnd after slow-start round = %d, want 20", got)
	}
}

func TestNewRenoCongestionAvoidanceLinear(t *testing.T) {
	n := NewNewReno(Config{InitialCwnd: 10})
	n.OnCongestionEvent(0) // drops to 5, ssthresh 5 -> now in avoidance
	start := n.CwndPackets()
	// Ack three full windows: roughly +1 packet per window, certainly not
	// the doubling slow start would produce.
	for round := 0; round < 3; round++ {
		n.OnAck(0, ack(50*sim.Millisecond, n.CwndPackets(), n.CwndPackets()))
	}
	got := n.CwndPackets()
	if got < start+2 || got > start+4 {
		t.Fatalf("cwnd after three avoidance rounds = %d, want ~%d", got, start+3)
	}
}

func TestNewRenoHalvesOnCongestion(t *testing.T) {
	n := NewNewReno(Config{InitialCwnd: 64})
	n.OnCongestionEvent(0)
	if got := n.CwndPackets(); got != 32 {
		t.Fatalf("cwnd after congestion = %d, want 32", got)
	}
}

func TestNewRenoTimeoutCollapses(t *testing.T) {
	n := NewNewReno(Config{InitialCwnd: 64})
	n.OnTimeout(0)
	if got := n.CwndPackets(); got != 1 {
		t.Fatalf("cwnd after timeout = %d, want 1", got)
	}
}

func TestNewRenoFrozenDuringRecovery(t *testing.T) {
	n := NewNewReno(Config{InitialCwnd: 10})
	s := ack(50*sim.Millisecond, 5, 10)
	s.InRecovery = true
	before := n.CwndPackets()
	n.OnAck(0, s)
	if n.CwndPackets() != before {
		t.Fatalf("cwnd grew during recovery")
	}
}

func TestNewRenoFloor(t *testing.T) {
	n := NewNewReno(Config{InitialCwnd: 2})
	for i := 0; i < 10; i++ {
		n.OnCongestionEvent(0)
	}
	if n.CwndPackets() < 2 {
		t.Fatalf("cwnd fell below floor: %d", n.CwndPackets())
	}
}

func TestCubicBetaReduction(t *testing.T) {
	c := NewCubic(Config{InitialCwnd: 100})
	c.OnCongestionEvent(0)
	if got := c.CwndPackets(); got != 70 {
		t.Fatalf("cwnd after loss = %d, want 70 (beta=0.7)", got)
	}
}

func TestCubicConcaveRecoveryTowardWMax(t *testing.T) {
	c := NewCubic(Config{InitialCwnd: 100})
	c.OnCongestionEvent(0) // wMax=100, cwnd=70
	// Feed ACKs over simulated time; cubic should grow back toward 100
	// and plateau near it before probing beyond.
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		now += 50 * sim.Millisecond
		c.OnAck(now, ack(50*sim.Millisecond, c.CwndPackets(), c.CwndPackets()))
	}
	got := c.CwndPackets()
	if got < 85 {
		t.Fatalf("cubic failed to recover toward wMax: cwnd=%d", got)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := NewCubic(Config{InitialCwnd: 100})
	c.OnCongestionEvent(0) // wMax=100
	c.OnCongestionEvent(0) // second loss below wMax triggers fast convergence
	// wMax should now be below 70 (the cwnd before the second loss).
	if c.wMax >= 70 {
		t.Fatalf("fast convergence did not shrink wMax: %v", c.wMax)
	}
}

func TestCubicExtendedGrowsFasterAfterLoss(t *testing.T) {
	grow := func(c *CubicAlg) int {
		c.OnCongestionEvent(0)
		now := sim.Time(0)
		for i := 0; i < 40; i++ {
			now += 50 * sim.Millisecond
			c.OnAck(now, ack(50*sim.Millisecond, c.CwndPackets(), c.CwndPackets()))
		}
		return c.CwndPackets()
	}
	std := grow(NewCubic(Config{InitialCwnd: 400}))
	ext := grow(NewCubicExtended(Config{InitialCwnd: 400}))
	if ext <= std {
		t.Fatalf("extended cubic (%d) should outgrow standard (%d)", ext, std)
	}
}

func TestCubicNames(t *testing.T) {
	if NewCubic(Config{}).Name() != "cubic" {
		t.Fatal("cubic name")
	}
	if NewCubicExtended(Config{}).Name() != "cubic-extended" {
		t.Fatal("cubic-extended name")
	}
}

func feedBBR(b *BBRAlg, rtt sim.Time, rate int64, rounds int) sim.Time {
	now := sim.Time(0)
	var delivered int64
	for i := 0; i < rounds; i++ {
		now += rtt
		delivered += int64(b.CwndPackets()) * 1500
		// A modest inflight figure lets the drain-exit and cycle-advance
		// conditions fire; the exact value is irrelevant to these tests.
		b.OnAck(now, AckSample{
			RTT:            rtt,
			AckedPackets:   1,
			AckedBytes:     1500,
			TotalDelivered: delivered, PacketDelivered: delivered,
			DeliveryRate: rate,
			Inflight:     20,
		})
	}
	return now
}

func TestBBRStartupExitsOnPlateau(t *testing.T) {
	b := NewBBR(Config{}, BBRVariant{
		Label: "test", HighGain: 2.885, DrainGain: 1 / 2.885, CwndGainProbeBW: 2,
	}, sim.NewRNG(1))
	if b.State() != "startup" {
		t.Fatalf("initial state = %s", b.State())
	}
	// Constant delivery rate: bandwidth stops growing, so after ~3 rounds
	// the pipe is declared full and we eventually reach probe_bw.
	feedBBR(b, 50*sim.Millisecond, 1_250_000, 20)
	if b.State() == "startup" {
		t.Fatalf("BBR never left startup")
	}
	if b.State() != "probe_bw" {
		t.Fatalf("state = %s, want probe_bw", b.State())
	}
}

func TestBBRBandwidthFilterTracksMax(t *testing.T) {
	b := NewBBR(Config{}, BBRLinux415(), sim.NewRNG(1))
	feedBBR(b, 50*sim.Millisecond, 1_000_000, 5)
	if got := b.BtlBw(); got != 1_000_000 {
		t.Fatalf("BtlBw = %d, want 1000000", got)
	}
	// A higher sample raises the estimate immediately.
	feedBBR(b, 50*sim.Millisecond, 2_000_000, 1)
	if got := b.BtlBw(); got != 2_000_000 {
		t.Fatalf("BtlBw = %d, want 2000000", got)
	}
}

func TestBBRCwndIsGainTimesBDP(t *testing.T) {
	b := NewBBR(Config{}, BBRLinux415(), sim.NewRNG(1))
	feedBBR(b, 50*sim.Millisecond, 1_250_000, 30) // ~10 Mbps path
	// BDP = 1.25MB/s * 50ms = 62.5KB ≈ 41 packets; cwnd gain 2 ⇒ ~83.
	cwnd := b.CwndPackets()
	if cwnd < 70 || cwnd > 95 {
		t.Fatalf("probe_bw cwnd = %d, want ~83 (2xBDP)", cwnd)
	}
}

func TestBBRAppLimitedSampleSemantics(t *testing.T) {
	// Per the delivery-rate draft (and tcp_rate.c): an app-limited sample
	// is ignored unless it exceeds the current estimate — it proves at
	// least that much bandwidth exists, but its low value proves nothing.
	b := NewBBR(Config{}, BBRLinux415(), sim.NewRNG(1))
	feedBBR(b, 50*sim.Millisecond, 1_000_000, 5)
	b.OnAck(sim.Second, AckSample{
		RTT: 50 * sim.Millisecond, AckedPackets: 1, AckedBytes: 1500,
		TotalDelivered: 1 << 30, PacketDelivered: 1 << 30, DeliveryRate: 500_000, RateAppLimited: true,
	})
	if got := b.BtlBw(); got != 1_000_000 {
		t.Fatalf("low app-limited sample changed BtlBw to %d", got)
	}
	b.OnAck(sim.Second, AckSample{
		RTT: 50 * sim.Millisecond, AckedPackets: 1, AckedBytes: 1500,
		TotalDelivered: 1 << 30, PacketDelivered: 1 << 30, DeliveryRate: 5_000_000, RateAppLimited: true,
	})
	if got := b.BtlBw(); got != 5_000_000 {
		t.Fatalf("higher app-limited sample should raise BtlBw, got %d", got)
	}
}

func TestBBRProbeRTTOnStaleMinRTT(t *testing.T) {
	b := NewBBR(Config{}, BBRLinux415(), sim.NewRNG(1))
	now := feedBBR(b, 50*sim.Millisecond, 1_250_000, 30)
	// Feed samples with a higher RTT for >10s so the min-RTT goes stale.
	for i := 0; i < 300; i++ {
		now += 60 * sim.Millisecond
		b.OnAck(now, AckSample{
			RTT: 60 * sim.Millisecond, AckedPackets: 1, AckedBytes: 1500,
			TotalDelivered: int64(i+1000) * 15000, PacketDelivered: int64(i+1000) * 15000, DeliveryRate: 1_250_000,
			Inflight: 40,
		})
		if b.State() == "probe_rtt" {
			return
		}
	}
	t.Fatalf("BBR never entered probe_rtt; state=%s", b.State())
}

func TestBBRVariantsDiffer(t *testing.T) {
	v415, v515 := BBRLinux415(), BBRLinux515()
	if v415.RecoveryConservation || !v515.RecoveryConservation {
		t.Fatal("variant flags wrong")
	}
	b := NewBBR(Config{}, v515, sim.NewRNG(1))
	if b.Name() != "bbr1/linux-5.15" {
		t.Fatalf("name = %s", b.Name())
	}
}

func TestBBRRecoveryConservationCapsCwnd(t *testing.T) {
	b := NewBBR(Config{}, BBRLinux515(), sim.NewRNG(1))
	feedBBR(b, 50*sim.Millisecond, 1_250_000, 30)
	big := b.CwndPackets()
	b.OnCongestionEvent(2 * sim.Second)
	b.OnAck(2*sim.Second+time50(), AckSample{
		RTT: 50 * sim.Millisecond, AckedPackets: 2, AckedBytes: 3000,
		TotalDelivered: 1 << 20, PacketDelivered: 1 << 20, DeliveryRate: 1_250_000,
		Inflight: 10, InRecovery: true,
	})
	if got := b.CwndPackets(); got >= big || got > 12 {
		t.Fatalf("conservation cap not applied: cwnd=%d (was %d)", got, big)
	}
	b.OnExitRecovery(3 * sim.Second)
	if b.CwndPackets() < big {
		t.Fatalf("cwnd not restored after recovery: %d < %d", b.CwndPackets(), big)
	}
}

func time50() sim.Time { return 50 * sim.Millisecond }

func TestBBRv3LossResponseBoundsBandwidth(t *testing.T) {
	b := NewBBRv3(Config{}, sim.NewRNG(1))
	now := sim.Time(0)
	var delivered int64
	for i := 0; i < 30; i++ {
		now += 50 * sim.Millisecond
		delivered += 60000
		b.OnAck(now, AckSample{
			RTT: 50 * sim.Millisecond, AckedPackets: 4, AckedBytes: 6000,
			TotalDelivered: delivered, PacketDelivered: delivered, DeliveryRate: 1_250_000, Inflight: 40,
		})
	}
	before := b.PacingRate()
	b.OnCongestionEvent(now)
	now += 50 * sim.Millisecond
	delivered += 1500
	b.OnAck(now, AckSample{
		RTT: 50 * sim.Millisecond, AckedPackets: 1, AckedBytes: 1500,
		TotalDelivered: delivered, PacketDelivered: delivered, DeliveryRate: 1_250_000, Inflight: 40, InRecovery: true,
	})
	b.OnExitRecovery(now)
	now += 50 * sim.Millisecond
	delivered += 1500
	b.OnAck(now, AckSample{
		RTT: 50 * sim.Millisecond, AckedPackets: 1, AckedBytes: 1500,
		TotalDelivered: delivered, PacketDelivered: delivered, DeliveryRate: 1_250_000, Inflight: 30,
	})
	after := b.PacingRate()
	if float64(after) > 0.85*float64(before) {
		t.Fatalf("v3 loss response missing: pacing %d -> %d", before, after)
	}
}

func TestBBRv3Name(t *testing.T) {
	if NewBBRv3(Config{}, nil).Name() != "bbr3" {
		t.Fatal("bbr3 name")
	}
}

func TestGCCIncreasesWhenPathClear(t *testing.T) {
	g := NewGCC(MeetGCC())
	start := g.TargetRate()
	// GCC ramps ~8%/s; 20 simulated seconds is ample to reach the cap.
	for i := 0; i < 200; i++ {
		g.OnFeedback(sim.Time(i)*100*sim.Millisecond, Feedback{
			Interval: 100 * sim.Millisecond, ReceiveRate: g.TargetRate(),
		})
	}
	if g.TargetRate() != MeetGCC().MaxRate {
		t.Fatalf("rate = %d after clear path, want max %d (start %d)",
			g.TargetRate(), MeetGCC().MaxRate, start)
	}
}

func TestGCCDecreasesOnDelayGradient(t *testing.T) {
	g := NewGCC(MeetGCC())
	for i := 0; i < 20; i++ {
		g.OnFeedback(0, Feedback{Interval: 100 * sim.Millisecond, ReceiveRate: g.TargetRate()})
	}
	high := g.TargetRate()
	for i := 0; i < 10; i++ {
		g.OnFeedback(0, Feedback{
			Interval: 100 * sim.Millisecond, DelayGradient: 50,
			ReceiveRate: high, QueueDelay: 100 * sim.Millisecond,
		})
	}
	if g.TargetRate() >= high {
		t.Fatalf("GCC did not back off: %d >= %d", g.TargetRate(), high)
	}
}

func TestGCCRespectsFloorAndCeiling(t *testing.T) {
	g := NewGCC(MeetGCC())
	for i := 0; i < 100; i++ {
		g.OnFeedback(0, Feedback{
			Interval: 100 * sim.Millisecond, DelayGradient: 100,
			LossRate: 0.5, QueueDelay: sim.Second, ReceiveRate: g.TargetRate(),
		})
	}
	if g.TargetRate() != MeetGCC().MinRate {
		t.Fatalf("floor violated: %d", g.TargetRate())
	}
}

func TestGCCLossBranchCutsRate(t *testing.T) {
	g := NewGCC(MeetGCC())
	for i := 0; i < 30; i++ {
		g.OnFeedback(0, Feedback{Interval: 100 * sim.Millisecond, ReceiveRate: g.TargetRate()})
	}
	high := g.TargetRate()
	// Loss decisions run on a smoothed signal: sustained loss over a few
	// reports is required before the cut (a single dropped frame in one
	// report must not collapse the ladder).
	for i := 0; i < 5; i++ {
		g.OnFeedback(0, Feedback{Interval: 100 * sim.Millisecond, LossRate: 0.3, ReceiveRate: g.TargetRate()})
	}
	if g.TargetRate() >= high {
		t.Fatalf("loss branch did not cut rate")
	}
}

func TestTeamsControllerHoldsRateLongerThanMeet(t *testing.T) {
	// The same moderate delay-gradient signal should push Meet down
	// before Teams (Obs 5: Teams trades delay/freezes for bitrate).
	meet, teams := NewGCC(MeetGCC()), NewGCC(TeamsController())
	for i := 0; i < 250; i++ {
		fb := Feedback{Interval: 100 * sim.Millisecond}
		fb.ReceiveRate = meet.TargetRate()
		meet.OnFeedback(0, fb)
		fb.ReceiveRate = teams.TargetRate()
		teams.OnFeedback(0, fb)
	}
	for i := 0; i < 10; i++ {
		fb := Feedback{Interval: 100 * sim.Millisecond, DelayGradient: 12, QueueDelay: 80 * sim.Millisecond}
		fb.ReceiveRate = meet.TargetRate()
		meet.OnFeedback(0, fb)
		fb.ReceiveRate = teams.TargetRate()
		teams.OnFeedback(0, fb)
	}
	if meet.TargetRate() >= MeetGCC().MaxRate {
		t.Fatal("Meet did not react to moderate delay gradient")
	}
	if teams.TargetRate() < TeamsController().MaxRate {
		t.Fatalf("Teams should shrug off moderate gradient, rate=%d", teams.TargetRate())
	}
}
