package cca

import (
	"prudentia/internal/sim"
)

// bbr3Phase enumerates the BBRv3 ProbeBW sub-phases.
type bbr3Phase int

const (
	bbr3Down bbr3Phase = iota
	bbr3Cruise
	bbr3Refill
	bbr3Up
)

func (p bbr3Phase) String() string {
	switch p {
	case bbr3Down:
		return "down"
	case bbr3Cruise:
		return "cruise"
	case bbr3Refill:
		return "refill"
	case bbr3Up:
		return "up"
	}
	return "unknown"
}

// BBRv3Alg implements the BBRv3 algorithm as described in the IETF CCWG
// material the paper cites [5]: the v1 model (windowed-max bandwidth,
// windowed-min RTT) extended with an explicit loss response (the
// short-term bw_lo bound, β=0.7), cruising headroom (keep inflight below
// ~85% of the estimated BDP to leave room for entrants), and a
// DOWN/CRUISE/REFILL/UP probing ladder in place of the v1 gain cycle.
// Google deployed BBRv3 to Google Drive during the paper's measurement
// period, which Fig 9a shows made it measurably kinder to competitors.
type BBRv3Alg struct {
	cfg Config
	rng *sim.RNG

	state bbrState // reuses startup/drain/probebw/probertt
	phase bbr3Phase

	bwFilter   []bwSample
	bwLo       int64 // short-term loss-responsive bound (0 = unset)
	rtProp     sim.Time
	rtPropAt   sim.Time
	rtPropSeen bool

	round             int64
	nextRoundDelivery int64
	roundStart        bool

	fullBw      int64
	fullBwCount int
	filledPipe  bool

	phaseStamp     sim.Time
	cruiseLen      sim.Time
	lossInRound    bool
	probeRTTDoneAt sim.Time
	priorCwnd      int

	inRecovery bool

	pacingGain float64
	cwndGain   float64
	cwnd       int
	pacingRate int64
}

// BBRv3 constants (from the IETF slides / Linux v3 alpha).
const (
	bbr3StartupGain   = 2.77
	bbr3StartupCwnd   = 2.0
	bbr3DrainGain     = 1 / 2.77
	bbr3ProbeDownGain = 0.9
	bbr3ProbeUpGain   = 1.25
	bbr3Beta          = 0.7
	bbr3Headroom      = 0.85
	bbr3CwndGain      = 2.0
)

// NewBBRv3 returns a BBRv3 controller.
func NewBBRv3(cfg Config, rng *sim.RNG) *BBRv3Alg {
	cfg = cfg.withDefaults()
	if rng == nil {
		rng = sim.NewRNG(0)
	}
	b := &BBRv3Alg{
		cfg:        cfg,
		rng:        rng,
		state:      bbrStartup,
		pacingGain: bbr3StartupGain,
		cwndGain:   bbr3StartupCwnd,
		cwnd:       cfg.InitialCwnd,
	}
	b.pacingRate = int64(float64(cfg.InitialCwnd*cfg.MSS) * bbr3StartupGain / 0.001)
	return b
}

// Name implements Algorithm.
func (b *BBRv3Alg) Name() string { return "bbr3" }

// State exposes state+phase for tests and traces.
func (b *BBRv3Alg) State() string {
	if b.state == bbrProbeBW {
		return "probe_bw/" + b.phase.String()
	}
	return b.state.String()
}

// maxBw returns the windowed-max bandwidth estimate.
func (b *BBRv3Alg) maxBw() int64 {
	var max int64
	for _, s := range b.bwFilter {
		if s.bw > max {
			max = s.bw
		}
	}
	return max
}

// effectiveBw applies the loss-responsive short-term bound.
func (b *BBRv3Alg) effectiveBw() int64 {
	bw := b.maxBw()
	if b.bwLo > 0 && b.bwLo < bw {
		return b.bwLo
	}
	return bw
}

func (b *BBRv3Alg) bdpPackets(gain float64, bw int64) int {
	if bw == 0 || !b.rtPropSeen {
		return b.cfg.InitialCwnd
	}
	pkts := int(gain * float64(bw) * b.rtProp.Seconds() / float64(b.cfg.MSS))
	if pkts < bbrMinCwnd {
		pkts = bbrMinCwnd
	}
	return pkts
}

// OnAck implements Algorithm.
func (b *BBRv3Alg) OnAck(now sim.Time, s AckSample) {
	b.roundStart = false
	if s.PacketDelivered >= b.nextRoundDelivery {
		b.round++
		b.roundStart = true
		b.nextRoundDelivery = s.TotalDelivered
		b.lossInRound = false
	}

	if s.DeliveryRate > 0 && (!s.RateAppLimited || s.DeliveryRate > b.maxBw()) {
		b.bwFilter = append(b.bwFilter, bwSample{round: b.round, bw: s.DeliveryRate})
		cut := 0
		for cut < len(b.bwFilter) && b.bwFilter[cut].round < b.round-bbrBwWindowRounds {
			cut++
		}
		b.bwFilter = b.bwFilter[cut:]
	}
	rtExpired := b.rtPropSeen && now > b.rtPropAt+bbrMinRTTWindow
	if s.RTT > 0 {
		if !b.rtPropSeen || s.RTT <= b.rtProp || rtExpired {
			b.rtProp = s.RTT
			b.rtPropAt = now
			b.rtPropSeen = true
		}
	}

	b.checkFullPipe(s)
	b.updateState(now, s, rtExpired)
	b.updateControls(now, s)
}

func (b *BBRv3Alg) checkFullPipe(s AckSample) {
	if b.filledPipe || !b.roundStart || s.RateAppLimited {
		return
	}
	bw := b.maxBw()
	if float64(bw) >= float64(b.fullBw)*1.25 {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	// v3 also exits startup on sustained loss.
	if b.fullBwCount >= 3 || b.lossInRound {
		b.filledPipe = true
	}
}

func (b *BBRv3Alg) updateState(now sim.Time, s AckSample, rtExpired bool) {
	switch b.state {
	case bbrStartup:
		if b.filledPipe {
			b.state = bbrDrain
		}
	case bbrDrain:
		if s.Inflight <= b.bdpPackets(1.0, b.effectiveBw()) {
			b.enterProbeBW(now, bbr3Down)
		}
	case bbrProbeBW:
		b.advancePhase(now, s)
	case bbrProbeRTT:
		if s.Inflight <= bbrMinCwnd && b.probeRTTDoneAt == 0 {
			b.probeRTTDoneAt = now + bbrProbeRTTTime
		}
		if b.probeRTTDoneAt != 0 && now >= b.probeRTTDoneAt {
			b.rtPropAt = now
			if b.priorCwnd > b.cwnd {
				b.cwnd = b.priorCwnd
			}
			b.enterProbeBW(now, bbr3Down)
		}
	}
	if b.state != bbrProbeRTT && rtExpired {
		b.state = bbrProbeRTT
		b.priorCwnd = b.cwnd
		b.probeRTTDoneAt = 0
	}
}

func (b *BBRv3Alg) enterProbeBW(now sim.Time, ph bbr3Phase) {
	b.state = bbrProbeBW
	b.phase = ph
	b.phaseStamp = now
	if ph == bbr3Cruise {
		// Probe for bandwidth every couple of seconds (v3 randomizes
		// between roughly 2 and 3 seconds).
		b.cruiseLen = 2*sim.Second + b.rng.Duration(sim.Second)
	}
}

func (b *BBRv3Alg) advancePhase(now sim.Time, s AckSample) {
	switch b.phase {
	case bbr3Down:
		// Deflate the queue until inflight is below headroom×BDP, but
		// never longer than about one round trip — lingering here would
		// decay the bandwidth filter with down-paced samples.
		if s.Inflight <= b.bdpPackets(bbr3Headroom, b.effectiveBw()) ||
			now-b.phaseStamp > b.rtProp {
			b.enterProbeBW(now, bbr3Cruise)
		}
	case bbr3Cruise:
		if now-b.phaseStamp >= b.cruiseLen {
			b.enterProbeBW(now, bbr3Refill)
		}
	case bbr3Refill:
		// One round to refill the pipe, then probe up; probing resets
		// the short-term loss bound.
		if b.roundStart {
			b.bwLo = 0
			b.enterProbeBW(now, bbr3Up)
		}
	case bbr3Up:
		if s.InRecovery || s.Inflight >= b.bdpPackets(1.25, b.maxBw()) ||
			now-b.phaseStamp > 3*b.rtProp {
			b.enterProbeBW(now, bbr3Down)
		}
	}
}

func (b *BBRv3Alg) updateControls(now sim.Time, s AckSample) {
	switch b.state {
	case bbrStartup:
		b.pacingGain, b.cwndGain = bbr3StartupGain, bbr3StartupGain
	case bbrDrain:
		b.pacingGain, b.cwndGain = bbr3DrainGain, bbr3StartupGain
	case bbrProbeBW:
		b.cwndGain = bbr3CwndGain
		switch b.phase {
		case bbr3Down:
			b.pacingGain = bbr3ProbeDownGain
		case bbr3Cruise, bbr3Refill:
			b.pacingGain = 1.0
		case bbr3Up:
			b.pacingGain = bbr3ProbeUpGain
		}
	case bbrProbeRTT:
		b.pacingGain, b.cwndGain = 1, 1
	}

	bw := b.effectiveBw()
	if bw > 0 {
		b.pacingRate = int64(b.pacingGain * float64(bw))
	}

	if b.state == bbrProbeRTT {
		b.cwnd = bbrMinCwnd
		return
	}
	target := b.bdpPackets(b.cwndGain, bw)
	if b.state == bbrProbeBW && b.phase == bbr3Cruise {
		// Cruise with headroom: leave ~15% of the pipe unclaimed.
		hr := b.bdpPackets(bbr3CwndGain*bbr3Headroom, bw)
		if hr < target {
			target = hr
		}
	}
	if b.inRecovery {
		cap := s.Inflight + s.AckedPackets
		if cap < bbrMinCwnd {
			cap = bbrMinCwnd
		}
		if target > cap {
			target = cap
		}
	}
	b.cwnd = target
}

// OnCongestionEvent implements Algorithm: v3's loss response bounds the
// short-term bandwidth estimate at β× the latest estimate.
func (b *BBRv3Alg) OnCongestionEvent(now sim.Time) {
	b.lossInRound = true
	if !b.inRecovery {
		b.inRecovery = true
		b.priorCwnd = b.cwnd
	}
	// Bound from the long-term estimate rather than the already-reduced
	// effective bandwidth so repeated loss within one probe cycle does
	// not compound the cut toward zero.
	lo := int64(bbr3Beta * float64(b.maxBw()))
	if b.bwLo == 0 || lo < b.bwLo {
		b.bwLo = lo
	}
}

// OnPacketLoss implements Algorithm.
func (b *BBRv3Alg) OnPacketLoss(sim.Time, int) {}

// OnExitRecovery implements Algorithm.
func (b *BBRv3Alg) OnExitRecovery(sim.Time) {
	b.inRecovery = false
	if b.priorCwnd > b.cwnd {
		b.cwnd = b.priorCwnd
	}
}

// OnTimeout implements Algorithm.
func (b *BBRv3Alg) OnTimeout(sim.Time) {
	b.priorCwnd = b.cwnd
	b.cwnd = bbrMinCwnd
}

// CwndPackets implements Algorithm.
func (b *BBRv3Alg) CwndPackets() int {
	if b.cwnd < 1 {
		return 1
	}
	return b.cwnd
}

// PacingRate implements Algorithm.
func (b *BBRv3Alg) PacingRate() int64 { return b.pacingRate }
