package cca

import (
	"math"

	"prudentia/internal/sim"
)

// CubicAlg implements TCP Cubic (RFC 8312): window growth follows
// W(t) = C·(t−K)³ + W_max between congestion events, with a
// TCP-friendly lower bound, β=0.7 multiplicative decrease, and fast
// convergence. OneDrive runs an "extended version of Cubic" (Table 1);
// NewCubicExtended models it with the more aggressive post-loss ramp
// Microsoft described in its 2021 transport notes (larger C, HyStart-like
// early exit disabled) — the service-level throttle lives in
// internal/services.
type CubicAlg struct {
	cfg Config

	cwnd     float64 // packets
	ssthresh float64

	wMax       float64  // window before the last reduction
	epochStart sim.Time // start of the current cubic epoch (-1 = unset)
	k          float64  // seconds until the plateau
	c          float64  // cubic scaling constant
	beta       float64  // multiplicative decrease factor
	fastConv   bool

	// estRTT tracks a smoothed RTT for the TCP-friendly region.
	estRTT sim.Time
	// renoCwnd estimates what standard AIMD would have reached.
	renoCwnd float64
}

// NewCubic returns a standard Cubic controller (C=0.4, β=0.7).
func NewCubic(cfg Config) *CubicAlg {
	cfg = cfg.withDefaults()
	return &CubicAlg{
		cfg:        cfg,
		cwnd:       float64(cfg.InitialCwnd),
		ssthresh:   float64(maxInt) / 4,
		epochStart: -1,
		c:          0.4,
		beta:       0.7,
		fastConv:   true,
	}
}

// NewCubicExtended returns the OneDrive-style variant: a larger cubic
// constant for faster recovery of large windows on high-BDP paths.
func NewCubicExtended(cfg Config) *CubicAlg {
	a := NewCubic(cfg)
	a.c = 0.8
	return a
}

// Name implements Algorithm.
func (cu *CubicAlg) Name() string {
	if cu.c != 0.4 {
		return "cubic-extended"
	}
	return "cubic"
}

// OnAck implements Algorithm.
func (cu *CubicAlg) OnAck(now sim.Time, s AckSample) {
	if s.RTT > 0 {
		if cu.estRTT == 0 {
			cu.estRTT = s.RTT
		} else {
			cu.estRTT = (cu.estRTT*7 + s.RTT) / 8
		}
	}
	if s.InRecovery {
		return
	}
	for i := 0; i < s.AckedPackets; i++ {
		if cu.cwnd < cu.ssthresh {
			cu.cwnd++
			continue
		}
		cu.congestionAvoidance(now)
	}
}

func (cu *CubicAlg) congestionAvoidance(now sim.Time) {
	if cu.epochStart < 0 {
		cu.epochStart = now
		cu.wMax = math.Max(cu.wMax, cu.cwnd)
		if cu.cwnd < cu.wMax {
			cu.k = math.Cbrt((cu.wMax - cu.cwnd) / cu.c)
		} else {
			cu.k = 0
		}
		cu.renoCwnd = cu.cwnd
	}
	t := (now - cu.epochStart).Seconds()
	target := cu.c*math.Pow(t-cu.k, 3) + cu.wMax

	// TCP-friendly region: emulate AIMD with beta-derived slope
	// (RFC 8312 §4.2): W_est grows by 3(1-β)/(1+β) per RTT.
	if cu.estRTT > 0 {
		cu.renoCwnd += 3 * (1 - cu.beta) / (1 + cu.beta) / cu.cwnd
	}
	if target < cu.renoCwnd {
		target = cu.renoCwnd
	}
	if target > cu.cwnd {
		// Approach the target over one RTT worth of ACKs.
		cu.cwnd += (target - cu.cwnd) / cu.cwnd
	} else {
		cu.cwnd += 0.01 / cu.cwnd // minimal growth when at/above target
	}
}

// OnCongestionEvent implements Algorithm: β reduction + fast convergence.
func (cu *CubicAlg) OnCongestionEvent(sim.Time) {
	cu.epochStart = -1
	if cu.fastConv && cu.cwnd < cu.wMax {
		cu.wMax = cu.cwnd * (1 + cu.beta) / 2
	} else {
		cu.wMax = cu.cwnd
	}
	cu.cwnd *= cu.beta
	if cu.cwnd < 2 {
		cu.cwnd = 2
	}
	cu.ssthresh = cu.cwnd
}

// OnPacketLoss implements Algorithm.
func (cu *CubicAlg) OnPacketLoss(sim.Time, int) {}

// OnTimeout implements Algorithm.
func (cu *CubicAlg) OnTimeout(sim.Time) {
	cu.epochStart = -1
	cu.wMax = cu.cwnd
	cu.ssthresh = math.Max(cu.cwnd*cu.beta, 2)
	cu.cwnd = 1
}

// OnExitRecovery implements Algorithm.
func (cu *CubicAlg) OnExitRecovery(sim.Time) {}

// CwndPackets implements Algorithm.
func (cu *CubicAlg) CwndPackets() int {
	if cu.cwnd < 1 {
		return 1
	}
	return int(cu.cwnd)
}

// PacingRate implements Algorithm: Cubic is ACK-clocked.
func (cu *CubicAlg) PacingRate() int64 { return 0 }
