package cca

import (
	"fmt"

	"prudentia/internal/sim"
)

// BBR state machine states.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probe_bw"
	case bbrProbeRTT:
		return "probe_rtt"
	}
	return "unknown"
}

// BBRVariant captures the implementation differences between BBRv1 trees.
// The paper (Obs 13, Fig 9b) shows Linux 4.15 and Linux 5.15 "BBRv1"
// produce different fairness outcomes; these are the knobs that changed.
type BBRVariant struct {
	// Label distinguishes the variant in reports ("linux-4.15", …).
	Label string
	// HighGain is the startup pacing/cwnd gain (2/ln 2 ≈ 2.885).
	HighGain float64
	// DrainGain is the drain-phase pacing gain (1/HighGain).
	DrainGain float64
	// CwndGainProbeBW is the cwnd gain while cruising in ProbeBW.
	CwndGainProbeBW float64
	// RecoveryConservation enables the packet-conservation cap during
	// the first round of loss recovery that later kernels added; it makes
	// the algorithm measurably less contentious against other
	// BBR flows while conceding less to application-limited competitors.
	RecoveryConservation bool
	// RandomizeCycle randomizes the initial ProbeBW gain-cycle phase
	// (both kernels do; disabled only in deterministic unit tests).
	RandomizeCycle bool
	// IdleRestartWindow, if nonzero, caps the burst after an idle period
	// (CWND reduction on restart); later kernels pace out of idle.
	IdleRestartWindow int
	// NoPacing disables the pacing engine: the flow becomes purely
	// window-driven (ACK-clocked bursts up to cwnd_gain × BDP) while
	// remaining loss-blind. This is how BBR degrades on stacks without a
	// pacing-capable qdisc, and it is dramatically more contentious than
	// paced BBR; Prudentia's Mega model uses it (the paper notes Mega's
	// BBR behaves unlike stock kernels: "it is also possible that Mega is
	// running a slightly different version of BBR", §4 Obs 4).
	NoPacing bool
}

// BBRUnpaced returns the cwnd-driven BBRv1 flavour Mega's servers
// exhibit.
func BBRUnpaced() BBRVariant {
	v := BBRLinux415()
	v.Label = "unpaced"
	v.NoPacing = true
	return v
}

// BBRLinux415 is the BBRv1 tree the paper's 2022-era iPerf baseline ran.
func BBRLinux415() BBRVariant {
	return BBRVariant{
		Label:           "linux-4.15",
		HighGain:        2.885,
		DrainGain:       1 / 2.885,
		CwndGainProbeBW: 2.0,
		RandomizeCycle:  true,
	}
}

// BBRLinux515 is the BBRv1 tree in Linux 5.15 (the paper's 2023 baseline).
func BBRLinux515() BBRVariant {
	v := BBRLinux415()
	v.Label = "linux-5.15"
	v.RecoveryConservation = true
	v.IdleRestartWindow = 10
	return v
}

const (
	bbrBwWindowRounds = 10
	bbrMinRTTWindow   = 10 * sim.Second
	bbrProbeRTTTime   = 200 * sim.Millisecond
	bbrMinCwnd        = 4
)

// bbrGainCycle is the ProbeBW pacing-gain cycle: one probing phase, one
// draining phase, six cruising phases, each lasting about one min-RTT.
var bbrGainCycle = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// bwSample is one entry of the windowed-max bandwidth filter.
type bwSample struct {
	round int64
	bw    int64 // bytes/sec
}

// BBRAlg implements BBRv1 (Cardwell et al., "BBR: Congestion-Based
// Congestion Control"): it builds a model of the path — bottleneck
// bandwidth (windowed max of delivery-rate samples) and round-trip
// propagation time (windowed min) — and paces at pacing_gain × BtlBw
// while capping inflight at cwnd_gain × BDP. YouTube (via QUIC), Dropbox,
// Vimeo, Mega, and wikipedia.org all run BBRv1 derivatives per Table 1.
type BBRAlg struct {
	cfg     Config
	variant BBRVariant
	rng     *sim.RNG

	state bbrState

	// Path model.
	bwFilter   []bwSample
	rtProp     sim.Time
	rtPropAt   sim.Time
	rtPropSeen bool

	// Round counting.
	round             int64
	nextRoundDelivery int64
	roundStart        bool

	// Startup full-pipe detection.
	fullBw      int64
	fullBwCount int
	filledPipe  bool

	// ProbeBW gain cycling.
	cycleIndex int
	cycleStamp sim.Time

	// ProbeRTT bookkeeping.
	probeRTTDoneAt sim.Time
	probeRTTActive bool

	// Loss recovery.
	inRecovery   bool
	priorCwnd    int
	conserveCwnd int

	pacingGain float64
	cwndGain   float64
	cwnd       int
	pacingRate int64
}

// NewBBR returns a BBRv1 controller of the given variant. rng drives the
// ProbeBW cycle randomization; pass a deterministic per-flow stream.
func NewBBR(cfg Config, variant BBRVariant, rng *sim.RNG) *BBRAlg {
	cfg = cfg.withDefaults()
	if rng == nil {
		rng = sim.NewRNG(0)
	}
	b := &BBRAlg{
		cfg:        cfg,
		variant:    variant,
		rng:        rng,
		state:      bbrStartup,
		pacingGain: variant.HighGain,
		cwndGain:   variant.HighGain,
		cwnd:       cfg.InitialCwnd,
	}
	// Initial pacing: initial window over an assumed 1 ms RTT keeps
	// startup from being transport-limited before the first sample.
	b.pacingRate = int64(float64(cfg.InitialCwnd*cfg.MSS) * variant.HighGain / 0.001)
	return b
}

// Name implements Algorithm.
func (b *BBRAlg) Name() string { return fmt.Sprintf("bbr1/%s", b.variant.Label) }

// State exposes the current state for tests and traces.
func (b *BBRAlg) State() string { return b.state.String() }

// BtlBw returns the current bottleneck-bandwidth estimate in bytes/sec.
func (b *BBRAlg) BtlBw() int64 {
	var max int64
	for _, s := range b.bwFilter {
		if s.bw > max {
			max = s.bw
		}
	}
	return max
}

// RTProp returns the current min-RTT estimate.
func (b *BBRAlg) RTProp() sim.Time { return b.rtProp }

func (b *BBRAlg) updateBw(s AckSample) {
	if s.DeliveryRate <= 0 {
		return
	}
	// App-limited samples may only raise the estimate if they beat it
	// anyway (they prove at least that much bandwidth exists).
	if s.RateAppLimited && s.DeliveryRate <= b.BtlBw() {
		return
	}
	b.bwFilter = append(b.bwFilter, bwSample{round: b.round, bw: s.DeliveryRate})
	// Evict samples older than the window.
	cut := 0
	for cut < len(b.bwFilter) && b.bwFilter[cut].round < b.round-bbrBwWindowRounds {
		cut++
	}
	b.bwFilter = b.bwFilter[cut:]
}

// updateRTProp updates the min-RTT filter and reports whether the filter
// had expired before this sample (the ProbeRTT entry condition; Linux
// computes the expiry before refreshing the filter, and so do we).
func (b *BBRAlg) updateRTProp(now sim.Time, rtt sim.Time) bool {
	expired := b.rtPropSeen && now > b.rtPropAt+bbrMinRTTWindow
	if rtt <= 0 {
		return false
	}
	if !b.rtPropSeen || rtt <= b.rtProp || expired {
		b.rtProp = rtt
		b.rtPropAt = now
		b.rtPropSeen = true
	}
	return expired
}

// bdpPackets returns gain × BDP in packets.
func (b *BBRAlg) bdpPackets(gain float64) int {
	bw := b.BtlBw()
	if bw == 0 || !b.rtPropSeen {
		return b.cfg.InitialCwnd
	}
	bdpBytes := float64(bw) * b.rtProp.Seconds()
	pkts := int(gain * bdpBytes / float64(b.cfg.MSS))
	if pkts < bbrMinCwnd {
		pkts = bbrMinCwnd
	}
	return pkts
}

// OnAck implements Algorithm.
func (b *BBRAlg) OnAck(now sim.Time, s AckSample) {
	// Round accounting (per tcp_bbr.c): a round trip ends when a packet
	// sent at-or-after the previous round's delivered mark is ACKed.
	b.roundStart = false
	if s.PacketDelivered >= b.nextRoundDelivery {
		b.round++
		b.roundStart = true
		b.nextRoundDelivery = s.TotalDelivered
	}

	b.updateBw(s)
	rtExpired := b.updateRTProp(now, s.RTT)

	b.checkFullPipe(s)
	b.updateState(now, s, rtExpired)
	b.updateControls(now, s)
}

func (b *BBRAlg) checkFullPipe(s AckSample) {
	if b.filledPipe || !b.roundStart || s.RateAppLimited {
		return
	}
	bw := b.BtlBw()
	if float64(bw) >= float64(b.fullBw)*1.25 {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= 3 {
		b.filledPipe = true
	}
}

func (b *BBRAlg) updateState(now sim.Time, s AckSample, rtExpired bool) {
	switch b.state {
	case bbrStartup:
		if b.filledPipe {
			b.state = bbrDrain
		}
	case bbrDrain:
		if s.Inflight <= b.bdpPackets(1.0) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		b.advanceCycle(now, s)
	case bbrProbeRTT:
		if s.Inflight <= bbrMinCwnd && b.probeRTTDoneAt == 0 {
			b.probeRTTDoneAt = now + bbrProbeRTTTime
		}
		if b.probeRTTDoneAt != 0 && now >= b.probeRTTDoneAt {
			b.rtPropAt = now // freshly validated
			b.exitProbeRTT(now)
		}
	}
	// ProbeRTT entry: the min-RTT estimate went stale.
	if b.state != bbrProbeRTT && rtExpired {
		b.enterProbeRTT(now)
	}
}

func (b *BBRAlg) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cycleIndex = 0
	if b.variant.RandomizeCycle {
		// Any phase except the 0.75 drain phase (index 1), per Linux.
		b.cycleIndex = b.rng.Intn(len(bbrGainCycle) - 1)
		if b.cycleIndex >= 1 {
			b.cycleIndex++
		}
		b.cycleIndex %= len(bbrGainCycle)
	}
	b.cycleStamp = now
}

func (b *BBRAlg) advanceCycle(now sim.Time, s AckSample) {
	elapsed := now - b.cycleStamp
	gain := bbrGainCycle[b.cycleIndex]
	advance := elapsed > b.rtProp
	// Leave the probing phase only once we actually filled gain×BDP (or
	// suffered loss); leave the draining phase as soon as inflight is
	// back at the BDP.
	if gain > 1 {
		advance = advance && (s.InRecovery || s.Inflight >= b.bdpPackets(gain))
	}
	if gain < 1 && s.Inflight <= b.bdpPackets(1) {
		advance = true
	}
	if advance {
		b.cycleIndex = (b.cycleIndex + 1) % len(bbrGainCycle)
		b.cycleStamp = now
	}
}

func (b *BBRAlg) enterProbeRTT(now sim.Time) {
	b.state = bbrProbeRTT
	b.priorCwnd = b.cwnd
	b.probeRTTDoneAt = 0
}

func (b *BBRAlg) exitProbeRTT(now sim.Time) {
	if b.filledPipe {
		b.enterProbeBW(now)
	} else {
		b.state = bbrStartup
	}
	if b.priorCwnd > b.cwnd {
		b.cwnd = b.priorCwnd
	}
}

func (b *BBRAlg) updateControls(now sim.Time, s AckSample) {
	switch b.state {
	case bbrStartup:
		b.pacingGain = b.variant.HighGain
		b.cwndGain = b.variant.HighGain
	case bbrDrain:
		b.pacingGain = b.variant.DrainGain
		b.cwndGain = b.variant.HighGain
		if b.variant.NoPacing {
			// Without a pacer the queue can only deflate through the
			// window: force inflight down to the estimated BDP.
			b.cwndGain = 1.0
		}
	case bbrProbeBW:
		b.pacingGain = bbrGainCycle[b.cycleIndex]
		b.cwndGain = b.variant.CwndGainProbeBW
	case bbrProbeRTT:
		b.pacingGain = 1
		b.cwndGain = 1
	}

	bw := b.BtlBw()
	if bw > 0 {
		b.pacingRate = int64(b.pacingGain * float64(bw))
	}

	if b.state == bbrProbeRTT {
		b.cwnd = bbrMinCwnd
		return
	}
	target := b.bdpPackets(b.cwndGain)
	if b.inRecovery && b.variant.RecoveryConservation {
		// Packet conservation: do not grow beyond inflight + newly acked
		// during the first recovery round.
		cap := s.Inflight + s.AckedPackets
		if cap < bbrMinCwnd {
			cap = bbrMinCwnd
		}
		if target > cap {
			target = cap
		}
	}
	b.cwnd = target
}

// OnCongestionEvent implements Algorithm. BBRv1 famously does not reduce
// its rate on loss; only the optional recovery conservation applies.
func (b *BBRAlg) OnCongestionEvent(now sim.Time) {
	if !b.inRecovery {
		b.inRecovery = true
		b.priorCwnd = b.cwnd
	}
}

// OnPacketLoss implements Algorithm (no-op for BBRv1).
func (b *BBRAlg) OnPacketLoss(sim.Time, int) {}

// OnExitRecovery implements Algorithm.
func (b *BBRAlg) OnExitRecovery(sim.Time) {
	b.inRecovery = false
	if b.priorCwnd > b.cwnd {
		b.cwnd = b.priorCwnd
	}
}

// OnTimeout implements Algorithm.
func (b *BBRAlg) OnTimeout(sim.Time) {
	b.priorCwnd = b.cwnd
	b.cwnd = bbrMinCwnd
}

// CwndPackets implements Algorithm.
func (b *BBRAlg) CwndPackets() int {
	if b.cwnd < 1 {
		return 1
	}
	return b.cwnd
}

// PacingRate implements Algorithm.
func (b *BBRAlg) PacingRate() int64 {
	if b.variant.NoPacing {
		return 0
	}
	return b.pacingRate
}
