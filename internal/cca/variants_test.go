package cca

import (
	"testing"

	"prudentia/internal/sim"
)

func TestBBRUnpacedVariant(t *testing.T) {
	v := BBRUnpaced()
	if !v.NoPacing || v.Label != "unpaced" {
		t.Fatalf("unpaced variant misconfigured: %+v", v)
	}
	b := NewBBR(Config{}, v, sim.NewRNG(1))
	feedBBR(b, 50*sim.Millisecond, 1_250_000, 5)
	if b.PacingRate() != 0 {
		t.Fatalf("unpaced BBR reports pacing rate %d", b.PacingRate())
	}
	// The paced twin must report a rate.
	p := NewBBR(Config{}, BBRLinux415(), sim.NewRNG(1))
	feedBBR(p, 50*sim.Millisecond, 1_250_000, 5)
	if p.PacingRate() == 0 {
		t.Fatal("paced BBR reports no pacing rate")
	}
}

func TestBBRVariantCwndGainScales(t *testing.T) {
	// A larger ProbeBW cwnd gain must yield a proportionally larger
	// window once the path model converges (the Mega-custom knob).
	window := func(gain float64) int {
		v := BBRLinux415()
		v.CwndGainProbeBW = gain
		v.RandomizeCycle = false
		b := NewBBR(Config{}, v, sim.NewRNG(1))
		feedBBR(b, 50*sim.Millisecond, 1_250_000, 30)
		return b.CwndPackets()
	}
	w2, w3 := window(2), window(3)
	ratio := float64(w3) / float64(w2)
	if ratio < 1.3 || ratio > 1.7 {
		t.Fatalf("cwnd gain scaling off: gain2=%d gain3=%d (ratio %.2f)", w2, w3, ratio)
	}
}

func TestGCCAdaptiveBaselineCoexistsWithStandingQueue(t *testing.T) {
	// A persistent standing queue (competing buffer-filler) must not pin
	// the controller at its floor once the baseline adapts: delay that
	// never varies is the path's problem, not ours.
	g := NewGCC(MeetGCC())
	for i := 0; i < 300; i++ {
		g.OnFeedback(0, Feedback{
			Interval:    100 * sim.Millisecond,
			QueueDelay:  180 * sim.Millisecond, // standing, constant
			ReceiveRate: g.TargetRate(),
		})
	}
	if g.TargetRate() != MeetGCC().MaxRate {
		t.Fatalf("standing queue pinned GCC at %d", g.TargetRate())
	}
}

func TestGCCSingleLossSpikeDoesNotCollapse(t *testing.T) {
	g := NewGCC(MeetGCC())
	for i := 0; i < 200; i++ {
		g.OnFeedback(0, Feedback{Interval: 100 * sim.Millisecond, ReceiveRate: g.TargetRate()})
	}
	high := g.TargetRate()
	// One report with a whole frame lost (33%), then clean reports.
	g.OnFeedback(0, Feedback{Interval: 100 * sim.Millisecond, LossRate: 0.33, ReceiveRate: high})
	for i := 0; i < 20; i++ {
		g.OnFeedback(0, Feedback{Interval: 100 * sim.Millisecond, ReceiveRate: g.TargetRate()})
	}
	if g.TargetRate() < high/2 {
		t.Fatalf("single loss spike collapsed rate to %d", g.TargetRate())
	}
}
