package cca

import "prudentia/internal/sim"

// Feedback is a periodic receiver report for rate-based media transport,
// modelled after WebRTC transport-wide congestion control feedback.
type Feedback struct {
	// Interval is the time covered by this report.
	Interval sim.Time
	// LossRate is the fraction of media packets lost in the interval.
	LossRate float64
	// QueueDelay is the mean one-way queueing delay observed.
	QueueDelay sim.Time
	// DelayGradient is the change in queueing delay across the interval,
	// in milliseconds of delay per second of time (the signal GCC's
	// overuse detector filters).
	DelayGradient float64
	// ReceiveRate is the goodput measured at the receiver in bits/sec.
	ReceiveRate int64
}

// RateController is the congestion interface for rate-based (media)
// senders: instead of a window it exposes a target bitrate.
type RateController interface {
	// Name identifies the controller.
	Name() string
	// OnFeedback ingests one receiver report.
	OnFeedback(now sim.Time, fb Feedback)
	// TargetRate returns the current target media bitrate in bits/sec.
	TargetRate() int64
}

// GCCConfig parameterizes the controller. Google Meet runs stock GCC;
// Microsoft Teams' controller is proprietary ("Unknown" in Table 1), so
// the Teams model uses a GCC variant with different trade-offs — slower
// backoff and a higher overuse threshold — which reproduces the paper's
// Obs 5: Teams holds bitrate (resolution) longer at the cost of more
// freezes and lower FPS under contention.
type GCCConfig struct {
	Label string
	// MinRate/MaxRate bound the target bitrate (bits/sec). Table 1 caps:
	// Meet 1.5 Mbps, Teams 2.6 Mbps.
	MinRate, MaxRate int64
	// InitialRate is the starting bitrate.
	InitialRate int64
	// OveruseThreshold is the delay-gradient threshold (ms/s) above which
	// the detector signals overuse.
	OveruseThreshold float64
	// QueueDelayCeiling additionally signals overuse when the absolute
	// queueing delay exceeds it (GCC implementations bound delay too).
	QueueDelayCeiling sim.Time
	// IncreaseFactor is the multiplicative increase per second when the
	// path is underused (GCC uses ≈1.08).
	IncreaseFactor float64
	// DecreaseFactor scales the measured receive rate on overuse (≈0.85).
	DecreaseFactor float64
	// LossDecreaseAt is the loss rate beyond which the loss-based branch
	// cuts the rate (GCC uses 0.10).
	LossDecreaseAt float64
}

// MeetGCC returns Google Meet's controller configuration.
func MeetGCC() GCCConfig {
	return GCCConfig{
		Label:             "gcc/meet",
		MinRate:           150_000,
		MaxRate:           1_500_000,
		InitialRate:       600_000,
		OveruseThreshold:  8,
		QueueDelayCeiling: 60 * sim.Millisecond,
		IncreaseFactor:    1.08,
		DecreaseFactor:    0.85,
		LossDecreaseAt:    0.10,
	}
}

// TeamsController returns the Teams-like hybrid variant.
func TeamsController() GCCConfig {
	return GCCConfig{
		Label:             "hybrid/teams",
		MinRate:           200_000,
		MaxRate:           2_600_000,
		InitialRate:       800_000,
		OveruseThreshold:  20,                    // tolerates more delay growth
		QueueDelayCeiling: 150 * sim.Millisecond, // holds rate under deep queues
		IncreaseFactor:    1.12,                  // ramps back faster
		DecreaseFactor:    0.90,                  // cuts less on overuse
		LossDecreaseAt:    0.06,                  // but reacts to loss sooner
	}
}

// gccState is the overuse state machine state.
type gccState int

const (
	gccIncrease gccState = iota
	gccHold
	gccDecrease
)

// GCCAlg implements Google Congestion Control (Carlucci et al., "Analysis
// and Design of the Google Congestion Control for WebRTC"): a delay-based
// controller whose overuse detector compares the filtered queueing-delay
// gradient against a threshold, combined with a loss-based bound.
type GCCAlg struct {
	cfg   GCCConfig
	state gccState
	rate  int64
	// filtered delay gradient (simple EWMA stands in for the Kalman
	// filter in the reference implementation).
	gradient float64
	// lossEWMA smooths per-report loss rates; a single dropped frame in a
	// 100 ms report would otherwise read as ~30% loss and freeze the
	// rate ladder.
	lossEWMA float64
	// delayWindow holds recent queue-delay reports; its minimum is the
	// adaptive baseline. GCC's overuse detector adapts its threshold so
	// that a *standing* queue built by a competing buffer-filling flow is
	// treated as the new floor — without this the controller starves
	// against loss-based cross traffic (the well-known GCC threshold
	// adaptation), and the paper's §5.1 observation that RTC holds its
	// bitrate at 50 Mbps (suffering only delay) would not reproduce.
	delayWindow []sim.Time
}

// NewGCC returns a controller with the given configuration.
func NewGCC(cfg GCCConfig) *GCCAlg {
	return &GCCAlg{cfg: cfg, rate: cfg.InitialRate}
}

// Name implements RateController.
func (g *GCCAlg) Name() string { return g.cfg.Label }

// TargetRate implements RateController.
func (g *GCCAlg) TargetRate() int64 { return g.rate }

// OnFeedback implements RateController.
func (g *GCCAlg) OnFeedback(now sim.Time, fb Feedback) {
	g.gradient = 0.6*g.gradient + 0.4*fb.DelayGradient

	// Adaptive baseline: the minimum queue delay over the recent window
	// is what the path imposes regardless of our rate; only delay we add
	// *above* it signals overuse.
	g.delayWindow = append(g.delayWindow, fb.QueueDelay)
	if len(g.delayWindow) > 50 {
		g.delayWindow = g.delayWindow[len(g.delayWindow)-50:]
	}
	baseline := g.delayWindow[0]
	for _, d := range g.delayWindow {
		if d < baseline {
			baseline = d
		}
	}
	excess := fb.QueueDelay - baseline

	// A rising gradient only signals overuse when a standing queue has
	// actually formed; otherwise serialization jitter on an idle link
	// (amplified by the per-second scaling) would trip the detector.
	const queueFloor = 5 * sim.Millisecond
	overused := (g.gradient > g.cfg.OveruseThreshold && excess > queueFloor) ||
		excess > g.cfg.QueueDelayCeiling
	underused := g.gradient < -g.cfg.OveruseThreshold

	// Delay-based branch.
	switch {
	case overused:
		g.state = gccDecrease
	case underused:
		g.state = gccHold
	default:
		g.state = gccIncrease
	}

	delayRate := g.rate
	switch g.state {
	case gccIncrease:
		per := fb.Interval.Seconds()
		factor := 1 + (g.cfg.IncreaseFactor-1)*per
		delayRate = int64(float64(g.rate) * factor)
	case gccDecrease:
		base := fb.ReceiveRate
		if base == 0 || base > g.rate {
			base = g.rate
		}
		delayRate = int64(g.cfg.DecreaseFactor * float64(base))
	}

	// Loss-based branch (RFC 8698-style): heavy loss cuts the rate,
	// moderate loss holds, low loss permits growth. Decisions use a
	// smoothed loss rate.
	g.lossEWMA = 0.7*g.lossEWMA + 0.3*fb.LossRate
	lossRate := g.rate
	switch {
	case g.lossEWMA > g.cfg.LossDecreaseAt:
		lossRate = int64(float64(g.rate) * (1 - 0.5*g.lossEWMA))
	case g.lossEWMA > 0.02:
		// hold
	default:
		lossRate = maxInt64(lossRate, delayRate)
	}

	g.rate = minInt64(delayRate, lossRate)
	if g.rate < g.cfg.MinRate {
		g.rate = g.cfg.MinRate
	}
	if g.rate > g.cfg.MaxRate {
		g.rate = g.cfg.MaxRate
	}
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
