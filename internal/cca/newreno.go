package cca

import "prudentia/internal/sim"

// NewRenoAlg implements TCP NewReno congestion control (RFC 5681/6582):
// slow start to ssthresh, additive increase of one segment per RTT in
// congestion avoidance, and a halving of the window on each congestion
// event. Netflix's CDN servers run NewReno (Table 1), as does the
// iPerf (Reno) baseline.
type NewRenoAlg struct {
	cfg      Config
	cwnd     float64 // packets; fractional to express 1/cwnd growth
	ssthresh float64
}

// NewNewReno returns a NewReno controller.
func NewNewReno(cfg Config) *NewRenoAlg {
	cfg = cfg.withDefaults()
	return &NewRenoAlg{
		cfg:      cfg,
		cwnd:     float64(cfg.InitialCwnd),
		ssthresh: float64(maxInt) / 4,
	}
}

// Name implements Algorithm.
func (n *NewRenoAlg) Name() string { return "newreno" }

// OnAck implements Algorithm: slow start below ssthresh, AIMD above.
func (n *NewRenoAlg) OnAck(_ sim.Time, s AckSample) {
	if s.InRecovery {
		return // window is frozen during fast recovery
	}
	for i := 0; i < s.AckedPackets; i++ {
		if n.cwnd < n.ssthresh {
			n.cwnd++
		} else {
			n.cwnd += 1 / n.cwnd
		}
	}
}

// OnCongestionEvent implements Algorithm: multiplicative decrease by 1/2.
func (n *NewRenoAlg) OnCongestionEvent(sim.Time) {
	n.ssthresh = n.cwnd / 2
	if n.ssthresh < 2 {
		n.ssthresh = 2
	}
	n.cwnd = n.ssthresh
}

// OnPacketLoss implements Algorithm (no per-packet reaction for Reno).
func (n *NewRenoAlg) OnPacketLoss(sim.Time, int) {}

// OnTimeout implements Algorithm: collapse to one segment.
func (n *NewRenoAlg) OnTimeout(sim.Time) {
	n.ssthresh = n.cwnd / 2
	if n.ssthresh < 2 {
		n.ssthresh = 2
	}
	n.cwnd = 1
}

// OnExitRecovery implements Algorithm.
func (n *NewRenoAlg) OnExitRecovery(sim.Time) {}

// CwndPackets implements Algorithm.
func (n *NewRenoAlg) CwndPackets() int {
	if n.cwnd < 1 {
		return 1
	}
	return int(n.cwnd)
}

// PacingRate implements Algorithm: NewReno is purely ACK-clocked.
func (n *NewRenoAlg) PacingRate() int64 { return 0 }
