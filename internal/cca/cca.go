// Package cca implements the congestion control algorithms of the
// services in the Prudentia catalog (Table 1): NewReno, Cubic (standard
// and OneDrive's extended variant), BBRv1 (parameterized to mimic the
// Linux 4.15 and 5.15 trees, whose differing fairness the paper's Fig 9b
// documents), BBRv3 (deployed to Google Drive during the study, Fig 9a),
// and GCC, the delay-based controller WebRTC services use.
//
// Window-based algorithms implement Algorithm and plug into
// internal/transport flows; GCC implements RateController and drives the
// RTC media path directly.
package cca

import "prudentia/internal/sim"

// AckSample carries everything an ACK tells the congestion controller.
// The transport layer computes delivery-rate samples (per the BBR
// delivery-rate-estimation draft) so algorithms stay pure control logic.
type AckSample struct {
	// RTT is the round-trip sample from the packet that triggered this ACK.
	RTT sim.Time
	// AckedPackets is how many packets this ACK newly delivered.
	AckedPackets int
	// AckedBytes is the same in bytes.
	AckedBytes int64
	// TotalDelivered is the flow's lifetime delivered byte count.
	TotalDelivered int64
	// PacketDelivered is the sender's delivered counter when the acked
	// packet was originally sent (the per-packet snapshot BBR's
	// round-trip counting is defined over).
	PacketDelivered int64
	// DeliveryRate is the bandwidth sample in bytes/sec (0 when invalid).
	DeliveryRate int64
	// RateAppLimited marks samples taken while the application could not
	// fill the pipe; they must not raise bandwidth estimates.
	RateAppLimited bool
	// Inflight is the number of packets outstanding after this ACK.
	Inflight int
	// InRecovery reports whether the flow is in loss recovery.
	InRecovery bool
}

// Algorithm is a window-based congestion controller. Implementations are
// pure state machines: the transport calls the On* hooks and consults
// CwndPackets/PacingRate when deciding to transmit.
type Algorithm interface {
	// Name identifies the algorithm (used in reports and traces).
	Name() string
	// OnAck processes one acknowledgement.
	OnAck(now sim.Time, s AckSample)
	// OnCongestionEvent fires once per loss-recovery episode (the
	// classic "multiplicative decrease once per window" semantics).
	OnCongestionEvent(now sim.Time)
	// OnPacketLoss fires for every packet marked lost (BBRv3 and loss
	// accounting use it; Reno/Cubic act only on OnCongestionEvent).
	OnPacketLoss(now sim.Time, lost int)
	// OnTimeout fires when the retransmission timer expires.
	OnTimeout(now sim.Time)
	// OnExitRecovery fires when loss recovery completes.
	OnExitRecovery(now sim.Time)
	// CwndPackets is the current congestion window in packets.
	CwndPackets() int
	// PacingRate is the sending rate in bytes/sec; zero means the flow is
	// purely ACK-clocked (classic loss-based stacks).
	PacingRate() int64
}

// Config carries transport parameters shared by all algorithms.
type Config struct {
	// MSS is the segment size in bytes (wire size of a full data packet).
	MSS int
	// InitialCwnd is the initial window in packets (default 10, per
	// RFC 6928-era stacks).
	InitialCwnd int
}

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1500
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	return c
}

// maxInt is a saturation bound for window arithmetic.
const maxInt = int(^uint(0) >> 1)
