package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// HistogramSnapshot is one histogram's frozen state. Counts has one
// entry per bound plus a final overflow (+Inf) bucket; entries are
// per-bucket (non-cumulative) — the Prometheus writer accumulates.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a registry's frozen state, serializable as JSON and
// Prometheus text exposition format.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// StripWallClock returns a copy of the snapshot without wall-clock
// metrics — by convention every nondeterministic (timing-of-this-host)
// metric carries "wall" in its name. What remains is a pure function of
// the seeded work performed, so it must be identical across reruns and
// worker counts; the determinism tests compare exactly this.
func (s Snapshot) StripWallClock() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for k, v := range s.Counters {
		if !strings.Contains(k, "wall") {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if !strings.Contains(k, "wall") {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if !strings.Contains(k, "wall") {
			out.Histograms[k] = v
		}
	}
	return out
}

// WriteJSON emits the snapshot as indented JSON (map keys are sorted by
// encoding/json, so the output is deterministic).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// baseName strips an optional {label="value"} suffix from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName separates a metric name into its base and the inner label
// list ("" when unlabeled): `h{route="x"}` → `h`, `route="x"`.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// histSample renders one histogram sample name: the suffix goes on the
// base name and extra labels merge with any the metric already carries,
// so labeled histograms expose `base_bucket{route="x",le="1"}` rather
// than the malformed `base{route="x"}_bucket{le="1"}`.
func histSample(name, suffix, extraLabel string) string {
	base, labels := splitName(name)
	switch {
	case labels == "" && extraLabel == "":
		return base + suffix
	case labels == "":
		return base + suffix + "{" + extraLabel + "}"
	case extraLabel == "":
		return base + suffix + "{" + labels + "}"
	}
	return base + suffix + "{" + labels + "," + extraLabel + "}"
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (version 0.0.4), with metric families in sorted order. Names
// may carry a literal {label="value"} suffix, emitted verbatim; TYPE
// headers are written once per family.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	writeType := func(name, kind string) error {
		base := baseName(name)
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := writeType(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := writeType(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writeType(name, "histogram"); err != nil {
			return err
		}
		h := s.Histograms[name]
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmtFloat(h.Bounds[i])
			}
			sample := histSample(name, "_bucket", fmt.Sprintf("le=%q", le))
			if _, err := fmt.Fprintf(w, "%s %d\n", sample, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
			histSample(name, "_sum", ""), fmtFloat(h.Sum),
			histSample(name, "_count", ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two snapshots carry identical metric state.
func (s Snapshot) Equal(o Snapshot) bool {
	a, err1 := json.Marshal(s)
	b, err2 := json.Marshal(o)
	return err1 == nil && err2 == nil && string(a) == string(b)
}
