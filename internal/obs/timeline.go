package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// TimelineEvent is one line in the per-cycle JSONL timeline: what the
// watchdog was doing, when (wall clock), and to which piece of work. The
// schema is additive — consumers must ignore unknown fields — and is
// pinned by the round-trip test in timeline_test.go.
type TimelineEvent struct {
	// WallMs is the wall-clock timestamp in Unix milliseconds; Emit
	// stamps it when zero.
	WallMs int64 `json:"wall_ms"`
	// Kind labels the event: cycle_start, setting_start, calibration_done,
	// trial_start, trial_ok, trial_fail, trial_discard, trial_corrupt,
	// pair_done, pair_skipped, checkpoint, journal_recovered,
	// breaker_open, breaker_halfopen, breaker_close, breaker_probe,
	// cycle_end.
	Kind string `json:"kind"`
	// Cycle is the 1-based watchdog cycle number.
	Cycle int `json:"cycle,omitempty"`
	// Setting is the network-setting index within the cycle.
	Setting int `json:"setting,omitempty"`
	// Pair names the experiment ("A vs B", or "A (solo)" for calibration).
	Pair string `json:"pair,omitempty"`
	// Seed is the trial seed (reproduces the trial exactly).
	Seed uint64 `json:"seed,omitempty"`
	// Attempt is the per-experiment attempt index the seed derives from.
	Attempt int `json:"attempt,omitempty"`
	// SimSeconds is the trial's simulated duration (trial_* events).
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	// WallSeconds is how long the trial took on this host.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Detail carries the failure message, quarantine reason, etc.
	Detail string `json:"detail,omitempty"`
}

// Timeline appends TimelineEvents to a writer as JSONL. It is safe for
// concurrent use (worker goroutines emit trial events live, which is the
// point: a crashed or wedged cycle leaves a readable record of exactly
// how far it got). A nil *Timeline is a no-op. Events are flushed on
// every emit so the tail survives a crash.
type Timeline struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewTimeline wraps an io.Writer as a timeline sink.
func NewTimeline(w io.Writer) *Timeline {
	return &Timeline{bw: bufio.NewWriter(w)}
}

// CreateTimeline opens (truncating) a timeline file, creating parent
// directories as needed.
func CreateTimeline(path string) (*Timeline, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: create timeline dir: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create timeline: %w", err)
	}
	t := NewTimeline(f)
	t.c = f
	return t, nil
}

// Emit appends one event, stamping WallMs if unset. Write errors are
// sticky and reported by Close; a telemetry failure must never take the
// watchdog down mid-cycle.
func (t *Timeline) Emit(ev TimelineEvent) {
	if t == nil {
		return
	}
	if ev.WallMs == 0 {
		ev.WallMs = time.Now().UnixMilli()
	}
	data, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(data); err != nil {
		t.err = err
		return
	}
	if err := t.bw.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.err = t.bw.Flush()
}

// Close flushes and closes the underlying writer, returning the first
// error encountered over the timeline's lifetime.
func (t *Timeline) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}

// ReadTimeline parses a JSONL timeline stream back into events (the
// round-trip half of the schema contract; also the programmatic way to
// post-mortem a cycle).
func ReadTimeline(r io.Reader) ([]TimelineEvent, error) {
	var out []TimelineEvent
	dec := json.NewDecoder(r)
	for {
		var ev TimelineEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: timeline line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}
