// Package obs is Prudentia's internal telemetry layer: a dependency-free,
// allocation-conscious metric registry (counters, gauges, histograms with
// fixed bucket layouts) plus the per-run artifacts a long-lived watchdog
// needs to be post-hoc debuggable — a JSONL cycle timeline and a run
// manifest. It exists because a measurement service that must run
// unattended for months (the paper's operating mode, and the premise of
// chaos experiments per Basiri et al.) is only as trustworthy as the
// steady-state signals it exposes about itself.
//
// Design rules:
//
//   - Handles, not lookups: callers resolve a *Counter/*Gauge/*Histogram
//     once at setup and hold the pointer; the hot path is a single atomic
//     add with no map access and no allocation.
//   - Nil-safe everywhere: every method works on a nil receiver as a
//     no-op, so instrumented code needs no "is telemetry on?" branches
//     and disabled telemetry costs one predictable test-and-branch.
//   - Deterministic snapshots: counter and histogram state is integer
//     (histogram sums accumulate in fixed-point microunits), so totals
//     are independent of scheduling order — two identical seeded cycles,
//     or the same cycle at different worker counts, produce identical
//     snapshots apart from explicitly wall-clock metrics (whose names
//     contain "wall"; see Snapshot.StripWallClock).
//   - No dependencies: obs imports only the standard library and is
//     imported from anywhere in the stack without cycles.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued instantaneous metric. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax raises the gauge to v if v exceeds the current value (a
// high-water mark; safe under concurrent use).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds a process's metrics by name. Metric names follow the
// Prometheus convention (snake_case, unit-suffixed, `_total` for
// counters); an optional `{label="value"}` suffix is carried verbatim
// into the exposition. A nil *Registry hands out nil handles, which are
// themselves no-ops, so an entire instrumentation layer can be disabled
// by simply not providing a registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. The layout is fixed at first
// registration; later calls return the existing histogram regardless of
// the buckets argument.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current state with deterministic
// (sorted) iteration order in the exposition writers.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// sortedKeys returns map keys in lexicographic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
