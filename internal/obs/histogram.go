package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (cumulative counts
// are produced at exposition time, matching Prometheus semantics). The
// sum accumulates in fixed-point microunits so concurrent observation
// order cannot perturb it: integer addition is commutative where
// floating-point addition is not, which is what keeps snapshots
// byte-identical across worker counts. A nil *Histogram is a no-op.
type Histogram struct {
	bounds    []float64      // ascending upper bounds; +Inf bucket is implicit
	counts    []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count     atomic.Int64
	sumMicros atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the loop is
	// branch-predictable; a binary search would cost more in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(int64(math.Round(v * 1e6)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (microunit precision).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumMicros.Load()) / 1e6
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor — the standard layout for duration histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TrialSimSecondsBuckets is the fixed layout for per-trial simulated
// duration (quick trials are 60 s, paper trials 600 s).
func TrialSimSecondsBuckets() []float64 { return ExpBuckets(1, 2, 12) } // 1 s .. 2048 s

// TrialWallSecondsBuckets is the fixed layout for per-trial wall-clock
// duration (a quick trial simulates in milliseconds; a paper-scale trial
// under race instrumentation can take minutes).
func TrialWallSecondsBuckets() []float64 { return ExpBuckets(0.001, 4, 10) } // 1 ms .. ~262 s
