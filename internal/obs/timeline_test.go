package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestTimelineRoundTrip pins the JSONL schema: every field written by
// Emit must survive ReadTimeline unchanged.
func TestTimelineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "timeline.jsonl")
	tl, err := CreateTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	events := []TimelineEvent{
		{WallMs: 1000, Kind: "cycle_start", Cycle: 3, Detail: "2 services, 1 settings, resumed=false"},
		{WallMs: 1001, Kind: "setting_start", Cycle: 3, Setting: 1, Detail: "8 Mbps"},
		{WallMs: 1002, Kind: "calibration_done", Pair: "iPerf (Cubic)", Detail: "ok"},
		{WallMs: 1003, Kind: "trial_start", Pair: "A vs B", Seed: 12345678901234567, Attempt: 2},
		{WallMs: 1004, Kind: "trial_ok", Pair: "A vs B", Seed: 12345678901234567, Attempt: 2,
			SimSeconds: 60, WallSeconds: 0.125},
		{WallMs: 1005, Kind: "trial_fail", Pair: "A vs B", Seed: 7, Attempt: 3, Detail: "panic: injected"},
		{WallMs: 1006, Kind: "pair_done", Pair: "A vs B", Detail: "quarantined"},
		{WallMs: 1007, Kind: "checkpoint", Cycle: 3},
		{WallMs: 1008, Kind: "cycle_end", Cycle: 3, Detail: "completed"},
	}
	for _, ev := range events {
		tl.Emit(ev)
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadTimeline(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round-trip returned %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestTimelineStampsWallClock verifies Emit fills WallMs when unset.
func TestTimelineStampsWallClock(t *testing.T) {
	var b strings.Builder
	tl := NewTimeline(&b)
	tl.Emit(TimelineEvent{Kind: "trial_start"})
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimeline(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].WallMs == 0 {
		t.Fatalf("expected one wall-stamped event, got %+v", got)
	}
}

// TestTimelineNilSafe: a nil timeline must absorb emissions and Close.
func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Emit(TimelineEvent{Kind: "trial_start"})
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineConcurrentEmit: worker goroutines emit live; every line
// must still parse (no interleaved writes). Run under -race.
func TestTimelineConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.jsonl")
	tl, err := CreateTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tl.Emit(TimelineEvent{Kind: "trial_ok", Pair: "A vs B", Attempt: id*perWorker + i})
			}
		}(w)
	}
	wg.Wait()
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadTimeline(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*perWorker {
		t.Fatalf("read %d events, want %d", len(got), workers*perWorker)
	}
}

// TestManifestRoundTrip pins the manifest schema and the atomic write.
func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("prudentia_trials_completed_total").Add(9)
	m := NewManifest()
	m.Cycle = 2
	m.BaseSeed = 42
	m.Workers = 4
	m.Services = []string{"iPerf (Cubic)", "iPerf (BBR)"}
	m.ChaosEnabled = true
	m.Metrics = reg.Snapshot()

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, ManifestSchema)
	}
	if got.Cycle != 2 || got.BaseSeed != 42 || got.Workers != 4 || !got.ChaosEnabled {
		t.Fatalf("fields lost in round trip: %+v", got)
	}
	if got.GeneratedAt == "" || got.GoVersion == "" || got.GitRevision == "" {
		t.Fatalf("stamp fields empty: %+v", got)
	}
	if got.Metrics.Counters["prudentia_trials_completed_total"] != 9 {
		t.Fatalf("metric snapshot lost: %+v", got.Metrics)
	}
	// No temp droppings from the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only manifest.json in dir, found %d entries", len(entries))
	}
}
