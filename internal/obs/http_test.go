package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrape performs one GET against the metrics handler and returns the
// response for inspection.
func scrape(t *testing.T, h http.Handler) (*http.Response, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsHandlerExposition is the satellite acceptance test: a real
// HTTP round-trip through MetricsHandler must carry the Prometheus text
// content type, expose counters monotonically across two scrapes, and
// emit families in deterministic sorted order.
func TestMetricsHandlerExposition(t *testing.T) {
	reg := NewRegistry()
	ri := HTTPRoute(reg, "report")
	ri.Requests.Add(3)
	ri.CacheHits.Add(2)
	ri.NotModified.Inc()
	ri.WallLatency.Observe(0.002)
	reg.Gauge("prudentia_serve_ready").Set(1)

	h := MetricsHandler(reg)

	resp, body := scrape(t, h)
	if got := resp.Header.Get("Content-Type"); got != prometheusContentType {
		t.Errorf("Content-Type = %q, want %q", got, prometheusContentType)
	}
	for _, want := range []string{
		"# TYPE prudentia_http_requests_total counter\n",
		`prudentia_http_requests_total{route="report"} 3` + "\n",
		`prudentia_http_cache_hits_total{route="report"} 2` + "\n",
		`prudentia_http_not_modified_total{route="report"} 1` + "\n",
		"# TYPE prudentia_http_request_wall_seconds histogram\n",
		`prudentia_http_request_wall_seconds_count{route="report"}`,
		"# TYPE prudentia_serve_ready gauge\nprudentia_serve_ready 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("first scrape missing %q in:\n%s", want, body)
		}
	}

	// Monotonicity: bump between scrapes, re-scrape, counters move up and
	// only up.
	ri.Requests.Add(4)
	ri.CacheHits.Inc()
	_, body2 := scrape(t, h)
	for _, want := range []string{
		`prudentia_http_requests_total{route="report"} 7` + "\n",
		`prudentia_http_cache_hits_total{route="report"} 3` + "\n",
		`prudentia_http_not_modified_total{route="report"} 1` + "\n",
	} {
		if !strings.Contains(body2, want) {
			t.Errorf("second scrape missing %q in:\n%s", want, body2)
		}
	}

	// Deterministic ordering: scraping the same state twice must yield
	// byte-identical expositions (sorted families, no map-order leakage).
	_, a := scrape(t, h)
	_, b := scrape(t, h)
	if a != b {
		t.Errorf("same-state scrapes differ:\n%s\nvs\n%s", a, b)
	}
	// And every line must be sorted within its section ordering contract:
	// re-parsing the exposition finds each family's TYPE header before
	// any of its samples.
	seenSample := map[string]bool{}
	for _, line := range strings.Split(a, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			if seenSample[fam] {
				t.Errorf("TYPE header for %s appears after its samples", fam)
			}
			continue
		}
		if line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		seenSample[name] = true
	}
}

// TestMetricsHandlerMethodsAndNil covers the edges: HEAD returns headers
// only, non-GET is rejected with Allow, and a nil registry serves an
// empty but well-formed exposition.
func TestMetricsHandlerMethodsAndNil(t *testing.T) {
	srv := httptest.NewServer(MetricsHandler(NewRegistry()))
	defer srv.Close()

	resp, err := http.Head(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != prometheusContentType {
		t.Errorf("HEAD = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	resp, err = http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != "GET, HEAD" {
		t.Errorf("Allow = %q", got)
	}

	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("nil registry scrape = %d", rec.Code)
	}
	if body := rec.Body.String(); body != "" {
		t.Errorf("nil registry body = %q, want empty", body)
	}

	// Nil-registry route handles are inert no-ops.
	ri := HTTPRoute(nil, "report")
	ri.Requests.Inc()
	ri.WallLatency.Observe(1)
	if ri.Requests.Value() != 0 {
		t.Error("nil-registry counter recorded")
	}
}
