package obs

import (
	"net/http"
)

// This file is the obs ⇄ net/http bridge the serving daemon uses: a
// /metrics handler over the Prometheus text writer, and per-route
// instrument handles following the package's resolve-once convention so
// the request hot path touches no maps and allocates nothing.

// prometheusContentType is the text exposition format version emitted by
// Snapshot.WritePrometheus.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves reg's live state in the Prometheus text
// exposition format. Each request takes a fresh snapshot, so consecutive
// scrapes observe monotonically non-decreasing counters. A nil registry
// serves an empty (but well-formed) exposition.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", prometheusContentType)
		if r.Method == http.MethodHead {
			return
		}
		_ = reg.Snapshot().WritePrometheus(w)
	})
}

// RouteInstruments are one route's resolved handles: requests served,
// cache activity, and wall latency. All fields are nil-safe, so a route
// constructed without a registry records nothing at zero branching cost.
type RouteInstruments struct {
	// Requests counts every request that reached the route handler.
	Requests *Counter
	// CacheHits counts responses served from the precomputed per-cycle
	// artifact cache (200 with cached bytes).
	CacheHits *Counter
	// NotModified counts conditional requests answered 304 via ETag
	// revalidation (the cheapest possible hit).
	NotModified *Counter
	// Misses counts requests the cache could not answer (no completed
	// cycle yet, or an evicted historical cycle).
	Misses *Counter
	// WallLatency observes per-request handler wall time in seconds. The
	// name carries "wall" per the package convention: scrape bytes are
	// deterministic only after Snapshot.StripWallClock.
	WallLatency *Histogram
}

// HTTPRequestWallBuckets is the fixed layout for request-latency
// histograms: cached-artifact hits are microseconds, a cold heatmap
// render tops out well under a second.
func HTTPRequestWallBuckets() []float64 { return ExpBuckets(0.0001, 4, 8) } // 100 µs .. ~1.6 s

// HTTPRoute resolves the instrument handles for one named route. Metric
// names follow prudentia_http_* with a literal {route="..."} label
// suffix, which WritePrometheus emits verbatim under a single TYPE
// header per family. Resolve once at mux construction; never per
// request.
func HTTPRoute(reg *Registry, route string) RouteInstruments {
	if reg == nil {
		return RouteInstruments{}
	}
	label := `{route="` + route + `"}`
	return RouteInstruments{
		Requests:    reg.Counter("prudentia_http_requests_total" + label),
		CacheHits:   reg.Counter("prudentia_http_cache_hits_total" + label),
		NotModified: reg.Counter("prudentia_http_not_modified_total" + label),
		Misses:      reg.Counter("prudentia_http_cache_misses_total" + label),
		WallLatency: reg.Histogram("prudentia_http_request_wall_seconds"+label, HTTPRequestWallBuckets()),
	}
}
