package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every handle method on nil receivers and a nil
// registry — the contract that lets instrumented code run uninstrumented
// with zero branches at the call sites.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total")
	g := reg.Gauge("x")
	h := reg.Histogram("x_seconds", ExpBuckets(1, 2, 4))
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g.Set(3)
	g.SetMax(4)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %g", g.Value())
	}
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestCounterAndGaugeSemantics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	c.Inc()
	c.Add(10)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 11 {
		t.Fatalf("counter = %d, want 11", got)
	}
	if reg.Counter("c_total") != c {
		t.Fatal("second lookup must return the same handle")
	}

	g := reg.Gauge("g")
	g.Set(2.5)
	g.SetMax(1.0) // below current: no change
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	g.SetMax(7.25)
	if got := g.Value(); got != 7.25 {
		t.Fatalf("gauge = %g, want 7.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["h_seconds"]
	// NaN is dropped; 0.5 and 1 land in le=1, 1.5 in le=2, 3 in le=4,
	// 100 in the overflow bucket.
	want := []int64{2, 1, 1, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if got, wantSum := s.Sum, 106.0; math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("degenerate layouts must return nil")
	}
}

// TestRegistryConcurrency hammers shared handles from many goroutines;
// run under -race this doubles as the data-race proof for the live
// worker-pool instrumentation path.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Resolve handles inside the goroutine too: first-use
			// registration must also be safe under contention.
			c := reg.Counter("shared_total")
			g := reg.Gauge("high_water")
			h := reg.Histogram("lat_seconds", ExpBuckets(0.001, 10, 6))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(float64(id*perWorker + i))
				h.Observe(float64(i) * 0.001)
				if i%100 == 0 {
					reg.Snapshot() // snapshots race against writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters["shared_total"]; got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauges["high_water"]; got != float64(workers*perWorker-1) {
		t.Fatalf("gauge high water = %g, want %d", got, workers*perWorker-1)
	}
	if got := s.Histograms["lat_seconds"].Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestStripWallClock(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("prudentia_trials_started_total").Inc()
	reg.Gauge("prudentia_pool_busy_wall_fraction").Set(0.5)
	reg.Histogram("prudentia_trial_wall_seconds", TrialWallSecondsBuckets()).Observe(0.1)
	reg.Histogram("prudentia_trial_sim_seconds", TrialSimSecondsBuckets()).Observe(60)
	s := reg.Snapshot().StripWallClock()
	if _, ok := s.Gauges["prudentia_pool_busy_wall_fraction"]; ok {
		t.Fatal("wall gauge survived StripWallClock")
	}
	if _, ok := s.Histograms["prudentia_trial_wall_seconds"]; ok {
		t.Fatal("wall histogram survived StripWallClock")
	}
	if _, ok := s.Counters["prudentia_trials_started_total"]; !ok {
		t.Fatal("deterministic counter dropped by StripWallClock")
	}
	if _, ok := s.Histograms["prudentia_trial_sim_seconds"]; !ok {
		t.Fatal("deterministic histogram dropped by StripWallClock")
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`prudentia_chaos_episodes_total{kind="flap"}`).Add(3)
	reg.Counter(`prudentia_chaos_episodes_total{kind="sag"}`).Add(1)
	reg.Gauge("prudentia_pool_workers").Set(8)
	h := reg.Histogram("prudentia_trial_sim_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE prudentia_chaos_episodes_total counter\n",
		`prudentia_chaos_episodes_total{kind="flap"} 3`,
		`prudentia_chaos_episodes_total{kind="sag"} 1`,
		"# TYPE prudentia_pool_workers gauge\n",
		"prudentia_pool_workers 8\n",
		"# TYPE prudentia_trial_sim_seconds histogram\n",
		`prudentia_trial_sim_seconds_bucket{le="1"} 1`,
		`prudentia_trial_sim_seconds_bucket{le="2"} 2`,
		`prudentia_trial_sim_seconds_bucket{le="+Inf"} 3`,
		"prudentia_trial_sim_seconds_sum 11\n",
		"prudentia_trial_sim_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The labeled family must get exactly one TYPE line.
	if got := strings.Count(out, "# TYPE prudentia_chaos_episodes_total"); got != 1 {
		t.Fatalf("labeled family has %d TYPE lines, want 1:\n%s", got, out)
	}
}

func TestSnapshotEqualAndJSON(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("a_total").Add(2)
		reg.Gauge("b").Set(1.5)
		reg.Histogram("c_seconds", []float64{1}).Observe(0.5)
		return reg
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	if !s1.Equal(s2) {
		t.Fatal("identical registries must produce equal snapshots")
	}
	var b strings.Builder
	if err := s1.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a_total": 2`, `"b": 1.5`, `"c_seconds"`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("JSON exposition missing %q:\n%s", want, b.String())
		}
	}
	build2 := build()
	build2.Counter("a_total").Inc()
	if s1.Equal(build2.Snapshot()) {
		t.Fatal("diverged registries must not compare equal")
	}
}
