package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema identifies the manifest format; bump on breaking change.
const ManifestSchema = "prudentia.manifest/1"

// Manifest is the post-hoc debugging record a completed (or interrupted)
// cycle leaves behind: enough to re-run it exactly (seed, settings,
// catalog, revision) plus the full metric snapshot to reconcile against
// the published report. GeneratedAt and the "wall" metrics inside
// Metrics are the only fields that vary between identical seeded runs.
type Manifest struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GitRevision string `json:"git_revision"`
	GoVersion   string `json:"go_version"`

	Cycle    int      `json:"cycle"`
	BaseSeed uint64   `json:"base_seed"`
	Workers  int      `json:"workers"`
	Services []string `json:"services"`
	// Settings carries the caller's network-setting configs verbatim
	// (obs stays dependency-free, so the concrete type lives upstream).
	Settings     any  `json:"settings"`
	ChaosEnabled bool `json:"chaos_enabled"`
	// AdaptiveEnabled records whether the run used adaptive trial
	// budgets (omitted on fixed-budget runs so their manifests are
	// unchanged byte for byte).
	AdaptiveEnabled bool `json:"adaptive_enabled,omitempty"`
	// StatsMode records how per-pair statistics were accumulated:
	// "sketch" when mergeable quantile sketches replaced the raw trial
	// ledger, empty on exact-sample runs (so their manifests are
	// unchanged byte for byte).
	StatsMode   string `json:"stats_mode,omitempty"`
	Interrupted bool   `json:"interrupted"`

	// Breakers is the per-service circuit-breaker state at cycle end
	// (empty when the supervision layer is disabled or all healthy
	// services stayed scoreless).
	Breakers []BreakerInfo `json:"breakers,omitempty"`
	// Journal summarizes the cycle's write-ahead trial journal, when one
	// was enabled.
	Journal *JournalInfo `json:"journal,omitempty"`

	Metrics Snapshot `json:"metrics"`
}

// BreakerInfo is one service's circuit-breaker state, as carried in the
// manifest and in cycle checkpoints (obs stays dependency-free, so the
// breaker implementation lives upstream in core).
type BreakerInfo struct {
	Service string `json:"service"`
	// State is "closed", "half-open", or "open".
	State string `json:"state"`
	// Score is the accumulated health penalty; closed breakers trip
	// open at the configured threshold.
	Score float64 `json:"score"`
}

// JournalInfo summarizes a cycle's write-ahead trial journal.
type JournalInfo struct {
	Path string `json:"path"`
	// Records/Bytes count what this process appended.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Replayed counts attempts served from the recovered journal
	// instead of being re-simulated.
	Replayed int64 `json:"replayed"`
	// Recovered counts intact records found on disk at open.
	Recovered int64 `json:"recovered"`
	// TornBytes is how much torn tail recovery truncated.
	TornBytes int64 `json:"torn_bytes,omitempty"`
}

// NewManifest stamps schema, time, toolchain, and VCS revision.
func NewManifest() Manifest {
	return Manifest{
		Schema:      ManifestSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitRevision: GitRevision(),
		GoVersion:   runtime.Version(),
	}
}

// GitRevision returns the VCS revision baked into the binary (requires a
// -buildvcs build; "unknown" otherwise, e.g. under plain `go test`). A
// locally modified tree is marked with a "+dirty" suffix.
func GitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// Write stores the manifest atomically (temp file + rename), so a crash
// mid-write never leaves a truncated manifest next to a good timeline.
func (m Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".prudentia-manifest-*")
	if err != nil {
		return fmt.Errorf("obs: manifest temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: close manifest: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: rename manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a manifest written by Write.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	return m, nil
}
