package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"prudentia/internal/obs"
)

// buildMux wires every route once; all per-route state (instrument
// handles, artifact selectors) is resolved here, never per request.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/report", s.artifactHandler(s.mReport, func(c *cycleArtifacts) *artifact { return &c.report }))
	mux.HandleFunc("/api/v1/report.txt", s.artifactHandler(s.mReportText, func(c *cycleArtifacts) *artifact { return &c.reportText }))
	mux.HandleFunc("/api/v1/heatmap", s.artifactHandler(s.mHeatmap, func(c *cycleArtifacts) *artifact { return &c.heatmap }))
	mux.HandleFunc("/api/v1/faults", s.artifactHandler(s.mFaults, func(c *cycleArtifacts) *artifact { return &c.faults }))
	mux.HandleFunc("/api/v1/cycles", s.indexHandler())
	mux.HandleFunc("/api/v1/submissions", s.submissionsHandler())
	mux.Handle("/metrics", obs.MetricsHandler(s.cfg.Registry))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			// Shutdown has begun: the listener still accepts (for
			// DrainGrace) but new traffic should go elsewhere.
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		if s.cache.Load() == nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "no completed cycle yet\n")
			return
		}
		io.WriteString(w, "ready\n")
	})
	s.mux = mux
}

// artifactHandler serves one precomputed per-cycle artifact. The
// latest-cycle fast path (no query string) performs zero allocations:
// one atomic load, three precomputed header-slice assignments, one
// string compare for ETag revalidation, one body write. ?cycle=N takes
// the slow path through the history ring.
func (s *Server) artifactHandler(ri obs.RouteInstruments, pick func(*cycleArtifacts) *artifact) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri.Requests.Inc()
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		c := s.cache.Load()
		var a *artifact
		if c != nil {
			if r.URL.RawQuery == "" {
				a = pick(c.latest)
			} else if ca := s.historical(c, r.URL.RawQuery); ca != nil {
				a = pick(ca)
			}
		}
		if a == nil {
			ri.Misses.Inc()
			http.Error(w, "no such completed cycle", http.StatusServiceUnavailable)
			return
		}
		h := w.Header()
		h["Etag"] = a.etagV
		h["Cache-Control"] = a.cctl
		h["Content-Type"] = a.ctype
		c.setStaleHeaders(h)
		if r.Header.Get("If-None-Match") == a.etag {
			ri.NotModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			ri.WallLatency.Observe(time.Since(start).Seconds())
			return
		}
		ri.CacheHits.Inc()
		h["Content-Length"] = a.clen
		w.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			w.Write(a.body)
		}
		ri.WallLatency.Observe(time.Since(start).Seconds())
	}
}

// historical resolves a ?cycle=N query against the retained ring
// (allocation cost is fine here — it is the explicitly non-hot path).
func (s *Server) historical(c *cycleCache, rawQuery string) *cycleArtifacts {
	q, err := parseCycleQuery(rawQuery)
	if err != nil {
		return nil
	}
	return c.byCycle(q)
}

// parseCycleQuery accepts exactly "cycle=N".
func parseCycleQuery(rawQuery string) (int, error) {
	const prefix = "cycle="
	if len(rawQuery) <= len(prefix) || rawQuery[:len(prefix)] != prefix {
		return 0, fmt.Errorf("serve: unsupported query %q", rawQuery)
	}
	return strconv.Atoi(rawQuery[len(prefix):])
}

// indexHandler serves the retained-cycles index (same caching protocol
// as the artifacts; the index is itself a per-publish artifact).
func (s *Server) indexHandler() http.HandlerFunc {
	ri := s.mCycles
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri.Requests.Inc()
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		c := s.cache.Load()
		if c == nil {
			ri.Misses.Inc()
			http.Error(w, "no completed cycle yet", http.StatusServiceUnavailable)
			return
		}
		a := &c.index
		h := w.Header()
		h["Etag"] = a.etagV
		h["Cache-Control"] = a.cctl
		h["Content-Type"] = a.ctype
		c.setStaleHeaders(h)
		if r.Header.Get("If-None-Match") == a.etag {
			ri.NotModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			ri.WallLatency.Observe(time.Since(start).Seconds())
			return
		}
		ri.CacheHits.Inc()
		h["Content-Length"] = a.clen
		w.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			w.Write(a.body)
		}
		ri.WallLatency.Observe(time.Since(start).Seconds())
	}
}

// submissionRequest is the POST /api/v1/submissions body.
type submissionRequest struct {
	// URL is the page to model and admit into future cycles.
	URL string `json:"url"`
	// AccessCode must match one of the engine's published codes
	// (Appendix A); it is verified when the submission is applied at the
	// next cycle boundary, not at enqueue time.
	AccessCode string `json:"access_code"`
	// Tenant identifies the submitting party for budgeting; empty means
	// "anonymous" (all anonymous submitters share one bucket).
	Tenant string `json:"tenant"`
}

// submissionsHandler queues tenant submissions for the next cycle
// boundary, enforcing per-tenant token budgets and tenant circuit
// breakers.
func (s *Server) submissionsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req submissionRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
		if err := dec.Decode(&req); err != nil {
			s.subsDenied.Inc()
			http.Error(w, "malformed submission body", http.StatusBadRequest)
			return
		}
		if req.URL == "" {
			s.subsDenied.Inc()
			http.Error(w, "submission requires a url", http.StatusBadRequest)
			return
		}
		tenant := req.Tenant
		if tenant == "" {
			tenant = "anonymous"
		}
		verdict, pos := s.tenants.admit(tenant, req.URL, req.AccessCode)
		w.Header().Set("Content-Type", "application/json")
		switch verdict {
		case admitQueued:
			s.subsAccepted.Inc()
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, "{\n  \"status\": \"queued\",\n  \"position\": %d,\n  \"applies_after_cycle\": %d\n}\n", pos, s.Latest())
		case admitSuspended:
			s.subsDenied.Inc()
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\n  \"status\": \"suspended\",\n  \"error\": \"tenant circuit breaker open; one probe admitted next cycle\"\n}\n")
		case admitExhausted:
			// Budgets refill at the next cycle boundary, so that is the
			// honest earliest retry time.
			s.subsDenied.Inc()
			w.Header().Set("Retry-After", s.retryAfter)
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, "{\n  \"status\": \"rate_limited\",\n  \"error\": \"per-cycle submission budget exhausted\"\n}\n")
		case admitQueueFull:
			s.subsDenied.Inc()
			w.Header().Set("Retry-After", s.retryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\n  \"status\": \"queue_full\",\n  \"error\": \"submission queue at capacity\"\n}\n")
		case admitWALFail:
			// The durable accept record could not be written; a 202
			// without it would promise durability the daemon cannot
			// deliver. Compaction at the next cycle boundary rewrites the
			// WAL and usually clears the degradation.
			s.subsDenied.Inc()
			w.Header().Set("Retry-After", s.retryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\n  \"status\": \"persistence_unavailable\",\n  \"error\": \"submission store cannot accept durable writes; retry after the next cycle\"\n}\n")
		}
	}
}
