package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postSubmission(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/submissions", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestSubmissionBudgets covers the token bucket: a tenant gets
// TenantBurst submissions per cycle, then 429 until the next cycle
// boundary refills; other tenants are unaffected.
func TestSubmissionBudgets(t *testing.T) {
	src := &fakeSource{}
	s := newFakeServer(t, src, func(c *Config) { c.TenantBurst = 2 })

	body := func(tenant, url string) string {
		return `{"url":"` + url + `","access_code":"c","tenant":"` + tenant + `"}`
	}
	for i := 0; i < 2; i++ {
		if rec := postSubmission(t, s, body("t1", "https://a.example/1")); rec.Code != http.StatusAccepted {
			t.Fatalf("submission %d = %d, want 202", i, rec.Code)
		}
	}
	rec := postSubmission(t, s, body("t1", "https://a.example/3"))
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("over-budget = %d (Retry-After %q), want 429", rec.Code, rec.Header().Get("Retry-After"))
	}
	// Another tenant still has budget.
	if rec := postSubmission(t, s, body("t2", "https://b.example/1")); rec.Code != http.StatusAccepted {
		t.Fatalf("t2 = %d, want 202", rec.Code)
	}

	// Cycle boundary refills the bucket.
	s.tenants.cycleEnd(1)
	if rec := postSubmission(t, s, body("t1", "https://a.example/4")); rec.Code != http.StatusAccepted {
		t.Fatalf("post-refill = %d, want 202", rec.Code)
	}
}

// TestSubmissionQueueCap bounds total pending submissions across all
// tenants.
func TestSubmissionQueueCap(t *testing.T) {
	s := newFakeServer(t, &fakeSource{}, func(c *Config) {
		c.SubmissionsMax = 2
		c.TenantBurst = 10
	})
	for i := 0; i < 2; i++ {
		if rec := postSubmission(t, s, `{"url":"https://x.example","access_code":"c","tenant":"t"}`); rec.Code != http.StatusAccepted {
			t.Fatal(rec.Code)
		}
	}
	rec := postSubmission(t, s, `{"url":"https://x.example","access_code":"c","tenant":"t"}`)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "queue_full") {
		t.Fatalf("full queue = %d %q", rec.Code, rec.Body.String())
	}
}

// TestSubmissionValidation rejects malformed bodies up front.
func TestSubmissionValidation(t *testing.T) {
	s := newFakeServer(t, &fakeSource{}, nil)
	if rec := postSubmission(t, s, `{not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed = %d", rec.Code)
	}
	if rec := postSubmission(t, s, `{"access_code":"c"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("missing url = %d", rec.Code)
	}
}

// TestTenantBreaker trips a tenant whose submissions keep failing
// (invalid access codes), suspends further submissions with 503, then
// re-admits one probe at the next cycle boundary — the canary protocol.
func TestTenantBreaker(t *testing.T) {
	src := &fakeSource{submitErr: errors.New("core: invalid access code")}
	s := newFakeServer(t, src, func(c *Config) { c.TenantBurst = 10; c.MaxCycles = 1 })

	bad := `{"url":"https://evil.example","access_code":"wrong","tenant":"mallory"}`
	// Three failed applications at +2 each cross the default threshold
	// of 5. Submissions are settled when the scheduler applies them.
	for i := 0; i < 3; i++ {
		if rec := postSubmission(t, s, bad); rec.Code != http.StatusAccepted {
			t.Fatalf("queueing submission %d = %d", i, rec.Code)
		}
	}
	s.applySubmissions(1)
	if !s.tenants.suspended("mallory") {
		t.Fatal("tenant breaker did not trip after three failed submissions")
	}
	rec := postSubmission(t, s, bad)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "suspended") {
		t.Fatalf("suspended tenant = %d %q, want 503", rec.Code, rec.Body.String())
	}

	// Cycle boundary: breaker goes half-open, one probe is admitted.
	s.tenants.cycleEnd(1)
	if rec := postSubmission(t, s, bad); rec.Code != http.StatusAccepted {
		t.Fatalf("probe submission = %d, want 202", rec.Code)
	}
	// The probe fails too → breaker re-opens.
	s.applySubmissions(1)
	if !s.tenants.suspended("mallory") {
		t.Fatal("failed probe did not re-open the breaker")
	}

	// A successful probe closes it for good.
	s.tenants.cycleEnd(1)
	src.submitErr = nil
	if rec := postSubmission(t, s, bad); rec.Code != http.StatusAccepted {
		t.Fatalf("second probe = %d", rec.Code)
	}
	s.applySubmissions(1)
	if s.tenants.suspended("mallory") {
		t.Fatal("successful probe did not close the breaker")
	}
	if rec := postSubmission(t, s, bad); rec.Code != http.StatusAccepted {
		t.Fatalf("post-recovery submission = %d, want 202", rec.Code)
	}
}

// TestSubmissionsFlowIntoCycles is the full write-side path: queued
// submissions are applied at the next cycle boundary, in arrival order.
func TestSubmissionsFlowIntoCycles(t *testing.T) {
	src := &fakeSource{}
	s := newFakeServer(t, src, func(c *Config) { c.MaxCycles = 2 })
	postSubmission(t, s, `{"url":"https://one.example","access_code":"c","tenant":"t"}`)
	postSubmission(t, s, `{"url":"https://two.example","access_code":"c","tenant":"t"}`)
	if err := s.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(src.submitted) != 2 || src.submitted[0] != "https://one.example" || src.submitted[1] != "https://two.example" {
		t.Fatalf("applied submissions = %v", src.submitted)
	}
}
