package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"prudentia/internal/journal"
	"prudentia/internal/obs"
)

// This file implements the durable submission store: a CRC-framed,
// fsynced write-ahead log (schema prudentia.subs/1, sharing the
// internal/journal frame container) that records every accepted
// submission *before* its 202 is sent. The 202 is a promise — "your URL
// will join the catalog at the next cycle boundary" — and without a
// durable record a daemon crash between acceptance and application
// silently breaks it. With the WAL, restart replays unapplied
// submissions in arrival order and re-derives the tenant token-bucket
// and submission-breaker state, so no accepted submission is lost and
// none is applied twice.
//
// Record lifecycle (all payloads are one JSON subsRecord after the
// {"schema":"prudentia.subs/1"} header frame):
//
//	accept {seq, tenant, url, code}   fsynced before the 202 goes out
//	apply  {seq, ok, cycle}           at the cycle boundary, before the
//	                                  cycle that includes the URL runs
//	cycle  {cycle}                    after the cycle's artifacts are
//	                                  durably published — the commit
//	                                  marker for every apply ≤ cycle
//	state  {next_seq, tokens, breakers}  compaction snapshot
//
// Replay rules: an accept with no apply is still pending (re-queued);
// an apply with no later cycle commit was consumed by a cycle that
// never published — its URL is re-submitted into the engine before the
// interrupted cycle resumes, so it lands in exactly the cycle its apply
// record names; an apply followed by its cycle commit is fully done.
// Compaction at each cycle boundary rewrites the file as header + state
// snapshot + the still-pending accepts, keeping the log O(pending)
// instead of O(history); accepts carried through compaction keep their
// original seqs, and seqs below the snapshot's next_seq do not
// re-consume tokens (the snapshot already accounts for them).

// subsSchema identifies the submission WAL format; bump on breaking
// change. The frame container is shared with prudentia.journal/1.
const subsSchema = "prudentia.subs/1"

const (
	subsSchemaPrefix  = "prudentia.subs/"
	subsSchemaVersion = 1
)

// subsRecord is the single wire shape for every WAL payload; Op selects
// which fields are meaningful.
type subsRecord struct {
	Op     string `json:"op"`
	Seq    uint64 `json:"seq,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	URL    string `json:"url,omitempty"`
	Code   string `json:"code,omitempty"`
	OK     bool   `json:"ok,omitempty"`
	Cycle  int    `json:"cycle,omitempty"`

	// state-snapshot fields (Op == "state").
	NextSeq  uint64            `json:"next_seq,omitempty"`
	Tokens   map[string]int    `json:"tokens,omitempty"`
	Breakers []obs.BreakerInfo `json:"breakers,omitempty"`
}

// subsHeader is the first frame of every submission WAL.
type subsHeader struct {
	Schema string `json:"schema"`
}

// subsRecovery reports what openSubsWAL found on disk: the intact
// records in append order plus how much torn tail was cut.
type subsRecovery struct {
	Records   []subsRecord
	TornBytes int64
	Truncated bool
}

// subsWAL appends framed, fsynced submission records. It has no mutex
// of its own: every call site already holds tenantTable.mu (admission)
// or runs on the scheduler goroutine with the table locked, which is
// the same external serialization BreakerSet relies on. Append errors
// are sticky — after the first failure every append reports the same
// error and the admission layer answers 503 instead of promising
// durability it cannot deliver — until a cycle-boundary compaction
// rewrites the file and clears the degradation.
type subsWAL struct {
	path string
	wrap journal.WrapFunc
	f    journal.File
	seq  uint64 // next sequence number to assign
	err  error  // sticky append error
}

// checkSubsSchema validates a recovered header, distinguishing a future
// version (hard error: a newer daemon's pending promises must not be
// silently dropped) from a foreign file.
func checkSubsSchema(path, got string) error {
	if got == subsSchema {
		return nil
	}
	if v, ok := strings.CutPrefix(got, subsSchemaPrefix); ok {
		if n, err := strconv.Atoi(v); err == nil && n > subsSchemaVersion {
			return fmt.Errorf("serve: submission wal %s is %q, newer than this build's %q (upgrade the binary or move the file aside)", path, got, subsSchema)
		}
	}
	return fmt.Errorf("serve: %s is not a %s file", path, subsSchema)
}

// createSubsWAL makes a fresh WAL at path (truncating any previous
// one), writes the header, and fsyncs file and directory. A disk
// failure anywhere in that sequence does not abort the daemon — there
// are no recovered promises at stake in a fresh file — it returns a
// degraded writer whose sticky error refuses new admissions until a
// cycle-boundary compaction rewrites the file cleanly.
func createSubsWAL(path string, wrap journal.WrapFunc) *subsWAL {
	w := &subsWAL{path: path, wrap: wrap, seq: 1}
	degrade := func(err error) *subsWAL {
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
		w.err = err
		return w
	}
	raw, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return degrade(fmt.Errorf("serve: create submission wal %s: %w", path, err))
	}
	w.f = wrapFile(raw, wrap)
	hdr, _ := json.Marshal(subsHeader{Schema: subsSchema})
	if _, err := w.f.Write(journal.Frame(hdr)); err != nil {
		return degrade(fmt.Errorf("serve: write submission wal header: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return degrade(fmt.Errorf("serve: sync submission wal header: %w", err))
	}
	syncParentDir(path)
	return w
}

func wrapFile(f *os.File, wrap journal.WrapFunc) journal.File {
	if wrap == nil {
		return f
	}
	return wrap(f)
}

// syncParentDir fsyncs path's directory so a just-created or
// just-renamed file survives power loss. Best-effort: some filesystems
// reject directory fsync, and rename is already atomic against process
// crashes.
func syncParentDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
}

// openSubsWAL recovers the WAL at path and positions a writer at its
// end. A missing file is created fresh; a torn or corrupt tail is
// truncated (fsynced) before appending resumes. The returned recovery
// carries every intact record in append order for the tenant table to
// fold into state.
//
// Failure policy: an error that loses recovered promises — the file
// exists but cannot be read, or belongs to a different/newer schema —
// is fatal, because continuing would silently break durable 202s. An
// error after the records are safely in hand (creating a fresh file,
// truncating the torn tail, repositioning the writer) degrades instead:
// the recovered state is returned intact and the writer carries a
// sticky error that refuses new admissions until compaction rewrites
// the file, so one bad sector or transient disk fault cannot wedge the
// daemon into a permanent boot loop.
func openSubsWAL(path string, wrap journal.WrapFunc) (*subsWAL, subsRecovery, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return createSubsWAL(path, wrap), subsRecovery{}, nil
	}
	if err != nil {
		return nil, subsRecovery{}, fmt.Errorf("serve: read submission wal %s: %w", path, err)
	}
	payloads, good := journal.ScanFrames(data)
	if len(payloads) == 0 {
		// Not even a whole header: nothing intact to lose.
		return createSubsWAL(path, wrap), subsRecovery{TornBytes: int64(len(data)), Truncated: len(data) > 0}, nil
	}
	var hdr subsHeader
	if err := json.Unmarshal(payloads[0], &hdr); err != nil {
		return nil, subsRecovery{}, fmt.Errorf("serve: %s is not a %s file", path, subsSchema)
	}
	if err := checkSubsSchema(path, hdr.Schema); err != nil {
		return nil, subsRecovery{}, err
	}
	rec := subsRecovery{}
	seq := uint64(1)
	off := int64(len(journal.Frame(payloads[0])))
	for _, p := range payloads[1:] {
		var r subsRecord
		if err := json.Unmarshal(p, &r); err != nil {
			// Passes CRC but does not parse: end of the trustworthy
			// prefix; cut from here.
			good = off
			break
		}
		rec.Records = append(rec.Records, r)
		off += int64(len(journal.Frame(p)))
		if r.Seq >= seq {
			seq = r.Seq + 1
		}
		if r.Op == "state" && r.NextSeq > seq {
			seq = r.NextSeq
		}
	}
	rec.TornBytes = int64(len(data)) - good
	rec.Truncated = rec.TornBytes > 0

	// The records are recovered; everything from here is repair and
	// repositioning, and failures degrade rather than abort.
	w := &subsWAL{path: path, wrap: wrap, seq: seq}
	degrade := func(err error) (*subsWAL, subsRecovery, error) {
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
		w.err = err
		return w, rec, nil
	}
	raw, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return degrade(fmt.Errorf("serve: reopen submission wal %s: %w", path, err))
	}
	w.f = wrapFile(raw, wrap)
	if rec.Truncated {
		if err := w.f.Truncate(good); err != nil {
			return degrade(fmt.Errorf("serve: truncate torn tail of %s: %w", path, err))
		}
		if err := w.f.Sync(); err != nil {
			return degrade(fmt.Errorf("serve: sync truncation of %s: %w", path, err))
		}
		syncParentDir(path)
	}
	if _, err := w.f.Seek(good, 0); err != nil {
		return degrade(fmt.Errorf("serve: seek %s: %w", path, err))
	}
	return w, rec, nil
}

// stickyErr reports the writer's current sticky append error (nil when
// healthy or when durability is disabled).
func (w *subsWAL) stickyErr() error {
	if w == nil {
		return nil
	}
	return w.err
}

// nextSeq returns the sequence number the next accept will carry.
func (w *subsWAL) nextSeq() uint64 {
	if w == nil {
		return 0
	}
	return w.seq
}

// append frames, writes, and fsyncs one record. Errors are sticky; a
// nil WAL is a no-op (durability disabled).
func (w *subsWAL) append(r subsRecord) error {
	if w == nil {
		return nil
	}
	if w.err != nil {
		return w.err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: marshal wal record: %w", err)
	}
	if _, err := w.f.Write(journal.Frame(payload)); err != nil {
		w.err = fmt.Errorf("serve: submission wal append: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("serve: submission wal sync: %w", err)
		return w.err
	}
	if r.Op == "accept" && r.Seq >= w.seq {
		w.seq = r.Seq + 1
	}
	return nil
}

// appendAccept durably records one accepted submission. Must succeed
// before the 202 is sent; the caller rolls back admission on error.
func (w *subsWAL) appendAccept(seq uint64, tenant, url, code string) error {
	return w.append(subsRecord{Op: "accept", Seq: seq, Tenant: tenant, URL: url, Code: code})
}

// appendApply records one submission's application outcome and the
// cycle that will include it. Written before that cycle runs.
func (w *subsWAL) appendApply(seq uint64, ok bool, cycle int) error {
	return w.append(subsRecord{Op: "apply", Seq: seq, OK: ok, Cycle: cycle})
}

// appendCycle writes the commit marker for cycle: every apply record
// naming a cycle ≤ this one is now fully done (its artifacts are
// durably published).
func (w *subsWAL) appendCycle(cycle int) error {
	return w.append(subsRecord{Op: "cycle", Cycle: cycle})
}

// compact atomically rewrites the WAL as header + state snapshot +
// the given still-pending accepts: temp file, fsync, rename, directory
// fsync, then the writer swaps to the new file. A successful compaction
// clears any sticky append error — the degraded writer gets a fresh
// file — while a failed one leaves the old file (and its error state)
// untouched.
func (w *subsWAL) compact(state subsRecord, pending []pendingSubmission) error {
	if w == nil {
		return nil
	}
	dir := filepath.Dir(w.path)
	rawTmp, err := os.CreateTemp(dir, ".prudentia-subs-*")
	if err != nil {
		return fmt.Errorf("serve: submission wal compact: %w", err)
	}
	tmpName := rawTmp.Name()
	tmp := wrapFile(rawTmp, w.wrap)
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var buf []byte
	hdr, _ := json.Marshal(subsHeader{Schema: subsSchema})
	buf = append(buf, journal.Frame(hdr)...)
	state.Op = "state"
	sp, err := json.Marshal(state)
	if err != nil {
		return abort(fmt.Errorf("serve: marshal wal snapshot: %w", err))
	}
	buf = append(buf, journal.Frame(sp)...)
	for _, p := range pending {
		rp, err := json.Marshal(subsRecord{Op: "accept", Seq: p.seq, Tenant: p.tenant, URL: p.url, Code: p.accessCode})
		if err != nil {
			return abort(fmt.Errorf("serve: marshal wal accept: %w", err))
		}
		buf = append(buf, journal.Frame(rp)...)
	}
	if _, err := tmp.Write(buf); err != nil {
		return abort(fmt.Errorf("serve: write compacted wal: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return abort(fmt.Errorf("serve: sync compacted wal: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: close compacted wal: %w", err)
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: commit compacted wal: %w", err)
	}
	syncParentDir(w.path)
	// Swap the live handle to the new file, positioned at its end.
	raw, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		// The compacted file is durable but we cannot append to it;
		// degrade stickily until the next compaction.
		w.err = fmt.Errorf("serve: reopen compacted wal: %w", err)
		return w.err
	}
	f := wrapFile(raw, w.wrap)
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		w.err = fmt.Errorf("serve: seek compacted wal: %w", err)
		return w.err
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f = f
	w.err = nil
	if state.NextSeq > w.seq {
		w.seq = state.NextSeq
	}
	return nil
}

// close releases the file; acknowledged appends are already durable.
func (w *subsWAL) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
