package serve

import (
	"bytes"
	"encoding/json"

	"prudentia/internal/core"
	"prudentia/internal/report"
	"prudentia/internal/trace"
)

// CyclesSchema stamps the /api/v1/cycles index document.
const CyclesSchema = "prudentia.cycles/1"

// CyclesDoc is the retained-history index served at /api/v1/cycles.
type CyclesDoc struct {
	Schema string `json:"schema"`
	// Latest is the most recent completed cycle.
	Latest int `json:"latest"`
	// Degraded is true while the daemon is serving despite cycle
	// failures: the artifacts are the last good cycle's, not the newest
	// scheduled one. Omitted (false) in healthy operation so healthy
	// output is byte-identical to pre-degraded-mode builds.
	Degraded bool `json:"degraded,omitempty"`
	// StaleCycles counts consecutive failed cycles since Latest was
	// published (0 when healthy).
	StaleCycles int `json:"stale_cycles,omitempty"`
	// Retained lists every cycle still addressable via ?cycle=N, oldest
	// first.
	Retained []CycleEntry `json:"retained"`
}

// CycleEntry is one retained cycle's index row.
type CycleEntry struct {
	Cycle int `json:"cycle"`
	// Services is the catalog size when the cycle's artifacts were
	// rendered.
	Services int `json:"services"`
	// ReportETag is the strong validator of the cycle's JSON report —
	// published here so clients can revalidate a historical cycle
	// without fetching it.
	ReportETag string `json:"report_etag"`
}

// buildCycleCache freezes a history ring (ascending, non-empty) into a
// servable cache: index document rendered, staleness headers
// precomputed. Shared by the publish path and restart rehydration, so a
// rehydrated daemon serves byte-identical artifacts and index to the
// one that originally published them.
func buildCycleCache(all []*cycleArtifacts, stale int) (*cycleCache, error) {
	latest := all[len(all)-1]
	doc := CyclesDoc{Schema: CyclesSchema, Latest: latest.cycle, Degraded: stale > 0, StaleCycles: stale}
	for _, c := range all {
		doc.Retained = append(doc.Retained, CycleEntry{
			Cycle:      c.cycle,
			Services:   c.services,
			ReportETag: c.report.etag,
		})
	}
	var idx bytes.Buffer
	enc := json.NewEncoder(&idx)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	c := &cycleCache{
		latest: latest,
		all:    all,
		index:  newArtifact(idx.Bytes(), "application/json"),
		stale:  stale,
	}
	c.precomputeStaleHeaders()
	return c, nil
}

// publish renders every artifact for a completed cycle, persists them
// to the state directory (when configured), and swaps the new
// cycleCache in atomically. Runs on the scheduler goroutine only;
// readers observe either the previous cache or the complete new one,
// never a mix. Nothing is served that is not already durable: a
// persistence failure returns before the swap, leaving the previous
// cache (and the disk) untouched.
func (s *Server) publish(cr *core.CycleResult) error {
	settings := s.cfg.Source.SettingConfigs()
	svcs := s.cfg.Source.Catalog()

	jsonBody, err := report.CycleJSON(cr, settings, svcs)
	if err != nil {
		return err
	}
	faultSummary := ""
	var faultEvents []core.FaultEvent
	if s.cfg.Ledger != nil {
		faultSummary = s.cfg.Ledger.Summary()
		faultEvents = s.cfg.Ledger.Snapshot()
	}
	text := report.ReportText(cr, settings, svcs, faultSummary)
	var faultsBody bytes.Buffer
	if err := trace.WriteFaultsJSONL(&faultsBody, faultEvents); err != nil {
		return err
	}

	ca := &cycleArtifacts{
		cycle:      cr.Cycle,
		services:   len(svcs),
		report:     newArtifact(jsonBody, "application/json"),
		reportText: newArtifact([]byte(text), "text/plain; charset=utf-8"),
		heatmap:    newArtifact(report.HeatmapHTML(cr, settings, svcs), "text/html; charset=utf-8"),
		faults:     newArtifact(faultsBody.Bytes(), "application/x-ndjson"),
	}
	if s.cfg.StateDir != "" {
		if err := saveCycleDir(s.cfg.StateDir, ca); err != nil {
			return err
		}
	}

	var all []*cycleArtifacts
	if old := s.cache.Load(); old != nil {
		all = append(all, old.all...)
	}
	all = append(all, ca)
	if len(all) > s.cfg.History {
		all = append([]*cycleArtifacts(nil), all[len(all)-s.cfg.History:]...)
	}

	cache, err := buildCycleCache(all, 0)
	if err != nil {
		return err
	}
	s.cache.Store(cache)
	s.cyclesPublished.Inc()
	s.readyGauge.Set(1)
	s.degradedGauge.Set(0)
	s.staleGauge.Set(0)
	if s.cfg.StateDir != "" {
		pruneCycleDirs(s.cfg.StateDir, all[0].cycle)
	}
	return nil
}
