package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDegradedModeServing: when cycles fail, reads never see a 5xx —
// the last good artifacts keep serving byte-identically, stamped with
// the staleness headers, the degraded flag in /api/v1/cycles, and the
// degraded metrics; a successful publish clears all of it.
func TestDegradedModeServing(t *testing.T) {
	src := &fakeSource{}
	s := newFakeServer(t, src, nil)
	if err := s.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	healthy := get(t, s.Handler(), "/api/v1/report", nil)
	if h := healthy.Header(); h.Get("Warning") != "" || h.Get("X-Prudentia-Stale-Cycles") != "" {
		t.Fatalf("healthy response carries staleness headers: %v", h)
	}

	s.enterDegraded(2, errors.New("engine outage"))

	rec := get(t, s.Handler(), "/api/v1/report", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded read = %d, want 200 (never 5xx while artifacts exist)", rec.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), healthy.Body.Bytes()) {
		t.Error("degraded mode changed the served bytes")
	}
	if e1, e2 := healthy.Header().Get("Etag"), rec.Header().Get("Etag"); e1 != e2 {
		t.Errorf("degraded mode changed the ETag: %q vs %q", e1, e2)
	}
	if w := rec.Header().Get("Warning"); w != `110 prudentia "Response is Stale"` {
		t.Errorf("Warning = %q", w)
	}
	if sc := rec.Header().Get("X-Prudentia-Stale-Cycles"); sc != "2" {
		t.Errorf("X-Prudentia-Stale-Cycles = %q, want 2", sc)
	}

	var doc CyclesDoc
	cyc := get(t, s.Handler(), "/api/v1/cycles", nil)
	if err := json.Unmarshal(cyc.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Degraded || doc.StaleCycles != 2 || doc.Latest != 1 {
		t.Errorf("degraded cycles doc = %+v", doc)
	}
	// Still ready: the daemon is serving, just stale.
	if rec := get(t, s.Handler(), "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("degraded readyz = %d, want 200", rec.Code)
	}
	metrics := get(t, s.Handler(), "/metrics", nil).Body.String()
	for _, want := range []string{"prudentia_serve_degraded 1", "prudentia_serve_stale_cycles 2", "prudentia_serve_cycle_failures_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Recovery: the next successful publish clears every signal.
	cr, err := src.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.publish(cr); err != nil {
		t.Fatal(err)
	}
	rec = get(t, s.Handler(), "/api/v1/report", nil)
	if h := rec.Header(); h.Get("Warning") != "" || h.Get("X-Prudentia-Stale-Cycles") != "" {
		t.Errorf("recovered response still stale: %v", h)
	}
	metrics = get(t, s.Handler(), "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "prudentia_serve_degraded 0") {
		t.Error("degraded gauge not cleared after recovery")
	}
}

// TestCampaignRetriesFailedCycle: a failing cycle is retried (with
// backoff) under the same cycle number until it succeeds; the campaign
// completes its budget with no gap in the numbering.
func TestCampaignRetriesFailedCycle(t *testing.T) {
	src := &fakeSource{failNext: 2}
	s := newFakeServer(t, src, func(c *Config) { c.MaxCycles = 1 })
	start := time.Now()
	if err := s.campaign(context.Background()); err != nil {
		t.Fatalf("campaign with transient failures = %v, want nil", err)
	}
	if src.failures != 2 || src.cycle != 1 {
		t.Fatalf("attempts = %d, published cycle = %d; want 2 failures then cycle 1", src.failures, src.cycle)
	}
	// Backoff before success: 100ms then 200ms (the CycleInterval<=0
	// floor doubled once).
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("retries took %v, want >= ~300ms of backoff", elapsed)
	}
	if s.Latest() != 1 {
		t.Fatalf("latest = %d, want 1", s.Latest())
	}
}

// TestCampaignStopsDuringBackoff: cancellation during the failure
// backoff exits promptly instead of waiting the full backoff.
func TestCampaignStopsDuringBackoff(t *testing.T) {
	src := &fakeSource{failNext: 1 << 30}
	s := newFakeServer(t, src, func(c *Config) {
		c.MaxCycles = 1
		c.CycleInterval = time.Hour // backoff would be hours
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.campaign(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("campaign = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("campaign did not exit during backoff")
	}
}

// TestZeroAllocDegradedPath: the staleness headers are precomputed at
// cache-build time, so degraded-mode responses still allocate nothing
// on the hot path.
func TestZeroAllocDegradedPath(t *testing.T) {
	s, _ := newPublishedServer(t, 42)
	s.enterDegraded(3, errors.New("outage"))

	req := httptest.NewRequest(http.MethodGet, "/api/v1/report", nil)
	h, pattern := s.mux.Handler(req)
	if pattern == "" {
		t.Fatal("no handler")
	}
	w := newNullResponseWriter()
	h.ServeHTTP(w, req)
	if got := w.h.Get("X-Prudentia-Stale-Cycles"); got != "3" {
		t.Fatalf("stale header = %q", got)
	}
	if n := testing.AllocsPerRun(200, func() { h.ServeHTTP(w, req) }); n != 0 {
		t.Errorf("degraded hot path allocates %.1f per request, want 0", n)
	}
}

// TestDrainReadyz: once shutdown begins, /readyz answers 503
// ("draining") while the listener is still accepting — the window load
// balancers need to stop routing before connections fail.
func TestDrainReadyz(t *testing.T) {
	src := &fakeSource{}
	s := newFakeServer(t, src, func(c *Config) {
		c.MaxCycles = 1
		c.DrainGrace = 2 * time.Second
		c.DrainTimeout = time.Second
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	// Within the drain grace the listener still accepts and readyz
	// reports 503 draining.
	sawDraining := false
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/readyz")
		if err != nil {
			break // listener closed; grace over
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining") {
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("readyz never reported 503 draining during shutdown")
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not finish draining")
	}
}
