package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"prudentia/internal/chaos"
	"prudentia/internal/journal"
)

// openWALTable builds a tenant table backed by the WAL at path,
// replaying whatever is on disk. It returns the table and the
// submissions the replay says must be re-Submit'd into the engine.
func openWALTable(t *testing.T, path string, burst, maxPending int) (*tenantTable, []pendingSubmission) {
	t.Helper()
	w, rec, err := openSubsWAL(path, nil)
	if err != nil {
		t.Fatalf("openSubsWAL: %v", err)
	}
	t.Cleanup(func() { w.close() })
	tab := newTenantTable(burst, maxPending)
	resubmit := tab.restore(rec)
	tab.attachWAL(w)
	return tab, resubmit
}

// TestSubsWALAcceptSurvivesRestart: accepted-but-unapplied submissions
// re-queue after a restart, in arrival order, with their token
// consumption intact and sequence numbers continuing where the previous
// process stopped.
func TestSubsWALAcceptSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	tab, _ := openWALTable(t, path, 3, 16)
	if v, _ := tab.admit("t1", "https://a.example", "c"); v != admitQueued {
		t.Fatalf("admit a = %v", v)
	}
	if v, _ := tab.admit("t1", "https://b.example", "c"); v != admitQueued {
		t.Fatalf("admit b = %v", v)
	}
	tab.wal.close()

	tab2, resubmit := openWALTable(t, path, 3, 16)
	if len(resubmit) != 0 {
		t.Fatalf("resubmit = %v, want none (nothing applied)", resubmit)
	}
	got := tab2.drain()
	if len(got) != 2 || got[0].url != "https://a.example" || got[1].url != "https://b.example" {
		t.Fatalf("recovered pending = %+v", got)
	}
	if got[0].seq == 0 || got[1].seq <= got[0].seq {
		t.Fatalf("seqs not monotonic: %d, %d", got[0].seq, got[1].seq)
	}
	// Two of three tokens were consumed before the restart; exactly one
	// admission remains.
	if v, _ := tab2.admit("t1", "https://c.example", "c"); v != admitQueued {
		t.Fatalf("third admit = %v, want queued", v)
	}
	if v, _ := tab2.admit("t1", "https://d.example", "c"); v != admitExhausted {
		t.Fatalf("fourth admit = %v, want exhausted", v)
	}
	// New accepts must not reuse pre-restart sequence numbers.
	p := tab2.drain()
	if len(p) != 1 || p[0].seq <= got[1].seq {
		t.Fatalf("post-restart seq = %+v, want > %d", p, got[1].seq)
	}
}

// TestSubsWALUncommittedApplyResubmits: a submission whose apply record
// names a cycle that never committed was consumed by a cycle that never
// published — replay hands it back for re-Submit so it lands in exactly
// the cycle its apply record promised.
func TestSubsWALUncommittedApplyResubmits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	tab, _ := openWALTable(t, path, 4, 16)
	tab.admit("t1", "https://a.example", "c")
	subs := tab.drain()
	tab.settle(subs[0], 1, nil) // applied into cycle 1; cycle 1 never commits
	tab.wal.close()

	tab2, resubmit := openWALTable(t, path, 4, 16)
	if len(resubmit) != 1 || resubmit[0].url != "https://a.example" {
		t.Fatalf("resubmit = %+v, want the uncommitted submission", resubmit)
	}
	if p := tab2.drain(); len(p) != 0 {
		t.Fatalf("pending = %+v, want empty (already applied)", p)
	}
}

// TestSubsWALCycleCommitCompletes: once the including cycle commits,
// the submission is fully done — not pending, not re-submitted — and
// compaction has shrunk the WAL to snapshot + nothing.
func TestSubsWALCycleCommitCompletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	tab, _ := openWALTable(t, path, 4, 16)
	tab.admit("t1", "https://a.example", "c")
	subs := tab.drain()
	tab.settle(subs[0], 1, nil)
	if err := tab.cycleEnd(1); err != nil {
		t.Fatalf("cycleEnd: %v", err)
	}
	tab.wal.close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _ := journal.ScanFrames(data)
	// header + state snapshot only: the applied submission compacted away.
	if len(payloads) != 2 {
		t.Fatalf("compacted WAL has %d frames, want 2 (header + state)", len(payloads))
	}

	_, resubmit := openWALTable(t, path, 4, 16)
	if len(resubmit) != 0 {
		t.Fatalf("resubmit = %+v, want none (cycle committed)", resubmit)
	}
}

// TestSubsWALBreakerRoundTrip: a tenant suspended by failed submissions
// stays suspended across a restart, and the canary protocol — one probe
// admitted after the next cycle boundary — continues exactly where the
// previous process left off.
func TestSubsWALBreakerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	tab, _ := openWALTable(t, path, 10, 16)
	submitErr := errors.New("core: invalid access code")
	// Three failed applies at +2 each cross the default threshold of 5.
	for i := 0; i < 3; i++ {
		tab.admit("mallory", "https://evil.example", "wrong")
		for _, sub := range tab.drain() {
			tab.settle(sub, i+1, submitErr)
		}
	}
	if !tab.suspended("mallory") {
		t.Fatal("breaker did not trip before restart")
	}
	tab.wal.close()

	// Restart mid-suspension: replay of the apply records re-trips it.
	tab2, _ := openWALTable(t, path, 10, 16)
	if !tab2.suspended("mallory") {
		t.Fatal("suspension lost across restart")
	}
	if v, _ := tab2.admit("mallory", "https://evil.example", "wrong"); v != admitSuspended {
		t.Fatalf("suspended admit = %v", v)
	}

	// Cycle boundary moves the breaker half-open (snapshotted by
	// compaction); a second restart must still admit exactly one probe.
	tab2.cycleEnd(4)
	tab2.wal.close()
	tab3, _ := openWALTable(t, path, 10, 16)
	if v, _ := tab3.admit("mallory", "https://evil.example", "right"); v != admitQueued {
		t.Fatalf("probe admit after restart = %v, want queued", v)
	}
	for _, sub := range tab3.drain() {
		tab3.settle(sub, 5, nil) // probe succeeds
	}
	if tab3.suspended("mallory") {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestSubsWALTokensAcrossManyCycles: the per-tenant bucket refills at
// every cycle boundary and the compaction snapshot carries it
// correctly, including for pending accepts carried across the boundary
// (their tokens must not be double-charged on replay).
func TestSubsWALTokensAcrossManyCycles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	tab, _ := openWALTable(t, path, 2, 64)
	for cycle := 1; cycle <= 5; cycle++ {
		if v, _ := tab.admit("t1", "https://a.example", "c"); v != admitQueued {
			t.Fatalf("cycle %d first admit = %v", cycle, v)
		}
		if v, _ := tab.admit("t1", "https://b.example", "c"); v != admitQueued {
			t.Fatalf("cycle %d second admit = %v", cycle, v)
		}
		if v, _ := tab.admit("t1", "https://c.example", "c"); v != admitExhausted {
			t.Fatalf("cycle %d over-budget admit = %v, want exhausted", cycle, v)
		}
		for _, sub := range tab.drain() {
			tab.settle(sub, cycle, nil)
		}
		if err := tab.cycleEnd(cycle); err != nil {
			t.Fatalf("cycleEnd %d: %v", cycle, err)
		}
	}
	// Leave one accept pending across the last boundary, then restart.
	tab.admit("t1", "https://carried.example", "c")
	tab.cycleEnd(6)
	tab.wal.close()

	tab2, _ := openWALTable(t, path, 2, 64)
	if p := tab2.pendingCount(); p != 1 {
		t.Fatalf("carried pending = %d, want 1", p)
	}
	// The carried accept was charged to cycle 6's bucket; after the
	// boundary refill the new cycle has the full burst of 2.
	if v, _ := tab2.admit("t1", "https://x.example", "c"); v != admitQueued {
		t.Fatalf("post-restart admit 1 = %v", v)
	}
	if v, _ := tab2.admit("t1", "https://y.example", "c"); v != admitQueued {
		t.Fatalf("post-restart admit 2 = %v", v)
	}
	if v, _ := tab2.admit("t1", "https://z.example", "c"); v != admitExhausted {
		t.Fatalf("post-restart admit 3 = %v, want exhausted", v)
	}
}

// TestSubsWALTornTailRecovers: a crash mid-append leaves a torn frame;
// reopening truncates it and keeps every record before it.
func TestSubsWALTornTailRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	tab, _ := openWALTable(t, path, 4, 16)
	tab.admit("t1", "https://a.example", "c")
	tab.wal.close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x00, 0xff, 0x13}) // torn frame: length says 255, 1 byte present
	f.Close()

	w, rec, err := openSubsWAL(path, nil)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer w.close()
	if !rec.Truncated || rec.TornBytes != 5 {
		t.Fatalf("recovery = %+v, want 5 torn bytes", rec)
	}
	if len(rec.Records) != 1 || rec.Records[0].URL != "https://a.example" {
		t.Fatalf("records = %+v", rec.Records)
	}
	// The torn bytes are gone from disk: appending and re-reading works.
	if err := w.appendAccept(w.nextSeq(), "t1", "https://b.example", "c"); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	w.close()
	_, rec2, err := openSubsWAL(path, nil)
	if err != nil || rec2.Truncated || len(rec2.Records) != 2 {
		t.Fatalf("reopen = %+v, %v", rec2, err)
	}
}

// TestSubsWALDegradedAdmit: when the durable accept record cannot be
// written (injected ENOSPC on every write), admission refuses with
// admitWALFail and leaves no token or queue side effects — a 503, not a
// broken 202 promise.
func TestSubsWALDegradedAdmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	// Create cleanly first so only appends fail, not the header.
	w0, _, err := openSubsWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	w0.close()

	plan := &chaos.DiskPlan{Seed: 11, WriteErrRate: 1}
	w, _, err := openSubsWAL(path, func(f *os.File) journal.File { return chaos.WrapFile(f, plan) })
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	tab := newTenantTable(4, 16)
	tab.attachWAL(w)
	if v, _ := tab.admit("t1", "https://a.example", "c"); v != admitWALFail {
		t.Fatalf("degraded admit = %v, want admitWALFail", v)
	}
	if n := tab.pendingCount(); n != 0 {
		t.Fatalf("pending after refused admit = %d", n)
	}
	// Token was not consumed: with a working WAL the same tenant still
	// has its full burst.
	tab.mu.Lock()
	tok, seen := tab.tokens["t1"]
	tab.mu.Unlock()
	if seen && tok != 4 {
		t.Fatalf("tokens consumed by refused admit: %d", tok)
	}
}

// TestSubsWALDegradedBootHeals: a disk fault while creating a fresh WAL
// does not abort startup (there are no recovered promises in a fresh
// file). The writer boots degraded — admissions refused with
// admitWALFail — and the first cycle-boundary compaction on a healthy
// disk rewrites the file and restores durable admission.
func TestSubsWALDegradedBootHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.wal")
	plan := &chaos.DiskPlan{Seed: 3, WriteErrRate: 1}
	w, _, err := openSubsWAL(path, func(f *os.File) journal.File { return chaos.WrapFile(f, plan) })
	if err != nil {
		t.Fatalf("degraded create must not be fatal: %v", err)
	}
	defer w.close()
	if w.stickyErr() == nil {
		t.Fatal("writer must carry the boot failure as its sticky error")
	}
	tab := newTenantTable(4, 16)
	tab.attachWAL(w)
	if v, _ := tab.admit("t1", "https://a.example", "c"); v != admitWALFail {
		t.Fatalf("admit on degraded boot = %v, want admitWALFail", v)
	}

	// Disk heals; the next cycle boundary compacts a fresh file.
	plan.WriteErrRate = 0
	if err := tab.cycleEnd(1); err != nil {
		t.Fatalf("compaction on healed disk: %v", err)
	}
	if w.stickyErr() != nil {
		t.Fatalf("sticky error survived compaction: %v", w.stickyErr())
	}
	if v, _ := tab.admit("t1", "https://a.example", "c"); v != admitQueued {
		t.Fatalf("admit after heal = %v, want admitQueued", v)
	}

	// And the healed file round-trips: a restart replays the accept.
	w.close()
	tab2, _ := openWALTable(t, path, 4, 16)
	if n := tab2.pendingCount(); n != 1 {
		t.Fatalf("pending after restart = %d, want 1", n)
	}
}

// pendingCount reports the queue depth (test helper).
func (t *tenantTable) pendingCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// FuzzSubsWALOpen: arbitrary bytes on disk must never panic the
// recovery path — they either parse to a valid WAL or fail cleanly, and
// the recovered prefix is always appendable.
func FuzzSubsWALOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	hdr := journal.Frame([]byte(`{"schema":"prudentia.subs/1"}`))
	f.Add(hdr)
	f.Add(append(append([]byte{}, hdr...), journal.Frame([]byte(`{"op":"accept","seq":1,"tenant":"t","url":"u"}`))...))
	f.Add(append(append([]byte{}, hdr...), 0xde, 0xad, 0xbe))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "subs.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, rec, err := openSubsWAL(path, nil)
		if err != nil {
			return
		}
		defer w.close()
		tab := newTenantTable(4, 16)
		tab.restore(rec)
		if err := w.appendAccept(w.nextSeq(), "t", "https://x.example", "c"); err != nil {
			t.Fatalf("append to recovered WAL: %v", err)
		}
	})
}
