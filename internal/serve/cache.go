package serve

import (
	"hash/fnv"
	"strconv"
)

// An artifact is one immutable, fully precomputed HTTP response body:
// bytes, strong ETag, and ready-made header value slices. Everything a
// request needs is materialized once at publish time so the read path
// does no hashing, no formatting, and no allocation — it assigns three
// precomputed slices into the header map, compares one string, and
// writes one byte slice.
type artifact struct {
	body []byte
	// etag is the strong validator: a quoted FNV-64a digest of body.
	// Identical cycle bytes ⇒ identical ETag, across restarts and hosts.
	etag string
	// Precomputed header values (the []string form http.Header stores),
	// assigned by key to avoid the canonicalization work and per-call
	// allocation of Header.Set.
	etagV []string
	ctype []string
	cctl  []string
	clen  []string
}

// cacheControl instructs clients to cache but revalidate: the body for
// one cycle never changes (strong ETag ⇒ cheap 304s), yet a new cycle
// may be published at any moment.
const cacheControl = "public, max-age=0, must-revalidate"

// newArtifact freezes body into a servable artifact.
func newArtifact(body []byte, contentType string) artifact {
	h := fnv.New64a()
	h.Write(body)
	etag := `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
	return artifact{
		body:  body,
		etag:  etag,
		etagV: []string{etag},
		ctype: []string{contentType},
		cctl:  []string{cacheControl},
		clen:  []string{strconv.Itoa(len(body))},
	}
}

// cycleArtifacts is every rendering of one completed cycle.
type cycleArtifacts struct {
	cycle    int
	services int // catalog size when rendered (for the cycles index)

	report     artifact // canonical JSON document (report.CycleJSON)
	reportText artifact // exact batch-mode stdout bytes (report.ReportText)
	heatmap    artifact // self-contained HTML page (report.HeatmapHTML)
	faults     artifact // cumulative fault ledger as JSONL
}

// cycleCache is the read side's entire world: the latest cycle, the
// retained history ring (ascending by cycle), and the prebuilt index
// document. It is immutable after construction — the scheduler builds a
// fresh one per cycle and swaps it in with a single atomic pointer
// store, so readers never see a partially published cycle and never
// take a lock.
type cycleCache struct {
	latest *cycleArtifacts
	all    []*cycleArtifacts
	index  artifact

	// stale counts consecutive failed cycles since latest was
	// published. While stale > 0 the daemon serves the last good
	// artifacts in degraded mode, and every response carries the
	// precomputed staleness headers below (nil when healthy, so the
	// hot path pays one nil check and nothing else).
	stale    int
	warnHdr  []string // Warning: 110 prudentia "Response is Stale"
	staleHdr []string // X-Prudentia-Stale-Cycles: <stale>
}

// precomputeStaleHeaders materializes the degraded-mode header values
// once per cache build, keeping the request path allocation-free.
func (c *cycleCache) precomputeStaleHeaders() {
	if c.stale <= 0 {
		return
	}
	c.warnHdr = []string{`110 prudentia "Response is Stale"`}
	c.staleHdr = []string{strconv.Itoa(c.stale)}
}

// setStaleHeaders assigns the staleness headers when degraded (no-op
// while healthy). h is the request's header map.
func (c *cycleCache) setStaleHeaders(h map[string][]string) {
	if c.staleHdr == nil {
		return
	}
	h["Warning"] = c.warnHdr
	h["X-Prudentia-Stale-Cycles"] = c.staleHdr
}

// byCycle finds a retained cycle by number (nil if evicted or future).
func (c *cycleCache) byCycle(n int) *cycleArtifacts {
	for _, ca := range c.all {
		if ca.cycle == n {
			return ca
		}
	}
	return nil
}
