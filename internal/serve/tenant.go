package serve

import (
	"sync"

	"prudentia/internal/core"
)

// tenantTable is the submission admission layer: a per-tenant token
// bucket (refilled at each cycle boundary) bounds how much catalog
// growth any one tenant can request per cycle, a global pending queue
// cap bounds total daemon memory, and a core.BreakerSet keyed by tenant
// ejects tenants whose submissions repeatedly fail (bad access codes,
// rejected URLs) exactly the way the watchdog ejects sick services.
//
// BreakerSet is deliberately not concurrency-safe (its call sites in
// core are single-goroutine by design); here the table's mutex is that
// external serialization — the HTTP handler and the scheduler both go
// through it.
type tenantTable struct {
	mu sync.Mutex

	burst      int // tokens granted per tenant per cycle
	maxPending int // global queue cap across all tenants

	tokens   map[string]int
	pending  []pendingSubmission
	breakers core.BreakerSet
}

// pendingSubmission is one accepted-but-not-yet-applied submission.
type pendingSubmission struct {
	tenant     string
	url        string
	accessCode string
}

// admission verdicts, mapped to HTTP statuses by the handler.
type admitResult int

const (
	admitQueued admitResult = iota
	admitSuspended
	admitExhausted
	admitQueueFull
)

func newTenantTable(burst, maxPending int) *tenantTable {
	return &tenantTable{
		burst:      burst,
		maxPending: maxPending,
		tokens:     make(map[string]int),
	}
}

// admit decides one POSTed submission. On admitQueued the submission is
// queued for the next cycle boundary and one token is consumed; every
// other verdict leaves no trace beyond the (deterministic) token and
// breaker state that produced it. Returns the queue position (1-based)
// for queued submissions.
func (t *tenantTable) admit(tenant, url, accessCode string) (admitResult, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.breakers.State(tenant) == core.BreakerOpen {
		return admitSuspended, 0
	}
	tok, seen := t.tokens[tenant]
	if !seen {
		tok = t.burst
	}
	if tok <= 0 {
		return admitExhausted, 0
	}
	if len(t.pending) >= t.maxPending {
		return admitQueueFull, 0
	}
	t.tokens[tenant] = tok - 1
	t.pending = append(t.pending, pendingSubmission{tenant: tenant, url: url, accessCode: accessCode})
	return admitQueued, len(t.pending)
}

// drain removes and returns every pending submission, in arrival order.
// The scheduler calls it once per cycle boundary.
func (t *tenantTable) drain() []pendingSubmission {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.pending
	t.pending = nil
	return out
}

// settle records one applied submission's outcome against its tenant's
// breaker. A failed Submit is worth +2 (an invalid access code trips the
// default threshold after three strikes); while half-open, the one
// admitted probe submission closes or re-opens the breaker outright.
func (t *tenantTable) settle(tenant string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.breakers.State(tenant) == core.BreakerHalfOpen {
		t.breakers.ProbeResult(tenant, err == nil)
		return
	}
	if err != nil {
		t.breakers.Penalize(tenant, 2)
	}
}

// cycleEnd refills every seen tenant's bucket, decays closed breakers,
// and moves open tenant breakers to half-open so each suspended tenant
// gets exactly one probe submission next cycle — the same canary
// protocol the watchdog applies to ejected services.
func (t *tenantTable) cycleEnd() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for tenant := range t.tokens {
		t.tokens[tenant] = t.burst
	}
	t.breakers.Decay()
	for _, tenant := range t.breakers.OpenServices() {
		t.breakers.BeginProbe(tenant)
	}
}

// suspended reports whether a tenant's breaker is open (for tests and
// status introspection).
func (t *tenantTable) suspended(tenant string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breakers.State(tenant) == core.BreakerOpen
}
