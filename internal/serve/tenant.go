package serve

import (
	"sync"

	"prudentia/internal/core"
)

// tenantTable is the submission admission layer: a per-tenant token
// bucket (refilled at each cycle boundary) bounds how much catalog
// growth any one tenant can request per cycle, a global pending queue
// cap bounds total daemon memory, and a core.BreakerSet keyed by tenant
// ejects tenants whose submissions repeatedly fail (bad access codes,
// rejected URLs) exactly the way the watchdog ejects sick services.
//
// BreakerSet is deliberately not concurrency-safe (its call sites in
// core are single-goroutine by design); here the table's mutex is that
// external serialization — the HTTP handler and the scheduler both go
// through it. The optional submission WAL (subswal.go) is serialized by
// the same mutex, which also keeps WAL record order identical to
// admission order.
type tenantTable struct {
	mu sync.Mutex

	burst      int // tokens granted per tenant per cycle
	maxPending int // global queue cap across all tenants

	tokens   map[string]int
	pending  []pendingSubmission
	breakers core.BreakerSet
	wal      *subsWAL // nil = durability disabled
}

// pendingSubmission is one accepted-but-not-yet-applied submission. seq
// is its WAL sequence number (0 when durability is disabled).
type pendingSubmission struct {
	seq        uint64
	tenant     string
	url        string
	accessCode string
}

// admission verdicts, mapped to HTTP statuses by the handler.
type admitResult int

const (
	admitQueued admitResult = iota
	admitSuspended
	admitExhausted
	admitQueueFull
	// admitWALFail: the submission passed every admission check but its
	// durable accept record could not be written. Accepting anyway would
	// promise a durability the daemon cannot deliver, so the handler
	// answers 503 and the client retries after the next cycle boundary
	// (where compaction rewrites the WAL and clears the degradation).
	admitWALFail
)

func newTenantTable(burst, maxPending int) *tenantTable {
	return &tenantTable{
		burst:      burst,
		maxPending: maxPending,
		tokens:     make(map[string]int),
	}
}

// attachWAL arms the durable submission store. Must be called before
// the server starts admitting (no lock: single-threaded setup).
func (t *tenantTable) attachWAL(w *subsWAL) { t.wal = w }

// admit decides one POSTed submission. On admitQueued the submission is
// durably logged (when a WAL is attached), queued for the next cycle
// boundary, and one token is consumed; every other verdict leaves no
// trace beyond the (deterministic) token and breaker state that
// produced it. Returns the queue position (1-based) for queued
// submissions.
func (t *tenantTable) admit(tenant, url, accessCode string) (admitResult, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.breakers.State(tenant) == core.BreakerOpen {
		return admitSuspended, 0
	}
	tok, seen := t.tokens[tenant]
	if !seen {
		tok = t.burst
	}
	if tok <= 0 {
		return admitExhausted, 0
	}
	if len(t.pending) >= t.maxPending {
		return admitQueueFull, 0
	}
	seq := t.wal.nextSeq()
	if err := t.wal.appendAccept(seq, tenant, url, accessCode); err != nil {
		// The accept record is the 202's durability promise; without it
		// the submission is refused, with no token or queue side effects.
		return admitWALFail, 0
	}
	t.tokens[tenant] = tok - 1
	t.pending = append(t.pending, pendingSubmission{seq: seq, tenant: tenant, url: url, accessCode: accessCode})
	return admitQueued, len(t.pending)
}

// drain removes and returns every pending submission, in arrival order.
// The scheduler calls it once per cycle boundary.
func (t *tenantTable) drain() []pendingSubmission {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.pending
	t.pending = nil
	return out
}

// settle records one applied submission's outcome: a durable apply
// record naming the cycle that will include it, plus the tenant-breaker
// update. A failed Submit is worth +2 (an invalid access code trips the
// default threshold after three strikes); while half-open, the one
// admitted probe submission closes or re-opens the breaker outright.
func (t *tenantTable) settle(sub pendingSubmission, cycle int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Best-effort: a sticky WAL error here degrades exactly-once
	// accounting to at-least-once for this submission (restart would
	// re-apply it), which is the right failure direction for a 202
	// already promised.
	t.wal.appendApply(sub.seq, err == nil, cycle)
	if t.breakers.State(sub.tenant) == core.BreakerHalfOpen {
		t.breakers.ProbeResult(sub.tenant, err == nil)
		return
	}
	if err != nil {
		t.breakers.Penalize(sub.tenant, 2)
	}
}

// cycleEnd commits the just-published cycle to the WAL, refills every
// seen tenant's bucket, decays closed breakers, and moves open tenant
// breakers to half-open so each suspended tenant gets exactly one probe
// submission next cycle — the same canary protocol the watchdog applies
// to ejected services. It then compacts the WAL down to a state
// snapshot plus the still-pending accepts; a successful compaction also
// recovers a writer that had degraded on disk errors. The returned
// error is the compaction failure, if any — informational, never fatal.
func (t *tenantTable) cycleEnd(cycle int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wal.appendCycle(cycle)
	for tenant := range t.tokens {
		t.tokens[tenant] = t.burst
	}
	t.breakers.Decay()
	for _, tenant := range t.breakers.OpenServices() {
		t.breakers.BeginProbe(tenant)
	}
	if t.wal == nil {
		return nil
	}
	tokens := make(map[string]int, len(t.tokens))
	for k, v := range t.tokens {
		tokens[k] = v
	}
	state := subsRecord{NextSeq: t.wal.nextSeq(), Tokens: tokens, Breakers: t.breakers.Status()}
	return t.wal.compact(state, t.pending)
}

// restore folds a recovered WAL's records into the (freshly
// constructed) table: pending submissions re-queue in arrival order,
// token buckets and tenant breakers re-derive by replaying each
// record's live-time effect. It returns the submissions whose apply
// records name a cycle that never committed — their URLs were Submit'd
// into an engine whose cycle never published, so the caller must
// re-Submit them before resuming that cycle (they land in exactly the
// cycle their apply record promised, applied once from the client's
// point of view).
func (t *tenantTable) restore(rec subsRecovery) (resubmit []pendingSubmission) {
	t.mu.Lock()
	defer t.mu.Unlock()
	type appliedSub struct {
		sub   pendingSubmission
		cycle int
	}
	var stateSeq uint64
	var uncommitted []appliedSub
	for _, r := range rec.Records {
		switch r.Op {
		case "state":
			stateSeq = r.NextSeq
			t.tokens = make(map[string]int, len(r.Tokens))
			for k, v := range r.Tokens {
				t.tokens[k] = v
			}
			t.breakers.Restore(r.Breakers)
		case "accept":
			sub := pendingSubmission{seq: r.Seq, tenant: r.Tenant, url: r.URL, accessCode: r.Code}
			t.pending = append(t.pending, sub)
			if r.Seq >= stateSeq {
				// Accepts carried through compaction (seq below the
				// snapshot's next_seq) are already accounted in the
				// snapshot's token map; only post-snapshot accepts
				// consume.
				tok, seen := t.tokens[r.Tenant]
				if !seen {
					tok = t.burst
				}
				t.tokens[r.Tenant] = tok - 1
			}
		case "apply":
			for i := range t.pending {
				if t.pending[i].seq != r.Seq {
					continue
				}
				sub := t.pending[i]
				t.pending = append(t.pending[:i], t.pending[i+1:]...)
				if t.breakers.State(sub.tenant) == core.BreakerHalfOpen {
					t.breakers.ProbeResult(sub.tenant, r.OK)
				} else if !r.OK {
					t.breakers.Penalize(sub.tenant, 2)
				}
				if r.OK {
					uncommitted = append(uncommitted, appliedSub{sub: sub, cycle: r.Cycle})
				}
				break
			}
		case "cycle":
			kept := uncommitted[:0]
			for _, a := range uncommitted {
				if a.cycle > r.Cycle {
					kept = append(kept, a)
				}
			}
			uncommitted = kept
			for tenant := range t.tokens {
				t.tokens[tenant] = t.burst
			}
			t.breakers.Decay()
			for _, tenant := range t.breakers.OpenServices() {
				t.breakers.BeginProbe(tenant)
			}
		}
	}
	for _, a := range uncommitted {
		resubmit = append(resubmit, a.sub)
	}
	return resubmit
}

// suspended reports whether a tenant's breaker is open (for tests and
// status introspection).
func (t *tenantTable) suspended(tenant string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breakers.State(tenant) == core.BreakerOpen
}
