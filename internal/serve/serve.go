// Package serve turns the watchdog engine into a long-running service:
// a campaign scheduler drives measurement cycles through a
// core.CycleSource, and a read-optimized HTTP API serves each completed
// cycle's artifacts — canonical JSON report, batch-identical text
// report, HTML heatmap, fault ledger, Prometheus metrics — from an
// immutable per-cycle cache swapped atomically at cycle boundaries.
//
// The design splits the world in two:
//
//   - The write side is one goroutine (the scheduler). It owns the
//     CycleSource exclusively — RunCycle, Submit, catalog reads all
//     happen here — so the engine keeps its single-threaded determinism
//     guarantees without any locking.
//   - The read side is lock-free. Every response body, ETag, and header
//     value is precomputed into an immutable cycleCache published with
//     one atomic pointer store; request handlers load the pointer,
//     assign precomputed header slices, and write precomputed bytes —
//     zero allocations on the hot path, byte-identical responses for a
//     given cycle no matter how many daemons, restarts, or requests.
//
// Third-party submissions (POST /api/v1/submissions) cross from the
// read side to the write side through a mutex-guarded queue with
// per-tenant token buckets and tenant circuit breakers; the scheduler
// drains the queue at cycle boundaries, so the catalog only ever
// changes between cycles.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"prudentia/internal/chaos"
	"prudentia/internal/core"
	"prudentia/internal/journal"
	"prudentia/internal/obs"
	"prudentia/internal/trace"
)

// Config assembles a Server. Source is required; everything else
// defaults sanely.
type Config struct {
	// Source is the measurement engine (usually *core.Watchdog). The
	// server drives it from a single goroutine; the caller must not use
	// it concurrently while the server runs.
	Source core.CycleSource
	// Ledger, if non-nil, supplies the cumulative fault stream rendered
	// at /api/v1/faults and summarized in the text report. The caller
	// wires the engine's OnFault into it (trace.FaultLedger is
	// concurrency-safe).
	Ledger *trace.FaultLedger
	// Registry, if non-nil, backs /metrics and the per-route HTTP
	// instruments. Nil disables telemetry (handles degrade to no-ops).
	Registry *obs.Registry
	// CycleInterval is the pause between consecutive cycle starts
	// (jittered per cycle; see JitterFrac). Default 10m; negative means
	// no pause.
	CycleInterval time.Duration
	// JitterFrac spreads each pause by up to this fraction of
	// CycleInterval, derived deterministically from the cycle number so
	// a fleet of daemons started together de-synchronizes without any
	// wall-clock state leaking into artifacts. Default 0.2.
	JitterFrac float64
	// History is how many completed cycles stay addressable via
	// ?cycle=N (a ring; older cycles evict). Default 8, minimum 1.
	History int
	// MaxCycles stops measuring once this cycle number completes
	// (0 = forever). The HTTP API keeps serving the retained history
	// afterwards. The bound is on the global cycle number, not
	// cycles-per-process, so a restarted daemon finishes the same
	// campaign instead of starting a new one.
	MaxCycles int
	// SubmissionsMax caps the pending submission queue across all
	// tenants. Default 64.
	SubmissionsMax int
	// TenantBurst is each tenant's per-cycle submission budget.
	// Default 4.
	TenantBurst int
	// DrainTimeout bounds graceful shutdown (in-flight requests get
	// this long to finish). Default 5s.
	DrainTimeout time.Duration
	// DrainGrace is the pause between failing /readyz and closing the
	// listener on shutdown, giving load balancers one probe interval to
	// stop routing here before connections start being refused. Default
	// 500ms; negative disables.
	DrainGrace time.Duration
	// StateDir, when non-empty, makes the daemon crash-safe: every
	// accepted submission is logged to <StateDir>/subs.wal before its
	// 202 is sent, published cycle artifacts persist under
	// <StateDir>/cycles/, and on restart the history ring, tenant
	// budgets, breaker states, and unapplied submissions all rehydrate
	// from disk. Empty disables persistence (in-memory daemon).
	StateDir string
	// DiskChaos, when enabled, runs the daemon's durable writers — the
	// submission WAL and its compaction — through a seed-deterministic
	// disk-fault plan. Test instrumentation; nil in production.
	DiskChaos *chaos.DiskPlan
	// Log, if non-nil, receives human-readable daemon progress lines.
	Log func(format string, args ...any)
	// OnCycle, if non-nil, observes each completed cycle after its
	// artifacts are published (the CLI uses it to mirror the batch
	// report to stdout and export per-cycle telemetry).
	OnCycle func(cr *core.CycleResult)
}

// Server is the watchdog daemon: scheduler plus HTTP API.
type Server struct {
	cfg     Config
	cache   atomic.Pointer[cycleCache]
	tenants *tenantTable
	mux     *http.ServeMux

	// Resolved-once instrument handles (all nil-safe).
	mReport, mHeatmap, mFaults, mCycles obs.RouteInstruments
	mReportText                         obs.RouteInstruments
	cyclesPublished                     *obs.Counter
	subsAccepted, subsDenied            *obs.Counter
	readyGauge                          *obs.Gauge
	cycleFailures                       *obs.Counter
	degradedGauge, staleGauge           *obs.Gauge

	// retryAfter is the precomputed Retry-After value (in seconds) for
	// denials that clear at the next cycle boundary: one CycleInterval,
	// clamped to [1s, 1h].
	retryAfter string

	// wal is the durable submission store (nil without a StateDir).
	wal *subsWAL
	// startCycle is the first cycle number the campaign will run: 1
	// fresh, rehydrated-latest+1 after a restart.
	startCycle int
	// draining flips when shutdown begins; /readyz answers 503 from
	// then on (while the listener still accepts), so load balancers
	// stop routing before connections start failing.
	draining atomic.Bool
}

// New validates cfg, applies defaults, and builds the server and its
// routes. It does not start anything; call Run.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, errors.New("serve: Config.Source is required")
	}
	if cfg.CycleInterval == 0 {
		cfg.CycleInterval = 10 * time.Minute
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = 0.2
	}
	if cfg.History < 1 {
		cfg.History = 8
	}
	if cfg.SubmissionsMax <= 0 {
		cfg.SubmissionsMax = 64
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 4
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		tenants: newTenantTable(cfg.TenantBurst, cfg.SubmissionsMax),

		mReport:     obs.HTTPRoute(cfg.Registry, "report"),
		mReportText: obs.HTTPRoute(cfg.Registry, "report.txt"),
		mHeatmap:    obs.HTTPRoute(cfg.Registry, "heatmap"),
		mFaults:     obs.HTTPRoute(cfg.Registry, "faults"),
		mCycles:     obs.HTTPRoute(cfg.Registry, "cycles"),

		cyclesPublished: cfg.Registry.Counter("prudentia_serve_cycles_published_total"),
		subsAccepted:    cfg.Registry.Counter("prudentia_serve_submissions_accepted_total"),
		subsDenied:      cfg.Registry.Counter("prudentia_serve_submissions_denied_total"),
		readyGauge:      cfg.Registry.Gauge("prudentia_serve_ready"),
		cycleFailures:   cfg.Registry.Counter("prudentia_serve_cycle_failures_total"),
		degradedGauge:   cfg.Registry.Gauge("prudentia_serve_degraded"),
		staleGauge:      cfg.Registry.Gauge("prudentia_serve_stale_cycles"),
	}
	s.retryAfter = retryAfterSeconds(cfg.CycleInterval)
	s.startCycle = 1
	s.buildMux()
	if cfg.StateDir != "" {
		if err := s.recoverState(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recoverState rebuilds the daemon's world from the state directory:
// open (and repair) the submission WAL, replay it into the tenant
// table, rehydrate the history ring from persisted cycle artifacts,
// continue the engine's cycle numbering, resume any interrupted cycle
// through its checkpoint, and re-Submit submissions that were consumed
// by a cycle that never published. After it returns, /readyz is
// truthful immediately: ready if any completed cycle is servable.
func (s *Server) recoverState() error {
	dir := s.cfg.StateDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: state dir: %w", err)
	}
	var wrap journal.WrapFunc
	if s.cfg.DiskChaos.Enabled() {
		plan := s.cfg.DiskChaos
		wrap = func(f *os.File) journal.File { return chaos.WrapFile(f, plan) }
	}
	wal, rec, err := openSubsWAL(filepath.Join(dir, "subs.wal"), wrap)
	if err != nil {
		return err
	}
	if rec.Truncated {
		s.logf("serve: submission wal: truncated %d torn byte(s)", rec.TornBytes)
	}
	if werr := wal.stickyErr(); werr != nil {
		// Recovered state is intact; only new appends are refused (503
		// persistence_unavailable) until a cycle-boundary compaction
		// rewrites the file.
		s.logf("serve: submission wal degraded at startup: %v", werr)
	}
	resubmit := s.tenants.restore(rec)
	s.tenants.attachWAL(wal)
	s.wal = wal

	all, err := loadCycleDirs(dir, s.cfg.History)
	if err != nil {
		return err
	}
	if len(all) > 0 {
		cache, err := buildCycleCache(all, 0)
		if err != nil {
			return err
		}
		s.cache.Store(cache)
		s.readyGauge.Set(1)
		s.startCycle = all[len(all)-1].cycle + 1
		s.logf("serve: rehydrated cycles %d..%d from %s", all[0].cycle, all[len(all)-1].cycle, dir)
	}
	if s.startCycle > 1 {
		// Cycle numbers seed every trial; numbering must continue, not
		// restart, for a resumed daemon to stay byte-identical with an
		// uninterrupted one.
		if adv, ok := s.cfg.Source.(interface{ AdvanceTo(int) }); ok {
			adv.AdvanceTo(s.startCycle)
		}
	}
	// An interrupted cycle left a checkpoint; stage it so the first
	// RunCycle resumes instead of re-running completed work.
	if ld, ok := s.cfg.Source.(interface{ LoadCheckpoint() (bool, error) }); ok {
		if found, err := ld.LoadCheckpoint(); err != nil {
			s.logf("serve: checkpoint load: %v (starting the cycle fresh)", err)
		} else if found {
			s.logf("serve: resuming interrupted cycle from checkpoint")
		}
	}
	// These submissions hold a durable apply record naming a cycle that
	// never published: the engine that consumed them died. Re-Submit so
	// they land in exactly the cycle their record promised.
	for _, sub := range resubmit {
		if err := s.cfg.Source.Submit(sub.url, sub.accessCode); err != nil {
			s.logf("serve: re-submit %q after restart: %v", sub.url, err)
			continue
		}
		s.logf("serve: re-submitted %q (accepted before restart; cycle never published)", sub.url)
	}
	return nil
}

// retryAfterSeconds renders a cycle interval as a whole-second
// Retry-After value, clamped to [1, 3600]: token budgets and queue
// space free up at the next cycle boundary, so the interval is the
// honest wait, but an hour is as far out as a polite server schedules a
// client.
func retryAfterSeconds(interval time.Duration) string {
	secs := int((interval + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 3600 {
		secs = 3600
	}
	return strconv.Itoa(secs)
}

// Handler returns the daemon's HTTP handler (exposed for tests and for
// embedding under an outer mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Latest reports the most recently published cycle number (0 before the
// first cycle completes).
func (s *Server) Latest() int {
	if c := s.cache.Load(); c != nil {
		return c.latest.cycle
	}
	return 0
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Run serves the HTTP API on ln and drives the measurement campaign
// until ctx is cancelled, then drains in-flight requests and returns.
// A graceful interrupt (core.ErrInterrupted, context cancellation) is a
// clean nil return. Cycle failures do not stop the daemon: it keeps
// serving the last good artifacts in degraded mode and retries with
// capped backoff (see campaign).
//
// Shutdown sequence: /readyz flips to 503 first, the listener keeps
// accepting for DrainGrace (so load balancers observe the failure and
// stop routing), then the listener closes and in-flight requests get
// DrainTimeout to finish.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	defer s.wal.close()
	httpSrv := &http.Server{Handler: s.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	s.logf("serve: listening on %s", ln.Addr())

	campaignErr := s.campaign(ctx)
	if campaignErr == nil {
		// Campaign finished its cycle budget; keep serving the retained
		// history until the caller stops us.
		select {
		case <-ctx.Done():
		case err := <-serveErr:
			return fmt.Errorf("serve: http server: %w", err)
		}
	}

	s.draining.Store(true)
	s.readyGauge.Set(0)
	grace := s.cfg.DrainGrace
	if grace == 0 {
		grace = 500 * time.Millisecond
	}
	if grace > 0 {
		s.logf("serve: draining (readyz now 503; closing listener in %v)", grace)
		time.Sleep(grace)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	shutErr := httpSrv.Shutdown(drainCtx)
	s.logf("serve: drained and stopped")

	switch {
	case campaignErr != nil && !errors.Is(campaignErr, core.ErrInterrupted) && !errors.Is(campaignErr, context.Canceled):
		return campaignErr
	case shutErr != nil:
		return fmt.Errorf("serve: shutdown: %w", shutErr)
	}
	return nil
}

// campaign is the write side: apply queued submissions, run a cycle,
// publish its artifacts, settle tenant state, sleep, repeat. A failed
// cycle (engine error or persistence failure) does not advance the
// cycle number or kill the loop: the daemon enters degraded mode —
// last good artifacts keep serving with staleness signals — re-stages
// the engine's checkpoint so the retry resumes rather than restarts,
// and retries the same cycle after a capped exponential backoff.
func (s *Server) campaign(ctx context.Context) error {
	failures := 0
	for cycle := s.startCycle; s.cfg.MaxCycles == 0 || cycle <= s.cfg.MaxCycles; {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.applySubmissions(cycle)
		cr, err := s.cfg.Source.RunCycle()
		if err == nil {
			if perr := s.publish(cr); perr != nil {
				err = fmt.Errorf("serve: publish cycle %d: %w", cr.Cycle, perr)
			}
		}
		if err != nil {
			if errors.Is(err, core.ErrInterrupted) || errors.Is(err, context.Canceled) || ctx.Err() != nil {
				return err
			}
			failures++
			s.enterDegraded(failures, err)
			if !sleepBackoff(ctx, s.cfg.CycleInterval, failures) {
				return ctx.Err()
			}
			continue
		}
		if failures > 0 {
			s.logf("serve: recovered after %d failed attempt(s)", failures)
		}
		failures = 0
		s.logf("serve: published cycle %d (%d services)", cr.Cycle, len(s.cfg.Source.Catalog()))
		if s.cfg.OnCycle != nil {
			s.cfg.OnCycle(cr)
		}
		if err := s.tenants.cycleEnd(cr.Cycle); err != nil {
			s.logf("serve: submission wal compaction: %v", err)
		}
		if s.cfg.MaxCycles != 0 && cycle >= s.cfg.MaxCycles {
			return nil
		}
		cycle++
		if !sleepJittered(ctx, cycle, s.cfg.CycleInterval, s.cfg.JitterFrac) {
			return ctx.Err()
		}
	}
	return nil
}

// enterDegraded records one failed cycle attempt: telemetry, a log
// line, a cache rebuild that stamps every response with staleness
// signals (Warning and X-Prudentia-Stale-Cycles headers, the degraded
// field in /api/v1/cycles), and a checkpoint re-stage so the retry
// resumes the interrupted cycle instead of re-running completed pairs.
// Reads never see a 5xx out of this: the last good artifacts keep
// serving unchanged (same bytes, same ETags).
func (s *Server) enterDegraded(failures int, err error) {
	s.logf("serve: cycle failed (%d consecutive): %v — serving last good artifacts, will retry", failures, err)
	s.cycleFailures.Inc()
	s.degradedGauge.Set(1)
	s.staleGauge.Set(float64(failures))
	if old := s.cache.Load(); old != nil {
		if c, cerr := buildCycleCache(old.all, failures); cerr == nil {
			s.cache.Store(c)
		}
	}
	if ld, ok := s.cfg.Source.(interface{ LoadCheckpoint() (bool, error) }); ok {
		if found, lerr := ld.LoadCheckpoint(); lerr == nil && found {
			s.logf("serve: re-staged checkpoint; retry will resume the interrupted cycle")
		}
	}
}

// sleepBackoff pauses before retrying a failed cycle: the cycle
// interval (floored at 100ms) doubled per consecutive failure, capped
// at 16x the interval and 15 minutes. Deterministic, like the healthy
// path's jitter. Returns false if ctx ended the sleep.
func sleepBackoff(ctx context.Context, interval time.Duration, failures int) bool {
	base := interval
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	shift := failures - 1
	if shift > 4 {
		shift = 4
	}
	d := base << uint(shift)
	if d > 15*time.Minute {
		d = 15 * time.Minute
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// applySubmissions drains the pending queue into the engine and settles
// each submission: a durable apply record naming the upcoming cycle,
// plus the tenant breaker update. Runs on the scheduler goroutine only,
// so Submit needs no locking.
func (s *Server) applySubmissions(cycle int) {
	for _, sub := range s.tenants.drain() {
		err := s.cfg.Source.Submit(sub.url, sub.accessCode)
		s.tenants.settle(sub, cycle, err)
		if err != nil {
			s.logf("serve: submission %q from %s rejected: %v", sub.url, sub.tenant, err)
			continue
		}
		s.logf("serve: submission %q from %s joined the catalog", sub.url, sub.tenant)
	}
}

// sleepJittered pauses between cycles. The jitter is a deterministic
// function of the cycle number (FNV hash → [0, frac·interval)), so a
// fleet of daemons launched simultaneously spreads out without
// consulting anything nondeterministic. Returns false if ctx ended the
// sleep.
func sleepJittered(ctx context.Context, cycle int, interval time.Duration, frac float64) bool {
	if interval <= 0 {
		return ctx.Err() == nil
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(cycle >> (8 * i))
	}
	h.Write(buf[:])
	jitter := time.Duration(float64(interval) * frac * (float64(h.Sum64()%1024) / 1024))
	t := time.NewTimer(interval + jitter)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
