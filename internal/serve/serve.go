// Package serve turns the watchdog engine into a long-running service:
// a campaign scheduler drives measurement cycles through a
// core.CycleSource, and a read-optimized HTTP API serves each completed
// cycle's artifacts — canonical JSON report, batch-identical text
// report, HTML heatmap, fault ledger, Prometheus metrics — from an
// immutable per-cycle cache swapped atomically at cycle boundaries.
//
// The design splits the world in two:
//
//   - The write side is one goroutine (the scheduler). It owns the
//     CycleSource exclusively — RunCycle, Submit, catalog reads all
//     happen here — so the engine keeps its single-threaded determinism
//     guarantees without any locking.
//   - The read side is lock-free. Every response body, ETag, and header
//     value is precomputed into an immutable cycleCache published with
//     one atomic pointer store; request handlers load the pointer,
//     assign precomputed header slices, and write precomputed bytes —
//     zero allocations on the hot path, byte-identical responses for a
//     given cycle no matter how many daemons, restarts, or requests.
//
// Third-party submissions (POST /api/v1/submissions) cross from the
// read side to the write side through a mutex-guarded queue with
// per-tenant token buckets and tenant circuit breakers; the scheduler
// drains the queue at cycle boundaries, so the catalog only ever
// changes between cycles.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"prudentia/internal/core"
	"prudentia/internal/obs"
	"prudentia/internal/trace"
)

// Config assembles a Server. Source is required; everything else
// defaults sanely.
type Config struct {
	// Source is the measurement engine (usually *core.Watchdog). The
	// server drives it from a single goroutine; the caller must not use
	// it concurrently while the server runs.
	Source core.CycleSource
	// Ledger, if non-nil, supplies the cumulative fault stream rendered
	// at /api/v1/faults and summarized in the text report. The caller
	// wires the engine's OnFault into it (trace.FaultLedger is
	// concurrency-safe).
	Ledger *trace.FaultLedger
	// Registry, if non-nil, backs /metrics and the per-route HTTP
	// instruments. Nil disables telemetry (handles degrade to no-ops).
	Registry *obs.Registry
	// CycleInterval is the pause between consecutive cycle starts
	// (jittered per cycle; see JitterFrac). Default 10m; negative means
	// no pause.
	CycleInterval time.Duration
	// JitterFrac spreads each pause by up to this fraction of
	// CycleInterval, derived deterministically from the cycle number so
	// a fleet of daemons started together de-synchronizes without any
	// wall-clock state leaking into artifacts. Default 0.2.
	JitterFrac float64
	// History is how many completed cycles stay addressable via
	// ?cycle=N (a ring; older cycles evict). Default 8, minimum 1.
	History int
	// MaxCycles stops measuring after this many cycles (0 = forever).
	// The HTTP API keeps serving the retained history afterwards.
	MaxCycles int
	// SubmissionsMax caps the pending submission queue across all
	// tenants. Default 64.
	SubmissionsMax int
	// TenantBurst is each tenant's per-cycle submission budget.
	// Default 4.
	TenantBurst int
	// DrainTimeout bounds graceful shutdown (in-flight requests get
	// this long to finish). Default 5s.
	DrainTimeout time.Duration
	// Log, if non-nil, receives human-readable daemon progress lines.
	Log func(format string, args ...any)
	// OnCycle, if non-nil, observes each completed cycle after its
	// artifacts are published (the CLI uses it to mirror the batch
	// report to stdout and export per-cycle telemetry).
	OnCycle func(cr *core.CycleResult)
}

// Server is the watchdog daemon: scheduler plus HTTP API.
type Server struct {
	cfg     Config
	cache   atomic.Pointer[cycleCache]
	tenants *tenantTable
	mux     *http.ServeMux

	// Resolved-once instrument handles (all nil-safe).
	mReport, mHeatmap, mFaults, mCycles obs.RouteInstruments
	mReportText                         obs.RouteInstruments
	cyclesPublished                     *obs.Counter
	subsAccepted, subsDenied            *obs.Counter
	readyGauge                          *obs.Gauge
}

// New validates cfg, applies defaults, and builds the server and its
// routes. It does not start anything; call Run.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, errors.New("serve: Config.Source is required")
	}
	if cfg.CycleInterval == 0 {
		cfg.CycleInterval = 10 * time.Minute
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = 0.2
	}
	if cfg.History < 1 {
		cfg.History = 8
	}
	if cfg.SubmissionsMax <= 0 {
		cfg.SubmissionsMax = 64
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 4
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		tenants: newTenantTable(cfg.TenantBurst, cfg.SubmissionsMax),

		mReport:     obs.HTTPRoute(cfg.Registry, "report"),
		mReportText: obs.HTTPRoute(cfg.Registry, "report.txt"),
		mHeatmap:    obs.HTTPRoute(cfg.Registry, "heatmap"),
		mFaults:     obs.HTTPRoute(cfg.Registry, "faults"),
		mCycles:     obs.HTTPRoute(cfg.Registry, "cycles"),

		cyclesPublished: cfg.Registry.Counter("prudentia_serve_cycles_published_total"),
		subsAccepted:    cfg.Registry.Counter("prudentia_serve_submissions_accepted_total"),
		subsDenied:      cfg.Registry.Counter("prudentia_serve_submissions_denied_total"),
		readyGauge:      cfg.Registry.Gauge("prudentia_serve_ready"),
	}
	s.buildMux()
	return s, nil
}

// Handler returns the daemon's HTTP handler (exposed for tests and for
// embedding under an outer mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Latest reports the most recently published cycle number (0 before the
// first cycle completes).
func (s *Server) Latest() int {
	if c := s.cache.Load(); c != nil {
		return c.latest.cycle
	}
	return 0
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Run serves the HTTP API on ln and drives the measurement campaign
// until ctx is cancelled (or a cycle fails), then drains in-flight
// requests and returns. A graceful interrupt (core.ErrInterrupted,
// context cancellation) is a clean nil return; only genuine cycle
// failures surface as errors.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	s.logf("serve: listening on %s", ln.Addr())

	campaignErr := s.campaign(ctx)
	if campaignErr == nil {
		// Campaign finished its cycle budget; keep serving the retained
		// history until the caller stops us.
		select {
		case <-ctx.Done():
		case err := <-serveErr:
			return fmt.Errorf("serve: http server: %w", err)
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	shutErr := httpSrv.Shutdown(drainCtx)
	s.logf("serve: drained and stopped")

	switch {
	case campaignErr != nil && !errors.Is(campaignErr, core.ErrInterrupted) && !errors.Is(campaignErr, context.Canceled):
		return campaignErr
	case shutErr != nil:
		return fmt.Errorf("serve: shutdown: %w", shutErr)
	}
	return nil
}

// campaign is the write side: apply queued submissions, run a cycle,
// publish its artifacts, settle tenant state, sleep, repeat.
func (s *Server) campaign(ctx context.Context) error {
	for cycle := 1; s.cfg.MaxCycles == 0 || cycle <= s.cfg.MaxCycles; cycle++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.applySubmissions()
		cr, err := s.cfg.Source.RunCycle()
		if err != nil {
			return err
		}
		if err := s.publish(cr); err != nil {
			return fmt.Errorf("serve: publish cycle %d: %w", cr.Cycle, err)
		}
		s.logf("serve: published cycle %d (%d services)", cr.Cycle, len(s.cfg.Source.Catalog()))
		if s.cfg.OnCycle != nil {
			s.cfg.OnCycle(cr)
		}
		s.tenants.cycleEnd()
		if s.cfg.MaxCycles != 0 && cycle >= s.cfg.MaxCycles {
			return nil
		}
		if !sleepJittered(ctx, cycle, s.cfg.CycleInterval, s.cfg.JitterFrac) {
			return ctx.Err()
		}
	}
	return nil
}

// applySubmissions drains the pending queue into the engine and settles
// each tenant's breaker on the outcome. Runs on the scheduler goroutine
// only, so Submit needs no locking.
func (s *Server) applySubmissions() {
	for _, sub := range s.tenants.drain() {
		err := s.cfg.Source.Submit(sub.url, sub.accessCode)
		s.tenants.settle(sub.tenant, err)
		if err != nil {
			s.logf("serve: submission %q from %s rejected: %v", sub.url, sub.tenant, err)
			continue
		}
		s.logf("serve: submission %q from %s joined the catalog", sub.url, sub.tenant)
	}
}

// sleepJittered pauses between cycles. The jitter is a deterministic
// function of the cycle number (FNV hash → [0, frac·interval)), so a
// fleet of daemons launched simultaneously spreads out without
// consulting anything nondeterministic. Returns false if ctx ended the
// sleep.
func sleepJittered(ctx context.Context, cycle int, interval time.Duration, frac float64) bool {
	if interval <= 0 {
		return ctx.Err() == nil
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(cycle >> (8 * i))
	}
	h.Write(buf[:])
	jitter := time.Duration(float64(interval) * frac * (float64(h.Sum64()%1024) / 1024))
	t := time.NewTimer(interval + jitter)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
