package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer builds one published server per benchmark binary run,
// shared across sub-benchmarks (the cache is immutable, so sharing is
// safe and keeps setup off the measured path).
var benchSrv *Server

func benchServer(b *testing.B) *Server {
	b.Helper()
	if benchSrv != nil {
		return benchSrv
	}
	t := &testing.T{}
	s, _ := newPublishedServer(t, 42)
	if t.Failed() || s.Latest() != 1 {
		b.Fatal("bench server failed to publish a cycle")
	}
	benchSrv = s
	return s
}

// benchRoute measures one route's cached hot path: handler resolved
// once, request and ResponseWriter reused, so the numbers isolate the
// handler itself. The bench.sh serve gate requires 0 allocs/op here.
func benchRoute(b *testing.B, path, inm string) {
	s := benchServer(b)
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if inm != "" {
		etag := s.cache.Load().latest.report.etag
		req.Header.Set("If-None-Match", etag)
	}
	h, pattern := s.mux.Handler(req)
	if pattern == "" {
		b.Fatal("no handler for " + path)
	}
	w := newNullResponseWriter()
	h.ServeHTTP(w, req) // warm-up: first call sizes the header map
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	if w.status != 200 && w.status != 304 {
		b.Fatalf("status = %d", w.status)
	}
}

func BenchmarkCachedReportHit(b *testing.B)     { benchRoute(b, "/api/v1/report", "") }
func BenchmarkCachedHeatmapHit(b *testing.B)    { benchRoute(b, "/api/v1/heatmap", "") }
func BenchmarkCachedReportTextHit(b *testing.B) { benchRoute(b, "/api/v1/report.txt", "") }
func BenchmarkReportNotModified(b *testing.B)   { benchRoute(b, "/api/v1/report", "etag") }
