package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file persists each published cycle's artifacts to the daemon's
// state directory and rehydrates the history ring from them on restart:
//
//	<state-dir>/cycles/<N>/report.json
//	                       report.txt
//	                       heatmap.html
//	                       faults.jsonl
//	                       meta.json
//
// A cycle directory is written as a temp directory (files fsynced) and
// renamed into place, so a crash mid-publish leaves either the complete
// cycle or no trace of it — never a half-written one. Rehydration reads
// the newest History complete directories; ETags re-derive from the
// bytes (FNV-64a), so a rehydrated artifact revalidates exactly like
// the original publication did.
//
// Ordering contract with the submission WAL: a cycle's artifacts are
// durable on disk *before* its commit record is appended (publish runs
// before cycleEnd), so a committed apply always has its including
// cycle's artifacts to show for it.

// cycleMetaSchema stamps each cycle directory's meta.json.
const cycleMetaSchema = "prudentia.cycle-meta/1"

// cycleMeta is the per-cycle-directory manifest. Its presence marks the
// directory complete (it is written last, before the rename).
type cycleMeta struct {
	Schema   string `json:"schema"`
	Cycle    int    `json:"cycle"`
	Services int    `json:"services"`
}

// cycleFile names the artifact files inside a cycle directory, paired
// with their content types for rehydration.
var cycleFiles = []struct {
	name  string
	ctype string
}{
	{"report.json", "application/json"},
	{"report.txt", "text/plain; charset=utf-8"},
	{"heatmap.html", "text/html; charset=utf-8"},
	{"faults.jsonl", "application/x-ndjson"},
}

// cyclesRoot is the artifacts subdirectory of a state dir.
func cyclesRoot(stateDir string) string { return filepath.Join(stateDir, "cycles") }

// saveCycleDir persists one published cycle: temp directory, fsynced
// files (meta.json last), atomic rename to cycles/<N>, parent fsync.
func saveCycleDir(stateDir string, ca *cycleArtifacts) error {
	root := cyclesRoot(stateDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("serve: state dir: %w", err)
	}
	tmp, err := os.MkdirTemp(root, ".tmp-cycle-*")
	if err != nil {
		return fmt.Errorf("serve: cycle temp dir: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	bodies := [][]byte{ca.report.body, ca.reportText.body, ca.heatmap.body, ca.faults.body}
	for i, cf := range cycleFiles {
		if err := writeFileSync(filepath.Join(tmp, cf.name), bodies[i]); err != nil {
			return err
		}
	}
	meta, err := json.Marshal(cycleMeta{Schema: cycleMetaSchema, Cycle: ca.cycle, Services: ca.services})
	if err != nil {
		return fmt.Errorf("serve: marshal cycle meta: %w", err)
	}
	if err := writeFileSync(filepath.Join(tmp, "meta.json"), meta); err != nil {
		return err
	}
	final := filepath.Join(root, strconv.Itoa(ca.cycle))
	// A leftover directory from a previous run of the same cycle number
	// (e.g. the cycle re-ran after a crash before its WAL commit) is
	// replaced wholesale.
	os.RemoveAll(final)
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("serve: commit cycle dir: %w", err)
	}
	syncParentDir(final)
	return nil
}

// writeFileSync writes data and fsyncs before closing, so the
// subsequent directory rename publishes fully durable contents.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("serve: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("serve: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: close %s: %w", path, err)
	}
	return nil
}

// loadCycleDirs rehydrates up to history complete cycle directories
// (the newest ones), ascending by cycle number. Incomplete directories
// — missing files, unreadable meta — are skipped, not fatal: the
// rename protocol makes them possible only through outside
// interference, and serving the cycles that do parse beats refusing to
// start. Leftover temp directories are swept.
func loadCycleDirs(stateDir string, history int) ([]*cycleArtifacts, error) {
	root := cyclesRoot(stateDir)
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read state dir: %w", err)
	}
	var nums []int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-cycle-") {
			os.RemoveAll(filepath.Join(root, e.Name()))
			continue
		}
		if !e.IsDir() {
			continue
		}
		if n, err := strconv.Atoi(e.Name()); err == nil && n > 0 {
			nums = append(nums, n)
		}
	}
	sort.Ints(nums)
	if len(nums) > history {
		nums = nums[len(nums)-history:]
	}
	var out []*cycleArtifacts
	for _, n := range nums {
		ca, err := loadOneCycleDir(filepath.Join(root, strconv.Itoa(n)), n)
		if err != nil {
			continue
		}
		out = append(out, ca)
	}
	return out, nil
}

// loadOneCycleDir reads one cycle directory back into servable
// artifacts, re-deriving ETags from the bytes.
func loadOneCycleDir(dir string, cycle int) (*cycleArtifacts, error) {
	metaRaw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta cycleMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, fmt.Errorf("serve: parse %s/meta.json: %w", dir, err)
	}
	if meta.Schema != cycleMetaSchema || meta.Cycle != cycle {
		return nil, fmt.Errorf("serve: %s meta mismatch (schema %q, cycle %d)", dir, meta.Schema, meta.Cycle)
	}
	ca := &cycleArtifacts{cycle: cycle, services: meta.Services}
	arts := []*artifact{&ca.report, &ca.reportText, &ca.heatmap, &ca.faults}
	for i, cf := range cycleFiles {
		body, err := os.ReadFile(filepath.Join(dir, cf.name))
		if err != nil {
			return nil, err
		}
		*arts[i] = newArtifact(body, cf.ctype)
	}
	return ca, nil
}

// pruneCycleDirs removes persisted cycles older than keepFrom
// (best-effort; eviction mirrors the in-memory history ring so disk use
// stays O(History)).
func pruneCycleDirs(stateDir string, keepFrom int) {
	root := cyclesRoot(stateDir)
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, e := range entries {
		if n, err := strconv.Atoi(e.Name()); err == nil && n > 0 && n < keepFrom {
			os.RemoveAll(filepath.Join(root, e.Name()))
		}
	}
}
