package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"prudentia/internal/obs"
	"prudentia/internal/trace"
)

// newStatefulServer builds a server over a fresh real watchdog wired to
// dir-backed persistence.
func newStatefulServer(t *testing.T, seed uint64, dir string, mutate func(*Config)) *Server {
	t.Helper()
	ledger := &trace.FaultLedger{}
	w := testWatchdog(seed, ledger)
	cfg := Config{
		Source:        w,
		Ledger:        ledger,
		Registry:      obs.NewRegistry(),
		CycleInterval: -1,
		StateDir:      dir,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.wal.close() })
	return s
}

// TestStateRehydration: a daemon restarted over the same state dir
// serves the same cycles — byte-identical artifacts, equal ETags, ready
// immediately — and then continues the campaign with the next cycle
// number, producing bytes identical to a never-restarted daemon.
func TestStateRehydration(t *testing.T) {
	dir := t.TempDir()

	// First process: cycles 1 and 2.
	s1 := newStatefulServer(t, 42, dir, func(c *Config) { c.MaxCycles = 2 })
	if err := s1.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	s1.wal.close()

	// Second process: same dir, fresh watchdog. Ready before any cycle
	// runs, with the first process's bytes.
	s2 := newStatefulServer(t, 42, dir, func(c *Config) { c.MaxCycles = 3 })
	if s2.Latest() != 2 {
		t.Fatalf("rehydrated latest = %d, want 2", s2.Latest())
	}
	if s2.startCycle != 3 {
		t.Fatalf("startCycle = %d, want 3", s2.startCycle)
	}
	if rec := get(t, s2.Handler(), "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz after rehydration = %d, want 200", rec.Code)
	}
	for _, path := range []string{"/api/v1/report", "/api/v1/report.txt", "/api/v1/heatmap", "/api/v1/cycles"} {
		r1 := get(t, s1.Handler(), path, nil)
		r2 := get(t, s2.Handler(), path, nil)
		if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
			t.Errorf("%s differs across restart", path)
		}
		if e1, e2 := r1.Header().Get("Etag"), r2.Header().Get("Etag"); e1 == "" || e1 != e2 {
			t.Errorf("%s ETag %q != %q across restart", path, e1, e2)
		}
	}

	// Continue the campaign: cycle 3 runs with continued numbering and
	// must match an uninterrupted 3-cycle daemon byte for byte.
	if err := s2.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s2.Latest() != 3 {
		t.Fatalf("post-restart campaign reached cycle %d, want 3", s2.Latest())
	}

	uninterrupted := newStatefulServer(t, 42, t.TempDir(), func(c *Config) { c.MaxCycles = 3 })
	if err := uninterrupted.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/api/v1/report", "/api/v1/report.txt", "/api/v1/cycles"} {
		r1 := get(t, s2.Handler(), path, nil)
		r2 := get(t, uninterrupted.Handler(), path, nil)
		if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
			t.Errorf("%s: restarted daemon diverged from uninterrupted run", path)
		}
	}
}

// TestStatePrune: disk mirrors the in-memory history ring — evicted
// cycles' directories are removed.
func TestStatePrune(t *testing.T) {
	dir := t.TempDir()
	s := newStatefulServer(t, 42, dir, func(c *Config) { c.History = 2; c.MaxCycles = 3 })
	if err := s.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cycles", "1")); !os.IsNotExist(err) {
		t.Errorf("evicted cycle 1 still on disk (err %v)", err)
	}
	for _, n := range []int{2, 3} {
		if _, err := os.Stat(filepath.Join(dir, "cycles", strconv.Itoa(n), "meta.json")); err != nil {
			t.Errorf("retained cycle %d missing: %v", n, err)
		}
	}
}

// TestStateIncompleteCycleDirSkipped: a cycle directory missing its
// meta.json (impossible through the rename protocol, possible through
// outside interference) is skipped, not fatal, and does not block
// serving the cycles that are complete.
func TestStateIncompleteCycleDirSkipped(t *testing.T) {
	dir := t.TempDir()
	s := newStatefulServer(t, 42, dir, func(c *Config) { c.MaxCycles = 2 })
	if err := s.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.wal.close()
	if err := os.Remove(filepath.Join(dir, "cycles", "2", "meta.json")); err != nil {
		t.Fatal(err)
	}

	s2 := newStatefulServer(t, 42, dir, nil)
	if s2.Latest() != 1 {
		t.Fatalf("latest after damaged cycle 2 = %d, want 1", s2.Latest())
	}
	var doc CyclesDoc
	rec := get(t, s2.Handler(), "/api/v1/cycles", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil || doc.Latest != 1 || len(doc.Retained) != 1 {
		t.Fatalf("cycles doc = %+v (err %v)", doc, err)
	}
}

// TestRetryAfterDerivesFromInterval: the Retry-After value on
// rate-limit and queue-full denials reflects the configured cycle
// interval (the earliest moment retrying can help), clamped to an hour.
func TestRetryAfterDerivesFromInterval(t *testing.T) {
	s := newFakeServer(t, &fakeSource{}, func(c *Config) {
		c.CycleInterval = 120 * 1e9 // 120s
		c.TenantBurst = 1
	})
	postSubmission(t, s, `{"url":"https://a.example","access_code":"c","tenant":"t"}`)
	rec := postSubmission(t, s, `{"url":"https://b.example","access_code":"c","tenant":"t"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "120" {
		t.Errorf("Retry-After = %q, want 120 (the cycle interval)", got)
	}

	long := newFakeServer(t, &fakeSource{}, func(c *Config) { c.CycleInterval = 2 * 3600 * 1e9 })
	if long.retryAfter != "3600" {
		t.Errorf("2h interval Retry-After = %q, want clamped 3600", long.retryAfter)
	}
}
