package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/obs"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/trace"
)

// fastOpts mirrors core's internal test protocol: tiny trials so a full
// cycle finishes in test time.
func fastOpts(net netem.Config) core.SchedulerOptions {
	o := core.PaperOptions(net)
	o.MinTrials, o.MaxTrials, o.Step = 2, 4, 2
	o.ToleranceMbps = 50
	o.Timing = func(s core.Spec) core.Spec {
		s.Duration, s.Warmup, s.Cooldown = 20*sim.Second, 4*sim.Second, 2*sim.Second
		return s
	}
	return o
}

// testWatchdog builds a two-service, one-setting watchdog with a fixed
// seed, wired to a fault ledger.
func testWatchdog(seed uint64, ledger *trace.FaultLedger) *core.Watchdog {
	w := core.NewWatchdog()
	w.Services = []services.Service{
		services.ByName("iPerf (Cubic)"),
		services.ByName("iPerf (BBR)"),
	}
	w.Settings = []netem.Config{netem.HighlyConstrained()}
	opts := fastOpts(w.Settings[0])
	opts.BaseSeed = seed
	w.Opts = opts
	if ledger != nil {
		w.OnFault = ledger.Record
	}
	return w
}

// newPublishedServer builds a server over a real watchdog, runs one
// cycle through the scheduler path, and returns it ready to serve.
func newPublishedServer(t *testing.T, seed uint64) (*Server, *core.Watchdog) {
	t.Helper()
	ledger := &trace.FaultLedger{}
	w := testWatchdog(seed, ledger)
	s, err := New(Config{
		Source:        w,
		Ledger:        ledger,
		Registry:      obs.NewRegistry(),
		CycleInterval: -1,
		MaxCycles:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s, w
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServeEndToEnd boots the full daemon — listener, scheduler, HTTP —
// over a real two-service watchdog, exercises every endpoint, and shuts
// it down gracefully.
func TestServeEndToEnd(t *testing.T) {
	ledger := &trace.FaultLedger{}
	w := testWatchdog(42, ledger)
	reg := obs.NewRegistry()
	s, err := New(Config{
		Source:        w,
		Ledger:        ledger,
		Registry:      reg,
		CycleInterval: -1,
		MaxCycles:     1,
		DrainTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}

	// healthz answers immediately; readyz flips once cycle 1 publishes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}

	fetch := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp, body
	}

	resp, body := fetch("/api/v1/report")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("report = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var doc report.ReportDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if doc.Schema != report.ReportSchema || doc.Cycle != 1 || len(doc.Services) != 2 {
		t.Fatalf("report doc = %+v", doc)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("report carries no ETag")
	}

	// Conditional revalidation: same ETag → 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified || len(b2) != 0 {
		t.Fatalf("revalidation = %d with %d body bytes, want 304 empty", resp2.StatusCode, len(b2))
	}

	// The text report is the exact batch rendering.
	_, txt := fetch("/api/v1/report.txt")
	want := report.ReportText(w.History()[0], w.SettingConfigs(), w.Catalog(), ledger.Summary())
	if string(txt) != want {
		t.Errorf("report.txt differs from batch rendering:\n%q\nvs\n%q", txt, want)
	}

	resp, body = fetch("/api/v1/heatmap")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("heatmap Content-Type = %q", ct)
	}
	if !bytes.Contains(body, []byte(`<table class="heatmap">`)) {
		t.Error("heatmap page missing its table")
	}

	resp, _ = fetch("/api/v1/faults")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("faults = %d", resp.StatusCode)
	}

	_, body = fetch("/api/v1/cycles")
	var cycles CyclesDoc
	if err := json.Unmarshal(body, &cycles); err != nil || cycles.Latest != 1 || len(cycles.Retained) != 1 {
		t.Errorf("cycles doc = %+v (err %v)", cycles, err)
	}

	_, body = fetch("/metrics")
	for _, want := range []string{"prudentia_http_requests_total", "prudentia_serve_cycles_published_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Submission is queued for a future cycle.
	sub, err := client.Post(base+"/api/v1/submissions", "application/json",
		strings.NewReader(`{"url":"https://example.com/x","access_code":"KD4p1Z8Gs1SVPHUrTOVTMNHtvUnMSmvZ","tenant":"t1"}`))
	if err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()
	if sub.StatusCode != http.StatusAccepted {
		t.Errorf("submission = %d, want 202", sub.StatusCode)
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
}

// TestServeDeterminism runs two independent daemons at the same seed
// and requires byte-identical artifacts and equal ETags for every
// cached endpoint — the property that lets CI diff a daemon against a
// batch run.
func TestServeDeterminism(t *testing.T) {
	s1, _ := newPublishedServer(t, 42)
	s2, _ := newPublishedServer(t, 42)
	for _, path := range []string{"/api/v1/report", "/api/v1/report.txt", "/api/v1/heatmap", "/api/v1/faults", "/api/v1/cycles"} {
		r1 := get(t, s1.Handler(), path, nil)
		r2 := get(t, s2.Handler(), path, nil)
		if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
			t.Errorf("%s bodies differ across same-seed daemons", path)
		}
		if e1, e2 := r1.Header().Get("Etag"), r2.Header().Get("Etag"); e1 == "" || e1 != e2 {
			t.Errorf("%s ETags differ: %q vs %q", path, e1, e2)
		}
	}

	// A different seed must change the report (the ETag is load-bearing).
	s3, _ := newPublishedServer(t, 7)
	r1 := get(t, s1.Handler(), "/api/v1/report", nil)
	r3 := get(t, s3.Handler(), "/api/v1/report", nil)
	if r1.Header().Get("Etag") == r3.Header().Get("Etag") {
		t.Error("different seeds produced identical report ETags")
	}
}

// fakeSource is a CycleSource stub for scheduler/handler unit tests.
// Setting failNext makes the next N RunCycle calls fail (without
// advancing the cycle number), mimicking an engine mid-outage.
type fakeSource struct {
	cycle     int
	submitted []string
	submitErr error
	failNext  int
	failures  int
}

func (f *fakeSource) RunCycle() (*core.CycleResult, error) {
	if f.failNext > 0 {
		f.failNext--
		f.failures++
		return nil, errors.New("fake: cycle blew up")
	}
	f.cycle++
	return &core.CycleResult{Cycle: f.cycle}, nil
}
func (f *fakeSource) SettingConfigs() []netem.Config { return nil }
func (f *fakeSource) Catalog() []services.Service    { return nil }
func (f *fakeSource) Submit(url, code string) error {
	if f.submitErr != nil {
		return f.submitErr
	}
	f.submitted = append(f.submitted, url)
	return nil
}

func newFakeServer(t *testing.T, src *fakeSource, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Source:        src,
		Registry:      obs.NewRegistry(),
		CycleInterval: -1,
		MaxCycles:     1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHistoryRing publishes more cycles than the ring retains and
// checks eviction, ?cycle=N addressing, and the index document.
func TestHistoryRing(t *testing.T) {
	src := &fakeSource{}
	s := newFakeServer(t, src, func(c *Config) { c.History = 2; c.MaxCycles = 3 })
	if err := s.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}

	if rec := get(t, s.Handler(), "/api/v1/report?cycle=1", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("evicted cycle 1 = %d, want 503", rec.Code)
	}
	for _, n := range []int{2, 3} {
		rec := get(t, s.Handler(), fmt.Sprintf("/api/v1/report?cycle=%d", n), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("cycle %d = %d, want 200", n, rec.Code)
		}
		var doc report.ReportDoc
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil || doc.Cycle != n {
			t.Errorf("cycle %d doc = %+v (err %v)", n, doc, err)
		}
	}
	// The latest cycle serves on the fast path and via its number, with
	// the same bytes.
	latest := get(t, s.Handler(), "/api/v1/report", nil)
	byNum := get(t, s.Handler(), "/api/v1/report?cycle=3", nil)
	if !bytes.Equal(latest.Body.Bytes(), byNum.Body.Bytes()) {
		t.Error("latest fast path and ?cycle=3 disagree")
	}

	var cycles CyclesDoc
	rec := get(t, s.Handler(), "/api/v1/cycles", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &cycles); err != nil {
		t.Fatal(err)
	}
	if cycles.Latest != 3 || len(cycles.Retained) != 2 ||
		cycles.Retained[0].Cycle != 2 || cycles.Retained[1].Cycle != 3 {
		t.Errorf("cycles doc = %+v", cycles)
	}

	// Junk queries are a miss, not a panic.
	if rec := get(t, s.Handler(), "/api/v1/report?cycle=banana", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("junk query = %d, want 503", rec.Code)
	}
}

// TestReadinessAndMethods covers the not-ready window and method
// rejection.
func TestReadinessAndMethods(t *testing.T) {
	s := newFakeServer(t, &fakeSource{}, nil)

	if rec := get(t, s.Handler(), "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before first cycle = %d, want 503", rec.Code)
	}
	if rec := get(t, s.Handler(), "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
	if rec := get(t, s.Handler(), "/api/v1/report", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("report before first cycle = %d, want 503", rec.Code)
	}

	if err := s.campaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := get(t, s.Handler(), "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("readyz after first cycle = %d, want 200", rec.Code)
	}

	req := httptest.NewRequest(http.MethodDelete, "/api/v1/report", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET, HEAD" {
		t.Errorf("DELETE report = %d Allow %q", rec.Code, rec.Header().Get("Allow"))
	}
	req = httptest.NewRequest(http.MethodGet, "/api/v1/submissions", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "POST" {
		t.Errorf("GET submissions = %d Allow %q", rec.Code, rec.Header().Get("Allow"))
	}
}

// TestZeroAllocHotPath pins the cached read path's allocation budget to
// exactly zero for 200s and 304s on both report and heatmap routes.
func TestZeroAllocHotPath(t *testing.T) {
	s, _ := newPublishedServer(t, 42)

	for _, tc := range []struct {
		name, path, etagOf string
	}{
		{"report-hit", "/api/v1/report", ""},
		{"heatmap-hit", "/api/v1/heatmap", ""},
		{"report-304", "/api/v1/report", "/api/v1/report"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, tc.path, nil)
			if tc.etagOf != "" {
				etag := get(t, s.Handler(), tc.etagOf, nil).Header().Get("Etag")
				req.Header.Set("If-None-Match", etag)
			}
			h, pattern := s.mux.Handler(req)
			if pattern == "" {
				t.Fatal("no handler")
			}
			w := newNullResponseWriter()
			// Warm-up, then measure.
			h.ServeHTTP(w, req)
			if n := testing.AllocsPerRun(200, func() { h.ServeHTTP(w, req) }); n != 0 {
				t.Errorf("%s allocates %.1f per request, want 0", tc.name, n)
			}
		})
	}
}

// nullResponseWriter is the benchmark/alloc-test sink: a reusable
// ResponseWriter whose header map persists across requests (mirroring
// net/http's per-connection header reuse) and whose body writes are
// discarded.
type nullResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func newNullResponseWriter() *nullResponseWriter {
	return &nullResponseWriter{h: make(http.Header, 8)}
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(code int) {
	w.status = code
}
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

var _ io.Writer = (*nullResponseWriter)(nil)
