package stats

import "testing"

// repeat builds a share series of n copies of v.
func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSequentialPolicyTable(t *testing.T) {
	base := SequentialPolicy{
		MinTrials:    2,
		MaxTrials:    10,
		MaxCIWidth:   5,
		StableK:      3,
		FairSharePct: 80,
	}
	noCI := base
	noCI.MaxCIWidth = 0

	cases := []struct {
		name       string
		pol        SequentialPolicy
		s0, s1     []float64
		wantStop   bool
		wantReason string
	}{
		{
			name: "empty series never stops",
			pol:  base, s0: nil, s1: nil,
			wantStop: false,
		},
		{
			name: "converges early on tight CI",
			pol:  base,
			s0:   []float64{95, 96}, s1: []float64{94, 95},
			wantStop: true, wantReason: StopCIWidth,
		},
		{
			name: "two disagreeing trials keep going",
			pol:  base,
			s0:   []float64{95, 40}, s1: []float64{40, 95},
			wantStop: false,
		},
		{
			name: "never stops below min trials",
			pol: SequentialPolicy{MinTrials: 4, MaxTrials: 10,
				MaxCIWidth: 5, FairSharePct: 80},
			s0: []float64{95, 95, 95}, s1: []float64{95, 95, 95},
			wantStop: false,
		},
		{
			name: "stops the moment min trials is reached",
			pol: SequentialPolicy{MinTrials: 4, MaxTrials: 10,
				MaxCIWidth: 5, FairSharePct: 80},
			s0: []float64{95, 95, 95, 95}, s1: []float64{95, 95, 95, 95},
			wantStop: true, wantReason: StopCIWidth,
		},
		{
			name: "verdict stable for K trials",
			pol:  noCI,
			s0:   repeat(100, 3), s1: []float64{85, 90, 90},
			wantStop: true, wantReason: StopStable,
		},
		{
			name: "verdict flip restarts the stability counter",
			pol:  noCI,
			// prefix verdicts: n=2 unfair (median 77.5), n=3..4 fair —
			// the flip at n=2 stays inside the K=3 window until n=5.
			s0: repeat(100, 4), s1: []float64{85, 70, 90, 90},
			wantStop: false,
		},
		{
			name: "stability recovers once the flip ages out",
			pol:  noCI,
			s0:   repeat(100, 5), s1: []float64{85, 70, 90, 90, 90},
			wantStop: true, wantReason: StopStable,
		},
		{
			name: "budget exhaustion stops unconverged pairs",
			pol: SequentialPolicy{MinTrials: 2, MaxTrials: 4,
				MaxCIWidth: 1, FairSharePct: 80},
			s0: []float64{95, 40, 95, 40}, s1: []float64{40, 95, 40, 95},
			wantStop: true, wantReason: StopBudget,
		},
		{
			name: "min trials clamps to a smaller budget",
			pol: SequentialPolicy{MinTrials: 5, MaxTrials: 3,
				MaxCIWidth: 1, FairSharePct: 80},
			s0: []float64{95, 40, 95}, s1: []float64{40, 95, 40},
			wantStop: true, wantReason: StopBudget,
		},
		{
			name: "no ceiling means no budget stop",
			pol: SequentialPolicy{MinTrials: 2, MaxTrials: 0,
				MaxCIWidth: 1, FairSharePct: 80},
			s0: []float64{95, 40, 95, 40}, s1: []float64{40, 95, 40, 95},
			wantStop: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.pol.Evaluate(tc.s0, tc.s1)
			if d.Stop != tc.wantStop || d.Reason != tc.wantReason {
				t.Fatalf("Evaluate = stop=%v reason=%q, want stop=%v reason=%q (ciWidth=%.2f fair=%v)",
					d.Stop, d.Reason, tc.wantStop, tc.wantReason, d.CIWidth, d.Fair)
			}
			// Purity: re-evaluating the same prefix must reproduce the
			// decision, and must not have mutated the inputs.
			d2 := tc.pol.Evaluate(tc.s0, tc.s1)
			if d != d2 {
				t.Fatalf("Evaluate is not deterministic: %+v then %+v", d, d2)
			}
		})
	}
}

func TestCIWidth(t *testing.T) {
	if w := CIWidth(nil); w != 0 {
		t.Fatalf("CIWidth(nil) = %v, want 0", w)
	}
	if w := CIWidth([]float64{50}); w != 0 {
		t.Fatalf("CIWidth(single) = %v, want 0", w)
	}
	// n < 3 degrades to the sample range.
	if w := CIWidth([]float64{40, 50}); w != 10 {
		t.Fatalf("CIWidth(two) = %v, want 10", w)
	}
	if w := CIWidth(repeat(75, 20)); w != 0 {
		t.Fatalf("CIWidth(constant) = %v, want 0", w)
	}
}

func TestScreenScore(t *testing.T) {
	// The losing slot drives the score; distance is symmetric around
	// the fairness boundary.
	if s := ScreenScore(100, 80, 80); s != 0 {
		t.Fatalf("boundary pair scored %v, want 0 (most contested)", s)
	}
	if s := ScreenScore(100, 30, 80); s != 50 {
		t.Fatalf("clearly unfair pair scored %v, want 50", s)
	}
	if s := ScreenScore(95, 100, 80); s != 15 {
		t.Fatalf("clearly fair pair scored %v, want 15", s)
	}
}
