// Package stats provides the statistical machinery behind Prudentia's
// stopping rules (§3.4): medians, quantiles, inter-quartile ranges,
// distribution-free 95% confidence intervals for the median based on
// order statistics, and the sequential stopper behind adaptive trial
// budgets (adaptive.go). Jain's fairness index is included for tests
// and comparisons, though the paper deliberately reports per-service
// MmF shares instead (§2.2).
//
// Invariants: every function in this package is a pure function of its
// numeric arguments — no randomness, no clock, no global state — and
// none mutates its input slices (order statistics sort private copies).
// The scheduler, the resume/replay machinery, and the fleet merge all
// rely on this: feeding the same trial prefix to the same policy must
// produce the same stopping decision in every process that evaluates
// it.
package stats

import (
	"math"
	"sort"
)

// Median returns the sample median (0 for an empty slice).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics (the "R-7" rule used by most tooling).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted is the R-7 rule on an already-sorted non-empty slice.
// It is shared verbatim with Sketch's exact regime so that a sketch
// whose buffer still holds every sample returns bit-identical quantiles
// to the store-everything path.
func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// IQR returns the inter-quartile range (p75 − p25), the error-bar
// measure used by all the paper's graphs.
func IQR(xs []float64) float64 {
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MedianCI returns a distribution-free ~95% confidence interval for the
// median using the binomial order-statistic method: for n samples the
// interval spans the order statistics at ranks n/2 ± 1.96·√n/2. This is
// the criterion Prudentia's scheduler applies: run more trials until the
// CI is within the per-setting Mbps tolerance (§3.4).
func MedianCI(xs []float64) (lo, hi float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return medianCISorted(s)
}

// medianCIRanks returns the order-statistic ranks that bound the ~95%
// median CI for n ≥ 3 samples (binomial method, ranks clamped to the
// sample). Shared by the exact path and the sketch so both regimes
// agree on which order statistics form the interval.
func medianCIRanks(n int) (loIdx, hiIdx int) {
	half := 1.96 * math.Sqrt(float64(n)) / 2
	loIdx = int(math.Floor(float64(n)/2 - half))
	hiIdx = int(math.Ceil(float64(n)/2 + half))
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	return loIdx, hiIdx
}

// medianCISorted is MedianCI on an already-sorted non-empty slice,
// shared with Sketch's exact regime for bit-identity.
func medianCISorted(s []float64) (lo, hi float64) {
	n := len(s)
	if n < 3 {
		return s[0], s[n-1]
	}
	loIdx, hiIdx := medianCIRanks(n)
	return s[loIdx], s[hiIdx]
}

// CIWithin reports whether the 95% CI of the median spans at most
// ±tolerance around the median (the §3.4 stopping rule).
func CIWithin(xs []float64, tolerance float64) bool {
	if len(xs) == 0 {
		return false
	}
	lo, hi := MedianCI(xs)
	m := Median(xs)
	return m-lo <= tolerance && hi-m <= tolerance
}

// Jain returns Jain's fairness index Σx² form: (Σx)²/(n·Σx²); 1 is
// perfectly equal. The paper explains why it does not use this as its
// headline metric — it cannot say who the winner is (§2.2) — but it is
// useful as a symmetric sanity check in tests.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
