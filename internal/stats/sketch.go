package stats

// Mergeable streaming quantile sketch (ROADMAP item 3). A Sketch
// summarizes an unbounded stream of float64 samples in O(1) space and
// answers quantile / median-CI queries without ever storing more than a
// bounded number of words, while remaining exactly mergeable: the merge
// of any K shard sketches is byte-identical to the single sketch that
// saw the whole stream, regardless of K, of the split, and of the
// arrival order.
//
// Design. The sketch is a hybrid of two regimes, both of which are pure
// functions of the sample *multiset* (never of arrival order):
//
//   - Exact regime (n ≤ SketchBufferCap): samples live in a sorted
//     buffer and every query runs the same R-7 / order-statistic code
//     as Quantile/MedianCI, so results are bit-identical to the
//     store-everything path. Prudentia's per-pair trial counts (tens)
//     sit entirely inside this regime, which is what lets a
//     sketch-backed run reproduce the exact-sample verdict matrix
//     byte for byte.
//
//   - Compacted regime (n > SketchBufferCap): the whole multiset is
//     folded into DDSketch-style logarithmic buckets — key(v) =
//     ⌈log_γ v⌉ with γ = (1+α)/(1−α) — guaranteeing relative quantile
//     error ≤ α. Buckets are kept as key-sorted slices, so state,
//     iteration, and encoding are all canonical.
//
// Because the state in either regime depends only on the multiset,
// Add is order-insensitive and Merge is commutative and associative by
// construction. Compaction happens exactly when n first exceeds the
// buffer cap and folds *all* samples into buckets (no recent-window
// buffer survives), so "one sketch that saw everything" and "merge of
// K shard sketches" land in identical states.
//
// Encoding reuses the journal framing idiom: a frame is
// `len uint32 BE | crc32(IEEE, payload) uint32 BE | payload`, and the
// payload is a canonical serialization of the state (sorted buffer or
// key-ordered buckets). Encode is therefore byte-reproducible: equal
// states yield equal bytes. See docs/SKETCHES.md for the layout and
// error-bound math.

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

const (
	// SketchDefaultAlpha is the default relative quantile-error bound α
	// of the compacted regime: a reported q-quantile x̂ satisfies
	// |x̂ − x| ≤ α·|x| for the true q-quantile x. 1% keeps bucket
	// counts small while being far below any verdict tolerance.
	SketchDefaultAlpha = 0.01

	// SketchBufferCap is the exact-regime capacity: sketches holding at
	// most this many samples answer queries bit-identically to the
	// store-everything path. It deliberately exceeds the paper's
	// per-pair trial ceilings (MaxTrials 30/36) so seed-matrix verdicts
	// are reproduced exactly.
	SketchBufferCap = 128

	// sketchMaxBuckets caps the bucket count per sign as a hard memory
	// bound; beyond it the lowest-key buckets collapse together. With
	// α = 1% this spans ~10^17 of dynamic range per sign, so collapse
	// is a safety valve for adversarial streams, not a normal path.
	sketchMaxBuckets = 2048

	// sketchMinValue is the magnitude floor of the logarithmic buckets:
	// samples with |v| below it are counted as zeros. It bounds the key
	// range for tiny denormals.
	sketchMinValue = 1e-12

	// sketchMagic stamps every encoded payload ("PSK1": Prudentia
	// SKetch, version 1).
	sketchMagic = "PSK1"

	// sketchMaxEncoded bounds DecodeSketch's accepted frame size,
	// mirroring the journal's maxRecord guard against corrupt lengths.
	sketchMaxEncoded = 1 << 20
)

// Sketch state-regime tags used in the encoding.
const (
	sketchRegimeExact     = 0
	sketchRegimeCompacted = 1
)

// Errors returned by DecodeSketch and Merge.
var (
	// ErrSketchCorrupt reports a frame whose length, checksum, magic,
	// or payload structure is invalid.
	ErrSketchCorrupt = errors.New("stats: corrupt sketch encoding")
	// ErrSketchMismatch reports a merge between sketches built with
	// different α (incompatible bucket geometries).
	ErrSketchMismatch = errors.New("stats: cannot merge sketches with different alpha")
)

// bucket is one logarithmic bucket: count samples whose key(|v|)
// equals Key (positive and negative samples live in separate slices).
type bucket struct {
	Key   int32
	Count int64
}

// Sketch is a deterministic mergeable quantile summary. The zero value
// is not ready; use NewSketch. Sketch is not safe for concurrent use —
// like the rest of this package it is single-goroutine state that the
// scheduler owns per pair.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	n        int64
	min, max float64

	// Exact regime: sorted sample buffer. nil once compacted.
	buf       []float64
	compacted bool

	// Compacted regime: key-sorted buckets per sign plus a zero
	// counter (|v| < sketchMinValue).
	zero int64
	pos  []bucket
	neg  []bucket
}

// NewSketch returns an empty sketch with the default error bound α.
func NewSketch() *Sketch {
	return NewSketchAlpha(SketchDefaultAlpha)
}

// NewSketchAlpha returns an empty sketch with relative error bound
// alpha (0 < alpha < 1). All sketches that will ever be merged must
// share the same alpha.
func NewSketchAlpha(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		alpha = SketchDefaultAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Alpha returns the sketch's relative quantile-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of samples added so far.
func (s *Sketch) Count() int { return int(s.n) }

// Min returns the exact minimum sample (0 when empty).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum sample (0 when empty).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Exact reports whether the sketch is still in the exact regime, where
// every query is bit-identical to the store-everything path.
func (s *Sketch) Exact() bool { return !s.compacted }

// Values returns a sorted copy of the samples while the sketch is in
// the exact regime, and (nil, false) once compacted. Callers that need
// raw series diagnostics (e.g. cross-cycle instability) use this and
// degrade gracefully past the cap.
func (s *Sketch) Values() ([]float64, bool) {
	if s.compacted {
		return nil, false
	}
	return append([]float64(nil), s.buf...), true
}

// Add folds one sample into the sketch. NaN samples are ignored and
// ±Inf is clamped to ±MaxFloat64, keeping the state finite so the
// logarithmic buckets stay well-defined; this mirrors how the exact
// path's order statistics would be poisoned by non-finite input.
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 1) {
		v = math.MaxFloat64
	} else if math.IsInf(v, -1) {
		v = -math.MaxFloat64
	}
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if !s.compacted {
		// Insert into the sorted buffer (≤ cap elements, so the
		// O(n) shift is trivially cheap and allocation-free once the
		// buffer reached capacity).
		i := sort.SearchFloat64s(s.buf, v)
		s.buf = append(s.buf, 0)
		copy(s.buf[i+1:], s.buf[i:])
		s.buf[i] = v
		if len(s.buf) > SketchBufferCap {
			s.compact()
		}
		return
	}
	s.addBucket(v, 1)
	s.collapse()
}

// compact folds the entire buffer into logarithmic buckets. Called
// exactly once, when n first exceeds SketchBufferCap, so the compacted
// state is a pure function of the full sample multiset.
func (s *Sketch) compact() {
	for _, v := range s.buf {
		s.addBucket(v, 1)
	}
	s.buf = nil
	s.compacted = true
	s.collapse()
}

// addBucket adds count samples of value v to the bucket state.
func (s *Sketch) addBucket(v float64, count int64) {
	mag := math.Abs(v)
	if mag < sketchMinValue {
		s.zero += count
		return
	}
	key := s.key(mag)
	if v > 0 {
		s.pos = bucketAdd(s.pos, key, count)
	} else {
		s.neg = bucketAdd(s.neg, key, count)
	}
}

// key maps a magnitude (≥ sketchMinValue) to its bucket index
// ⌈log_γ(mag)⌉, so bucket key k covers (γ^(k−1), γ^k].
func (s *Sketch) key(mag float64) int32 {
	return int32(math.Ceil(math.Log(mag) / s.lnGamma))
}

// value returns the canonical representative of bucket key k,
// 2γ^k/(γ+1), whose relative distance to any point of the bucket is at
// most α.
func (s *Sketch) value(key int32) float64 {
	return 2 * math.Pow(s.gamma, float64(key)) / (s.gamma + 1)
}

// bucketAdd inserts count into the key-sorted bucket slice.
func bucketAdd(bs []bucket, key int32, count int64) []bucket {
	i := sort.Search(len(bs), func(i int) bool { return bs[i].Key >= key })
	if i < len(bs) && bs[i].Key == key {
		bs[i].Count += count
		return bs
	}
	bs = append(bs, bucket{})
	copy(bs[i+1:], bs[i:])
	bs[i] = bucket{Key: key, Count: count}
	return bs
}

// collapse enforces the hard per-sign bucket cap by folding the
// lowest-key buckets together (the standard DDSketch safety valve:
// low quantiles lose precision first, extremes and medians keep
// theirs). Collapse is deterministic given the bucket histogram; it is
// only reachable on streams spanning more than ~10^17 of dynamic
// range, far outside any metric this repo produces.
func (s *Sketch) collapse() {
	s.pos = collapseLow(s.pos)
	s.neg = collapseLow(s.neg)
}

// collapseLow merges the lowest-key buckets until at most
// sketchMaxBuckets remain.
func collapseLow(bs []bucket) []bucket {
	if len(bs) <= sketchMaxBuckets {
		return bs
	}
	drop := len(bs) - sketchMaxBuckets
	var sum int64
	for i := 0; i <= drop; i++ {
		sum += bs[i].Count
	}
	bs = bs[drop:]
	bs[0].Count = sum
	return bs
}

// Merge folds other into s. Merging is commutative, associative, and
// shard-split invariant: for any partition of a sample stream into K
// shards, merging the K shard sketches yields a state (and therefore
// an encoding) identical to the single sketch that saw every sample.
// Merge fails only when the two sketches were built with different α.
// other is not modified.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.alpha != s.alpha {
		return fmt.Errorf("%w: %v vs %v", ErrSketchMismatch, s.alpha, other.alpha)
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	total := s.n + other.n
	if !s.compacted && !other.compacted && total <= SketchBufferCap {
		// Exact ∪ exact within cap: merge the sorted buffers so the
		// state stays the canonical sorted multiset.
		merged := make([]float64, 0, total)
		i, j := 0, 0
		for i < len(s.buf) && j < len(other.buf) {
			if s.buf[i] <= other.buf[j] {
				merged = append(merged, s.buf[i])
				i++
			} else {
				merged = append(merged, other.buf[j])
				j++
			}
		}
		merged = append(merged, s.buf[i:]...)
		merged = append(merged, other.buf[j:]...)
		s.buf = merged
		s.n = total
		return nil
	}
	// Any other combination lands in the compacted regime: fold both
	// sides' multisets into buckets and sum.
	if !s.compacted {
		s.compact()
	}
	s.n = total
	if other.compacted {
		s.zero += other.zero
		for _, b := range other.pos {
			s.pos = bucketAdd(s.pos, b.Key, b.Count)
		}
		for _, b := range other.neg {
			s.neg = bucketAdd(s.neg, b.Key, b.Count)
		}
	} else {
		for _, v := range other.buf {
			s.addBucket(v, 1)
		}
	}
	s.collapse()
	return nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1). In the exact regime it
// is bit-identical to Quantile on the raw samples (R-7 rule); in the
// compacted regime it returns a value within relative error α of the
// true quantile. Empty sketches return 0, mirroring Quantile(nil).
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if !s.compacted {
		return quantileSorted(s.buf, q)
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// Nearest-rank on the bucket histogram. R-7 interpolation is
	// meaningless below bucket resolution, so the compacted regime
	// reads the order statistic at rank round(q·(n−1)).
	rank := int64(math.Round(q * float64(s.n-1)))
	return s.valueAtRank(rank)
}

// Median returns the sketch median (Quantile 0.5).
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

// MedianCI returns the distribution-free ~95% confidence interval for
// the median, using the same order-statistic ranks as MedianCI. Exact
// regime: bit-identical to MedianCI on the raw samples. Compacted
// regime: each bound is the bucket estimate of its order statistic
// (within relative error α).
func (s *Sketch) MedianCI() (lo, hi float64) {
	if s.n == 0 {
		return 0, 0
	}
	if !s.compacted {
		return medianCISorted(s.buf)
	}
	if s.n < 3 {
		return s.min, s.max
	}
	loIdx, hiIdx := medianCIRanks(int(s.n))
	return s.valueAtRank(int64(loIdx)), s.valueAtRank(int64(hiIdx))
}

// CIWithin reports whether the sketch's median CI spans at most
// ±tolerance around the median — Sketch's counterpart of CIWithin.
func (s *Sketch) CIWithin(tolerance float64) bool {
	if s.n == 0 {
		return false
	}
	lo, hi := s.MedianCI()
	m := s.Median()
	return m-lo <= tolerance && hi-m <= tolerance
}

// IQR returns the inter-quartile range (p75 − p25), Sketch's
// counterpart of IQR.
func (s *Sketch) IQR() float64 {
	return s.Quantile(0.75) - s.Quantile(0.25)
}

// Each visits the sketch's contents in ascending value order: every
// retained sample individually in the exact regime, and each bucket's
// representative with its count in the compacted regime. Useful for
// replaying a sketch into downstream histograms or test oracles.
func (s *Sketch) Each(f func(v float64, count int64)) {
	if !s.compacted {
		for _, v := range s.buf {
			f(v, 1)
		}
		return
	}
	for i := len(s.neg) - 1; i >= 0; i-- {
		f(-s.value(s.neg[i].Key), s.neg[i].Count)
	}
	if s.zero > 0 {
		f(0, s.zero)
	}
	for _, b := range s.pos {
		f(s.value(b.Key), b.Count)
	}
}

// valueAtRank walks the compacted histogram in value order — negative
// buckets from most to least negative, zeros, then positive buckets —
// and returns the representative of the bucket containing the given
// 0-based rank. The exact min/max replace bucket estimates at the
// extreme ranks.
func (s *Sketch) valueAtRank(rank int64) float64 {
	if rank <= 0 {
		return s.min
	}
	if rank >= s.n-1 {
		return s.max
	}
	var cum int64
	for i := len(s.neg) - 1; i >= 0; i-- {
		cum += s.neg[i].Count
		if rank < cum {
			return -s.value(s.neg[i].Key)
		}
	}
	cum += s.zero
	if rank < cum {
		return 0
	}
	for _, b := range s.pos {
		cum += b.Count
		if rank < cum {
			return s.value(b.Key)
		}
	}
	return s.max
}

// Encoded-payload layout (all integers big-endian, floats as IEEE-754
// bits; see docs/SKETCHES.md):
//
//	magic   [4]byte "PSK1"
//	regime  uint8   0 exact | 1 compacted
//	alpha   float64
//	n       uint64
//	min,max float64 (present when n > 0)
//	exact:      buflen uint32, buf [buflen]float64 (sorted)
//	compacted:  zero uint64,
//	            npos uint32, (key int32, count uint64)... key-ascending
//	            nneg uint32, (key int32, count uint64)... key-ascending
//
// The frame wrapping the payload reuses the journal idiom:
// len uint32 BE | crc32(IEEE, payload) uint32 BE | payload.

// Encode serializes the sketch into a CRC-framed canonical binary
// form. Equal states produce equal bytes, so encoded sketches can be
// compared, deduplicated, and merged across fleet workers without
// caring which worker (or how many) produced them.
func (s *Sketch) Encode() []byte {
	payload := make([]byte, 0, 64+len(s.buf)*8+(len(s.pos)+len(s.neg))*12)
	payload = append(payload, sketchMagic...)
	if s.compacted {
		payload = append(payload, sketchRegimeCompacted)
	} else {
		payload = append(payload, sketchRegimeExact)
	}
	payload = be64(payload, math.Float64bits(s.alpha))
	payload = be64(payload, uint64(s.n))
	if s.n > 0 {
		payload = be64(payload, math.Float64bits(s.min))
		payload = be64(payload, math.Float64bits(s.max))
	}
	if !s.compacted {
		payload = be32(payload, uint32(len(s.buf)))
		for _, v := range s.buf {
			payload = be64(payload, math.Float64bits(v))
		}
	} else {
		payload = be64(payload, uint64(s.zero))
		payload = be32(payload, uint32(len(s.pos)))
		for _, b := range s.pos {
			payload = be32(payload, uint32(b.Key))
			payload = be64(payload, uint64(b.Count))
		}
		payload = be32(payload, uint32(len(s.neg)))
		for _, b := range s.neg {
			payload = be32(payload, uint32(b.Key))
			payload = be64(payload, uint64(b.Count))
		}
	}
	out := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func be64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// sketchReader walks an encoded payload with bounds checking.
type sketchReader struct {
	b  []byte
	ok bool
}

func (r *sketchReader) u8() byte {
	if len(r.b) < 1 {
		r.ok = false
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *sketchReader) u32() uint32 {
	if len(r.b) < 4 {
		r.ok = false
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *sketchReader) u64() uint64 {
	if len(r.b) < 8 {
		r.ok = false
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// DecodeSketch parses a frame produced by Encode, verifying the
// length, checksum, magic, and structural invariants (sorted buffer,
// strictly ascending bucket keys, positive counts, consistent totals).
// It returns ErrSketchCorrupt-wrapped errors on any violation, so a
// torn or tampered frame can never silently become a plausible sketch.
func DecodeSketch(data []byte) (*Sketch, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: short frame (%d bytes)", ErrSketchCorrupt, len(data))
	}
	n := binary.BigEndian.Uint32(data[0:4])
	if n > sketchMaxEncoded || int(n) != len(data)-8 {
		return nil, fmt.Errorf("%w: frame length %d does not match %d payload bytes",
			ErrSketchCorrupt, n, len(data)-8)
	}
	payload := data[8:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSketchCorrupt)
	}
	r := &sketchReader{b: payload, ok: true}
	if len(r.b) < 4 || string(r.b[:4]) != sketchMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSketchCorrupt)
	}
	r.b = r.b[4:]
	regime := r.u8()
	alpha := math.Float64frombits(r.u64())
	if !r.ok || !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("%w: invalid alpha", ErrSketchCorrupt)
	}
	s := NewSketchAlpha(alpha)
	count := r.u64()
	if count > math.MaxInt64 {
		return nil, fmt.Errorf("%w: invalid count", ErrSketchCorrupt)
	}
	s.n = int64(count)
	if s.n > 0 {
		s.min = math.Float64frombits(r.u64())
		s.max = math.Float64frombits(r.u64())
		if !r.ok || math.IsNaN(s.min) || math.IsNaN(s.max) || s.min > s.max {
			return nil, fmt.Errorf("%w: invalid min/max", ErrSketchCorrupt)
		}
	}
	switch regime {
	case sketchRegimeExact:
		bl := r.u32()
		if !r.ok || int64(bl) != s.n || bl > SketchBufferCap {
			return nil, fmt.Errorf("%w: invalid buffer length", ErrSketchCorrupt)
		}
		s.buf = make([]float64, 0, bl)
		prev := math.Inf(-1)
		for i := uint32(0); i < bl; i++ {
			v := math.Float64frombits(r.u64())
			if math.IsNaN(v) || v < prev {
				return nil, fmt.Errorf("%w: buffer not sorted", ErrSketchCorrupt)
			}
			s.buf = append(s.buf, v)
			prev = v
		}
	case sketchRegimeCompacted:
		s.compacted = true
		zero := r.u64()
		if zero > math.MaxInt64 {
			return nil, fmt.Errorf("%w: invalid zero count", ErrSketchCorrupt)
		}
		s.zero = int64(zero)
		var total int64 = s.zero
		var err error
		if s.pos, total, err = decodeBuckets(r, total); err != nil {
			return nil, err
		}
		if s.neg, total, err = decodeBuckets(r, total); err != nil {
			return nil, err
		}
		if !r.ok || total != s.n {
			return nil, fmt.Errorf("%w: bucket totals disagree with count", ErrSketchCorrupt)
		}
	default:
		return nil, fmt.Errorf("%w: unknown regime %d", ErrSketchCorrupt, regime)
	}
	if !r.ok || len(r.b) != 0 {
		return nil, fmt.Errorf("%w: trailing or truncated payload", ErrSketchCorrupt)
	}
	return s, nil
}

// decodeBuckets reads one key-ascending bucket list, accumulating its
// counts into total.
func decodeBuckets(r *sketchReader, total int64) ([]bucket, int64, error) {
	n := r.u32()
	if !r.ok || n > sketchMaxBuckets {
		return nil, 0, fmt.Errorf("%w: invalid bucket count", ErrSketchCorrupt)
	}
	bs := make([]bucket, 0, n)
	prev := int64(math.MinInt64)
	for i := uint32(0); i < n; i++ {
		key := int32(r.u32())
		count := r.u64()
		if !r.ok || count == 0 || count > math.MaxInt64 || int64(key) <= prev {
			return nil, 0, fmt.Errorf("%w: invalid bucket", ErrSketchCorrupt)
		}
		bs = append(bs, bucket{Key: key, Count: int64(count)})
		prev = int64(key)
		total += int64(count)
		if total < 0 {
			return nil, 0, fmt.Errorf("%w: bucket totals overflow", ErrSketchCorrupt)
		}
	}
	return bs, total, nil
}

// MarshalJSON encodes the sketch as a base64 string of its binary
// frame, so sketches ride unchanged through checkpoint JSON and the
// fleet protocol's json.RawMessage outcomes.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	enc := base64.StdEncoding.EncodeToString(s.Encode())
	return []byte(`"` + enc + `"`), nil
}

// UnmarshalJSON decodes the base64 binary frame produced by
// MarshalJSON.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("%w: sketch JSON must be a base64 string", ErrSketchCorrupt)
	}
	raw, err := base64.StdEncoding.DecodeString(string(data[1 : len(data)-1]))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSketchCorrupt, err)
	}
	dec, err := DecodeSketch(raw)
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}
