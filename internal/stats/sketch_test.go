package stats

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchOf builds a sketch from the given samples.
func sketchOf(xs []float64) *Sketch {
	s := NewSketch()
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// genSamples draws n deterministic samples from a few adversarial
// shapes keyed by dist.
func genSamples(r *rand.Rand, dist string, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch dist {
		case "uniform":
			xs[i] = r.Float64() * 100
		case "lognormal": // heavy right tail over ~6 decades
			xs[i] = math.Exp(r.NormFloat64() * 4)
		case "mixed-sign":
			xs[i] = r.NormFloat64() * 50
		case "duplicates": // many ties
			xs[i] = float64(r.Intn(8)) * 12.5
		case "with-zeros":
			if r.Intn(4) == 0 {
				xs[i] = 0
			} else {
				xs[i] = r.Float64()*10 + 1
			}
		case "bimodal":
			if r.Intn(2) == 0 {
				xs[i] = 1 + r.Float64()
			} else {
				xs[i] = 1e6 + r.Float64()*1e5
			}
		default:
			panic("unknown dist " + dist)
		}
	}
	return xs
}

var sketchDists = []string{"uniform", "lognormal", "mixed-sign", "duplicates", "with-zeros", "bimodal"}

// TestSketchExactRegimeBitIdentical: while n ≤ SketchBufferCap every
// query must be bit-identical (==, not approximately equal) to the
// store-everything functions — the property that makes sketch-backed
// seed-matrix runs reproduce the exact verdict matrix byte for byte.
func TestSketchExactRegimeBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, dist := range sketchDists {
		for _, n := range []int{1, 2, 3, 5, 30, 36, 127, SketchBufferCap} {
			xs := genSamples(r, dist, n)
			s := sketchOf(xs)
			if !s.Exact() {
				t.Fatalf("%s n=%d: sketch left exact regime below cap", dist, n)
			}
			for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.95, 1} {
				if got, want := s.Quantile(q), Quantile(xs, q); got != want {
					t.Fatalf("%s n=%d q=%g: sketch %v != exact %v", dist, n, q, got, want)
				}
			}
			glo, ghi := s.MedianCI()
			wlo, whi := MedianCI(xs)
			if glo != wlo || ghi != whi {
				t.Fatalf("%s n=%d: MedianCI (%v,%v) != (%v,%v)", dist, n, glo, ghi, wlo, whi)
			}
			if got, want := s.IQR(), IQR(xs); got != want {
				t.Fatalf("%s n=%d: IQR %v != %v", dist, n, got, want)
			}
			for _, tol := range []float64{0.01, 1, 100} {
				if got, want := s.CIWithin(tol), CIWithin(xs, tol); got != want {
					t.Fatalf("%s n=%d tol=%g: CIWithin %v != %v", dist, n, tol, got, want)
				}
			}
		}
	}
}

// TestSketchEdgeCases: empty, single, pair, all-equal, NaN, and ±Inf
// inputs for the sketch and the slice paths it mirrors.
func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch()
	if s.Count() != 0 || s.Median() != 0 || s.Quantile(0.9) != 0 {
		t.Fatal("empty sketch must answer 0 like Quantile(nil)")
	}
	if lo, hi := s.MedianCI(); lo != 0 || hi != 0 {
		t.Fatalf("empty MedianCI = (%v,%v)", lo, hi)
	}
	if s.CIWithin(1e9) {
		t.Fatal("empty sketch cannot satisfy any tolerance")
	}
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty Min/Max must be 0")
	}

	s.Add(math.NaN())
	if s.Count() != 0 {
		t.Fatal("NaN must be ignored, not counted")
	}

	s.Add(42)
	if s.Median() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("n=1: median %v min %v max %v", s.Median(), s.Min(), s.Max())
	}
	if lo, hi := s.MedianCI(); lo != 42 || hi != 42 {
		t.Fatalf("n=1 MedianCI = (%v,%v)", lo, hi)
	}

	s.Add(44)
	if s.Median() != 43 {
		t.Fatalf("n=2 median = %v, want interpolated 43", s.Median())
	}
	if lo, hi := s.MedianCI(); lo != 42 || hi != 44 {
		t.Fatalf("n=2 MedianCI = (%v,%v), want sample range", lo, hi)
	}

	inf := NewSketch()
	inf.Add(math.Inf(1))
	inf.Add(math.Inf(-1))
	if inf.Max() != math.MaxFloat64 || inf.Min() != -math.MaxFloat64 {
		t.Fatalf("±Inf must clamp to ±MaxFloat64, got [%v, %v]", inf.Min(), inf.Max())
	}

	eq := NewSketch()
	for i := 0; i < 500; i++ { // past the cap: compacted all-equal
		eq.Add(7.5)
	}
	if eq.Exact() {
		t.Fatal("500 samples must compact")
	}
	if m := eq.Median(); math.Abs(m-7.5) > 7.5*SketchDefaultAlpha {
		t.Fatalf("all-equal compacted median %v strays beyond α", m)
	}
	if lo, hi := eq.MedianCI(); lo > hi {
		t.Fatalf("MedianCI inverted: (%v,%v)", lo, hi)
	}
}

// TestMedianCIEdgeCases pins the slice-path degenerate behaviour the
// sequential stopper depends on: n<3 degrades to the sample range, so
// two disagreeing trials can never look converged.
func TestMedianCIEdgeCases(t *testing.T) {
	if lo, hi := MedianCI(nil); lo != 0 || hi != 0 {
		t.Fatalf("MedianCI(nil) = (%v,%v)", lo, hi)
	}
	if lo, hi := MedianCI([]float64{5}); lo != 5 || hi != 5 {
		t.Fatalf("MedianCI(n=1) = (%v,%v)", lo, hi)
	}
	if lo, hi := MedianCI([]float64{9, 1}); lo != 1 || hi != 9 {
		t.Fatalf("MedianCI(n=2) = (%v,%v), want full range", lo, hi)
	}
	all := make([]float64, 11)
	for i := range all {
		all[i] = 3.25
	}
	if lo, hi := MedianCI(all); lo != 3.25 || hi != 3.25 {
		t.Fatalf("MedianCI(all-equal) = (%v,%v)", lo, hi)
	}
	for n := 3; n < 200; n++ {
		lo, hi := medianCIRanks(n)
		if lo < 0 || hi > n-1 || lo > hi {
			t.Fatalf("medianCIRanks(%d) = (%d,%d) out of bounds", n, lo, hi)
		}
	}
}

// TestSketchCompactedErrorBound: past the buffer cap, every reported
// quantile must be within relative error α of the true order statistic
// at the same rank — the DDSketch guarantee, on adversarial shapes.
func TestSketchCompactedErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 10_000
	for _, dist := range sketchDists {
		xs := genSamples(r, dist, n)
		s := sketchOf(xs)
		if s.Exact() {
			t.Fatalf("%s: n=%d did not compact", dist, n)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// Compare against the order statistic at the same rank the
		// sketch reads, so rank rounding is not charged against α.
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			rank := int(math.Round(q * float64(n-1)))
			want := sorted[rank]
			got := s.Quantile(q)
			tol := SketchDefaultAlpha*math.Abs(want) + 1e-9
			if math.Abs(got-want) > tol {
				t.Errorf("%s q=%g: sketch %v vs true %v (err %.4g > α bound %.4g)",
					dist, q, got, want, math.Abs(got-want), tol)
			}
		}
		if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
			t.Errorf("%s: extreme quantiles must return exact min/max", dist)
		}
	}
}

// TestSketchAddOrderInsensitive: any permutation of the same multiset
// produces a byte-identical encoding, in both regimes.
func TestSketchAddOrderInsensitive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{10, SketchBufferCap, 1000} {
		xs := genSamples(r, "lognormal", n)
		a := sketchOf(xs)
		perm := r.Perm(len(xs))
		b := NewSketch()
		for _, i := range perm {
			b.Add(xs[i])
		}
		if !bytes.Equal(a.Encode(), b.Encode()) {
			t.Fatalf("n=%d: permuted insertion changed the encoding", n)
		}
	}
}

// TestSketchMergeProperties: commutativity and associativity, verified
// on the encoded bytes (state equality, not approximate equality).
func TestSketchMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{20, 300} { // both regimes
		xa := genSamples(r, "uniform", n)
		xb := genSamples(r, "lognormal", n/2)
		xc := genSamples(r, "mixed-sign", n*2)

		ab := sketchOf(xa)
		if err := ab.Merge(sketchOf(xb)); err != nil {
			t.Fatal(err)
		}
		ba := sketchOf(xb)
		if err := ba.Merge(sketchOf(xa)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Encode(), ba.Encode()) {
			t.Fatalf("n=%d: merge is not commutative", n)
		}

		abc1 := sketchOf(xa)
		mustMerge(t, abc1, sketchOf(xb))
		mustMerge(t, abc1, sketchOf(xc))
		bc := sketchOf(xb)
		mustMerge(t, bc, sketchOf(xc))
		abc2 := sketchOf(xa)
		mustMerge(t, abc2, bc)
		if !bytes.Equal(abc1.Encode(), abc2.Encode()) {
			t.Fatalf("n=%d: merge is not associative", n)
		}
	}
}

func mustMerge(t *testing.T, dst, src *Sketch) {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
}

// TestSketchShardSplitInvariance: splitting one stream across K shard
// sketches and merging them yields byte-identical state to the single
// sketch that saw everything — for any K and both split geometries.
// This is the exact property the fleet coordinator relies on.
func TestSketchShardSplitInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, dist := range sketchDists {
		for _, n := range []int{60, 5000} {
			xs := genSamples(r, dist, n)
			want := sketchOf(xs).Encode()
			for _, k := range []int{1, 2, 3, 5, 7, 16} {
				for _, split := range []string{"round-robin", "contiguous"} {
					shards := make([]*Sketch, k)
					for i := range shards {
						shards[i] = NewSketch()
					}
					for i, x := range xs {
						var w int
						if split == "round-robin" {
							w = i % k
						} else {
							w = i * k / len(xs)
						}
						shards[w].Add(x)
					}
					merged := NewSketch()
					for _, sh := range shards {
						mustMerge(t, merged, sh)
					}
					if !bytes.Equal(merged.Encode(), want) {
						t.Fatalf("%s n=%d K=%d %s: merged shards != whole-stream sketch",
							dist, n, k, split)
					}
				}
			}
		}
	}
}

// TestSketchMergeEmptyAndNil: merging nil or empty sketches is a no-op.
func TestSketchMergeEmptyAndNil(t *testing.T) {
	s := sketchOf([]float64{1, 2, 3})
	before := s.Encode()
	mustMerge(t, s, nil)
	mustMerge(t, s, NewSketch())
	if !bytes.Equal(s.Encode(), before) {
		t.Fatal("merging nil/empty changed the state")
	}
	e := NewSketch()
	mustMerge(t, e, s)
	if !bytes.Equal(e.Encode(), before) {
		t.Fatal("empty ∪ s != s")
	}
}

// TestSketchMergeAlphaMismatch: incompatible bucket geometries refuse
// to merge instead of silently corrupting quantiles.
func TestSketchMergeAlphaMismatch(t *testing.T) {
	a := NewSketchAlpha(0.01)
	b := NewSketchAlpha(0.02)
	b.Add(1)
	if err := a.Merge(b); !errors.Is(err, ErrSketchMismatch) {
		t.Fatalf("alpha mismatch merge: %v, want ErrSketchMismatch", err)
	}
}

// TestSketchEncodeDecodeRoundTrip: decode(encode(s)) reproduces both
// the bytes and every query answer, in both regimes.
func TestSketchEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, 100, 4000} {
		xs := genSamples(r, "mixed-sign", n)
		s := sketchOf(xs)
		enc := s.Encode()
		d, err := DecodeSketch(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(d.Encode(), enc) {
			t.Fatalf("n=%d: re-encode differs", n)
		}
		if d.Count() != s.Count() || d.Median() != s.Median() || d.IQR() != s.IQR() {
			t.Fatalf("n=%d: decoded queries differ", n)
		}
	}
}

// TestSketchDecodeRejectsCorrupt: torn, tampered, and hostile frames
// surface ErrSketchCorrupt instead of plausible sketches or panics.
func TestSketchDecodeRejectsCorrupt(t *testing.T) {
	good := sketchOf([]float64{1, 2, 3, 4, 5}).Encode()
	cases := map[string][]byte{
		"empty":           {},
		"short frame":     good[:6],
		"truncated":       good[:len(good)-3],
		"trailing":        append(append([]byte(nil), good...), 0xff),
		"length mismatch": append([]byte{0xff}, good[1:]...),
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01
	cases["bit flip"] = flipped
	magic := append([]byte(nil), good...)
	magic[8] = 'X' // first payload byte
	cases["bad magic"] = magic
	for name, data := range cases {
		if _, err := DecodeSketch(data); !errors.Is(err, ErrSketchCorrupt) {
			t.Errorf("%s: %v, want ErrSketchCorrupt", name, err)
		}
	}
}

// TestSketchJSONRoundTrip: the base64 JSON form survives a full
// marshal/unmarshal cycle with byte-identical state — the property the
// checkpoint and fleet wire formats depend on.
func TestSketchJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{3, 1000} {
		s := sketchOf(genSamples(r, "uniform", n))
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var d Sketch
		if err := json.Unmarshal(blob, &d); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d.Encode(), s.Encode()) {
			t.Fatalf("n=%d: JSON round trip changed the state", n)
		}
	}
	var d Sketch
	if err := json.Unmarshal([]byte(`123`), &d); err == nil {
		t.Fatal("non-string sketch JSON accepted")
	}
}

// TestEvaluateSketchMatchesEvaluate: at every prefix of a random share
// series, the sketch-backed stopper (with its caller-maintained verdict
// ring) must reach the identical decision to the slice-backed stopper —
// the equivalence that keeps adaptive sketch runs byte-identical.
func TestEvaluateSketchMatchesEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	pols := []SequentialPolicy{
		{MinTrials: 2, MaxTrials: 30, MaxCIWidth: 10, StableK: 3, FairSharePct: 80},
		{MinTrials: 1, MaxTrials: 12, MaxCIWidth: 2, StableK: 5, FairSharePct: 80},
		{MinTrials: 3, MaxTrials: 40, StableK: 2, FairSharePct: 95},
		{MinTrials: 2, MaxTrials: 8, MaxCIWidth: 25, StableK: 1, FairSharePct: 80},
	}
	for pi, pol := range pols {
		for trial := 0; trial < 50; trial++ {
			n := r.Intn(40) + 1
			s0, s1 := make([]float64, 0, n), make([]float64, 0, n)
			sk0, sk1 := NewSketch(), NewSketch()
			var ring []bool
			for i := 0; i < n; i++ {
				// Mix fair and unfair stretches so verdicts flip.
				base := 70 + 40*math.Sin(float64(i)/3+float64(trial))
				v0 := base + r.Float64()*10
				v1 := 160 - base + r.Float64()*10
				s0, s1 = append(s0, v0), append(s1, v1)
				sk0.Add(v0)
				sk1.Add(v1)
				want := pol.Evaluate(s0, s1)
				got := pol.EvaluateSketch(sk0, sk1, ring)
				if got != want {
					t.Fatalf("policy %d prefix %d: sketch %+v != slice %+v", pi, i+1, got, want)
				}
				// Maintain the ring exactly as the pair protocol does.
				if pol.StableK > 1 {
					ring = append(ring, got.Fair)
					if len(ring) > pol.StableK-1 {
						ring = ring[1:]
					}
				}
				if want.Stop {
					break
				}
			}
		}
	}
}

// TestSketchEachRoundTrip: Each replays exact samples verbatim and
// compacted contents in ascending order with the right total count.
func TestSketchEachRoundTrip(t *testing.T) {
	xs := []float64{3, 1, 2}
	var got []float64
	sketchOf(xs).Each(func(v float64, c int64) {
		for i := int64(0); i < c; i++ {
			got = append(got, v)
		}
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("exact Each = %v", got)
	}

	r := rand.New(rand.NewSource(29))
	big := sketchOf(genSamples(r, "mixed-sign", 2000))
	var total int64
	prev := math.Inf(-1)
	big.Each(func(v float64, c int64) {
		if v < prev {
			t.Fatalf("Each not ascending: %v after %v", v, prev)
		}
		prev = v
		total += c
	})
	if total != 2000 {
		t.Fatalf("Each total = %d, want 2000", total)
	}
}
