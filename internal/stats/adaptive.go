package stats

// Sequential stopping for adaptive trial budgets. A SequentialPolicy is
// evaluated after every counted trial on the accumulated MmF-share
// series of both slots, and decides — as a pure function of those
// series and nothing else — whether the pair needs more trials. Purity
// is the load-bearing property: a resumed cycle replaying journaled
// trials, a fleet worker executing the pair remotely, and an
// uninterrupted serial run all reconstruct the identical share prefix
// and therefore reach the identical stopping decision, which is what
// keeps adaptive reports byte-identical across resume/replay and any
// worker count.

// DefaultFairSharePct is the paper's "roughly fair" verdict boundary:
// a slot achieving at least this percentage of its max-min fair share
// is considered fairly treated. Callers that leave
// SequentialPolicy.FairSharePct zero default to it.
const DefaultFairSharePct = 80.0

// Stop reasons reported by SequentialPolicy.Evaluate. They label the
// prudentia_adaptive_stops_total counter and PairOutcome.StopReason.
const (
	// StopCIWidth: the distribution-free 95% CI on both slots' share
	// medians narrowed below the policy's MaxCIWidth.
	StopCIWidth = "ci_width"
	// StopStable: the fair/unfair verdict was identical after each of
	// the last StableK trials.
	StopStable = "verdict_stable"
	// StopBudget: the pair exhausted its allocated trial budget without
	// meeting either convergence criterion.
	StopBudget = "budget"
)

// SequentialPolicy is the deterministic sequential stopper: evaluate
// after every trial, stop as soon as the verdict is statistically
// settled or the budget runs out.
type SequentialPolicy struct {
	// MinTrials is the floor below which Evaluate never stops (clamped
	// to MaxTrials when the allocated budget is smaller).
	MinTrials int
	// MaxTrials is the pair's trial ceiling — under coarse-to-fine
	// screening, the per-pair allocated budget rather than the global
	// maximum. Reaching it stops with StopBudget. Zero means no ceiling.
	MaxTrials int
	// MaxCIWidth is the convergence target in share points: stop when
	// the wider of the two slots' median-CI widths is at most this.
	// Zero disables the CI-width rule.
	MaxCIWidth float64
	// StableK stops after K consecutive trials that each left the
	// fair/unfair verdict unchanged. Zero disables the stability rule.
	StableK int
	// FairSharePct is the verdict boundary: a pair is "fair" when both
	// slots' median shares are at least this many percent of the MmF
	// fair share.
	FairSharePct float64
}

// StopDecision is Evaluate's verdict on one share prefix.
type StopDecision struct {
	// Stop reports whether the pair needs no further trials.
	Stop bool
	// Reason is StopCIWidth, StopStable, or StopBudget when Stop is
	// true, empty otherwise.
	Reason string
	// CIWidth is the wider of the two slots' median-CI widths, for
	// telemetry.
	CIWidth float64
	// Fair is the current verdict (both medians ≥ FairSharePct).
	Fair bool
}

// CIWidth returns the width of the distribution-free 95% CI on the
// median (MedianCI's hi − lo). For n < 3 this degrades to the sample
// range, which is exactly the conservative behaviour a stopper wants:
// two agreeing trials may stop, two disagreeing ones cannot.
func CIWidth(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := MedianCI(xs)
	return hi - lo
}

// Fair reports the pair's fairness verdict on a share prefix: both
// slots' median MmF shares are at least fairPct percent.
func Fair(s0, s1 []float64, fairPct float64) bool {
	return Median(s0) >= fairPct && Median(s1) >= fairPct
}

// Evaluate applies the stopping rules to the accumulated share series
// of both slots (equal length, one entry per counted trial, in trial
// order). Rules are checked in a fixed order — CI width, verdict
// stability, budget — so the recorded stop reason is deterministic too.
func (p SequentialPolicy) Evaluate(s0, s1 []float64) StopDecision {
	n := len(s0)
	d := StopDecision{Fair: Fair(s0, s1, p.FairSharePct)}
	if w := CIWidth(s1); w > d.CIWidth {
		d.CIWidth = w
	}
	if w := CIWidth(s0); w > d.CIWidth {
		d.CIWidth = w
	}
	if n == 0 {
		return d
	}
	min := p.MinTrials
	if p.MaxTrials > 0 && min > p.MaxTrials {
		min = p.MaxTrials
	}
	if n < min {
		return d
	}
	if p.MaxCIWidth > 0 && d.CIWidth <= p.MaxCIWidth {
		d.Stop, d.Reason = true, StopCIWidth
		return d
	}
	if p.StableK > 0 && n >= p.StableK && p.verdictStable(s0, s1) {
		d.Stop, d.Reason = true, StopStable
		return d
	}
	if p.MaxTrials > 0 && n >= p.MaxTrials {
		d.Stop, d.Reason = true, StopBudget
		return d
	}
	return d
}

// EvaluateSketch applies the same stopping rules as Evaluate to
// sketch-backed share summaries instead of raw series. prior is the
// ring of Fair verdicts recorded after each previous counted trial
// (oldest first, latest last, at most StableK−1 entries kept by the
// caller); because every verdict is a pure function of its prefix,
// checking the recorded ring is equivalent to Evaluate's prefix
// recomputation — the ring simply remembers what the recomputation
// would recompute. In the sketch's exact regime (n ≤ SketchBufferCap,
// which covers every real trial budget) the decision is bit-identical
// to Evaluate on the raw series.
func (p SequentialPolicy) EvaluateSketch(s0, s1 *Sketch, prior []bool) StopDecision {
	n := s0.Count()
	d := StopDecision{Fair: s0.Median() >= p.FairSharePct && s1.Median() >= p.FairSharePct}
	if w := sketchCIWidth(s1); w > d.CIWidth {
		d.CIWidth = w
	}
	if w := sketchCIWidth(s0); w > d.CIWidth {
		d.CIWidth = w
	}
	if n == 0 {
		return d
	}
	min := p.MinTrials
	if p.MaxTrials > 0 && min > p.MaxTrials {
		min = p.MaxTrials
	}
	if n < min {
		return d
	}
	if p.MaxCIWidth > 0 && d.CIWidth <= p.MaxCIWidth {
		d.Stop, d.Reason = true, StopCIWidth
		return d
	}
	if p.StableK > 0 && n >= p.StableK && ringStable(prior, d.Fair, p.StableK) {
		d.Stop, d.Reason = true, StopStable
		return d
	}
	if p.MaxTrials > 0 && n >= p.MaxTrials {
		d.Stop, d.Reason = true, StopBudget
		return d
	}
	return d
}

// sketchCIWidth mirrors CIWidth for a sketch: MedianCI width, with the
// same n<3 degradation to the sample range and 0 for empty input.
func sketchCIWidth(s *Sketch) float64 {
	if s.Count() == 0 {
		return 0
	}
	lo, hi := s.MedianCI()
	return hi - lo
}

// ringStable reports whether the last stableK−1 recorded verdicts all
// match the current one — the ring counterpart of verdictStable.
func ringStable(prior []bool, want bool, stableK int) bool {
	if len(prior) < stableK-1 {
		return false
	}
	for _, v := range prior[len(prior)-(stableK-1):] {
		if v != want {
			return false
		}
	}
	return true
}

// verdictStable reports whether the fair/unfair verdict was identical
// after each of the last StableK prefixes. A verdict flip inside the
// window restarts the stability count by construction: the flipped
// prefix disagrees with its successors until it ages out.
func (p SequentialPolicy) verdictStable(s0, s1 []float64) bool {
	n := len(s0)
	want := Fair(s0, s1, p.FairSharePct)
	for i := 1; i < p.StableK; i++ {
		if Fair(s0[:n-i], s1[:n-i], p.FairSharePct) != want {
			return false
		}
	}
	return true
}

// ScreenScore ranks a pair's contestedness from a coarse screening
// trial: the distance of the losing slot's share from the fairness
// boundary. Lower is more contested — a pair sitting right on the
// boundary needs full-depth trials to call, while one far on either
// side converges immediately. Callers use −1 (sorting before every real
// score) for pairs whose screening produced no signal, so uncertainty
// also buys depth.
func ScreenScore(share0, share1, fairPct float64) float64 {
	min := share0
	if share1 < min {
		min = share1
	}
	d := min - fairPct
	if d < 0 {
		d = -d
	}
	return d
}
