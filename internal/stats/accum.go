package stats

// Batched counter accumulation (the view-maintenance / "VSA" pattern
// from ROADMAP item 3). The watchdog's hottest counters — the trial
// ledger and the per-trial netem packet aggregates — are shared
// atomics: under the worker pool every counted trial costs a dozen
// atomic read-modify-writes on cache lines contended by every worker.
// An Accum gives each owning goroutine a private bank of plain int64
// delta cells; the hot path mutates those with ordinary arithmetic,
// and a single Flush at a natural batch boundary (pair completion)
// commits each cell's net delta to its shared sink in one synchronized
// operation. Self-cancelling updates coalesce to nothing, and a batch
// of N trials costs one committed add per counter instead of N.
//
// Because counter addition is commutative and Flush preserves exact
// totals (it commits sums, never samples), batched totals are
// identical to unbatched ones for any worker count and any flush
// schedule — the same argument that already makes the registry's
// counters deterministic under the pool.

// Accum is a single-owner bank of batched counter cells. Register each
// shared sink once with Cell, accumulate with Add, and commit with
// Flush. The zero value is ready to use. An Accum is deliberately NOT
// safe for concurrent use: its entire point is that the hot path runs
// unsynchronized, so each Accum must be owned by one goroutine at a
// time (ownership may transfer at a Flush boundary).
type Accum struct {
	deltas []int64
	sinks  []func(int64)
}

// NewAccum returns an empty accumulator.
func NewAccum() *Accum { return &Accum{} }

// Cell registers a commit sink (typically a shared counter's Add
// method) and returns the index of its delta cell.
func (a *Accum) Cell(commit func(int64)) int {
	a.sinks = append(a.sinks, commit)
	a.deltas = append(a.deltas, 0)
	return len(a.deltas) - 1
}

// Add accumulates d into cell i. No synchronization: this is the hot
// path, a plain add on owner-local memory.
func (a *Accum) Add(i int, d int64) { a.deltas[i] += d }

// Inc accumulates 1 into cell i.
func (a *Accum) Inc(i int) { a.deltas[i]++ }

// Pending returns the uncommitted delta of cell i (for tests and
// invariant checks).
func (a *Accum) Pending(i int) int64 { return a.deltas[i] }

// Flush commits every nonzero cell to its sink and zeroes the bank.
// Cells whose updates cancelled out (or never happened) cost nothing.
func (a *Accum) Flush() {
	for i, d := range a.deltas {
		if d != 0 {
			a.sinks[i](d)
			a.deltas[i] = 0
		}
	}
}
