package stats

import (
	"math"
	"testing"
	"testing/quick"

	"prudentia/internal/sim"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 20 {
		t.Errorf("q25 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 30 {
		t.Errorf("q50 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.75); got != 7.5 {
		t.Errorf("q75 of {0,10} = %v, want 7.5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := IQR(xs); got != 2 {
		t.Fatalf("IQR = %v, want 2", got)
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestMedianCIOrdering(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(uint64(r)>>11) / (1 << 53) * 100
		}
		n := int(uint64(seed)%40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = next()
		}
		lo, hi := MedianCI(xs)
		m := Median(xs)
		return lo <= m && m <= hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianCITightensWithSamples(t *testing.T) {
	// Identical values: CI collapses to a point.
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = 7
	}
	lo, hi := MedianCI(xs)
	if lo != 7 || hi != 7 {
		t.Fatalf("CI of constant = [%v %v]", lo, hi)
	}
	if !CIWithin(xs, 0.001) {
		t.Fatal("constant sample should satisfy any tolerance")
	}
}

func TestCIWithinStoppingRule(t *testing.T) {
	// A widely-dispersed small sample must fail a tight tolerance — this
	// is what forces the scheduler to escalate trials (§3.4).
	xs := []float64{1, 9, 2, 8, 3, 7, 4, 6, 5, 10}
	if CIWithin(xs, 0.5) {
		t.Fatal("dispersed sample should fail ±0.5 tolerance")
	}
	if !CIWithin(xs, 10) {
		t.Fatal("any sample should pass a huge tolerance")
	}
	if CIWithin(nil, 10) {
		t.Fatal("empty sample cannot satisfy the rule")
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{1, 1, 1, 1}); got != 1 {
		t.Fatalf("equal allocation Jain = %v", got)
	}
	got := Jain([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("max-unfair Jain = %v, want 0.25", got)
	}
	if Jain(nil) != 0 || Jain([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Jain")
	}
}

func TestJainBoundsProperty(t *testing.T) {
	if err := quick.Check(func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		j := Jain(xs)
		return j > 1.0/3-1e-9 && j <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// The sim import keeps this test file aligned with the package's
// documented use (tolerances are Mbps values derived from sim settings).
var _ = sim.Second
