package stats

import "testing"

// TestAccumBatchesAndFlushes: deltas accumulate locally, nothing
// reaches a sink before Flush, and Flush commits each cell exactly once
// with the exact total.
func TestAccumBatchesAndFlushes(t *testing.T) {
	var got [2]int64
	var commits int
	a := NewAccum()
	c0 := a.Cell(func(d int64) { got[0] += d; commits++ })
	c1 := a.Cell(func(d int64) { got[1] += d; commits++ })

	a.Add(c0, 5)
	a.Inc(c0)
	a.Add(c1, -3)
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("sinks saw deltas before Flush")
	}
	if a.Pending(c0) != 6 || a.Pending(c1) != -3 {
		t.Fatalf("pending = %d, %d", a.Pending(c0), a.Pending(c1))
	}

	a.Flush()
	if got[0] != 6 || got[1] != -3 {
		t.Fatalf("flushed totals = %v", got)
	}
	if commits != 2 {
		t.Fatalf("commits = %d, want one per dirty cell", commits)
	}
	if a.Pending(c0) != 0 || a.Pending(c1) != 0 {
		t.Fatal("Flush must zero the cells")
	}

	// A second Flush with no new deltas must not re-commit.
	a.Flush()
	if got[0] != 6 || got[1] != -3 || commits != 2 {
		t.Fatal("idle Flush re-committed")
	}

	// And the accumulator is reusable after flushing.
	a.Add(c1, 10)
	a.Flush()
	if got[1] != 7 {
		t.Fatalf("post-reuse total = %d, want 7", got[1])
	}
}

// TestAccumZeroCellsSkipped: clean cells never invoke their sinks, so
// batching per-trial counters costs zero sink calls for untouched
// metrics.
func TestAccumZeroCellsSkipped(t *testing.T) {
	a := NewAccum()
	calls := 0
	idle := a.Cell(func(int64) { calls++ })
	busy := a.Cell(func(int64) { calls++ })
	a.Inc(busy)
	a.Flush()
	if calls != 1 {
		t.Fatalf("sink calls = %d, want only the dirty cell", calls)
	}
	_ = idle
}

// TestAccumExactTotals: batch-commit order cannot change the totals —
// sums are commutative — so any interleaving of Adds and Flushes lands
// on the same final value the unbatched path would.
func TestAccumExactTotals(t *testing.T) {
	var total int64
	a := NewAccum()
	c := a.Cell(func(d int64) { total += d })
	want := int64(0)
	for i := int64(1); i <= 100; i++ {
		a.Add(c, i)
		want += i
		if i%7 == 0 {
			a.Flush()
		}
	}
	a.Flush()
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}
