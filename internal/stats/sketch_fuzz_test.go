package stats

import (
	"bytes"
	"math"
	"testing"
)

// FuzzSketchCodec throws arbitrary bytes at DecodeSketch (the
// FuzzFrameScanner idiom from internal/fleet). The invariants: the
// decoder never panics, never accepts a frame larger than
// sketchMaxEncoded, and any frame it does accept is canonical — it
// re-encodes to exactly the input bytes and answers every query without
// panicking. Canonicality is what makes encoded sketches comparable
// across fleet workers, so a decodable-but-not-re-encodable frame would
// be a real bug, not a fuzz artifact.
func FuzzSketchCodec(f *testing.F) {
	f.Add(NewSketch().Encode())
	small := NewSketch()
	for _, v := range []float64{3, 1, 2, -5, 0} {
		small.Add(v)
	}
	f.Add(small.Encode())
	big := NewSketchAlpha(0.02)
	for i := 0; i < 1000; i++ {
		big.Add(math.Exp(float64(i%40) - 20))
		big.Add(-float64(i))
	}
	f.Add(big.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef, 'x'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	trunc := small.Encode()
	f.Add(trunc[:len(trunc)-2])
	flip := append([]byte(nil), trunc...)
	flip[len(flip)-1] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSketch(data)
		if err != nil {
			return // malformed input must surface as an error, never a panic
		}
		if !bytes.Equal(s.Encode(), data) {
			t.Fatalf("accepted frame is not canonical: re-encode differs")
		}
		// Queries on any accepted sketch must not panic. (Statistical
		// sanity — e.g. CI ordering — is only promised for frames the
		// encoder produced; the CRC guards transport corruption, and
		// canonicality above pins the codec itself.)
		_ = s.Median()
		_ = s.IQR()
		_, _ = s.MedianCI()
		_ = s.Quantile(0.123)
		var n int64
		s.Each(func(_ float64, c int64) { n += c })
		// Exact-regime frames must replay exactly Count samples; the
		// compacted regime replays bucket counts, which also sum to n.
		if n != int64(s.Count()) {
			t.Fatalf("Each replayed %d of %d samples", n, s.Count())
		}
		// A decoded sketch must stay usable: adding and merging cannot
		// panic, and merging into a fresh sketch round-trips the count.
		fresh := NewSketchAlpha(s.Alpha())
		if err := fresh.Merge(s); err != nil {
			t.Fatalf("merge of accepted sketch failed: %v", err)
		}
		if fresh.Count() != s.Count() {
			t.Fatalf("merge lost samples: %d != %d", fresh.Count(), s.Count())
		}
	})
}
