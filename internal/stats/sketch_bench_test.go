package stats

import (
	"math"
	"testing"
)

// benchSamples returns n deterministic heavy-tailed samples: log-uniform
// magnitudes spanning [0.01, 100] (four decades — far wider than any real
// share/loss/throughput stream), a zero every 13th sample, a negative
// every 7th. The LCG keeps the stream byte-stable across runs and Go
// versions, so the state-size benchmark below measures the same multiset
// every time.
func benchSamples(n int) []float64 {
	out := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	lo, hi := math.Log(0.01), math.Log(100)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / float64(1<<53)
		v := math.Exp(lo + u*(hi-lo))
		switch {
		case i%13 == 0:
			v = 0
		case i%7 == 0:
			v = -v
		}
		out[i] = v
	}
	return out
}

// BenchmarkSketchAdd measures the compacted-regime Add hot path — the
// operation a million-trial run executes once per metric per trial. The
// warmup folds the full value set first so the timed loop only ever
// touches existing buckets; scripts/bench.sh stats gates allocs/op at
// zero, pinning the steady-state hot path allocation-free.
func BenchmarkSketchAdd(b *testing.B) {
	vals := benchSamples(4096)
	s := NewSketch()
	for _, v := range vals {
		s.Add(v)
	}
	if s.Exact() {
		b.Fatal("warmup did not reach the compacted regime")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i%len(vals)])
	}
}

// BenchmarkSketchState reports the encoded state size of one sketch
// after 5k and 50k trials as state_bytes. A pair's statistics state is a
// fixed set of these sketches (core.PairSketches), so bounded bytes per
// sketch at 10x the trial count is the O(1)-state proof scripts/bench.sh
// stats gates on: the 10x/1x ratio must stay near 1, where the raw
// per-trial ledger would grow by exactly 10x.
func BenchmarkSketchState(b *testing.B) {
	for _, tc := range []struct {
		name string
		n    int
	}{{"1x", 5000}, {"10x", 50000}} {
		b.Run("trials="+tc.name, func(b *testing.B) {
			vals := benchSamples(tc.n)
			var sz int
			for i := 0; i < b.N; i++ {
				s := NewSketch()
				for _, v := range vals {
					s.Add(v)
				}
				sz = len(s.Encode())
			}
			b.ReportMetric(float64(sz), "state_bytes")
		})
	}
}
