package report

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// TestHeatmapQuarantinedCells: NaN cells (quarantined pairs) render as
// ×× without breaking column alignment.
func TestHeatmapQuarantinedCells(t *testing.T) {
	names := []string{"Alpha", "Beta"}
	out := Heatmap("quarantine", names, func(inc, cont string) (float64, bool) {
		switch {
		case inc == "Alpha" && cont == "Alpha":
			return math.NaN(), true
		case inc == "Beta" && cont == "Beta":
			return 0, false // blank
		default:
			return 42, true
		}
	}, ".0f")
	if !strings.Contains(out, "××") {
		t.Fatalf("no ×× marker for the quarantined cell:\n%s", out)
	}
	if !strings.Contains(out, "42") || !strings.Contains(out, "-") {
		t.Fatalf("numeric/blank cells missing:\n%s", out)
	}
	// The ×× glyphs are 2 display columns but 4 bytes; every data row
	// must still line up (equal rune counts).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	rows := lines[1:] // skip the title
	w := utf8.RuneCountInString(rows[0])
	for i, r := range rows {
		if utf8.RuneCountInString(r) != w {
			t.Fatalf("row %d width %d, want %d:\n%s", i, utf8.RuneCountInString(r), w, out)
		}
	}
}
