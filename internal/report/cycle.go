package report

import (
	"fmt"
	"strings"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/stats"
)

// This file renders a completed cycle as the exact text cmd/prudentia
// prints in batch mode. It is the byte-stability contract the serving
// layer leans on: the daemon's /api/v1/report.txt serves ReportText
// output, and the CI serve gate byte-compares it against a batch run at
// the same seed — so the batch binary and the daemon MUST render
// through these functions, never through private copies.

// CycleBanner renders the per-cycle header line ("=== cycle N ... ===")
// exactly as the batch watchdog prints it before each cycle.
func CycleBanner(cycle, catalogSize int) string {
	return fmt.Sprintf("=== cycle %d (catalog: %d services) ===\n", cycle, catalogSize)
}

// SettingLabel names one network setting the way every heatmap title
// does: by its bottleneck rate.
func SettingLabel(cfg netem.Config) string {
	return fmt.Sprintf("%.0f Mbps", float64(cfg.RateBps)/1e6)
}

// CycleText renders one setting's full text block — the four heatmaps
// (share, utilization, loss, queueing delay), the summary line, and the
// throttle/instability/quarantine watches — byte-identically to the
// batch watchdog's per-setting output.
func CycleText(res *core.MatrixResult, cr *core.CycleResult, si int, cfg netem.Config, svcs []services.Service) string {
	label := SettingLabel(cfg)
	var b strings.Builder
	b.WriteString(Heatmap(
		fmt.Sprintf("MmF share %% (incumbent = column) — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) { return res.SharePct(inc, cont) },
		".0f"))
	b.WriteByte('\n')
	b.WriteString(Heatmap(
		fmt.Sprintf("link utilization %% — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) {
			v, ok := res.Utilization(inc, cont)
			return 100 * v, ok
		},
		".0f"))
	b.WriteByte('\n')
	b.WriteString(Heatmap(
		fmt.Sprintf("loss rate %% — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) {
			v, ok := res.LossRate(inc, cont)
			return 100 * v, ok
		},
		".1f"))
	b.WriteByte('\n')
	b.WriteString(Heatmap(
		fmt.Sprintf("mean queueing delay ms — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) { return res.QueueDelayMs(inc, cont) },
		".0f"))
	b.WriteByte('\n')

	losing := res.LosingShares()
	fmt.Fprintf(&b, "summary (%s): losing services median %.0f%% of MmF share; self-pairs mean %.0f%%\n",
		label, stats.Median(losing), stats.Mean(res.SelfShares()))
	if throttled := cr.ThrottledServices(si, cfg, svcs, 0.5); len(throttled) > 0 {
		fmt.Fprintf(&b, "throttle watch: %v achieved <50%% of the link solo\n", throttled)
	}
	var unstable []string
	for _, a := range res.Names {
		for _, c := range res.Names {
			if p, _, ok := res.Cell(a, c); ok && p.Unstable && a <= c {
				unstable = append(unstable, a+" vs "+c)
			}
		}
	}
	if len(unstable) > 0 {
		fmt.Fprintf(&b, "instability watch (Obs 15): %v\n", unstable)
	}
	if failed := res.FailedPairs(); len(failed) > 0 {
		fmt.Fprintf(&b, "quarantine watch: %v failed repeatedly and were excluded (××)\n", failed)
	}
	b.WriteByte('\n')
	return b.String()
}

// ReportText renders a whole completed cycle — banner, every setting's
// CycleText block, and the cumulative fault-ledger summary line when
// one is non-empty — as the exact bytes a batch run prints for the same
// cycle. settings must be index-aligned with cr.PerSetting;
// faultSummary is trace.FaultLedger.Summary() ("" elides the line,
// matching the batch binary).
func ReportText(cr *core.CycleResult, settings []netem.Config, svcs []services.Service, faultSummary string) string {
	var b strings.Builder
	b.WriteString(CycleBanner(cr.Cycle, len(svcs)))
	for si, res := range cr.PerSetting {
		if si >= len(settings) {
			break
		}
		b.WriteString(CycleText(res, cr, si, settings[si], svcs))
	}
	if faultSummary != "" {
		fmt.Fprintf(&b, "fault ledger: %s\n\n", faultSummary)
	}
	return b.String()
}
