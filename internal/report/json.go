package report

import (
	"bytes"
	"encoding/json"
	"sort"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// ReportSchema stamps CycleJSON documents; consumers reject versions
// they do not understand, mirroring the checkpoint/journal convention.
const ReportSchema = "prudentia.report/1"

// ReportDoc is the machine-readable rendering of one completed cycle —
// the JSON the daemon serves at /api/v1/report. Every field is either
// ordered (slices, never maps) or scalar, and the document is produced
// by encoding/json over this fixed struct, so the bytes are a pure
// function of the cycle: two runs at the same seed serve identical
// documents, which is what lets CI diff daemon output against a batch
// run and lets strong ETags revalidate across daemon restarts.
type ReportDoc struct {
	// Schema is always ReportSchema.
	Schema string `json:"schema"`
	// Cycle is the 1-based cycle number this document renders.
	Cycle int `json:"cycle"`
	// Services is the catalog in matrix order.
	Services []string `json:"services"`
	// Settings holds one entry per network setting, index-aligned with
	// the cycle's PerSetting results.
	Settings []SettingDoc `json:"settings"`
}

// SettingDoc is one network setting's matrix rendering.
type SettingDoc struct {
	// RateMbps is the bottleneck bandwidth.
	RateMbps float64 `json:"rate_mbps"`
	// RTTMs is the round-trip propagation time in milliseconds.
	RTTMs float64 `json:"rtt_ms"`
	// QueuePkts is the configured drop-tail queue capacity (0 = the
	// paper's BDP-derived default).
	QueuePkts int `json:"queue_pkts"`
	// Calibration lists each service's solo throughput in service-name
	// order (services whose calibration was omitted this cycle are
	// absent).
	Calibration []CalibrationEntry `json:"calibration,omitempty"`
	// Cells lists every unordered pair in canonical catalog order.
	Cells []CellDoc `json:"cells"`
}

// CalibrationEntry is one service's solo-throughput measurement.
type CalibrationEntry struct {
	// Service names the calibrated service.
	Service string `json:"service"`
	// Mbps is its solo throughput.
	Mbps float64 `json:"mbps"`
}

// CellDoc is one pair's outcome. Incumbent is the lower-index catalog
// member (slot 0); SharePct/LossPct/QueueDelayMs are [incumbent,
// contender] ordered.
type CellDoc struct {
	// Incumbent and Contender name the pair (equal on self-pairs).
	Incumbent string `json:"incumbent"`
	Contender string `json:"contender"`
	// Status is "ok", "quarantined" (××), "skipped" (○○, breaker
	// open), or "empty" (no counted trials).
	Status string `json:"status"`
	// Trials is the counted-trial total entering the statistics.
	Trials int `json:"trials,omitempty"`
	// SharePct is each slot's median MmF-share percentage.
	SharePct []float64 `json:"share_pct,omitempty"`
	// UtilizationPct is the pair's median link utilization percentage.
	UtilizationPct float64 `json:"utilization_pct,omitempty"`
	// LossPct is each slot's median loss-rate percentage.
	LossPct []float64 `json:"loss_pct,omitempty"`
	// QueueDelayMs is each slot's median queueing delay.
	QueueDelayMs []float64 `json:"queue_delay_ms,omitempty"`
	// Unstable marks pairs that exhausted trials without a stable CI
	// (Obs 15).
	Unstable bool `json:"unstable,omitempty"`
	// StopReason is the adaptive stopper's verdict, when armed.
	StopReason string `json:"stop_reason,omitempty"`
	// Retries counts failed attempts that were retried.
	Retries int `json:"retries,omitempty"`
}

// round2 trims a float to 2 decimals so document bytes do not depend on
// the last ulp of a median computation path (sketch and exact paths
// agree far beyond 2 decimals at standard budgets).
func round2(v float64) float64 {
	if v < 0 {
		return float64(int64(v*100-0.5)) / 100
	}
	return float64(int64(v*100+0.5)) / 100
}

// CycleJSON renders one completed cycle as the canonical ReportDoc
// bytes (indented, trailing newline). settings must be index-aligned
// with cr.PerSetting. The output is byte-deterministic for a given
// cycle: field order is fixed by the struct, pair order by the catalog,
// and calibration entries are sorted by service name.
func CycleJSON(cr *core.CycleResult, settings []netem.Config, svcs []services.Service) ([]byte, error) {
	doc := ReportDoc{
		Schema: ReportSchema,
		Cycle:  cr.Cycle,
	}
	for _, s := range svcs {
		doc.Services = append(doc.Services, s.Name())
	}
	for si, res := range cr.PerSetting {
		if si >= len(settings) {
			break
		}
		cfg := settings[si]
		sd := SettingDoc{
			RateMbps:  float64(cfg.RateBps) / 1e6,
			RTTMs:     cfg.RTT.Seconds() * 1000,
			QueuePkts: cfg.QueueCapacity,
		}
		if si < len(cr.Calibration) {
			names := make([]string, 0, len(cr.Calibration[si]))
			for name := range cr.Calibration[si] {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				sd.Calibration = append(sd.Calibration, CalibrationEntry{
					Service: name, Mbps: round2(cr.Calibration[si][name]),
				})
			}
		}
		for i := range res.Names {
			for j := i; j < len(res.Names); j++ {
				p, _, ok := res.Cell(res.Names[i], res.Names[j])
				if !ok || p == nil {
					continue
				}
				cell := CellDoc{
					Incumbent: res.Names[i],
					Contender: res.Names[j],
					Retries:   p.Retries,
				}
				switch {
				case p.Skipped:
					cell.Status = "skipped"
				case p.Failed:
					cell.Status = "quarantined"
				case p.Counted() == 0:
					cell.Status = "empty"
				default:
					cell.Status = "ok"
					cell.Trials = p.Counted()
					cell.SharePct = []float64{round2(p.MedianSharePct(0)), round2(p.MedianSharePct(1))}
					cell.UtilizationPct = round2(100 * p.MedianUtilization())
					cell.LossPct = []float64{round2(100 * p.MedianLoss(0)), round2(100 * p.MedianLoss(1))}
					cell.QueueDelayMs = []float64{
						round2(p.MedianQueueDelay(0).Seconds() * 1000),
						round2(p.MedianQueueDelay(1).Seconds() * 1000),
					}
					cell.Unstable = p.Unstable
					cell.StopReason = p.StopReason
				}
				sd.Cells = append(sd.Cells, cell)
			}
		}
		doc.Settings = append(doc.Settings, sd)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
