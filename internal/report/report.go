// Package report renders Prudentia results as the text analogues of the
// paper's figures: MmF-share heatmaps (Fig 2), utilization/loss/delay
// heatmaps (Figs 11–13), time-series sparklines (Figs 4, 8), and QoE
// tables (Figs 5, 6).
package report

import (
	"fmt"
	"math"
	"strings"

	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// CellFunc supplies one heatmap value: the measurement for incumbent
// (column) against contender (row). ok=false renders a blank; NaN
// renders ×× (a quarantined pair — the watchdog gave up on it after
// repeated trial failures, rather than aborting the matrix); -Inf
// renders ○○ (a degraded pair — skipped without running a trial
// because a member service's circuit breaker was open).
type CellFunc func(incumbent, contender string) (float64, bool)

// Heatmap renders a contender-rows × incumbent-columns table, matching
// the paper's layout ("each row reflects the contentiousness of its
// service; each column its sensitivity").
func Heatmap(title string, names []string, cell CellFunc, format string) string {
	const corner = "cntdr\\incmb"
	colW := 8
	rowW := len(corner)
	for _, n := range names {
		if len(n) > rowW {
			rowW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-*s", title, rowW+2, corner)
	for i := range names {
		fmt.Fprintf(&b, "%*s", colW, abbreviate(names[i], colW-1))
	}
	b.WriteByte('\n')
	for _, row := range names {
		fmt.Fprintf(&b, "%-*s", rowW+2, row)
		for _, col := range names {
			v, ok := cell(col, row)
			if !ok {
				fmt.Fprintf(&b, "%*s", colW, "-")
				continue
			}
			if math.IsNaN(v) {
				// Quarantined cell. "××" is two display columns but four
				// bytes, so pad by rune count rather than %*s.
				b.WriteString(strings.Repeat(" ", colW-2))
				b.WriteString("××")
				continue
			}
			if math.IsInf(v, -1) {
				// Breaker-skipped cell, same rune-count padding.
				b.WriteString(strings.Repeat(" ", colW-2))
				b.WriteString("○○")
				continue
			}
			fmt.Fprintf(&b, fmt.Sprintf("%%%d%s", colW, format), v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// abbreviate shortens a service name to fit a column.
func abbreviate(name string, w int) string {
	name = strings.NewReplacer(
		"iPerf (", "", ")", "",
		"Google ", "G", "Microsoft ", "MS",
		".google.com", "", ".org", "", ".com", "",
	).Replace(name)
	if len(name) > w {
		name = name[:w]
	}
	return name
}

// Sparkline renders a numeric series as a unicode block sparkline with
// the given value ceiling (values clamp to it).
func Sparkline(vals []float64, max float64) string {
	if max <= 0 {
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		idx := int(v / max * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// RateSeries renders a two-service throughput series (Fig 4) as paired
// sparklines plus a legend.
func RateSeries(title string, pts []metrics.RatePoint, linkMbps float64, names [2]string) string {
	a := make([]float64, len(pts))
	c := make([]float64, len(pts))
	for i, p := range pts {
		a[i], c[i] = p.Mbps[0], p.Mbps[1]
	}
	return fmt.Sprintf("%s\n  %-16s %s\n  %-16s %s\n",
		title, names[0], Sparkline(a, linkMbps), names[1], Sparkline(c, linkMbps))
}

// QueueSeries renders a queue occupancy series (Fig 8).
func QueueSeries(title string, samples []netem.OccupancySample, capacity int) string {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = float64(s.Total)
	}
	return fmt.Sprintf("%s\n  queue/%d pkts  %s\n", title, capacity, Sparkline(vals, float64(capacity)))
}

// Table renders rows of label→formatted values with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for i := range t.Header {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
		_ = i
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Ms formats a sim.Time as milliseconds.
func Ms(t sim.Time) string { return fmt.Sprintf("%.1fms", t.Seconds()*1000) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
