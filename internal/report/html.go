package report

import (
	"fmt"
	"html"
	"math"
	"strings"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
)

// HeatmapHTML renders one completed cycle's pair matrix as a
// self-contained HTML page: one MmF-share heatmap table per network
// setting, with quarantined (××) and breaker-skipped (○○) cells marked,
// plus a legend. The page embeds no scripts, no external assets, and no
// wall-clock state, so its bytes are a pure function of the cycle —
// the serving layer precomputes it once per cycle, stamps a strong
// ETag, and hands the identical bytes to every read-only viewer.
func HeatmapHTML(cr *core.CycleResult, settings []netem.Config, svcs []services.Service) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Prudentia — cycle %d</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table.heatmap { border-collapse: collapse; margin-top: .5rem; }
table.heatmap th, table.heatmap td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: right; font-variant-numeric: tabular-nums; }
table.heatmap th { background: #f2f2f2; text-align: left; font-weight: 600; }
td.fair { background: #e8f5e9; } td.skew { background: #fff8e1; } td.unfair { background: #ffebee; }
td.quarantined, td.skipped { text-align: center; color: #757575; }
p.legend { color: #555; font-size: .9rem; }
</style>
</head>
<body>
<h1>Prudentia fairness watchdog — cycle %d (%d services)</h1>
<p class="legend">Each cell is the incumbent column&#39;s median MmF-share %% against the
contender row. <span>&#215;&#215;</span> = quarantined pair, <span>&#9675;&#9675;</span> = circuit breaker open.</p>
`, cr.Cycle, cr.Cycle, len(svcs))

	for si, res := range cr.PerSetting {
		if si >= len(settings) {
			break
		}
		fmt.Fprintf(&b, "<h2>%s setting</h2>\n<table class=\"heatmap\">\n<tr><th>cntdr \\ incmb</th>",
			html.EscapeString(SettingLabel(settings[si])))
		for _, name := range res.Names {
			fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(name))
		}
		b.WriteString("</tr>\n")
		for _, row := range res.Names {
			fmt.Fprintf(&b, "<tr><th>%s</th>", html.EscapeString(row))
			for _, col := range res.Names {
				v, ok := res.SharePct(col, row)
				switch {
				case !ok:
					b.WriteString("<td>-</td>")
				case math.IsNaN(v):
					b.WriteString(`<td class="quarantined">&#215;&#215;</td>`)
				case math.IsInf(v, -1):
					b.WriteString(`<td class="skipped">&#9675;&#9675;</td>`)
				default:
					fmt.Fprintf(&b, `<td class="%s">%.0f</td>`, shareClass(v), v)
				}
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body>\n</html>\n")
	return []byte(b.String())
}

// shareClass buckets a share percentage for cell shading: ≥85% of the
// fair share is rendered fair, ≥50% skewed, below that unfair.
func shareClass(sharePct float64) string {
	switch {
	case sharePct >= 85:
		return "fair"
	case sharePct >= 50:
		return "skew"
	}
	return "unfair"
}
