package report

import (
	"strings"
	"testing"

	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

func TestHeatmapLayout(t *testing.T) {
	names := []string{"YouTube", "Mega"}
	h := Heatmap("test map", names, func(inc, cont string) (float64, bool) {
		if inc == "YouTube" && cont == "Mega" {
			return 23, true
		}
		if inc == "Mega" && cont == "YouTube" {
			return 171, true
		}
		return 100, true
	}, ".0f")
	lines := strings.Split(strings.TrimSpace(h), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("heatmap lines = %d:\n%s", len(lines), h)
	}
	// Row = contender, column = incumbent: the Mega row, YouTube column
	// holds 23.
	megaRow := lines[3]
	if !strings.HasPrefix(megaRow, "Mega") || !strings.Contains(megaRow, "23") {
		t.Fatalf("mega row = %q", megaRow)
	}
}

func TestHeatmapBlankCells(t *testing.T) {
	h := Heatmap("m", []string{"A"}, func(_, _ string) (float64, bool) { return 0, false }, ".0f")
	if !strings.Contains(h, "-") {
		t.Fatalf("missing blank marker:\n%s", h)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 5, 10}, 10)
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline = %q", s)
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline scaling wrong: %q", s)
	}
	// Auto-max and clamping.
	if Sparkline([]float64{0, 0}, 0) != "▁▁" {
		t.Fatal("zero series")
	}
	if got := Sparkline([]float64{100}, 10); got != "█" {
		t.Fatalf("clamp = %q", got)
	}
}

func TestRateAndQueueSeries(t *testing.T) {
	pts := []metrics.RatePoint{{At: sim.Second, Mbps: [2]float64{10, 40}}}
	out := RateSeries("title", pts, 50, [2]string{"a", "b"})
	if !strings.Contains(out, "title") || !strings.Contains(out, "a") {
		t.Fatalf("rate series = %q", out)
	}
	qs := QueueSeries("q", []netem.OccupancySample{{Total: 512}}, 1024)
	if !strings.Contains(qs, "queue/1024") {
		t.Fatalf("queue series = %q", qs)
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("alpha", "1")
	tab.Add("longer-name", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header = %q", lines[0])
	}
	// Columns aligned: both rows start their second column at the same
	// offset.
	idx1 := strings.Index(lines[2], "1")
	idx2 := strings.Index(lines[3], "2")
	if idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestFormatters(t *testing.T) {
	if Ms(1500*sim.Microsecond) != "1.5ms" {
		t.Fatalf("Ms = %q", Ms(1500*sim.Microsecond))
	}
	if Pct(0.5) != "50%" {
		t.Fatalf("Pct = %q", Pct(0.5))
	}
}

func TestAbbreviate(t *testing.T) {
	cases := map[string]string{
		"iPerf (BBR)":     "BBR",
		"Google Meet":     "GMeet",
		"Microsoft Teams": "MSTeams",
		"wikipedia.org":   "wikiped", // truncated to width
	}
	for in, want := range cases {
		if got := abbreviate(in, 7); got != want {
			t.Errorf("abbreviate(%q) = %q, want %q", in, got, want)
		}
	}
}
