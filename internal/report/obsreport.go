package report

import (
	"fmt"
	"sort"
	"strings"

	"prudentia/internal/obs"
)

// MetricsSummary renders an obs.Snapshot as a compact operator-facing
// text block: non-zero counters first (sorted by name), then gauges,
// then one line per histogram with count/sum and the populated buckets.
// Zero-valued counters are elided — a long tail of zeros hides the
// signal a watchdog operator is scanning for.
func MetricsSummary(s obs.Snapshot) string {
	var b strings.Builder
	b.WriteString("== Cycle metrics ==\n")

	names := make([]string, 0, len(s.Counters))
	for name, v := range s.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-48s %d\n", name, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-48s %g\n", name, s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%-48s count=%d sum=%.3f", name, h.Count, h.Sum)
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " le%g:%d", h.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, " le+Inf:%d", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
