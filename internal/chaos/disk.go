package chaos

// Disk-fault injection: the storage-layer counterpart of the trial and
// fleet fault families. A DiskPlan decides, per file operation and as a
// pure function of (Seed, operation counter), whether a write fails
// with an injected ENOSPC, whether an fsync tears the file's tail (the
// bytes the caller believed durable are cut before the sync reports
// failure — exactly what a power cut mid-flush leaves behind), and
// whether an fsync stalls (a saturated or dying device). FaultyFile
// wraps an *os.File with those decisions, and the durable writers — the
// submission WAL, the trial journal, the cycle checkpoint — accept the
// wrapper through their file seams, so recovery paths (torn-tail
// truncation, sticky-error degrade, atomic-rename fallback) are
// exercised continuously instead of trusted on faith.
//
// Unlike the per-seed trial faults, disk decisions consume a shared
// operation counter, so they depend on operation order and are NOT part
// of the byte-identical replay contract. Use them in chaos tests and
// soak runs, not golden traces.

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// ErrInjectedDiskFull is the write error a DiskPlan injects: the
// watchdog's ENOSPC stand-in. Durable writers must treat it like any
// other disk failure — degrade, never corrupt.
var ErrInjectedDiskFull = errors.New("chaos: injected disk full (ENOSPC)")

// ErrInjectedSyncFail is the fsync error reported after an injected
// torn tail: the data the caller just wrote is partially gone and the
// sync did not complete.
var ErrInjectedSyncFail = errors.New("chaos: injected fsync failure (torn tail)")

// DiskPlan is a seed-deterministic disk-fault schedule. The zero value
// and a nil plan inject nothing.
type DiskPlan struct {
	// Seed scopes every decision; two plans with equal seeds and rates
	// fault the same operations in the same order.
	Seed uint64
	// WriteErrRate is the per-write probability of ErrInjectedDiskFull
	// (nothing is written when it fires).
	WriteErrRate float64
	// TornTailRate is the per-sync probability that the file's tail is
	// truncated by 1..TornMaxBytes bytes before the sync reports
	// ErrInjectedSyncFail.
	TornTailRate float64
	// TornMaxBytes bounds how much a torn sync cuts; 0 means 16.
	TornMaxBytes int
	// StallRate is the per-sync probability of sleeping Stall before
	// the sync proceeds (a slow device, not a failure).
	StallRate float64
	// Stall is the injected fsync latency; 0 means 50ms.
	Stall time.Duration

	ops atomic.Uint64
}

// Enabled reports whether any disk-fault class is armed. Safe on nil.
func (p *DiskPlan) Enabled() bool {
	return p != nil && (p.WriteErrRate > 0 || p.TornTailRate > 0 || p.StallRate > 0)
}

// Ops reports how many fault decisions the plan has made — one per
// write and one per sync on wrapped files. Safe on nil.
func (p *DiskPlan) Ops() uint64 {
	if p == nil {
		return 0
	}
	return p.ops.Load()
}

// decide draws one uniform [0,1) value for the next operation under the
// given salt, advancing the shared counter.
func (p *DiskPlan) decide(salt uint64) float64 {
	op := p.ops.Add(1)
	return unit(mix(p.Seed^op*0x9e3779b97f4a7c15), salt)
}

// writeErr decides whether the next write fails with injected ENOSPC.
func (p *DiskPlan) writeErr() bool {
	return p.WriteErrRate > 0 && p.decide(saltDiskWrite) < p.WriteErrRate
}

// syncFault decides the next sync's fate: a stall duration (0 = none)
// and how many tail bytes to tear (0 = clean sync).
func (p *DiskPlan) syncFault() (stall time.Duration, torn int) {
	if p.StallRate > 0 && p.decide(saltDiskStall) < p.StallRate {
		stall = p.Stall
		if stall <= 0 {
			stall = 50 * time.Millisecond
		}
	}
	if p.TornTailRate > 0 && p.decide(saltDiskTear) < p.TornTailRate {
		max := p.TornMaxBytes
		if max <= 0 {
			max = 16
		}
		torn = 1 + int(mix(p.Seed^p.ops.Load()^saltDiskTear)%uint64(max))
	}
	return stall, torn
}

// DefaultDiskPlan returns a representative all-classes disk-fault plan
// for chaos runs: faults fire often enough to exercise every recovery
// path within a short daemon session while leaving most operations
// clean.
func DefaultDiskPlan(seed uint64) *DiskPlan {
	return &DiskPlan{
		Seed:         seed,
		WriteErrRate: 0.05,
		TornTailRate: 0.05,
		StallRate:    0.05,
		Stall:        20 * time.Millisecond,
	}
}

// FaultyFile wraps an *os.File with a DiskPlan's decisions. It
// implements the file seam the durable writers accept (Write, Sync,
// Seek, Truncate, Close), so it can stand in for the raw file anywhere
// a WAL or checkpoint is written.
type FaultyFile struct {
	f    *os.File
	plan *DiskPlan

	// Injection bookkeeping (observable by tests and logs).
	writesFailed atomic.Int64
	syncsTorn    atomic.Int64
	syncsStalled atomic.Int64
}

// WrapFile wraps f with the plan's fault decisions. With a nil or
// disabled plan the file is still wrapped (uniform call sites) but
// every operation passes straight through.
func WrapFile(f *os.File, plan *DiskPlan) *FaultyFile {
	return &FaultyFile{f: f, plan: plan}
}

// InjectedFaults reports how many writes failed and how many syncs were
// torn or stalled on this file.
func (ff *FaultyFile) InjectedFaults() (writesFailed, syncsTorn, syncsStalled int64) {
	return ff.writesFailed.Load(), ff.syncsTorn.Load(), ff.syncsStalled.Load()
}

// Write delegates to the wrapped file unless the plan injects ENOSPC,
// in which case nothing is written.
func (ff *FaultyFile) Write(p []byte) (int, error) {
	if ff.plan.Enabled() && ff.plan.writeErr() {
		ff.writesFailed.Add(1)
		return 0, fmt.Errorf("%w (%d bytes dropped)", ErrInjectedDiskFull, len(p))
	}
	return ff.f.Write(p)
}

// Sync applies the plan's sync fate: an injected stall sleeps first; an
// injected torn tail truncates up to TornMaxBytes from the file's end
// (never past offset zero), syncs the truncation so the tear is what
// recovery actually reads, and reports ErrInjectedSyncFail. A clean
// decision delegates to the real fsync.
func (ff *FaultyFile) Sync() error {
	if !ff.plan.Enabled() {
		return ff.f.Sync()
	}
	stall, torn := ff.plan.syncFault()
	if stall > 0 {
		ff.syncsStalled.Add(1)
		time.Sleep(stall)
	}
	if torn > 0 {
		st, err := ff.f.Stat()
		if err == nil && st.Size() > 0 {
			cut := int64(torn)
			if cut > st.Size() {
				cut = st.Size()
			}
			if terr := ff.f.Truncate(st.Size() - cut); terr == nil {
				ff.f.Sync()
				ff.syncsTorn.Add(1)
				return fmt.Errorf("%w (%d bytes torn)", ErrInjectedSyncFail, cut)
			}
		}
		// Could not tear (stat/truncate failed): fall through to a real
		// sync rather than faking a failure the disk never had.
	}
	return ff.f.Sync()
}

// Seek delegates to the wrapped file.
func (ff *FaultyFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

// Truncate delegates to the wrapped file.
func (ff *FaultyFile) Truncate(size int64) error { return ff.f.Truncate(size) }

// Close delegates to the wrapped file.
func (ff *FaultyFile) Close() error { return ff.f.Close() }

// Name reports the wrapped file's path.
func (ff *FaultyFile) Name() string { return ff.f.Name() }
