// Package chaos provides a deterministic, seed-driven fault plan for
// stress-testing the watchdog, in the spirit of Netflix's Chaos
// Engineering principles: the only way to trust a measurement service
// that must run unattended for years is to inject faults continuously
// and verify it degrades gracefully. Every fault decision derives from
// the trial seed via SplitMix64-style hashing, so a chaos-enabled run
// replays byte-for-byte given the same seed — faults are part of the
// experiment, not nondeterminism.
//
// Two fault families are modelled:
//
//   - In-simulation faults, armed on the testbed per trial: mid-trial
//     link flaps (upstream blackhole episodes), bandwidth-fluctuation
//     episodes (the bottleneck rate sags and recovers), and client
//     stalls (one experiment slot stops returning ACKs for a window —
//     the browser/Selenium hang analogue).
//   - Trial-level faults, decided per seed before or after the
//     simulation: injected panics mid-run, injected trial errors, and
//     result corruption (NaN/negative/out-of-range metrics).
//
// The core scheduler supplies the matching defenses: recover(),
// bounded retry with backoff, pair quarantine, and a validity gate.
package chaos

import (
	"fmt"
	"sync/atomic"

	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

// Fault is a trial-level fault class.
type Fault int

const (
	// FaultNone leaves the trial unmolested.
	FaultNone Fault = iota
	// FaultPanic panics mid-simulation (a crashed trial process).
	FaultPanic
	// FaultError makes the trial return an injected error.
	FaultError
	// FaultCorrupt corrupts the trial's result metrics.
	FaultCorrupt
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultError:
		return "error"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// CorruptKind selects how a FaultCorrupt trial's result is mangled.
type CorruptKind int

const (
	// CorruptNaNThroughput sets a slot's throughput to NaN.
	CorruptNaNThroughput CorruptKind = iota
	// CorruptNegativeThroughput makes a slot's throughput negative.
	CorruptNegativeThroughput
	// CorruptUtilization pushes utilization far above 1.
	CorruptUtilization
	// CorruptShare breaks the share/throughput consistency invariant.
	CorruptShare
	numCorruptKinds
)

func (k CorruptKind) String() string {
	switch k {
	case CorruptNaNThroughput:
		return "nan-throughput"
	case CorruptNegativeThroughput:
		return "negative-throughput"
	case CorruptUtilization:
		return "utilization-overflow"
	case CorruptShare:
		return "share-mismatch"
	}
	return fmt.Sprintf("corrupt(%d)", int(k))
}

// Config is a fault plan. Zero values disable each fault class, so the
// zero Config is a no-op; a nil *Config is likewise safe everywhere.
type Config struct {
	// FlapMeanGap/FlapMeanLen drive memoryless link-flap episodes during
	// which every upstream packet is blackholed (both must be positive
	// to enable flaps).
	FlapMeanGap sim.Time
	FlapMeanLen sim.Time

	// FluctMeanGap/FluctMeanLen drive bandwidth-fluctuation episodes:
	// the bottleneck rate drops to a uniform fraction in
	// [FluctMinFrac, 1) of its configured value, then recovers.
	FluctMeanGap sim.Time
	FluctMeanLen sim.Time
	// FluctMinFrac is the deepest sag; zero means the default 0.2.
	FluctMinFrac float64

	// StallMeanGap/StallMeanLen drive client-stall episodes: a uniformly
	// chosen experiment slot stops returning ACKs until the episode
	// ends (held ACKs are released, not lost).
	StallMeanGap sim.Time
	StallMeanLen sim.Time

	// PanicRate, ErrorRate, and CorruptRate are per-trial probabilities
	// of the corresponding trial-level fault, decided by hashing the
	// trial seed. Priority on collision: panic > error > corrupt.
	PanicRate   float64
	ErrorRate   float64
	CorruptRate float64

	// Brownouts degrade named services to persistent trial failures for
	// a bounded number of trials each (the "backend went dark for an
	// afternoon" scenario that circuit breakers exist for). Unlike the
	// per-seed faults above, a brownout is stateful — it burns one unit
	// of budget per affected trial in execution order — so which trials
	// it hits depends on scheduling and it is not part of the
	// byte-identical replay contract. Use it in acceptance tests and
	// soak runs, not golden traces.
	Brownouts []*Brownout

	// Partitions sever the fleet coordinator from named workers for a
	// bounded number of assignments each (the "switch between racks
	// lost its mind" scenario that lease re-dispatch exists for). Like
	// brownouts they are budgeted and stateful, so they are excluded
	// from the byte-identical replay contract — though the watchdog's
	// *report* stays byte-identical regardless, because a partitioned
	// worker's pairs are deterministically re-executed by survivors.
	Partitions []*WorkerPartition
}

// Brownout is a bounded service outage: every trial involving Service
// fails with a typed brownout error until Trials attempts have been
// consumed, after which the service behaves normally again.
type Brownout struct {
	// Service is the exact service name affected.
	Service string
	// Trials is the outage budget: how many trials fail before recovery.
	Trials int64

	taken atomic.Int64
}

// Remaining reports how many failing trials the brownout has left.
func (b *Brownout) Remaining() int64 {
	left := b.Trials - b.taken.Load()
	if left < 0 {
		return 0
	}
	return left
}

// take consumes one unit of outage budget, reporting false once spent.
func (b *Brownout) take() bool {
	for {
		t := b.taken.Load()
		if t >= b.Trials {
			return false
		}
		if b.taken.CompareAndSwap(t, t+1) {
			return true
		}
	}
}

// WorkerPartition is a bounded coordinator↔worker network partition:
// assignments to Worker are severed (connection dropped at the
// coordinator, pair re-queued) until Times units of budget have been
// consumed, after which the worker may rejoin and serve normally.
type WorkerPartition struct {
	// Worker is the exact worker name affected; "" matches any worker.
	Worker string
	// Times is the partition budget: how many assignments are severed.
	Times int64
	// Rate gates each eligible assignment by hashing its decision seed:
	// the partition fires when unit(seed) < Rate. Zero or negative
	// means every eligible assignment fires until the budget is spent.
	Rate float64

	taken atomic.Int64
}

// Remaining reports how much partition budget is left.
func (p *WorkerPartition) Remaining() int64 {
	left := p.Times - p.taken.Load()
	if left < 0 {
		return 0
	}
	return left
}

// take consumes one unit of partition budget, reporting false once spent.
func (p *WorkerPartition) take() bool {
	for {
		t := p.taken.Load()
		if t >= p.Times {
			return false
		}
		if p.taken.CompareAndSwap(t, t+1) {
			return true
		}
	}
}

// PartitionFor checks one fleet assignment against the plan's active
// partitions: worker is the assignee's name and seed the assignment's
// deterministic decision seed (for Rate gating). On a match with
// remaining budget it consumes one unit and reports true — the
// coordinator then severs the worker instead of assigning. Safe on a
// nil Config.
func (c *Config) PartitionFor(worker string, seed uint64) bool {
	if c == nil || len(c.Partitions) == 0 {
		return false
	}
	for _, p := range c.Partitions {
		if p == nil || (p.Worker != "" && p.Worker != worker) {
			continue
		}
		if p.Rate > 0 && unit(seed, saltPartition) >= p.Rate {
			continue
		}
		if p.take() {
			return true
		}
	}
	return false
}

// BrownoutFor checks the given service names against the plan's active
// brownouts. On a match with remaining budget it consumes one failing
// trial and returns the affected service's name; otherwise it returns
// "". Safe on a nil Config.
func (c *Config) BrownoutFor(names ...string) string {
	if c == nil || len(c.Brownouts) == 0 {
		return ""
	}
	for _, b := range c.Brownouts {
		if b == nil {
			continue
		}
		for _, n := range names {
			if n == b.Service && b.take() {
				return b.Service
			}
		}
	}
	return ""
}

// Default returns a representative all-classes plan used by demos and
// smoke tests: every fault family enabled at rates high enough to fire
// within a quick trial but low enough that matrices still complete.
func Default() Config {
	return Config{
		FlapMeanGap:  20 * sim.Second,
		FlapMeanLen:  200 * sim.Millisecond,
		FluctMeanGap: 15 * sim.Second,
		FluctMeanLen: 2 * sim.Second,
		FluctMinFrac: 0.3,
		StallMeanGap: 20 * sim.Second,
		StallMeanLen: 500 * sim.Millisecond,
		PanicRate:    0.05,
		ErrorRate:    0.05,
		CorruptRate:  0.05,
	}
}

// Enabled reports whether any fault class is active.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.simEnabled() || c.PanicRate > 0 || c.ErrorRate > 0 || c.CorruptRate > 0 ||
		len(c.Brownouts) > 0 || len(c.Partitions) > 0
}

func (c *Config) simEnabled() bool {
	return (c.FlapMeanGap > 0 && c.FlapMeanLen > 0) ||
		(c.FluctMeanGap > 0 && c.FluctMeanLen > 0) ||
		(c.StallMeanGap > 0 && c.StallMeanLen > 0)
}

// Distinct salts keep each per-seed decision an independent hash stream.
const (
	saltPanic   = 0xc5a7_0001_9e37_79b9
	saltError   = 0xc5a7_0002_9e37_79b9
	saltCorrupt = 0xc5a7_0003_9e37_79b9
	saltKind    = 0xc5a7_0004_9e37_79b9
	saltStream  = 0xc5a7_0005_9e37_79b9

	saltPartition = 0xc5a7_0006_9e37_79b9

	saltDiskWrite = 0xc5a7_0007_9e37_79b9
	saltDiskStall = 0xc5a7_0008_9e37_79b9
	saltDiskTear  = 0xc5a7_0009_9e37_79b9
)

// mix is the SplitMix64 finalizer: a bijective avalanche hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps (seed, salt) to a uniform value in [0, 1).
func unit(seed, salt uint64) float64 {
	return float64(mix(seed^salt)>>11) / (1 << 53)
}

// TrialFault decides the trial-level fault for a seed. The decision is
// a pure function of (Config, seed).
func (c *Config) TrialFault(seed uint64) Fault {
	if c == nil {
		return FaultNone
	}
	if c.PanicRate > 0 && unit(seed, saltPanic) < c.PanicRate {
		return FaultPanic
	}
	if c.ErrorRate > 0 && unit(seed, saltError) < c.ErrorRate {
		return FaultError
	}
	if c.CorruptRate > 0 && unit(seed, saltCorrupt) < c.CorruptRate {
		return FaultCorrupt
	}
	return FaultNone
}

// Corruption picks the corruption kind for a FaultCorrupt seed.
func (c *Config) Corruption(seed uint64) CorruptKind {
	return CorruptKind(mix(seed^saltKind) % uint64(numCorruptKinds))
}

// StreamSeed derives the RNG seed for a trial's in-simulation chaos
// processes. It is independent of the trial's own RNG stream so that
// enabling chaos does not perturb the base experiment's randomness.
func StreamSeed(seed uint64) uint64 { return mix(seed ^ saltStream) }

// InjectedPanic is the typed value thrown by FaultPanic trials, so the
// scheduler's recover() can label the failure.
type InjectedPanic struct {
	Seed uint64
	At   sim.Time
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("chaos: injected panic at %v (seed %d)", p.At, p.Seed)
}

// Arm schedules the in-simulation fault processes on a trial's engine
// and testbed. rng must be dedicated to chaos (see StreamSeed); each
// fault family splits its own child stream so disabling one family does
// not shift another's draws.
func (c *Config) Arm(eng *sim.Engine, tb *netem.Testbed, rng *sim.RNG) {
	if c == nil || !c.simEnabled() {
		return
	}
	if c.FlapMeanGap > 0 && c.FlapMeanLen > 0 {
		r := rng.Split()
		var next sim.Event
		next = func(now sim.Time) {
			tb.ChaosFlaps++
			tb.SetLinkDown(now + r.Exp(c.FlapMeanLen))
			eng.After(r.Exp(c.FlapMeanGap), next)
		}
		eng.After(r.Exp(c.FlapMeanGap), next)
	}
	if c.FluctMeanGap > 0 && c.FluctMeanLen > 0 {
		r := rng.Split()
		orig := tb.Bneck.RateBps
		minFrac := c.FluctMinFrac
		if minFrac <= 0 || minFrac >= 1 {
			minFrac = 0.2
		}
		var next sim.Event
		next = func(now sim.Time) {
			tb.ChaosSags++
			frac := minFrac + (1-minFrac)*r.Float64()
			tb.Bneck.SetRate(int64(float64(orig) * frac))
			eng.After(r.Exp(c.FluctMeanLen), func(sim.Time) { tb.Bneck.SetRate(orig) })
			eng.After(r.Exp(c.FluctMeanGap), next)
		}
		eng.After(r.Exp(c.FluctMeanGap), next)
	}
	if c.StallMeanGap > 0 && c.StallMeanLen > 0 {
		r := rng.Split()
		var next sim.Event
		next = func(now sim.Time) {
			tb.ChaosStalls++
			slot := r.Intn(netem.MaxServices)
			tb.StallService(slot, now+r.Exp(c.StallMeanLen))
			eng.After(r.Exp(c.StallMeanGap), next)
		}
		eng.After(r.Exp(c.StallMeanGap), next)
	}
}
