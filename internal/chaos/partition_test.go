package chaos

import "testing"

// TestPartitionBudget: each eligible assignment burns one unit of
// budget; a spent partition never fires again.
func TestPartitionBudget(t *testing.T) {
	cfg := &Config{Partitions: []*WorkerPartition{{Worker: "w1", Times: 2}}}
	if cfg.Partitions[0].Remaining() != 2 {
		t.Fatalf("fresh Remaining = %d, want 2", cfg.Partitions[0].Remaining())
	}
	for i := 0; i < 2; i++ {
		if !cfg.PartitionFor("w1", uint64(i)) {
			t.Fatalf("assignment %d: partition did not fire with budget left", i)
		}
	}
	if cfg.Partitions[0].Remaining() != 0 {
		t.Fatalf("Remaining after 2 fires = %d, want 0", cfg.Partitions[0].Remaining())
	}
	for i := 0; i < 5; i++ {
		if cfg.PartitionFor("w1", uint64(i)) {
			t.Fatal("partition fired after its budget was spent")
		}
	}
}

// TestPartitionNameMatching: a named partition only hits its worker;
// the empty name is a wildcard.
func TestPartitionNameMatching(t *testing.T) {
	cfg := &Config{Partitions: []*WorkerPartition{{Worker: "w1", Times: 100}}}
	if cfg.PartitionFor("w2", 1) {
		t.Fatal("partition for w1 fired against w2")
	}
	if !cfg.PartitionFor("w1", 1) {
		t.Fatal("partition for w1 did not fire against w1")
	}

	wild := &Config{Partitions: []*WorkerPartition{{Times: 2}}}
	if !wild.PartitionFor("anyone", 1) || !wild.PartitionFor("else", 2) {
		t.Fatal("wildcard partition did not match arbitrary workers")
	}
	if wild.PartitionFor("third", 3) {
		t.Fatal("wildcard partition exceeded its budget")
	}
}

// TestPartitionRateGateDeterminism: with Rate set, whether a given seed
// fires is a pure function of the seed — identical across Configs —
// and roughly Rate of seeds fire.
func TestPartitionRateGateDeterminism(t *testing.T) {
	const n = 2000
	fired := make([]bool, n)
	hits := 0
	cfg := &Config{Partitions: []*WorkerPartition{{Times: n, Rate: 0.3}}}
	for i := range fired {
		fired[i] = cfg.PartitionFor("w", uint64(i)*2654435761)
		if fired[i] {
			hits++
		}
	}
	if hits < n*20/100 || hits > n*40/100 {
		t.Fatalf("rate 0.3: %d/%d fired, outside [20%%, 40%%]", hits, n)
	}

	// Replay against a fresh Config: same seeds, same decisions.
	replay := &Config{Partitions: []*WorkerPartition{{Times: n, Rate: 0.3}}}
	for i := range fired {
		if replay.PartitionFor("w", uint64(i)*2654435761) != fired[i] {
			t.Fatalf("seed %d: rate gate decision not deterministic", i)
		}
	}

	// A seed the gate rejects must not consume budget.
	var miss uint64
	probe := &Config{Partitions: []*WorkerPartition{{Times: 1, Rate: 0.3}}}
	for i := range fired {
		if !fired[i] {
			miss = uint64(i) * 2654435761
			break
		}
	}
	if probe.PartitionFor("w", miss) {
		t.Fatal("gate-rejected seed fired")
	}
	if probe.Partitions[0].Remaining() != 1 {
		t.Fatal("gate-rejected seed consumed budget")
	}
}

// TestPartitionNilSafety: nil Configs, nil entries, and empty plans
// never fire and never panic.
func TestPartitionNilSafety(t *testing.T) {
	var nilCfg *Config
	if nilCfg.PartitionFor("w", 1) {
		t.Fatal("nil Config fired")
	}
	if (&Config{}).PartitionFor("w", 1) {
		t.Fatal("empty Config fired")
	}
	holey := &Config{Partitions: []*WorkerPartition{nil, {Times: 1}}}
	if !holey.PartitionFor("w", 1) {
		t.Fatal("nil entry masked a live partition")
	}
}

// TestPartitionEnablesChaos: a partitions-only plan counts as enabled,
// so operators see it reflected wherever Enabled() gates reporting.
func TestPartitionEnablesChaos(t *testing.T) {
	cfg := &Config{Partitions: []*WorkerPartition{{Times: 1}}}
	if !cfg.Enabled() {
		t.Fatal("partitions-only Config reports disabled")
	}
}
