package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestDiskPlanDeterminism: two plans with the same seed and rates make
// identical fault decisions in operation order.
func TestDiskPlanDeterminism(t *testing.T) {
	mk := func() *DiskPlan {
		return &DiskPlan{Seed: 99, WriteErrRate: 0.3, TornTailRate: 0.2, StallRate: 0.1, Stall: time.Nanosecond}
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		if ae, be := a.writeErr(), b.writeErr(); ae != be {
			t.Fatalf("write decision %d diverged: %v vs %v", i, ae, be)
		}
		as, at := a.syncFault()
		bs, bt := b.syncFault()
		if as != bs || at != bt {
			t.Fatalf("sync decision %d diverged: (%v,%d) vs (%v,%d)", i, as, at, bs, bt)
		}
	}
	if a.Ops() == 0 || a.Ops() != b.Ops() {
		t.Fatalf("op counters diverged: %d vs %d", a.Ops(), b.Ops())
	}
}

// TestDiskPlanDisabled: nil and zero plans inject nothing and a wrapped
// file passes operations straight through.
func TestDiskPlanDisabled(t *testing.T) {
	var nilPlan *DiskPlan
	if nilPlan.Enabled() || (&DiskPlan{}).Enabled() {
		t.Fatal("nil/zero plan reports enabled")
	}
	path := filepath.Join(t.TempDir(), "f")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ff := WrapFile(f, nil)
	if _, err := ff.Write([]byte("hello")); err != nil {
		t.Fatalf("passthrough write: %v", err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatalf("passthrough sync: %v", err)
	}
	if err := ff.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "hello" {
		t.Fatalf("file content = %q", b)
	}
}

// TestFaultyFileWriteError: a certain-fire write rate fails every write
// with the injected ENOSPC and writes nothing.
func TestFaultyFileWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff := WrapFile(f, &DiskPlan{Seed: 1, WriteErrRate: 1})
	if _, err := ff.Write([]byte("doomed")); !errors.Is(err, ErrInjectedDiskFull) {
		t.Fatalf("write error = %v, want ErrInjectedDiskFull", err)
	}
	st, _ := os.Stat(path)
	if st.Size() != 0 {
		t.Fatalf("injected-ENOSPC write persisted %d bytes", st.Size())
	}
	if wf, _, _ := ff.InjectedFaults(); wf != 1 {
		t.Fatalf("writesFailed = %d, want 1", wf)
	}
}

// TestFaultyFileTornTail: a certain-fire torn-tail rate cuts bytes off
// the end at sync time and reports the injected sync failure — the
// state a WAL's recovery scanner must truncate back to a whole frame.
func TestFaultyFileTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff := WrapFile(f, &DiskPlan{Seed: 7, TornTailRate: 1, TornMaxBytes: 4})
	payload := []byte("0123456789abcdef")
	if _, err := ff.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); !errors.Is(err, ErrInjectedSyncFail) {
		t.Fatalf("sync error = %v, want ErrInjectedSyncFail", err)
	}
	st, _ := os.Stat(path)
	if st.Size() >= int64(len(payload)) || st.Size() < int64(len(payload))-4 {
		t.Fatalf("torn size = %d, want within (%d, %d)", st.Size(), len(payload)-5, len(payload))
	}
	if _, torn, _ := ff.InjectedFaults(); torn != 1 {
		t.Fatalf("syncsTorn = %d, want 1", torn)
	}
}

// TestFaultyFileStall: a certain-fire stall rate delays the sync but
// still completes it cleanly.
func TestFaultyFileStall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff := WrapFile(f, &DiskPlan{Seed: 3, StallRate: 1, Stall: 5 * time.Millisecond})
	if _, err := ff.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := ff.Sync(); err != nil {
		t.Fatalf("stalled sync should still succeed: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= 5ms stall", d)
	}
	if _, _, stalled := ff.InjectedFaults(); stalled != 1 {
		t.Fatalf("syncsStalled = %d, want 1", stalled)
	}
}
