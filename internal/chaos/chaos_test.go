package chaos

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"prudentia/internal/netem"
	"prudentia/internal/sim"
)

func TestNilAndZeroConfigsAreInert(t *testing.T) {
	var c *Config
	if c.Enabled() {
		t.Fatal("nil config reports Enabled")
	}
	if got := c.TrialFault(7); got != FaultNone {
		t.Fatalf("nil config TrialFault = %v", got)
	}
	// Arm on a nil config must be a no-op, not a panic.
	eng := sim.NewEngine()
	tb := netem.NewTestbed(eng, netem.HighlyConstrained(), sim.NewRNG(1))
	c.Arm(eng, tb, sim.NewRNG(1))

	z := &Config{}
	if z.Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	if got := z.TrialFault(7); got != FaultNone {
		t.Fatalf("zero config TrialFault = %v", got)
	}
	def := Default()
	if !def.Enabled() {
		t.Fatal("Default config must be enabled")
	}
}

// TestTrialFaultDeterministicRates checks that fault decisions are pure
// functions of the seed and that observed rates track the configured
// probabilities (with the documented panic > error > corrupt priority).
func TestTrialFaultDeterministicRates(t *testing.T) {
	c := &Config{PanicRate: 0.10, ErrorRate: 0.10, CorruptRate: 0.10}
	const n = 20000
	counts := map[Fault]int{}
	for seed := uint64(0); seed < n; seed++ {
		f := c.TrialFault(seed)
		if f != c.TrialFault(seed) {
			t.Fatalf("seed %d not deterministic", seed)
		}
		counts[f]++
	}
	// Marginal rates under the priority chain: panic 0.10, error
	// 0.10×0.90 = 0.09, corrupt 0.10×0.90×0.90 = 0.081. ±0.01 is ~5σ.
	check := func(f Fault, want float64) {
		got := float64(counts[f]) / n
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("%v rate = %.4f, want ~%.3f", f, got, want)
		}
	}
	check(FaultPanic, 0.10)
	check(FaultError, 0.09)
	check(FaultCorrupt, 0.081)
}

func TestCorruptionCoversAllKinds(t *testing.T) {
	c := &Config{CorruptRate: 1}
	seen := map[CorruptKind]bool{}
	for seed := uint64(0); seed < 200; seed++ {
		k := c.Corruption(seed)
		if strings.HasPrefix(k.String(), "corrupt(") {
			t.Fatalf("Corruption(%d) = %v out of range", seed, k)
		}
		seen[k] = true
	}
	if len(seen) != int(numCorruptKinds) {
		t.Fatalf("only %d of %d corruption kinds drawn", len(seen), numCorruptKinds)
	}
}

func TestFaultStrings(t *testing.T) {
	want := map[Fault]string{
		FaultNone: "none", FaultPanic: "panic", FaultError: "error", FaultCorrupt: "corrupt",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), s)
		}
	}
	p := InjectedPanic{Seed: 9, At: sim.Second}
	if !strings.Contains(p.String(), "injected panic") {
		t.Errorf("InjectedPanic.String() = %q", p.String())
	}
}

// TestArmFlapsBlackholeDeterministically drives a constant upstream
// packet stream through a testbed with link flaps armed: drops must
// occur, land on ChaosDrops (not the noise-discard counter), and replay
// exactly under the same chaos stream seed.
func TestArmFlapsBlackholeDeterministically(t *testing.T) {
	run := func() int64 {
		eng := sim.NewEngine()
		cfg := netem.HighlyConstrained()
		cfg.NoJitter = true
		tb := netem.NewTestbed(eng, cfg, sim.NewRNG(1))
		fid := tb.RegisterFlow(0, nil, nil)
		c := &Config{FlapMeanGap: 2 * sim.Second, FlapMeanLen: 500 * sim.Millisecond}
		c.Arm(eng, tb, sim.NewRNG(StreamSeed(9)))
		var send sim.Event
		send = func(now sim.Time) {
			tb.SendData(now, &netem.Packet{FlowID: fid, Service: 0, Size: 1500})
			if now < 30*sim.Second {
				eng.After(5*sim.Millisecond, send)
			}
		}
		eng.Schedule(0, send)
		eng.RunUntil(31 * sim.Second)
		if tb.ExternalDrops != 0 {
			t.Fatalf("flap drops leaked into ExternalDrops: %d", tb.ExternalDrops)
		}
		return tb.ChaosDrops
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("no packets blackholed by armed flaps")
	}
	if a != b {
		t.Fatalf("flap process not deterministic: %d vs %d drops", a, b)
	}
}

// TestScheduleIndependence proves the property the parallel matrix
// engine depends on: fault decisions are pure functions of the trial
// seed, so a Config shared by many workers yields the same plan no
// matter which goroutine asks, in which order, or how many times.
// Running this under -race (scripts/ci.sh) also certifies the shared
// Config is read-only during concurrent queries.
func TestScheduleIndependence(t *testing.T) {
	c := &Config{PanicRate: 0.15, ErrorRate: 0.15, CorruptRate: 0.2}
	const n = 4096

	// Serial reference plan, queried in ascending seed order.
	faults := make([]Fault, n)
	kinds := make([]CorruptKind, n)
	streams := make([]uint64, n)
	for seed := uint64(0); seed < n; seed++ {
		faults[seed] = c.TrialFault(seed)
		kinds[seed] = c.Corruption(seed)
		streams[seed] = StreamSeed(seed)
	}

	// Eight workers query the same Config concurrently, each walking the
	// seed space in a different stride order and re-querying seeds other
	// workers also touch.
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(stride uint64) {
			defer wg.Done()
			for i := uint64(0); i < n; i++ {
				seed := (i*stride + stride) % n
				if got := c.TrialFault(seed); got != faults[seed] {
					errc <- fmt.Sprintf("seed %d: TrialFault %v, serial %v", seed, got, faults[seed])
					return
				}
				if got := c.Corruption(seed); got != kinds[seed] {
					errc <- fmt.Sprintf("seed %d: Corruption %v, serial %v", seed, got, kinds[seed])
					return
				}
				if got := StreamSeed(seed); got != streams[seed] {
					errc <- fmt.Sprintf("seed %d: StreamSeed %d, serial %d", seed, got, streams[seed])
					return
				}
			}
		}(uint64(w)*2 + 1)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error("schedule-dependent chaos decision: " + msg)
	}
}

// TestBrownoutBudget: a brownout consumes exactly Trials units, only
// for matching names, and reports recovery via Remaining.
func TestBrownoutBudget(t *testing.T) {
	b := &Brownout{Service: "S", Trials: 3}
	c := &Config{Brownouts: []*Brownout{b}}
	if !c.Enabled() {
		t.Fatal("brownout plan not Enabled")
	}
	if got := c.BrownoutFor("other"); got != "" {
		t.Fatalf("non-matching name consumed brownout: %q", got)
	}
	for i := 0; i < 3; i++ {
		if got := c.BrownoutFor("other", "S"); got != "S" {
			t.Fatalf("attempt %d: got %q", i, got)
		}
	}
	if got := c.BrownoutFor("S"); got != "" {
		t.Fatalf("budget overrun: %q", got)
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d", b.Remaining())
	}
	var nilCfg *Config
	if got := nilCfg.BrownoutFor("S"); got != "" {
		t.Fatalf("nil config: %q", got)
	}
}

// TestBrownoutConcurrentBudget: concurrent consumers never overrun the
// budget.
func TestBrownoutConcurrentBudget(t *testing.T) {
	b := &Brownout{Service: "S", Trials: 100}
	c := &Config{Brownouts: []*Brownout{b}}
	var hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if c.BrownoutFor("S") != "" {
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if hits.Load() != 100 {
		t.Fatalf("consumed %d of 100 budget units", hits.Load())
	}
}
